#include "brake/dear_pipeline.hpp"

#include <gtest/gtest.h>

namespace dear::brake {
namespace {

using namespace dear::literals;

DearScenarioConfig small_scenario(std::uint64_t platform_seed, std::uint64_t camera_seed = 5000,
                                  std::uint64_t frames = 2000) {
  DearScenarioConfig config;
  config.frames = frames;
  config.platform_seed = platform_seed;
  config.camera_seed = camera_seed;
  return config;
}

TEST(DearPipeline, ZeroErrorsAtPaperDeadlines) {
  const auto result = run_dear_pipeline(small_scenario(1));
  EXPECT_EQ(result.frames_sent, 2000u);
  EXPECT_EQ(result.frames_processed_eba, 2000u) << "every frame must be processed";
  EXPECT_EQ(result.errors.total(), 0u);
  EXPECT_EQ(result.deadline_violations, 0u);
  EXPECT_EQ(result.tardy_messages, 0u);
  EXPECT_EQ(result.wrong_decisions, 0u);
}

TEST(DearPipeline, EndToEndLatencyIsConstant) {
  // Tags advance by exactly D_adapter + L + D_pre + L + D_cv + L =
  // 5+5+25+5+25+5 = 70 ms from adapter arrival to EBA execution, and the
  // scheduler never fires early — so the latency is deterministic.
  const auto result = run_dear_pipeline(small_scenario(2));
  ASSERT_GT(result.latency.count(), 0u);
  EXPECT_DOUBLE_EQ(result.latency.min(), static_cast<double>(70_ms));
  EXPECT_DOUBLE_EQ(result.latency.max(), static_cast<double>(70_ms));
}

TEST(DearPipeline, DeadlineScaleShrinksLatency) {
  auto config = small_scenario(2);
  config.deadline_scale = 0.8;   // 4/20/20/4 ms deadlines
  config.exec_time_scale = 0.5;  // keep execution within the new deadlines
  const auto result = run_dear_pipeline(config);
  EXPECT_EQ(result.errors.total(), 0u);
  ASSERT_GT(result.latency.count(), 0u);
  // Adapter 4 + L 5 + preprocessing 20 + L 5 + CV 20 + L 5 = 59 ms.
  EXPECT_DOUBLE_EQ(result.latency.max(), static_cast<double>(59_ms));
}

TEST(DearPipeline, OutputsMatchReferenceDecisions) {
  const auto result = run_dear_pipeline(small_scenario(3));
  EXPECT_EQ(result.wrong_decisions, 0u);
  EXPECT_GT(result.brake_commands, 0u);  // the workload triggers some braking
  EXPECT_LT(result.brake_commands, result.frames_processed_eba);
}

TEST(DearPipeline, DeterministicAcrossPlatformTiming) {
  // THE determinism claim: same camera input, different platform timing
  // (scheduling jitter, network latency draws, execution time draws) —
  // identical observable behavior, including logical tags.
  const auto reference = run_dear_pipeline(small_scenario(1, 5000));
  for (std::uint64_t platform_seed = 2; platform_seed <= 5; ++platform_seed) {
    const auto result = run_dear_pipeline(small_scenario(platform_seed, 5000));
    EXPECT_EQ(result.output_digest, reference.output_digest)
        << "platform seed " << platform_seed << " changed observable behavior";
    EXPECT_EQ(result.tag_digest, reference.tag_digest)
        << "platform seed " << platform_seed << " changed logical tags";
    EXPECT_EQ(result.frames_processed_eba, reference.frames_processed_eba);
    EXPECT_EQ(result.errors.total(), 0u);
  }
}

TEST(DearPipeline, CameraTimingDoesNotAffectRelativeBehavior) {
  const auto a = run_dear_pipeline(small_scenario(1, 5000));
  const auto b = run_dear_pipeline(small_scenario(1, 6000));
  // Different camera timing shifts the absolute arrival tags, but the
  // values and the relative logical positions are identical.
  EXPECT_EQ(a.output_digest, b.output_digest);
  EXPECT_EQ(a.tag_digest, b.tag_digest);
}

TEST(DearPipeline, TightDeadlinesProduceObservableErrors) {
  // "For certain applications it is acceptable to deliberately introduce
  // the possibility of sporadic errors by setting deadlines to values
  // lower than the actual WCET" (paper §IV.B). Scale 0.4: preprocessing
  // deadline 10 ms < its 8-20 ms execution time.
  auto config = small_scenario(1);
  config.deadline_scale = 0.4;
  const auto result = run_dear_pipeline(config);
  EXPECT_GT(result.deadline_violations, 0u);
  EXPECT_GT(result.errors.total(), 0u);
  EXPECT_LT(result.frames_processed_eba, result.frames_sent);
}

TEST(DearPipeline, OverloadedExecutionProducesObservableErrors) {
  // Execution times inflated past the deadlines: violations, not silent
  // misbehavior.
  auto config = small_scenario(1);
  config.exec_time_scale = 2.0;  // preprocessing/CV now 16-40 ms vs 25 ms deadline
  const auto result = run_dear_pipeline(config);
  EXPECT_GT(result.deadline_violations, 0u);
}

/// Property sweep: the zero-error guarantee holds for every seed pair.
class DearSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DearSeedSweep, ZeroErrorsEveryFrameProcessed) {
  const auto result = run_dear_pipeline(small_scenario(GetParam(), GetParam() * 31 + 7, 1000));
  EXPECT_EQ(result.errors.total(), 0u);
  EXPECT_EQ(result.deadline_violations, 0u);
  EXPECT_EQ(result.tardy_messages, 0u);
  EXPECT_EQ(result.wrong_decisions, 0u);
  EXPECT_EQ(result.frames_processed_eba, 1000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DearSeedSweep, ::testing::Range<std::uint64_t>(1, 13));

TEST(DearPipeline, LocalTransportProcessesEveryFrameWithoutErrors) {
  // The zero-copy in-process deployment must preserve the pipeline's
  // correctness guarantees: every frame processed, decisions match the
  // reference, no protocol errors.
  auto config = small_scenario(1);
  config.local_transport = true;
  const auto result = run_dear_pipeline(config);
  EXPECT_EQ(result.frames_sent, 2000u);
  EXPECT_EQ(result.frames_processed_eba, 2000u);
  EXPECT_EQ(result.errors.total(), 0u);
  EXPECT_EQ(result.wrong_decisions, 0u);
}

TEST(DearPipeline, LocalTransportIsDeterministicAcrossPlatformTiming) {
  auto reference_config = small_scenario(1, 5000);
  reference_config.local_transport = true;
  const auto reference = run_dear_pipeline(reference_config);
  for (std::uint64_t platform_seed = 2; platform_seed <= 4; ++platform_seed) {
    auto config = small_scenario(platform_seed, 5000);
    config.local_transport = true;
    const auto result = run_dear_pipeline(config);
    EXPECT_EQ(result.output_digest, reference.output_digest);
    EXPECT_EQ(result.tag_digest, reference.tag_digest);
  }
}

TEST(DearPipeline, LocalTransportMatchesSomeIpObservableBehavior) {
  // Transport choice is a deployment decision, not a semantic one: the
  // DEAR pipeline's observable outputs (values AND logical tags) are
  // identical whether inter-SWC messages travel over SOME/IP or through
  // process memory — determinism makes backends interchangeable.
  const auto someip = run_dear_pipeline(small_scenario(1, 5000));
  auto local_config = small_scenario(1, 5000);
  local_config.local_transport = true;
  const auto local = run_dear_pipeline(local_config);
  EXPECT_EQ(local.output_digest, someip.output_digest);
  EXPECT_EQ(local.tag_digest, someip.tag_digest);
  EXPECT_EQ(local.frames_processed_eba, someip.frames_processed_eba);
}

TEST(DearPipeline, ErrorsRemainDeterministicUnderSameSeeds) {
  auto config = small_scenario(9);
  config.deadline_scale = 0.4;
  const auto a = run_dear_pipeline(config);
  const auto b = run_dear_pipeline(config);
  EXPECT_EQ(a.deadline_violations, b.deadline_violations);
  EXPECT_EQ(a.errors.total(), b.errors.total());
  EXPECT_EQ(a.output_digest, b.output_digest);
}

}  // namespace
}  // namespace dear::brake
