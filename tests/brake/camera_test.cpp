#include "brake/camera.hpp"

#include <gtest/gtest.h>

#include "net/sim_network.hpp"

namespace dear::brake {
namespace {

using namespace dear::literals;

struct CameraFixture : ::testing::Test {
  sim::Kernel kernel;
  sim::PlatformClock clock;
  net::SimNetwork network{kernel, common::Rng(1)};
  net::Endpoint camera_ep{1, 10};
  net::Endpoint adapter_ep{2, 100};
  std::vector<VideoFrame> received;

  void bind_adapter() {
    network.bind(adapter_ep, [this](const net::Packet& packet) {
      VideoFrame frame;
      ASSERT_TRUE(decode_camera_packet(packet.payload, frame));
      received.push_back(frame);
    });
  }
};

TEST_F(CameraFixture, SendsFramesOnPeriodicGrid) {
  bind_adapter();
  Camera::Config config;
  config.period = 50_ms;
  config.phase = 0;
  config.jitter = sim::ExecTimeModel::constant(0);
  Camera camera(kernel, clock, network, camera_ep, adapter_ep, config, common::Rng(2));
  camera.start();
  kernel.run_until(240_ms);
  camera.stop();
  ASSERT_EQ(received.size(), 5u);  // 0, 50, 100, 150, 200 ms
  for (std::size_t i = 0; i < received.size(); ++i) {
    EXPECT_EQ(received[i].frame_id, i);
    EXPECT_EQ(received[i].capture_time, static_cast<TimePoint>(i) * 50_ms);
  }
  EXPECT_EQ(camera.frames_sent(), 5u);
}

TEST_F(CameraFixture, FrameLimitStopsCapture) {
  bind_adapter();
  Camera::Config config;
  config.period = 10_ms;
  config.jitter = sim::ExecTimeModel::constant(0);
  config.frame_limit = 3;
  Camera camera(kernel, clock, network, camera_ep, adapter_ep, config, common::Rng(2));
  camera.start();
  kernel.run_until(1_s);
  EXPECT_EQ(camera.frames_sent(), 3u);
  EXPECT_EQ(received.size(), 3u);
}

TEST_F(CameraFixture, CaptureTimeUsesCameraClock) {
  bind_adapter();
  sim::PlatformClock skewed(3_ms, 0.0);  // camera clock 3 ms ahead
  Camera::Config config;
  config.period = 10_ms;
  config.jitter = sim::ExecTimeModel::constant(0);
  config.frame_limit = 1;
  Camera camera(kernel, skewed, network, camera_ep, adapter_ep, config, common::Rng(2));
  camera.start();
  kernel.run_until(100_ms);
  ASSERT_EQ(received.size(), 1u);
  // The local grid point 0 maps to global -3 ms — already missed at start,
  // so the first capture is grid point 10 ms local = 7 ms global, stamped
  // with the camera's local reading. The frame id stays 0: ids are capture
  // ordinals, independent of where the clock offset lands the grid.
  EXPECT_EQ(received[0].capture_time, 10_ms);
  EXPECT_EQ(received[0].frame_id, 0u);
}

TEST_F(CameraFixture, FrameContentMatchesGenerator) {
  bind_adapter();
  Camera::Config config;
  config.period = 10_ms;
  config.jitter = sim::ExecTimeModel::constant(0);
  config.frame_limit = 2;
  Camera camera(kernel, clock, network, camera_ep, adapter_ep, config, common::Rng(2));
  camera.start();
  kernel.run_until(100_ms);
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[0].content_hash, generate_frame(0, 0).content_hash);
  EXPECT_EQ(received[1].content_hash, generate_frame(1, 0).content_hash);
}

// --- burst-capture data plane -------------------------------------------------

/// Little-endian u64 word `index` of a stamped slab head.
std::uint64_t stamped_word(const common::LoanedBuffer& slab, std::size_t index) {
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    word |= static_cast<std::uint64_t>(slab.data()[index * 8 + i]) << (8 * i);
  }
  return word;
}

TEST_F(CameraFixture, BurstCapturePublishesStampedSlabPerFrame) {
  bind_adapter();
  Camera::Config config;
  config.period = 10_ms;
  config.jitter = sim::ExecTimeModel::constant(0);
  config.frame_limit = 5;
  config.payload_bytes = 4096;
  struct Burst {
    std::uint64_t frame_id;
    std::uint64_t content_hash;
    std::uint64_t payload_bytes;
    std::size_t size;
    bool published;
  };
  std::vector<Burst> bursts;
  config.frame_sink = [&bursts](const common::LoanedBuffer& slab, const VideoFrame& frame) {
    bursts.push_back({stamped_word(slab, 0), stamped_word(slab, 2), stamped_word(slab, 3),
                      slab.size(), slab.published()});
    EXPECT_EQ(stamped_word(slab, 0), frame.frame_id);
  };
  Camera camera(kernel, clock, network, camera_ep, adapter_ep, config, common::Rng(2));
  camera.start();
  kernel.run_until(1_s);
  EXPECT_EQ(camera.frames_sent(), 5u);
  EXPECT_EQ(camera.payload_frames(), 5u);
  EXPECT_EQ(camera.payload_drops(), 0u);
  ASSERT_EQ(bursts.size(), 5u);
  ASSERT_EQ(received.size(), 5u);
  for (std::size_t i = 0; i < bursts.size(); ++i) {
    EXPECT_EQ(bursts[i].frame_id, received[i].frame_id);
    EXPECT_EQ(bursts[i].content_hash, received[i].content_hash);
    EXPECT_EQ(bursts[i].payload_bytes, 4096u);
    EXPECT_EQ(bursts[i].size, 4096u);
    EXPECT_TRUE(bursts[i].published);
  }
}

TEST_F(CameraFixture, RingExhaustionDropsCaptureWhole) {
  // A sink that never releases its handles exhausts the 2-slab ring after
  // two frames; every later capture is dropped *whole* — no metadata
  // packet either, so the drop is visible in the frame stream (and hence
  // the digest), not just in the payload accounting.
  bind_adapter();
  Camera::Config config;
  config.period = 10_ms;
  config.jitter = sim::ExecTimeModel::constant(0);
  config.frame_limit = 5;
  config.payload_bytes = 1024;
  config.ring_slabs = 2;
  std::vector<common::LoanedBuffer> held;
  config.frame_sink = [&held](const common::LoanedBuffer& slab, const VideoFrame&) {
    held.push_back(slab);  // retain: the ring slot stays busy
  };
  Camera camera(kernel, clock, network, camera_ep, adapter_ep, config, common::Rng(2));
  camera.start();
  kernel.run_until(1_s);
  EXPECT_EQ(camera.captures(), 5u);
  EXPECT_EQ(camera.payload_frames(), 2u);
  EXPECT_EQ(camera.payload_drops(), 3u);
  EXPECT_EQ(camera.frames_sent(), 2u);
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[0].frame_id, 0u);
  EXPECT_EQ(received[1].frame_id, 1u);

  // Releasing the held slabs frees the ring again (requeue on next run).
  held.clear();
}

TEST_F(CameraFixture, ReleasedSlabsRequeueWithoutDrops) {
  // The complementary case: a sink that releases immediately never
  // exhausts even a 2-slab ring — each capture finds a requeued slot.
  bind_adapter();
  Camera::Config config;
  config.period = 10_ms;
  config.jitter = sim::ExecTimeModel::constant(0);
  config.frame_limit = 8;
  config.payload_bytes = 1024;
  config.ring_slabs = 2;
  std::uint64_t sink_frames = 0;
  config.frame_sink = [&sink_frames](const common::LoanedBuffer&, const VideoFrame&) {
    ++sink_frames;  // handle not retained: released when the sink returns
  };
  Camera camera(kernel, clock, network, camera_ep, adapter_ep, config, common::Rng(2));
  camera.start();
  kernel.run_until(1_s);
  EXPECT_EQ(camera.payload_frames(), 8u);
  EXPECT_EQ(camera.payload_drops(), 0u);
  EXPECT_EQ(camera.frames_sent(), 8u);
  EXPECT_EQ(sink_frames, 8u);
}

TEST_F(CameraFixture, BurstDropPatternIsDeterministic) {
  // Two identical runs with a retaining sink must drop the *same* frames:
  // exhaustion depends only on the capture/release order, which the DES
  // kernel fixes.
  const auto run_once = [](std::vector<std::uint64_t>& sent_ids) {
    sim::Kernel kernel;
    sim::PlatformClock clock;
    net::SimNetwork network{kernel, common::Rng(1)};
    const net::Endpoint camera_ep{1, 10};
    const net::Endpoint adapter_ep{2, 100};
    network.bind(adapter_ep, [&sent_ids](const net::Packet& packet) {
      VideoFrame frame;
      ASSERT_TRUE(decode_camera_packet(packet.payload, frame));
      sent_ids.push_back(frame.frame_id);
    });
    Camera::Config config;
    config.period = 10_ms;
    config.jitter = sim::ExecTimeModel::constant(0);
    config.frame_limit = 6;
    config.payload_bytes = 1024;
    config.ring_slabs = 3;
    std::vector<common::LoanedBuffer> held;
    config.frame_sink = [&held](const common::LoanedBuffer& slab, const VideoFrame&) {
      held.push_back(slab);
    };
    Camera camera(kernel, clock, network, camera_ep, adapter_ep, config, common::Rng(2));
    camera.start();
    kernel.run_until(1_s);
    EXPECT_EQ(camera.payload_drops(), 3u);
  };
  std::vector<std::uint64_t> first;
  std::vector<std::uint64_t> second;
  run_once(first);
  run_once(second);
  EXPECT_EQ(first, (std::vector<std::uint64_t>{0, 1, 2}));
  EXPECT_EQ(first, second);
}

TEST(CameraPacket, DecodeRejectsGarbage) {
  VideoFrame frame;
  EXPECT_FALSE(decode_camera_packet({1, 2, 3}, frame));
  EXPECT_FALSE(decode_camera_packet({}, frame));
  // Trailing garbage after a valid frame is rejected too.
  someip::Writer writer;
  someip_serialize(writer, generate_frame(1, 2));
  auto bytes = writer.take();
  bytes.push_back(0xFF);
  EXPECT_FALSE(decode_camera_packet(bytes, frame));
}

}  // namespace
}  // namespace dear::brake
