#include "brake/camera.hpp"

#include <gtest/gtest.h>

#include "net/sim_network.hpp"

namespace dear::brake {
namespace {

using namespace dear::literals;

struct CameraFixture : ::testing::Test {
  sim::Kernel kernel;
  sim::PlatformClock clock;
  net::SimNetwork network{kernel, common::Rng(1)};
  net::Endpoint camera_ep{1, 10};
  net::Endpoint adapter_ep{2, 100};
  std::vector<VideoFrame> received;

  void bind_adapter() {
    network.bind(adapter_ep, [this](const net::Packet& packet) {
      VideoFrame frame;
      ASSERT_TRUE(decode_camera_packet(packet.payload, frame));
      received.push_back(frame);
    });
  }
};

TEST_F(CameraFixture, SendsFramesOnPeriodicGrid) {
  bind_adapter();
  Camera::Config config;
  config.period = 50_ms;
  config.phase = 0;
  config.jitter = sim::ExecTimeModel::constant(0);
  Camera camera(kernel, clock, network, camera_ep, adapter_ep, config, common::Rng(2));
  camera.start();
  kernel.run_until(240_ms);
  camera.stop();
  ASSERT_EQ(received.size(), 5u);  // 0, 50, 100, 150, 200 ms
  for (std::size_t i = 0; i < received.size(); ++i) {
    EXPECT_EQ(received[i].frame_id, i);
    EXPECT_EQ(received[i].capture_time, static_cast<TimePoint>(i) * 50_ms);
  }
  EXPECT_EQ(camera.frames_sent(), 5u);
}

TEST_F(CameraFixture, FrameLimitStopsCapture) {
  bind_adapter();
  Camera::Config config;
  config.period = 10_ms;
  config.jitter = sim::ExecTimeModel::constant(0);
  config.frame_limit = 3;
  Camera camera(kernel, clock, network, camera_ep, adapter_ep, config, common::Rng(2));
  camera.start();
  kernel.run_until(1_s);
  EXPECT_EQ(camera.frames_sent(), 3u);
  EXPECT_EQ(received.size(), 3u);
}

TEST_F(CameraFixture, CaptureTimeUsesCameraClock) {
  bind_adapter();
  sim::PlatformClock skewed(3_ms, 0.0);  // camera clock 3 ms ahead
  Camera::Config config;
  config.period = 10_ms;
  config.jitter = sim::ExecTimeModel::constant(0);
  config.frame_limit = 1;
  Camera camera(kernel, skewed, network, camera_ep, adapter_ep, config, common::Rng(2));
  camera.start();
  kernel.run_until(100_ms);
  ASSERT_EQ(received.size(), 1u);
  // The local grid point 0 maps to global -3 ms — already missed at start,
  // so the first capture is grid point 10 ms local = 7 ms global, stamped
  // with the camera's local reading. The frame id stays 0: ids are capture
  // ordinals, independent of where the clock offset lands the grid.
  EXPECT_EQ(received[0].capture_time, 10_ms);
  EXPECT_EQ(received[0].frame_id, 0u);
}

TEST_F(CameraFixture, FrameContentMatchesGenerator) {
  bind_adapter();
  Camera::Config config;
  config.period = 10_ms;
  config.jitter = sim::ExecTimeModel::constant(0);
  config.frame_limit = 2;
  Camera camera(kernel, clock, network, camera_ep, adapter_ep, config, common::Rng(2));
  camera.start();
  kernel.run_until(100_ms);
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[0].content_hash, generate_frame(0, 0).content_hash);
  EXPECT_EQ(received[1].content_hash, generate_frame(1, 0).content_hash);
}

TEST(CameraPacket, DecodeRejectsGarbage) {
  VideoFrame frame;
  EXPECT_FALSE(decode_camera_packet({1, 2, 3}, frame));
  EXPECT_FALSE(decode_camera_packet({}, frame));
  // Trailing garbage after a valid frame is rejected too.
  someip::Writer writer;
  someip_serialize(writer, generate_frame(1, 2));
  auto bytes = writer.take();
  bytes.push_back(0xFF);
  EXPECT_FALSE(decode_camera_packet(bytes, frame));
}

}  // namespace
}  // namespace dear::brake
