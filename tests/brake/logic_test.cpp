#include "brake/logic.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dear::brake {
namespace {

TEST(FrameGeneration, DeterministicInFrameId) {
  const VideoFrame a = generate_frame(42, 1000);
  const VideoFrame b = generate_frame(42, 9999);
  EXPECT_EQ(a.content_hash, b.content_hash) << "content depends only on frame id";
  EXPECT_EQ(a.frame_id, 42u);
  EXPECT_EQ(a.capture_time, 1000);
  EXPECT_NE(a.content_hash, generate_frame(43, 1000).content_hash);
}

TEST(LaneDetection, DeterministicAndTaggedWithFrameId) {
  const VideoFrame frame = generate_frame(7, 0);
  const LaneInfo lane1 = detect_lane(frame);
  const LaneInfo lane2 = detect_lane(frame);
  EXPECT_EQ(lane1, lane2);
  EXPECT_EQ(lane1.frame_id, 7u);
  EXPECT_LT(lane1.left, lane1.right);
  EXPECT_LE(lane1.bottom, frame.height);
  EXPECT_GE(lane1.confidence, 0.7);
  EXPECT_LE(lane1.confidence, 1.0);
}

TEST(LaneDetection, VariesAcrossFrames) {
  std::set<std::uint16_t> lefts;
  for (std::uint64_t id = 0; id < 50; ++id) {
    lefts.insert(detect_lane(generate_frame(id, 0)).left);
  }
  EXPECT_GT(lefts.size(), 10u);
}

TEST(VehicleDetection, RecordsBothSourceFrameIds) {
  const VideoFrame frame = generate_frame(10, 0);
  const LaneInfo lane = detect_lane(generate_frame(12, 0));  // misaligned!
  const VehicleList list = detect_vehicles(frame, lane);
  EXPECT_EQ(list.frame_id, 10u);
  EXPECT_EQ(list.lane_frame_id, 12u);
}

TEST(VehicleDetection, MisalignedLaneChangesResult) {
  const VideoFrame frame = generate_frame(10, 0);
  const LaneInfo aligned = detect_lane(frame);
  const LaneInfo misaligned = detect_lane(generate_frame(11, 0));
  const VehicleList with_aligned = detect_vehicles(frame, aligned);
  const VehicleList with_misaligned = detect_vehicles(frame, misaligned);
  if (!with_aligned.vehicles.empty()) {
    EXPECT_NE(with_aligned.vehicles, with_misaligned.vehicles)
        << "misalignment must be observable in the detection output";
  }
}

TEST(VehicleDetection, PopulationVariesAcrossFrames) {
  std::set<std::size_t> counts;
  for (std::uint64_t id = 0; id < 100; ++id) {
    const VideoFrame frame = generate_frame(id, 0);
    counts.insert(detect_vehicles(frame, detect_lane(frame)).vehicles.size());
  }
  EXPECT_GE(counts.size(), 3u);  // 0..3 vehicles occur
}

TEST(BrakeDecision, NoVehiclesNoBrake) {
  VehicleList empty;
  empty.frame_id = 5;
  const BrakeCommand command = decide_brake(empty);
  EXPECT_FALSE(command.brake);
  EXPECT_DOUBLE_EQ(command.intensity, 0.0);
  EXPECT_EQ(command.frame_id, 5u);
}

TEST(BrakeDecision, RecedingVehicleNoBrake) {
  VehicleList list;
  list.vehicles.push_back(Vehicle{1, 10.0, -5.0});  // moving away
  EXPECT_FALSE(decide_brake(list).brake);
}

TEST(BrakeDecision, ImminentCollisionBrakes) {
  VehicleList list;
  list.vehicles.push_back(Vehicle{1, 10.0, 10.0});  // TTC = 1 s < 2 s
  const BrakeCommand command = decide_brake(list);
  EXPECT_TRUE(command.brake);
  EXPECT_GT(command.intensity, 0.0);
  EXPECT_LE(command.intensity, 1.0);
}

TEST(BrakeDecision, DistantVehicleNoBrake) {
  VehicleList list;
  list.vehicles.push_back(Vehicle{1, 150.0, 10.0});  // TTC = 15 s
  EXPECT_FALSE(decide_brake(list).brake);
}

TEST(BrakeDecision, ClosestThreateningVehicleWins) {
  VehicleList list;
  list.vehicles.push_back(Vehicle{1, 100.0, 10.0});  // TTC 10
  list.vehicles.push_back(Vehicle{2, 5.0, 10.0});    // TTC 0.5 -> brake hard
  const BrakeCommand command = decide_brake(list);
  EXPECT_TRUE(command.brake);
  EXPECT_GT(command.intensity, 0.5);
}

TEST(ReferencePipeline, StableAndSometimesBrakes) {
  int brakes = 0;
  for (std::uint64_t id = 0; id < 2000; ++id) {
    const BrakeCommand a = reference_decision(id);
    const BrakeCommand b = reference_decision(id);
    EXPECT_EQ(a, b);
    if (a.brake) {
      ++brakes;
    }
  }
  // The synthetic workload exercises both branches of the EBA logic.
  EXPECT_GT(brakes, 10);
  EXPECT_LT(brakes, 1990);
}

TEST(BrakeTypes, CodecRoundTrips) {
  const VideoFrame frame = generate_frame(99, 555);
  const LaneInfo lane = detect_lane(frame);
  const VehicleList vehicles = detect_vehicles(frame, lane);
  const BrakeCommand command = decide_brake(vehicles);

  someip::Writer writer;
  someip_serialize(writer, frame);
  someip_serialize(writer, lane);
  someip_serialize(writer, vehicles);
  someip_serialize(writer, command);

  someip::Reader reader(writer.bytes());
  VideoFrame frame2;
  LaneInfo lane2;
  VehicleList vehicles2;
  BrakeCommand command2;
  someip_deserialize(reader, frame2);
  someip_deserialize(reader, lane2);
  someip_deserialize(reader, vehicles2);
  someip_deserialize(reader, command2);
  EXPECT_TRUE(reader.ok());
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_EQ(frame, frame2);
  EXPECT_EQ(lane, lane2);
  EXPECT_EQ(vehicles, vehicles2);
  EXPECT_EQ(command, command2);
}

}  // namespace
}  // namespace dear::brake
