#include "brake/nondet_pipeline.hpp"

#include <gtest/gtest.h>

#include <set>

#include "brake/det_client_pipeline.hpp"

namespace dear::brake {
namespace {

ScenarioConfig small_scenario(std::uint64_t seed, std::uint64_t frames = 3000) {
  ScenarioConfig config;
  config.frames = frames;
  config.platform_seed = seed;
  config.camera_seed = seed + 1000;
  return config;
}

TEST(NondetPipeline, FramesFlowEndToEnd) {
  const auto result = run_nondet_pipeline(small_scenario(3));
  EXPECT_EQ(result.frames_sent, 3000u);
  // Most frames reach EBA (minus drops and the pipeline tail).
  EXPECT_GT(result.frames_processed_eba, 2500u);
  EXPECT_LE(result.frames_processed_eba, result.frames_sent);
  // The decisions taken match the reference logic whenever inputs align.
  EXPECT_LT(result.wrong_decisions, result.frames_processed_eba / 10);
}

TEST(NondetPipeline, SameSeedsReproduceExactly) {
  const auto a = run_nondet_pipeline(small_scenario(7));
  const auto b = run_nondet_pipeline(small_scenario(7));
  EXPECT_EQ(a.errors.total(), b.errors.total());
  EXPECT_EQ(a.errors.dropped_frames_preprocessing, b.errors.dropped_frames_preprocessing);
  EXPECT_EQ(a.errors.dropped_frames_cv, b.errors.dropped_frames_cv);
  EXPECT_EQ(a.errors.input_mismatches_cv, b.errors.input_mismatches_cv);
  EXPECT_EQ(a.errors.dropped_vehicles_eba, b.errors.dropped_vehicles_eba);
  EXPECT_EQ(a.output_digest, b.output_digest);
  EXPECT_EQ(a.frames_processed_eba, b.frames_processed_eba);
}

TEST(NondetPipeline, ErrorRateVariesAcrossSeeds) {
  // The paper's Figure 5 point: the error rate is "strongly influenced by
  // the offset between the individual periodic callbacks", which varies
  // across experiment instances.
  std::set<std::uint64_t> totals;
  double min_rate = 1e9;
  double max_rate = -1.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto result = run_nondet_pipeline(small_scenario(seed));
    totals.insert(result.errors.total());
    min_rate = std::min(min_rate, result.error_prevalence_percent());
    max_rate = std::max(max_rate, result.error_prevalence_percent());
  }
  EXPECT_GT(totals.size(), 3u) << "error counts should differ across instances";
  EXPECT_GT(max_rate, 10.0 * std::max(min_rate, 0.001)) << "orders-of-magnitude spread expected";
}

TEST(NondetPipeline, SomeSeedExhibitsErrors) {
  // At least one of the first seeds shows a non-trivial error rate.
  bool errors_seen = false;
  for (std::uint64_t seed = 1; seed <= 8 && !errors_seen; ++seed) {
    errors_seen = run_nondet_pipeline(small_scenario(seed)).errors.total() > 10;
  }
  EXPECT_TRUE(errors_seen);
}

TEST(NondetPipeline, MisalignmentCausesWrongDecisions) {
  // Find a seed with CV input mismatches and confirm they translate into
  // brake decisions that differ from the reference pipeline — the paper's
  // safety argument.
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const auto result = run_nondet_pipeline(small_scenario(seed));
    if (result.errors.input_mismatches_cv > 20) {
      EXPECT_GT(result.wrong_decisions, 0u)
          << "mismatched inputs must eventually corrupt decisions";
      return;
    }
  }
  GTEST_SKIP() << "no high-mismatch seed in range (distribution shifted)";
}

TEST(DetClientPipeline, IntraSwcDeterminismDoesNotFixCoordination) {
  // The AP deterministic client addresses only nondeterminism source 1;
  // the buffer races between SWCs persist (paper §II.B).
  std::uint64_t nondet_total = 0;
  std::uint64_t detclient_total = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    nondet_total += run_nondet_pipeline(small_scenario(seed)).errors.total();
    detclient_total += run_det_client_pipeline(small_scenario(seed)).errors.total();
  }
  EXPECT_GT(nondet_total, 0u);
  EXPECT_GT(detclient_total, 0u) << "deterministic client must not fix inter-SWC errors";
}

TEST(DetClientPipeline, ReproducibleUnderSameSeed) {
  const auto a = run_det_client_pipeline(small_scenario(4));
  const auto b = run_det_client_pipeline(small_scenario(4));
  EXPECT_EQ(a.errors.total(), b.errors.total());
  EXPECT_EQ(a.output_digest, b.output_digest);
}

}  // namespace
}  // namespace dear::brake
