// Safe-to-process property tests (PTIDES rule, paper §III.A):
//   * whenever actual network latency stays within the assumed bound L and
//     clock error within E, no message is tardy and event order equals tag
//     order — for every seed;
//   * when the actual latency exceeds the assumed bound, violations become
//     observable (tardy counters), never silent reordering.
#include <gtest/gtest.h>

#include "dear_fixture.hpp"

namespace dear::transact {
namespace {

using namespace dear::literals;
using testing::Consumer;
using testing::DearWorld;
using testing::Producer;

struct StpSweepResult {
  std::uint64_t delivered{0};
  std::uint64_t tardy{0};
  bool order_ok{true};
};

StpSweepResult run_stp_scenario(std::uint64_t seed, Duration actual_latency_max,
                                Duration assumed_bound) {
  common::Rng rng(seed);
  sim::Kernel kernel;
  net::SimNetwork network(kernel, rng.stream("net"));
  net::LinkParams link;
  link.latency = sim::ExecTimeModel::uniform(0, actual_latency_max);
  network.set_default_link(link);
  someip::ServiceDiscovery discovery;
  sim::SimExecutor executor(kernel, rng.stream("exec"));
  ara::Runtime server_rt(network, discovery, executor, {1, 100}, 0x01);
  ara::Runtime client_rt(network, discovery, executor, {2, 200}, 0x02);
  testing::WorldSkeleton skeleton(server_rt);
  skeleton.OfferService();
  testing::WorldProxy proxy(client_rt, *client_rt.resolve({testing::kService, 1}));

  reactor::SimClock clock(kernel);
  reactor::Environment::Config env_config;
  env_config.keepalive = true;
  reactor::Environment server_env(clock, env_config);
  reactor::Environment client_env(clock, env_config);

  TransactorConfig config;
  config.deadline = 1_ms;
  config.latency_bound = assumed_bound;
  Producer producer(server_env, 5_ms, 50);
  ServerEventTransactor<std::int64_t> server_tx("server_tx", server_env, skeleton.data,
                                                server_rt.binding(), config);
  server_env.connect(producer.out, server_tx.in);
  Consumer consumer(client_env);
  ClientEventTransactor<std::int64_t> client_tx("client_tx", client_env, proxy.data,
                                                client_rt.binding(), config);
  client_env.connect(client_tx.out, consumer.in);

  // Let the subscription settle; must exceed the worst link latency.
  kernel.run_until(50 * kMillisecond);
  reactor::SimDriver server_driver(server_env, kernel, rng.stream("sd"));
  reactor::SimDriver client_driver(client_env, kernel, rng.stream("cd"));
  server_driver.start();
  client_driver.start();
  kernel.run_until(2 * kSecond);

  StpSweepResult result;
  result.delivered = consumer.received.size();
  result.tardy = client_tx.tardy_messages();
  // The invariant under STP is monotonicity: delivered events appear in
  // strictly increasing tag (and hence value) order — tardy messages are
  // dropped with an error, never delivered out of order.
  for (std::size_t i = 1; i < consumer.received.size(); ++i) {
    if (consumer.received[i].second <= consumer.received[i - 1].second ||
        consumer.received[i].first <= consumer.received[i - 1].first) {
      result.order_ok = false;
    }
  }
  return result;
}

class StpSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StpSeedTest, NoTardyMessagesWithinBounds) {
  // Actual latency <= 3 ms, assumed bound 5 ms: the STP rule holds.
  const auto result = run_stp_scenario(GetParam(), 3_ms, 5_ms);
  EXPECT_EQ(result.delivered, 50u);
  EXPECT_EQ(result.tardy, 0u);
  EXPECT_TRUE(result.order_ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StpSeedTest, ::testing::Range<std::uint64_t>(1, 11));

TEST(StpProperty, ViolatedBoundProducesObservableTardiness) {
  // Actual latency up to 20 ms against an assumed bound of 2 ms: events
  // can physically arrive after their release tag has passed. Errors must
  // be *observable* (tardy count), and whatever is delivered must still be
  // in tag order — never silently reordered.
  std::uint64_t total_tardy = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto result = run_stp_scenario(seed, 20_ms, 2_ms);
    total_tardy += result.tardy;
    EXPECT_TRUE(result.order_ok) << "seed " << seed;
    EXPECT_EQ(result.delivered + result.tardy, 50u) << "seed " << seed;
  }
  EXPECT_GT(total_tardy, 0u);
}

TEST(StpProperty, TightBoundReducesLatencyLooseBoundReducesRisk) {
  // With a bound exactly equal to the worst actual latency there is no
  // tardiness (boundary case).
  const auto result = run_stp_scenario(3, 5_ms, 5_ms);
  EXPECT_EQ(result.tardy, 0u);
  EXPECT_EQ(result.delivered, 50u);
}

}  // namespace
}  // namespace dear::transact
