#include "dear/tag_codec.hpp"

#include <gtest/gtest.h>

#include "dear/config.hpp"

namespace dear::transact {
namespace {

TEST(TagCodec, RoundTrip) {
  const reactor::Tag tag{123'456'789, 42};
  const someip::WireTag wire = to_wire(tag);
  EXPECT_EQ(wire.time, 123'456'789);
  EXPECT_EQ(wire.microstep, 42u);
  EXPECT_EQ(from_wire(wire), tag);
}

TEST(TagCodec, NegativeAndExtremeTimes) {
  for (const TimePoint time : {TimePoint{-1}, TimePoint{0}, kTimeMax, kTimeMin}) {
    const reactor::Tag tag{time, 0};
    EXPECT_EQ(from_wire(to_wire(tag)), tag);
  }
}

TEST(TagCodec, SurvivesWireMessage) {
  // Through the full message encode/decode path.
  const reactor::Tag tag{999, 3};
  someip::Message message;
  message.tag = to_wire(tag);
  const auto decoded = someip::Message::decode(message.encode());
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->tag.has_value());
  EXPECT_EQ(from_wire(*decoded->tag), tag);
}

TEST(EmptyCodec, SerializesToOneByte) {
  someip::Writer writer;
  someip_serialize(writer, reactor::Empty{});
  EXPECT_EQ(writer.size(), 1u);
  someip::Reader reader(writer.bytes());
  reactor::Empty empty;
  someip_deserialize(reader, empty);
  EXPECT_TRUE(reader.ok());
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(TransactorConfig, ReleaseOffsetIsLatencyPlusClockError) {
  TransactorConfig config;
  config.latency_bound = 5 * kMillisecond;
  config.clock_error_bound = 2 * kMillisecond;
  EXPECT_EQ(config.release_offset(), 7 * kMillisecond);
}

}  // namespace
}  // namespace dear::transact
