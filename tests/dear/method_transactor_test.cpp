// Method transactor tests: the full Figure 3 sequence, including the tag
// algebra tc+Dc, tc+Dc+L+E, ts+Ds, ts+Ds+L+E.
#include <gtest/gtest.h>

#include "dear_fixture.hpp"

namespace dear::transact {
namespace {

using namespace dear::literals;
using testing::DearWorld;

/// Server logic: responds to compute(x) with x * 3, recording request tags.
class ComputeServer final : public reactor::Reactor {
 public:
  reactor::Input<std::int64_t> request{"request", this};
  reactor::Output<std::int64_t> response{"response", this};
  std::vector<reactor::Tag> request_tags;

  explicit ComputeServer(reactor::Environment& env) : Reactor("compute_server", env) {
    add_reaction("serve",
                 [this] {
                   request_tags.push_back(current_tag());
                   response.set(request.get() * 3);
                 })
        .triggered_by(request)
        .writes(response);
  }
};

/// Client logic: issues requests at logical 10 ms intervals, records
/// responses with tags.
class ComputeClient final : public reactor::Reactor {
 public:
  reactor::Output<std::int64_t> request{"request", this};
  reactor::Input<std::int64_t> response{"response", this};
  std::vector<std::pair<std::int64_t, reactor::Tag>> responses;

  ComputeClient(reactor::Environment& env, int count)
      : Reactor("compute_client", env), timer_("timer", this, 10_ms) {
    add_reaction("issue",
                 [this, count] {
                   if (issued_ < count) {
                     request.set(issued_++);
                   }
                 })
        .triggered_by(timer_)
        .writes(request);
    add_reaction("on_response", [this] {
      responses.emplace_back(response.get(), current_tag());
    }).triggered_by(response);
  }

 private:
  reactor::Timer timer_;
  int issued_{0};
};

struct MethodTransactorTest : DearWorld {
  static constexpr Duration kDc = 2_ms;   // client-side deadline
  static constexpr Duration kDs = 3_ms;   // server-side deadline
  static constexpr Duration kL = 5_ms;    // latency bound

  void build(int requests) {
    server_logic = std::make_unique<ComputeServer>(server_env);
    server_tx = std::make_unique<ServerMethodTransactor<std::int64_t, std::int64_t>>(
        "server_tx", server_env, skeleton.compute, server_rt.binding(),
        transactor_config(kDs, kL));
    server_env.connect(server_tx->request, server_logic->request);
    server_env.connect(server_logic->response, server_tx->response);

    client_logic = std::make_unique<ComputeClient>(client_env, requests);
    client_tx = std::make_unique<ClientMethodTransactor<std::int64_t, std::int64_t>>(
        "client_tx", client_env, proxy->compute, client_rt.binding(),
        transactor_config(kDc, kL));
    client_env.connect(client_logic->request, client_tx->request);
    client_env.connect(client_tx->response, client_logic->response);
  }

  std::unique_ptr<ComputeServer> server_logic;
  std::unique_ptr<ServerMethodTransactor<std::int64_t, std::int64_t>> server_tx;
  std::unique_ptr<ComputeClient> client_logic;
  std::unique_ptr<ClientMethodTransactor<std::int64_t, std::int64_t>> client_tx;
};

TEST_F(MethodTransactorTest, Figure3TagAlgebra) {
  build(3);
  start_drivers();
  kernel.run_until(200_ms);

  // Server side: request k issued at tc = k*10ms, released at tc + Dc + L.
  ASSERT_EQ(server_logic->request_tags.size(), 3u);
  for (std::size_t k = 0; k < 3; ++k) {
    const TimePoint tc = kSettle + static_cast<TimePoint>(k) * 10_ms;
    EXPECT_EQ(server_logic->request_tags[k], (reactor::Tag{tc + kDc + kL, 0}));
  }
  // Client side: the server replied at ts = tc + Dc + L (logically
  // instantaneous logic), so the response lands at ts + Ds + L.
  ASSERT_EQ(client_logic->responses.size(), 3u);
  for (std::size_t k = 0; k < 3; ++k) {
    const TimePoint tc = kSettle + static_cast<TimePoint>(k) * 10_ms;
    const TimePoint ts = tc + kDc + kL;
    EXPECT_EQ(client_logic->responses[k].first, static_cast<std::int64_t>(k) * 3);
    EXPECT_EQ(client_logic->responses[k].second, (reactor::Tag{ts + kDs + kL, 0}));
  }
  EXPECT_EQ(client_tx->messages_sent(), 3u);
  EXPECT_EQ(server_tx->messages_sent(), 3u);  // responses
  EXPECT_EQ(client_tx->total_errors() + server_tx->total_errors(), 0u);
}

TEST_F(MethodTransactorTest, PipelinedRequestsKeepOrder) {
  build(10);
  start_drivers();
  kernel.run_until(500_ms);
  ASSERT_EQ(client_logic->responses.size(), 10u);
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_EQ(client_logic->responses[k].first, static_cast<std::int64_t>(k) * 3);
  }
  // Tags strictly increase: deterministic serialization of the round trips.
  for (std::size_t k = 1; k < 10; ++k) {
    EXPECT_LT(client_logic->responses[k - 1].second, client_logic->responses[k].second);
  }
}

TEST_F(MethodTransactorTest, CallFromNonReactorClientFailsCleanly) {
  // An untagged (legacy) client calls the DEAR-served method; the server
  // transactor's kFail policy rejects it and the client receives an error
  // instead of a silently unordered execution.
  build(0);
  start_drivers();
  kernel.run_until(5_ms);
  auto future = proxy->compute(7);  // raw ara call, no tag
  kernel.run_until(100_ms);
  ASSERT_TRUE(future.is_ready());
  EXPECT_FALSE(future.GetResult().has_value());
  EXPECT_EQ(server_tx->untagged_messages(), 1u);
  EXPECT_TRUE(server_logic->request_tags.empty());
}

TEST_F(MethodTransactorTest, PhysicalTimePolicyServesLegacyClients) {
  server_logic = std::make_unique<ComputeServer>(server_env);
  TransactorConfig config = transactor_config(kDs, kL);
  config.untagged = UntaggedPolicy::kPhysicalTime;
  server_tx = std::make_unique<ServerMethodTransactor<std::int64_t, std::int64_t>>(
      "server_tx", server_env, skeleton.compute, server_rt.binding(), config);
  server_env.connect(server_tx->request, server_logic->request);
  server_env.connect(server_logic->response, server_tx->response);
  start_drivers();
  kernel.run_until(5_ms);
  auto future = proxy->compute(7);
  kernel.run_until(100_ms);
  ASSERT_TRUE(future.is_ready());
  ASSERT_TRUE(future.GetResult().has_value());
  EXPECT_EQ(future.GetResult().value(), 21);
  EXPECT_EQ(server_tx->untagged_messages(), 1u);
}

}  // namespace
}  // namespace dear::transact
