#include <gtest/gtest.h>

#include "dear_fixture.hpp"

namespace dear::transact {
namespace {

using namespace dear::literals;
using testing::Consumer;
using testing::DearWorld;
using testing::Producer;

struct EventTransactorTest : DearWorld {};

TEST_F(EventTransactorTest, EndToEndTagAlgebra) {
  // Producer emits at tags kMillisecond-grid t; the client must observe the
  // value at exactly t + Ds + L + E.
  const Duration deadline = 2_ms;
  const Duration latency_bound = 5_ms;
  Producer producer(server_env, 10_ms, 5);
  ServerEventTransactor<std::int64_t> server_tx("server_tx", server_env, skeleton.data,
                                                server_rt.binding(),
                                                transactor_config(deadline, latency_bound));
  server_env.connect(producer.out, server_tx.in);

  Consumer consumer(client_env);
  ClientEventTransactor<std::int64_t> client_tx("client_tx", client_env, proxy->data,
                                                client_rt.binding(),
                                                transactor_config(deadline, latency_bound));
  client_env.connect(client_tx.out, consumer.in);

  start_drivers();
  kernel.run_until(100_ms);

  ASSERT_EQ(consumer.received.size(), 5u);
  for (std::size_t i = 0; i < consumer.received.size(); ++i) {
    EXPECT_EQ(consumer.received[i].first, static_cast<std::int64_t>(i));
    const TimePoint send_tag = kSettle + static_cast<TimePoint>(i) * 10_ms;
    EXPECT_EQ(consumer.received[i].second,
              (reactor::Tag{send_tag + deadline + latency_bound, 0}));
  }
  EXPECT_EQ(server_tx.messages_sent(), 5u);
  EXPECT_EQ(client_tx.messages_released(), 5u);
  EXPECT_EQ(client_tx.tardy_messages(), 0u);
  EXPECT_EQ(client_tx.untagged_messages(), 0u);
}

TEST_F(EventTransactorTest, ClockErrorBoundAddsToReleaseTag) {
  Producer producer(server_env, 10_ms, 1);
  ServerEventTransactor<std::int64_t> server_tx(
      "server_tx", server_env, skeleton.data, server_rt.binding(),
      transactor_config(2_ms, 5_ms, /*clock_error=*/3_ms));
  server_env.connect(producer.out, server_tx.in);
  Consumer consumer(client_env);
  ClientEventTransactor<std::int64_t> client_tx(
      "client_tx", client_env, proxy->data, client_rt.binding(),
      transactor_config(2_ms, 5_ms, /*clock_error=*/3_ms));
  client_env.connect(client_tx.out, consumer.in);
  start_drivers();
  kernel.run_until(100_ms);
  ASSERT_EQ(consumer.received.size(), 1u);
  EXPECT_EQ(consumer.received[0].second.time, kSettle + 2_ms + 5_ms + 3_ms);
}

TEST_F(EventTransactorTest, FanOutToTwoReactorClients) {
  ara::Runtime client2_rt(network, discovery, executor, {3, 300}, 0x03);
  reactor::Environment client2_env(clock, keepalive_config());
  testing::WorldProxy proxy2(client2_rt, *client2_rt.resolve({testing::kService, 1}));

  Producer producer(server_env, 10_ms, 3);
  ServerEventTransactor<std::int64_t> server_tx("server_tx", server_env, skeleton.data,
                                                server_rt.binding(), transactor_config());
  server_env.connect(producer.out, server_tx.in);

  Consumer consumer1(client_env);
  ClientEventTransactor<std::int64_t> client_tx1("client_tx1", client_env, proxy->data,
                                                 client_rt.binding(), transactor_config());
  client_env.connect(client_tx1.out, consumer1.in);

  Consumer consumer2(client2_env);
  ClientEventTransactor<std::int64_t> client_tx2("client_tx2", client2_env, proxy2.data,
                                                 client2_rt.binding(), transactor_config());
  client2_env.connect(client_tx2.out, consumer2.in);

  reactor::SimDriver driver2(client2_env, kernel, common::Rng(13));
  driver2.start();
  start_drivers();
  kernel.run_until(100_ms);

  ASSERT_EQ(consumer1.received.size(), 3u);
  ASSERT_EQ(consumer2.received.size(), 3u);
  // Both clients observe identical tags: deterministic fan-out.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(consumer1.received[i], consumer2.received[i]);
  }
}

TEST_F(EventTransactorTest, DeadlineViolationDropsSample) {
  // The producer's modeled cost exceeds the sending deadline, so the
  // transactor's deadline handler fires and the sample is never sent —
  // an *observable* error.
  class SlowProducer final : public reactor::Reactor {
   public:
    reactor::Output<std::int64_t> out{"out", this};
    explicit SlowProducer(reactor::Environment& env)
        : Reactor("slow_producer", env), timer_("timer", this, 20_ms) {
      add_reaction("emit", [this] { out.set(next_++); })
          .triggered_by(timer_)
          .writes(out)
          .set_modeled_cost(sim::ExecTimeModel::constant(4_ms));
    }

   private:
    reactor::Timer timer_;
    std::int64_t next_{0};
  };

  SlowProducer producer(server_env);
  ServerEventTransactor<std::int64_t> server_tx("server_tx", server_env, skeleton.data,
                                                server_rt.binding(),
                                                transactor_config(/*deadline=*/2_ms));
  server_env.connect(producer.out, server_tx.in);
  Consumer consumer(client_env);
  ClientEventTransactor<std::int64_t> client_tx("client_tx", client_env, proxy->data,
                                                client_rt.binding(), transactor_config(2_ms));
  client_env.connect(client_tx.out, consumer.in);
  start_drivers();
  kernel.run_until(100_ms);
  EXPECT_EQ(consumer.received.size(), 0u);
  EXPECT_GT(server_tx.deadline_violations(), 0u);
  EXPECT_EQ(server_tx.messages_sent(), 0u);
}

TEST_F(EventTransactorTest, UntaggedFailPolicyDropsLegacyEvents) {
  // A legacy (non-reactor) server sends plain events; the DEAR client with
  // the default kFail policy drops them and counts the error.
  Consumer consumer(client_env);
  ClientEventTransactor<std::int64_t> client_tx("client_tx", client_env, proxy->data,
                                                client_rt.binding(), transactor_config());
  client_env.connect(client_tx.out, consumer.in);
  start_drivers();
  kernel.run_until(5_ms);
  skeleton.data.Send(41);  // untagged: no transactor on the server side
  kernel.run_until(50_ms);
  EXPECT_TRUE(consumer.received.empty());
  EXPECT_EQ(client_tx.untagged_messages(), 1u);
  EXPECT_EQ(client_tx.dropped_messages(), 1u);
}

TEST_F(EventTransactorTest, UntaggedPhysicalTimePolicyAcceptsLegacyEvents) {
  Consumer consumer(client_env);
  TransactorConfig config = transactor_config();
  config.untagged = UntaggedPolicy::kPhysicalTime;
  ClientEventTransactor<std::int64_t> client_tx("client_tx", client_env, proxy->data,
                                                client_rt.binding(), config);
  client_env.connect(client_tx.out, consumer.in);
  start_drivers();
  kernel.run_until(5_ms);
  skeleton.data.Send(41);
  kernel.run_until(50_ms);
  ASSERT_EQ(consumer.received.size(), 1u);
  EXPECT_EQ(consumer.received[0].first, 41);
  // Tagged with physical reception time: after the send instant.
  EXPECT_GT(consumer.received[0].second.time, 5_ms);
  EXPECT_EQ(client_tx.untagged_messages(), 1u);
  EXPECT_EQ(client_tx.dropped_messages(), 0u);
}

TEST_F(EventTransactorTest, TagsPreserveOrderDespiteNetworkJitter) {
  // High-jitter link that reorders packets in flight: tag-order processing
  // at the client restores the logical order.
  net::LinkParams jittery;
  jittery.latency = sim::ExecTimeModel::uniform(0, 4_ms);
  network.set_default_link(jittery);

  Producer producer(server_env, 5_ms, 20);
  ServerEventTransactor<std::int64_t> server_tx("server_tx", server_env, skeleton.data,
                                                server_rt.binding(),
                                                transactor_config(2_ms, 5_ms));
  server_env.connect(producer.out, server_tx.in);
  Consumer consumer(client_env);
  ClientEventTransactor<std::int64_t> client_tx("client_tx", client_env, proxy->data,
                                                client_rt.binding(),
                                                transactor_config(2_ms, 5_ms));
  client_env.connect(client_tx.out, consumer.in);
  start_drivers();
  kernel.run_until(300_ms);
  ASSERT_EQ(consumer.received.size(), 20u);
  for (std::size_t i = 0; i < consumer.received.size(); ++i) {
    EXPECT_EQ(consumer.received[i].first, static_cast<std::int64_t>(i))
        << "values must arrive in tag order regardless of wire order";
  }
  EXPECT_EQ(client_tx.tardy_messages(), 0u);
}

}  // namespace
}  // namespace dear::transact
