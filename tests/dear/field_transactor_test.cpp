// Field transactor bundles: "interaction with fields requires the use of
// one event and two method transactors" (paper §III.B).
#include <gtest/gtest.h>

#include "dear_fixture.hpp"

namespace dear::transact {
namespace {

using namespace dear::literals;
using testing::DearWorld;

constexpr ara::FieldIds kSpeedField{0x30, 0x31, 0x8030};

class FieldSkeleton : public ara::ServiceSkeleton {
 public:
  explicit FieldSkeleton(ara::Runtime& runtime)
      : ServiceSkeleton(runtime, {testing::kService, testing::kInstance}) {}

  FieldServerParts<double> speed{*this, kSpeedField};
};

class FieldProxy : public ara::ServiceProxy {
 public:
  FieldProxy(ara::Runtime& runtime, net::Endpoint server)
      : ServiceProxy(runtime, {testing::kService, testing::kInstance}, server) {}

  FieldClientParts<double> speed{*this, kSpeedField};
};

/// Server logic owning the field state: reacts to get/set requests and
/// publishes updates.
class FieldOwner final : public reactor::Reactor {
 public:
  reactor::Input<reactor::Empty> get_req{"get_req", this};
  reactor::Output<double> get_res{"get_res", this};
  reactor::Input<double> set_req{"set_req", this};
  reactor::Output<double> set_res{"set_res", this};
  reactor::Output<double> notify_out{"notify_out", this};

  explicit FieldOwner(reactor::Environment& env, double initial)
      : Reactor("field_owner", env), value_(initial) {
    add_reaction("on_get", [this] { get_res.set(value_); })
        .triggered_by(get_req)
        .writes(get_res);
    add_reaction("on_set",
                 [this] {
                   value_ = set_req.get();
                   set_res.set(value_);
                   notify_out.set(value_);
                 })
        .triggered_by(set_req)
        .writes(set_res)
        .writes(notify_out);
  }

  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_;
};

/// Client logic: gets, then sets, then observes the update notification.
class FieldUser final : public reactor::Reactor {
 public:
  reactor::Output<reactor::Empty> get_req{"get_req", this};
  reactor::Input<double> get_res{"get_res", this};
  reactor::Output<double> set_req{"set_req", this};
  reactor::Input<double> set_res{"set_res", this};
  reactor::Input<double> update_in{"update_in", this};

  std::vector<double> gets;
  std::vector<double> set_acks;
  std::vector<double> updates;

  explicit FieldUser(reactor::Environment& env) : Reactor("field_user", env) {
    add_reaction("kickoff", [this] { get_req.set(reactor::Empty{}); })
        .triggered_by(startup_)
        .writes(get_req);
    add_reaction("on_get",
                 [this] {
                   gets.push_back(get_res.get());
                   set_req.set(get_res.get() + 10.0);
                 })
        .triggered_by(get_res)
        .writes(set_req);
    add_reaction("on_set_ack", [this] { set_acks.push_back(set_res.get()); })
        .triggered_by(set_res);
    add_reaction("on_update", [this] { updates.push_back(update_in.get()); })
        .triggered_by(update_in);
  }

 private:
  reactor::StartupTrigger startup_{"startup", this};
};

struct FieldTransactorTest : DearWorld {};

TEST_F(FieldTransactorTest, GetSetNotifyThroughBundles) {
  FieldSkeleton field_skel(server_rt);
  field_skel.OfferService();
  FieldProxy field_proxy(client_rt, *client_rt.resolve({testing::kService, testing::kInstance}));

  FieldOwner owner(server_env, 100.0);
  ServerFieldTransactor<double> server_field("speed", server_env, field_skel.speed,
                                             server_rt.binding(), transactor_config());
  server_env.connect(server_field.get.request, owner.get_req);
  server_env.connect(owner.get_res, server_field.get.response);
  server_env.connect(server_field.set.request, owner.set_req);
  server_env.connect(owner.set_res, server_field.set.response);
  server_env.connect(owner.notify_out, server_field.notify.in);

  FieldUser user(client_env);
  ClientFieldTransactor<double> client_field("speed", client_env, field_proxy.speed,
                                             client_rt.binding(), transactor_config());
  client_env.connect(user.get_req, client_field.get.request);
  client_env.connect(client_field.get.response, user.get_res);
  client_env.connect(user.set_req, client_field.set.request);
  client_env.connect(client_field.set.response, user.set_res);
  client_env.connect(client_field.notify.out, user.update_in);

  start_drivers();
  kernel.run_until(500_ms);

  ASSERT_EQ(user.gets.size(), 1u);
  EXPECT_DOUBLE_EQ(user.gets[0], 100.0);
  ASSERT_EQ(user.set_acks.size(), 1u);
  EXPECT_DOUBLE_EQ(user.set_acks[0], 110.0);
  ASSERT_EQ(user.updates.size(), 1u);
  EXPECT_DOUBLE_EQ(user.updates[0], 110.0);
  EXPECT_DOUBLE_EQ(owner.value(), 110.0);
  EXPECT_EQ(server_field.total_errors(), 0u);
  EXPECT_EQ(client_field.total_errors(), 0u);
}

TEST_F(FieldTransactorTest, LegacyFieldServerWithPhysicalTimePolicy) {
  // A SkeletonField-based legacy server (no reactors at all) serves a DEAR
  // client under the kPhysicalTime fallback — the paper's migration path.
  class LegacySkeleton : public ara::ServiceSkeleton {
   public:
    explicit LegacySkeleton(ara::Runtime& runtime)
        : ServiceSkeleton(runtime, {testing::kService, testing::kInstance}) {}
    ara::SkeletonField<double> speed{*this, kSpeedField};
  };
  LegacySkeleton legacy(server_rt);
  legacy.speed.Update(55.0);
  legacy.OfferService();
  FieldProxy field_proxy(client_rt, *client_rt.resolve({testing::kService, testing::kInstance}));

  FieldUser user(client_env);
  TransactorConfig config = transactor_config();
  config.untagged = UntaggedPolicy::kPhysicalTime;
  ClientFieldTransactor<double> client_field("speed", client_env, field_proxy.speed,
                                             client_rt.binding(), config);
  client_env.connect(user.get_req, client_field.get.request);
  client_env.connect(client_field.get.response, user.get_res);
  client_env.connect(user.set_req, client_field.set.request);
  client_env.connect(client_field.set.response, user.set_res);
  client_env.connect(client_field.notify.out, user.update_in);

  start_drivers();
  kernel.run_until(500_ms);

  ASSERT_EQ(user.gets.size(), 1u);
  EXPECT_DOUBLE_EQ(user.gets[0], 55.0);
  ASSERT_EQ(user.set_acks.size(), 1u);
  EXPECT_DOUBLE_EQ(user.set_acks[0], 65.0);
  // The legacy server's responses were untagged, handled via physical time.
  EXPECT_GT(client_field.get.untagged_messages() + client_field.set.untagged_messages(), 0u);
  // The set triggered a legacy notification too.
  ASSERT_EQ(user.updates.size(), 1u);
  EXPECT_DOUBLE_EQ(user.updates[0], 65.0);
}

}  // namespace
}  // namespace dear::transact
