// Simulation world for the transactor tests: a server SWC and a client SWC
// (each an ara runtime + reactor environment) connected through a single
// AP event service over the DES network.
#pragma once

#include <gtest/gtest.h>

#include "ara/event.hpp"
#include "ara/method.hpp"
#include "ara/proxy.hpp"
#include "ara/runtime.hpp"
#include "ara/skeleton.hpp"
#include "dear/dear.hpp"
#include "net/sim_network.hpp"
#include "sim/sim_executor.hpp"

namespace dear::transact::testing {

inline constexpr someip::ServiceId kService = 0x0B0B;
inline constexpr someip::InstanceId kInstance = 1;
inline constexpr someip::EventId kDataEvent = 0x8001;
inline constexpr someip::MethodId kComputeMethod = 0x01;

class WorldSkeleton : public ara::ServiceSkeleton {
 public:
  explicit WorldSkeleton(ara::Runtime& runtime)
      : ServiceSkeleton(runtime, {kService, kInstance}) {}

  ara::SkeletonEvent<std::int64_t> data{*this, kDataEvent};
  ara::SkeletonMethod<std::int64_t, std::int64_t> compute{*this, kComputeMethod};
};

class WorldProxy : public ara::ServiceProxy {
 public:
  WorldProxy(ara::Runtime& runtime, net::Endpoint server)
      : ServiceProxy(runtime, {kService, kInstance}, server) {}

  ara::ProxyEvent<std::int64_t> data{*this, kDataEvent};
  ara::ProxyMethod<std::int64_t, std::int64_t> compute{*this, kComputeMethod};
};

struct DearWorld : public ::testing::Test {
  using Config = reactor::Environment::Config;

  static Config keepalive_config() {
    Config config;
    config.keepalive = true;
    return config;
  }

  DearWorld()
      : network(kernel, common::Rng(9)),
        executor(kernel, common::Rng(10)),
        server_rt(network, discovery, executor, {1, 100}, 0x01),
        client_rt(network, discovery, executor, {2, 200}, 0x02),
        clock(kernel),
        server_env(clock, keepalive_config()),
        client_env(clock, keepalive_config()),
        skeleton(server_rt) {
    skeleton.OfferService();
    proxy = std::make_unique<WorldProxy>(client_rt, *client_rt.resolve({kService, kInstance}));
  }

  [[nodiscard]] TransactorConfig transactor_config(Duration deadline = 2 * kMillisecond,
                                                   Duration latency_bound = 5 * kMillisecond,
                                                   Duration clock_error = 0) const {
    TransactorConfig config;
    config.deadline = deadline;
    config.latency_bound = latency_bound;
    config.clock_error_bound = clock_error;
    return config;
  }

  /// Time given to subscription control messages before logical execution
  /// starts (matches the paper's setup: binding happens during startup).
  static constexpr Duration kSettle = kMillisecond;

  void start_drivers() {
    kernel.run_until(kSettle);  // deliver subscription control messages
    server_driver = std::make_unique<reactor::SimDriver>(server_env, kernel, common::Rng(11));
    client_driver = std::make_unique<reactor::SimDriver>(client_env, kernel, common::Rng(12));
    server_driver->start();
    client_driver->start();
  }

  sim::Kernel kernel;
  net::SimNetwork network;
  someip::ServiceDiscovery discovery;
  sim::SimExecutor executor;
  ara::Runtime server_rt;
  ara::Runtime client_rt;
  reactor::SimClock clock;
  reactor::Environment server_env;
  reactor::Environment client_env;
  WorldSkeleton skeleton;
  std::unique_ptr<WorldProxy> proxy;
  std::unique_ptr<reactor::SimDriver> server_driver;
  std::unique_ptr<reactor::SimDriver> client_driver;
};

/// Producer reactor for the server side: emits values on a timer.
class Producer final : public reactor::Reactor {
 public:
  reactor::Output<std::int64_t> out{"out", this};

  Producer(reactor::Environment& env, Duration period, int limit)
      : Reactor("producer", env), timer_("timer", this, period) {
    add_reaction("emit",
                 [this, limit] {
                   // Stop emitting after `limit` values but keep the
                   // environment alive; the test harness bounds the run.
                   if (next_ < limit) {
                     out.set(next_++);
                   }
                 })
        .triggered_by(timer_)
        .writes(out);
  }

 private:
  reactor::Timer timer_;
  std::int64_t next_{0};
};

/// Consumer reactor for the client side: records values and tags.
class Consumer final : public reactor::Reactor {
 public:
  reactor::Input<std::int64_t> in{"in", this};
  std::vector<std::pair<std::int64_t, reactor::Tag>> received;

  explicit Consumer(reactor::Environment& env) : Reactor("consumer", env) {
    add_reaction("record", [this] {
      received.emplace_back(in.get(), current_tag());
    }).triggered_by(in);
  }
};

}  // namespace dear::transact::testing
