#include "someip/serialization.hpp"

#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dear::someip {
namespace {

TEST(Writer, BigEndianLayout) {
  Writer w;
  w.write_u16(0x1234);
  w.write_u32(0xAABBCCDD);
  const auto& bytes = w.bytes();
  ASSERT_EQ(bytes.size(), 6u);
  EXPECT_EQ(bytes[0], 0x12);
  EXPECT_EQ(bytes[1], 0x34);
  EXPECT_EQ(bytes[2], 0xAA);
  EXPECT_EQ(bytes[3], 0xBB);
  EXPECT_EQ(bytes[4], 0xCC);
  EXPECT_EQ(bytes[5], 0xDD);
}

TEST(Serialization, PrimitiveRoundTrip) {
  Writer w;
  someip_serialize(w, std::uint8_t{0xFE});
  someip_serialize(w, std::uint16_t{0xBEEF});
  someip_serialize(w, std::uint32_t{0xDEADBEEF});
  someip_serialize(w, std::uint64_t{0x0123456789ABCDEFULL});
  someip_serialize(w, std::int8_t{-5});
  someip_serialize(w, std::int16_t{-3000});
  someip_serialize(w, std::int32_t{-2'000'000'000});
  someip_serialize(w, std::int64_t{-9'000'000'000'000LL});
  someip_serialize(w, 3.5f);
  someip_serialize(w, -2.25);
  someip_serialize(w, true);

  Reader r(w.bytes());
  std::uint8_t u8;
  std::uint16_t u16;
  std::uint32_t u32;
  std::uint64_t u64;
  std::int8_t i8;
  std::int16_t i16;
  std::int32_t i32;
  std::int64_t i64;
  float f32;
  double f64;
  bool flag;
  someip_deserialize(r, u8);
  someip_deserialize(r, u16);
  someip_deserialize(r, u32);
  someip_deserialize(r, u64);
  someip_deserialize(r, i8);
  someip_deserialize(r, i16);
  someip_deserialize(r, i32);
  someip_deserialize(r, i64);
  someip_deserialize(r, f32);
  someip_deserialize(r, f64);
  someip_deserialize(r, flag);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(u8, 0xFE);
  EXPECT_EQ(u16, 0xBEEF);
  EXPECT_EQ(u32, 0xDEADBEEF);
  EXPECT_EQ(u64, 0x0123456789ABCDEFULL);
  EXPECT_EQ(i8, -5);
  EXPECT_EQ(i16, -3000);
  EXPECT_EQ(i32, -2'000'000'000);
  EXPECT_EQ(i64, -9'000'000'000'000LL);
  EXPECT_FLOAT_EQ(f32, 3.5f);
  EXPECT_DOUBLE_EQ(f64, -2.25);
  EXPECT_TRUE(flag);
}

TEST(Serialization, SpecialFloats) {
  Writer w;
  someip_serialize(w, std::numeric_limits<double>::infinity());
  someip_serialize(w, std::nan(""));
  Reader r(w.bytes());
  double inf;
  double nan_value;
  someip_deserialize(r, inf);
  someip_deserialize(r, nan_value);
  EXPECT_TRUE(std::isinf(inf));
  EXPECT_TRUE(std::isnan(nan_value));
}

TEST(Serialization, StringRoundTrip) {
  Writer w;
  someip_serialize(w, std::string("hello SOME/IP"));
  someip_serialize(w, std::string());
  someip_serialize(w, std::string("\0binary\xff", 8));
  Reader r(w.bytes());
  std::string a;
  std::string b;
  std::string c;
  someip_deserialize(r, a);
  someip_deserialize(r, b);
  someip_deserialize(r, c);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(a, "hello SOME/IP");
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c.size(), 8u);
}

TEST(Serialization, VectorRoundTrip) {
  Writer w;
  someip_serialize(w, std::vector<std::uint32_t>{1, 2, 3});
  someip_serialize(w, std::vector<std::string>{"a", "bb"});
  someip_serialize(w, std::vector<double>{});
  Reader r(w.bytes());
  std::vector<std::uint32_t> ints;
  std::vector<std::string> strings;
  std::vector<double> empty;
  someip_deserialize(r, ints);
  someip_deserialize(r, strings);
  someip_deserialize(r, empty);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(ints, (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_EQ(strings, (std::vector<std::string>{"a", "bb"}));
  EXPECT_TRUE(empty.empty());
}

TEST(Reader, ShortBufferFails) {
  const std::vector<std::uint8_t> short_buffer{0x01, 0x02};
  Reader r(short_buffer);
  (void)r.read_u32();
  EXPECT_FALSE(r.ok());
  // Subsequent reads stay failed and return zero.
  EXPECT_EQ(r.read_u8(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(Reader, StringLengthBeyondBufferFails) {
  Writer w;
  w.write_u32(1000);  // claims 1000 bytes
  w.write_u8('x');
  Reader r(w.bytes());
  const std::string s = r.read_string();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(s.empty());
}

TEST(Reader, VectorCountBeyondBufferFails) {
  Writer w;
  w.write_u32(1'000'000);  // claims a million elements
  Reader r(w.bytes());
  std::vector<std::uint64_t> v;
  someip_deserialize(r, v);
  EXPECT_FALSE(r.ok());
}

TEST(Reader, ExplicitFail) {
  Writer w;
  w.write_u8(1);
  Reader r(w.bytes());
  r.fail();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.read_u8(), 0u);
}

TEST(PayloadHelpers, EncodeDecodeMultipleArguments) {
  const auto payload = encode_payload(std::int32_t{-7}, std::string("arg"), true);
  std::int32_t a = 0;
  std::string b;
  bool c = false;
  EXPECT_TRUE(decode_payload(payload, a, b, c));
  EXPECT_EQ(a, -7);
  EXPECT_EQ(b, "arg");
  EXPECT_TRUE(c);
}

TEST(PayloadHelpers, DecodeWrongShapeFails) {
  const auto payload = encode_payload(std::uint8_t{1});
  std::uint64_t wide = 0;
  EXPECT_FALSE(decode_payload(payload, wide));
}

TEST(PayloadHelpers, EmptyPayload) {
  const auto payload = encode_payload();
  EXPECT_TRUE(payload.empty());
  EXPECT_TRUE(decode_payload(payload));
}

/// Property: randomly generated payloads of mixed types always round-trip
/// exactly, and truncating them anywhere always fails cleanly.
class SerializationFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializationFuzzTest, RandomPayloadRoundTrip) {
  common::Rng rng(GetParam());
  const auto random_string = [&rng] {
    std::string s(rng.next_below(40), '\0');
    for (char& c : s) {
      c = static_cast<char>(rng.next_below(256));
    }
    return s;
  };
  const std::uint64_t a = rng();
  const std::int32_t b = static_cast<std::int32_t>(rng());
  const std::string c = random_string();
  std::vector<std::uint16_t> d(rng.next_below(20));
  for (auto& value : d) {
    value = static_cast<std::uint16_t>(rng());
  }
  const double e = rng.uniform01() * 1e9;
  const bool f = rng.chance(0.5);

  const auto payload = encode_payload(a, b, c, d, e, f);

  std::uint64_t a2 = 0;
  std::int32_t b2 = 0;
  std::string c2;
  std::vector<std::uint16_t> d2;
  double e2 = 0;
  bool f2 = false;
  ASSERT_TRUE(decode_payload(payload, a2, b2, c2, d2, e2, f2));
  EXPECT_EQ(a2, a);
  EXPECT_EQ(b2, b);
  EXPECT_EQ(c2, c);
  EXPECT_EQ(d2, d);
  EXPECT_DOUBLE_EQ(e2, e);
  EXPECT_EQ(f2, f);

  // Any strict prefix must fail to decode (never crash, never succeed).
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    const std::vector<std::uint8_t> truncated(payload.begin(),
                                              payload.begin() + static_cast<long>(cut));
    EXPECT_FALSE(decode_payload(truncated, a2, b2, c2, d2, e2, f2)) << "cut=" << cut;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializationFuzzTest, ::testing::Range<std::uint64_t>(1, 17));

TEST(Writer, ReusedBufferRetainsCapacityAndClearsContent) {
  Writer first;
  first.write_u32(0xAABBCCDD);
  std::vector<std::uint8_t> buffer = first.take();
  buffer.reserve(128);
  const std::uint8_t* storage = buffer.data();

  Writer reused(std::move(buffer));
  reused.write_u16(0x1234);
  EXPECT_EQ(reused.size(), 2u);  // cleared, not appended
  const auto& bytes = reused.bytes();
  EXPECT_EQ(bytes.data(), storage);  // same storage, no reallocation
  EXPECT_EQ(bytes[0], 0x12);
  EXPECT_EQ(bytes[1], 0x34);
}

TEST(Serialization, EncodePayloadIntoMatchesEncodePayload) {
  const std::vector<std::uint32_t> values = {1, 2, 3, 0xFFFFFFFF};
  const auto fresh = encode_payload(values, std::string("abc"), true);
  std::vector<std::uint8_t> reused(64, 0xEE);
  encode_payload_into(reused, values, std::string("abc"), true);
  EXPECT_EQ(reused, fresh);
}

TEST(Reader, ReadStringViewIsZeroCopy) {
  Writer w;
  w.write_string("hello view");
  const auto wire = w.take();
  Reader r(wire);
  const std::string_view view = r.read_string_view();
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(view, "hello view");
  EXPECT_EQ(static_cast<const void*>(view.data()), wire.data() + 4);  // after the length field
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Reader, ReadStringViewFailsOnShortBuffer) {
  Writer w;
  w.write_u32(100);  // length field promises more than the buffer holds
  w.write_u8('x');
  const auto wire = w.take();
  Reader r(wire);
  EXPECT_TRUE(r.read_string_view().empty());
  EXPECT_FALSE(r.ok());
}

TEST(Reader, ViewBytesAdvancesCursor) {
  Writer w;
  w.write_u32(0x01020304);
  w.write_u16(0xAABB);
  const auto wire = w.take();
  Reader r(wire);
  const std::uint8_t* view = r.view_bytes(4);
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view[0], 0x01);
  EXPECT_EQ(r.read_u16(), 0xAABB);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.view_bytes(1), nullptr);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace dear::someip
