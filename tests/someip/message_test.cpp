#include "someip/message.hpp"

#include <gtest/gtest.h>

namespace dear::someip {
namespace {

Message sample_message() {
  Message m;
  m.service = 0x1234;
  m.method = 0x8005;
  m.client = 0x00AB;
  m.session = 0x0042;
  m.interface_version = 2;
  m.type = MessageType::kNotification;
  m.return_code = ReturnCode::kOk;
  m.payload = {1, 2, 3, 4, 5};
  return m;
}

TEST(Message, UntaggedRoundTrip) {
  const Message original = sample_message();
  const auto wire = original.encode();
  EXPECT_EQ(wire.size(), kHeaderSize + 5);
  const auto decoded = Message::decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->service, original.service);
  EXPECT_EQ(decoded->method, original.method);
  EXPECT_EQ(decoded->client, original.client);
  EXPECT_EQ(decoded->session, original.session);
  EXPECT_EQ(decoded->interface_version, original.interface_version);
  EXPECT_EQ(decoded->type, original.type);
  EXPECT_EQ(decoded->return_code, original.return_code);
  EXPECT_EQ(decoded->payload, original.payload);
  EXPECT_FALSE(decoded->tag.has_value());
}

TEST(Message, TaggedRoundTrip) {
  Message original = sample_message();
  original.tag = WireTag{123'456'789'012LL, 7};
  const auto wire = original.encode();
  EXPECT_EQ(wire.size(), kHeaderSize + 5 + kTagTrailerSize);
  const auto decoded = Message::decode(wire);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->tag.has_value());
  EXPECT_EQ(decoded->tag->time, 123'456'789'012LL);
  EXPECT_EQ(decoded->tag->microstep, 7u);
  EXPECT_EQ(decoded->payload, original.payload);
}

TEST(Message, TaggedUsesExtendedProtocolVersion) {
  Message original = sample_message();
  original.tag = WireTag{1, 0};
  const auto wire = original.encode();
  EXPECT_EQ(wire[12], kTaggedProtocolVersion);
  Message untagged = sample_message();
  EXPECT_EQ(untagged.encode()[12], kProtocolVersion);
}

TEST(Message, NegativeTagTime) {
  Message original = sample_message();
  original.tag = WireTag{-500, 0};
  const auto decoded = Message::decode(original.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->tag->time, -500);
}

TEST(Message, EmptyPayload) {
  Message original = sample_message();
  original.payload.clear();
  const auto decoded = Message::decode(original.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(Message, EmptyPayloadTagged) {
  Message original = sample_message();
  original.payload.clear();
  original.tag = WireTag{42, 1};
  const auto decoded = Message::decode(original.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->payload.empty());
  EXPECT_EQ(decoded->tag->time, 42);
}

TEST(Message, DecodeRejectsShortBuffer) {
  const auto wire = sample_message().encode();
  for (std::size_t cut = 1; cut < kHeaderSize; ++cut) {
    std::vector<std::uint8_t> truncated(wire.begin(), wire.begin() + static_cast<long>(cut));
    EXPECT_FALSE(Message::decode(truncated).has_value()) << "cut=" << cut;
  }
}

TEST(Message, DecodeRejectsInconsistentLength) {
  auto wire = sample_message().encode();
  wire.push_back(0xFF);  // trailing garbage not covered by the length field
  EXPECT_FALSE(Message::decode(wire).has_value());
  auto wire2 = sample_message().encode();
  wire2.pop_back();  // truncated payload
  EXPECT_FALSE(Message::decode(wire2).has_value());
}

TEST(Message, DecodeRejectsUnknownProtocolVersion) {
  auto wire = sample_message().encode();
  wire[12] = 0x7F;
  EXPECT_FALSE(Message::decode(wire).has_value());
}

TEST(Message, DecodeRejectsTaggedMessageTooShortForTrailer) {
  Message m = sample_message();
  m.payload.clear();
  auto wire = m.encode();
  wire[12] = kTaggedProtocolVersion;  // claims a trailer it does not have
  EXPECT_FALSE(Message::decode(wire).has_value());
}

TEST(Message, TypePredicates) {
  Message m;
  m.type = MessageType::kRequest;
  EXPECT_TRUE(m.is_request());
  m.type = MessageType::kRequestNoReturn;
  EXPECT_TRUE(m.is_request());
  EXPECT_FALSE(m.is_response());
  m.type = MessageType::kResponse;
  EXPECT_TRUE(m.is_response());
  m.type = MessageType::kError;
  EXPECT_TRUE(m.is_response());
  m.type = MessageType::kNotification;
  EXPECT_TRUE(m.is_notification());
}

TEST(Types, EventIdPredicate) {
  EXPECT_TRUE(is_event_id(0x8000));
  EXPECT_TRUE(is_event_id(0xFFFF));
  EXPECT_FALSE(is_event_id(0x7FFF));
  EXPECT_FALSE(is_event_id(0x0001));
}

TEST(Message, EncodeIntoMatchesEncodeAndReusesCapacity) {
  Message tagged = sample_message();
  tagged.tag = WireTag{987654321, 7};
  const auto fresh = tagged.encode();

  std::vector<std::uint8_t> reused;
  reused.reserve(256);
  const std::uint8_t* storage = reused.data();
  tagged.encode_into(reused);
  EXPECT_EQ(reused, fresh);
  EXPECT_EQ(reused.data(), storage);  // warm buffer: no reallocation

  // Re-encoding an untagged message into the same buffer replaces it.
  const Message untagged = sample_message();
  tagged.encode_into(reused);
  const auto fresh_again = tagged.encode();
  EXPECT_EQ(reused, fresh_again);
  untagged.encode_into(reused);
  EXPECT_EQ(reused, untagged.encode());
}

TEST(Message, DecodeIntoReusesScratchAndClearsStaleTag) {
  Message tagged = sample_message();
  tagged.tag = WireTag{123, 4};
  const auto tagged_wire = tagged.encode();
  const auto untagged_wire = sample_message().encode();

  Message scratch;
  ASSERT_TRUE(Message::decode_into(tagged_wire.data(), tagged_wire.size(), scratch));
  ASSERT_TRUE(scratch.tag.has_value());
  EXPECT_EQ(scratch.tag->time, 123);
  // An untagged message through the same scratch must not inherit the tag.
  ASSERT_TRUE(Message::decode_into(untagged_wire.data(), untagged_wire.size(), scratch));
  EXPECT_FALSE(scratch.tag.has_value());
  EXPECT_EQ(scratch.payload, sample_message().payload);
}

TEST(Message, EncodedSizeMatchesWireSize) {
  Message m = sample_message();
  EXPECT_EQ(m.encoded_size(), m.encode().size());
  m.tag = WireTag{1, 1};
  EXPECT_EQ(m.encoded_size(), m.encode().size());
}

}  // namespace
}  // namespace dear::someip
