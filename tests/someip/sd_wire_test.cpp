#include "someip/sd_wire.hpp"

#include "someip/binding.hpp"

#include <gtest/gtest.h>

namespace dear::someip {
namespace {

SdEndpointOption endpoint(std::uint32_t address, std::uint16_t port) {
  SdEndpointOption option;
  option.address = address;
  option.port = port;
  return option;
}

TEST(SdWire, EmptyMessageRoundTrip) {
  SdMessage message;
  const auto decoded = SdMessage::decode(message.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, message);
}

TEST(SdWire, OfferEntryRoundTrip) {
  SdMessage message;
  message.entries.push_back(make_offer_entry(0x1234, 0x0001, endpoint(0xC0A80001, 30509)));
  const auto decoded = SdMessage::decode(message.encode());
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->entries.size(), 1u);
  const SdEntry& entry = decoded->entries[0];
  EXPECT_EQ(entry.type, SdEntryType::kOfferService);
  EXPECT_EQ(entry.service, 0x1234);
  EXPECT_EQ(entry.instance, 0x0001);
  EXPECT_EQ(entry.ttl, 3u);
  EXPECT_FALSE(entry.is_stop());
  ASSERT_EQ(entry.options.size(), 1u);
  EXPECT_EQ(entry.options[0].address, 0xC0A80001);
  EXPECT_EQ(entry.options[0].port, 30509);
  EXPECT_EQ(entry.options[0].protocol, SdProtocol::kUdp);
}

TEST(SdWire, MultipleEntriesShareOptionArray) {
  SdMessage message;
  message.entries.push_back(make_offer_entry(0x1111, 1, endpoint(0x0A000001, 1000)));
  message.entries.push_back(make_find_entry(0x2222, 2));
  message.entries.push_back(make_offer_entry(0x3333, 3, endpoint(0x0A000002, 2000)));
  const auto decoded = SdMessage::decode(message.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, message);
  EXPECT_TRUE(decoded->entries[1].options.empty());
  EXPECT_EQ(decoded->entries[2].options[0].port, 2000);
}

TEST(SdWire, StopOfferHasZeroTtl) {
  const SdEntry stop = make_stop_offer_entry(0x1234, 1);
  EXPECT_TRUE(stop.is_stop());
  SdMessage message;
  message.entries.push_back(stop);
  const auto decoded = SdMessage::decode(message.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->entries[0].is_stop());
}

TEST(SdWire, TtlIs24Bits) {
  SdMessage message;
  SdEntry entry = make_find_entry(1, 1);
  entry.ttl = 0x00FFFFFF;  // max 24-bit value
  message.entries.push_back(entry);
  const auto decoded = SdMessage::decode(message.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->entries[0].ttl, 0x00FFFFFFu);
}

TEST(SdWire, FlagsPreserved) {
  SdMessage message;
  message.flags = 0x80;
  const auto decoded = SdMessage::decode(message.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->flags, 0x80);
}

TEST(SdWire, EntrySizeOnWire) {
  SdMessage message;
  message.entries.push_back(make_find_entry(1, 1));
  // header 8 + 1 entry (16) + empty options length field (4).
  EXPECT_EQ(message.encode().size(), 8u + 16u + 4u);
  message.entries[0].options.push_back(endpoint(1, 1));
  EXPECT_EQ(message.encode().size(), 8u + 16u + 4u + 12u);
}

TEST(SdWire, DecodeRejectsTruncatedBuffers) {
  SdMessage message;
  message.entries.push_back(make_offer_entry(1, 1, endpoint(1, 1)));
  const auto wire = message.encode();
  for (std::size_t cut = 1; cut < wire.size(); ++cut) {
    std::vector<std::uint8_t> truncated(wire.begin(), wire.begin() + static_cast<long>(cut));
    EXPECT_FALSE(SdMessage::decode(truncated).has_value()) << "cut=" << cut;
  }
}

TEST(SdWire, DecodeRejectsDanglingOptionReference) {
  SdMessage message;
  message.entries.push_back(make_offer_entry(1, 1, endpoint(1, 1)));
  auto wire = message.encode();
  // Corrupt the option count nibble to reference two options when only one
  // exists.
  wire[8 + 3] = 0x20;
  EXPECT_FALSE(SdMessage::decode(wire).has_value());
}

TEST(SdWire, DecodeRejectsMisalignedEntryLength) {
  SdMessage message;
  auto wire = message.encode();
  wire[7] = 5;  // entries length not a multiple of 16
  EXPECT_FALSE(SdMessage::decode(wire).has_value());
}

TEST(SdWire, CanTravelInsideSomeipMessage) {
  SdMessage sd;
  sd.entries.push_back(make_offer_entry(0x1234, 1, endpoint(0x7F000001, 30490)));
  someip::Message carrier;
  carrier.service = kControlService;
  carrier.method = 0x8100;  // SD method id
  carrier.type = MessageType::kNotification;
  carrier.payload = sd.encode();
  const auto decoded_carrier = someip::Message::decode(carrier.encode());
  ASSERT_TRUE(decoded_carrier.has_value());
  const auto decoded_sd = SdMessage::decode(decoded_carrier->payload);
  ASSERT_TRUE(decoded_sd.has_value());
  EXPECT_EQ(*decoded_sd, sd);
}

}  // namespace
}  // namespace dear::someip
