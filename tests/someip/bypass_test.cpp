#include "someip/timestamp_bypass.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace dear::someip {
namespace {

TEST(TimestampBypass, StartsEmpty) {
  TimestampBypass bypass;
  EXPECT_FALSE(bypass.armed());
  EXPECT_FALSE(bypass.collect().has_value());
}

TEST(TimestampBypass, DepositCollectPairing) {
  TimestampBypass bypass;
  bypass.deposit(WireTag{100, 2});
  EXPECT_TRUE(bypass.armed());
  const auto tag = bypass.collect();
  ASSERT_TRUE(tag.has_value());
  EXPECT_EQ(tag->time, 100);
  EXPECT_EQ(tag->microstep, 2u);
  EXPECT_FALSE(bypass.armed());
  EXPECT_FALSE(bypass.collect().has_value());
}

TEST(TimestampBypass, OverwriteCounted) {
  TimestampBypass bypass;
  bypass.deposit(WireTag{1, 0});
  bypass.deposit(WireTag{2, 0});
  EXPECT_EQ(bypass.overwrites(), 1u);
  EXPECT_EQ(bypass.collect()->time, 2);
  bypass.deposit(WireTag{3, 0});
  EXPECT_EQ(bypass.overwrites(), 1u);  // collected in between, no overwrite
}

TEST(TimestampBypass, ConcurrentDepositCollectIsSafe) {
  TimestampBypass bypass;
  std::atomic<bool> done{false};
  std::atomic<int> collected{0};
  std::thread producer([&] {
    for (int i = 0; i < 10'000; ++i) {
      bypass.deposit(WireTag{i, 0});
    }
    done.store(true);
  });
  std::thread consumer([&] {
    while (!done.load() || bypass.armed()) {
      if (bypass.collect().has_value()) {
        collected.fetch_add(1);
      }
    }
  });
  producer.join();
  consumer.join();
  // Every deposit was either collected or overwritten; nothing was lost
  // or double-counted.
  EXPECT_GT(collected.load(), 0);
  EXPECT_EQ(static_cast<std::uint64_t>(collected.load()) + bypass.overwrites(), 10'000u);
  EXPECT_FALSE(bypass.armed());
}

}  // namespace
}  // namespace dear::someip
