#include "someip/binding.hpp"

#include <gtest/gtest.h>

#include "net/sim_network.hpp"
#include "sim/sim_executor.hpp"

namespace dear::someip {
namespace {

using namespace dear::literals;

struct BindingFixture : public ::testing::Test {
  sim::Kernel kernel;
  net::SimNetwork network{kernel, common::Rng(5)};
  sim::ImmediateSimExecutor executor{kernel};
  net::Endpoint server_ep{1, 100};
  net::Endpoint client_ep{2, 200};
  Binding server{network, executor, server_ep, 0x0001};
  Binding client{network, executor, client_ep, 0x0002};
};

TEST_F(BindingFixture, RequestResponseRoundTrip) {
  server.provide_method(0x10, 0x01, [&](const Message& request, const net::Endpoint& from) {
    EXPECT_EQ(request.payload, (std::vector<std::uint8_t>{7}));
    server.respond(request, from, {42});
  });
  std::vector<std::uint8_t> response_payload;
  client.call(server_ep, 0x10, 0x01, {7},
              [&](const Message& response) { response_payload = response.payload; });
  kernel.run();
  EXPECT_EQ(response_payload, (std::vector<std::uint8_t>{42}));
  EXPECT_EQ(client.requests_sent(), 1u);
  EXPECT_EQ(client.responses_received(), 1u);
}

TEST_F(BindingFixture, SessionsMatchConcurrentCalls) {
  server.provide_method(0x10, 0x01, [&](const Message& request, const net::Endpoint& from) {
    server.respond(request, from, request.payload);  // echo
  });
  std::map<int, int> echoed;
  for (std::uint8_t i = 0; i < 20; ++i) {
    client.call(server_ep, 0x10, 0x01, {i},
                [&echoed, i](const Message& response) { echoed[i] = response.payload[0]; });
  }
  kernel.run();
  ASSERT_EQ(echoed.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(echoed[i], i);
  }
}

TEST_F(BindingFixture, DuplicatedRequestExecutesTheMethodOnce) {
  // Network duplication (scenario-engine fault knob) delivers the same
  // request datagram twice; SOME/IP sessions give it at-most-once
  // identity, so the method must run once and the client still complete.
  net::LinkParams duplicating;
  duplicating.latency = sim::ExecTimeModel::constant(100_us);
  duplicating.duplicate_probability = 1.0;
  network.set_default_link(duplicating);

  int executions = 0;
  server.provide_method(0x10, 0x01, [&](const Message& request, const net::Endpoint& from) {
    ++executions;
    server.respond(request, from, {9});
  });
  int responses = 0;
  client.call(server_ep, 0x10, 0x01, {1}, [&](const Message&) { ++responses; });
  client.call(server_ep, 0x10, 0x01, {2}, [&](const Message&) { ++responses; });
  kernel.run();
  EXPECT_EQ(executions, 2) << "one execution per distinct call, not per datagram";
  EXPECT_EQ(responses, 2);
  EXPECT_EQ(server.duplicate_requests(), 2u);
}

TEST_F(BindingFixture, DistinctSessionsAreNotTreatedAsDuplicates) {
  server.provide_method(0x10, 0x01, [&](const Message& request, const net::Endpoint& from) {
    server.respond(request, from, request.payload);
  });
  int responses = 0;
  for (int i = 0; i < 300; ++i) {  // exceeds the recent-request window
    client.call(server_ep, 0x10, 0x01, {1}, [&](const Message&) { ++responses; });
  }
  kernel.run();
  EXPECT_EQ(responses, 300);
  EXPECT_EQ(server.duplicate_requests(), 0u);
}

TEST_F(BindingFixture, UnknownMethodGetsErrorResponse) {
  ReturnCode code = ReturnCode::kOk;
  client.call(server_ep, 0x99, 0x01, {},
              [&](const Message& response) { code = response.return_code; });
  kernel.run();
  EXPECT_EQ(code, ReturnCode::kUnknownMethod);
}

TEST_F(BindingFixture, TimeoutSynthesizesError) {
  server.provide_method(0x10, 0x01, [](const Message&, const net::Endpoint&) {
    // never responds
  });
  ReturnCode code = ReturnCode::kOk;
  client.call(server_ep, 0x10, 0x01, {}, [&](const Message& r) { code = r.return_code; },
              10_ms);
  kernel.run();
  EXPECT_EQ(code, ReturnCode::kTimeout);
  EXPECT_EQ(client.timeouts(), 1u);
}

TEST_F(BindingFixture, LateResponseAfterTimeoutIgnored) {
  // Server responds after the client timeout: the client must see exactly
  // one callback (the timeout), and the late response must be dropped.
  server.provide_method(0x10, 0x01, [&](const Message& request, const net::Endpoint& from) {
    Message copy = request;
    const net::Endpoint sender = from;
    kernel.schedule_after(50_ms, [this, copy, sender] { server.respond(copy, sender, {1}); });
  });
  int callbacks = 0;
  ReturnCode code = ReturnCode::kOk;
  client.call(server_ep, 0x10, 0x01, {},
              [&](const Message& r) {
                ++callbacks;
                code = r.return_code;
              },
              10_ms);
  kernel.run();
  EXPECT_EQ(callbacks, 1);
  EXPECT_EQ(code, ReturnCode::kTimeout);
}

TEST_F(BindingFixture, FireAndForgetReachesServer) {
  int calls = 0;
  server.provide_method(0x10, 0x02,
                        [&](const Message& request, const net::Endpoint&) {
                          ++calls;
                          EXPECT_EQ(request.type, MessageType::kRequestNoReturn);
                        });
  client.call_no_return(server_ep, 0x10, 0x02, {1, 2});
  kernel.run();
  EXPECT_EQ(calls, 1);
}

TEST_F(BindingFixture, SubscribeNotifyUnsubscribe) {
  std::vector<std::uint8_t> samples;
  client.subscribe(server_ep, 0x10, 0x8001,
                   [&](const Message& n) { samples.push_back(n.payload[0]); });
  kernel.run();
  EXPECT_EQ(server.subscriber_count(0x10, 0x8001), 1u);
  server.notify(0x10, 0x8001, {11});
  server.notify(0x10, 0x8001, {22});
  kernel.run();
  EXPECT_EQ(samples, (std::vector<std::uint8_t>{11, 22}));
  client.unsubscribe(server_ep, 0x10, 0x8001);
  kernel.run();
  EXPECT_EQ(server.subscriber_count(0x10, 0x8001), 0u);
  server.notify(0x10, 0x8001, {33});
  kernel.run();
  EXPECT_EQ(samples.size(), 2u);
}

TEST_F(BindingFixture, NotifyFansOutToMultipleSubscribers) {
  Binding client2(network, executor, {3, 300}, 0x0003);
  int count1 = 0;
  int count2 = 0;
  client.subscribe(server_ep, 0x10, 0x8001, [&](const Message&) { ++count1; });
  client2.subscribe(server_ep, 0x10, 0x8001, [&](const Message&) { ++count2; });
  kernel.run();
  server.notify(0x10, 0x8001, {1});
  kernel.run();
  EXPECT_EQ(count1, 1);
  EXPECT_EQ(count2, 1);
}

TEST_F(BindingFixture, DuplicateSubscribeIsIdempotent) {
  client.subscribe(server_ep, 0x10, 0x8001, [](const Message&) {});
  client.subscribe(server_ep, 0x10, 0x8001, [](const Message&) {});
  kernel.run();
  EXPECT_EQ(server.subscriber_count(0x10, 0x8001), 1u);
}

TEST_F(BindingFixture, TagTravelsThroughBypasses) {
  // Deposit a tag on the client side, observe it on the server side —
  // the paper's §III.B mechanism end to end.
  std::optional<WireTag> seen;
  server.provide_method(0x10, 0x01, [&](const Message& request, const net::Endpoint& from) {
    seen = server.receive_bypass().collect();
    // Respond with another tag.
    server.send_bypass().deposit(WireTag{900, 1});
    server.respond(request, from, {});
  });
  std::optional<WireTag> response_tag;
  client.send_bypass().deposit(WireTag{500, 2});
  client.call(server_ep, 0x10, 0x01, {},
              [&](const Message&) { response_tag = client.receive_bypass().collect(); });
  kernel.run();
  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(seen->time, 500);
  EXPECT_EQ(seen->microstep, 2u);
  ASSERT_TRUE(response_tag.has_value());
  EXPECT_EQ(response_tag->time, 900);
  EXPECT_EQ(client.tagged_sent(), 1u);
  EXPECT_EQ(server.tagged_received(), 1u);
  EXPECT_EQ(server.tagged_sent(), 1u);
  EXPECT_EQ(client.tagged_received(), 1u);
}

TEST_F(BindingFixture, UncollectedReceiveTagIsCleared) {
  // A handler that ignores the bypass must not leak the tag into the next
  // message's context.
  server.provide_method(0x10, 0x01, [&](const Message& request, const net::Endpoint& from) {
    server.respond(request, from, {});
  });
  client.send_bypass().deposit(WireTag{77, 0});
  client.call(server_ep, 0x10, 0x01, {}, [](const Message&) {});
  kernel.run();
  EXPECT_FALSE(server.receive_bypass().armed());
}

TEST_F(BindingFixture, UntaggedMessagesHaveNoTag) {
  std::optional<WireTag> seen = WireTag{1, 1};
  server.provide_method(0x10, 0x01, [&](const Message& request, const net::Endpoint& from) {
    seen = server.receive_bypass().collect();
    server.respond(request, from, {});
  });
  client.call(server_ep, 0x10, 0x01, {}, [](const Message&) {});
  kernel.run();
  EXPECT_FALSE(seen.has_value());
  EXPECT_EQ(server.tagged_received(), 0u);
}

TEST_F(BindingFixture, MalformedPacketCounted) {
  network.send(client_ep, server_ep, {0x01, 0x02, 0x03});
  kernel.run();
  EXPECT_EQ(server.malformed_received(), 1u);
}

TEST_F(BindingFixture, NotificationWithoutHandlerIsIgnored) {
  server.notify(0x10, 0x8001, {1});  // no subscribers at all
  kernel.run();
  SUCCEED();
}

}  // namespace
}  // namespace dear::someip
