#include "someip/service_discovery.hpp"

#include <gtest/gtest.h>

#include "sim/kernel.hpp"
#include "sim/sim_executor.hpp"

namespace dear::someip {
namespace {

struct SdFixture : public ::testing::Test {
  sim::Kernel kernel;
  sim::ImmediateSimExecutor executor{kernel};
  ServiceDiscovery sd;
};

TEST_F(SdFixture, OfferFindStopOffer) {
  const ServiceKey key{0x1001, 1};
  EXPECT_FALSE(sd.find(key).has_value());
  sd.offer(key, {1, 10});
  const auto endpoint = sd.find(key);
  ASSERT_TRUE(endpoint.has_value());
  EXPECT_EQ(*endpoint, (net::Endpoint{1, 10}));
  EXPECT_EQ(sd.offered_count(), 1u);
  sd.stop_offer(key);
  EXPECT_FALSE(sd.find(key).has_value());
  EXPECT_EQ(sd.offered_count(), 0u);
}

TEST_F(SdFixture, ReofferReplacesEndpoint) {
  const ServiceKey key{0x1001, 1};
  sd.offer(key, {1, 10});
  sd.offer(key, {2, 20});
  EXPECT_EQ(sd.find(key)->node, 2u);
  EXPECT_EQ(sd.offered_count(), 1u);
}

TEST_F(SdFixture, InstancesAreDistinct) {
  sd.offer({0x1001, 1}, {1, 10});
  sd.offer({0x1001, 2}, {1, 11});
  EXPECT_EQ(sd.find({0x1001, 1})->port, 10u);
  EXPECT_EQ(sd.find({0x1001, 2})->port, 11u);
  EXPECT_FALSE(sd.find({0x1001, 3}).has_value());
}

TEST_F(SdFixture, WatchFiresOnOfferAndStop) {
  const ServiceKey key{0x2002, 1};
  std::vector<std::optional<net::Endpoint>> events;
  sd.watch(key, executor, [&](std::optional<net::Endpoint> ep) { events.push_back(ep); });
  kernel.run();
  EXPECT_TRUE(events.empty());  // not offered yet, no initial callback
  sd.offer(key, {3, 30});
  kernel.run();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0]->node, 3u);
  sd.stop_offer(key);
  kernel.run();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_FALSE(events[1].has_value());
}

TEST_F(SdFixture, WatchFiresImmediatelyWhenAlreadyOffered) {
  const ServiceKey key{0x2002, 1};
  sd.offer(key, {3, 30});
  std::vector<std::optional<net::Endpoint>> events;
  sd.watch(key, executor, [&](std::optional<net::Endpoint> ep) { events.push_back(ep); });
  kernel.run();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].has_value());
}

TEST_F(SdFixture, UnwatchStopsNotifications) {
  const ServiceKey key{0x2002, 1};
  int count = 0;
  const WatchId id = sd.watch(key, executor, [&](auto) { ++count; });
  sd.offer(key, {1, 1});
  kernel.run();
  EXPECT_EQ(count, 1);
  sd.unwatch(id);
  sd.stop_offer(key);
  sd.offer(key, {1, 2});
  kernel.run();
  EXPECT_EQ(count, 1);
}

TEST_F(SdFixture, WatchersForOtherKeysNotNotified) {
  int count = 0;
  sd.watch({0x3003, 1}, executor, [&](auto) { ++count; });
  sd.offer({0x4004, 1}, {1, 1});
  kernel.run();
  EXPECT_EQ(count, 0);
}

}  // namespace
}  // namespace dear::someip
