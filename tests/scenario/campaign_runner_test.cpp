// Campaign-scale reproduction of the paper's core contrast: the DEAR
// pipelines keep bit-identical logical digests across every bounded fault
// scenario, transport and worker count, while the nondet pipeline's error
// prevalence moves with the scenario knobs.
#include <gtest/gtest.h>

#include <set>

#include "scenario/presets.hpp"
#include "scenario/runner.hpp"

namespace dear::scenario {
namespace {

using namespace dear::literals;

constexpr std::uint64_t kFrames = 300;

[[nodiscard]] CampaignRunner runner_with(std::size_t workers) {
  RunnerOptions options;
  options.workers = workers;
  return CampaignRunner(options);
}

TEST(CampaignRunner, DearDigestsIdenticalAcrossPlatformSeedsTransportsAndBoundedFaults) {
  // One digest group spanning: 3 platform-timing replicas x 2 transports
  // x duplication on/off x two latency ranges within L. 24 runs, one
  // admissible digest.
  CampaignSpec campaign;
  campaign.name = "dear-invariance";
  campaign.campaign_seed = 11;
  campaign.base.frames = kFrames;
  campaign.transports = {Transport::kSomeIp, Transport::kLocal};
  campaign.net_duplicate_probabilities = {0.0, 0.2};
  campaign.svc_latency_ranges = {{5_us, 50_us}, {100_us, 2_ms}};
  campaign.replicas = 3;

  const auto report = runner_with(2).run(campaign);
  ASSERT_EQ(report.results.size(), 24u);
  EXPECT_EQ(report.determinism_checked_runs, 24u);
  EXPECT_EQ(report.determinism_groups, 1u);
  EXPECT_TRUE(report.invariants_ok()) << report.to_table();

  const std::uint64_t reference = report.results.front().outcome.output_digest;
  for (const ScenarioResult& row : report.results) {
    EXPECT_EQ(row.outcome.output_digest, reference) << row.spec.name;
    EXPECT_EQ(row.outcome.samples_out, kFrames) << row.spec.name;
    EXPECT_EQ(row.outcome.total_errors(), 0u) << row.spec.name;
  }
}

TEST(CampaignRunner, AccChainJoinsTheSameInvariantMachinery) {
  CampaignSpec campaign;
  campaign.name = "acc-invariance";
  campaign.campaign_seed = 5;
  campaign.base.workload = Workload::kAcc;
  campaign.base.frames = 200;
  campaign.transports = {Transport::kSomeIp, Transport::kLocal};
  campaign.replicas = 3;

  const auto report = runner_with(2).run(campaign);
  ASSERT_EQ(report.results.size(), 6u);
  EXPECT_EQ(report.determinism_groups, 1u);
  EXPECT_TRUE(report.invariants_ok()) << report.to_table();
  for (const ScenarioResult& row : report.results) {
    EXPECT_GT(row.outcome.samples_out, 0u);
  }
}

TEST(CampaignRunner, NondetErrorPrevalenceVariesAcrossScenariosWhileDearStaysAtZero) {
  // The paper's contrast at campaign scale, from one grid.
  CampaignSpec campaign;
  campaign.name = "contrast";
  campaign.campaign_seed = 3;
  campaign.base.frames = kFrames;
  campaign.workloads = {Workload::kBrakeDear, Workload::kBrakeNondet};
  campaign.net_drop_probabilities = {0.0, 0.05};
  campaign.replicas = 4;

  const auto report = runner_with(2).run(campaign);
  EXPECT_TRUE(report.invariants_ok()) << report.to_table();

  const auto nondet = report.nondet_prevalence();
  ASSERT_EQ(nondet.count(), 8u);
  EXPECT_GT(nondet.max(), nondet.min())
      << "fault knobs must move the nondet pipeline's error prevalence";
  EXPECT_GT(nondet.max(), 0.0);

  for (const ScenarioResult& row : report.results) {
    if (row.spec.workload == Workload::kBrakeDear && row.spec.expect_deterministic()) {
      EXPECT_EQ(row.outcome.total_errors(), 0u) << row.spec.name;
      EXPECT_EQ(row.outcome.error_prevalence_percent(), 0.0) << row.spec.name;
    }
  }
}

TEST(CampaignRunner, LossyDearScenariosShowObservableErrorsNotViolations) {
  CampaignSpec campaign;
  campaign.campaign_seed = 9;
  campaign.base.frames = kFrames;
  campaign.base.net_drop_probability = 0.05;
  campaign.replicas = 4;

  const auto report = runner_with(2).run(campaign);
  // Drops violate the reliable-delivery assumption, so these runs carry no
  // digest expectation — but the losses must be *observable*.
  EXPECT_EQ(report.determinism_checked_runs, 0u);
  EXPECT_TRUE(report.invariants_ok());
  std::uint64_t observable = 0;
  for (const ScenarioResult& row : report.results) {
    observable += row.outcome.app_errors + row.outcome.protocol_errors;
    EXPECT_LE(row.outcome.samples_out, kFrames);
  }
  EXPECT_GT(observable, 0u);
}

TEST(CampaignRunner, SensorFaultsShiftTheInputButKeepEachGroupDeterministic) {
  sim::SensorFaultModel faulty;
  faulty.drop_probability = 0.05;
  faulty.stuck_probability = 0.05;
  faulty.noise_probability = 0.05;

  CampaignSpec campaign;
  campaign.campaign_seed = 13;
  campaign.base.frames = kFrames;
  campaign.sensor_fault_models = {sim::SensorFaultModel{}, faulty};
  campaign.replicas = 3;

  const auto report = runner_with(2).run(campaign);
  ASSERT_EQ(report.results.size(), 6u);
  EXPECT_EQ(report.determinism_groups, 2u);
  EXPECT_TRUE(report.invariants_ok()) << report.to_table();

  std::set<std::uint64_t> digests;
  for (const ScenarioResult& row : report.results) {
    digests.insert(row.outcome.output_digest);
    if (row.spec.sensor_faults.any()) {
      EXPECT_GT(row.outcome.sensor_faults_injected, 0u);
      // Input faults are shared by every platform seed of the group.
      EXPECT_EQ(row.outcome.sensor_faults_injected,
                report.results.back().outcome.sensor_faults_injected);
    }
  }
  EXPECT_EQ(digests.size(), 2u) << "two input streams, two digests";
}

TEST(CampaignRunner, ReportIsIndependentOfWorkerCount) {
  const auto campaign = presets::smoke(200, 17);
  const auto serial = runner_with(1).run(campaign);
  const auto parallel = runner_with(4).run(campaign);

  ASSERT_EQ(serial.results.size(), parallel.results.size());
  EXPECT_EQ(serial.report_digest(), parallel.report_digest());
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    EXPECT_EQ(serial.results[i].spec.name, parallel.results[i].spec.name);
    EXPECT_EQ(serial.results[i].outcome.output_digest,
              parallel.results[i].outcome.output_digest);
    EXPECT_EQ(serial.results[i].outcome.app_errors, parallel.results[i].outcome.app_errors);
  }
  EXPECT_EQ(serial.violations.size(), parallel.violations.size());
}

TEST(CampaignRunner, SmokePresetExpandsTo16CheckedScenarios) {
  const auto campaign = presets::smoke(100, 1);
  EXPECT_EQ(campaign.grid_size(), 16u);
  const auto report = runner_with(2).run(campaign);
  EXPECT_EQ(report.results.size(), 16u);
  EXPECT_TRUE(report.invariants_ok()) << report.to_table();
  EXPECT_GT(report.determinism_checked_runs, 0u);
}

TEST(CampaignRunner, FaultToleranceSmokePresetIsDigestStable) {
  const auto campaign = presets::fault_tolerance_smoke(100, 1);
  EXPECT_EQ(campaign.grid_size(), 16u);
  const auto serial = runner_with(1).run(campaign);
  const auto parallel = runner_with(4).run(campaign);
  EXPECT_TRUE(serial.invariants_ok()) << serial.to_table();
  EXPECT_GT(serial.determinism_checked_runs, 0u);
  EXPECT_EQ(serial.report_digest(), parallel.report_digest());

  // The faulted rows must actually exercise the subsystem.
  std::uint64_t crash_drops = 0;
  std::uint64_t degraded = 0;
  for (const ScenarioResult& row : serial.results) {
    crash_drops += row.outcome.ft_crash_drops;
    degraded += row.outcome.ft_degraded_ticks;
  }
  EXPECT_GT(crash_drops, 0u);
  EXPECT_GT(degraded, 0u);
}

TEST(CampaignRunner, FaultToleranceSweepPresetExpandsTo48) {
  const auto campaign = presets::fault_tolerance_sweep(100, 1);
  EXPECT_EQ(campaign.grid_size(), 48u);
  // Every scenario of the sweep expects determinism: crash windows are
  // wire-tag intervals, the call-fault die is keyed on logical identities.
  for (const ScenarioSpec& spec : campaign.expand()) {
    EXPECT_TRUE(spec.expect_deterministic()) << spec.describe();
  }
}

TEST(CampaignRunner, CrashScenariosShareDigestsAcrossTransportsAndSeeds) {
  // crash_at counts from sensor sample 0's nominal release; the
  // mid-frame boundary (the pipelines sample at 50 ms) keeps it clear of
  // the jittered sensor-tag clouds, so the same frames die under every
  // platform seed and transport.
  ft::ServiceFaultModel crash;
  crash.crash_at = 1025_ms;
  crash.restart_after = 500_ms;

  CampaignSpec campaign;
  campaign.name = "ft-crash-invariance";
  campaign.campaign_seed = 19;
  campaign.base.frames = 60;
  campaign.transports = {Transport::kSomeIp, Transport::kLocal};
  campaign.service_fault_models = {crash};
  campaign.replicas = 3;

  const auto report = runner_with(2).run(campaign);
  ASSERT_EQ(report.results.size(), 6u);
  EXPECT_EQ(report.determinism_groups, 1u);
  EXPECT_TRUE(report.invariants_ok()) << report.to_table();
  const std::uint64_t reference = report.results.front().outcome.output_digest;
  for (const ScenarioResult& row : report.results) {
    EXPECT_EQ(row.outcome.output_digest, reference) << row.spec.name;
    EXPECT_GT(row.outcome.ft_crash_drops, 0u) << row.spec.name;
  }
}

TEST(CampaignRunner, ReportSerializesToJsonAndTable) {
  CampaignSpec campaign;
  campaign.campaign_seed = 2;
  campaign.base.frames = 100;
  campaign.replicas = 2;
  const auto report = runner_with(1).run(campaign);

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"campaign\""), std::string::npos);
  EXPECT_NE(json.find("\"scenarios\""), std::string::npos);
  EXPECT_NE(json.find("\"output_digest\""), std::string::npos);
  EXPECT_NE(json.find("\"report_digest\""), std::string::npos);
  // Every scenario row made it into the JSON.
  std::size_t rows = 0;
  for (std::size_t pos = 0; (pos = json.find("\"index\":", pos)) != std::string::npos; ++pos) {
    ++rows;
  }
  EXPECT_EQ(rows, report.results.size());

  const std::string table = report.to_table();
  EXPECT_NE(table.find("report digest"), std::string::npos);
  EXPECT_NE(table.find("determinism"), std::string::npos);
}

}  // namespace
}  // namespace dear::scenario
