#include "scenario/spec.hpp"

#include <gtest/gtest.h>

#include "scenario/campaign.hpp"

namespace dear::scenario {
namespace {

using namespace dear::literals;

TEST(ScenarioSpec, DefaultIsDeterministicDearScenario) {
  const ScenarioSpec spec;
  EXPECT_EQ(spec.workload, Workload::kBrakeDear);
  EXPECT_TRUE(spec.expect_deterministic());
}

TEST(ScenarioSpec, NondetWorkloadNeverExpectsDeterminism) {
  ScenarioSpec spec;
  spec.workload = Workload::kBrakeNondet;
  EXPECT_FALSE(spec.expect_deterministic());
}

TEST(ScenarioSpec, LossyKnobsBreakTheDeterminismExpectation) {
  ScenarioSpec drops;
  drops.net_drop_probability = 0.01;
  EXPECT_FALSE(drops.expect_deterministic());

  ScenarioSpec slow_links;
  slow_links.svc_latency_max = kSvcLatencyBound + 1;
  EXPECT_FALSE(slow_links.expect_deterministic());

  ScenarioSpec tight_deadlines;
  tight_deadlines.deadline_scale = 0.5;
  EXPECT_FALSE(tight_deadlines.expect_deterministic());

  ScenarioSpec overload;
  overload.exec_time_scale = 2.0;
  EXPECT_FALSE(overload.expect_deterministic());
}

TEST(ScenarioSpec, BoundedFaultsPreserveTheDeterminismExpectation) {
  // Duplication, reordering, latency jitter within L, clock drift and
  // sensor faults are all tolerated by the DEAR architecture — the
  // campaign engine must keep checking digests for these scenarios.
  ScenarioSpec spec;
  spec.net_duplicate_probability = 0.5;
  spec.net_in_order = false;
  spec.svc_latency_min = 0;
  spec.svc_latency_max = kSvcLatencyBound;
  spec.clock_drift_ppm = 200.0;
  spec.sensor_faults.drop_probability = 0.1;
  spec.sensor_faults.stuck_probability = 0.1;
  spec.sensor_faults.noise_probability = 0.1;
  EXPECT_TRUE(spec.expect_deterministic());
}

TEST(ScenarioSpec, DigestGroupIgnoresPlatformOnlyKnobs) {
  ScenarioSpec a;
  ScenarioSpec b;
  b.platform_seed = a.platform_seed + 99;
  b.transport = Transport::kLocal;
  b.net_duplicate_probability = 0.3;
  b.svc_latency_max = 2_ms;
  b.clock_drift_ppm = 120.0;
  b.exec_time_scale = 0.5;
  EXPECT_EQ(a.digest_group(), b.digest_group());
}

TEST(ScenarioSpec, DigestGroupTracksInputAffectingKnobs) {
  const ScenarioSpec base;
  ScenarioSpec frames = base;
  frames.frames += 1;
  EXPECT_NE(base.digest_group(), frames.digest_group());

  ScenarioSpec sensor_seed = base;
  sensor_seed.sensor_seed += 1;
  EXPECT_NE(base.digest_group(), sensor_seed.digest_group());

  ScenarioSpec faults = base;
  faults.sensor_faults.noise_probability = 0.2;
  EXPECT_NE(base.digest_group(), faults.digest_group());

  ScenarioSpec deadlines = base;
  deadlines.deadline_scale = 1.5;
  EXPECT_NE(base.digest_group(), deadlines.digest_group());

  ScenarioSpec workload = base;
  workload.workload = Workload::kAcc;
  EXPECT_NE(base.digest_group(), workload.digest_group());
}

TEST(ScenarioSpec, ServiceFaultsStayInsideTheDeterminismGuarantee) {
  // Crash windows are wire-tag intervals and the call-fault die is a pure
  // function of logical identities: the digests must still be checked.
  ScenarioSpec crash;
  crash.service_faults.crash_at = 1000_ms;
  crash.service_faults.restart_after = 500_ms;
  EXPECT_TRUE(crash.expect_deterministic());

  ScenarioSpec dice;
  dice.service_faults.call_error_probability = 0.02;
  dice.service_faults.call_omission_probability = 0.02;
  dice.retry.max_attempts = 3;
  dice.retry.backoff_base = 6_ms;
  dice.retry.timeout = 5_ms;
  EXPECT_TRUE(dice.expect_deterministic());

  ScenarioSpec churn;
  churn.service_faults.churn_period = 200_ms;
  EXPECT_FALSE(churn.expect_deterministic()) << "churn windows are physical";
}

TEST(ScenarioSpec, DigestGroupSplitsOnEngagedFaultToleranceKnobs) {
  const ScenarioSpec base;

  ScenarioSpec crash = base;
  crash.service_faults.crash_at = 1000_ms;
  EXPECT_NE(base.digest_group(), crash.digest_group());

  ScenarioSpec restarted = crash;
  restarted.service_faults.restart_after = 500_ms;
  EXPECT_NE(crash.digest_group(), restarted.digest_group());

  ScenarioSpec retry = base;
  retry.retry.max_attempts = 3;
  retry.retry.backoff_base = 6_ms;
  retry.retry.timeout = 5_ms;
  EXPECT_NE(base.digest_group(), retry.digest_group());

  // The fault seed picks which calls fail, so it splits engaged groups —
  // but an idle scenario must keep its pre-FT group key bit-identical no
  // matter the seed (protects every existing digest anchor).
  ScenarioSpec reseeded_idle = base;
  reseeded_idle.fault_seed = base.fault_seed + 9;
  EXPECT_EQ(base.digest_group(), reseeded_idle.digest_group());

  ScenarioSpec reseeded_crash = crash;
  reseeded_crash.fault_seed = crash.fault_seed + 9;
  EXPECT_NE(crash.digest_group(), reseeded_crash.digest_group());
}

TEST(ScenarioSpec, CameraPayloadSplitsDigestGroupOnlyWhenEngaged) {
  // The burst-capture data plane changes what the pipeline digests (payload
  // frames enter the digest), so a nonzero payload size is a new digest
  // group — but the idle default must keep every pre-data-plane digest
  // anchor bit-identical.
  const ScenarioSpec base;
  ASSERT_EQ(base.camera_payload_bytes, 0u);

  ScenarioSpec idle = base;
  idle.camera_payload_bytes = 0;
  EXPECT_EQ(base.digest_group(), idle.digest_group());

  ScenarioSpec engaged = base;
  engaged.camera_payload_bytes = 65536;
  EXPECT_NE(base.digest_group(), engaged.digest_group());

  ScenarioSpec larger = base;
  larger.camera_payload_bytes = 1024 * 1024;
  EXPECT_NE(engaged.digest_group(), larger.digest_group());

  // Deterministic either way: slab exhaustion drops are replayable.
  EXPECT_TRUE(engaged.expect_deterministic());
}

TEST(ScenarioSpec, DescribeNamesTheCameraPayloadOnlyWhenEngaged) {
  ScenarioSpec spec;
  EXPECT_EQ(spec.describe().find("px"), std::string::npos) << spec.describe();
  spec.camera_payload_bytes = 65536;
  EXPECT_NE(spec.describe().find("px65536"), std::string::npos) << spec.describe();
}

TEST(ScenarioSpec, DescribeNamesTheFaultToleranceKnobs) {
  ScenarioSpec spec;
  spec.service_faults.crash_at = 2000_ms;
  spec.service_faults.restart_after = 1500_ms;
  spec.retry.max_attempts = 3;
  spec.retry.backoff_base = 6_ms;
  spec.retry.timeout = 5_ms;
  const std::string name = spec.describe();
  EXPECT_NE(name.find("ft-c2000-r1500"), std::string::npos) << name;
  EXPECT_NE(name.find("rt3-b6-t5"), std::string::npos) << name;
}

TEST(CampaignSpec, ServiceFaultAndRetryAxesMultiplyTheGrid) {
  CampaignSpec campaign;
  ft::ServiceFaultModel crash;
  crash.crash_at = 1000_ms;
  campaign.service_fault_models = {{}, crash};
  ft::RetryBudget retry;
  retry.max_attempts = 2;
  retry.backoff_base = 6_ms;
  retry.timeout = 5_ms;
  campaign.retry_budgets = {{}, retry};
  campaign.replicas = 3;
  EXPECT_EQ(campaign.grid_size(), 2u * 2u * 3u);

  const auto scenarios = campaign.expand();
  ASSERT_EQ(scenarios.size(), campaign.grid_size());
  // The fault seed is derived from the campaign seed alone, so every
  // scenario of a digest group shares the exact same fault decisions.
  for (const ScenarioSpec& spec : scenarios) {
    EXPECT_EQ(spec.fault_seed, derive_seed(campaign.campaign_seed, 0, "fault"));
  }
  bool any_faulted = false;
  bool any_retry = false;
  for (const ScenarioSpec& spec : scenarios) {
    any_faulted = any_faulted || spec.service_faults.any();
    any_retry = any_retry || spec.retry.enabled();
  }
  EXPECT_TRUE(any_faulted);
  EXPECT_TRUE(any_retry);
}

TEST(ScenarioSpec, DeriveSeedIsPureAndSensitiveToAllInputs) {
  EXPECT_EQ(derive_seed(1, 0, "platform"), derive_seed(1, 0, "platform"));
  EXPECT_NE(derive_seed(1, 0, "platform"), derive_seed(2, 0, "platform"));
  EXPECT_NE(derive_seed(1, 0, "platform"), derive_seed(1, 1, "platform"));
  EXPECT_NE(derive_seed(1, 0, "platform"), derive_seed(1, 0, "sensor"));
  EXPECT_NE(derive_seed(1, 0, "platform"), 0u);
}

TEST(ScenarioSpec, DescribeNamesTheKnobs) {
  ScenarioSpec spec;
  spec.workload = Workload::kAcc;
  spec.transport = Transport::kLocal;
  spec.net_drop_probability = 0.05;
  spec.index = 12;
  const std::string name = spec.describe();
  EXPECT_NE(name.find("acc"), std::string::npos);
  EXPECT_NE(name.find("local"), std::string::npos);
  EXPECT_NE(name.find("drop0.050"), std::string::npos);
  EXPECT_NE(name.find("i12"), std::string::npos);
}

TEST(CampaignSpec, GridSizeIsTheProductOfAxes) {
  CampaignSpec campaign;
  EXPECT_EQ(campaign.grid_size(), 1u);
  campaign.workloads = {Workload::kBrakeDear, Workload::kBrakeNondet};
  campaign.net_drop_probabilities = {0.0, 0.01, 0.05};
  campaign.replicas = 4;
  EXPECT_EQ(campaign.grid_size(), 2u * 3u * 4u);
  EXPECT_EQ(campaign.expand().size(), campaign.grid_size());
}

TEST(CampaignSpec, ExpansionIsDeterministicAndIndexed) {
  CampaignSpec campaign;
  campaign.campaign_seed = 42;
  campaign.transports = {Transport::kSomeIp, Transport::kLocal};
  campaign.net_duplicate_probabilities = {0.0, 0.1};
  campaign.replicas = 3;

  const auto first = campaign.expand();
  const auto second = campaign.expand();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].index, i);
    EXPECT_EQ(first[i].name, second[i].name);
    EXPECT_EQ(first[i].platform_seed, second[i].platform_seed);
    EXPECT_EQ(first[i].sensor_seed, second[i].sensor_seed);
  }
}

TEST(CampaignSpec, PlatformSeedsAreDerivedFromCampaignSeedAndIndexOnly) {
  CampaignSpec campaign;
  campaign.campaign_seed = 7;
  campaign.replicas = 8;
  const auto scenarios = campaign.expand();
  for (const ScenarioSpec& spec : scenarios) {
    EXPECT_EQ(spec.platform_seed, derive_seed(7, spec.index, "platform"));
    EXPECT_EQ(spec.sensor_seed, derive_seed(7, 0, "sensor"))
        << "the sensor input stream must be shared campaign-wide";
  }
  // Distinct platform timing per scenario.
  for (std::size_t i = 1; i < scenarios.size(); ++i) {
    EXPECT_NE(scenarios[i].platform_seed, scenarios[0].platform_seed);
  }

  CampaignSpec reseeded = campaign;
  reseeded.campaign_seed = 8;
  const auto other = reseeded.expand();
  EXPECT_NE(other[0].platform_seed, scenarios[0].platform_seed);
  EXPECT_NE(other[0].sensor_seed, scenarios[0].sensor_seed);
}

}  // namespace
}  // namespace dear::scenario
