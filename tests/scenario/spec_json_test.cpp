// ScenarioSpec JSON round-trip — the dear_lint --scenario file format.
#include "scenario/spec_json.hpp"

#include <gtest/gtest.h>

#include <string>

namespace dear::scenario {
namespace {

using namespace dear::literals;

TEST(SpecJson, RoundTripsEveryKnob) {
  ScenarioSpec spec;
  spec.index = 42;
  spec.name = "round-trip";
  spec.workload = Workload::kAcc;
  spec.transport = Transport::kLocal;
  spec.frames = 1234;
  spec.platform_seed = 77;
  spec.sensor_seed = 88;
  spec.clock_drift_ppm = 12.5;
  spec.svc_latency_min = 10_us;
  spec.svc_latency_max = 3_ms;
  spec.net_drop_probability = 0.125;
  spec.net_duplicate_probability = 0.25;
  spec.net_in_order = true;
  spec.exec_time_scale = 1.5;
  spec.deadline_scale = 0.75;
  spec.sensor_faults.drop_probability = 0.01;
  spec.sensor_faults.stuck_probability = 0.02;
  spec.sensor_faults.noise_probability = 0.03;
  spec.service_faults.crash_at = 1000_ms;
  spec.service_faults.restart_after = 500_ms;
  spec.service_faults.call_error_probability = 0.02;
  spec.service_faults.call_omission_probability = 0.03;
  spec.service_faults.churn_period = 200_ms;
  spec.retry.max_attempts = 3;
  spec.retry.backoff_base = 6_ms;
  spec.retry.timeout = 5_ms;
  spec.fault_seed = 99;
  spec.camera_payload_bytes = 1024 * 1024;

  std::string error;
  const auto parsed = spec_from_json(spec_to_json(spec), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->index, spec.index);
  EXPECT_EQ(parsed->name, spec.name);
  EXPECT_EQ(parsed->workload, spec.workload);
  EXPECT_EQ(parsed->transport, spec.transport);
  EXPECT_EQ(parsed->frames, spec.frames);
  EXPECT_EQ(parsed->platform_seed, spec.platform_seed);
  EXPECT_EQ(parsed->sensor_seed, spec.sensor_seed);
  EXPECT_DOUBLE_EQ(parsed->clock_drift_ppm, spec.clock_drift_ppm);
  EXPECT_EQ(parsed->svc_latency_min, spec.svc_latency_min);
  EXPECT_EQ(parsed->svc_latency_max, spec.svc_latency_max);
  EXPECT_DOUBLE_EQ(parsed->net_drop_probability, spec.net_drop_probability);
  EXPECT_DOUBLE_EQ(parsed->net_duplicate_probability, spec.net_duplicate_probability);
  EXPECT_EQ(parsed->net_in_order, spec.net_in_order);
  EXPECT_DOUBLE_EQ(parsed->exec_time_scale, spec.exec_time_scale);
  EXPECT_DOUBLE_EQ(parsed->deadline_scale, spec.deadline_scale);
  EXPECT_DOUBLE_EQ(parsed->sensor_faults.drop_probability, spec.sensor_faults.drop_probability);
  EXPECT_DOUBLE_EQ(parsed->sensor_faults.stuck_probability, spec.sensor_faults.stuck_probability);
  EXPECT_DOUBLE_EQ(parsed->sensor_faults.noise_probability, spec.sensor_faults.noise_probability);
  EXPECT_EQ(parsed->service_faults, spec.service_faults);
  EXPECT_EQ(parsed->retry, spec.retry);
  EXPECT_EQ(parsed->fault_seed, spec.fault_seed);
  EXPECT_EQ(parsed->camera_payload_bytes, spec.camera_payload_bytes);
}

TEST(SpecJson, CameraPayloadBytesParsesAndRejectsWrongTypes) {
  const auto parsed = spec_from_json(R"({"camera_payload_bytes": 65536})");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->camera_payload_bytes, 65536u);
  EXPECT_EQ(ScenarioSpec{}.camera_payload_bytes, 0u);  // idle default

  std::string error;
  EXPECT_FALSE(spec_from_json(R"({"camera_payload_bytes": "lots"})", &error).has_value());
  EXPECT_NE(error.find("key 'camera_payload_bytes'"), std::string::npos) << error;
  EXPECT_NE(error.find("expected number"), std::string::npos) << error;
  // Misspelled key: rejected like any other unknown key, named in the error.
  EXPECT_FALSE(spec_from_json(R"({"camera_payload_byte": 1})", &error).has_value());
  EXPECT_NE(error.find("camera_payload_byte"), std::string::npos) << error;
}

TEST(SpecJson, OmittedFieldsKeepDefaults) {
  const auto parsed = spec_from_json(R"({"workload": "nondet", "frames": 10})");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->workload, Workload::kBrakeNondet);
  EXPECT_EQ(parsed->frames, 10U);
  const ScenarioSpec defaults;
  EXPECT_EQ(parsed->transport, defaults.transport);
  EXPECT_EQ(parsed->platform_seed, defaults.platform_seed);
  EXPECT_DOUBLE_EQ(parsed->deadline_scale, defaults.deadline_scale);
}

TEST(SpecJson, EmptyObjectIsTheDefaultSpec) {
  const auto parsed = spec_from_json("{}");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->workload, ScenarioSpec{}.workload);
}

TEST(SpecJson, UnknownKeyIsRejected) {
  std::string error;
  EXPECT_FALSE(spec_from_json(R"({"frmes": 10})", &error).has_value());
  EXPECT_NE(error.find("frmes"), std::string::npos);
}

TEST(SpecJson, UnknownEnumValueIsRejected) {
  std::string error;
  EXPECT_FALSE(spec_from_json(R"({"workload": "bogus"})", &error).has_value());
  EXPECT_NE(error.find("bogus"), std::string::npos);
  EXPECT_FALSE(spec_from_json(R"({"transport": "carrier-pigeon"})").has_value());
}

TEST(SpecJson, MalformedInputIsRejected) {
  EXPECT_FALSE(spec_from_json("").has_value());
  EXPECT_FALSE(spec_from_json("{").has_value());
  EXPECT_FALSE(spec_from_json(R"({"frames": })").has_value());
  EXPECT_FALSE(spec_from_json(R"({"frames": 1} trailing)").has_value());
  EXPECT_FALSE(spec_from_json(R"({"name": "unterminated)").has_value());
}

// --- error paths: the message must name the offending key ------------------

TEST(SpecJson, WrongTypedFieldNamesTheKey) {
  std::string error;
  EXPECT_FALSE(spec_from_json(R"({"frames": "ten"})", &error).has_value());
  EXPECT_NE(error.find("key 'frames'"), std::string::npos) << error;
  EXPECT_NE(error.find("expected number"), std::string::npos) << error;

  EXPECT_FALSE(spec_from_json(R"({"name": 5})", &error).has_value());
  EXPECT_NE(error.find("key 'name'"), std::string::npos) << error;
  EXPECT_NE(error.find("expected string"), std::string::npos) << error;

  EXPECT_FALSE(spec_from_json(R"({"net_in_order": 1})", &error).has_value());
  EXPECT_NE(error.find("key 'net_in_order'"), std::string::npos) << error;
  EXPECT_NE(error.find("expected boolean"), std::string::npos) << error;
}

TEST(SpecJson, WrongTypedNestedFieldNamesThePath) {
  std::string error;
  EXPECT_FALSE(
      spec_from_json(R"({"sensor_faults": {"drop_probability": "lots"}})", &error).has_value());
  EXPECT_NE(error.find("sensor_faults.drop_probability"), std::string::npos) << error;
}

TEST(SpecJson, DuplicateKeyIsRejected) {
  std::string error;
  EXPECT_FALSE(spec_from_json(R"({"frames": 1, "frames": 2})", &error).has_value());
  EXPECT_NE(error.find("duplicate key 'frames'"), std::string::npos) << error;
}

TEST(SpecJson, DuplicateSensorFaultsKeyIsRejected) {
  std::string error;
  EXPECT_FALSE(spec_from_json(
                   R"({"sensor_faults": {"drop_probability": 0.1, "drop_probability": 0.2}})",
                   &error)
                   .has_value());
  EXPECT_NE(error.find("duplicate sensor_faults key 'drop_probability'"), std::string::npos)
      << error;
}

TEST(SpecJson, ErrorsReportTheOffset) {
  std::string error;
  EXPECT_FALSE(spec_from_json(R"({"frames": })", &error).has_value());
  EXPECT_NE(error.find("at offset"), std::string::npos) << error;
}

TEST(SpecJson, NestedServiceFaultsAndRetryParse) {
  const auto parsed = spec_from_json(
      R"({"service_faults": {"crash_at_ns": 1000000, "churn_period_ns": 2000000},
          "retry": {"max_attempts": 2, "timeout_ns": 5000000}, "fault_seed": 7})");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->service_faults.crash_at, 1_ms);
  EXPECT_EQ(parsed->service_faults.restart_after, 0);
  EXPECT_EQ(parsed->service_faults.churn_period, 2_ms);
  EXPECT_EQ(parsed->retry.max_attempts, 2u);
  EXPECT_EQ(parsed->retry.backoff_base, 0);
  EXPECT_EQ(parsed->retry.timeout, 5_ms);
  EXPECT_EQ(parsed->fault_seed, 7u);
}

TEST(SpecJson, UnknownServiceFaultsOrRetryKeyIsRejected) {
  std::string error;
  EXPECT_FALSE(spec_from_json(R"({"service_faults": {"crash_time": 1}})", &error).has_value());
  EXPECT_NE(error.find("unknown service_faults key 'crash_time'"), std::string::npos) << error;
  EXPECT_FALSE(spec_from_json(R"({"retry": {"attempts": 3}})", &error).has_value());
  EXPECT_NE(error.find("unknown retry key 'attempts'"), std::string::npos) << error;
}

TEST(SpecJson, NestedSensorFaultsParse) {
  const auto parsed = spec_from_json(
      R"({"sensor_faults": {"drop_probability": 0.5, "noise_probability": 0.25}})");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->sensor_faults.drop_probability, 0.5);
  EXPECT_DOUBLE_EQ(parsed->sensor_faults.stuck_probability, 0.0);
  EXPECT_DOUBLE_EQ(parsed->sensor_faults.noise_probability, 0.25);
}

}  // namespace
}  // namespace dear::scenario
