// The static timing verdict against the runtime deadline-miss oracle:
// across the full 96-scenario fault sweep the analyzer's
// predicted_deadline_miss bit must equal "the run observed deadline
// violations" on every row — and on deliberately out-of-envelope
// scenarios (deadlines crushed, execution inflated) both sides must say
// "miss". Mirrors PR 6's determinism-verdict contract for the timing
// dimension.
#include <gtest/gtest.h>

#include "scenario/presets.hpp"
#include "scenario/runner.hpp"

namespace dear::scenario {
namespace {

using namespace dear::literals;

[[nodiscard]] CampaignRunner annotating_runner() {
  RunnerOptions options;
  options.workers = 2;
  options.annotate_timing = true;
  return CampaignRunner(options);
}

TEST(TimingOracle, FaultSweepPredictionMatchesRuntimeOnEveryRow) {
  const auto campaign = presets::fault_sweep(/*frames=*/60, /*campaign_seed=*/1);
  const auto report = annotating_runner().run(campaign);
  ASSERT_EQ(report.results.size(), 96U);
  for (const ScenarioResult& row : report.results) {
    ASSERT_TRUE(row.timing.evaluated) << row.spec.name;
    EXPECT_EQ(row.timing.predicted_deadline_miss, row.outcome.deadline_violations > 0)
        << row.spec.name << ": static says " << row.timing.predicted_deadline_miss
        << ", runtime observed " << row.outcome.deadline_violations << " violation(s)";
    EXPECT_FALSE(row.timing.budget_exceeded) << row.spec.name;
  }
}

TEST(TimingOracle, OutOfEnvelopeScenariosAreMissesOnBothSides) {
  std::vector<ScenarioSpec> specs(3);
  specs[0].name = "dear-deadlines-crushed";
  specs[0].frames = 200;
  specs[0].deadline_scale = 0.1;
  specs[1].name = "dear-execution-inflated";
  specs[1].frames = 200;
  specs[1].exec_time_scale = 3.0;
  specs[2].name = "acc-deadlines-crushed";
  specs[2].workload = Workload::kAcc;
  specs[2].frames = 200;
  specs[2].deadline_scale = 0.1;

  const auto report = annotating_runner().run("out-of-envelope", std::move(specs), 1);
  ASSERT_EQ(report.results.size(), 3U);
  for (const ScenarioResult& row : report.results) {
    ASSERT_TRUE(row.timing.evaluated) << row.spec.name;
    EXPECT_TRUE(row.timing.predicted_deadline_miss)
        << row.spec.name << ": the analyzer must reject this envelope";
    EXPECT_GT(row.outcome.deadline_violations, 0U)
        << row.spec.name << ": the runtime must observe the predicted misses";
  }
}

TEST(TimingOracle, VerdictCarriesTheChainNumbers) {
  std::vector<ScenarioSpec> specs(1);
  specs[0].frames = 50;
  const auto report = annotating_runner().run("chain-numbers", std::move(specs), 1);
  ASSERT_EQ(report.results.size(), 1U);
  const TimingVerdict& verdict = report.results.front().timing;
  ASSERT_TRUE(verdict.evaluated);
  EXPECT_EQ(verdict.chain_latency_max_ns, static_cast<std::int64_t>(70_ms));
  EXPECT_EQ(verdict.chain_budget_ns, static_cast<std::int64_t>(80_ms));
  EXPECT_FALSE(verdict.budget_exceeded);
  EXPECT_FALSE(verdict.predicted_deadline_miss);
  // The verdict lands in the JSON rows; the pinned report digest ignores it.
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"predicted_deadline_miss\""), std::string::npos);
  EXPECT_NE(json.find("\"deadline_violations\""), std::string::npos);
}

TEST(TimingOracle, AnnotationDoesNotPerturbTheReportDigest) {
  const auto campaign = presets::smoke(/*frames=*/100, /*campaign_seed=*/7);
  RunnerOptions plain_options;
  plain_options.workers = 2;
  const auto plain = CampaignRunner(plain_options).run(campaign);
  const auto annotated = annotating_runner().run(campaign);
  EXPECT_EQ(plain.report_digest(), annotated.report_digest());
}

}  // namespace
}  // namespace dear::scenario
