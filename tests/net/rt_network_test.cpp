#include "net/rt_network.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/thread_pool.hpp"

namespace dear::net {
namespace {

TEST(RtNetwork, DeliversPackets) {
  common::ThreadPoolExecutor pool(2);
  RtNetwork network(pool);
  const Endpoint a{1, 1};
  const Endpoint b{1, 2};
  std::atomic<int> received{0};
  network.bind(b, [&](const Packet& p) {
    EXPECT_EQ(p.payload.size(), 3u);
    received.fetch_add(1);
  });
  for (int i = 0; i < 50; ++i) {
    network.send(a, b, {1, 2, 3});
  }
  pool.drain();
  EXPECT_EQ(received.load(), 50);
  EXPECT_EQ(network.packets_sent(), 50u);
  EXPECT_EQ(network.packets_delivered(), 50u);
}

TEST(RtNetwork, UnboundCountsDropped) {
  common::ThreadPoolExecutor pool(1);
  RtNetwork network(pool);
  network.send({1, 1}, {2, 2}, {0});
  pool.drain();
  EXPECT_EQ(network.packets_dropped(), 1u);
  EXPECT_EQ(network.packets_delivered(), 0u);
}

TEST(RtNetwork, UnbindStopsDelivery) {
  common::ThreadPoolExecutor pool(1);
  RtNetwork network(pool);
  const Endpoint b{1, 2};
  std::atomic<int> received{0};
  network.bind(b, [&](const Packet&) { received.fetch_add(1); });
  network.send({1, 1}, b, {0});
  pool.drain();
  network.unbind(b);
  network.send({1, 1}, b, {0});
  pool.drain();
  EXPECT_EQ(received.load(), 1);
}

TEST(RtNetwork, ConcurrentSendersAllDelivered) {
  common::ThreadPoolExecutor pool(4);
  RtNetwork network(pool);
  const Endpoint b{1, 2};
  std::atomic<int> received{0};
  network.bind(b, [&](const Packet&) { received.fetch_add(1); });
  std::vector<std::thread> senders;
  for (int t = 0; t < 4; ++t) {
    senders.emplace_back([&network, t] {
      for (int i = 0; i < 100; ++i) {
        network.send({static_cast<NodeId>(t), 0}, {1, 2}, {static_cast<std::uint8_t>(i)});
      }
    });
  }
  for (auto& thread : senders) {
    thread.join();
  }
  pool.drain();
  EXPECT_EQ(received.load(), 400);
}

TEST(RtNetwork, ReceiveTimeIsPopulated) {
  common::ThreadPoolExecutor pool(1);
  RtNetwork network(pool);
  const Endpoint b{1, 2};
  std::atomic<TimePoint> send_time{-1};
  std::atomic<TimePoint> receive_time{-1};
  network.bind(b, [&](const Packet& p) {
    send_time.store(p.send_time);
    receive_time.store(p.receive_time);
  });
  network.send({1, 1}, b, {0});
  pool.drain();
  EXPECT_GE(send_time.load(), 0);
  EXPECT_GE(receive_time.load(), send_time.load());
}

}  // namespace
}  // namespace dear::net
