#include "net/sim_network.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dear::net {
namespace {

using namespace dear::literals;

struct NetFixture : public ::testing::Test {
  sim::Kernel kernel;
  SimNetwork network{kernel, common::Rng(11)};

  static std::vector<std::uint8_t> bytes(std::initializer_list<std::uint8_t> list) {
    return std::vector<std::uint8_t>(list);
  }
};

TEST_F(NetFixture, DeliversToBoundEndpoint) {
  const Endpoint a{1, 10};
  const Endpoint b{2, 20};
  std::vector<Packet> received;
  network.bind(b, [&](const Packet& p) { received.push_back(p); });
  network.send(a, b, bytes({1, 2, 3}));
  kernel.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].payload, bytes({1, 2, 3}));
  EXPECT_EQ(received[0].source, a);
  EXPECT_EQ(received[0].destination, b);
  EXPECT_EQ(network.packets_delivered(), 1u);
}

TEST_F(NetFixture, DefaultLinkLatencyWithinBounds) {
  const Endpoint a{1, 10};
  const Endpoint b{2, 20};
  LinkParams link;
  link.latency = sim::ExecTimeModel::uniform(300_us, 700_us);
  network.set_default_link(link);
  std::vector<TimePoint> arrivals;
  network.bind(b, [&](const Packet& p) { arrivals.push_back(p.receive_time); });
  for (int i = 0; i < 200; ++i) {
    network.send(a, b, bytes({0}));
  }
  kernel.run();
  ASSERT_EQ(arrivals.size(), 200u);
  for (const TimePoint t : arrivals) {
    EXPECT_GE(t, 300_us);
    EXPECT_LE(t, 700_us);
  }
}

TEST_F(NetFixture, LoopbackIsFasterThanDefault) {
  const Endpoint a{1, 10};
  const Endpoint same_node{1, 11};
  TimePoint arrival = -1;
  network.bind(same_node, [&](const Packet& p) { arrival = p.receive_time; });
  network.send(a, same_node, bytes({9}));
  kernel.run();
  EXPECT_GE(arrival, 0);
  EXPECT_LE(arrival, 50_us);  // the default loopback model
}

TEST_F(NetFixture, UnboundDestinationCountsDropped) {
  network.send({1, 1}, {9, 9}, bytes({1}));
  kernel.run();
  EXPECT_EQ(network.packets_sent(), 1u);
  EXPECT_EQ(network.packets_delivered(), 0u);
  EXPECT_EQ(network.packets_dropped(), 1u);
}

TEST_F(NetFixture, UnbindStopsDelivery) {
  const Endpoint b{2, 20};
  int count = 0;
  network.bind(b, [&](const Packet&) { ++count; });
  network.send({1, 1}, b, bytes({1}));
  kernel.run();
  network.unbind(b);
  network.send({1, 1}, b, bytes({2}));
  kernel.run();
  EXPECT_EQ(count, 1);
  EXPECT_EQ(network.packets_dropped(), 1u);
}

TEST_F(NetFixture, DropProbabilityRoughlyHolds) {
  const Endpoint a{1, 10};
  const Endpoint b{2, 20};
  LinkParams link;
  link.latency = sim::ExecTimeModel::constant(100_us);
  link.drop_probability = 0.3;
  network.set_default_link(link);
  int delivered = 0;
  network.bind(b, [&](const Packet&) { ++delivered; });
  constexpr int kPackets = 10'000;
  for (int i = 0; i < kPackets; ++i) {
    network.send(a, b, bytes({0}));
  }
  kernel.run();
  EXPECT_NEAR(static_cast<double>(delivered) / kPackets, 0.7, 0.02);
  EXPECT_EQ(network.packets_dropped(), static_cast<std::uint64_t>(kPackets - delivered));
}

TEST_F(NetFixture, JitterCanReorderWithoutInOrderFlag) {
  const Endpoint a{1, 10};
  const Endpoint b{2, 20};
  LinkParams link;
  link.latency = sim::ExecTimeModel::uniform(0, 1_ms);
  link.enforce_in_order = false;
  network.set_default_link(link);
  std::vector<std::uint8_t> arrival_order;
  network.bind(b, [&](const Packet& p) { arrival_order.push_back(p.payload[0]); });
  for (std::uint8_t i = 0; i < 100; ++i) {
    network.send(a, b, bytes({i}));
  }
  kernel.run();
  ASSERT_EQ(arrival_order.size(), 100u);
  EXPECT_FALSE(std::is_sorted(arrival_order.begin(), arrival_order.end()))
      << "jitter should reorder same-instant packets (nondeterminism source 3)";
  EXPECT_GT(network.packets_reordered(), 0u);
}

TEST_F(NetFixture, InOrderFlagPreventsReordering) {
  const Endpoint a{1, 10};
  const Endpoint b{2, 20};
  LinkParams link;
  link.latency = sim::ExecTimeModel::uniform(0, 1_ms);
  link.enforce_in_order = true;
  network.set_default_link(link);
  std::vector<std::uint8_t> arrival_order;
  network.bind(b, [&](const Packet& p) { arrival_order.push_back(p.payload[0]); });
  for (std::uint8_t i = 0; i < 100; ++i) {
    network.send(a, b, bytes({i}));
  }
  kernel.run();
  ASSERT_EQ(arrival_order.size(), 100u);
  EXPECT_TRUE(std::is_sorted(arrival_order.begin(), arrival_order.end()));
  EXPECT_EQ(network.packets_reordered(), 0u);
}

TEST_F(NetFixture, PerPairLinkOverride) {
  const Endpoint a{1, 10};
  const Endpoint b{2, 20};
  const Endpoint c{3, 30};
  LinkParams slow;
  slow.latency = sim::ExecTimeModel::constant(10_ms);
  network.set_link(1, 3, slow);
  TimePoint to_b = -1;
  TimePoint to_c = -1;
  network.bind(b, [&](const Packet& p) { to_b = p.receive_time; });
  network.bind(c, [&](const Packet& p) { to_c = p.receive_time; });
  network.send(a, b, bytes({1}));
  network.send(a, c, bytes({2}));
  kernel.run();
  EXPECT_LT(to_b, 1_ms);    // default link
  EXPECT_EQ(to_c, 10_ms);   // overridden link
}

// --- fault-scenario edge cases (scenario-engine knobs) ----------------------

TEST_F(NetFixture, FullDropDeliversNothing) {
  const Endpoint a{1, 10};
  const Endpoint b{2, 20};
  LinkParams link;
  link.latency = sim::ExecTimeModel::constant(100_us);
  link.drop_probability = 1.0;
  network.set_default_link(link);
  int delivered = 0;
  network.bind(b, [&](const Packet&) { ++delivered; });
  for (int i = 0; i < 500; ++i) {
    network.send(a, b, bytes({1}));
  }
  kernel.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(network.packets_sent(), 500u);
  EXPECT_EQ(network.packets_dropped(), 500u);
  EXPECT_EQ(network.packets_delivered(), 0u);
}

TEST_F(NetFixture, EqualTimestampsDeliverInSendOrder) {
  // Constant latency gives every packet of a burst the same delivery
  // timestamp; the kernel's (time, priority, insertion) ordering must keep
  // send order — reordering requires unequal draws, never ties.
  const Endpoint a{1, 10};
  const Endpoint b{2, 20};
  LinkParams link;
  link.latency = sim::ExecTimeModel::constant(250_us);
  link.enforce_in_order = false;
  network.set_default_link(link);
  std::vector<std::uint8_t> order;
  network.bind(b, [&](const Packet& p) { order.push_back(p.payload[0]); });
  for (std::uint8_t i = 0; i < 100; ++i) {
    network.send(a, b, bytes({i}));
  }
  kernel.run();
  ASSERT_EQ(order.size(), 100u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  EXPECT_EQ(network.packets_reordered(), 0u);
}

TEST_F(NetFixture, ZeroLatencyLinkDeliversSameInstantInOrder) {
  const Endpoint a{1, 10};
  const Endpoint b{2, 20};
  LinkParams link;
  link.latency = sim::ExecTimeModel::constant(0);
  network.set_default_link(link);
  std::vector<std::uint8_t> order;
  TimePoint receive_time = -1;
  network.bind(b, [&](const Packet& p) {
    order.push_back(p.payload[0]);
    receive_time = p.receive_time;
  });
  kernel.schedule_at(3_ms, [&] {
    for (std::uint8_t i = 0; i < 10; ++i) {
      network.send(a, b, bytes({i}));
    }
  });
  kernel.run();
  ASSERT_EQ(order.size(), 10u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  EXPECT_EQ(receive_time, 3_ms) << "zero latency must not advance time";
  EXPECT_EQ(network.packets_reordered(), 0u);
}

TEST_F(NetFixture, DuplicationDeliversAnExtraCopyPerPacket) {
  const Endpoint a{1, 10};
  const Endpoint b{2, 20};
  LinkParams link;
  link.latency = sim::ExecTimeModel::constant(100_us);
  link.duplicate_probability = 1.0;
  network.set_default_link(link);
  int delivered = 0;
  network.bind(b, [&](const Packet&) { ++delivered; });
  for (int i = 0; i < 200; ++i) {
    network.send(a, b, bytes({7}));
  }
  kernel.run();
  EXPECT_EQ(delivered, 400);
  EXPECT_EQ(network.packets_duplicated(), 200u);
  EXPECT_EQ(network.packets_delivered(), 400u);
  EXPECT_EQ(network.packets_sent(), 200u);
}

TEST_F(NetFixture, DuplicationProbabilityRoughlyHolds) {
  const Endpoint a{1, 10};
  const Endpoint b{2, 20};
  LinkParams link;
  link.latency = sim::ExecTimeModel::uniform(0, 500_us);
  link.duplicate_probability = 0.25;
  network.set_default_link(link);
  int delivered = 0;
  network.bind(b, [&](const Packet&) { ++delivered; });
  constexpr int kPackets = 10'000;
  for (int i = 0; i < kPackets; ++i) {
    network.send(a, b, bytes({0}));
  }
  kernel.run();
  EXPECT_NEAR(static_cast<double>(delivered) / kPackets, 1.25, 0.02);
}

TEST_F(NetFixture, DuplicationCombinedWithDropKeepsTheBooksStraight) {
  // A dropped packet must never be duplicated: deliveries come in pairs.
  const Endpoint a{1, 10};
  const Endpoint b{2, 20};
  LinkParams link;
  link.latency = sim::ExecTimeModel::constant(50_us);
  link.drop_probability = 0.5;
  link.duplicate_probability = 1.0;
  network.set_default_link(link);
  int delivered = 0;
  network.bind(b, [&](const Packet&) { ++delivered; });
  constexpr int kPackets = 2'000;
  for (int i = 0; i < kPackets; ++i) {
    network.send(a, b, bytes({0}));
  }
  kernel.run();
  EXPECT_EQ(network.packets_sent(), static_cast<std::uint64_t>(kPackets));
  const auto surviving = kPackets - network.packets_dropped();
  EXPECT_EQ(network.packets_delivered(), 2 * surviving);
  EXPECT_EQ(network.packets_duplicated(), surviving);
  EXPECT_EQ(static_cast<std::uint64_t>(delivered), 2 * surviving);
  EXPECT_NEAR(static_cast<double>(network.packets_dropped()) / kPackets, 0.5, 0.05);
}

TEST_F(NetFixture, DuplicationRespectsInOrderDelivery) {
  const Endpoint a{1, 10};
  const Endpoint b{2, 20};
  LinkParams link;
  link.latency = sim::ExecTimeModel::uniform(0, 1_ms);
  link.duplicate_probability = 0.5;
  link.enforce_in_order = true;
  network.set_default_link(link);
  std::vector<std::uint8_t> order;
  network.bind(b, [&](const Packet& p) { order.push_back(p.payload[0]); });
  for (std::uint8_t i = 0; i < 100; ++i) {
    network.send(a, b, bytes({i}));
  }
  kernel.run();
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  EXPECT_EQ(network.packets_reordered(), 0u);
}

// --- link partitions (fault-tolerance primitive) ----------------------------

TEST_F(NetFixture, PartitionDropsAtSenderAndHealRestoresDelivery) {
  const Endpoint a{1, 10};
  const Endpoint b{2, 20};
  int delivered = 0;
  network.bind(b, [&](const Packet&) { ++delivered; });
  network.set_link_down(1, 2);
  EXPECT_TRUE(network.link_down(1, 2));
  network.send(a, b, bytes({1}));
  kernel.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(network.packets_partition_dropped(), 1u);
  EXPECT_EQ(network.packets_dropped(), 0u) << "partition kills are booked separately";
  network.set_link_up(1, 2);
  EXPECT_FALSE(network.link_down(1, 2));
  network.send(a, b, bytes({2}));
  kernel.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(network.packets_sent(), 2u);
}

TEST_F(NetFixture, PartitionKillsPacketsAlreadyInFlight) {
  const Endpoint a{1, 10};
  const Endpoint b{2, 20};
  LinkParams link;
  link.latency = sim::ExecTimeModel::constant(100_us);
  network.set_default_link(link);
  int delivered = 0;
  network.bind(b, [&](const Packet&) { ++delivered; });
  network.send(a, b, bytes({1}));  // delivery due at 100us
  kernel.schedule_at(50_us, [&] { network.set_link_down(1, 2); });
  kernel.run();
  EXPECT_EQ(delivered, 0) << "the cable is severed mid-flight";
  EXPECT_EQ(network.packets_partition_dropped(), 1u);
  EXPECT_EQ(network.packets_delivered(), 0u);
}

TEST_F(NetFixture, HealBeforeDeliveryLetsInFlightPacketLand) {
  // The partition check runs at the delivery instant: a down window that
  // opens and closes entirely while the packet is still in flight does not
  // kill it.
  const Endpoint a{1, 10};
  const Endpoint b{2, 20};
  LinkParams link;
  link.latency = sim::ExecTimeModel::constant(100_us);
  network.set_default_link(link);
  int delivered = 0;
  network.bind(b, [&](const Packet&) { ++delivered; });
  network.send(a, b, bytes({1}));
  kernel.schedule_at(20_us, [&] { network.set_link_down(1, 2); });
  kernel.schedule_at(50_us, [&] { network.set_link_up(1, 2); });
  kernel.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(network.packets_partition_dropped(), 0u);
}

TEST_F(NetFixture, HealOrderingSortsCasualtiesFromSurvivors) {
  // A sent pre-partition with delivery inside the window: dead. B sent
  // during the window: dead at the sender. C sent after the heal: lands.
  const Endpoint a{1, 10};
  const Endpoint b{2, 20};
  LinkParams link;
  link.latency = sim::ExecTimeModel::constant(100_us);
  network.set_default_link(link);
  std::vector<std::uint8_t> landed;
  network.bind(b, [&](const Packet& p) { landed.push_back(p.payload[0]); });
  network.send(a, b, bytes({1}));                                   // delivery at 100us
  kernel.schedule_at(50_us, [&] { network.set_link_down(1, 2); });  // window [50us, 150us)
  kernel.schedule_at(80_us, [&] { network.send(a, b, bytes({2})); });
  kernel.schedule_at(150_us, [&] {
    network.set_link_up(1, 2);
    network.send(a, b, bytes({3}));
  });
  kernel.run();
  ASSERT_EQ(landed.size(), 1u);
  EXPECT_EQ(landed[0], 3u);
  EXPECT_EQ(network.packets_partition_dropped(), 2u);
  EXPECT_EQ(network.packets_sent(), 3u);
  EXPECT_EQ(network.packets_delivered(), 1u);
}

TEST_F(NetFixture, PartitionIsDirectional) {
  const Endpoint a{1, 10};
  const Endpoint b{2, 20};
  int at_a = 0;
  int at_b = 0;
  network.bind(a, [&](const Packet&) { ++at_a; });
  network.bind(b, [&](const Packet&) { ++at_b; });
  network.set_link_down(1, 2);
  network.send(a, b, bytes({1}));
  network.send(b, a, bytes({2}));
  kernel.run();
  EXPECT_EQ(at_b, 0);
  EXPECT_EQ(at_a, 1) << "the reverse direction stays up";
  EXPECT_EQ(network.packets_partition_dropped(), 1u);
}

TEST_F(NetFixture, PartitionDropsConsumeNoRandomness) {
  // The partition check precedes the drop/duplication draws, so sends that
  // die in a partition leave the RNG stream untouched: the loss pattern
  // after the heal is bit-identical to a run that never partitioned.
  LinkParams link;
  link.latency = sim::ExecTimeModel::constant(100_us);
  link.drop_probability = 0.5;

  const auto surviving_pattern = [&](bool with_partition) {
    sim::Kernel k;
    SimNetwork net{k, common::Rng(99)};
    net.set_default_link(link);
    std::vector<std::uint8_t> landed;
    net.bind({2, 20}, [&](const Packet& p) { landed.push_back(p.payload[0]); });
    if (with_partition) {
      net.set_link_down(1, 2);
      for (int i = 0; i < 50; ++i) {
        net.send({1, 10}, {2, 20}, bytes({0xFF}));
      }
      net.set_link_up(1, 2);
    }
    for (std::uint8_t i = 0; i < 100; ++i) {
      net.send({1, 10}, {2, 20}, bytes({i}));
    }
    k.run();
    return landed;
  };

  EXPECT_EQ(surviving_pattern(true), surviving_pattern(false));
}

TEST_F(NetFixture, SendRecordsSendTime) {
  const Endpoint b{2, 20};
  kernel.schedule_at(5_ms, [&] { network.send({1, 1}, b, bytes({1})); });
  Packet seen;
  network.bind(b, [&](const Packet& p) { seen = p; });
  kernel.run();
  EXPECT_EQ(seen.send_time, 5_ms);
  EXPECT_GE(seen.receive_time, seen.send_time);
}

}  // namespace
}  // namespace dear::net
