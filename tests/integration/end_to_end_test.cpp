// Cross-module integration: distributed DEAR pipelines with clock skew
// between platforms, and the full nondet-vs-DEAR contrast on identical
// workloads.
#include <gtest/gtest.h>

#include "brake/dear_pipeline.hpp"
#include "brake/nondet_pipeline.hpp"
#include "sim/clock_model.hpp"

namespace dear {
namespace {

using namespace dear::literals;

TEST(EndToEnd, DearFixesTheExactWorkloadTheClassicPipelineBreaks) {
  // Same camera behavior, same platform randomness seeds: the classic
  // pipeline drops frames, the DEAR pipeline processes every single one.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    brake::ScenarioConfig classic;
    classic.frames = 2000;
    classic.platform_seed = seed;
    classic.camera_seed = seed + 1000;

    brake::DearScenarioConfig dear_config;
    dear_config.frames = 2000;
    dear_config.platform_seed = seed;
    dear_config.camera_seed = seed + 1000;

    const auto classic_result = brake::run_nondet_pipeline(classic);
    const auto dear_result = brake::run_dear_pipeline(dear_config);

    EXPECT_EQ(dear_result.errors.total(), 0u) << "seed " << seed;
    EXPECT_EQ(dear_result.frames_processed_eba, 2000u) << "seed " << seed;
    EXPECT_LE(classic_result.frames_processed_eba, 2000u);
  }
}

TEST(EndToEnd, ClockErrorBoundCoversSkewedPlatforms) {
  // With a nonzero clock error budget the pipeline still runs error-free
  // (the tags simply carry the extra E margin).
  brake::DearScenarioConfig config;
  config.frames = 1000;
  config.platform_seed = 11;
  config.camera_seed = 12;
  config.clock_error_bound = 2_ms;
  const auto result = brake::run_dear_pipeline(config);
  EXPECT_EQ(result.errors.total(), 0u);
  EXPECT_EQ(result.frames_processed_eba, 1000u);
  // Latency grows by 2 ms per network hop (3 hops): 70 + 6 = 76 ms.
  EXPECT_DOUBLE_EQ(result.latency.max(), static_cast<double>(76_ms));
}

TEST(EndToEnd, LongRunStaysStable) {
  brake::DearScenarioConfig config;
  config.frames = 10'000;
  config.platform_seed = 21;
  config.camera_seed = 22;
  const auto result = brake::run_dear_pipeline(config);
  EXPECT_EQ(result.frames_processed_eba, 10'000u);
  EXPECT_EQ(result.errors.total(), 0u);
}

TEST(EndToEnd, BrakeDecisionsAgreeBetweenPipelinesOnCleanFrames) {
  // When the classic pipeline happens to process a frame with aligned
  // inputs, its decision agrees with the (always correct) DEAR pipeline.
  brake::ScenarioConfig classic;
  classic.frames = 2000;
  classic.platform_seed = 3;  // a low-error seed
  classic.camera_seed = 1003;
  const auto classic_result = brake::run_nondet_pipeline(classic);
  // All processed frames decided correctly (no mismatches at this seed).
  if (classic_result.errors.input_mismatches_cv == 0) {
    EXPECT_EQ(classic_result.wrong_decisions, 0u);
  }
}

}  // namespace
}  // namespace dear
