// The Figure 1 experiment as an integration test.
#include "demo/fig1.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dear::demo {
namespace {

TEST(Fig1Nondet, SimOutcomesSpanMultipleValues) {
  std::set<std::int32_t> outcomes;
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    const Fig1Outcome outcome = run_fig1_nondet_sim(seed);
    ASSERT_TRUE(outcome.completed) << "seed " << seed;
    ASSERT_GE(outcome.printed, 0);
    ASSERT_LE(outcome.printed, 3);
    outcomes.insert(outcome.printed);
  }
  // The paper's histogram: all four results {0,1,2,3} occur.
  EXPECT_EQ(outcomes.size(), 4u);
}

TEST(Fig1Nondet, SimIsSeedReproducible) {
  for (std::uint64_t seed : {1ULL, 17ULL, 99ULL}) {
    EXPECT_EQ(run_fig1_nondet_sim(seed).printed, run_fig1_nondet_sim(seed).printed);
  }
}

TEST(Fig1Nondet, RealThreadsTrialsComplete) {
  Fig1RealHarness harness(4);
  for (int i = 0; i < 50; ++i) {
    const Fig1Outcome outcome = harness.run_trial();
    ASSERT_TRUE(outcome.completed);
    ASSERT_GE(outcome.printed, 0);
    ASSERT_LE(outcome.printed, 3);
  }
}

TEST(Fig1Dear, SimAlwaysPrintsThree) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const Fig1Outcome outcome = run_fig1_dear_sim(seed);
    ASSERT_TRUE(outcome.completed) << "seed " << seed;
    EXPECT_EQ(outcome.printed, 3) << "seed " << seed;
    EXPECT_EQ(outcome.protocol_errors, 0u) << "seed " << seed;
  }
}

TEST(Fig1Dear, ThreadedAlwaysPrintsThree) {
  for (int i = 0; i < 5; ++i) {
    const Fig1Outcome outcome = run_fig1_dear_threaded(4);
    ASSERT_TRUE(outcome.completed);
    EXPECT_EQ(outcome.printed, 3);
    EXPECT_EQ(outcome.protocol_errors, 0u);
  }
}

}  // namespace
}  // namespace dear::demo
