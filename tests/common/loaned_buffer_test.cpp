#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/buffer_pool.hpp"

namespace dear::common {
namespace {

// The slab classes and retention budgets are load-bearing API: scenario
// configs and the data-plane benchmarks size payloads against them, and
// the byte budgets bound process memory for the pool's whole (leaked)
// lifetime. Pin them so a change is a conscious decision.
static_assert(BufferPool::kSlabClassCount == 4);
static_assert(BufferPool::kSlabClassBytes[0] == 64 * 1024);
static_assert(BufferPool::kSlabClassBytes[1] == 256 * 1024);
static_assert(BufferPool::kSlabClassBytes[2] == 1024 * 1024);
static_assert(BufferPool::kSlabClassBytes[3] == 4 * 1024 * 1024);
static_assert(BufferPool::kMaxRetainedSlabBytes == 32 * 1024 * 1024);
static_assert(BufferPool::kMaxRetainedCapacity == 16 * 1024);
static_assert(BufferPool::kMaxRetainedBytes == 16 * 1024 * 1024);

TEST(LoanedBuffer, DefaultIsEmpty) {
  LoanedBuffer buffer;
  EXPECT_FALSE(buffer);
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.capacity(), 0u);
  EXPECT_EQ(buffer.use_count(), 0u);
  EXPECT_FALSE(buffer.published());
  buffer.reset();  // resetting an empty handle is a no-op
}

TEST(LoanedBuffer, LoanRoundsUpToSlabClass) {
  LoanedBuffer buffer = BufferPool::instance().loan(1000);
  ASSERT_TRUE(buffer);
  EXPECT_EQ(buffer.capacity(), 64u * 1024u);
  EXPECT_EQ(buffer.size(), 0u);  // no payload until publish()
  EXPECT_EQ(buffer.use_count(), 1u);
  LoanedBuffer large = BufferPool::instance().loan(64 * 1024 + 1);
  EXPECT_EQ(large.capacity(), 256u * 1024u);
}

TEST(LoanedBuffer, PublishFreezesSizeAndClampsToCapacity) {
  LoanedBuffer buffer = BufferPool::instance().loan(4096);
  buffer.data()[0] = 0x5A;
  buffer.publish(4096);
  EXPECT_TRUE(buffer.published());
  EXPECT_EQ(buffer.size(), 4096u);
  EXPECT_EQ(buffer.data()[0], 0x5A);

  LoanedBuffer clamped = BufferPool::instance().loan(64 * 1024);
  clamped.publish(10 * 1024 * 1024);  // beyond capacity: clamped, not UB
  EXPECT_EQ(clamped.size(), clamped.capacity());
}

TEST(LoanedBuffer, CopyRetainsMoveTransfers) {
  LoanedBuffer producer = BufferPool::instance().loan(1024);
  producer.publish(16);

  LoanedBuffer copy = producer;  // copy = retain: same slab, +1 ref
  EXPECT_EQ(producer.use_count(), 2u);
  EXPECT_EQ(copy.use_count(), 2u);
  EXPECT_EQ(copy.data(), producer.data());
  EXPECT_EQ(copy.size(), 16u);

  LoanedBuffer moved = std::move(copy);  // move = transfer: no ref change
  EXPECT_EQ(moved.use_count(), 2u);
  EXPECT_FALSE(copy);  // NOLINT(bugprone-use-after-move): moved-from is empty

  moved.reset();
  EXPECT_EQ(producer.use_count(), 1u);
}

TEST(LoanedBuffer, CopyAssignOverSelfAndOverExisting) {
  LoanedBuffer a = BufferPool::instance().loan(1024);
  LoanedBuffer b = BufferPool::instance().loan(1024);
  const std::uint8_t* b_data = b.data();
  b = a;  // releases b's slab, retains a's
  EXPECT_EQ(b.data(), a.data());
  EXPECT_NE(b.data(), b_data);
  EXPECT_EQ(a.use_count(), 2u);
  a = a;  // self-assignment keeps the slab alive
  EXPECT_EQ(a.use_count(), 2u);
}

TEST(LoanedBuffer, PublishThenLateProducerRelease) {
  // The producer may drop its handle immediately after handing the frame
  // off; the consumer's retain keeps the published bytes alive.
  LoanedBuffer consumer;
  {
    LoanedBuffer producer = BufferPool::instance().loan(2048);
    producer.data()[7] = 0x42;
    producer.publish(8);
    consumer = producer;
    producer.reset();  // late release: before any consumer read
  }
  ASSERT_TRUE(consumer);
  EXPECT_EQ(consumer.use_count(), 1u);
  EXPECT_TRUE(consumer.published());
  EXPECT_EQ(consumer.size(), 8u);
  EXPECT_EQ(consumer.data()[7], 0x42);
}

TEST(LoanedBuffer, MultiSubscriberFanOutSharesOneSlab) {
  LoanedBuffer producer = BufferPool::instance().loan(4096);
  producer.data()[0] = 0x77;
  producer.publish(64);

  std::vector<LoanedBuffer> subscribers;
  for (int i = 0; i < 5; ++i) {
    subscribers.push_back(producer);
  }
  EXPECT_EQ(producer.use_count(), 6u);
  for (const LoanedBuffer& subscriber : subscribers) {
    EXPECT_EQ(subscriber.data(), producer.data());  // zero-copy fan-out
    EXPECT_EQ(subscriber.data()[0], 0x77);
  }
  subscribers.clear();
  EXPECT_EQ(producer.use_count(), 1u);
}

TEST(LoanedBuffer, LastReleaseShelvesAndReloanReusesStorage) {
  LoanedBuffer first = BufferPool::instance().loan(256 * 1024);
  const std::uint8_t* storage = first.data();
  const std::size_t retained_before = BufferPool::instance().retained_slab_bytes();
  first.reset();  // last handle: slab goes back onto its shelf (LIFO)
  EXPECT_EQ(BufferPool::instance().retained_slab_bytes(), retained_before + 256u * 1024u);

  LoanedBuffer second = BufferPool::instance().loan(256 * 1024);
  EXPECT_EQ(second.data(), storage);  // shelf hit: same storage, no allocation
  EXPECT_EQ(second.size(), 0u);       // handle state reset on re-loan
  EXPECT_FALSE(second.published());
  EXPECT_EQ(second.use_count(), 1u);
  EXPECT_EQ(BufferPool::instance().retained_slab_bytes(), retained_before);
}

TEST(LoanedBuffer, OversizeLoanIsUnpooled) {
  const std::size_t bytes = 5 * 1024 * 1024;  // beyond the largest class
  LoanedBuffer buffer = BufferPool::instance().loan(bytes);
  ASSERT_TRUE(buffer);
  EXPECT_EQ(buffer.capacity(), bytes);  // exact, not rounded to a class
  const std::size_t retained_before = BufferPool::instance().retained_slab_bytes();
  buffer.reset();
  // Never shelved: an oversize one-off must not pin pool memory.
  EXPECT_EQ(BufferPool::instance().retained_slab_bytes(), retained_before);
}

TEST(BufferPoolBudget, SlabShelvesStopRetainingAtByteBudget) {
  // Hold more 4 MiB slabs live than the 32 MiB budget can shelve, then
  // release them all: retention must stop at the budget, the overflow
  // must be freed (deterministic drop, not unbounded growth).
  std::vector<LoanedBuffer> live;
  for (int i = 0; i < 12; ++i) {  // 48 MiB live
    live.push_back(BufferPool::instance().loan(4 * 1024 * 1024));
  }
  live.clear();
  EXPECT_LE(BufferPool::instance().retained_slab_bytes(),
            BufferPool::kMaxRetainedSlabBytes);
}

TEST(BufferPoolBudget, VectorPlaneRejectsOverCapacityBuffers) {
  // The small-buffer plane's per-buffer ceiling: a one-off giant vector
  // must not be retained (large payloads belong on the slab plane).
  const std::size_t retained_before = BufferPool::instance().retained_bytes();
  std::vector<std::uint8_t> giant;
  giant.reserve(BufferPool::kMaxRetainedCapacity + 1);
  BufferPool::instance().release(std::move(giant));
  EXPECT_EQ(BufferPool::instance().retained_bytes(), retained_before);
}

TEST(LoanedBuffer, ThreadedRetainReleaseConverges) {
  // TSan target: concurrent retain/read/release traffic on one published
  // slab. The refcount is the only shared-mutable state after publish.
  LoanedBuffer producer = BufferPool::instance().loan(64 * 1024);
  producer.data()[0] = 0x3C;
  producer.publish(1024);

  constexpr int kThreads = 4;
  constexpr int kIterations = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&producer] {
      for (int i = 0; i < kIterations; ++i) {
        LoanedBuffer reader = producer;  // retain
        ASSERT_EQ(reader.data()[0], 0x3C);
        ASSERT_EQ(reader.size(), 1024u);
      }  // release
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(producer.use_count(), 1u);
}

}  // namespace
}  // namespace dear::common
