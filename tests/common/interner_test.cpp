// Interner tests: canonical-view identity, view stability across index
// growth, and the one-allocation-per-distinct-name contract the span
// tracer's recording path relies on.
#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "common/interner.hpp"

namespace dear::common {
namespace {

TEST(Interner, SameNameYieldsTheSameView) {
  Interner interner;
  const std::string_view a = interner.intern("reactor/brake/decide");
  const std::string_view b = interner.intern(std::string("reactor/brake/decide"));
  EXPECT_EQ(a.data(), b.data());  // identical storage, not just equal text
  EXPECT_EQ(interner.size(), 1u);
}

TEST(Interner, DistinctNamesAreDistinct) {
  Interner interner;
  const std::string_view a = interner.intern("a");
  const std::string_view b = interner.intern("b");
  EXPECT_NE(a.data(), b.data());
  EXPECT_EQ(interner.size(), 2u);
}

TEST(Interner, ViewsSurviveIndexGrowth) {
  Interner interner;
  std::vector<std::string_view> views;
  for (int i = 0; i < 500; ++i) {
    views.push_back(interner.intern("name-" + std::to_string(i)));
  }
  EXPECT_EQ(interner.size(), 500u);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(views[static_cast<std::size_t>(i)], "name-" + std::to_string(i));
    // Re-interning returns the original storage even after growth.
    EXPECT_EQ(interner.intern("name-" + std::to_string(i)).data(),
              views[static_cast<std::size_t>(i)].data());
  }
}

TEST(Interner, ClearEmptiesTheIndex) {
  Interner interner;
  (void)interner.intern("x");
  EXPECT_FALSE(interner.empty());
  interner.clear();
  EXPECT_TRUE(interner.empty());
  EXPECT_EQ(interner.size(), 0u);
}

}  // namespace
}  // namespace dear::common
