#include "common/histogram.hpp"

#include <gtest/gtest.h>

namespace dear::common {
namespace {

TEST(CategoricalHistogram, CountsAndTotals) {
  CategoricalHistogram h;
  EXPECT_TRUE(h.empty());
  h.add(3);
  h.add(3);
  h.add(0);
  EXPECT_FALSE(h.empty());
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(7), 0u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(CategoricalHistogram, BulkAdd) {
  CategoricalHistogram h;
  h.add(1, 10);
  h.add(2, 30);
  EXPECT_EQ(h.total(), 40u);
  EXPECT_DOUBLE_EQ(h.probability(2), 0.75);
}

TEST(CategoricalHistogram, ProbabilityEmptyIsZero) {
  const CategoricalHistogram h;
  EXPECT_DOUBLE_EQ(h.probability(0), 0.0);
}

TEST(CategoricalHistogram, ValuesSorted) {
  CategoricalHistogram h;
  h.add(5);
  h.add(-2);
  h.add(3);
  const auto values = h.values();
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0], -2);
  EXPECT_EQ(values[1], 3);
  EXPECT_EQ(values[2], 5);
}

TEST(CategoricalHistogram, AsciiRendering) {
  CategoricalHistogram h;
  EXPECT_EQ(h.to_ascii(), "(empty)\n");
  h.add(0, 1);
  h.add(1, 3);
  const std::string art = h.to_ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find("0.250"), std::string::npos);
  EXPECT_NE(art.find("0.750"), std::string::npos);
}

TEST(BinnedHistogram, RejectsBadConstruction) {
  EXPECT_THROW(BinnedHistogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(BinnedHistogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(BinnedHistogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(BinnedHistogram, BinsAndOverflow) {
  BinnedHistogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(-1.0);
  h.add(10.0);
  h.add(25.0);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(9), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(BinnedHistogram, BinEdges) {
  BinnedHistogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lower(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(0), 12.0);
  EXPECT_DOUBLE_EQ(h.bin_lower(4), 18.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(4), 20.0);
}

TEST(BinnedHistogram, QuantileMonotone) {
  BinnedHistogram h(0.0, 100.0, 100);
  for (int i = 0; i < 1000; ++i) {
    h.add(static_cast<double>(i % 100) + 0.5);
  }
  const double q10 = h.quantile(0.10);
  const double q50 = h.quantile(0.50);
  const double q90 = h.quantile(0.90);
  EXPECT_LE(q10, q50);
  EXPECT_LE(q50, q90);
  EXPECT_NEAR(q50, 50.0, 2.0);
  EXPECT_NEAR(q90, 90.0, 2.0);
}

TEST(BinnedHistogram, QuantileEmpty) {
  BinnedHistogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

}  // namespace
}  // namespace dear::common
