#include "common/flags.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace dear::common {
namespace {

Flags make_flags(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsSyntax) {
  const auto flags = make_flags({"--frames=100", "--scale=0.5", "--name=hello"});
  EXPECT_EQ(flags.get_int("frames", 0), 100);
  EXPECT_DOUBLE_EQ(flags.get_double("scale", 0.0), 0.5);
  EXPECT_EQ(flags.get_string("name", ""), "hello");
}

TEST(Flags, SpaceSyntax) {
  const auto flags = make_flags({"--frames", "42", "--label", "x"});
  EXPECT_EQ(flags.get_int("frames", 0), 42);
  EXPECT_EQ(flags.get_string("label", ""), "x");
}

TEST(Flags, BooleanForms) {
  const auto flags = make_flags({"--verbose", "--fast=true", "--slow=false", "--n=1"});
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_TRUE(flags.get_bool("fast", false));
  EXPECT_FALSE(flags.get_bool("slow", true));
  EXPECT_TRUE(flags.get_bool("n", false));
  EXPECT_TRUE(flags.get_bool("absent", true));
  EXPECT_FALSE(flags.get_bool("absent", false));
}

TEST(Flags, Fallbacks) {
  const auto flags = make_flags({});
  EXPECT_EQ(flags.get_int("missing", -7), -7);
  EXPECT_DOUBLE_EQ(flags.get_double("missing", 1.25), 1.25);
  EXPECT_EQ(flags.get_string("missing", "dflt"), "dflt");
  EXPECT_FALSE(flags.has("missing"));
}

TEST(Flags, Positional) {
  const auto flags = make_flags({"input.txt", "--opt=1", "output.txt"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
  EXPECT_EQ(flags.positional()[1], "output.txt");
  EXPECT_EQ(flags.program(), "prog");
}

TEST(Flags, FlagFollowedByFlagIsBoolean) {
  const auto flags = make_flags({"--a", "--b", "7"});
  EXPECT_TRUE(flags.get_bool("a", false));
  EXPECT_EQ(flags.get_int("b", 0), 7);
}

TEST(EnvInt, ReadsAndFallsBack) {
  ::setenv("DEAR_TEST_ENV_INT", "123", 1);
  EXPECT_EQ(env_int("DEAR_TEST_ENV_INT", 0), 123);
  ::unsetenv("DEAR_TEST_ENV_INT");
  EXPECT_EQ(env_int("DEAR_TEST_ENV_INT", 77), 77);
  ::setenv("DEAR_TEST_ENV_INT", "", 1);
  EXPECT_EQ(env_int("DEAR_TEST_ENV_INT", 5), 5);
  ::unsetenv("DEAR_TEST_ENV_INT");
}

}  // namespace
}  // namespace dear::common
