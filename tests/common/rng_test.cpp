#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace dear::common {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDifferentSequences) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) {
    first.push_back(a());
  }
  a.reseed(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a(), first[static_cast<std::size_t>(i)]);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1'000'000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Rng, UniformInclusiveRange) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, UniformSingletonRange) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.uniform(42, 42), 42);
  }
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, Uniform01MeanRoughlyHalf) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kSamples = 100'000;
  for (int i = 0; i < kSamples; ++i) {
    sum += rng.uniform01();
  }
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Rng, NormalMeanAndSpread) {
  Rng rng(17);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kSamples = 100'000;
  for (int i = 0; i < kSamples; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kSamples;
  const double variance = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(variance, 4.0, 0.3);
}

TEST(Rng, NormalTruncatedAtFourSigma) {
  Rng rng(19);
  for (int i = 0; i < 50'000; ++i) {
    const double v = rng.normal(0.0, 1.0);
    EXPECT_GE(v, -4.0);
    EXPECT_LE(v, 4.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceRate) {
  Rng rng(29);
  int hits = 0;
  constexpr int kSamples = 100'000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.chance(0.25)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.25, 0.01);
}

TEST(Rng, StreamsAreDecorrelated) {
  const Rng root(99);
  Rng a = root.stream("alpha");
  Rng b = root.stream("beta");
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, StreamsAreDeterministic) {
  const Rng root(99);
  Rng a1 = root.stream("alpha");
  Rng a2 = root.stream("alpha");
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a1(), a2());
  }
}

TEST(Rng, StreamDoesNotAdvanceParent) {
  Rng root(7);
  Rng copy(7);
  (void)root.stream("x");
  (void)root.stream("y");
  EXPECT_EQ(root(), copy());
}

TEST(Rng, UniformDurationBounds) {
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    const Duration d = rng.uniform_duration(5, 500);
    EXPECT_GE(d, 5);
    EXPECT_LE(d, 500);
  }
}

TEST(Fnv1a, KnownValuesStable) {
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
  EXPECT_EQ(fnv1a("dear"), fnv1a("dear"));
}

TEST(Splitmix64, AdvancesState) {
  std::uint64_t state = 1;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  EXPECT_NE(first, second);
  EXPECT_NE(state, 1u);
}

class RngRangeTest : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>> {};

TEST_P(RngRangeTest, AllDrawsInRange) {
  const auto [lo, hi] = GetParam();
  Rng rng(static_cast<std::uint64_t>(lo * 31 + hi));
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform(lo, hi);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, RngRangeTest,
                         ::testing::Values(std::pair{0L, 1L}, std::pair{-100L, 100L},
                                           std::pair{0L, 49'999'999L},
                                           std::pair{-1'000'000'000L, -999'999'990L},
                                           std::pair{5L, 5L}));

}  // namespace
}  // namespace dear::common
