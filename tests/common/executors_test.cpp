#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "common/serial_executor.hpp"
#include "common/thread_pool.hpp"

namespace dear::common {
namespace {

TEST(ThreadPoolExecutor, RunsPostedTasks) {
  ThreadPoolExecutor pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.post([&counter] { counter.fetch_add(1); });
  }
  pool.drain();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolExecutor, ZeroWorkersClampedToOne) {
  ThreadPoolExecutor pool(0);
  EXPECT_EQ(pool.worker_count(), 1u);
  std::atomic<bool> ran{false};
  pool.post([&ran] { ran.store(true); });
  pool.drain();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolExecutor, NowIsMonotonic) {
  ThreadPoolExecutor pool(1);
  const TimePoint a = pool.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const TimePoint b = pool.now();
  EXPECT_GT(b, a);
  EXPECT_GE(b - a, kMillisecond);
}

TEST(ThreadPoolExecutor, PostAfterRespectsDelay) {
  ThreadPoolExecutor pool(2);
  std::atomic<TimePoint> executed_at{0};
  const TimePoint start = pool.now();
  pool.post_after(5 * kMillisecond, [&] { executed_at.store(pool.now()); });
  // Busy-wait until the delayed task ran (bounded).
  for (int i = 0; i < 1000 && executed_at.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_NE(executed_at.load(), 0);
  EXPECT_GE(executed_at.load() - start, 5 * kMillisecond);
}

TEST(ThreadPoolExecutor, NonPositiveDelayRunsSoon) {
  ThreadPoolExecutor pool(1);
  std::atomic<bool> ran{false};
  pool.post_after(0, [&ran] { ran.store(true); });
  pool.post_after(-5, [&ran] {});
  pool.drain();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolExecutor, TasksRunOnWorkerThreads) {
  ThreadPoolExecutor pool(4);
  std::mutex mutex;
  std::set<std::thread::id> ids;
  for (int i = 0; i < 200; ++i) {
    pool.post([&] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      const std::lock_guard<std::mutex> lock(mutex);
      ids.insert(std::this_thread::get_id());
    });
  }
  pool.drain();
  EXPECT_GE(ids.size(), 2u);  // at least two workers participated
  EXPECT_EQ(ids.count(std::this_thread::get_id()), 0u);
}

TEST(SerialExecutor, PreservesFifoOrderUnderConcurrency) {
  ThreadPoolExecutor pool(4);
  SerialExecutor strand(pool);
  std::vector<int> order;
  std::mutex mutex;
  for (int i = 0; i < 500; ++i) {
    strand.post([&, i] {
      const std::lock_guard<std::mutex> lock(mutex);
      order.push_back(i);
    });
  }
  pool.drain();
  // drain() waits for pool tasks; the strand may still be chaining, so poll.
  for (int i = 0; i < 1000; ++i) {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      if (order.size() == 500u) {
        break;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::lock_guard<std::mutex> lock(mutex);
  ASSERT_EQ(order.size(), 500u);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(SerialExecutor, TasksDoNotOverlap) {
  ThreadPoolExecutor pool(4);
  SerialExecutor strand(pool);
  std::atomic<int> concurrent{0};
  std::atomic<int> max_concurrent{0};
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    strand.post([&] {
      const int now = concurrent.fetch_add(1) + 1;
      int expected = max_concurrent.load();
      while (now > expected && !max_concurrent.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      concurrent.fetch_sub(1);
      done.fetch_add(1);
    });
  }
  for (int i = 0; i < 2000 && done.load() < 100; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(done.load(), 100);
  EXPECT_EQ(max_concurrent.load(), 1);
}

}  // namespace
}  // namespace dear::common
