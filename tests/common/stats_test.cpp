#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace dear::common {
namespace {

TEST(RunningStats, EmptyIsZero) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(v);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 100; ++i) {
    const double v = static_cast<double>(i * i % 37);
    whole.add(v);
    (i < 40 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(QuantileSketch, ExactQuantiles) {
  QuantileSketch q;
  for (int i = 100; i >= 1; --i) {
    q.add(static_cast<double>(i));
  }
  EXPECT_EQ(q.count(), 100u);
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 100.0);
  EXPECT_NEAR(q.quantile(0.5), 50.0, 1.0);
}

TEST(QuantileSketch, EmptyReturnsZero) {
  const QuantileSketch q;
  EXPECT_DOUBLE_EQ(q.quantile(0.5), 0.0);
}

TEST(QuantileSketch, AddAfterQueryStillSorted) {
  QuantileSketch q;
  q.add(3.0);
  q.add(1.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
  q.add(0.5);
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 0.5);
}

}  // namespace
}  // namespace dear::common
