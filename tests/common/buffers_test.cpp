#include <gtest/gtest.h>

#include <string>

#include "common/one_slot_buffer.hpp"
#include "common/ring_buffer.hpp"

namespace dear::common {
namespace {

// --- OneSlotBuffer -----------------------------------------------------------

TEST(OneSlotBuffer, TakeFromEmptyIsNullopt) {
  OneSlotBuffer<int> buffer;
  EXPECT_FALSE(buffer.take().has_value());
  EXPECT_EQ(buffer.empty_takes(), 1u);
}

TEST(OneSlotBuffer, StoreThenTake) {
  OneSlotBuffer<int> buffer;
  EXPECT_FALSE(buffer.store(42));
  const auto value = buffer.take();
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, 42);
  EXPECT_FALSE(buffer.take().has_value());
}

TEST(OneSlotBuffer, OverwriteIsReportedAndCounted) {
  OneSlotBuffer<std::string> buffer;
  EXPECT_FALSE(buffer.store("first"));
  EXPECT_TRUE(buffer.store("second"));  // the dropped-input case of §IV.A
  EXPECT_EQ(buffer.overwrites(), 1u);
  const auto value = buffer.take();
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, "second");  // latest wins
}

TEST(OneSlotBuffer, CountersTrackTraffic) {
  OneSlotBuffer<int> buffer;
  (void)buffer.store(1);
  (void)buffer.take();
  (void)buffer.store(2);
  (void)buffer.store(3);
  (void)buffer.take();
  (void)buffer.take();
  EXPECT_EQ(buffer.stores(), 3u);
  EXPECT_EQ(buffer.takes(), 2u);
  EXPECT_EQ(buffer.empty_takes(), 1u);
  EXPECT_EQ(buffer.overwrites(), 1u);
}

TEST(OneSlotBuffer, PeekDoesNotConsume) {
  OneSlotBuffer<int> buffer;
  (void)buffer.store(5);
  EXPECT_EQ(buffer.peek().value(), 5);
  EXPECT_EQ(buffer.take().value(), 5);
  EXPECT_FALSE(buffer.peek().has_value());
}

// --- RingBuffer ------------------------------------------------------------------

TEST(RingBuffer, RejectsZeroCapacity) {
  EXPECT_THROW(RingBuffer<int>(0), std::invalid_argument);
}

TEST(RingBuffer, FifoOrder) {
  RingBuffer<int> ring(4);
  for (int i = 1; i <= 4; ++i) {
    EXPECT_TRUE(ring.push(i));
  }
  EXPECT_TRUE(ring.full());
  EXPECT_FALSE(ring.push(5));
  for (int i = 1; i <= 4; ++i) {
    EXPECT_EQ(ring.pop().value(), i);
  }
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.pop().has_value());
}

TEST(RingBuffer, WrapAround) {
  RingBuffer<int> ring(3);
  (void)ring.push(1);
  (void)ring.push(2);
  (void)ring.pop();
  (void)ring.push(3);
  (void)ring.push(4);
  EXPECT_EQ(ring.pop().value(), 2);
  EXPECT_EQ(ring.pop().value(), 3);
  EXPECT_EQ(ring.pop().value(), 4);
}

TEST(RingBuffer, PushEvictReturnsOldest) {
  RingBuffer<int> ring(2);
  EXPECT_FALSE(ring.push_evict(1).has_value());
  EXPECT_FALSE(ring.push_evict(2).has_value());
  const auto evicted = ring.push_evict(3);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 1);
  EXPECT_EQ(ring.pop().value(), 2);
  EXPECT_EQ(ring.pop().value(), 3);
}

TEST(RingBuffer, FrontAndClear) {
  RingBuffer<int> ring(2);
  EXPECT_THROW((void)ring.front(), std::out_of_range);
  (void)ring.push(7);
  EXPECT_EQ(ring.front(), 7);
  EXPECT_EQ(ring.size(), 1u);
  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.capacity(), 2u);
}

}  // namespace
}  // namespace dear::common
