#include "common/time.hpp"

#include <gtest/gtest.h>

namespace dear {
namespace {

using namespace dear::literals;

TEST(TimeLiterals, Conversions) {
  EXPECT_EQ(1_us, 1000_ns);
  EXPECT_EQ(1_ms, 1000_us);
  EXPECT_EQ(1_s, 1000_ms);
  EXPECT_EQ(50_ms, 50 * kMillisecond);
}

TEST(TimeHelpers, FactoryFunctions) {
  EXPECT_EQ(nanoseconds(5), 5);
  EXPECT_EQ(microseconds(5), 5'000);
  EXPECT_EQ(milliseconds(5), 5'000'000);
  EXPECT_EQ(seconds(5), 5'000'000'000);
}

TEST(FormatDuration, PicksUnits) {
  EXPECT_EQ(format_duration(0), "0ns");
  EXPECT_EQ(format_duration(999), "999ns");
  EXPECT_EQ(format_duration(1500), "1.500us");
  EXPECT_EQ(format_duration(2'500'000), "2.500ms");
  EXPECT_EQ(format_duration(3'250'000'000), "3.250s");
}

TEST(FormatDuration, Negative) {
  EXPECT_EQ(format_duration(-1500), "-1.500us");
  EXPECT_EQ(format_duration(-2 * kSecond), "-2.000s");
}

}  // namespace
}  // namespace dear
