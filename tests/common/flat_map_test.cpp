// FlatMap / BinaryHeap — the hot-path container pair.
#include "common/flat_map.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "common/binary_heap.hpp"

namespace dear::common {
namespace {

TEST(FlatMap, InsertFindEraseBasics) {
  FlatMap<int, std::string> map;
  EXPECT_TRUE(map.empty());
  map[3] = "three";
  map[1] = "one";
  map[2] = "two";
  EXPECT_EQ(map.size(), 3u);
  ASSERT_NE(map.find(2), map.end());
  EXPECT_EQ(map.find(2)->second, "two");
  EXPECT_EQ(map.find(9), map.end());
  EXPECT_TRUE(map.contains(1));
  EXPECT_EQ(map.erase(2), 1u);
  EXPECT_EQ(map.erase(2), 0u);
  EXPECT_FALSE(map.contains(2));
  EXPECT_EQ(map.size(), 2u);
}

TEST(FlatMap, IteratesInKeyOrder) {
  FlatMap<int, int> map;
  for (const int key : {5, 1, 4, 2, 3}) {
    map[key] = key * 10;
  }
  std::vector<int> keys;
  for (const auto& [key, value] : map) {
    keys.push_back(key);
    EXPECT_EQ(value, key * 10);
  }
  EXPECT_EQ(keys, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(FlatMap, InsertOrAssign) {
  FlatMap<int, int> map;
  EXPECT_TRUE(map.insert_or_assign(1, 10).second);
  EXPECT_FALSE(map.insert_or_assign(1, 20).second);
  EXPECT_EQ(map.find(1)->second, 20);
}

TEST(FlatMap, MatchesStdMapUnderRandomChurn) {
  FlatMap<std::uint32_t, std::uint64_t> flat;
  std::map<std::uint32_t, std::uint64_t> reference;
  std::mt19937 rng(7);
  for (int i = 0; i < 5000; ++i) {
    const std::uint32_t key = rng() % 64;
    switch (rng() % 3) {
      case 0:
        flat[key] = i;
        reference[key] = static_cast<std::uint64_t>(i);
        break;
      case 1:
        EXPECT_EQ(flat.erase(key), reference.erase(key));
        break;
      default: {
        const auto it = flat.find(key);
        const auto ref = reference.find(key);
        ASSERT_EQ(it == flat.end(), ref == reference.end());
        if (ref != reference.end()) {
          EXPECT_EQ(it->second, ref->second);
        }
      }
    }
  }
  ASSERT_EQ(flat.size(), reference.size());
  auto ref = reference.begin();
  for (const auto& [key, value] : flat) {
    EXPECT_EQ(key, ref->first);
    EXPECT_EQ(value, ref->second);
    ++ref;
  }
}

TEST(BinaryHeap, PopsInSortedOrder) {
  BinaryHeap<int> heap;
  std::vector<int> values = {9, 1, 8, 2, 7, 3, 6, 4, 5, 5};
  for (const int v : values) {
    heap.push(v);
  }
  std::vector<int> popped;
  while (!heap.empty()) {
    popped.push_back(heap.pop_move());
  }
  std::vector<int> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(popped, sorted);
}

TEST(BinaryHeap, RandomChurnMatchesMultiset) {
  BinaryHeap<std::uint64_t> heap;
  std::multiset<std::uint64_t> reference;
  std::mt19937_64 rng(3);
  for (int i = 0; i < 20000; ++i) {
    if (reference.empty() || rng() % 3 != 0) {
      const std::uint64_t v = rng() % 1000;
      heap.push(v);
      reference.insert(v);
    } else {
      ASSERT_EQ(heap.top(), *reference.begin());
      heap.pop();
      reference.erase(reference.begin());
    }
  }
  while (!heap.empty()) {
    ASSERT_EQ(heap.top(), *reference.begin());
    heap.pop();
    reference.erase(reference.begin());
  }
  EXPECT_TRUE(reference.empty());
}

}  // namespace
}  // namespace dear::common
