#include "common/cli.hpp"

#include <gtest/gtest.h>

namespace dear::common {
namespace {

[[nodiscard]] Cli make_cli() {
  Cli cli("harness", "Test harness.");
  cli.add_int("frames", 100, "frames to run");
  cli.add_double("scale", 1.5, "stress scale");
  cli.add_string("out", "report.json", "output path");
  cli.add_flag("verbose", "chatty output");
  return cli;
}

TEST(Cli, DefaultsApplyWhenNothingIsPassed) {
  Cli cli = make_cli();
  const char* argv[] = {"harness"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("frames"), 100);
  EXPECT_DOUBLE_EQ(cli.get_double("scale"), 1.5);
  EXPECT_EQ(cli.get_string("out"), "report.json");
  EXPECT_FALSE(cli.get_flag("verbose"));
  EXPECT_FALSE(cli.was_set("frames"));
}

TEST(Cli, TypedValuesParseFromBothSyntaxes) {
  Cli cli = make_cli();
  const char* argv[] = {"harness", "--frames=250", "--scale", "0.5", "--verbose"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get_int("frames"), 250);
  EXPECT_DOUBLE_EQ(cli.get_double("scale"), 0.5);
  EXPECT_TRUE(cli.get_flag("verbose"));
  EXPECT_TRUE(cli.was_set("frames"));
}

TEST(Cli, HelpStopsTheRunWithExitCodeZero) {
  Cli cli = make_cli();
  const char* argv[] = {"harness", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
  EXPECT_EQ(cli.exit_code(), 0);
}

TEST(Cli, UnknownFlagIsRejectedWithExitCodeOne) {
  Cli cli = make_cli();
  const char* argv[] = {"harness", "--framez", "10"};
  EXPECT_FALSE(cli.parse(3, argv));
  EXPECT_EQ(cli.exit_code(), 1);
}

TEST(Cli, MalformedValuesAreRejectedNotTruncated) {
  {
    Cli cli = make_cli();
    const char* argv[] = {"harness", "--frames", "10O0"};  // typo'd zero
    EXPECT_FALSE(cli.parse(3, argv));
    EXPECT_EQ(cli.exit_code(), 1);
  }
  {
    Cli cli = make_cli();
    const char* argv[] = {"harness", "--scale", "1.5x"};
    EXPECT_FALSE(cli.parse(3, argv));
  }
  {
    Cli cli = make_cli();
    const char* argv[] = {"harness", "--verbose=maybe"};
    EXPECT_FALSE(cli.parse(2, argv));
  }
  {
    Cli cli = make_cli();
    const char* argv[] = {"harness", "--frames", "-3", "--scale", "2e-1", "--verbose=yes"};
    EXPECT_TRUE(cli.parse(6, argv));
    EXPECT_EQ(cli.get_int("frames"), -3);
    EXPECT_DOUBLE_EQ(cli.get_double("scale"), 0.2);
    EXPECT_TRUE(cli.get_flag("verbose"));
  }
}

TEST(Cli, UsageListsEveryOptionWithDefaults) {
  const Cli cli = make_cli();
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("--frames"), std::string::npos);
  EXPECT_NE(usage.find("frames to run"), std::string::npos);
  EXPECT_NE(usage.find("default: 100"), std::string::npos);
  EXPECT_NE(usage.find("--scale"), std::string::npos);
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
  EXPECT_NE(usage.find("--help"), std::string::npos);
}

TEST(Cli, UnregisteredAccessThrows) {
  Cli cli = make_cli();
  const char* argv[] = {"harness"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_THROW((void)cli.get_int("nope"), std::logic_error);
  EXPECT_THROW((void)cli.get_int("scale"), std::logic_error) << "type mismatch must throw";
}

TEST(Flags, NamesReturnsPassedFlagsSorted) {
  const char* argv[] = {"harness", "--beta", "--alpha=1"};
  const Flags flags(3, argv);
  const auto names = flags.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "beta");
}

}  // namespace
}  // namespace dear::common
