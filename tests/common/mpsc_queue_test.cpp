#include "common/mpsc_queue.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <thread>
#include <vector>

namespace dear::common {
namespace {

TEST(MpscQueueTest, StartsEmpty) {
  MpscQueue<int> queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(MpscQueueTest, FifoOrderSingleThread) {
  MpscQueue<int> queue;
  for (int i = 0; i < 100; ++i) {
    queue.push(i);
  }
  EXPECT_FALSE(queue.empty());
  for (int i = 0; i < 100; ++i) {
    const auto value = queue.pop();
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, i);
  }
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(MpscQueueTest, InterleavedPushPop) {
  MpscQueue<int> queue;
  int next = 0;
  for (int round = 0; round < 50; ++round) {
    queue.push(2 * round);
    queue.push(2 * round + 1);
    const auto a = queue.pop();
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(*a, next++);
    if (round % 3 == 0) {
      const auto b = queue.pop();
      ASSERT_TRUE(b.has_value());
      EXPECT_EQ(*b, next++);
    }
  }
  while (queue.pop().has_value()) {
    ++next;
  }
  EXPECT_EQ(next, 100);
}

TEST(MpscQueueTest, MoveOnlyElements) {
  MpscQueue<std::unique_ptr<int>> queue;
  queue.push(std::make_unique<int>(7));
  queue.push(std::make_unique<int>(8));
  auto first = queue.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(**first, 7);
  auto second = queue.pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(**second, 8);
}

TEST(MpscQueueTest, DropsPendingElementsOnDestruction) {
  // Leak-checked under ASan builds: queued elements must be freed.
  MpscQueue<std::unique_ptr<int>> queue;
  queue.push(std::make_unique<int>(1));
  queue.push(std::make_unique<int>(2));
}

TEST(MpscQueueTest, MultiProducerDeliversEverything) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  MpscQueue<int> queue;

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        queue.push(p * kPerProducer + i);
      }
    });
  }

  std::set<int> seen;
  int last_per_producer[kProducers];
  for (int& v : last_per_producer) {
    v = -1;
  }
  while (seen.size() < static_cast<std::size_t>(kProducers * kPerProducer)) {
    const auto value = queue.pop();
    if (!value.has_value()) {
      std::this_thread::yield();
      continue;
    }
    EXPECT_TRUE(seen.insert(*value).second) << "duplicate " << *value;
    // Per-producer FIFO: values from one producer arrive in push order.
    const int producer = *value / kPerProducer;
    const int seq = *value % kPerProducer;
    EXPECT_GT(seq, last_per_producer[producer]);
    last_per_producer[producer] = seq;
  }
  for (auto& thread : producers) {
    thread.join();
  }
  EXPECT_FALSE(queue.pop().has_value());
}

}  // namespace
}  // namespace dear::common
