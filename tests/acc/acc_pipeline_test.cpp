// The adaptive cruise-control chain: scenario-diversity proof for the
// descriptor API. Everything here runs through ServiceInterface
// descriptors + AppBuilder only — there is no handwritten service class in
// the entire chain — and must exhibit the same determinism guarantees as
// the brake assistant, over both transports.
#include "acc/pipeline.hpp"

#include <gtest/gtest.h>

#include "acc/logic.hpp"

namespace dear::acc {
namespace {

AccScenarioConfig small_scenario(std::uint64_t platform_seed, std::uint64_t radar_seed = 9000,
                                 std::uint64_t scans = 1000) {
  AccScenarioConfig config;
  config.scans = scans;
  config.platform_seed = platform_seed;
  config.radar_seed = radar_seed;
  return config;
}

TEST(AccLogicFunctions, DeterministicAndClamped) {
  const RadarScan scan = generate_scan(42, 123456);
  EXPECT_EQ(scan, generate_scan(42, 123456));
  const TrackList tracks = track_objects(scan);
  for (const Track& track : tracks.tracks) {
    EXPECT_GE(track.distance_m, 10.0);
  }
  const AccCommand fast = reference_command(42, 130.0);
  EXPECT_EQ(fast, reference_command(42, 130.0));
}

TEST(AccPipeline, ZeroErrorsEveryScanCommanded) {
  const auto result = run_acc_pipeline(small_scenario(1));
  EXPECT_EQ(result.scans_sent, 1000u);
  EXPECT_EQ(result.commands, 1000u) << "every scan must reach the actuator";
  EXPECT_EQ(result.wrong_commands, 0u);
  EXPECT_EQ(result.deadline_violations, 0u);
  EXPECT_EQ(result.tardy_messages, 0u);
  EXPECT_EQ(result.untagged_messages, 0u);
  EXPECT_EQ(result.remote_errors, 0u) << "field get/set calls must all succeed";
  EXPECT_GT(result.brake_interventions, 0u);  // the workload includes cut-ins
  EXPECT_LT(result.brake_interventions, result.commands);
}

TEST(AccPipeline, FieldTrafficFlowsThroughTheDescriptors) {
  // ~50 s horizon: the console polls every 500 ms and steps the set-point
  // every 2 s, all through the target_speed field's methods and event.
  const auto result = run_acc_pipeline(small_scenario(1));
  EXPECT_GT(result.field_gets, 50u);
  EXPECT_GT(result.field_sets, 10u);
  // Every accepted set produces a change notification.
  EXPECT_EQ(result.field_notifies, result.field_sets);
  EXPECT_NE(result.console_digest, 0u);
}

TEST(AccPipeline, DeterministicAcrossPlatformTiming) {
  // Same radar input, different platform timing — identical observable
  // behavior including logical tags and the console's field observations.
  const auto reference = run_acc_pipeline(small_scenario(1, 9000));
  for (std::uint64_t platform_seed = 2; platform_seed <= 5; ++platform_seed) {
    const auto result = run_acc_pipeline(small_scenario(platform_seed, 9000));
    EXPECT_EQ(result.output_digest, reference.output_digest)
        << "platform seed " << platform_seed << " changed observable behavior";
    EXPECT_EQ(result.tag_digest, reference.tag_digest)
        << "platform seed " << platform_seed << " changed logical tags";
    EXPECT_EQ(result.console_digest, reference.console_digest)
        << "platform seed " << platform_seed << " changed the field traffic";
    EXPECT_EQ(result.commands, reference.commands);
  }
}

TEST(AccPipeline, LocalTransportMatchesSomeIpObservableBehavior) {
  // Transport choice is a deployment decision: the descriptor-built chain
  // produces bit-identical outputs and logical tags whether it runs over
  // SOME/IP or through process memory.
  const auto someip = run_acc_pipeline(small_scenario(1, 9000));
  auto local_config = small_scenario(1, 9000);
  local_config.local_transport = true;
  const auto local = run_acc_pipeline(local_config);
  EXPECT_EQ(local.output_digest, someip.output_digest);
  EXPECT_EQ(local.tag_digest, someip.tag_digest);
  EXPECT_EQ(local.console_digest, someip.console_digest);
  EXPECT_EQ(local.commands, someip.commands);
  EXPECT_EQ(local.total_errors(), 0u);
}

TEST(AccPipeline, LocalTransportIsDeterministicAcrossPlatformTiming) {
  auto reference_config = small_scenario(1, 9000);
  reference_config.local_transport = true;
  const auto reference = run_acc_pipeline(reference_config);
  for (std::uint64_t platform_seed = 2; platform_seed <= 4; ++platform_seed) {
    auto config = small_scenario(platform_seed, 9000);
    config.local_transport = true;
    const auto result = run_acc_pipeline(config);
    EXPECT_EQ(result.output_digest, reference.output_digest);
    EXPECT_EQ(result.tag_digest, reference.tag_digest);
    EXPECT_EQ(result.console_digest, reference.console_digest);
  }
}

TEST(AccPipeline, TightDeadlinesProduceObservableErrors) {
  auto config = small_scenario(1);
  config.deadline_scale = 0.2;  // tracker deadline 4 ms < its 4-15 ms cost
  const auto result = run_acc_pipeline(config);
  EXPECT_GT(result.deadline_violations, 0u);
  EXPECT_LT(result.commands, result.scans_sent);
}

TEST(AccPipeline, ErrorsRemainDeterministicUnderSameSeeds) {
  auto config = small_scenario(9);
  config.deadline_scale = 0.2;
  const auto a = run_acc_pipeline(config);
  const auto b = run_acc_pipeline(config);
  EXPECT_EQ(a.deadline_violations, b.deadline_violations);
  EXPECT_EQ(a.output_digest, b.output_digest);
  EXPECT_EQ(a.commands, b.commands);
}

}  // namespace
}  // namespace dear::acc
