// Allocation-count regression tests for the hot paths.
//
// This binary replaces global operator new/delete with counting wrappers.
// Each test warms a workload until its pools and retained capacities reach
// steady state, then asserts that continuing the workload performs ZERO
// system allocations: per scheduler event (pooled event queue + value pool
// + reused staging buffers) and per SOME/IP message round trip (recycled
// wire buffer + scratch message). These are the two guarantees the
// hot-path overhaul makes; any future per-event allocation regresses them
// loudly here rather than silently in a profile.
//
// The ShelfLock tests guard the concurrency half of the pooling story:
// SmallBlockPool and BufferPool serve their steady state entirely from
// per-thread magazines, so the global-shelf spinlocks (counted by
// shelf_lock_count()) are touched only while a thread warms up or drains —
// never per allocation. A campaign worker's scenarios and the threaded
// scheduler's event stream must both show ZERO marginal shelf locks.
//
// The allocation-count tests are single-threaded: the counter observes
// only the workload between the snapshots.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <thread>
#include <vector>

#include "ara/com/local_binding.hpp"
#include "common/buffer_pool.hpp"
#include "common/pool_allocator.hpp"
#include "common/thread_pool.hpp"
#include "obs/obs.hpp"
#include "reactor/runtime.hpp"
#include "../reactor/reactor_fixture.hpp"
#include "scenario/presets.hpp"
#include "scenario/runner.hpp"
#include "scenario/workloads.hpp"
#include "someip/message.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* pointer = std::malloc(size == 0 ? 1 : size);
  if (pointer == nullptr) {
    throw std::bad_alloc();
  }
  return pointer;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* pointer) noexcept { std::free(pointer); }
void operator delete[](void* pointer) noexcept { std::free(pointer); }
void operator delete(void* pointer, std::size_t) noexcept { std::free(pointer); }
void operator delete[](void* pointer, std::size_t) noexcept { std::free(pointer); }

namespace dear {
namespace {

using namespace dear::reactor;

/// Self-rescheduling logical-action loop — the distilled scheduler hot
/// path (schedule -> enqueue -> pop -> setup -> execute -> cleanup).
class Looper final : public Reactor {
 public:
  Looper(Environment& env) : Reactor("looper", env) {
    add_reaction("kick", [this] { action_.schedule(Empty{}); }).triggered_by(startup_);
    add_reaction("tick",
                 [this] {
                   ++ticks;
                   action_.schedule(Empty{}, 1);
                 })
        .triggered_by(action_);
  }

  std::uint64_t ticks{0};

 private:
  StartupTrigger startup_{"startup", this};
  LogicalAction<Empty> action_{"tick", this};
};

TEST(AllocCount, SchedulerSteadyStateIsAllocationFree) {
  sim::Kernel kernel;
  SimClock clock(kernel);
  Environment env(clock);
  Looper looper(env);
  env.assemble();
  env.scheduler().start_at(Tag{0, 0});

  const auto process_tags = [&](std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto result = env.scheduler().process_next_tag(kTimeMax);
      ASSERT_TRUE(result.has_value());
    }
  };

  process_tags(2000);  // warm: pools, heap capacity, staging buffers
  const std::uint64_t before_ticks = looper.ticks;
  const std::uint64_t before = allocation_count();
  process_tags(1000);
  const std::uint64_t after = allocation_count();
  EXPECT_EQ(after - before, 0u)
      << "scheduler loop allocated " << (after - before) << " times over "
      << (looper.ticks - before_ticks) << " events";
  EXPECT_EQ(looper.ticks - before_ticks, 1000u);
}

TEST(AllocCount, SomeIpRoundTripIsAllocationFree) {
  someip::Message message;
  message.service = 0x1234;
  message.method = 0x8001;
  message.client = 0x01;
  message.session = 0x42;
  message.type = someip::MessageType::kNotification;
  message.payload.assign(256, 0xAB);
  message.tag = someip::WireTag{123'456'789, 2};

  std::vector<std::uint8_t> wire;
  someip::Message scratch;
  const auto round_trip = [&] {
    message.encode_into(wire);
    ASSERT_TRUE(someip::Message::decode_into(wire.data(), wire.size(), scratch));
    ASSERT_EQ(scratch.payload.size(), message.payload.size());
  };

  for (int i = 0; i < 16; ++i) {
    round_trip();  // warm: wire buffer + scratch payload capacity
  }
  const std::uint64_t before = allocation_count();
  for (int i = 0; i < 1000; ++i) {
    round_trip();
  }
  const std::uint64_t after = allocation_count();
  EXPECT_EQ(after - before, 0u)
      << "SOME/IP round trip allocated " << (after - before) << " times over 1000 messages";
}

TEST(AllocCount, ValuePoolRecyclesEventValues) {
  // One warm allocate/release primes the size class...
  make_immutable_value<std::int64_t>(0).reset();
  const std::uint64_t before = allocation_count();
  for (std::int64_t i = 0; i < 1000; ++i) {
    // ...then every schedule-shaped allocate/release pair hits the free
    // list instead of the system allocator.
    ImmutableValuePtr<std::int64_t> value = make_immutable_value<std::int64_t>(i);
    ASSERT_EQ(*value, i);
    value.reset();
  }
  EXPECT_EQ(allocation_count() - before, 0u);
}

std::uint64_t shelf_locks() {
  return common::SmallBlockPool::instance().shelf_lock_count() +
         common::BufferPool::instance().shelf_lock_count();
}

TEST(ShelfLocks, CampaignWorkerSteadyStateTakesNoShelfLocks) {
  // A campaign worker is a thread running independent DES scenarios back
  // to back. Its first scenario warms the thread-local magazines; every
  // later one must recycle through them without a single global-shelf
  // lock — the per-worker scratch arena the batch runner relies on.
  const auto campaign = scenario::presets::throughput(12, 60, 1);
  const std::vector<scenario::ScenarioSpec> scenarios = campaign.expand();
  std::uint64_t steady_locks = 0;
  std::thread worker([&] {
    (void)scenario::run_scenario(scenarios[0]);  // warm this thread's magazines
    (void)scenario::run_scenario(scenarios[1]);
    const std::uint64_t before = shelf_locks();
    for (std::size_t i = 2; i < scenarios.size(); ++i) {
      (void)scenario::run_scenario(scenarios[i]);
    }
    steady_locks = shelf_locks() - before;
  });
  worker.join();
  EXPECT_EQ(steady_locks, 0u) << "steady-state scenarios reached the global shelves "
                              << steady_locks << " times";
}

TEST(ShelfLocks, TwoWorkerCampaignShelfLocksStayFlat) {
  // Whole 2-worker campaigns: total shelf traffic is a constant per worker
  // (magazine warmup + exit drain), independent of how many scenarios the
  // campaign runs. 24 extra scenarios — millions of pooled allocations —
  // must not add a single marginal lock beyond that per-thread budget.
  const auto run_campaign = [](std::uint64_t scenario_count) {
    scenario::RunnerOptions options;
    options.workers = 2;
    const auto report =
        scenario::CampaignRunner(options).run(scenario::presets::throughput(scenario_count, 60, 1));
    ASSERT_TRUE(report.invariants_ok());
  };
  run_campaign(8);  // warm the global shelves themselves
  const std::uint64_t before_small = shelf_locks();
  run_campaign(8);
  const std::uint64_t small_delta = shelf_locks() - before_small;
  const std::uint64_t before_large = shelf_locks();
  run_campaign(32);
  const std::uint64_t large_delta = shelf_locks() - before_large;
  // Equal thread count -> equal warm/drain budget; allow one worker's
  // warm+drain of slack for scheduling skew (a worker that never claimed
  // a scenario in the small run touches nothing).
  constexpr std::uint64_t kPerWorkerBudget = 24;
  EXPECT_LE(large_delta, small_delta + kPerWorkerBudget)
      << "shelf locks grew with scenario count: " << small_delta << " -> " << large_delta;
  EXPECT_LE(large_delta, 2 * kPerWorkerBudget + 8)
      << "2-worker campaign took " << large_delta << " shelf locks";
}

TEST(ShelfLocks, ThreadedSchedulerSteadyStateTakesNoShelfLocks) {
  // Threaded fan-out with a 2-worker pool: all pooled traffic (action
  // values, port values) allocates and frees on the orchestrating thread,
  // whose magazines reach steady state during the warm run; the pool
  // workers execute sink reactions that allocate nothing. Quadrupling the
  // event count must add zero shelf locks.
  using namespace dear::reactor;
  const auto run_fanout = [](std::int64_t events) {
    RealClock clock;
    Environment::Config config;
    config.workers = 2;
    Environment env(clock, config);
    // delay 1: distinct tag times per event (the conformance tests cover
    // the microstep-packed delay-0 loop).
    reactor::testing::LoopSource source(env, events, 1);
    std::vector<std::unique_ptr<reactor::testing::LoopSink>> sinks;
    for (int i = 0; i < 8; ++i) {
      sinks.push_back(
          std::make_unique<reactor::testing::LoopSink>(env, "sink" + std::to_string(i)));
      env.connect(source.out, sinks.back()->in);
    }
    env.run();
  };
  run_fanout(400);  // warm the orchestrator's magazines
  const std::uint64_t before_small = shelf_locks();
  run_fanout(400);
  const std::uint64_t small_delta = shelf_locks() - before_small;
  const std::uint64_t before_large = shelf_locks();
  run_fanout(1600);
  const std::uint64_t large_delta = shelf_locks() - before_large;
  EXPECT_EQ(large_delta, small_delta)
      << "threaded scheduler shelf locks grew with event count: " << small_delta << " -> "
      << large_delta;
  EXPECT_EQ(small_delta, 0u) << "warm threaded run still took " << small_delta
                             << " shelf locks";
}

/// Restores the at-rest obs configuration when a test scope exits, so
/// the enabled-path tests below cannot leak state into each other.
struct ObsStateGuard {
  ~ObsStateGuard() {
    obs::Registry::instance().set_metrics_enabled(false);
    obs::Registry::instance().set_span_mask(0);
    obs::Registry::instance().set_ring_capacity(obs::Registry::kDefaultRingCapacity);
    obs::Registry::instance().reset();
  }
};

TEST(AllocCount, MetricOpsAreAllocationFreeOnceWarm) {
  // The PR 8 enabled-path contract: after the thread's cell cache exists,
  // a counter increment, gauge update, or histogram observe is a relaxed
  // load + store into this thread's own cache line — zero allocations,
  // zero shelf locks.
  ObsStateGuard guard;
  obs::Registry::instance().set_metrics_enabled(true);
  obs::count(obs::Counter::kSimEventsProcessed);  // warm: creates the cache
  const std::uint64_t locks_before = shelf_locks();
  const std::uint64_t before = allocation_count();
  for (int i = 0; i < 10'000; ++i) {
    obs::count(obs::Counter::kSimEventsProcessed);
    obs::gauge_max(obs::Gauge::kSchedQueueDepthPeak, static_cast<std::uint64_t>(i));
    obs::observe(obs::Hist::kSchedLevelWidth, static_cast<double>(i % 64));
  }
  const std::uint64_t after = allocation_count();
  EXPECT_EQ(after - before, 0u)
      << "metric ops allocated " << (after - before) << " times over 30000 records";
  EXPECT_EQ(shelf_locks() - locks_before, 0u);
  EXPECT_GE(obs::Registry::instance().counter_total(obs::Counter::kSimEventsProcessed), 10'001u);
}

TEST(AllocCount, SpanRecordingIsAllocationFreeOnceWarm) {
  // Span rings size lazily on the first record and intern each distinct
  // name once; after that a record is a clock pair plus a slot write.
  ObsStateGuard guard;
  obs::Registry::instance().set_ring_capacity(256);
  obs::Registry::instance().set_span_mask(obs::kAllSpansMask);
  { obs::SpanScope warm(obs::SpanCategory::kScenario, "alloc-test-span"); }
  const std::uint64_t before = allocation_count();
  for (int i = 0; i < 2'000; ++i) {
    obs::SpanScope span(obs::SpanCategory::kScenario, "alloc-test-span", i, 0, 1, 7);
  }
  const std::uint64_t after = allocation_count();
  EXPECT_EQ(after - before, 0u)
      << "span recording allocated " << (after - before) << " times over 2000 spans";
  EXPECT_EQ(obs::Registry::instance().snapshot().spans_recorded, 2'001u);
}

TEST(AllocCount, InstrumentedSchedulerSteadyStateIsAllocationFree) {
  // The scheduler hot loop with live metrics: the gated per-tag blocks
  // (queue-depth gauge, level-width observe + histogram, levels-run
  // counter) must stay inside the zero-allocation steady state the
  // uninstrumented loop already guarantees.
  ObsStateGuard guard;
  obs::Registry::instance().set_metrics_enabled(true);
  sim::Kernel kernel;
  SimClock clock(kernel);
  Environment env(clock);
  Looper looper(env);
  env.assemble();
  env.scheduler().start_at(Tag{0, 0});

  const auto process_tags = [&](std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto result = env.scheduler().process_next_tag(kTimeMax);
      ASSERT_TRUE(result.has_value());
    }
  };

  process_tags(2000);  // warm: pools, heap capacity, obs thread cache
  const std::uint64_t locks_before = shelf_locks();
  const std::uint64_t before = allocation_count();
  process_tags(1000);
  const std::uint64_t after = allocation_count();
  EXPECT_EQ(after - before, 0u) << "instrumented scheduler loop allocated " << (after - before)
                                << " times over 1000 events";
  EXPECT_EQ(shelf_locks() - locks_before, 0u);
  EXPECT_GT(obs::Registry::instance().counter_total(obs::Counter::kSchedLevelsRun), 0u);
}

TEST(AllocCount, LoanedFrameRoundTripLocalIsAllocationAndCopyFree) {
  // The sensor data plane's core claim, enforced at the allocator: a
  // steady-state 1 MiB loaned frame through the local backend — loan,
  // stamp, publish, notify_loaned, subscriber delivery, slab release —
  // performs ZERO system allocations and ZERO payload memcpys. Slabs
  // recycle through the shelf, notification messages move the refcounted
  // handle, and the binding's inbox nodes come from SmallBlockPool.
  common::ThreadPoolExecutor executor(1);  // timeout synthesis only (idle here)
  {
    ara::com::LocalHub hub;
    ara::com::LocalBinding server(hub, executor, {1, 100}, 0x01);
    ara::com::LocalBinding client(hub, executor, {2, 200}, 0x02);

    // Handler capture must fit std::function's inline storage — the
    // dispatch path copies the handler per delivery.
    static std::uint64_t frames_seen;
    static std::uint64_t bytes_seen;
    frames_seen = 0;
    bytes_seen = 0;
    client.subscribe({1, 100}, 0x0D0E, 0x8001, [](const someip::Message& message) {
      ++frames_seen;
      bytes_seen += message.loaned.size();
    });

    const auto send_frame = [&](std::uint64_t index) {
      common::LoanedBuffer frame = common::BufferPool::instance().loan(1024 * 1024);
      frame.data()[0] = static_cast<std::uint8_t>(index & 0xFFu);
      frame.publish(1024 * 1024);
      server.notify_loaned(0x0D0E, 0x8001, std::move(frame));
    };

    for (std::uint64_t i = 0; i < 16; ++i) {
      send_frame(i);  // warm: slab shelf, inbox node pool, handler copy
    }
    const std::uint64_t copies_before =
        obs::Registry::instance().counter_total(obs::Counter::kDataplanePayloadCopies);
    const std::uint64_t slab_allocs_before =
        obs::Registry::instance().counter_total(obs::Counter::kPoolSlabAllocs);
    const std::uint64_t before = allocation_count();
    for (std::uint64_t i = 0; i < 100; ++i) {
      send_frame(16 + i);
    }
    const std::uint64_t after = allocation_count();
    EXPECT_EQ(after - before, 0u) << "loaned frame round trip allocated " << (after - before)
                                  << " times over 100 frames";
    EXPECT_EQ(obs::Registry::instance().counter_total(obs::Counter::kDataplanePayloadCopies) -
                  copies_before,
              0u);
    EXPECT_EQ(obs::Registry::instance().counter_total(obs::Counter::kPoolSlabAllocs) -
                  slab_allocs_before,
              0u);
    EXPECT_EQ(frames_seen, 116u);
    EXPECT_EQ(bytes_seen, 116u * 1024u * 1024u);
  }
  executor.drain();
}

TEST(AllocCount, BufferPoolRecyclesWireBuffers) {
  {
    std::vector<std::uint8_t> warm = common::BufferPool::instance().acquire(4096);
    warm.resize(4096);
    common::BufferPool::instance().release(std::move(warm));
  }
  const std::uint64_t before = allocation_count();
  for (int i = 0; i < 1000; ++i) {
    std::vector<std::uint8_t> buffer = common::BufferPool::instance().acquire(1024);
    EXPECT_GE(buffer.capacity(), 1024u);
    buffer.resize(512);
    common::BufferPool::instance().release(std::move(buffer));
  }
  EXPECT_EQ(allocation_count() - before, 0u);
}

}  // namespace
}  // namespace dear
