// Allocation-count regression tests for the hot paths.
//
// This binary replaces global operator new/delete with counting wrappers.
// Each test warms a workload until its pools and retained capacities reach
// steady state, then asserts that continuing the workload performs ZERO
// system allocations: per scheduler event (pooled event queue + value pool
// + reused staging buffers) and per SOME/IP message round trip (recycled
// wire buffer + scratch message). These are the two guarantees the
// hot-path overhaul makes; any future per-event allocation regresses them
// loudly here rather than silently in a profile.
//
// All tests are single-threaded: the counter observes only the workload
// between the snapshots.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/buffer_pool.hpp"
#include "reactor/runtime.hpp"
#include "someip/message.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* pointer = std::malloc(size == 0 ? 1 : size);
  if (pointer == nullptr) {
    throw std::bad_alloc();
  }
  return pointer;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* pointer) noexcept { std::free(pointer); }
void operator delete[](void* pointer) noexcept { std::free(pointer); }
void operator delete(void* pointer, std::size_t) noexcept { std::free(pointer); }
void operator delete[](void* pointer, std::size_t) noexcept { std::free(pointer); }

namespace dear {
namespace {

using namespace dear::reactor;

/// Self-rescheduling logical-action loop — the distilled scheduler hot
/// path (schedule -> enqueue -> pop -> setup -> execute -> cleanup).
class Looper final : public Reactor {
 public:
  Looper(Environment& env) : Reactor("looper", env) {
    add_reaction("kick", [this] { action_.schedule(Empty{}); }).triggered_by(startup_);
    add_reaction("tick",
                 [this] {
                   ++ticks;
                   action_.schedule(Empty{}, 1);
                 })
        .triggered_by(action_);
  }

  std::uint64_t ticks{0};

 private:
  StartupTrigger startup_{"startup", this};
  LogicalAction<Empty> action_{"tick", this};
};

TEST(AllocCount, SchedulerSteadyStateIsAllocationFree) {
  sim::Kernel kernel;
  SimClock clock(kernel);
  Environment env(clock);
  Looper looper(env);
  env.assemble();
  env.scheduler().start_at(Tag{0, 0});

  const auto process_tags = [&](std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto result = env.scheduler().process_next_tag(kTimeMax);
      ASSERT_TRUE(result.has_value());
    }
  };

  process_tags(2000);  // warm: pools, heap capacity, staging buffers
  const std::uint64_t before_ticks = looper.ticks;
  const std::uint64_t before = allocation_count();
  process_tags(1000);
  const std::uint64_t after = allocation_count();
  EXPECT_EQ(after - before, 0u)
      << "scheduler loop allocated " << (after - before) << " times over "
      << (looper.ticks - before_ticks) << " events";
  EXPECT_EQ(looper.ticks - before_ticks, 1000u);
}

TEST(AllocCount, SomeIpRoundTripIsAllocationFree) {
  someip::Message message;
  message.service = 0x1234;
  message.method = 0x8001;
  message.client = 0x01;
  message.session = 0x42;
  message.type = someip::MessageType::kNotification;
  message.payload.assign(256, 0xAB);
  message.tag = someip::WireTag{123'456'789, 2};

  std::vector<std::uint8_t> wire;
  someip::Message scratch;
  const auto round_trip = [&] {
    message.encode_into(wire);
    ASSERT_TRUE(someip::Message::decode_into(wire.data(), wire.size(), scratch));
    ASSERT_EQ(scratch.payload.size(), message.payload.size());
  };

  for (int i = 0; i < 16; ++i) {
    round_trip();  // warm: wire buffer + scratch payload capacity
  }
  const std::uint64_t before = allocation_count();
  for (int i = 0; i < 1000; ++i) {
    round_trip();
  }
  const std::uint64_t after = allocation_count();
  EXPECT_EQ(after - before, 0u)
      << "SOME/IP round trip allocated " << (after - before) << " times over 1000 messages";
}

TEST(AllocCount, ValuePoolRecyclesEventValues) {
  // One warm allocate/release primes the size class...
  make_immutable_value<std::int64_t>(0).reset();
  const std::uint64_t before = allocation_count();
  for (std::int64_t i = 0; i < 1000; ++i) {
    // ...then every schedule-shaped allocate/release pair hits the free
    // list instead of the system allocator.
    ImmutableValuePtr<std::int64_t> value = make_immutable_value<std::int64_t>(i);
    ASSERT_EQ(*value, i);
    value.reset();
  }
  EXPECT_EQ(allocation_count() - before, 0u);
}

TEST(AllocCount, BufferPoolRecyclesWireBuffers) {
  {
    std::vector<std::uint8_t> warm = common::BufferPool::instance().acquire(4096);
    warm.resize(4096);
    common::BufferPool::instance().release(std::move(warm));
  }
  const std::uint64_t before = allocation_count();
  for (int i = 0; i < 1000; ++i) {
    std::vector<std::uint8_t> buffer = common::BufferPool::instance().acquire(1024);
    EXPECT_GE(buffer.capacity(), 1024u);
    buffer.resize(512);
    common::BufferPool::instance().release(std::move(buffer));
  }
  EXPECT_EQ(allocation_count() - before, 0u);
}

}  // namespace
}  // namespace dear
