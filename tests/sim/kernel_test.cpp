#include "sim/kernel.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dear::sim {
namespace {

using namespace dear::literals;

TEST(Kernel, ProcessesInTimeOrder) {
  Kernel kernel;
  std::vector<int> order;
  kernel.schedule_at(30, [&] { order.push_back(3); });
  kernel.schedule_at(10, [&] { order.push_back(1); });
  kernel.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(kernel.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(kernel.now(), 30);
}

TEST(Kernel, EqualTimesUseInsertionOrder) {
  Kernel kernel;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    kernel.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  kernel.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Kernel, PriorityBreaksTimeTies) {
  Kernel kernel;
  std::vector<int> order;
  kernel.schedule_at(5, [&] { order.push_back(2); }, 1);
  kernel.schedule_at(5, [&] { order.push_back(1); }, 0);
  kernel.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Kernel, PastTimesClampToNow) {
  Kernel kernel;
  kernel.schedule_at(100, [] {});
  kernel.run();
  EXPECT_EQ(kernel.now(), 100);
  TimePoint ran_at = 0;
  kernel.schedule_at(5, [&] { ran_at = kernel.now(); });
  kernel.run();
  EXPECT_EQ(ran_at, 100);  // not time travel
}

TEST(Kernel, ScheduleAfter) {
  Kernel kernel;
  kernel.schedule_at(50, [] {});
  kernel.run();
  TimePoint ran_at = 0;
  kernel.schedule_after(25, [&] { ran_at = kernel.now(); });
  kernel.run();
  EXPECT_EQ(ran_at, 75);
}

TEST(Kernel, NegativeDelayClampsToZero) {
  Kernel kernel;
  kernel.schedule_at(10, [] {});
  kernel.run();
  TimePoint ran_at = -1;
  kernel.schedule_after(-100, [&] { ran_at = kernel.now(); });
  kernel.run();
  EXPECT_EQ(ran_at, 10);
}

TEST(Kernel, CancelPreventsExecution) {
  Kernel kernel;
  bool ran = false;
  const EventId id = kernel.schedule_at(10, [&] { ran = true; });
  EXPECT_TRUE(kernel.cancel(id));
  EXPECT_FALSE(kernel.cancel(id));  // already cancelled
  kernel.run();
  EXPECT_FALSE(ran);
}

TEST(Kernel, CancelUnknownIdFails) {
  Kernel kernel;
  EXPECT_FALSE(kernel.cancel(12345));
}

TEST(Kernel, HandlersCanScheduleMoreEvents) {
  Kernel kernel;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) {
      kernel.schedule_after(10, chain);
    }
  };
  kernel.schedule_at(0, chain);
  kernel.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(kernel.now(), 40);
}

TEST(Kernel, RunUntilStopsAtHorizonAndAdvancesNow) {
  Kernel kernel;
  std::vector<TimePoint> fired;
  for (TimePoint t : {10, 20, 30, 40}) {
    kernel.schedule_at(t, [&fired, &kernel] { fired.push_back(kernel.now()); });
  }
  EXPECT_EQ(kernel.run_until(25), 2u);
  EXPECT_EQ(kernel.now(), 25);
  EXPECT_EQ(fired, (std::vector<TimePoint>{10, 20}));
  EXPECT_EQ(kernel.run_until(100), 2u);
  EXPECT_EQ(kernel.now(), 100);
}

TEST(Kernel, RunUntilIncludesEventsAtHorizon) {
  Kernel kernel;
  bool ran = false;
  kernel.schedule_at(50, [&] { ran = true; });
  kernel.run_until(50);
  EXPECT_TRUE(ran);
}

TEST(Kernel, StopHaltsRun) {
  Kernel kernel;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    kernel.schedule_at(i, [&] {
      if (++count == 3) {
        kernel.stop();
      }
    });
  }
  kernel.run();
  EXPECT_EQ(count, 3);
  EXPECT_TRUE(kernel.stopped());
  kernel.reset_stop();
  kernel.run();
  EXPECT_EQ(count, 10);
}

TEST(Kernel, StepProcessesOne) {
  Kernel kernel;
  int count = 0;
  kernel.schedule_at(1, [&] { ++count; });
  kernel.schedule_at(2, [&] { ++count; });
  EXPECT_TRUE(kernel.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(kernel.step());
  EXPECT_FALSE(kernel.step());
  EXPECT_EQ(count, 2);
}

TEST(Kernel, NextEventTimeAndEmpty) {
  Kernel kernel;
  EXPECT_TRUE(kernel.empty());
  EXPECT_EQ(kernel.next_event_time(), kTimeMax);
  const EventId id = kernel.schedule_at(42, [] {});
  EXPECT_EQ(kernel.next_event_time(), 42);
  EXPECT_FALSE(kernel.empty());
  kernel.cancel(id);
  EXPECT_TRUE(kernel.empty());
  EXPECT_EQ(kernel.next_event_time(), kTimeMax);
}

TEST(Kernel, CountsProcessedEvents) {
  Kernel kernel;
  for (int i = 0; i < 7; ++i) {
    kernel.schedule_after(i, [] {});
  }
  kernel.run();
  EXPECT_EQ(kernel.events_processed(), 7u);
  EXPECT_EQ(kernel.events_scheduled(), 7u);
}

}  // namespace
}  // namespace dear::sim
