#include "sim/clock_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dear::sim {
namespace {

using namespace dear::literals;

TEST(PlatformClock, IdentityByDefault) {
  const PlatformClock clock;
  EXPECT_EQ(clock.local_now(12345), 12345);
  EXPECT_EQ(clock.global_from_local(12345), 12345);
  EXPECT_EQ(clock.error_at(999), 0);
}

TEST(PlatformClock, OffsetOnly) {
  const PlatformClock clock(5_ms, 0.0);
  EXPECT_EQ(clock.local_now(0), 5_ms);
  EXPECT_EQ(clock.local_now(1_s), 1_s + 5_ms);
  EXPECT_EQ(clock.error_at(1_s), 5_ms);
}

TEST(PlatformClock, DriftAccumulates) {
  const PlatformClock clock(0, 100.0);  // +100 ppm
  // After one second of global time the clock is 100 us ahead.
  EXPECT_NEAR(static_cast<double>(clock.error_at(1_s)), 100e3, 5.0);
  EXPECT_NEAR(static_cast<double>(clock.error_at(10_s)), 1e6, 50.0);
}

TEST(PlatformClock, NegativeDrift) {
  const PlatformClock clock(0, -50.0);
  EXPECT_LT(clock.error_at(1_s), 0);
  EXPECT_NEAR(static_cast<double>(clock.error_at(1_s)), -50e3, 5.0);
}

class ClockRoundTripTest : public ::testing::TestWithParam<double> {};

TEST_P(ClockRoundTripTest, GlobalLocalInverse) {
  const PlatformClock clock(3_ms, GetParam());
  for (const TimePoint global : {TimePoint{0}, TimePoint{1_ms}, TimePoint{1_s}, TimePoint{100_s},
                                 TimePoint{3600_s}}) {
    const TimePoint local = clock.local_now(global);
    const TimePoint back = clock.global_from_local(local);
    EXPECT_NEAR(static_cast<double>(back), static_cast<double>(global), 2.0)
        << "drift=" << GetParam() << " global=" << global;
  }
}

INSTANTIATE_TEST_SUITE_P(Drifts, ClockRoundTripTest,
                         ::testing::Values(0.0, 10.0, -10.0, 100.0, -100.0, 500.0));

TEST(PlatformClock, ResyncReanchorsError) {
  PlatformClock clock(10_ms, 200.0);
  EXPECT_GT(clock.error_at(1_s), 10_ms);
  clock.resync(1_s, 100 * kMicrosecond);
  EXPECT_EQ(clock.error_at(1_s), 100 * kMicrosecond);
  // Drift keeps accumulating from the new anchor.
  EXPECT_GT(clock.error_at(2_s), 100 * kMicrosecond);
}

TEST(TimeSyncService, BoundsClockError) {
  Kernel kernel;
  PlatformClock clock(2_ms, 80.0);  // 2 ms initial offset, 80 ppm drift
  const Duration residual = 50 * kMicrosecond;
  const Duration period = 1_s;
  TimeSyncService sync(kernel, clock, period, residual, common::Rng(7));
  sync.start();
  kernel.run_until(60_s);
  sync.stop();
  EXPECT_GE(sync.resync_count(), 59u);
  // After the first resync the error must stay within the worst-case bound.
  const Duration bound = sync.worst_case_error();
  EXPECT_LE(std::llabs(clock.error_at(60_s)), bound);
  EXPECT_LE(bound, residual + 100 * kMicrosecond);
}

TEST(TimeSyncService, StopCancelsFutureResyncs) {
  Kernel kernel;
  PlatformClock clock(0, 0.0);
  TimeSyncService sync(kernel, clock, 10_ms, 1_ms, common::Rng(1));
  sync.start();
  kernel.run_until(35_ms);
  const auto count = sync.resync_count();
  EXPECT_EQ(count, 3u);
  sync.stop();
  kernel.run_until(100_ms);
  EXPECT_EQ(sync.resync_count(), count);
}

TEST(TimeSyncService, StartIsIdempotent) {
  Kernel kernel;
  PlatformClock clock(0, 0.0);
  TimeSyncService sync(kernel, clock, 10_ms, 1_ms, common::Rng(1));
  sync.start();
  sync.start();
  kernel.run_until(25_ms);
  EXPECT_EQ(sync.resync_count(), 2u);  // not doubled
}

}  // namespace
}  // namespace dear::sim
