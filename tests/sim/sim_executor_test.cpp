#include "sim/sim_executor.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dear::sim {
namespace {

using namespace dear::literals;

TEST(SimExecutor, JitterCanReorderPosts) {
  // With a wide jitter window, two back-to-back posts execute in an order
  // decided by the seeded draws — the modeled thread-scheduler race.
  bool reordered_seen = false;
  bool in_order_seen = false;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    Kernel kernel;
    SimExecutor executor(kernel, common::Rng(seed), ExecTimeModel::uniform(0, 1_ms));
    std::vector<int> order;
    executor.post([&] { order.push_back(1); });
    executor.post([&] { order.push_back(2); });
    kernel.run();
    ASSERT_EQ(order.size(), 2u);
    if (order[0] == 2) {
      reordered_seen = true;
    } else {
      in_order_seen = true;
    }
  }
  EXPECT_TRUE(reordered_seen);
  EXPECT_TRUE(in_order_seen);
}

TEST(SimExecutor, SameSeedSameSchedule) {
  for (int run = 0; run < 2; ++run) {
    static std::vector<int> first_order;
    Kernel kernel;
    SimExecutor executor(kernel, common::Rng(77), ExecTimeModel::uniform(0, 1_ms));
    std::vector<int> order;
    for (int i = 0; i < 20; ++i) {
      executor.post([&order, i] { order.push_back(i); });
    }
    kernel.run();
    if (run == 0) {
      first_order = order;
    } else {
      EXPECT_EQ(order, first_order);
    }
  }
}

TEST(SimExecutor, PostAfterAddsDelayPlusJitter) {
  Kernel kernel;
  SimExecutor executor(kernel, common::Rng(5), ExecTimeModel::uniform(0, 500_us));
  TimePoint ran_at = -1;
  executor.post_after(10_ms, [&] { ran_at = kernel.now(); });
  kernel.run();
  EXPECT_GE(ran_at, 10_ms);
  EXPECT_LE(ran_at, 10_ms + 500_us);
}

TEST(SimExecutor, NowTracksKernel) {
  Kernel kernel;
  SimExecutor executor(kernel, common::Rng(1));
  kernel.schedule_at(42_ms, [] {});
  kernel.run();
  EXPECT_EQ(executor.now(), 42_ms);
}

TEST(ImmediateSimExecutor, FifoAtCurrentTime) {
  Kernel kernel;
  ImmediateSimExecutor executor(kernel);
  std::vector<int> order;
  executor.post([&] { order.push_back(1); });
  executor.post([&] { order.push_back(2); });
  executor.post([&] { order.push_back(3); });
  kernel.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(kernel.now(), 0);
}

TEST(ImmediateSimExecutor, PostAfterExactDelay) {
  Kernel kernel;
  ImmediateSimExecutor executor(kernel);
  TimePoint ran_at = -1;
  executor.post_after(7_ms, [&] { ran_at = kernel.now(); });
  kernel.run();
  EXPECT_EQ(ran_at, 7_ms);
}

}  // namespace
}  // namespace dear::sim
