#include "sim/periodic_task.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dear::sim {
namespace {

using namespace dear::literals;

TEST(PeriodicTask, FiresOnNominalGrid) {
  Kernel kernel;
  PlatformClock clock;
  std::vector<TimePoint> releases;
  PeriodicTask task(kernel, clock, 10_ms, 3_ms,
                    [&](std::uint64_t, TimePoint t) { releases.push_back(t); });
  task.start();
  kernel.run_until(45_ms);
  task.stop();
  EXPECT_EQ(releases, (std::vector<TimePoint>{3_ms, 13_ms, 23_ms, 33_ms, 43_ms}));
  EXPECT_EQ(task.activations(), 5u);
}

TEST(PeriodicTask, IndicesAreSequential) {
  Kernel kernel;
  PlatformClock clock;
  std::vector<std::uint64_t> indices;
  PeriodicTask task(kernel, clock, 5_ms, 0,
                    [&](std::uint64_t index, TimePoint) { indices.push_back(index); });
  task.start();
  kernel.run_until(22_ms);
  ASSERT_EQ(indices.size(), 5u);
  for (std::uint64_t i = 0; i < indices.size(); ++i) {
    EXPECT_EQ(indices[i], i);
  }
}

TEST(PeriodicTask, JitterDelaysButDoesNotAccumulate) {
  Kernel kernel;
  PlatformClock clock;
  std::vector<TimePoint> releases;
  PeriodicTask task(kernel, clock, 10_ms, 0,
                    [&](std::uint64_t, TimePoint t) { releases.push_back(t); });
  task.set_jitter(ExecTimeModel::uniform(0, 2_ms), common::Rng(3));
  task.start();
  kernel.run_until(100_ms);
  task.stop();
  ASSERT_GE(releases.size(), 9u);
  for (std::size_t k = 0; k < releases.size(); ++k) {
    const TimePoint nominal = static_cast<TimePoint>(k) * 10_ms;
    EXPECT_GE(releases[k], nominal);
    EXPECT_LE(releases[k], nominal + 2_ms);  // jitter never accumulates
  }
}

TEST(PeriodicTask, ClockDriftShiftsGlobalReleases) {
  Kernel kernel;
  // A clock running 1000 ppm fast reaches local time t earlier in global
  // time, so the task fires earlier and earlier relative to the nominal grid.
  PlatformClock fast_clock(0, 1000.0);
  std::vector<TimePoint> releases;
  PeriodicTask task(kernel, fast_clock, 10_ms, 0,
                    [&](std::uint64_t, TimePoint t) { releases.push_back(t); });
  task.start();
  kernel.run_until(1_s);
  task.stop();
  ASSERT_GT(releases.size(), 90u);
  const TimePoint last = releases.back();
  const auto k = static_cast<TimePoint>(releases.size() - 1);
  const TimePoint nominal = k * 10_ms;
  // ~1000 ppm early: about 1 us per ms of elapsed time.
  EXPECT_LT(last, nominal);
  EXPECT_NEAR(static_cast<double>(nominal - last), 1e-3 * static_cast<double>(nominal), 1e4);
}

TEST(PeriodicTask, StopPreventsFurtherActivations) {
  Kernel kernel;
  PlatformClock clock;
  int count = 0;
  PeriodicTask task(kernel, clock, 10_ms, 0, [&](std::uint64_t, TimePoint) { ++count; });
  task.start();
  kernel.run_until(25_ms);
  task.stop();
  kernel.run_until(200_ms);
  EXPECT_EQ(count, 3);  // t = 0, 10, 20
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTask, RestartSkipsMissedGridPoints) {
  Kernel kernel;
  PlatformClock clock;
  std::vector<std::uint64_t> indices;
  std::vector<TimePoint> releases;
  PeriodicTask task(kernel, clock, 10_ms, 0, [&](std::uint64_t index, TimePoint t) {
    indices.push_back(index);
    releases.push_back(t);
  });
  task.start();
  kernel.run_until(15_ms);
  task.stop();
  task.start();
  kernel.run_until(35_ms);
  task.stop();
  // First run: indices 0, 1 at t = 0, 10 ms. The restart at 15 ms stays on
  // the same local grid; activations 0 and 1 are missed, never burst-fired.
  ASSERT_EQ(indices.size(), 4u);
  EXPECT_EQ(indices, (std::vector<std::uint64_t>{0, 1, 2, 3}));
  EXPECT_EQ(releases, (std::vector<TimePoint>{0, 10_ms, 20_ms, 30_ms}));
}

TEST(PeriodicTask, PastPhaseOnAheadClockIsSkippedNotBurstFired) {
  Kernel kernel;
  // Local clock 45 ms ahead of global time: the local grid points 3, 13,
  // 23, 33, 43 ms are already past at global t=0; the first *future* one
  // is 53 ms local = 8 ms global.
  PlatformClock ahead(45_ms, 0.0);
  std::vector<TimePoint> releases;
  std::vector<std::uint64_t> indices;
  PeriodicTask task(kernel, ahead, 10_ms, 3_ms, [&](std::uint64_t index, TimePoint t) {
    indices.push_back(index);
    releases.push_back(t);
  });
  task.start();
  kernel.run_until(30_ms);
  task.stop();
  ASSERT_EQ(releases.size(), 3u);
  EXPECT_EQ(releases, (std::vector<TimePoint>{8_ms, 18_ms, 28_ms}));
  EXPECT_EQ(indices, (std::vector<std::uint64_t>{5, 6, 7}));
}

}  // namespace
}  // namespace dear::sim
