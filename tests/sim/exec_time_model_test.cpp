#include "sim/exec_time_model.hpp"

#include <gtest/gtest.h>

namespace dear::sim {
namespace {

using namespace dear::literals;

TEST(ExecTimeModel, ConstantAlwaysSame) {
  const auto model = ExecTimeModel::constant(3_ms);
  common::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(model.sample(rng), 3_ms);
  }
  EXPECT_EQ(model.upper_bound(), 3_ms);
  EXPECT_EQ(model.lower_bound(), 3_ms);
}

TEST(ExecTimeModel, UniformWithinBounds) {
  const auto model = ExecTimeModel::uniform(1_ms, 2_ms);
  common::Rng rng(2);
  Duration min = kTimeMax;
  Duration max = 0;
  for (int i = 0; i < 5000; ++i) {
    const Duration d = model.sample(rng);
    EXPECT_GE(d, 1_ms);
    EXPECT_LE(d, 2_ms);
    min = std::min(min, d);
    max = std::max(max, d);
  }
  // The distribution actually covers the range.
  EXPECT_LT(min, 1_ms + 100_us);
  EXPECT_GT(max, 2_ms - 100_us);
  EXPECT_EQ(model.upper_bound(), 2_ms);
}

TEST(ExecTimeModel, NormalClamped) {
  const auto model = ExecTimeModel::normal(10_ms, 5_ms, 8_ms, 12_ms);
  common::Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const Duration d = model.sample(rng);
    EXPECT_GE(d, 8_ms);
    EXPECT_LE(d, 12_ms);
  }
  EXPECT_EQ(model.upper_bound(), 12_ms);
  EXPECT_EQ(model.lower_bound(), 8_ms);
}

TEST(ExecTimeModel, NormalMeanApproximate) {
  const auto model = ExecTimeModel::normal(10_ms, 1_ms, 0, 20_ms);
  common::Rng rng(4);
  double sum = 0.0;
  constexpr int kSamples = 20'000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(model.sample(rng));
  }
  EXPECT_NEAR(sum / kSamples, static_cast<double>(10_ms), static_cast<double>(100_us));
}

TEST(ExecTimeModel, TailRespectsUpperBound) {
  const auto model =
      ExecTimeModel::normal_with_tail(5_ms, 1_ms, 3_ms, 7_ms, 0.1, 10_ms);
  common::Rng rng(5);
  bool tail_seen = false;
  for (int i = 0; i < 20'000; ++i) {
    const Duration d = model.sample(rng);
    EXPECT_GE(d, 3_ms);
    EXPECT_LE(d, model.upper_bound());
    if (d > 7_ms) {
      tail_seen = true;
    }
  }
  EXPECT_TRUE(tail_seen);
  EXPECT_EQ(model.upper_bound(), 17_ms);
}

TEST(ExecTimeModel, TailProbabilityRoughlyMatches) {
  const auto model = ExecTimeModel::normal_with_tail(5_ms, 100_us, 5_ms, 5_ms, 0.2, 1_ms);
  common::Rng rng(6);
  int tail_hits = 0;
  constexpr int kSamples = 50'000;
  for (int i = 0; i < kSamples; ++i) {
    if (model.sample(rng) > 5_ms) {
      ++tail_hits;
    }
  }
  // P(tail and extra > 0) = 0.2 * (1 - 1/bound) ~= 0.2.
  EXPECT_NEAR(static_cast<double>(tail_hits) / kSamples, 0.2, 0.02);
}

TEST(ExecTimeModel, ScaledScalesEverything) {
  const auto model = ExecTimeModel::uniform(2_ms, 4_ms).scaled(2.0);
  common::Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const Duration d = model.sample(rng);
    EXPECT_GE(d, 4_ms);
    EXPECT_LE(d, 8_ms);
  }
  EXPECT_EQ(model.upper_bound(), 8_ms);
  EXPECT_EQ(model.lower_bound(), 4_ms);
}

TEST(ExecTimeModel, ScaledDownToZero) {
  const auto model = ExecTimeModel::constant(5_ms).scaled(0.0);
  common::Rng rng(8);
  EXPECT_EQ(model.sample(rng), 0);
  EXPECT_EQ(model.upper_bound(), 0);
}

TEST(ExecTimeModel, SamplingIsSeedDeterministic) {
  const auto model = ExecTimeModel::normal(10_ms, 2_ms, 5_ms, 15_ms);
  common::Rng a(42);
  common::Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(model.sample(a), model.sample(b));
  }
}

}  // namespace
}  // namespace dear::sim
