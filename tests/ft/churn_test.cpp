// Subscription churn: repeated unsubscribe/resubscribe of a pipeline
// event subscription while the run is live, on both bindings. Churn
// windows are physical, so churn scenarios leave the campaign's
// digest-invariance groups — the checkable claims are per-config
// reproducibility (same spec, same digests) and worker-count invariance
// of the campaign report.
#include <gtest/gtest.h>

#include "acc/pipeline.hpp"
#include "brake/dear_pipeline.hpp"
#include "scenario/runner.hpp"

namespace dear {
namespace {

using namespace dear::literals;

struct FtChurn : ::testing::Test {};

acc::AccScenarioConfig acc_config(bool local_transport) {
  acc::AccScenarioConfig config;
  config.scans = 40;
  config.radar_seed = 11;
  config.platform_seed = 12;
  config.local_transport = local_transport;
  config.service_faults.churn_period = 200_ms;
  return config;
}

brake::DearScenarioConfig brake_config(bool local_transport) {
  brake::DearScenarioConfig config;
  config.frames = 40;
  config.camera_seed = 21;
  config.platform_seed = 22;
  config.local_transport = local_transport;
  config.service_faults.churn_period = 200_ms;
  return config;
}

TEST_F(FtChurn, AccChurnIsReproduciblePerConfigOnBothBindings) {
  for (const bool local : {false, true}) {
    const acc::AccResult first = acc::run_acc_pipeline(acc_config(local));
    const acc::AccResult again = acc::run_acc_pipeline(acc_config(local));
    EXPECT_EQ(first.output_digest, again.output_digest) << "local=" << local;
    EXPECT_EQ(first.tag_digest, again.tag_digest) << "local=" << local;
    EXPECT_EQ(first.commands, again.commands) << "local=" << local;
    EXPECT_GT(first.commands, 0u) << "local=" << local;
  }
}

TEST_F(FtChurn, BrakeChurnIsReproduciblePerConfigOnBothBindings) {
  for (const bool local : {false, true}) {
    const brake::PipelineResult first = brake::run_dear_pipeline(brake_config(local));
    const brake::PipelineResult again = brake::run_dear_pipeline(brake_config(local));
    EXPECT_EQ(first.output_digest, again.output_digest) << "local=" << local;
    EXPECT_EQ(first.tag_digest, again.tag_digest) << "local=" << local;
  }
}

TEST_F(FtChurn, ChurnScenariosLeaveTheDeterminismGroups) {
  scenario::ScenarioSpec spec;
  spec.workload = scenario::Workload::kBrakeDear;
  EXPECT_TRUE(spec.expect_deterministic());
  spec.service_faults.churn_period = 200_ms;
  EXPECT_FALSE(spec.expect_deterministic())
      << "churn windows are physical: no digest-invariance claim";
}

TEST_F(FtChurn, CampaignReportDigestIsWorkerCountInvariant) {
  // Both workloads x both transports under churn, swept at 1/2/4 workers:
  // every scenario is an independent single-threaded DES run, so the
  // report digest must not move even though the scenarios themselves are
  // outside the digest-invariance groups.
  scenario::CampaignSpec campaign;
  campaign.name = "churn-matrix";
  campaign.campaign_seed = 3;
  campaign.base.frames = 30;
  campaign.workloads = {scenario::Workload::kBrakeDear, scenario::Workload::kAcc};
  campaign.transports = {scenario::Transport::kSomeIp, scenario::Transport::kLocal};
  ft::ServiceFaultModel churn;
  churn.churn_period = 200_ms;
  campaign.service_fault_models = {churn};
  ASSERT_EQ(campaign.grid_size(), 4u);

  std::uint64_t reference = 0;
  for (const unsigned workers : {1u, 2u, 4u}) {
    scenario::RunnerOptions options;
    options.workers = workers;
    const scenario::CampaignReport report = scenario::CampaignRunner(options).run(campaign);
    EXPECT_TRUE(report.invariants_ok());
    if (workers == 1) {
      reference = report.report_digest();
    } else {
      EXPECT_EQ(report.report_digest(), reference) << "workers=" << workers;
    }
  }
}

}  // namespace
}  // namespace dear
