#include "ft/fault_model.hpp"

#include <gtest/gtest.h>

namespace dear::ft {
namespace {

using namespace dear::literals;

TEST(ServiceFaultModel, AnyDetectsEachKnob) {
  EXPECT_FALSE(ServiceFaultModel{}.any());
  ServiceFaultModel crash;
  crash.crash_at = 1_ms;
  EXPECT_TRUE(crash.any());
  ServiceFaultModel error;
  error.call_error_probability = 0.01;
  EXPECT_TRUE(error.any());
  ServiceFaultModel omission;
  omission.call_omission_probability = 0.01;
  EXPECT_TRUE(omission.any());
  ServiceFaultModel churn;
  churn.churn_period = 100_ms;
  EXPECT_TRUE(churn.any());
  ServiceFaultModel restart_only;
  restart_only.restart_after = 1_ms;  // restart without a crash is inert
  EXPECT_FALSE(restart_only.any());
}

TEST(FaultPlan, DownWindowIsHalfOpen) {
  FaultPlan plan;
  plan.down_from = 100_ms;
  plan.down_until = 200_ms;
  EXPECT_FALSE(plan.down_at(99_ms));
  EXPECT_TRUE(plan.down_at(100_ms));
  EXPECT_TRUE(plan.down_at(199_ms));
  EXPECT_FALSE(plan.down_at(200_ms));
}

TEST(FaultPlan, NoRestartMeansDownForever) {
  FaultPlan plan;
  plan.down_from = 100_ms;
  plan.down_until = 0;
  EXPECT_FALSE(plan.down_at(99_ms));
  EXPECT_TRUE(plan.down_at(100_ms));
  EXPECT_TRUE(plan.down_at(1000000_ms));
}

TEST(FaultPlan, NoCrashConfiguredIsNeverDown) {
  FaultPlan plan;
  EXPECT_FALSE(plan.down_at(0));
  EXPECT_FALSE(plan.down_at(1000_ms));
  EXPECT_FALSE(plan.crashes({1, 100}));
}

TEST(FaultPlan, CrashRequiresVictimMatch) {
  FaultPlan plan;
  plan.victim = net::Endpoint{2, 103};
  plan.down_from = 100_ms;
  EXPECT_TRUE(plan.crashes({2, 103}));
  EXPECT_FALSE(plan.crashes({2, 104}));
  EXPECT_FALSE(plan.crashes({3, 103}));
}

TEST(FaultPlan, CallFaultIsAPureFunctionOfIdentity) {
  FaultPlan plan;
  plan.call_error_probability = 0.3;
  plan.call_omission_probability = 0.2;
  plan.fault_seed = 42;
  // Same (client, session) identity must yield the same verdict no matter
  // how often or in what order the die is consulted — that is the whole
  // transport/worker-count invariance argument.
  for (someip::SessionId session = 1; session <= 200; ++session) {
    const auto first = plan.call_fault(0x01, session);
    const auto again = plan.call_fault(0x01, session);
    EXPECT_EQ(first, again);
  }
  // A different fault seed reshuffles the verdicts.
  FaultPlan other = {};
  other.call_error_probability = 0.3;
  other.call_omission_probability = 0.2;
  other.fault_seed = 43;
  bool any_difference = false;
  for (someip::SessionId session = 1; session <= 200; ++session) {
    if (plan.call_fault(0x01, session) != other.call_fault(0x01, session)) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultPlan, CallFaultProbabilitiesRoughlyHold) {
  FaultPlan plan;
  plan.call_error_probability = 0.3;
  plan.call_omission_probability = 0.2;
  plan.fault_seed = 7;
  int errors = 0;
  int omissions = 0;
  constexpr int kCalls = 20'000;
  for (someip::SessionId session = 1; session <= kCalls; ++session) {
    switch (plan.call_fault(0x05, session)) {
      case FaultPlan::CallFault::kError:
        ++errors;
        break;
      case FaultPlan::CallFault::kOmission:
        ++omissions;
        break;
      case FaultPlan::CallFault::kNone:
        break;
    }
  }
  EXPECT_NEAR(static_cast<double>(errors) / kCalls, 0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(omissions) / kCalls, 0.2, 0.02);
  EXPECT_EQ(plan.call_errors.load(), static_cast<std::uint64_t>(errors));
  EXPECT_EQ(plan.call_omissions.load(), static_cast<std::uint64_t>(omissions));
}

TEST(FaultPlan, ZeroProbabilitiesShortCircuit) {
  const FaultPlan plan;
  for (someip::SessionId session = 1; session <= 100; ++session) {
    EXPECT_EQ(plan.call_fault(0x01, session), FaultPlan::CallFault::kNone);
  }
  EXPECT_EQ(plan.call_errors.load(), 0u);
  EXPECT_EQ(plan.call_omissions.load(), 0u);
}

TEST(RetryBudget, DisabledByDefault) {
  const RetryBudget budget;
  EXPECT_FALSE(budget.enabled());
  EXPECT_EQ(budget.worst_case_latency(), 0);
}

TEST(RetryBudget, WorstCaseSumsTimeoutsAndBackoffs) {
  RetryBudget budget;
  budget.max_attempts = 3;
  budget.backoff_base = 6_ms;
  budget.timeout = 5_ms;
  // 3 timeouts + backoffs of 1*6ms and 2*6ms: 15 + 18 = 33ms.
  EXPECT_EQ(budget.worst_case_latency(), 33_ms);

  RetryBudget single;
  single.max_attempts = 1;
  single.timeout = 5_ms;
  single.backoff_base = 100_ms;  // never waited: no retry happens
  EXPECT_EQ(single.worst_case_latency(), 5_ms);
}

}  // namespace
}  // namespace dear::ft
