// Graceful degradation under injected service crashes: the health
// supervisor marks the victim dead at well-defined logical tags, the
// degraded-mode controllers engage (EBA holds the last safe command, ACC
// coasts), and every observable — including the fallback outputs, which
// enter the digests under a marker id — stays bit-identical across
// transports and platform seeds.
#include <gtest/gtest.h>

#include "acc/pipeline.hpp"
#include "brake/dear_pipeline.hpp"
#include "ft/health.hpp"

namespace dear {
namespace {

using namespace dear::literals;

// crash_at counts from sensor sample 0's nominal release, and the
// boundaries sit mid-frame (the pipelines sample at 50 ms): sensor tags
// carry sub-millisecond jitter, so a boundary on the cadence itself
// would razor-cut a jitter cloud.
brake::DearScenarioConfig crashed_brake(bool local_transport, Duration restart_after = 0) {
  brake::DearScenarioConfig config;
  config.frames = 60;
  config.camera_seed = 31;
  config.platform_seed = 32;
  config.local_transport = local_transport;
  config.service_faults.crash_at = 1025_ms;
  config.service_faults.restart_after = restart_after;
  return config;
}

acc::AccScenarioConfig crashed_acc(bool local_transport, Duration restart_after = 0) {
  acc::AccScenarioConfig config;
  config.scans = 60;
  config.radar_seed = 41;
  config.platform_seed = 42;
  config.local_transport = local_transport;
  config.service_faults.crash_at = 1025_ms;
  config.service_faults.restart_after = restart_after;
  return config;
}

TEST(FtDegradation, BrakeCrashEngagesHoldFallback) {
  const brake::PipelineResult result = brake::run_dear_pipeline(crashed_brake(false));
  EXPECT_GT(result.ft_crash_drops, 0u) << "the CV node's tagged traffic must stop";
  EXPECT_GE(result.ft_failovers, 1u) << "the supervisor must mark the CV service dead";
  EXPECT_GT(result.ft_degraded_ticks, 0u) << "the EBA must hold the last safe command";
}

TEST(FtDegradation, AccCrashEngagesCoastFallback) {
  const acc::AccResult result = acc::run_acc_pipeline(crashed_acc(false));
  EXPECT_GT(result.ft_crash_drops, 0u) << "the radar node's tagged traffic must stop";
  EXPECT_GE(result.ft_failovers, 1u);
  EXPECT_GT(result.ft_degraded_ticks, 0u) << "the ACC must coast while the radar is dead";
}

TEST(FtDegradation, BrakeDigestsMatchAcrossTransportsUnderCrash) {
  const brake::PipelineResult someip = brake::run_dear_pipeline(crashed_brake(false));
  const brake::PipelineResult local = brake::run_dear_pipeline(crashed_brake(true));
  EXPECT_EQ(someip.output_digest, local.output_digest);
  EXPECT_EQ(someip.ft_degraded_ticks, local.ft_degraded_ticks);
  EXPECT_EQ(someip.ft_failovers, local.ft_failovers);
  EXPECT_EQ(someip.ft_crash_drops, local.ft_crash_drops);
}

TEST(FtDegradation, AccDigestsMatchAcrossTransportsUnderCrash) {
  const acc::AccResult someip = acc::run_acc_pipeline(crashed_acc(false));
  const acc::AccResult local = acc::run_acc_pipeline(crashed_acc(true));
  EXPECT_EQ(someip.output_digest, local.output_digest);
  EXPECT_EQ(someip.ft_degraded_ticks, local.ft_degraded_ticks);
  EXPECT_EQ(someip.ft_failovers, local.ft_failovers);
  EXPECT_EQ(someip.ft_crash_drops, local.ft_crash_drops);
}

TEST(FtDegradation, BrakeDigestIsPlatformSeedInvariantUnderCrash) {
  brake::DearScenarioConfig a = crashed_brake(false);
  brake::DearScenarioConfig b = crashed_brake(false);
  b.platform_seed = a.platform_seed + 17;
  const brake::PipelineResult ra = brake::run_dear_pipeline(a);
  const brake::PipelineResult rb = brake::run_dear_pipeline(b);
  EXPECT_EQ(ra.output_digest, rb.output_digest)
      << "crash windows live in wire-tag time: platform timing must not matter";
  EXPECT_EQ(ra.ft_degraded_ticks, rb.ft_degraded_ticks);
}

TEST(FtDegradation, AccDigestIsPlatformSeedInvariantUnderCrash) {
  acc::AccScenarioConfig a = crashed_acc(false);
  acc::AccScenarioConfig b = crashed_acc(false);
  b.platform_seed = a.platform_seed + 17;
  const acc::AccResult ra = acc::run_acc_pipeline(a);
  const acc::AccResult rb = acc::run_acc_pipeline(b);
  EXPECT_EQ(ra.output_digest, rb.output_digest)
      << "the down window is anchored to the radar grid: platform timing must not matter";
  EXPECT_EQ(ra.ft_degraded_ticks, rb.ft_degraded_ticks);
  EXPECT_EQ(ra.ft_crash_drops, rb.ft_crash_drops);
}

TEST(FtDegradation, WarmRestartRecoversTheService) {
  const brake::PipelineResult dead_forever = brake::run_dear_pipeline(crashed_brake(false));
  const brake::PipelineResult restarted =
      brake::run_dear_pipeline(crashed_brake(false, /*restart_after=*/500_ms));
  EXPECT_GE(restarted.ft_failovers, 1u);
  EXPECT_GT(restarted.ft_degraded_ticks, 0u);
  EXPECT_LT(restarted.ft_degraded_ticks, dead_forever.ft_degraded_ticks)
      << "after the warm restart the supervisor recovers and the fallback disengages";
  EXPECT_LT(restarted.ft_crash_drops, dead_forever.ft_crash_drops);
}

TEST(FtDegradation, RunsAreBitReproducible) {
  const acc::AccResult first = acc::run_acc_pipeline(crashed_acc(false, 500_ms));
  const acc::AccResult again = acc::run_acc_pipeline(crashed_acc(false, 500_ms));
  EXPECT_EQ(first.output_digest, again.output_digest);
  EXPECT_EQ(first.tag_digest, again.tag_digest);
  EXPECT_EQ(first.ft_crash_drops, again.ft_crash_drops);
  EXPECT_EQ(first.ft_degraded_ticks, again.ft_degraded_ticks);
  EXPECT_EQ(first.ft_failovers, again.ft_failovers);
}

TEST(FtDegradation, CallFaultsAndRetriesSurfaceInAccCounters) {
  acc::AccScenarioConfig config;
  config.scans = 100;
  config.radar_seed = 51;
  config.platform_seed = 52;
  config.service_faults.call_error_probability = 0.4;
  config.service_faults.call_omission_probability = 0.2;
  config.retry.max_attempts = 3;
  config.retry.backoff_base = 6_ms;
  config.retry.timeout = 5_ms;
  const acc::AccResult first = acc::run_acc_pipeline(config);
  EXPECT_GT(first.ft_call_faults, 0u) << "console get/set calls must hit the fault die";
  EXPECT_GT(first.ft_retries, 0u) << "the retry budget must re-issue failed calls";
  const acc::AccResult again = acc::run_acc_pipeline(config);
  EXPECT_EQ(first.output_digest, again.output_digest);
  EXPECT_EQ(first.ft_call_faults, again.ft_call_faults);
  EXPECT_EQ(first.ft_retries, again.ft_retries);
}

TEST(FtDegradation, SupervisorClassifiesByHeartbeatGap) {
  // Threshold sanity on the config type itself: the pipeline wiring
  // derives degraded/dead cutoffs from the pipeline period, and the
  // half-open comparisons in the supervisor use strict greater-than.
  ft::SupervisorConfig config;
  EXPECT_LT(config.check_period, config.degraded_after);
  EXPECT_LT(config.degraded_after, config.dead_after);
}

}  // namespace
}  // namespace dear
