// Retry/timeout/backoff semantics on proxy methods, plus the ComErrc
// regression coverage for the fault-injected failure modes: a silent
// server surfaces kCommunicationTimeout (single attempt) or
// kServiceNotAvailable (a whole retry budget burned on timeouts), an
// erroring server stays kRemoteError with or without retries.
#include "ara/method.hpp"

#include <gtest/gtest.h>

#include "ara_fixture.hpp"
#include "ft/fault_model.hpp"

namespace dear::ara {
namespace {

using namespace dear::literals;
using testing::AraSimFixture;

struct FtRetryTest : AraSimFixture {
  static ft::RetryBudget budget(std::uint32_t attempts, Duration backoff, Duration timeout) {
    ft::RetryBudget b;
    b.max_attempts = attempts;
    b.backoff_base = backoff;
    b.timeout = timeout;
    return b;
  }
};

TEST_F(FtRetryTest, TimeoutWithoutRetryIsCommunicationTimeout) {
  // Regression: the plain timeout path must stay reachable (and keep its
  // error code) now that the retry machinery exists.
  skeleton->slow.set_handler([](const std::int32_t&) {
    return Promise<std::int32_t>().get_future();  // never resolves
  });
  proxy->set_call_timeout(20_ms);
  auto future = proxy->slow(1);
  kernel.run();
  ASSERT_TRUE(future.is_ready());
  EXPECT_EQ(future.GetResult().error(), ComErrc::kCommunicationTimeout);
  EXPECT_EQ(proxy->retries(), 0u);
}

TEST_F(FtRetryTest, TransientServerErrorsAreRetriedToSuccess) {
  int invocations = 0;
  skeleton->slow.set_handler([&invocations](const std::int32_t& v) {
    if (++invocations < 3) {
      Promise<std::int32_t> promise;
      promise.SetError(ComErrc::kFieldValueNotSet);
      return promise.get_future();
    }
    return make_ready_future<std::int32_t>(v * 10);
  });
  proxy->set_retry_policy(budget(3, 30_ms, 20_ms));
  auto future = proxy->slow(4);
  kernel.run();
  ASSERT_TRUE(future.is_ready());
  EXPECT_EQ(future.GetResult().value(), 40);
  EXPECT_EQ(invocations, 3);
  EXPECT_EQ(proxy->retries(), 2u);
  EXPECT_EQ(proxy->retries_exhausted(), 0u);
}

TEST_F(FtRetryTest, BudgetBurnedOnTimeoutsYieldsServiceNotAvailable) {
  skeleton->slow.set_handler([](const std::int32_t&) {
    return Promise<std::int32_t>().get_future();  // never resolves
  });
  proxy->set_retry_policy(budget(3, 30_ms, 20_ms));
  auto future = proxy->slow(1);
  kernel.run();
  ASSERT_TRUE(future.is_ready());
  // Every attempt timed out: the service is gone, not merely slow.
  EXPECT_EQ(future.GetResult().error(), ComErrc::kServiceNotAvailable);
  EXPECT_EQ(proxy->retries(), 2u);
  EXPECT_EQ(proxy->retries_exhausted(), 1u);
}

TEST_F(FtRetryTest, PersistentServerErrorStaysRemoteError) {
  int invocations = 0;
  skeleton->slow.set_handler([&invocations](const std::int32_t&) {
    ++invocations;
    Promise<std::int32_t> promise;
    promise.SetError(ComErrc::kFieldValueNotSet);
    return promise.get_future();
  });
  proxy->set_retry_policy(budget(2, 30_ms, 20_ms));
  auto future = proxy->slow(1);
  kernel.run();
  ASSERT_TRUE(future.is_ready());
  // Not a timeout exhaustion: the server answered, with an error.
  EXPECT_EQ(future.GetResult().error(), ComErrc::kRemoteError);
  EXPECT_EQ(invocations, 2);
  EXPECT_EQ(proxy->retries(), 1u);
  EXPECT_EQ(proxy->retries_exhausted(), 0u);
}

TEST_F(FtRetryTest, InjectedOmissionSurfacesAsTimeout) {
  ft::FaultPlan plan;
  plan.call_omission_probability = 1.0;
  server_rt.set_fault_plan(&plan);
  proxy->set_call_timeout(20_ms);
  auto future = proxy->add(1, 2);
  kernel.run();
  ASSERT_TRUE(future.is_ready());
  EXPECT_EQ(future.GetResult().error(), ComErrc::kCommunicationTimeout);
  EXPECT_GE(plan.call_omissions.load(), 1u);
  server_rt.set_fault_plan(nullptr);
}

TEST_F(FtRetryTest, InjectedOmissionWithRetryExhaustsToServiceNotAvailable) {
  ft::FaultPlan plan;
  plan.call_omission_probability = 1.0;
  server_rt.set_fault_plan(&plan);
  proxy->set_retry_policy(budget(3, 30_ms, 20_ms));
  auto future = proxy->add(1, 2);
  kernel.run();
  ASSERT_TRUE(future.is_ready());
  EXPECT_EQ(future.GetResult().error(), ComErrc::kServiceNotAvailable);
  EXPECT_EQ(proxy->retries(), 2u);
  EXPECT_GE(plan.call_omissions.load(), 3u);
  server_rt.set_fault_plan(nullptr);
}

TEST_F(FtRetryTest, InjectedErrorBecomesRemoteError) {
  ft::FaultPlan plan;
  plan.call_error_probability = 1.0;
  server_rt.set_fault_plan(&plan);
  auto future = proxy->add(1, 2);
  kernel.run();
  ASSERT_TRUE(future.is_ready());
  EXPECT_EQ(future.GetResult().error(), ComErrc::kRemoteError);
  EXPECT_GE(plan.call_errors.load(), 1u);
  server_rt.set_fault_plan(nullptr);
}

TEST_F(FtRetryTest, SuccessfulCallConsumesNoBudget) {
  proxy->set_retry_policy(budget(3, 30_ms, 20_ms));
  auto future = proxy->add(20, 22);
  kernel.run();
  ASSERT_TRUE(future.is_ready());
  EXPECT_EQ(future.GetResult().value(), 42);
  EXPECT_EQ(proxy->retries(), 0u);
  EXPECT_EQ(proxy->retries_exhausted(), 0u);
}

}  // namespace
}  // namespace dear::ara
