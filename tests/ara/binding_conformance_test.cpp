// Shared conformance suite for TransportBinding backends.
//
// Every backend must satisfy the same observable contract — request/response
// session matching, timeout synthesis, subscribe/notify routing, and the
// DEAR tag attach/deposit pairing — regardless of whether messages cross a
// (simulated) wire or process memory. The suite is parameterized over a
// backend world so new transports plug in with one factory entry.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ara/com/local_binding.hpp"
#include "ara/com/someip_binding.hpp"
#include "common/buffer_pool.hpp"
#include "common/rng.hpp"
#include "net/sim_network.hpp"
#include "sim/sim_executor.hpp"

namespace dear::ara::com {
namespace {

using namespace dear::literals;

constexpr someip::ServiceId kService = 0x0D0D;
constexpr someip::MethodId kEchoMethod = 0x0001;
constexpr someip::MethodId kMuteMethod = 0x0002;  // never answered
constexpr someip::EventId kDataEvent = 0x8001;

constexpr net::Endpoint kServerEp{1, 100};
constexpr net::Endpoint kClientEp{2, 200};
constexpr net::Endpoint kClient2Ep{3, 300};

/// One server and two clients on a discrete-event substrate; run() advances
/// simulated time (delivery, timers).
class BackendWorld {
 public:
  virtual ~BackendWorld() = default;
  virtual TransportBinding& server() = 0;
  virtual TransportBinding& client() = 0;
  virtual TransportBinding& client2() = 0;

  void run(Duration d = 10_ms) { kernel.run_until(kernel.now() + d); }

  sim::Kernel kernel;
  sim::ImmediateSimExecutor executor{kernel};
};

class SomeIpWorld final : public BackendWorld {
 public:
  TransportBinding& server() override { return server_; }
  TransportBinding& client() override { return client_; }
  TransportBinding& client2() override { return client2_; }

 private:
  net::SimNetwork network_{kernel, common::Rng(17)};
  SomeIpBinding server_{network_, executor, kServerEp, 0x01};
  SomeIpBinding client_{network_, executor, kClientEp, 0x02};
  SomeIpBinding client2_{network_, executor, kClient2Ep, 0x03};
};

class LocalWorld final : public BackendWorld {
 public:
  TransportBinding& server() override { return server_; }
  TransportBinding& client() override { return client_; }
  TransportBinding& client2() override { return client2_; }

 private:
  LocalHub hub_;
  LocalBinding server_{hub_, executor, kServerEp, 0x01};
  LocalBinding client_{hub_, executor, kClientEp, 0x02};
  LocalBinding client2_{hub_, executor, kClient2Ep, 0x03};
};

std::unique_ptr<BackendWorld> make_world(const std::string& backend) {
  if (backend == "someip") {
    return std::make_unique<SomeIpWorld>();
  }
  return std::make_unique<LocalWorld>();
}

class BindingConformanceTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override { world = make_world(GetParam()); }

  /// Server-side echo: replies with the request payload.
  void provide_echo() {
    world->server().provide_method(
        kService, kEchoMethod,
        [this](const someip::Message& request, const net::Endpoint& from) {
          world->server().respond(request, from, request.payload);
        });
  }

  std::unique_ptr<BackendWorld> world;
};

TEST_P(BindingConformanceTest, CallResponseMatching) {
  provide_echo();

  std::vector<std::uint8_t> got_a;
  std::vector<std::uint8_t> got_b;
  const someip::SessionId session_a = world->client().call(
      kServerEp, kService, kEchoMethod, {0xAA, 0x01},
      [&](const someip::Message& response) {
        EXPECT_EQ(response.type, someip::MessageType::kResponse);
        got_a = response.payload;
      });
  const someip::SessionId session_b = world->client().call(
      kServerEp, kService, kEchoMethod, {0xBB, 0x02},
      [&](const someip::Message& response) { got_b = response.payload; });
  EXPECT_NE(session_a, session_b);
  world->run();

  EXPECT_EQ(got_a, (std::vector<std::uint8_t>{0xAA, 0x01}));
  EXPECT_EQ(got_b, (std::vector<std::uint8_t>{0xBB, 0x02}));

  const TransportStats client_stats = world->client().stats();
  EXPECT_EQ(client_stats.requests_sent, 2U);
  EXPECT_EQ(client_stats.responses_received, 2U);
}

TEST_P(BindingConformanceTest, UnknownMethodYieldsErrorResponse) {
  int responses = 0;
  world->client().call(kServerEp, kService, 0x7777, {},
                       [&](const someip::Message& response) {
                         ++responses;
                         EXPECT_EQ(response.type, someip::MessageType::kError);
                         EXPECT_EQ(response.return_code, someip::ReturnCode::kUnknownMethod);
                       });
  world->run();
  EXPECT_EQ(responses, 1);
}

TEST_P(BindingConformanceTest, TimeoutSynthesis) {
  // The mute method swallows requests; the client must synthesize kTimeout.
  world->server().provide_method(kService, kMuteMethod,
                                 [](const someip::Message&, const net::Endpoint&) {});
  int responses = 0;
  world->client().call(kServerEp, kService, kMuteMethod, {0x01},
                       [&](const someip::Message& response) {
                         ++responses;
                         EXPECT_EQ(response.type, someip::MessageType::kError);
                         EXPECT_EQ(response.return_code, someip::ReturnCode::kTimeout);
                       },
                       5_ms);
  world->run(20_ms);
  EXPECT_EQ(responses, 1);
  EXPECT_EQ(world->client().stats().timeouts, 1U);

  // A response arriving after the synthesized timeout must not fire the
  // handler again.
  world->run(20_ms);
  EXPECT_EQ(responses, 1);
}

TEST_P(BindingConformanceTest, TimeoutNotSynthesizedWhenResponseArrives) {
  provide_echo();
  int responses = 0;
  world->client().call(kServerEp, kService, kEchoMethod, {0x05},
                       [&](const someip::Message& response) {
                         ++responses;
                         EXPECT_EQ(response.type, someip::MessageType::kResponse);
                       },
                       50_ms);
  world->run(100_ms);
  EXPECT_EQ(responses, 1);
  EXPECT_EQ(world->client().stats().timeouts, 0U);
}

TEST_P(BindingConformanceTest, CallNoReturnDelivers) {
  int requests = 0;
  world->server().provide_method(kService, kEchoMethod,
                                 [&](const someip::Message& request, const net::Endpoint&) {
                                   ++requests;
                                   EXPECT_EQ(request.type,
                                             someip::MessageType::kRequestNoReturn);
                                 });
  world->client().call_no_return(kServerEp, kService, kEchoMethod, {0x09});
  world->run();
  EXPECT_EQ(requests, 1);
}

TEST_P(BindingConformanceTest, SubscribeNotifyRouting) {
  int client_samples = 0;
  int client2_samples = 0;
  world->client().subscribe(kServerEp, kService, kDataEvent,
                            [&](const someip::Message& message) {
                              ++client_samples;
                              EXPECT_EQ(message.payload,
                                        (std::vector<std::uint8_t>{0x11, 0x22}));
                            });
  world->client2().subscribe(kServerEp, kService, kDataEvent,
                             [&](const someip::Message&) { ++client2_samples; });
  world->run();  // settle subscription management

  EXPECT_EQ(world->server().subscriber_count(kService, kDataEvent), 2U);
  world->server().notify(kService, kDataEvent, {0x11, 0x22});
  world->run();
  EXPECT_EQ(client_samples, 1);
  EXPECT_EQ(client2_samples, 1);

  world->client().unsubscribe(kServerEp, kService, kDataEvent);
  world->run();
  EXPECT_EQ(world->server().subscriber_count(kService, kDataEvent), 1U);
  world->server().notify(kService, kDataEvent, {0x11, 0x22});
  world->run();
  EXPECT_EQ(client_samples, 1);
  EXPECT_EQ(client2_samples, 2);

  const TransportStats server_stats = world->server().stats();
  EXPECT_EQ(server_stats.notifications_sent, 2U);
}

TEST_P(BindingConformanceTest, TagAttachDepositPairing) {
  // Round trip of paper Figure 3: the client arms tc+Dc, the server's
  // handler collects it while the request is current, arms ts+Ds for the
  // response, and the client collects that in its response handler.
  std::optional<someip::WireTag> server_seen;
  std::optional<someip::WireTag> client_seen;
  world->server().provide_method(
      kService, kEchoMethod, [&](const someip::Message& request, const net::Endpoint& from) {
        server_seen = world->server().collect_received_tag();
        world->server().attach_send_tag(someip::WireTag{900, 2});
        world->server().respond(request, from, request.payload);
      });

  world->client().attach_send_tag(someip::WireTag{500, 1});
  world->client().call(kServerEp, kService, kEchoMethod, {0x01},
                       [&](const someip::Message&) {
                         client_seen = world->client().collect_received_tag();
                       });
  world->run();

  ASSERT_TRUE(server_seen.has_value());
  EXPECT_EQ(*server_seen, (someip::WireTag{500, 1}));
  ASSERT_TRUE(client_seen.has_value());
  EXPECT_EQ(*client_seen, (someip::WireTag{900, 2}));

  EXPECT_EQ(world->client().stats().tagged_sent, 1U);
  EXPECT_EQ(world->client().stats().tagged_received, 1U);
  EXPECT_EQ(world->server().stats().tagged_sent, 1U);
  EXPECT_EQ(world->server().stats().tagged_received, 1U);
}

TEST_P(BindingConformanceTest, UncollectedTagIsClearedAfterDelivery) {
  // A handler that ignores the deposited tag must not leak it into the
  // next (untagged) delivery.
  int requests = 0;
  world->server().provide_method(kService, kEchoMethod,
                                 [&](const someip::Message& request, const net::Endpoint& from) {
                                   ++requests;  // does not collect the tag
                                   world->server().respond(request, from, request.payload);
                                 });
  world->client().attach_send_tag(someip::WireTag{77, 0});
  world->client().call(kServerEp, kService, kEchoMethod, {0x01}, [](const someip::Message&) {});
  world->run();
  EXPECT_EQ(requests, 1);
  EXPECT_FALSE(world->server().received_tag_armed());

  // Untagged follow-up: the server-side collect must yield nothing.
  std::optional<someip::WireTag> seen{someip::WireTag{1, 1}};
  world->server().provide_method(kService, kMuteMethod,
                                 [&](const someip::Message&, const net::Endpoint&) {
                                   seen = world->server().collect_received_tag();
                                 });
  world->client().call_no_return(kServerEp, kService, kMuteMethod, {0x02});
  world->run();
  EXPECT_FALSE(seen.has_value());
}

TEST_P(BindingConformanceTest, NotifyCarriesTagToEverySubscriber) {
  std::optional<someip::WireTag> seen1;
  std::optional<someip::WireTag> seen2;
  world->client().subscribe(kServerEp, kService, kDataEvent,
                            [&](const someip::Message&) {
                              seen1 = world->client().collect_received_tag();
                            });
  world->client2().subscribe(kServerEp, kService, kDataEvent,
                             [&](const someip::Message&) {
                               seen2 = world->client2().collect_received_tag();
                             });
  world->run();

  world->server().attach_send_tag(someip::WireTag{4242, 7});
  world->server().notify(kService, kDataEvent, {0x01});
  world->run();

  ASSERT_TRUE(seen1.has_value());
  EXPECT_EQ(*seen1, (someip::WireTag{4242, 7}));
  ASSERT_TRUE(seen2.has_value());
  EXPECT_EQ(*seen2, (someip::WireTag{4242, 7}));
}

/// Payload bytes of a delivered notification, whichever plane carried
/// them: the local backend hands the loaned slab through, the wire
/// backend delivers a decoded vector.
std::vector<std::uint8_t> delivered_bytes(const someip::Message& message) {
  if (message.loaned) {
    return {message.loaned.data(), message.loaned.data() + message.loaned.size()};
  }
  return message.payload;
}

TEST_P(BindingConformanceTest, NotifyLoanedDeliversToEverySubscriber) {
  std::vector<std::uint8_t> seen1;
  std::vector<std::uint8_t> seen2;
  world->client().subscribe(kServerEp, kService, kDataEvent,
                            [&](const someip::Message& message) {
                              seen1 = delivered_bytes(message);
                            });
  world->client2().subscribe(kServerEp, kService, kDataEvent,
                             [&](const someip::Message& message) {
                               seen2 = delivered_bytes(message);
                             });
  world->run();  // settle subscription management

  common::LoanedBuffer frame = common::BufferPool::instance().loan(1024);
  frame.data()[0] = 0x11;
  frame.data()[1] = 0x22;
  frame.data()[2] = 0x33;
  frame.publish(3);
  world->server().notify_loaned(kService, kDataEvent, std::move(frame));
  world->run();

  EXPECT_EQ(seen1, (std::vector<std::uint8_t>{0x11, 0x22, 0x33}));
  EXPECT_EQ(seen2, (std::vector<std::uint8_t>{0x11, 0x22, 0x33}));
  EXPECT_EQ(world->server().stats().notifications_sent, 1U);
}

TEST_P(BindingConformanceTest, NotifyLoanedReleasesSlabAfterDelivery) {
  // The publisher's retained handle must be the only one left once the
  // fan-out completes: the local backend's per-subscriber retains drop
  // with the delivered messages, the wire backend releases after framing.
  int samples = 0;
  world->client().subscribe(kServerEp, kService, kDataEvent,
                            [&](const someip::Message&) { ++samples; });
  world->run();

  common::LoanedBuffer frame = common::BufferPool::instance().loan(1024);
  frame.publish(8);
  common::LoanedBuffer retained = frame;  // publisher-side retain
  world->server().notify_loaned(kService, kDataEvent, std::move(frame));
  world->run();
  EXPECT_EQ(samples, 1);
  EXPECT_EQ(retained.use_count(), 1U);
}

TEST_P(BindingConformanceTest, NotifyLoanedCarriesTagToEverySubscriber) {
  std::optional<someip::WireTag> seen1;
  std::optional<someip::WireTag> seen2;
  world->client().subscribe(kServerEp, kService, kDataEvent,
                            [&](const someip::Message&) {
                              seen1 = world->client().collect_received_tag();
                            });
  world->client2().subscribe(kServerEp, kService, kDataEvent,
                             [&](const someip::Message&) {
                               seen2 = world->client2().collect_received_tag();
                             });
  world->run();

  common::LoanedBuffer frame = common::BufferPool::instance().loan(64);
  frame.publish(4);
  world->server().attach_send_tag(someip::WireTag{6161, 3});
  world->server().notify_loaned(kService, kDataEvent, std::move(frame));
  world->run();

  ASSERT_TRUE(seen1.has_value());
  EXPECT_EQ(*seen1, (someip::WireTag{6161, 3}));
  ASSERT_TRUE(seen2.has_value());
  EXPECT_EQ(*seen2, (someip::WireTag{6161, 3}));
}

TEST_P(BindingConformanceTest, NotifyLoanedEmptyHandleIsNoOp) {
  int samples = 0;
  world->client().subscribe(kServerEp, kService, kDataEvent,
                            [&](const someip::Message&) { ++samples; });
  world->run();
  world->server().notify_loaned(kService, kDataEvent, common::LoanedBuffer{});
  world->run();
  EXPECT_EQ(samples, 0);
  EXPECT_EQ(world->server().stats().notifications_sent, 0U);
}

TEST_P(BindingConformanceTest, IdentityAccessors) {
  EXPECT_EQ(world->server().endpoint(), kServerEp);
  EXPECT_EQ(world->client().endpoint(), kClientEp);
  EXPECT_EQ(world->server().client_id(), 0x01);
  EXPECT_FALSE(world->server().transport_name().empty());
}

INSTANTIATE_TEST_SUITE_P(Backends, BindingConformanceTest,
                         ::testing::Values(std::string("someip"), std::string("local")),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace dear::ara::com
