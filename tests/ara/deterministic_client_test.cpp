#include "ara/deterministic_client.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dear::ara {
namespace {

TEST(DeterministicClient, StartupPhaseSequence) {
  DeterministicClient client({1, 4});
  EXPECT_EQ(client.WaitForActivation(0), ActivationReturnType::kRegisterServices);
  EXPECT_EQ(client.WaitForActivation(10), ActivationReturnType::kServiceDiscovery);
  EXPECT_EQ(client.WaitForActivation(20), ActivationReturnType::kInit);
  EXPECT_EQ(client.WaitForActivation(30), ActivationReturnType::kRun);
  EXPECT_EQ(client.cycle(), 1u);
  EXPECT_EQ(client.GetActivationTime(), 30);
}

TEST(DeterministicClient, TerminateEndsCycles) {
  DeterministicClient client({1, 4});
  for (int i = 0; i < 3; ++i) {
    (void)client.WaitForActivation(i);
  }
  EXPECT_EQ(client.WaitForActivation(3), ActivationReturnType::kRun);
  client.terminate();
  EXPECT_EQ(client.WaitForActivation(4), ActivationReturnType::kTerminate);
  EXPECT_EQ(client.WaitForActivation(5), ActivationReturnType::kTerminate);
}

TEST(DeterministicClient, RandomIsDeterministicPerCycle) {
  std::vector<std::uint64_t> first_run;
  for (int run = 0; run < 2; ++run) {
    DeterministicClient client({42, 4});
    std::vector<std::uint64_t> values;
    // Skip the startup phases.
    while (client.WaitForActivation(0) != ActivationReturnType::kRun) {
    }
    for (int cycle = 0; cycle < 5; ++cycle) {
      for (int i = 0; i < 3; ++i) {
        values.push_back(client.GetRandom());
      }
      (void)client.WaitForActivation(cycle + 1);
    }
    if (run == 0) {
      first_run = values;
    } else {
      EXPECT_EQ(values, first_run) << "GetRandom must not depend on timing";
    }
  }
}

TEST(DeterministicClient, RandomDiffersAcrossCycles) {
  DeterministicClient client({42, 4});
  while (client.WaitForActivation(0) != ActivationReturnType::kRun) {
  }
  const std::uint64_t cycle1 = client.GetRandom();
  (void)client.WaitForActivation(1);
  const std::uint64_t cycle2 = client.GetRandom();
  EXPECT_NE(cycle1, cycle2);
}

TEST(DeterministicClient, RandomDiffersAcrossSeeds) {
  DeterministicClient a({1, 4});
  DeterministicClient b({2, 4});
  while (a.WaitForActivation(0) != ActivationReturnType::kRun) {
  }
  while (b.WaitForActivation(0) != ActivationReturnType::kRun) {
  }
  EXPECT_NE(a.GetRandom(), b.GetRandom());
}

TEST(DeterministicClient, WorkerPoolCommitsInElementOrder) {
  DeterministicClient client({7, 8});
  std::vector<int> data{5, 4, 3, 2, 1};
  std::vector<int> visit_order;
  client.RunWorkerPool(data, [&](int& element) {
    visit_order.push_back(element);
    element *= 10;
  });
  EXPECT_EQ(data, (std::vector<int>{50, 40, 30, 20, 10}));
  EXPECT_EQ(visit_order, (std::vector<int>{5, 4, 3, 2, 1}));
  EXPECT_EQ(client.worker_pool_runs(), 1u);
}

TEST(DeterministicClient, WorkerPoolResultIndependentOfWorkerCount) {
  for (const std::size_t workers : {1u, 2u, 8u}) {
    DeterministicClient client({7, workers});
    std::vector<int> data{1, 2, 3, 4};
    client.RunWorkerPool(data, [](int& element) { element += 100; });
    EXPECT_EQ(data, (std::vector<int>{101, 102, 103, 104}));
  }
}

}  // namespace
}  // namespace dear::ara
