// The compile-time ServiceInterface descriptor layer: id/type pinning via
// static_assert, and wire equivalence between descriptor-generated
// Proxy<I>/Skeleton<I> and the handwritten subclassing style they replace.
//
// The handwritten classes below are verbatim copies of the pre-descriptor
// brake service declarations (the "golden" generator output); the
// equivalence tests prove that a generated endpoint interoperates with a
// handwritten peer in both directions — i.e. the descriptor refactor
// changed nothing on the wire.
#include <gtest/gtest.h>

#include <optional>

#include "ara/generated.hpp"
#include "ara/runtime.hpp"
#include "brake/services.hpp"
#include "dear/tag_codec.hpp"  // Empty codec
#include "net/sim_network.hpp"
#include "sim/sim_executor.hpp"

namespace dear::ara {
namespace {

// --- compile-time pinning: brake descriptor ids never drift -----------------------

static_assert(meta::ServiceDescriptor<brake::VideoAdapter>);
static_assert(meta::ServiceDescriptor<brake::Preprocessing>);
static_assert(meta::ServiceDescriptor<brake::ComputerVision>);
static_assert(meta::ServiceDescriptor<brake::Eba>);
static_assert(!meta::ServiceDescriptor<brake::VideoFrame>);

static_assert(brake::VideoAdapter::kInterface.service == 0x1001);
static_assert(brake::Preprocessing::kInterface.service == 0x1002);
static_assert(brake::ComputerVision::kInterface.service == 0x1003);
static_assert(brake::Eba::kInterface.service == 0x1004);

static_assert(brake::VideoAdapter::frame.id == 0x8001);
static_assert(brake::Preprocessing::lane.id == 0x8002);
static_assert(brake::Preprocessing::forwarded_frame.id == 0x8003);
static_assert(brake::ComputerVision::vehicles.id == 0x8004);
static_assert(brake::Eba::brake.id == 0x8005);

static_assert(meta::member_count<brake::VideoAdapter> == 1);
static_assert(meta::member_count<brake::Preprocessing> == 2);
static_assert(meta::index_of<brake::Preprocessing, decltype(brake::Preprocessing::lane)>() == 0);
static_assert(
    meta::index_of<brake::Preprocessing, decltype(brake::Preprocessing::forwarded_frame)>() == 1);

// Payload types are carried by the descriptor types.
static_assert(
    std::is_same_v<decltype(brake::VideoAdapter::frame)::value_type, brake::VideoFrame>);
static_assert(std::is_same_v<decltype(brake::Eba::brake)::value_type, brake::BrakeCommand>);

// --- a descriptor exercising all three member kinds -------------------------------

inline constexpr someip::ServiceId kTestService = 0x0B0B;
inline constexpr someip::InstanceId kTestInstance = 1;

struct TestService {
  static constexpr meta::Event<std::uint64_t, 0x8001> tick{"tick"};
  static constexpr meta::Method<std::int32_t, std::int32_t, 0x0001> negate{"negate"};
  static constexpr meta::Field<std::int32_t, 0x0020, 0x0021, 0x8020> mode{"mode"};
  static constexpr auto kInterface =
      meta::service_interface("TestService", kTestService, {1, 2}, tick, negate, mode);
};

static_assert(meta::member_count<TestService> == 3);
static_assert(TestService::kInterface.version.major == 1);
static_assert(TestService::kInterface.version.minor == 2);
static_assert(TestService::mode.ids.get == 0x0020);
static_assert(TestService::mode.ids.set == 0x0021);
static_assert(TestService::mode.ids.notify == 0x8020);

// The generated parts resolve to the exact classic typed templates.
static_assert(std::is_base_of_v<ProxyEvent<std::uint64_t>,
                                std::remove_reference_t<decltype(std::declval<Proxy<TestService>&>()
                                                                     .get(TestService::tick))>>);
static_assert(
    std::is_base_of_v<SkeletonMethod<std::int32_t, std::int32_t>,
                      std::remove_reference_t<decltype(std::declval<Skeleton<TestService>&>().get(
                          TestService::negate))>>);
static_assert(
    std::is_base_of_v<ProxyField<std::int32_t>,
                      std::remove_reference_t<decltype(std::declval<Proxy<TestService>&>().get(
                          TestService::mode))>>);

// --- the handwritten "golden" classes the descriptors replaced --------------------

class LegacyVideoAdapterSkeleton : public ServiceSkeleton {
 public:
  LegacyVideoAdapterSkeleton(Runtime& runtime,
                             MethodCallProcessingMode mode = MethodCallProcessingMode::kEvent)
      : ServiceSkeleton(runtime, {brake::kVideoAdapterService, brake::kInstance}, mode) {}

  SkeletonEvent<brake::VideoFrame> frame{*this, brake::kFrameEvent};
};

class LegacyVideoAdapterProxy : public ServiceProxy {
 public:
  LegacyVideoAdapterProxy(Runtime& runtime, InstanceIdentifier instance, net::Endpoint server)
      : ServiceProxy(runtime, instance, server) {}

  ProxyEvent<brake::VideoFrame> frame{*this, brake::kFrameEvent};
};

// --- simulation world -------------------------------------------------------------

class DescriptorEquivalence : public ::testing::Test {
 protected:
  sim::Kernel kernel;
  net::SimNetwork network{kernel, common::Rng(3)};
  someip::ServiceDiscovery discovery;
  sim::SimExecutor executor{kernel, common::Rng(4)};
  Runtime server_rt{network, discovery, executor, {1, 100}, 0x01};
  Runtime client_rt{network, discovery, executor, {2, 200}, 0x02};
};

TEST_F(DescriptorEquivalence, GeneratedPartsReportTheHandwrittenIds) {
  Skeleton<brake::VideoAdapter> skeleton(server_rt, brake::kInstance);
  skeleton.OfferService();
  Proxy<brake::VideoAdapter> proxy(client_rt, brake::kInstance,
                                   *client_rt.resolve({brake::kVideoAdapterService,
                                                       brake::kInstance}));

  LegacyVideoAdapterSkeleton legacy_skeleton(server_rt);
  EXPECT_EQ(skeleton.instance(), legacy_skeleton.instance());
  EXPECT_EQ(skeleton.get(brake::VideoAdapter::frame).id(), legacy_skeleton.frame.id());
  EXPECT_EQ(proxy.get(brake::VideoAdapter::frame).id(), brake::kFrameEvent);
  EXPECT_EQ(proxy.instance(),
            (InstanceIdentifier{brake::kVideoAdapterService, brake::kInstance}));
}

TEST_F(DescriptorEquivalence, GeneratedSkeletonServesHandwrittenProxy) {
  Skeleton<brake::VideoAdapter> skeleton(server_rt, brake::kInstance);
  skeleton.OfferService();

  LegacyVideoAdapterProxy proxy(client_rt, {brake::kVideoAdapterService, brake::kInstance},
                                *client_rt.resolve({brake::kVideoAdapterService,
                                                    brake::kInstance}));
  std::optional<brake::VideoFrame> received;
  proxy.frame.SetReceiveHandler([&](const brake::VideoFrame& frame) { received = frame; });
  proxy.frame.Subscribe();
  kernel.run();

  brake::VideoFrame frame;
  frame.frame_id = 77;
  frame.content_hash = 0xabcdef;
  skeleton.get(brake::VideoAdapter::frame).Send(frame);
  kernel.run();

  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(*received, frame);
}

TEST_F(DescriptorEquivalence, HandwrittenSkeletonServesGeneratedProxy) {
  LegacyVideoAdapterSkeleton skeleton(server_rt);
  skeleton.OfferService();

  Proxy<brake::VideoAdapter> proxy(client_rt, brake::kInstance,
                                   *client_rt.resolve({brake::kVideoAdapterService,
                                                       brake::kInstance}));
  std::optional<brake::VideoFrame> received;
  proxy.get(brake::VideoAdapter::frame).SetReceiveHandler([&](const brake::VideoFrame& frame) {
    received = frame;
  });
  proxy.get(brake::VideoAdapter::frame).Subscribe();
  kernel.run();

  brake::VideoFrame frame;
  frame.frame_id = 99;
  skeleton.frame.Send(frame);
  kernel.run();

  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(*received, frame);
}

TEST_F(DescriptorEquivalence, MethodAndFieldMembersRoundTrip) {
  Skeleton<TestService> skeleton(server_rt, kTestInstance);
  skeleton.get(TestService::negate).set_sync_handler([](const std::int32_t& v) { return -v; });
  skeleton.get(TestService::mode).Update(41);
  skeleton.OfferService();

  Proxy<TestService> proxy(client_rt, kTestInstance,
                           *client_rt.resolve({kTestService, kTestInstance}));

  std::optional<std::int32_t> negated;
  proxy.get(TestService::negate)(123).then([&](const Result<std::int32_t>& result) {
    ASSERT_TRUE(result.has_value());
    negated = result.value();
  });

  std::optional<std::int32_t> mode_value;
  proxy.get(TestService::mode).Get().then([&](const Result<std::int32_t>& result) {
    ASSERT_TRUE(result.has_value());
    mode_value = result.value();
  });
  kernel.run();

  EXPECT_EQ(negated, -123);
  EXPECT_EQ(mode_value, 41);

  std::optional<std::int32_t> adopted;
  proxy.get(TestService::mode).Set(7).then([&](const Result<std::int32_t>& result) {
    ASSERT_TRUE(result.has_value());
    adopted = result.value();
  });
  kernel.run();
  EXPECT_EQ(adopted, 7);
  EXPECT_EQ(skeleton.get(TestService::mode).value(), 7);
}

TEST_F(DescriptorEquivalence, FindResolvesOfferedInstances) {
  EXPECT_FALSE(Proxy<TestService>::find(client_rt, kTestInstance).has_value());
  Skeleton<TestService> skeleton(server_rt, kTestInstance);
  skeleton.OfferService();
  auto proxy = Proxy<TestService>::find(client_rt, kTestInstance);
  ASSERT_TRUE(proxy.has_value());
  EXPECT_EQ(proxy->server(), server_rt.endpoint());
}

TEST_F(DescriptorEquivalence, MismatchedInstanceIdentifierIsRejected) {
  Skeleton<TestService> skeleton(server_rt, kTestInstance);
  skeleton.OfferService();
  const net::Endpoint server = *client_rt.resolve({kTestService, kTestInstance});
  EXPECT_THROW(Proxy<brake::VideoAdapter>(client_rt, InstanceIdentifier{kTestService, 1}, server),
               std::logic_error);
}

}  // namespace
}  // namespace dear::ara
