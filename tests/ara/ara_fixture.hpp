// Shared simulation world for the ara::com tests: two runtimes (server,
// client) over a DES network, plus a small test service with methods, an
// event and a field.
#pragma once

#include <gtest/gtest.h>

#include "ara/event.hpp"
#include "ara/field.hpp"
#include "ara/method.hpp"
#include "ara/proxy.hpp"
#include "ara/runtime.hpp"
#include "ara/skeleton.hpp"
#include "dear/tag_codec.hpp"  // Empty codec
#include "net/sim_network.hpp"
#include "sim/sim_executor.hpp"

namespace dear::ara::testing {

inline constexpr someip::ServiceId kTestService = 0x0A0A;
inline constexpr someip::InstanceId kTestInstance = 1;
inline constexpr someip::MethodId kEchoMethod = 0x01;
inline constexpr someip::MethodId kAddMethod = 0x02;
inline constexpr someip::MethodId kSlowMethod = 0x03;
inline constexpr someip::EventId kTickEvent = 0x8001;
inline constexpr FieldIds kModeField{0x20, 0x21, 0x8020};

class TestSkeleton : public ServiceSkeleton {
 public:
  TestSkeleton(Runtime& runtime, MethodCallProcessingMode mode)
      : ServiceSkeleton(runtime, {kTestService, kTestInstance}, mode) {}

  SkeletonMethod<std::string, std::string> echo{*this, kEchoMethod};
  SkeletonMethod<std::int32_t, std::int32_t, std::int32_t> add{*this, kAddMethod};
  SkeletonMethod<std::int32_t, std::int32_t> slow{*this, kSlowMethod};
  SkeletonEvent<std::uint64_t> tick{*this, kTickEvent};
  SkeletonField<std::int32_t> mode{*this, kModeField};
};

class TestProxy : public ServiceProxy {
 public:
  TestProxy(Runtime& runtime, net::Endpoint server)
      : ServiceProxy(runtime, {kTestService, kTestInstance}, server) {}

  ProxyMethod<std::string, std::string> echo{*this, kEchoMethod};
  ProxyMethod<std::int32_t, std::int32_t, std::int32_t> add{*this, kAddMethod};
  ProxyMethod<std::int32_t, std::int32_t> slow{*this, kSlowMethod};
  ProxyEvent<std::uint64_t> tick{*this, kTickEvent};
  ProxyField<std::int32_t> mode{*this, kModeField};
};

class AraSimFixture : public ::testing::Test {
 protected:
  explicit AraSimFixture(MethodCallProcessingMode mode = MethodCallProcessingMode::kEvent)
      : skeleton_mode_(mode) {}

  void SetUp() override {
    skeleton = std::make_unique<TestSkeleton>(server_rt, skeleton_mode_);
    skeleton->echo.set_sync_handler([](const std::string& s) { return s; });
    skeleton->add.set_sync_handler(
        [](const std::int32_t& a, const std::int32_t& b) { return a + b; });
    skeleton->OfferService();
    proxy = std::make_unique<TestProxy>(client_rt,
                                        *client_rt.resolve({kTestService, kTestInstance}));
  }

  sim::Kernel kernel;
  net::SimNetwork network{kernel, common::Rng(3)};
  someip::ServiceDiscovery discovery;
  sim::SimExecutor executor{kernel, common::Rng(4)};
  Runtime server_rt{network, discovery, executor, {1, 100}, 0x01};
  Runtime client_rt{network, discovery, executor, {2, 200}, 0x02};
  MethodCallProcessingMode skeleton_mode_;
  std::unique_ptr<TestSkeleton> skeleton;
  std::unique_ptr<TestProxy> proxy;
};

}  // namespace dear::ara::testing
