#include <gtest/gtest.h>

#include "ara_fixture.hpp"

namespace dear::ara {
namespace {

using namespace dear::literals;
using testing::AraSimFixture;

struct EventFieldTest : AraSimFixture {};

TEST_F(EventFieldTest, SubscribeAndReceive) {
  std::vector<std::uint64_t> samples;
  proxy->tick.SetReceiveHandler([&](const std::uint64_t& v) { samples.push_back(v); });
  proxy->tick.Subscribe();
  kernel.run();
  EXPECT_EQ(skeleton->tick.subscriber_count(), 1u);
  skeleton->tick.Send(1);
  skeleton->tick.Send(2);
  kernel.run();
  // Dispatched handlers may be reordered by the runtime (nondeterminism
  // source 2 of the paper) — both samples arrive, order unspecified.
  std::sort(samples.begin(), samples.end());
  EXPECT_EQ(samples, (std::vector<std::uint64_t>{1, 2}));
}

TEST_F(EventFieldTest, ImmediateHandlerPreservesSendOrder) {
  std::vector<std::uint64_t> samples;
  proxy->tick.SetImmediateReceiveHandler(
      [&](const std::uint64_t& v) { samples.push_back(v); });
  proxy->tick.Subscribe();
  kernel.run();
  skeleton->tick.Send(1);
  skeleton->tick.Send(2);
  kernel.run();
  // Same-pair messages on the default link may still reorder in flight;
  // on the loopback-free default (node1->node2 jittered link) both orders
  // are possible, so only assert completeness here.
  std::sort(samples.begin(), samples.end());
  EXPECT_EQ(samples, (std::vector<std::uint64_t>{1, 2}));
}

TEST_F(EventFieldTest, UnsubscribeStopsDelivery) {
  int count = 0;
  proxy->tick.SetReceiveHandler([&](const std::uint64_t&) { ++count; });
  proxy->tick.Subscribe();
  kernel.run();
  proxy->tick.Unsubscribe();
  kernel.run();
  skeleton->tick.Send(1);
  kernel.run();
  EXPECT_EQ(count, 0);
  EXPECT_FALSE(proxy->tick.subscribed());
}

TEST_F(EventFieldTest, DispatchedHandlerRunsAfterDelivery) {
  // The default SetReceiveHandler goes through the runtime dispatcher.
  TimePoint handler_time = -1;
  proxy->tick.SetReceiveHandler([&](const std::uint64_t&) { handler_time = kernel.now(); });
  proxy->tick.Subscribe();
  kernel.run();
  const TimePoint sent_at = kernel.now();
  skeleton->tick.Send(9);
  kernel.run();
  EXPECT_GT(handler_time, sent_at);
}

TEST_F(EventFieldTest, ImmediateHandlerRunsOnReceivePath) {
  TimePoint handler_time = -1;
  proxy->tick.SetImmediateReceiveHandler(
      [&](const std::uint64_t&) { handler_time = kernel.now(); });
  proxy->tick.Subscribe();
  kernel.run();
  skeleton->tick.Send(9);
  kernel.run();
  EXPECT_GE(handler_time, 0);
  EXPECT_LE(handler_time, kernel.now());
}

TEST_F(EventFieldTest, EventsToTwoSubscribers) {
  Runtime client2_rt{network, discovery, executor, {3, 300}, 0x03};
  testing::TestProxy proxy2(client2_rt, *client2_rt.resolve({testing::kTestService, 1}));
  int count1 = 0;
  int count2 = 0;
  proxy->tick.SetReceiveHandler([&](const std::uint64_t&) { ++count1; });
  proxy->tick.Subscribe();
  proxy2.tick.SetReceiveHandler([&](const std::uint64_t&) { ++count2; });
  proxy2.tick.Subscribe();
  kernel.run();
  skeleton->tick.Send(5);
  kernel.run();
  EXPECT_EQ(count1, 1);
  EXPECT_EQ(count2, 1);
}

TEST_F(EventFieldTest, FieldGetBeforeSetIsError) {
  auto future = proxy->mode.Get();
  kernel.run();
  ASSERT_TRUE(future.is_ready());
  EXPECT_EQ(future.GetResult().error(), ComErrc::kRemoteError);
}

TEST_F(EventFieldTest, FieldUpdateThenGet) {
  skeleton->mode.Update(3);
  auto future = proxy->mode.Get();
  kernel.run();
  ASSERT_TRUE(future.is_ready());
  EXPECT_EQ(future.GetResult().value(), 3);
  EXPECT_EQ(skeleton->mode.value().value(), 3);
}

TEST_F(EventFieldTest, FieldSetAdoptsAndNotifies) {
  std::vector<std::int32_t> notifications;
  proxy->mode.notifier().SetReceiveHandler(
      [&](const std::int32_t& v) { notifications.push_back(v); });
  proxy->mode.notifier().Subscribe();
  kernel.run();
  auto future = proxy->mode.Set(9);
  kernel.run();
  EXPECT_EQ(future.GetResult().value(), 9);
  EXPECT_EQ(skeleton->mode.value().value(), 9);
  ASSERT_EQ(notifications.size(), 1u);
  EXPECT_EQ(notifications[0], 9);
}

TEST_F(EventFieldTest, FieldSetFilterClampsValue) {
  skeleton->mode.set_set_filter(
      [](const std::int32_t& v) { return v > 10 ? 10 : v; });
  auto future = proxy->mode.Set(99);
  kernel.run();
  EXPECT_EQ(future.GetResult().value(), 10);
  EXPECT_EQ(skeleton->mode.value().value(), 10);
}

TEST_F(EventFieldTest, FieldUpdateNotifiesSubscribers) {
  std::vector<std::int32_t> notifications;
  proxy->mode.notifier().SetReceiveHandler(
      [&](const std::int32_t& v) { notifications.push_back(v); });
  proxy->mode.notifier().Subscribe();
  kernel.run();
  skeleton->mode.Update(1);
  skeleton->mode.Update(2);
  kernel.run();
  // Handler dispatch order is unspecified; both updates arrive.
  std::sort(notifications.begin(), notifications.end());
  EXPECT_EQ(notifications, (std::vector<std::int32_t>{1, 2}));
}

}  // namespace
}  // namespace dear::ara
