#include "ara/method.hpp"

#include <gtest/gtest.h>

#include "ara_fixture.hpp"

namespace dear::ara {
namespace {

using namespace dear::literals;
using testing::AraSimFixture;

struct MethodTest : AraSimFixture {};

TEST_F(MethodTest, SyncHandlerRoundTrip) {
  auto future = proxy->echo(std::string("hello"));
  kernel.run();
  ASSERT_TRUE(future.is_ready());
  EXPECT_EQ(future.GetResult().value(), "hello");
}

TEST_F(MethodTest, MultiArgumentMethod) {
  auto future = proxy->add(20, 22);
  kernel.run();
  EXPECT_EQ(future.GetResult().value(), 42);
}

TEST_F(MethodTest, ManyConcurrentCallsAllComplete) {
  std::vector<Future<std::int32_t>> futures;
  for (std::int32_t i = 0; i < 50; ++i) {
    futures.push_back(proxy->add(i, 1000));
  }
  kernel.run();
  for (std::int32_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(futures[static_cast<std::size_t>(i)].is_ready());
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].GetResult().value(), i + 1000);
  }
}

TEST_F(MethodTest, AsyncHandlerResolvesLater) {
  Promise<std::int32_t> pending;
  skeleton->slow.set_handler([&pending](const std::int32_t&) { return pending.get_future(); });
  auto future = proxy->slow(1);
  kernel.run();
  EXPECT_FALSE(future.is_ready());  // the server's promise is still open
  pending.set_value(77);
  kernel.run();  // response transmission
  ASSERT_TRUE(future.is_ready());
  EXPECT_EQ(future.GetResult().value(), 77);
}

TEST_F(MethodTest, HandlerErrorBecomesRemoteError) {
  skeleton->slow.set_handler([](const std::int32_t&) {
    Promise<std::int32_t> promise;
    promise.SetError(ComErrc::kFieldValueNotSet);
    return promise.get_future();
  });
  auto future = proxy->slow(1);
  kernel.run();
  ASSERT_TRUE(future.is_ready());
  EXPECT_EQ(future.GetResult().error(), ComErrc::kRemoteError);
}

TEST_F(MethodTest, NoHandlerYieldsRemoteError) {
  auto future = proxy->slow(1);  // slow has no handler registered
  kernel.run();
  ASSERT_TRUE(future.is_ready());
  EXPECT_EQ(future.GetResult().error(), ComErrc::kRemoteError);
}

TEST_F(MethodTest, TimeoutWhenServerSilent) {
  skeleton->slow.set_handler([](const std::int32_t&) {
    return Promise<std::int32_t>().get_future();  // never resolves
  });
  proxy->set_call_timeout(20_ms);
  auto future = proxy->slow(1);
  kernel.run();
  ASSERT_TRUE(future.is_ready());
  EXPECT_EQ(future.GetResult().error(), ComErrc::kCommunicationTimeout);
}

TEST_F(MethodTest, MalformedArgumentsRejected) {
  // Call `add` (expects two i32) with a one-byte payload through the raw
  // binding.
  someip::ReturnCode code = someip::ReturnCode::kOk;
  client_rt.binding().call(server_rt.endpoint(), testing::kTestService, testing::kAddMethod,
                           {0x01},
                           [&](const someip::Message& r) { code = r.return_code; });
  kernel.run();
  EXPECT_EQ(code, someip::ReturnCode::kMalformedMessage);
}

TEST_F(MethodTest, ImmediateHandlerRunsOnReceivePath) {
  // With kEvent mode + SimExecutor jitter the dispatched handler runs
  // strictly later than packet delivery; an immediate handler runs at the
  // delivery instant. We verify by capturing kernel time in the handler
  // and comparing with the raw packet arrival time recorded by a probing
  // subscription to the same message flow.
  TimePoint handler_time = -1;
  skeleton->slow.set_immediate_handler([&](const std::int32_t&) {
    handler_time = kernel.now();
    return make_ready_future<std::int32_t>(0);
  });
  auto future = proxy->slow(1);
  kernel.run();
  ASSERT_TRUE(future.is_ready());
  // Immediate handler time equals network delivery time: below the default
  // inter-node latency bound (800us) — a dispatched handler would add the
  // executor jitter on top.
  EXPECT_GE(handler_time, 0);
  EXPECT_LE(handler_time, 800_us);
}

TEST_F(MethodTest, ResponsesMatchedBySession) {
  skeleton->slow.set_handler([this](const std::int32_t& v) {
    Promise<std::int32_t> promise;
    // Respond in reverse order: later calls complete first.
    kernel.schedule_after((10 - v) * 1_ms,
                          [promise, v]() mutable { promise.set_value(v * 100); });
    return promise.get_future();
  });
  std::vector<Future<std::int32_t>> futures;
  for (std::int32_t i = 0; i < 5; ++i) {
    futures.push_back(proxy->slow(i));
  }
  kernel.run();
  for (std::int32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].GetResult().value(), i * 100);
  }
}

}  // namespace
}  // namespace dear::ara
