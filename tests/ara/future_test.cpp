#include "ara/future.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace dear::ara {
namespace {

TEST(Result, ValueAndError) {
  const Result<int> ok(42);
  EXPECT_TRUE(ok.has_value());
  EXPECT_TRUE(static_cast<bool>(ok));
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(ok.error(), ComErrc::kOk);
  EXPECT_EQ(ok.value_or(-1), 42);

  const Result<int> bad(ComErrc::kRemoteError);
  EXPECT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error(), ComErrc::kRemoteError);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(Result, ErrorNames) {
  EXPECT_STREQ(to_string(ComErrc::kOk), "kOk");
  EXPECT_STREQ(to_string(ComErrc::kCommunicationTimeout), "kCommunicationTimeout");
  EXPECT_STREQ(to_string(ComErrc::kServiceNotAvailable), "kServiceNotAvailable");
}

TEST(Future, DefaultIsInvalid) {
  const Future<int> future;
  EXPECT_FALSE(future.valid());
}

TEST(Future, SetThenGet) {
  Promise<int> promise;
  Future<int> future = promise.get_future();
  EXPECT_TRUE(future.valid());
  EXPECT_FALSE(future.is_ready());
  promise.set_value(5);
  EXPECT_TRUE(future.is_ready());
  EXPECT_EQ(future.get(), 5);
  EXPECT_EQ(future.GetResult().value(), 5);
}

TEST(Future, SetError) {
  Promise<int> promise;
  Future<int> future = promise.get_future();
  promise.SetError(ComErrc::kCommunicationTimeout);
  EXPECT_TRUE(future.is_ready());
  EXPECT_FALSE(future.GetResult().has_value());
  EXPECT_EQ(future.GetResult().error(), ComErrc::kCommunicationTimeout);
  EXPECT_EQ(future.get(), 0);  // value-or-default on error
}

TEST(Future, DoubleSetIgnored) {
  Promise<int> promise;
  Future<int> future = promise.get_future();
  promise.set_value(1);
  promise.set_value(2);
  promise.SetError(ComErrc::kRemoteError);
  EXPECT_EQ(future.GetResult().value(), 1);
}

TEST(Future, ThenAfterReadyRunsInline) {
  Promise<std::string> promise;
  promise.set_value("hi");
  bool ran = false;
  promise.get_future().then([&](const Result<std::string>& result) {
    ran = true;
    EXPECT_EQ(result.value(), "hi");
  });
  EXPECT_TRUE(ran);
}

TEST(Future, ThenBeforeReadyRunsOnFulfill) {
  Promise<int> promise;
  Future<int> future = promise.get_future();
  int seen = 0;
  future.then([&](const Result<int>& result) { seen = result.value(); });
  EXPECT_EQ(seen, 0);
  promise.set_value(9);
  EXPECT_EQ(seen, 9);
}

TEST(Future, MultipleContinuationsAllFire) {
  Promise<int> promise;
  Future<int> future = promise.get_future();
  int count = 0;
  for (int i = 0; i < 5; ++i) {
    future.then([&](const Result<int>&) { ++count; });
  }
  promise.set_value(1);
  EXPECT_EQ(count, 5);
}

TEST(Future, WaitForTimesOut) {
  Promise<int> promise;
  Future<int> future = promise.get_future();
  EXPECT_FALSE(future.wait_for(std::chrono::milliseconds(5)));
  promise.set_value(1);
  EXPECT_TRUE(future.wait_for(std::chrono::milliseconds(5)));
}

TEST(Future, BlockingGetAcrossThreads) {
  Promise<int> promise;
  Future<int> future = promise.get_future();
  std::thread producer([promise]() mutable {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    promise.set_value(123);
  });
  EXPECT_EQ(future.get(), 123);
  producer.join();
}

TEST(Future, MakeReadyFuture) {
  const auto future = make_ready_future<int>(7);
  EXPECT_TRUE(future.is_ready());
  EXPECT_EQ(future.get(), 7);
}

TEST(Future, SharedStateOutlivesPromise) {
  Future<int> future;
  {
    Promise<int> promise;
    future = promise.get_future();
    promise.set_value(11);
  }
  EXPECT_EQ(future.get(), 11);
}

}  // namespace
}  // namespace dear::ara
