// Backend registry + deployment config, and the kNetworkBindingFailure
// regression: an instance deployed onto a backend kind that is not attached
// must surface the failure through the ara::com error domain instead of
// silently using the wrong transport.
#include <gtest/gtest.h>

#include <memory>

#include "ara/com/local_binding.hpp"
#include "ara/com/someip_binding.hpp"
#include "ara/event.hpp"
#include "ara/method.hpp"
#include "ara/proxy.hpp"
#include "ara/runtime.hpp"
#include "ara/skeleton.hpp"
#include "common/rng.hpp"
#include "net/sim_network.hpp"
#include "sim/sim_executor.hpp"

namespace dear::ara {
namespace {

using namespace dear::literals;

constexpr someip::ServiceId kService = 0x0E0E;
constexpr someip::InstanceId kInstance = 1;
constexpr someip::MethodId kAddMethod = 0x01;
constexpr someip::EventId kTickEvent = 0x8001;

class TestSkeleton : public ServiceSkeleton {
 public:
  explicit TestSkeleton(Runtime& runtime) : ServiceSkeleton(runtime, {kService, kInstance}) {}

  SkeletonMethod<std::int32_t, std::int32_t> add_one{*this, kAddMethod};
  SkeletonEvent<std::uint64_t> tick{*this, kTickEvent};
};

class TestProxy : public ServiceProxy {
 public:
  TestProxy(Runtime& runtime, net::Endpoint server)
      : ServiceProxy(runtime, {kService, kInstance}, server) {}

  ProxyMethod<std::int32_t, std::int32_t> add_one{*this, kAddMethod};
  ProxyEvent<std::uint64_t> tick{*this, kTickEvent};
};

struct RegistryWorld : public ::testing::Test {
  sim::Kernel kernel;
  net::SimNetwork network{kernel, common::Rng(5)};
  someip::ServiceDiscovery discovery;
  sim::ImmediateSimExecutor executor{kernel};
};

TEST_F(RegistryWorld, DeploymentConfigSelectsBackendPerInstance) {
  com::DeploymentConfig deployment;
  deployment.default_backend = com::BackendKind::kSomeIp;
  deployment.instance_backends[{0x10, 1}] = com::BackendKind::kLocal;

  EXPECT_EQ(deployment.backend_for({0x10, 1}), com::BackendKind::kLocal);
  EXPECT_EQ(deployment.backend_for({0x10, 2}), com::BackendKind::kSomeIp);
  EXPECT_EQ(deployment.backend_for({0x20, 1}), com::BackendKind::kSomeIp);
}

TEST_F(RegistryWorld, RegistryFindsAttachedBackends) {
  Runtime runtime(network, discovery, executor, {1, 100}, 0x01);
  EXPECT_TRUE(runtime.registry().has(com::BackendKind::kSomeIp));
  EXPECT_FALSE(runtime.registry().has(com::BackendKind::kLocal));
  EXPECT_EQ(runtime.binding().transport_name(), "someip");

  com::LocalHub hub;
  runtime.attach_backend(com::BackendKind::kLocal,
                         std::make_unique<com::LocalBinding>(hub, executor,
                                                             net::Endpoint{1, 101}, 0x01));
  EXPECT_TRUE(runtime.registry().has(com::BackendKind::kLocal));
  EXPECT_EQ(runtime.registry().size(), 2U);

  runtime.deploy({kService, kInstance}, com::BackendKind::kLocal);
  ASSERT_NE(runtime.binding_for({kService, kInstance}), nullptr);
  EXPECT_EQ(runtime.binding_for({kService, kInstance})->transport_name(), "local");
  EXPECT_EQ(runtime.binding_for({0x7070, 1})->transport_name(), "someip");
}

TEST_F(RegistryWorld, ReattachingABackendKindIsRejected) {
  // Proxies/skeletons cache raw binding pointers at construction;
  // replacing an attached backend would dangle them, so attach refuses.
  Runtime runtime(network, discovery, executor, {1, 100}, 0x01);
  com::LocalHub hub;
  EXPECT_THROW(runtime.attach_backend(
                   com::BackendKind::kSomeIp,
                   std::make_unique<com::LocalBinding>(hub, executor, net::Endpoint{1, 101}, 0x01)),
               std::logic_error);
}

TEST_F(RegistryWorld, MissingBackendYieldsNetworkBindingFailure) {
  Runtime server_rt(network, discovery, executor, {1, 100}, 0x01);
  Runtime client_rt(network, discovery, executor, {2, 200}, 0x02);

  TestSkeleton skeleton(server_rt);
  skeleton.add_one.set_sync_handler([](const std::int32_t& v) { return v + 1; });
  skeleton.OfferService();

  // The client deploys the instance onto the local transport — but never
  // attaches a local backend. The proxy must be transport-less.
  client_rt.deploy({kService, kInstance}, com::BackendKind::kLocal);
  TestProxy proxy(client_rt, *client_rt.resolve({kService, kInstance}));
  EXPECT_FALSE(proxy.has_binding());

  Future<std::int32_t> future = proxy.add_one(41);
  kernel.run_until(10_ms);
  ASSERT_TRUE(future.is_ready());
  const Result<std::int32_t> result = future.GetResult();
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error(), ComErrc::kNetworkBindingFailure);

  // Subscriptions on a transport-less proxy are inert, not crashes.
  proxy.tick.Subscribe();
  EXPECT_FALSE(proxy.tick.subscribed());
}

TEST_F(RegistryWorld, TransportLessSkeletonCannotOffer) {
  Runtime server_rt(network, discovery, executor, {1, 100}, 0x01);
  server_rt.deploy({kService, kInstance}, com::BackendKind::kLocal);  // not attached

  TestSkeleton skeleton(server_rt);
  EXPECT_FALSE(skeleton.has_binding());
  skeleton.OfferService();
  EXPECT_FALSE(skeleton.offered());
  EXPECT_FALSE(server_rt.resolve({kService, kInstance}).has_value());
}

TEST_F(RegistryWorld, EndToEndOverLocalBackend) {
  // Bring-your-own-backend runtimes: a complete proxy/skeleton method and
  // event round trip that never touches the network.
  com::LocalHub hub;
  Runtime server_rt(discovery, executor, com::BackendKind::kLocal,
                    std::make_unique<com::LocalBinding>(hub, executor,
                                                        net::Endpoint{1, 100}, 0x01));
  Runtime client_rt(discovery, executor, com::BackendKind::kLocal,
                    std::make_unique<com::LocalBinding>(hub, executor,
                                                        net::Endpoint{2, 200}, 0x02));

  TestSkeleton skeleton(server_rt);
  skeleton.add_one.set_sync_handler([](const std::int32_t& v) { return v + 1; });
  skeleton.OfferService();

  TestProxy proxy(client_rt, *client_rt.resolve({kService, kInstance}));
  ASSERT_TRUE(proxy.has_binding());
  EXPECT_EQ(proxy.binding()->transport_name(), "local");

  std::uint64_t ticks = 0;
  proxy.tick.SetImmediateReceiveHandler([&](const std::uint64_t& value) { ticks = value; });
  proxy.tick.Subscribe();
  kernel.run_until(1_ms);

  Future<std::int32_t> future = proxy.add_one(41);
  kernel.run_until(10_ms);
  ASSERT_TRUE(future.is_ready());
  EXPECT_EQ(future.GetResult().value(), 42);

  skeleton.tick.Send(7);
  kernel.run_until(20_ms);
  EXPECT_EQ(ticks, 7U);
  EXPECT_EQ(network.packets_sent(), 0U);  // nothing ever hit the wire
}

}  // namespace
}  // namespace dear::ara
