#include <gtest/gtest.h>

#include "ara_fixture.hpp"

namespace dear::ara {
namespace {

using testing::AraSimFixture;

struct PollModeTest : AraSimFixture {
  PollModeTest() : AraSimFixture(MethodCallProcessingMode::kPoll) {}
};

TEST_F(PollModeTest, CallsQueueUntilProcessed) {
  std::vector<Future<std::int32_t>> futures;
  for (std::int32_t i = 0; i < 3; ++i) {
    futures.push_back(proxy->add(i, 0));
  }
  kernel.run();
  // Requests arrived but nothing processed yet.
  EXPECT_EQ(skeleton->pending_method_calls(), 3u);
  for (const auto& future : futures) {
    EXPECT_FALSE(future.is_ready());
  }
  // The application drains the queue explicitly. Exactly one call (in
  // network arrival order, which jitter may permute) completes per
  // ProcessNextMethodCall.
  EXPECT_TRUE(skeleton->ProcessNextMethodCall());
  kernel.run();
  const auto ready_count = [&] {
    int count = 0;
    for (const auto& future : futures) {
      if (future.is_ready()) {
        ++count;
      }
    }
    return count;
  };
  EXPECT_EQ(ready_count(), 1);
  while (skeleton->ProcessNextMethodCall()) {
  }
  kernel.run();
  EXPECT_EQ(ready_count(), 3);
  EXPECT_FALSE(skeleton->ProcessNextMethodCall());
}

TEST_F(PollModeTest, PollProcessesInArrivalOrder) {
  std::vector<std::int32_t> processed;
  skeleton->slow.set_handler([&](const std::int32_t& v) {
    processed.push_back(v);
    return make_ready_future<std::int32_t>(v);
  });
  for (std::int32_t i = 0; i < 5; ++i) {
    (void)proxy->slow(i);
  }
  kernel.run();
  while (skeleton->ProcessNextMethodCall()) {
  }
  // Arrival order may differ from send order (network jitter), but the
  // poll queue preserves whatever order arrived.
  EXPECT_EQ(processed.size(), 5u);
}

struct SingleThreadModeTest : AraSimFixture {
  SingleThreadModeTest() : AraSimFixture(MethodCallProcessingMode::kEventSingleThread) {}
};

TEST_F(SingleThreadModeTest, AllCallsComplete) {
  std::vector<Future<std::int32_t>> futures;
  for (std::int32_t i = 0; i < 20; ++i) {
    futures.push_back(proxy->add(i, 1));
  }
  kernel.run();
  for (std::int32_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(futures[static_cast<std::size_t>(i)].is_ready());
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].GetResult().value(), i + 1);
  }
}

struct EventModeTest : AraSimFixture {};

TEST_F(EventModeTest, DispatchJitterCanReorderHandlers) {
  // The kEvent mode posts one task per call; with jitter, processing order
  // differs from arrival order for some seeds — the Figure 1 effect.
  bool reorder_seen = false;
  for (std::uint64_t seed = 0; seed < 32 && !reorder_seen; ++seed) {
    sim::Kernel local_kernel;
    net::SimNetwork local_net(local_kernel, common::Rng(seed));
    someip::ServiceDiscovery local_sd;
    sim::SimExecutor local_exec(local_kernel, common::Rng(seed ^ 0x55),
                                sim::ExecTimeModel::uniform(0, kMillisecond));
    Runtime server(local_net, local_sd, local_exec, {1, 100}, 0x01);
    Runtime client(local_net, local_sd, local_exec, {2, 200}, 0x02);
    testing::TestSkeleton skel(server, MethodCallProcessingMode::kEvent);
    std::vector<std::int32_t> processed;
    skel.slow.set_handler([&](const std::int32_t& v) {
      processed.push_back(v);
      return make_ready_future<std::int32_t>(v);
    });
    skel.OfferService();
    testing::TestProxy prox(client, *client.resolve({testing::kTestService, 1}));
    for (std::int32_t i = 0; i < 6; ++i) {
      (void)prox.slow(i);
    }
    local_kernel.run();
    ASSERT_EQ(processed.size(), 6u);
    if (!std::is_sorted(processed.begin(), processed.end())) {
      reorder_seen = true;
    }
  }
  EXPECT_TRUE(reorder_seen) << "kEvent dispatch should be order-unstable under jitter";
}

}  // namespace
}  // namespace dear::ara
