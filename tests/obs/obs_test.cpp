// Observability registry tests: snapshot merge determinism across worker
// counts, ring wraparound, report/trace JSON well-formedness, and the
// recording-path gating semantics.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "obs/histogram.hpp"
#include "scenario/presets.hpp"
#include "scenario/runner.hpp"

namespace dear::obs {
namespace {

/// Minimal JSON well-formedness checker (structure only, no data model):
/// enough to catch unbalanced braces, broken strings, and trailing commas
/// in the hand-rolled serializers.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) {
      return false;
    }
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  [[nodiscard]] bool value() {
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  [[nodiscard]] bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (consume('}')) {
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) {
        return false;
      }
      skip_ws();
      if (!consume(':')) {
        return false;
      }
      skip_ws();
      if (!value()) {
        return false;
      }
      skip_ws();
      if (consume('}')) {
        return true;
      }
      if (!consume(',')) {
        return false;
      }
    }
  }

  [[nodiscard]] bool array() {
    ++pos_;  // '['
    skip_ws();
    if (consume(']')) {
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) {
        return false;
      }
      skip_ws();
      if (consume(']')) {
        return true;
      }
      if (!consume(',')) {
        return false;
      }
    }
  }

  [[nodiscard]] bool string() {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      ++pos_;
      if (c == '"') {
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] bool number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    return pos_ > start;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return false;
    }
    pos_ += word.size();
    return true;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_{0};
};

/// Every test starts and leaves the process in the at-rest state:
/// metrics off, spans masked off, all cells zero.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::instance().set_metrics_enabled(false);
    Registry::instance().set_span_mask(0);
    Registry::instance().set_ring_capacity(Registry::kDefaultRingCapacity);
    Registry::instance().reset();
  }
  void TearDown() override { SetUp(); }
};

TEST_F(ObsTest, DisabledCountIsInvisible) {
  count(Counter::kCampaignScenarios, 5);
  EXPECT_EQ(Registry::instance().counter_total(Counter::kCampaignScenarios), 0u);
}

TEST_F(ObsTest, EnabledCountLandsInSnapshot) {
  Registry::instance().set_metrics_enabled(true);
  count(Counter::kCampaignScenarios, 3);
  count(Counter::kCampaignScenarios);
  gauge_max(Gauge::kSchedQueueDepthPeak, 7);
  gauge_max(Gauge::kSchedQueueDepthPeak, 4);  // below the peak: no effect
  observe(Hist::kSchedLevelWidth, 2.0);
  const Snapshot snap = Registry::instance().snapshot();
  EXPECT_EQ(snap.counter(Counter::kCampaignScenarios), 4u);
  EXPECT_EQ(snap.gauge(Gauge::kSchedQueueDepthPeak), 7u);
  EXPECT_EQ(snap.histogram(Hist::kSchedLevelWidth).total(), 1u);
}

TEST_F(ObsTest, CountAlwaysIgnoresTheGate) {
  count_always(Counter::kPoolSmallShelfLocks, 2);
  EXPECT_EQ(Registry::instance().counter_total(Counter::kPoolSmallShelfLocks), 2u);
}

TEST_F(ObsTest, RetiredThreadCountsFoldIntoTotals) {
  Registry::instance().set_metrics_enabled(true);
  std::thread worker([] { count(Counter::kSimEventsProcessed, 41); });
  worker.join();
  EXPECT_EQ(Registry::instance().counter_total(Counter::kSimEventsProcessed), 41u);
  const Snapshot snap = Registry::instance().snapshot();
  EXPECT_EQ(snap.counter(Counter::kSimEventsProcessed), 41u);
}

/// The PR 8 merge-determinism contract: every `logical` catalog metric is
/// a pure function of the campaign and its seeds, so running the same
/// campaign at 1, 2, and 4 workers must fold to identical totals no
/// matter which threads the increments landed on.
TEST_F(ObsTest, LogicalCountersAreWorkerCountInvariant) {
  const auto run_at = [](std::size_t workers) {
    Registry::instance().reset();
    Registry::instance().set_metrics_enabled(true);
    scenario::RunnerOptions options;
    options.workers = workers;
    const auto report =
        scenario::CampaignRunner(options).run(scenario::presets::throughput(8, 40, 1));
    EXPECT_TRUE(report.invariants_ok());
    Snapshot snap = Registry::instance().snapshot();
    Registry::instance().set_metrics_enabled(false);
    return snap;
  };

  const Snapshot one = run_at(1);
  const Snapshot two = run_at(2);
  const Snapshot four = run_at(4);

  for (std::size_t i = 0; i < kCounterCount; ++i) {
    if (!kCounterDefs[i].logical) {
      continue;
    }
    EXPECT_EQ(one.counters[i], two.counters[i]) << "counter " << kCounterDefs[i].name;
    EXPECT_EQ(one.counters[i], four.counters[i]) << "counter " << kCounterDefs[i].name;
  }
  for (std::size_t g = 0; g < kGaugeCount; ++g) {
    if (!kGaugeDefs[g].logical) {
      continue;
    }
    EXPECT_EQ(one.gauges[g], two.gauges[g]) << "gauge " << kGaugeDefs[g].name;
    EXPECT_EQ(one.gauges[g], four.gauges[g]) << "gauge " << kGaugeDefs[g].name;
  }
  for (std::size_t h = 0; h < kHistCount; ++h) {
    if (!kHistDefs[h].logical) {
      continue;
    }
    const auto hist = static_cast<Hist>(h);
    EXPECT_EQ(one.histogram(hist).total(), two.histogram(hist).total())
        << "hist " << kHistDefs[h].name;
    EXPECT_EQ(one.histogram(hist).total(), four.histogram(hist).total())
        << "hist " << kHistDefs[h].name;
  }
  // A sanity floor: the campaign actually produced traffic to compare.
  EXPECT_GT(one.counter(Counter::kSimEventsProcessed), 0u);
  EXPECT_GT(one.counter(Counter::kSchedReactionsExecuted), 0u);
}

TEST_F(ObsTest, RingWrapsAndKeepsTheTotalCount) {
  Registry::instance().set_ring_capacity(8);
  Registry::instance().set_span_mask(kAllSpansMask);
  for (int i = 0; i < 20; ++i) {
    SpanScope span(SpanCategory::kScenario, "wrap-test");
  }
  const Snapshot snap = Registry::instance().snapshot();
  EXPECT_EQ(snap.spans_recorded, 20u);
  EXPECT_EQ(snap.spans_retained, 8u);
}

TEST_F(ObsTest, MaskedCategoryRecordsNothing) {
  Registry::instance().set_span_mask(category_bit(SpanCategory::kScenario));
  {
    SpanScope masked(SpanCategory::kReaction, "masked");
    EXPECT_FALSE(masked.active());
    SpanScope live(SpanCategory::kScenario, "live");
    EXPECT_TRUE(live.active());
  }
  const Snapshot snap = Registry::instance().snapshot();
  EXPECT_EQ(snap.spans_recorded, 1u);
}

TEST_F(ObsTest, ChromeTraceJsonIsWellFormed) {
  Registry::instance().set_span_mask(kAllSpansMask);
  { SpanScope span(SpanCategory::kCampaign, "campaign \"quoted\""); }
  { SpanScope span(SpanCategory::kScenario, "scenario-a", 1'000, 2, 3, 17); }
  { SpanScope span(SpanCategory::kLevel, "level", 1'000, 0, 1, 4); }
  const std::string trace = Registry::instance().chrome_trace_json();
  JsonChecker checker(trace);
  EXPECT_TRUE(checker.valid()) << trace;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"M\""), std::string::npos);  // thread_name metadata
  EXPECT_NE(trace.find("scenario-a"), std::string::npos);
  EXPECT_NE(trace.find("\\\"quoted\\\""), std::string::npos);  // escaped name
}

TEST_F(ObsTest, MetricsReportJsonIsWellFormed) {
  Registry::instance().set_metrics_enabled(true);
  count(Counter::kSomeipMsgsSent, 12);
  observe(Hist::kSchedLevelWidth, 1.0);
  observe(Hist::kSchedLevelWidth, 3.0);
  const std::string json = Registry::instance().snapshot().to_json();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json;
  EXPECT_NE(json.find("\"schema\": \"metrics-report-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"someip.msgs_sent\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"sched.level_width\""), std::string::npos);
}

TEST_F(ObsTest, ParseSpanMaskCoversTheVocabulary) {
  std::uint32_t mask = 0;
  EXPECT_TRUE(parse_span_mask("default", mask));
  EXPECT_EQ(mask, kDefaultSpanMask);
  EXPECT_TRUE(parse_span_mask("", mask));
  EXPECT_EQ(mask, kDefaultSpanMask);
  EXPECT_TRUE(parse_span_mask("all", mask));
  EXPECT_EQ(mask, kAllSpansMask);
  EXPECT_TRUE(parse_span_mask("none", mask));
  EXPECT_EQ(mask, 0u);
  EXPECT_TRUE(parse_span_mask("scenario,level", mask));
  EXPECT_EQ(mask, category_bit(SpanCategory::kScenario) | category_bit(SpanCategory::kLevel));
  EXPECT_FALSE(parse_span_mask("scenario,bogus", mask));
}

TEST_F(ObsTest, ResetClearsRetiredAndLiveCells) {
  Registry::instance().set_metrics_enabled(true);
  count(Counter::kNetPacketsSent, 9);
  std::thread worker([] { count(Counter::kNetPacketsSent, 5); });
  worker.join();
  EXPECT_EQ(Registry::instance().counter_total(Counter::kNetPacketsSent), 14u);
  Registry::instance().reset();
  EXPECT_EQ(Registry::instance().counter_total(Counter::kNetPacketsSent), 0u);
  EXPECT_EQ(Registry::instance().snapshot().spans_recorded, 0u);
}

TEST(ObsHistogram, BucketEdgesAndQuantiles) {
  EXPECT_EQ(Histogram::bucket_of(0.0, 10.0, 10, -0.5), -1);
  EXPECT_EQ(Histogram::bucket_of(0.0, 10.0, 10, 0.0), 0);
  EXPECT_EQ(Histogram::bucket_of(0.0, 10.0, 10, 9.999), 9);
  EXPECT_EQ(Histogram::bucket_of(0.0, 10.0, 10, 10.0), 10);

  Histogram hist(0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) {
    hist.add(static_cast<double>(i));
  }
  EXPECT_EQ(hist.total(), 100u);
  EXPECT_NEAR(hist.quantile(0.5), 50.0, 10.0);
  EXPECT_NEAR(hist.quantile(0.99), 99.0, 10.0);

  Histogram other(0.0, 100.0, 10);
  other.add(1000.0);  // overflow
  hist.merge(other);
  EXPECT_EQ(hist.total(), 101u);
  EXPECT_EQ(hist.overflow(), 1u);
  EXPECT_THROW(hist.merge(Histogram(0.0, 50.0, 10)), std::invalid_argument);
}

}  // namespace
}  // namespace dear::obs
