// End-to-end timing analysis: chain extraction over synthetic fact
// tables (each DEAR-LAT rule firing and staying quiet), plus the real
// workloads, whose chain numbers are exact by construction — the DEAR
// timing model makes logical latency a plain sum of per-hop D + L + E.
#include "analysis/timing.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/analyzer.hpp"
#include "scenario/spec.hpp"

namespace dear::analysis {
namespace {

using namespace dear::literals;
using scenario::ScenarioSpec;
using scenario::Workload;

std::size_t count_rule(const std::vector<Diagnostic>& diagnostics, Rule rule) {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [rule](const Diagnostic& d) { return d.rule == rule; }));
}

ReactionFact reaction(std::string node, std::string fqn, int level, bool entry,
                      Duration deadline = 0, Duration wcet = 0) {
  ReactionFact fact;
  fact.node = std::move(node);
  fact.fqn = std::move(fqn);
  fact.level = level;
  fact.entry = entry;
  fact.deadline = deadline;
  fact.wcet = wcet;
  return fact;
}

ChannelFact channel(std::string member, std::string server, std::string client,
                    Duration deadline, Duration latency_bound, Duration clock_error = 0) {
  ChannelFact fact;
  fact.member = std::move(member);
  fact.server_node = std::move(server);
  fact.client_node = std::move(client);
  fact.deadline = deadline;
  fact.latency_bound = latency_bound;
  fact.clock_error = clock_error;
  return fact;
}

/// source --x--> mid --y--> sink, budget declared on mid's member y.
Facts two_hop_facts(Duration budget) {
  Facts facts;
  facts.workload = "synthetic";
  facts.level_count = 1;
  facts.reactions.push_back(reaction("source", "source/emit", 0, true, 5_ms, 1_ms));
  facts.reactions.push_back(reaction("mid", "mid/process", 0, false, 10_ms, 4_ms));
  facts.reactions.push_back(reaction("sink", "sink/consume", 0, false, 5_ms, 1_ms));
  facts.channels.push_back(channel("Iface.x", "source", "mid", 5_ms, 3_ms, 1_ms));
  facts.channels.push_back(channel("Iface.y", "mid", "sink", 10_ms, 3_ms, 2_ms));
  facts.budgets.push_back(BudgetFact{"Iface.y", "mid", budget});
  return facts;
}

TEST(Timing, ChainLatencyIsTheSumOfHops) {
  const Facts facts = two_hop_facts(/*budget=*/30_ms);
  const TimingAnalysis timing = analyze_timing(facts);
  ASSERT_EQ(timing.chains.size(), 1U);
  const ChainBound& chain = timing.chains.front();
  EXPECT_EQ(chain.source, "source");
  EXPECT_EQ(chain.sink, "sink");
  ASSERT_EQ(chain.path.size(), 3U);
  EXPECT_EQ(chain.path[0], "source");
  EXPECT_EQ(chain.path[1], "mid");
  EXPECT_EQ(chain.path[2], "sink");
  // (5 + 3 + 1) + (10 + 3 + 2) ms — each hop is D + L + E.
  EXPECT_EQ(chain.logical_latency, 24_ms);
  EXPECT_EQ(chain.critical_path_wcet, 6_ms);
  EXPECT_EQ(chain.budget, 30_ms);
}

TEST(Timing, BudgetExceededFiresLat001) {
  const Facts facts = two_hop_facts(/*budget=*/20_ms);  // chain needs 24 ms
  const TimingAnalysis timing = analyze_timing(facts);
  std::vector<Diagnostic> diagnostics;
  check_timing(facts, timing, /*workers=*/4, diagnostics);
  ASSERT_EQ(count_rule(diagnostics, Rule::kChainBudgetExceeded), 1U);
  for (const Diagnostic& d : diagnostics) {
    if (d.rule == Rule::kChainBudgetExceeded) {
      EXPECT_EQ(d.subject, "Iface.y");
      EXPECT_NE(d.message.find("source->mid->sink"), std::string::npos) << d.message;
      EXPECT_EQ(d.severity, Severity::kWarning);
    }
  }
}

TEST(Timing, BudgetWithHeadroomIsClean) {
  const Facts facts = two_hop_facts(/*budget=*/24_ms);  // exactly met: <= passes
  const TimingAnalysis timing = analyze_timing(facts);
  std::vector<Diagnostic> diagnostics;
  check_timing(facts, timing, /*workers=*/4, diagnostics);
  EXPECT_EQ(count_rule(diagnostics, Rule::kChainBudgetExceeded), 0U);
  EXPECT_EQ(count_rule(diagnostics, Rule::kUnreachableBudgetSink), 0U);
}

TEST(Timing, UnreachableBudgetFiresLat004) {
  Facts facts = two_hop_facts(/*budget=*/30_ms);
  // A budget on a node no tagged chain reaches (nothing connects to it).
  facts.reactions.push_back(reaction("island", "island/idle", 0, false));
  facts.budgets.push_back(BudgetFact{"Island.out", "island", 10_ms});
  const TimingAnalysis timing = analyze_timing(facts);
  std::vector<Diagnostic> diagnostics;
  check_timing(facts, timing, /*workers=*/4, diagnostics);
  ASSERT_EQ(count_rule(diagnostics, Rule::kUnreachableBudgetSink), 1U);
  for (const Diagnostic& d : diagnostics) {
    if (d.rule == Rule::kUnreachableBudgetSink) {
      EXPECT_EQ(d.subject, "Island.out");
      EXPECT_NE(d.message.find("island"), std::string::npos);
    }
  }
}

TEST(Timing, CriticalPathOverDeadlineFiresLat002) {
  Facts facts = two_hop_facts(/*budget=*/30_ms);
  // Chain two costed reactions on "mid": 4 + 7 = 11 ms critical path
  // against mid's tightest 10 ms deadline.
  ReactionFact second = reaction("mid", "mid/postprocess", 1, false, 10_ms, 7_ms);
  second.depends_on.push_back(1);  // mid/process
  facts.reactions.push_back(std::move(second));
  const TimingAnalysis timing = analyze_timing(facts);
  const NodeTiming* mid = timing.find_node("mid");
  ASSERT_NE(mid, nullptr);
  EXPECT_EQ(mid->critical_path_wcet, 11_ms);
  EXPECT_EQ(mid->tightest_deadline, 10_ms);
  std::vector<Diagnostic> diagnostics;
  check_timing(facts, timing, /*workers=*/4, diagnostics);
  ASSERT_EQ(count_rule(diagnostics, Rule::kChainWcetExceedsDeadline), 1U);
  for (const Diagnostic& d : diagnostics) {
    if (d.rule == Rule::kChainWcetExceedsDeadline) {
      EXPECT_EQ(d.subject, "mid");
      EXPECT_EQ(d.severity, Severity::kError);
    }
  }
}

TEST(Timing, CrossNodeDependenciesStayOffTheCriticalPath) {
  Facts facts = two_hop_facts(/*budget=*/30_ms);
  // sink/consume depending on source/emit (cross-node) must not fold the
  // source's WCET into the sink's intra-node critical path.
  facts.reactions[2].depends_on.push_back(0);
  const TimingAnalysis timing = analyze_timing(facts);
  const NodeTiming* sink = timing.find_node("sink");
  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(sink->critical_path_wcet, 1_ms);
}

TEST(Timing, WideLevelFiresLat003OnlyBelowTheWorkerCount) {
  Facts facts;
  facts.workload = "synthetic";
  facts.level_count = 1;
  facts.reactions.push_back(reaction("node", "node/a", 0, true));
  facts.reactions.push_back(reaction("node", "node/b", 0, false));
  facts.reactions.push_back(reaction("node", "node/c", 0, false));
  const TimingAnalysis timing = analyze_timing(facts);
  std::vector<Diagnostic> sequentialized;
  check_timing(facts, timing, /*workers=*/2, sequentialized);
  ASSERT_EQ(count_rule(sequentialized, Rule::kLevelWidthOverWorkers), 1U);
  EXPECT_EQ(rule_severity(Rule::kLevelWidthOverWorkers), Severity::kNote);
  std::vector<Diagnostic> wide_enough;
  check_timing(facts, timing, /*workers=*/3, wide_enough);
  EXPECT_EQ(count_rule(wide_enough, Rule::kLevelWidthOverWorkers), 0U);
}

TEST(Timing, UntaggedChannelsFormNoChain) {
  Facts facts = two_hop_facts(/*budget=*/30_ms);
  for (ChannelFact& fact : facts.channels) {
    fact.tagged = false;
  }
  const TimingAnalysis timing = analyze_timing(facts);
  EXPECT_TRUE(timing.chains.empty());
  std::vector<Diagnostic> diagnostics;
  check_timing(facts, timing, /*workers=*/4, diagnostics);
  EXPECT_EQ(count_rule(diagnostics, Rule::kUnreachableBudgetSink), 1U);
}

// --- the real workloads ------------------------------------------------------
// The numbers below are *exact*: per-hop latency is the configured
// D + L + E, so the brake chain is 5+5 + 25+5 + 25+5 = 70 ms against the
// EBA descriptor's 80 ms budget (paper §IV.B deadlines).

ScenarioSpec spec_for(Workload workload) {
  ScenarioSpec spec;
  spec.workload = workload;
  return spec;
}

Report timed_report(Workload workload) {
  AnalyzeOptions options;
  options.timing = true;
  options.workers = 2;
  return analyze_spec(spec_for(workload), options);
}

TEST(Timing, BrakeChainMatchesThePaperLatency) {
  const Report report = timed_report(Workload::kBrakeDear);
  ASSERT_TRUE(report.timing_evaluated);
  ASSERT_EQ(report.timing.chains.size(), 1U);
  const ChainBound& chain = report.timing.chains.front();
  ASSERT_EQ(chain.path.size(), 4U);
  EXPECT_EQ(chain.path.front(), "adapter");
  EXPECT_EQ(chain.path.back(), "eba");
  EXPECT_EQ(chain.logical_latency, 70_ms);
  EXPECT_EQ(chain.budget, 80_ms);
  EXPECT_EQ(report.error_count(), 0U) << "default knobs keep every LAT rule quiet";
}

TEST(Timing, AccChainsFanOutToBothSubscribers) {
  const Report report = timed_report(Workload::kAcc);
  ASSERT_TRUE(report.timing_evaluated);
  // One budget on AccController.command, two subscribers (actuator and
  // console): two chains, same latency, same budget.
  ASSERT_EQ(report.timing.chains.size(), 2U);
  for (const ChainBound& chain : report.timing.chains) {
    EXPECT_EQ(chain.source, "radar");
    EXPECT_EQ(chain.logical_latency, 50_ms);
    EXPECT_EQ(chain.budget, 60_ms);
  }
}

TEST(Timing, TimedReportCarriesTimingAndPlanJson) {
  const Report report = timed_report(Workload::kBrakeDear);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"timing\""), std::string::npos);
  EXPECT_NE(json.find("\"plan_digest\""), std::string::npos);
  EXPECT_NE(json.find("\"chains\""), std::string::npos);
  EXPECT_NE(json.find("\"logical_latency_ns\": 70000000"), std::string::npos);
  // Without --timing the report is byte-identical to the PR 6 schema.
  const std::string plain = analyze_spec(spec_for(Workload::kBrakeDear)).to_json();
  EXPECT_EQ(plain.find("\"timing\""), std::string::npos);
  EXPECT_EQ(plain.find("\"plan_digest\""), std::string::npos);
}

TEST(Timing, TightenedDeadlinesFireTheChainRuleButNotTheStructuralGate) {
  ScenarioSpec spec = spec_for(Workload::kBrakeDear);
  spec.deadline_scale = 0.1;
  AnalyzeOptions options;
  options.timing = true;
  const Report report = analyze_spec(spec, options);
  std::size_t lat002 = 0;
  for (const Diagnostic& d : report.diagnostics) {
    lat002 += d.rule == Rule::kChainWcetExceedsDeadline ? 1 : 0;
  }
  EXPECT_GT(lat002, 0U);
  EXPECT_FALSE(report.deterministic());
  EXPECT_TRUE(report.verdict_matches());
}

}  // namespace
}  // namespace dear::analysis
