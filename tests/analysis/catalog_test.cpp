// The rule catalog has three authoritative surfaces: the Rule enum (via
// kAllRules), `dear_lint --list-rules`, and the table in
// docs/static_analysis.md. The CLI iterates kAllRules directly, so this
// test pins the remaining pair: every documented rule exists with the
// documented severity, and every implemented rule is documented.
#include <gtest/gtest.h>

#include <cstddef>
#include <fstream>
#include <iterator>
#include <map>
#include <sstream>
#include <string>

#include "analysis/diagnostics.hpp"

namespace dear::analysis {
namespace {

/// Parses the "| `DEAR-XXX-NNN` | severity | ..." rows of the rule
/// catalog table in docs/static_analysis.md.
std::map<std::string, std::string> documented_rules() {
  std::ifstream in(DEAR_DOCS_DIR "/static_analysis.md");
  EXPECT_TRUE(in.is_open()) << "cannot read " DEAR_DOCS_DIR "/static_analysis.md";
  std::map<std::string, std::string> rules;
  std::string line;
  while (std::getline(in, line)) {
    const std::string prefix = "| `DEAR-";
    if (line.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    const std::size_t id_end = line.find('`', prefix.size());
    if (id_end == std::string::npos) {
      continue;
    }
    const std::string id = line.substr(3, id_end - 3);
    std::size_t severity_begin = line.find('|', id_end);
    if (severity_begin == std::string::npos) {
      continue;
    }
    severity_begin += 2;  // "| "
    const std::size_t severity_end = line.find(' ', severity_begin);
    rules[id] = line.substr(severity_begin, severity_end - severity_begin);
  }
  return rules;
}

TEST(Catalog, DocsTableMatchesTheImplementedCatalog) {
  const auto documented = documented_rules();
  ASSERT_EQ(documented.size(), std::size(kAllRules))
      << "docs/static_analysis.md documents a different number of rules than "
         "kAllRules implements";
  for (const Rule rule : kAllRules) {
    const std::string id(rule_id(rule));
    const auto it = documented.find(id);
    ASSERT_NE(it, documented.end()) << id << " is implemented but not documented";
    EXPECT_EQ(it->second, std::string(to_string(rule_severity(rule))))
        << id << " severity drifted between code and docs";
  }
}

TEST(Catalog, EveryRuleHasIdSeverityAndSummary) {
  for (const Rule rule : kAllRules) {
    EXPECT_FALSE(rule_id(rule).empty());
    EXPECT_FALSE(rule_summary(rule).empty());
    EXPECT_FALSE(to_string(rule_severity(rule)).empty());
    // IDs follow the DEAR-<CLASS>-<NNN> convention.
    EXPECT_EQ(rule_id(rule).substr(0, 5), "DEAR-");
  }
}

TEST(Catalog, RuleIdsAreUnique) {
  for (std::size_t i = 0; i < std::size(kAllRules); ++i) {
    for (std::size_t k = i + 1; k < std::size(kAllRules); ++k) {
      EXPECT_NE(rule_id(kAllRules[i]), rule_id(kAllRules[k]));
    }
  }
}

}  // namespace
}  // namespace dear::analysis
