// AppBuilder::validate() — the pre-flight entry point of the static
// verifier: a clean application yields a report, a defective one throws
// AnalysisError carrying the diagnostics (and the rule IDs in what()).
#include "dear/app_builder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analysis/report.hpp"
#include "net/sim_network.hpp"
#include "sim/sim_executor.hpp"

namespace dear {
namespace {

using namespace dear::literals;

class Target final : public reactor::Reactor {
 public:
  reactor::Input<int> in{"in", this};

  explicit Target(reactor::Environment& env) : Reactor("target", env) {
    add_reaction("consume", [] {}).triggered_by(in);
  }
};

class Writer final : public reactor::Reactor {
 public:
  Writer(reactor::Environment& env, std::string name, Target& target)
      : Reactor(std::move(name), env), timer_("timer", this, 10_ms) {
    add_reaction("write", [] {}).triggered_by(timer_).writes(target.in);
  }

 private:
  reactor::Timer timer_;
};

struct ValidateTest : ::testing::Test {
  sim::Kernel kernel;
  common::Rng rng{1};
  net::SimNetwork network{kernel, rng.stream("net")};
  someip::ServiceDiscovery discovery;
  sim::SimExecutor executor{kernel, rng.stream("dispatch")};
};

TEST_F(ValidateTest, CleanAppReturnsAReport) {
  AppBuilder app(kernel, network, discovery, executor, rng);
  auto& node = app.node("solo", net::Endpoint{1, 100}, 0x10);
  auto& target = node.logic<Target>();
  node.logic<Writer>("writer", target);
  const analysis::Report report = app.validate();
  EXPECT_EQ(report.error_count(), 0U);
  EXPECT_EQ(report.workload, "app");
  EXPECT_EQ(report.facts.reactions.size(), 2U);
  EXPECT_EQ(report.facts.reactions[0].node, "solo");
}

TEST_F(ValidateTest, ConflictingWritersThrowAnalysisError) {
  AppBuilder app(kernel, network, discovery, executor, rng);
  auto& node = app.node("solo", net::Endpoint{1, 100}, 0x10);
  auto& target = node.logic<Target>();
  node.logic<Writer>("first", target);
  node.logic<Writer>("second", target);
  try {
    (void)app.validate();
    FAIL() << "expected AnalysisError";
  } catch (const analysis::AnalysisError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("DEAR-GRAPH-002"), std::string::npos) << what;
    EXPECT_NE(what.find("target.in"), std::string::npos) << what;
    const auto& diagnostics = error.diagnostics();
    EXPECT_TRUE(std::any_of(diagnostics.begin(), diagnostics.end(), [](const auto& d) {
      return d.rule == analysis::Rule::kMultiWriterPort;
    }));
  }
}

TEST_F(ValidateTest, DiagnosticsSpanNodes) {
  // Two nodes: facts from both environments land in one table with the
  // correct node attribution.
  AppBuilder app(kernel, network, discovery, executor, rng);
  auto& left = app.node("left", net::Endpoint{1, 100}, 0x10);
  auto& right = app.node("right", net::Endpoint{1, 101}, 0x11);
  auto& left_target = left.logic<Target>();
  left.logic<Writer>("writer", left_target);
  auto& right_target = right.logic<Target>();
  right.logic<Writer>("writer", right_target);
  const analysis::Report report = app.validate();
  EXPECT_EQ(report.facts.reactions.size(), 4U);
  EXPECT_EQ(report.facts.reactions[0].node, "left");
  EXPECT_EQ(report.facts.reactions[2].node, "right");
}

}  // namespace
}  // namespace dear
