// Compiled schedule plans: level-table compilation out of fact tables,
// the canonical digest, and the headline contract — a pipeline run that
// *consumes* the analyzer's plan (skipping the assembly-time topological
// sort) is bit-identical to one that derives its levels itself.
#include "analysis/plan.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "acc/pipeline.hpp"
#include "analysis/analyzer.hpp"
#include "brake/dear_pipeline.hpp"
#include "reactor/graph.hpp"
#include "scenario/spec.hpp"

namespace dear::analysis {
namespace {

using scenario::ScenarioSpec;
using scenario::Workload;

ReactionFact reaction(std::string node, std::string fqn, int level) {
  ReactionFact fact;
  fact.node = std::move(node);
  fact.fqn = std::move(fqn);
  fact.level = level;
  return fact;
}

Facts synthetic_facts() {
  Facts facts;
  facts.workload = "synthetic";
  facts.level_count = 2;
  facts.reactions.push_back(reaction("a", "a/first", 0));
  facts.reactions.push_back(reaction("a", "a/second", 1));
  facts.reactions.push_back(reaction("a", "a/third", 0));
  facts.reactions.push_back(reaction("b", "b/only", 0));
  return facts;
}

Report timed_report(Workload workload) {
  ScenarioSpec spec;
  spec.workload = workload;
  AnalyzeOptions options;
  options.timing = true;
  return analyze_spec(spec, options);
}

TEST(StaticPlan, GroupsReactionsByNodeAndLevel) {
  const StaticPlan plan = build_plan(synthetic_facts());
  ASSERT_EQ(plan.nodes.size(), 2U);
  const StaticPlan::NodePlan* a = plan.find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->level_count, 2);
  ASSERT_EQ(a->levels.size(), 2U);
  // Extraction (= graph) order within a level.
  ASSERT_EQ(a->levels[0].size(), 2U);
  EXPECT_EQ(a->levels[0][0], "a/first");
  EXPECT_EQ(a->levels[0][1], "a/third");
  ASSERT_EQ(a->levels[1].size(), 1U);
  EXPECT_EQ(a->levels[1][0], "a/second");
  EXPECT_EQ(plan.max_width(), 2);
  const auto histogram = plan.width_histogram();
  ASSERT_EQ(histogram.size(), 3U);
  EXPECT_EQ(histogram[0], 0);
  EXPECT_EQ(histogram[1], 2);  // a level 1, b level 0
  EXPECT_EQ(histogram[2], 1);  // a level 0
}

TEST(StaticPlan, UnleveledFactsCompileToTheEmptyPlan) {
  Facts facts = synthetic_facts();
  facts.reactions[1].level = -1;  // cyclic, or a workload without an APG
  EXPECT_TRUE(build_plan(facts).empty());
  // The nondet baseline has no precedence graph at all.
  EXPECT_TRUE(timed_report(Workload::kBrakeNondet).plan.empty());
}

TEST(StaticPlan, NodePlanFlattensAndRejectsUnknownNodes) {
  const StaticPlan plan = build_plan(synthetic_facts());
  const reactor::SchedulePlan flat = plan.node_plan("a");
  EXPECT_EQ(flat.level_count, 2);
  ASSERT_EQ(flat.entries.size(), 3U);
  EXPECT_EQ(flat.entries[0].fqn, "a/first");
  EXPECT_EQ(flat.entries[0].level, 0);
  EXPECT_EQ(flat.entries[1].fqn, "a/third");
  EXPECT_EQ(flat.entries[2].fqn, "a/second");
  EXPECT_EQ(flat.entries[2].level, 1);
  EXPECT_THROW((void)plan.node_plan("nope"), std::logic_error);
}

TEST(StaticPlan, DigestIsStableAcrossExtractions) {
  const StaticPlan first = timed_report(Workload::kBrakeDear).plan;
  const StaticPlan second = timed_report(Workload::kBrakeDear).plan;
  ASSERT_FALSE(first.empty());
  EXPECT_NE(first.digest(), 0U);
  EXPECT_EQ(first.digest(), second.digest());
  EXPECT_EQ(first.to_json(), second.to_json());
  // Different program, different schedule name.
  EXPECT_NE(first.digest(), timed_report(Workload::kAcc).plan.digest());
}

// --- plan consumption: bit-identical to derivation ---------------------------

TEST(StaticPlan, BrakePipelineConsumingThePlanIsBitIdentical) {
  const Report report = timed_report(Workload::kBrakeDear);
  ASSERT_FALSE(report.plan.empty());

  brake::DearScenarioConfig config;
  config.frames = 1500;
  const auto derived = brake::run_dear_pipeline(config);
  config.schedule_plan = &report.plan;
  const auto consumed = brake::run_dear_pipeline(config);

  EXPECT_EQ(consumed.output_digest, derived.output_digest);
  EXPECT_EQ(consumed.tag_digest, derived.tag_digest);
  EXPECT_EQ(consumed.frames_processed_eba, derived.frames_processed_eba);
  EXPECT_EQ(consumed.errors.total(), 0U);
}

TEST(StaticPlan, AccPipelineConsumingThePlanIsBitIdentical) {
  const Report report = timed_report(Workload::kAcc);
  ASSERT_FALSE(report.plan.empty());

  acc::AccScenarioConfig config;
  config.scans = 500;
  const auto derived = acc::run_acc_pipeline(config);
  config.schedule_plan = &report.plan;
  const auto consumed = acc::run_acc_pipeline(config);

  EXPECT_EQ(consumed.output_digest, derived.output_digest);
  EXPECT_EQ(consumed.tag_digest, derived.tag_digest);
}

TEST(StaticPlan, ForeignPlanIsRejectedLoudly) {
  // The ACC plan knows nothing about the brake pipeline's nodes: applying
  // it must throw instead of silently reordering reactions.
  const Report report = timed_report(Workload::kAcc);
  brake::DearScenarioConfig config;
  config.frames = 10;
  config.schedule_plan = &report.plan;
  EXPECT_THROW((void)brake::run_dear_pipeline(config), std::logic_error);
}

}  // namespace
}  // namespace dear::analysis
