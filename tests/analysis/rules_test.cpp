// One fixture per rule ID of the static determinism verifier
// (docs/static_analysis.md): each test constructs the smallest reactor
// program (or fact table) that trips exactly the rule under test, plus a
// minimally different clean variant proving the rule does not overfire.
#include "analysis/rules.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "analysis/extract.hpp"
#include "reactor/runtime.hpp"
#include "sim/kernel.hpp"

namespace dear::analysis {
namespace {

using namespace dear::literals;
using reactor::Environment;
using reactor::Input;
using reactor::Output;
using reactor::Reactor;
using reactor::Timer;

std::size_t count_rule(const std::vector<Diagnostic>& diagnostics, Rule rule) {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [rule](const Diagnostic& d) { return d.rule == rule; }));
}

/// Timer-triggered reaction; optionally writes a foreign port and/or a
/// named state cell — the building block for the conflict fixtures.
class Driver final : public Reactor {
 public:
  Driver(Environment& env, std::string name, reactor::BasePort* writes_port = nullptr,
         const std::string& writes_cell = {})
      : Reactor(std::move(name), env), timer_("timer", this, 10_ms) {
    auto& reaction = add_reaction("drive", [] {}).triggered_by(timer_);
    if (writes_port != nullptr) {
      reaction.writes(*writes_port);
    }
    if (!writes_cell.empty()) {
      reaction.writes_state(writes_cell);
    }
  }

 private:
  Timer timer_;
};

class Sink final : public Reactor {
 public:
  Input<int> in{"in", this};

  explicit Sink(Environment& env, std::string name = "sink") : Reactor(std::move(name), env) {
    add_reaction("consume", [] {}).triggered_by(in);
  }
};

struct RulesTest : ::testing::Test {
  sim::Kernel kernel;
  reactor::SimClock clock{kernel};

  [[nodiscard]] Facts facts_of(Environment& env) {
    return extract({NodeContext{"node", &env}});
  }
};

// --- DEAR-GRAPH-001: instantaneous cycle ------------------------------------

class Loop final : public Reactor {
 public:
  Input<int> in{"in", this};
  Output<int> out{"out", this};

  Loop(Environment& env, std::string name) : Reactor(std::move(name), env) {
    add_reaction("loop", [] {}).triggered_by(in).writes(out);
  }
};

TEST_F(RulesTest, InstantaneousCycleReported) {
  Environment env(clock);
  Loop a(env, "loop_a");
  Loop b(env, "loop_b");
  env.connect(a.out, b.in);
  env.connect(b.out, a.in);
  // No assemble(): extraction analyzes the unassembled graph, exactly how
  // the analyzer sees a cyclic program that could never start.
  const Facts facts = facts_of(env);
  ASSERT_EQ(facts.cycles.size(), 1U);
  EXPECT_EQ(facts.cycles[0].size(), 2U);
  for (const std::size_t member : facts.cycles[0]) {
    EXPECT_EQ(facts.reactions[member].level, -1);
  }
  const auto diagnostics = check_structure(facts);
  EXPECT_EQ(count_rule(diagnostics, Rule::kInstantaneousCycle), 1U);
  EXPECT_TRUE(has_errors(diagnostics));
}

TEST_F(RulesTest, AcyclicChainIsClean) {
  Environment env(clock);
  Sink sink(env);
  Driver driver(env, "driver", &sink.in);
  const Facts facts = facts_of(env);
  EXPECT_TRUE(facts.cycles.empty());
  const auto diagnostics = check_structure(facts);
  EXPECT_EQ(count_rule(diagnostics, Rule::kInstantaneousCycle), 0U);
  EXPECT_FALSE(has_errors(diagnostics));
}

// --- DEAR-GRAPH-002 / 005: multi-writer ports --------------------------------

TEST_F(RulesTest, UnorderedMultiWriterIsAnError) {
  Environment env(clock);
  Sink sink(env);
  Driver first(env, "first", &sink.in);
  Driver second(env, "second", &sink.in);
  const auto diagnostics = check_structure(facts_of(env));
  EXPECT_EQ(count_rule(diagnostics, Rule::kMultiWriterPort), 1U);
  EXPECT_EQ(count_rule(diagnostics, Rule::kOrderedMultiWriterPort), 0U);
  EXPECT_TRUE(has_errors(diagnostics));
}

TEST_F(RulesTest, OrderedMultiWriterIsANote) {
  // Two reactions of the SAME reactor: declaration priority gives them an
  // ordering edge, so last-write-wins is deterministic.
  class TwoWriters final : public Reactor {
   public:
    Output<int> out{"out", this};
    explicit TwoWriters(Environment& env) : Reactor("two", env), timer_("timer", this, 10_ms) {
      add_reaction("w1", [] {}).triggered_by(timer_).writes(out);
      add_reaction("w2", [] {}).triggered_by(timer_).writes(out);
    }

   private:
    Timer timer_;
  };
  Environment env(clock);
  TwoWriters two(env);
  const auto diagnostics = check_structure(facts_of(env));
  EXPECT_EQ(count_rule(diagnostics, Rule::kMultiWriterPort), 0U);
  EXPECT_EQ(count_rule(diagnostics, Rule::kOrderedMultiWriterPort), 1U);
  EXPECT_FALSE(has_errors(diagnostics));
}

// --- DEAR-GRAPH-003: unordered shared state ----------------------------------

TEST_F(RulesTest, UnorderedSharedStateIsAnError) {
  Environment env(clock);
  Driver first(env, "first", nullptr, "shared.cell");
  Driver second(env, "second", nullptr, "shared.cell");
  const Facts facts = facts_of(env);
  ASSERT_EQ(facts.states().size(), 1U);
  EXPECT_EQ(facts.states()[0].name, "shared.cell");
  const auto diagnostics = check_structure(facts);
  EXPECT_EQ(count_rule(diagnostics, Rule::kUnorderedSharedState), 1U);
  EXPECT_TRUE(has_errors(diagnostics));
}

TEST_F(RulesTest, OrderedSharedStateIsClean) {
  // writer -> reader connected through a port: the APG edge orders the
  // two accessors, so the shared cell is race-free by construction.
  class StatefulSink final : public Reactor {
   public:
    Input<int> in{"in", this};
    explicit StatefulSink(Environment& env) : Reactor("stateful_sink", env) {
      add_reaction("consume", [] {}).triggered_by(in).reads_state("shared.cell");
    }
  };
  class StatefulDriver final : public Reactor {
   public:
    Output<int> out{"out", this};
    explicit StatefulDriver(Environment& env)
        : Reactor("stateful_driver", env), timer_("timer", this, 10_ms) {
      add_reaction("drive", [] {}).triggered_by(timer_).writes(out).writes_state("shared.cell");
    }

   private:
    Timer timer_;
  };
  Environment env(clock);
  StatefulDriver driver(env);
  StatefulSink sink(env);
  env.connect(driver.out, sink.in);
  const auto diagnostics = check_structure(facts_of(env));
  EXPECT_EQ(count_rule(diagnostics, Rule::kUnorderedSharedState), 0U);
  EXPECT_FALSE(has_errors(diagnostics));
}

TEST_F(RulesTest, ReadOnlySharedStateIsClean) {
  Environment env(clock);
  class Reader final : public Reactor {
   public:
    Reader(Environment& env, std::string name)
        : Reactor(std::move(name), env), timer_("timer", this, 10_ms) {
      add_reaction("read", [] {}).triggered_by(timer_).reads_state("config.cell");
    }

   private:
    Timer timer_;
  };
  Reader a(env, "a");
  Reader b(env, "b");
  const auto diagnostics = check_structure(facts_of(env));
  EXPECT_EQ(count_rule(diagnostics, Rule::kUnorderedSharedState), 0U);
}

// --- DEAR-GRAPH-004: dead reactions ------------------------------------------

TEST_F(RulesTest, UnreachableReactionIsAWarning) {
  Environment env(clock);
  Sink sink(env);  // nothing ever writes sink.in
  const auto diagnostics = check_structure(facts_of(env));
  ASSERT_EQ(count_rule(diagnostics, Rule::kDeadReaction), 1U);
  EXPECT_FALSE(has_errors(diagnostics));  // warning severity
  for (const Diagnostic& d : diagnostics) {
    if (d.rule == Rule::kDeadReaction) {
      EXPECT_EQ(d.severity, Severity::kWarning);
      EXPECT_EQ(d.subject, "sink.consume");
    }
  }
}

TEST_F(RulesTest, TransitivelyReachableReactionIsLive) {
  // driver -> relay -> sink: the sink is reachable only through the relay,
  // which the fixpoint must discover.
  class Relay final : public Reactor {
   public:
    Input<int> in{"in", this};
    Output<int> out{"out", this};
    explicit Relay(Environment& env) : Reactor("relay", env) {
      add_reaction("forward", [] {}).triggered_by(in).writes(out);
    }
  };
  Environment env(clock);
  Sink sink(env);
  Relay relay(env);
  Driver driver(env, "driver", &relay.in);
  env.connect(relay.out, sink.in);
  const auto diagnostics = check_structure(facts_of(env));
  EXPECT_EQ(count_rule(diagnostics, Rule::kDeadReaction), 0U);
}

// --- DEAR-TIME-001: deadline below WCET --------------------------------------

class Budgeted final : public Reactor {
 public:
  Budgeted(Environment& env, Duration deadline, Duration wcet)
      : Reactor("budgeted", env), timer_("timer", this, 10_ms) {
    auto& reaction =
        add_reaction("work", [] {}).triggered_by(timer_).with_deadline(deadline, [] {});
    reaction.set_modeled_cost(sim::ExecTimeModel::constant(wcet));
  }

 private:
  Timer timer_;
};

TEST_F(RulesTest, DeadlineBelowWcetIsAnError) {
  Environment env(clock);
  Budgeted reactor(env, /*deadline=*/5_ms, /*wcet=*/10_ms);
  const auto diagnostics = check_structure(facts_of(env));
  ASSERT_EQ(count_rule(diagnostics, Rule::kDeadlineBelowWcet), 1U);
  EXPECT_TRUE(has_errors(diagnostics));
}

TEST_F(RulesTest, DeadlineCoveringWcetIsClean) {
  Environment env(clock);
  Budgeted reactor(env, /*deadline=*/10_ms, /*wcet=*/10_ms);
  const auto diagnostics = check_structure(facts_of(env));
  EXPECT_EQ(count_rule(diagnostics, Rule::kDeadlineBelowWcet), 0U);
}

// --- DEAR-TAG-001: untagged channels -----------------------------------------

TEST_F(RulesTest, UntaggedChannelIsAnError) {
  Facts facts;
  facts.channels.push_back(ChannelFact{"Interface.member", "server", "client",
                                       /*latency_bound=*/0, /*deadline=*/0,
                                       /*clock_error=*/0, /*tagged=*/false});
  const auto diagnostics = check_structure(facts);
  ASSERT_EQ(count_rule(diagnostics, Rule::kUntaggedChannel), 1U);
  EXPECT_TRUE(has_errors(diagnostics));
}

TEST_F(RulesTest, TaggedChannelIsClean) {
  Facts facts;
  facts.channels.push_back(ChannelFact{"Interface.member", "server", "client",
                                       /*latency_bound=*/5_ms, /*deadline=*/5_ms,
                                       /*clock_error=*/0, /*tagged=*/true});
  EXPECT_EQ(count_rule(check_structure(facts), Rule::kUntaggedChannel), 0U);
}

// --- DEAR-ENV-001..004: the assumption envelope ------------------------------

struct EnvelopeTest : ::testing::Test {
  Facts facts;
  scenario::ScenarioSpec spec;

  EnvelopeTest() {
    facts.channels.push_back(ChannelFact{"Interface.member", "server", "client",
                                         /*latency_bound=*/5_ms, /*deadline=*/5_ms,
                                         /*clock_error=*/0, /*tagged=*/true});
  }
};

TEST_F(EnvelopeTest, DefaultSpecIsInsideTheEnvelope) {
  EXPECT_TRUE(check_envelope(spec, facts).empty());
}

TEST_F(EnvelopeTest, LatencyBeyondBoundIsAnError) {
  spec.svc_latency_max = 8_ms;  // channel assumes L = 5ms
  const auto diagnostics = check_envelope(spec, facts);
  ASSERT_EQ(count_rule(diagnostics, Rule::kEnvelopeLatency), 1U);
  EXPECT_TRUE(has_errors(diagnostics));
}

TEST_F(EnvelopeTest, LatencyWithinBoundIsClean) {
  spec.svc_latency_max = 5_ms;
  EXPECT_EQ(count_rule(check_envelope(spec, facts), Rule::kEnvelopeLatency), 0U);
}

TEST_F(EnvelopeTest, FallsBackToRepoBoundWithoutChannels) {
  const Facts no_channels;
  spec.svc_latency_max = scenario::kSvcLatencyBound + 1;
  EXPECT_EQ(count_rule(check_envelope(spec, no_channels), Rule::kEnvelopeLatency), 1U);
}

TEST_F(EnvelopeTest, LossyLinkIsAnError) {
  spec.net_drop_probability = 0.01;
  EXPECT_EQ(count_rule(check_envelope(spec, facts), Rule::kEnvelopeLossyLink), 1U);
}

TEST_F(EnvelopeTest, DuplicationAndReorderingAreAllowed) {
  // The paper's guarantee tolerates duplicated and reordered delivery —
  // only loss and late delivery break it.
  spec.net_duplicate_probability = 0.5;
  spec.net_in_order = false;
  spec.clock_drift_ppm = 200.0;
  EXPECT_TRUE(check_envelope(spec, facts).empty());
}

TEST_F(EnvelopeTest, DeadlineScaleBelowOneIsAnError) {
  spec.deadline_scale = 0.99;
  EXPECT_EQ(count_rule(check_envelope(spec, facts), Rule::kEnvelopeDeadlineScale), 1U);
}

TEST_F(EnvelopeTest, ExecScaleAboveOneIsAnError) {
  spec.exec_time_scale = 1.01;
  EXPECT_EQ(count_rule(check_envelope(spec, facts), Rule::kEnvelopeExecScale), 1U);
}

// --- DEAR-FT-001 / 002: fault-tolerance configuration ------------------------

TEST_F(EnvelopeTest, ServiceFaultsWithoutRetryWarnOfMissingFallback) {
  spec.service_faults.crash_at = 1000_ms;
  const auto diagnostics = check_envelope(spec, facts);
  ASSERT_EQ(count_rule(diagnostics, Rule::kFtNoFallback), 1U);
  // Warning, not error: an injected crash is still bit-reproducible, so
  // the severity⟺expect_deterministic oracle must keep holding.
  EXPECT_FALSE(has_errors(diagnostics));
  EXPECT_TRUE(spec.expect_deterministic());
}

TEST_F(EnvelopeTest, ServiceFaultsWithRetryBudgetAreClean) {
  spec.service_faults.call_error_probability = 0.05;
  spec.retry.max_attempts = 2;
  spec.retry.timeout = 1_ms;
  EXPECT_EQ(count_rule(check_envelope(spec, facts), Rule::kFtNoFallback), 0U);
}

TEST_F(EnvelopeTest, RetryWorstCaseBeyondTightestChainBudgetWarns) {
  facts.budgets.push_back(BudgetFact{"Interface.member", "server", /*budget=*/20_ms});
  spec.retry.max_attempts = 3;
  spec.retry.backoff_base = 6_ms;
  spec.retry.timeout = 5_ms;  // worst case 3x5ms + (6+12)ms backoff = 33ms
  const auto diagnostics = check_envelope(spec, facts);
  ASSERT_EQ(count_rule(diagnostics, Rule::kFtRetryBudgetOverChain), 1U);
  EXPECT_FALSE(has_errors(diagnostics));
  for (const Diagnostic& d : diagnostics) {
    if (d.rule == Rule::kFtRetryBudgetOverChain) {
      EXPECT_EQ(d.severity, Severity::kWarning);
      EXPECT_NE(d.message.find("Interface.member"), std::string::npos) << d.message;
    }
  }
}

TEST_F(EnvelopeTest, RetryWorstCaseInsideTheChainBudgetIsClean) {
  facts.budgets.push_back(BudgetFact{"Interface.member", "server", /*budget=*/40_ms});
  spec.retry.max_attempts = 3;
  spec.retry.backoff_base = 6_ms;
  spec.retry.timeout = 5_ms;
  EXPECT_EQ(count_rule(check_envelope(spec, facts), Rule::kFtRetryBudgetOverChain), 0U);
}

TEST_F(EnvelopeTest, RetryWithoutDeclaredBudgetsCannotBeJudged) {
  // No BudgetFact rows -> no chain bound to compare against; stay silent
  // rather than guessing a denominator.
  spec.retry.max_attempts = 5;
  spec.retry.backoff_base = 50_ms;
  spec.retry.timeout = 50_ms;
  const Facts no_budgets;
  EXPECT_EQ(count_rule(check_envelope(spec, no_budgets), Rule::kFtRetryBudgetOverChain), 0U);
}

// --- rule metadata -----------------------------------------------------------

TEST(RuleCatalog, IdsAreStableAndSeveritiesMatch) {
  EXPECT_EQ(rule_id(Rule::kInstantaneousCycle), "DEAR-GRAPH-001");
  EXPECT_EQ(rule_id(Rule::kMultiWriterPort), "DEAR-GRAPH-002");
  EXPECT_EQ(rule_id(Rule::kUnorderedSharedState), "DEAR-GRAPH-003");
  EXPECT_EQ(rule_id(Rule::kDeadReaction), "DEAR-GRAPH-004");
  EXPECT_EQ(rule_id(Rule::kOrderedMultiWriterPort), "DEAR-GRAPH-005");
  EXPECT_EQ(rule_id(Rule::kDeadlineBelowWcet), "DEAR-TIME-001");
  EXPECT_EQ(rule_id(Rule::kUntaggedChannel), "DEAR-TAG-001");
  EXPECT_EQ(rule_id(Rule::kEnvelopeLatency), "DEAR-ENV-001");
  EXPECT_EQ(rule_id(Rule::kEnvelopeLossyLink), "DEAR-ENV-002");
  EXPECT_EQ(rule_id(Rule::kEnvelopeDeadlineScale), "DEAR-ENV-003");
  EXPECT_EQ(rule_id(Rule::kEnvelopeExecScale), "DEAR-ENV-004");
  EXPECT_EQ(rule_id(Rule::kFtNoFallback), "DEAR-FT-001");
  EXPECT_EQ(rule_id(Rule::kFtRetryBudgetOverChain), "DEAR-FT-002");

  EXPECT_EQ(rule_severity(Rule::kDeadReaction), Severity::kWarning);
  EXPECT_EQ(rule_severity(Rule::kFtNoFallback), Severity::kWarning);
  EXPECT_EQ(rule_severity(Rule::kFtRetryBudgetOverChain), Severity::kWarning);
  EXPECT_EQ(rule_severity(Rule::kOrderedMultiWriterPort), Severity::kNote);
  EXPECT_EQ(rule_severity(Rule::kMultiWriterPort), Severity::kError);
  EXPECT_EQ(rule_severity(Rule::kEnvelopeLatency), Severity::kError);
}

}  // namespace
}  // namespace dear::analysis
