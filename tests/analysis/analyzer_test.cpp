// Workload-level analyzer tests: the three case-study pipelines as the
// verifier's regression oracle. The DEAR pipelines must lint clean, the
// stock-APD baseline must be flagged for exactly the defects the paper
// attributes to it, and the static verdict must agree with the runtime
// oracle (expect_deterministic()) across the campaign grids — plus the
// golden fact digests that pin "the analyzer still sees the same program".
#include "analysis/analyzer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>

#include "analysis/rules.hpp"
#include "scenario/presets.hpp"
#include "scenario/spec.hpp"

namespace dear::analysis {
namespace {

using namespace dear::literals;
using scenario::ScenarioSpec;
using scenario::Workload;

bool has_rule(const Report& report, Rule rule) {
  return std::any_of(report.diagnostics.begin(), report.diagnostics.end(),
                     [rule](const Diagnostic& d) { return d.rule == rule; });
}

std::string digest_hex(const Facts& facts) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016" PRIx64, facts.digest());
  return buffer;
}

ScenarioSpec spec_for(Workload workload) {
  ScenarioSpec spec;
  spec.workload = workload;
  return spec;
}

TEST(Analyzer, DearBrakeLintsClean) {
  const Report report = analyze_spec(spec_for(Workload::kBrakeDear));
  EXPECT_EQ(report.workload, "dear");
  EXPECT_EQ(report.error_count(), 0U);
  EXPECT_TRUE(report.deterministic());
  EXPECT_TRUE(report.expected_deterministic);
  EXPECT_TRUE(report.verdict_matches());
  // The real pipeline graph was extracted: four SWC nodes, transactor
  // levels, tagged channels.
  EXPECT_GT(report.facts.reactions.size(), 10U);
  EXPECT_GE(report.facts.channels.size(), 4U);
  for (const ChannelFact& channel : report.facts.channels) {
    EXPECT_TRUE(channel.tagged) << channel.member;
    EXPECT_EQ(channel.latency_bound, 5_ms) << channel.member;
  }
}

TEST(Analyzer, AccLintsClean) {
  const Report report = analyze_spec(spec_for(Workload::kAcc));
  EXPECT_EQ(report.workload, "acc");
  EXPECT_EQ(report.error_count(), 0U);
  EXPECT_TRUE(report.verdict_matches());
  // The actuator's unused field-client reactions are known dead weight —
  // flagged as warnings, not errors.
  EXPECT_TRUE(has_rule(report, Rule::kDeadReaction));
}

TEST(Analyzer, NondetBaselineIsFlagged) {
  const Report report = analyze_spec(spec_for(Workload::kBrakeNondet));
  EXPECT_EQ(report.workload, "nondet");
  EXPECT_FALSE(report.deterministic());
  EXPECT_FALSE(report.expected_deterministic);
  EXPECT_TRUE(report.verdict_matches());
  // The paper's three defect classes, all present: racy one-slot buffers
  // (store vs. take), unsynchronized counters, untagged service channels.
  EXPECT_TRUE(has_rule(report, Rule::kMultiWriterPort));
  EXPECT_TRUE(has_rule(report, Rule::kUnorderedSharedState));
  EXPECT_TRUE(has_rule(report, Rule::kUntaggedChannel));
  EXPECT_GE(report.error_count(), 13U);
}

// --- golden digests ----------------------------------------------------------
// Pinned values: a change means the analyzer sees a different program —
// either the workload wiring changed (update the anchors deliberately) or
// the extraction regressed (fix it).

TEST(Analyzer, GoldenFactDigests) {
  EXPECT_EQ(digest_hex(analyze_spec(spec_for(Workload::kBrakeDear)).facts),
            "c2832cdc130179f5");
  EXPECT_EQ(digest_hex(analyze_spec(spec_for(Workload::kBrakeNondet)).facts),
            "b81a7e08ee396175");
  EXPECT_EQ(digest_hex(analyze_spec(spec_for(Workload::kAcc)).facts),
            "171ab1b07ae62d72");
}

TEST(Analyzer, ExtractionIsDeterministic) {
  const ScenarioSpec spec = spec_for(Workload::kBrakeDear);
  const Report first = analyze_spec(spec);
  const Report second = analyze_spec(spec);
  EXPECT_EQ(first.facts.digest(), second.facts.digest());
  EXPECT_EQ(first.facts.to_json(), second.facts.to_json());
  EXPECT_EQ(first.facts.level_table(), second.facts.level_table());
  EXPECT_FALSE(first.facts.level_table().empty());
}

// --- envelope rules through the full analyzer --------------------------------

TEST(Analyzer, LateScenarioIsRejectedStatically) {
  ScenarioSpec spec = spec_for(Workload::kBrakeDear);
  spec.svc_latency_max = 8_ms;  // beyond the transactors' L = 5ms
  const Report report = analyze_spec(spec);
  EXPECT_TRUE(has_rule(report, Rule::kEnvelopeLatency));
  EXPECT_FALSE(report.deterministic());
  EXPECT_TRUE(report.verdict_matches());
}

TEST(Analyzer, TightenedDeadlinesAreRejectedStatically) {
  ScenarioSpec spec = spec_for(Workload::kBrakeDear);
  spec.deadline_scale = 0.5;
  const Report report = analyze_spec(spec);
  // Both views of the same violation: the envelope knob and the concrete
  // per-node deadline-vs-WCET budgets of the scaled configuration.
  EXPECT_TRUE(has_rule(report, Rule::kEnvelopeDeadlineScale));
  EXPECT_TRUE(has_rule(report, Rule::kDeadlineBelowWcet));
  EXPECT_FALSE(report.deterministic());
  EXPECT_TRUE(report.verdict_matches());
}

// --- campaign oracle ---------------------------------------------------------

TEST(Analyzer, SmokeGridAgreesWithRuntimeOracle) {
  const auto specs = scenario::presets::smoke(/*frames=*/100, /*campaign_seed=*/1).expand();
  const auto reports = analyze_scenarios(specs);
  ASSERT_EQ(reports.size(), specs.size());
  for (std::size_t i = 0; i < reports.size(); ++i) {
    EXPECT_TRUE(reports[i].verdict_matches())
        << specs[i].describe() << ": static deterministic=" << reports[i].deterministic()
        << " oracle=" << specs[i].expect_deterministic();
  }
}

TEST(Analyzer, ReportCollectionCarriesTheSchema) {
  const auto reports = analyze_scenarios({spec_for(Workload::kBrakeDear)});
  const std::string json = report_collection_json(reports);
  EXPECT_NE(json.find("\"schema\": \"analysis-report-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"facts_digest\""), std::string::npos);
  EXPECT_NE(json.find("\"level_table\""), std::string::npos);
}

}  // namespace
}  // namespace dear::analysis
