#include <gtest/gtest.h>

#include "reactor_fixture.hpp"

namespace dear::reactor {
namespace {

using namespace dear::literals;
using testing::run_sim;

struct TimerTest : ::testing::Test {
  sim::Kernel kernel;
  SimClock clock{kernel};
};

class TimerProbe final : public Reactor {
 public:
  std::vector<Tag> firings;

  TimerProbe(Environment& env, Duration period, Duration offset)
      : Reactor("probe", env), timer_("timer", this, period, offset) {
    add_reaction("tick", [this] { firings.push_back(current_tag()); }).triggered_by(timer_);
  }

 private:
  Timer timer_;
};

TEST_F(TimerTest, FiresAtOffsetThenPeriod) {
  Environment::Config config;
  config.timeout = 50_ms;
  Environment env(clock, config);
  TimerProbe probe(env, 10_ms, 3_ms);
  run_sim(env, kernel, 1_s);
  ASSERT_EQ(probe.firings.size(), 5u);  // 3, 13, 23, 33, 43 ms
  for (std::size_t i = 0; i < probe.firings.size(); ++i) {
    EXPECT_EQ(probe.firings[i],
              (Tag{3_ms + static_cast<TimePoint>(i) * 10_ms, 0}));
  }
}

TEST_F(TimerTest, ZeroOffsetFiresAtStartTag) {
  Environment::Config config;
  config.timeout = 25_ms;
  Environment env(clock, config);
  TimerProbe probe(env, 10_ms, 0);
  run_sim(env, kernel, 1_s);
  ASSERT_EQ(probe.firings.size(), 3u);
  EXPECT_EQ(probe.firings[0], (Tag{0, 0}));
}

TEST_F(TimerTest, NonPositivePeriodRejected) {
  Environment env(clock);
  class BadTimer final : public Reactor {
   public:
    explicit BadTimer(Environment& env) : Reactor("bad", env) {
      Timer timer("timer", this, 0);
    }
  };
  EXPECT_THROW(BadTimer bad(env), std::logic_error);
}

TEST_F(TimerTest, TwoTimersInterleave) {
  class TwoTimers final : public Reactor {
   public:
    std::vector<std::pair<char, TimePoint>> log;
    explicit TwoTimers(Environment& env)
        : Reactor("two", env), fast_("fast", this, 10_ms), slow_("slow", this, 25_ms) {
      add_reaction("on_fast", [this] { log.emplace_back('f', logical_time()); })
          .triggered_by(fast_);
      add_reaction("on_slow", [this] { log.emplace_back('s', logical_time()); })
          .triggered_by(slow_);
    }

   private:
    Timer fast_;
    Timer slow_;
  };
  Environment::Config config;
  config.timeout = 51_ms;
  Environment env(clock, config);
  TwoTimers probe(env);
  run_sim(env, kernel, 1_s);
  // fast: 0,10,20,30,40,50; slow: 0,25,50.
  std::vector<std::pair<char, TimePoint>> expected{
      {'f', 0},     {'s', 0},     {'f', 10_ms}, {'f', 20_ms}, {'s', 25_ms},
      {'f', 30_ms}, {'f', 40_ms}, {'f', 50_ms}, {'s', 50_ms}};
  EXPECT_EQ(probe.log, expected);
}

TEST_F(TimerTest, TimeoutStopsExactlyAtHorizon) {
  Environment::Config config;
  config.timeout = 100_ms;
  Environment env(clock, config);
  TimerProbe probe(env, 7_ms, 0);
  run_sim(env, kernel, 10_s);
  // Firings at 0, 7, ..., 98 ms -> 15 firings; nothing after the timeout.
  EXPECT_EQ(probe.firings.size(), 15u);
  EXPECT_TRUE(env.scheduler().finished());
}

TEST_F(TimerTest, ElapsedLogicalTimeTracksTimer) {
  class ElapsedProbe final : public Reactor {
   public:
    std::vector<Duration> elapsed;
    explicit ElapsedProbe(Environment& env)
        : Reactor("elapsed", env), timer_("timer", this, 10_ms) {
      add_reaction("tick", [this] { elapsed.push_back(elapsed_logical_time()); })
          .triggered_by(timer_);
    }

   private:
    Timer timer_;
  };
  Environment::Config config;
  config.timeout = 25_ms;
  Environment env(clock, config);
  ElapsedProbe probe(env);
  // Start the kernel late: elapsed logical time is relative to start, not
  // to kernel time zero.
  kernel.schedule_at(5_ms, [] {});
  kernel.run();
  run_sim(env, kernel, 1_s);
  ASSERT_EQ(probe.elapsed.size(), 3u);
  EXPECT_EQ(probe.elapsed[0], 0);
  EXPECT_EQ(probe.elapsed[1], 10_ms);
  EXPECT_EQ(probe.elapsed[2], 20_ms);
}

}  // namespace
}  // namespace dear::reactor
