// Parallel conformance: the threaded scheduler at 1/2/4 workers produces
// bit-identical raw execution traces — not just sorted-within-tag equal —
// and identical tag sequences on the pipeline, fan-out and microstep
// topologies (the same families the event-queue conformance suite pins
// down on the queue itself).
//
// This is the end-to-end guarantee behind the contention-free level pool:
// reactions executing concurrently stage their effects into per-worker
// buffers that are merged in (level, batch-index) order, so staging order,
// port cleanup order and the trace are exactly what a serial execution
// produces. Any scheduling leak into observable order shows up here as a
// digest mismatch.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/digest.hpp"
#include "reactor/graph.hpp"
#include "reactor_fixture.hpp"

namespace dear::reactor {
namespace {

using testing::LoopRelay;
using testing::LoopSink;
using testing::LoopSource;

struct RunDigests {
  std::uint64_t trace{0};     // raw (tag, fqn, violated) sequence, relative tags
  std::uint64_t tags{0};      // processed tag sequence, relative
  std::int64_t checksum{0};   // functional output (sink sums)
  std::uint64_t reactions{0};

  bool operator==(const RunDigests&) const = default;
};

/// Digests the raw trace in recording order — tags relative to the start
/// tag so real-clock runs compare across processes.
RunDigests digest_run(Environment& env, std::int64_t checksum) {
  RunDigests digests;
  digests.checksum = checksum;
  digests.reactions = env.scheduler().reactions_executed();
  const TimePoint start = env.start_time();
  Tag previous = Tag::maximum();
  for (const TraceRecord& record : env.trace().records()) {
    common::mix_digest(digests.trace, static_cast<std::uint64_t>(record.tag.time - start));
    common::mix_digest(digests.trace, record.tag.microstep);
    for (const char c : record.reaction) {
      common::mix_digest(digests.trace, static_cast<std::uint64_t>(c));
    }
    common::mix_digest(digests.trace, record.deadline_violated ? 1 : 0);
    if (!(record.tag == previous)) {
      previous = record.tag;
      common::mix_digest(digests.tags, static_cast<std::uint64_t>(record.tag.time - start));
      common::mix_digest(digests.tags, record.tag.microstep);
    }
  }
  return digests;
}

Environment::Config traced_config(unsigned workers) {
  Environment::Config config;
  config.workers = workers;
  config.tracing = true;
  return config;
}

/// source -> relay x4 -> sink: deep levels, one reaction each (the serial
/// fast path must interleave identically with the parallel one). With
/// `consume_plan`, the environment installs a precompiled schedule plan
/// (DependencyGraph::export_plan of an identical probe graph) instead of
/// deriving levels at assembly — observably identical by contract.
RunDigests run_pipeline(unsigned workers, std::int64_t events, bool consume_plan = false) {
  RealClock clock;
  Environment env(clock, traced_config(workers));
  LoopSource source(env, events);
  std::vector<std::unique_ptr<LoopRelay>> relays;
  for (int i = 0; i < 4; ++i) {
    relays.push_back(std::make_unique<LoopRelay>(env, "relay" + std::to_string(i)));
  }
  LoopSink sink(env, "sink");
  Output<std::int64_t>* previous = &source.out;
  for (auto& relay : relays) {
    env.connect(*previous, relay->in);
    previous = &relay->out;
  }
  env.connect(*previous, sink.in);
  if (consume_plan) {
    DependencyGraph probe(env.top_level());
    env.set_schedule_plan(probe.export_plan());
  }
  env.run();
  return digest_run(env, sink.sum);
}

/// source -> 8 sinks: one 8-wide level per event, the parallel claim path.
RunDigests run_fanout(unsigned workers, std::int64_t events) {
  RealClock clock;
  Environment env(clock, traced_config(workers));
  LoopSource source(env, events);
  std::vector<std::unique_ptr<LoopSink>> sinks;
  std::int64_t checksum = 0;
  for (int i = 0; i < 8; ++i) {
    sinks.push_back(std::make_unique<LoopSink>(env, "sink" + std::to_string(i)));
    env.connect(source.out, sinks.back()->in);
  }
  env.run();
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    checksum += sinks[i]->sum * static_cast<std::int64_t>(i + 1);
  }
  return digest_run(env, checksum);
}

/// Two chained zero-delay actions per frame: every frame walks microsteps
/// (t, m) -> (t, m+1), each microstep fanning out to its own sinks.
class MicrostepSource final : public Reactor {
 public:
  Output<std::int64_t> out_a{"out_a", this};
  Output<std::int64_t> out_b{"out_b", this};

  MicrostepSource(Environment& env, std::int64_t limit)
      : Reactor("microstep_source", env), limit_(limit) {
    add_reaction("kick", [this] { a_.schedule(Empty{}); }).triggered_by(startup_);
    add_reaction("on_a",
                 [this] {
                   out_a.set(count_);
                   b_.schedule(Empty{});  // same time, next microstep
                 })
        .triggered_by(a_)
        .writes(out_a);
    add_reaction("on_b",
                 [this] {
                   out_b.set(count_ * 3);
                   if (++count_ < limit_) {
                     a_.schedule(Empty{}, 1);
                   } else {
                     request_shutdown();
                   }
                 })
        .triggered_by(b_)
        .writes(out_b);
  }

 private:
  StartupTrigger startup_{"startup", this};
  LogicalAction<Empty> a_{"a", this};
  LogicalAction<Empty> b_{"b", this};
  std::int64_t limit_;
  std::int64_t count_{0};
};

RunDigests run_microstep(unsigned workers, std::int64_t events) {
  RealClock clock;
  Environment env(clock, traced_config(workers));
  MicrostepSource source(env, events);
  std::vector<std::unique_ptr<LoopSink>> sinks;
  std::int64_t checksum = 0;
  for (int i = 0; i < 3; ++i) {
    sinks.push_back(std::make_unique<LoopSink>(env, "sink_a" + std::to_string(i)));
    env.connect(source.out_a, sinks.back()->in);
    sinks.push_back(std::make_unique<LoopSink>(env, "sink_b" + std::to_string(i)));
    env.connect(source.out_b, sinks.back()->in);
  }
  env.run();
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    checksum += sinks[i]->sum * static_cast<std::int64_t>(i + 1);
  }
  return digest_run(env, checksum);
}

constexpr std::int64_t kEvents = 300;

class ParallelConformanceTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelConformanceTest, PipelineTraceBitIdenticalToSerial) {
  const RunDigests reference = run_pipeline(1, kEvents);
  const RunDigests parallel = run_pipeline(GetParam(), kEvents);
  EXPECT_EQ(parallel, reference);
}

TEST_P(ParallelConformanceTest, FanoutTraceBitIdenticalToSerial) {
  const RunDigests reference = run_fanout(1, kEvents);
  const RunDigests parallel = run_fanout(GetParam(), kEvents);
  EXPECT_EQ(parallel, reference);
}

TEST_P(ParallelConformanceTest, MicrostepTraceBitIdenticalToSerial) {
  const RunDigests reference = run_microstep(1, kEvents);
  const RunDigests parallel = run_microstep(GetParam(), kEvents);
  EXPECT_EQ(parallel, reference);
}

TEST_P(ParallelConformanceTest, PlanConsumingRunBitIdenticalToDerivedRun) {
  const RunDigests reference = run_pipeline(1, kEvents);
  EXPECT_EQ(run_pipeline(1, kEvents, /*consume_plan=*/true), reference);
  EXPECT_EQ(run_pipeline(GetParam(), kEvents, /*consume_plan=*/true), reference);
}

INSTANTIATE_TEST_SUITE_P(Workers, ParallelConformanceTest, ::testing::Values(2u, 4u));

TEST(ParallelConformance, RepeatedParallelRunsIdentical) {
  const RunDigests first = run_fanout(4, kEvents);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(run_fanout(4, kEvents), first);
  }
}

}  // namespace
}  // namespace dear::reactor
