#include "reactor/action.hpp"

#include <gtest/gtest.h>

#include "reactor_fixture.hpp"

namespace dear::reactor {
namespace {

using namespace dear::literals;
using testing::run_sim;

struct ActionTest : ::testing::Test {
  sim::Kernel kernel;
  SimClock clock{kernel};
};

/// Schedules a configurable chain of logical actions from startup.
class LogicalChain final : public Reactor {
 public:
  std::vector<Tag> fired;
  std::vector<int> values;

  LogicalChain(Environment& env, Duration delay, int count)
      : Reactor("chain", env), delay_(delay), limit_(count) {
    add_reaction("kickoff", [this] { action_.schedule(0, delay_); }).triggered_by(startup_);
    add_reaction("on_action",
                 [this] {
                   fired.push_back(current_tag());
                   values.push_back(action_.get());
                   if (action_.get() + 1 < limit_) {
                     action_.schedule(action_.get() + 1, delay_);
                   } else {
                     request_shutdown();
                   }
                 })
        .triggered_by(action_);
  }

 private:
  StartupTrigger startup_{"startup", this};
  LogicalAction<int> action_{"action", this};
  Duration delay_;
  int limit_;
};

TEST_F(ActionTest, LogicalActionWithDelayAdvancesTime) {
  Environment env(clock);
  LogicalChain chain(env, 5_ms, 4);
  run_sim(env, kernel, 1_s);
  ASSERT_EQ(chain.fired.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(chain.fired[i], (Tag{static_cast<TimePoint>(i + 1) * 5_ms, 0}));
    EXPECT_EQ(chain.values[i], static_cast<int>(i));
  }
}

TEST_F(ActionTest, ZeroDelayAdvancesMicrostepOnly) {
  Environment env(clock);
  LogicalChain chain(env, 0, 3);
  run_sim(env, kernel, 1_s);
  ASSERT_EQ(chain.fired.size(), 3u);
  EXPECT_EQ(chain.fired[0], (Tag{0, 1}));
  EXPECT_EQ(chain.fired[1], (Tag{0, 2}));
  EXPECT_EQ(chain.fired[2], (Tag{0, 3}));
}

TEST_F(ActionTest, MinDelayAddsToEveryScheduling) {
  class WithMinDelay final : public Reactor {
   public:
    Tag fired{};
    explicit WithMinDelay(Environment& env) : Reactor("min_delay", env) {
      add_reaction("kickoff", [this] { action_.schedule(Empty{}, 2_ms); })
          .triggered_by(startup_);
      add_reaction("on_action",
                   [this] {
                     fired = current_tag();
                     request_shutdown();
                   })
          .triggered_by(action_);
    }

   private:
    StartupTrigger startup_{"startup", this};
    LogicalAction<Empty> action_{"action", this, 3_ms};  // min_delay = 3 ms
  };
  Environment env(clock);
  WithMinDelay reactor(env);
  run_sim(env, kernel, 1_s);
  EXPECT_EQ(reactor.fired, (Tag{5_ms, 0}));  // 2 + 3 ms
}

TEST_F(ActionTest, RescheduleSameTagReplacesValue) {
  class Resched final : public Reactor {
   public:
    std::vector<int> seen;
    explicit Resched(Environment& env) : Reactor("resched", env) {
      add_reaction("kickoff",
                   [this] {
                     action_.schedule(1, 5_ms);
                     action_.schedule(2, 5_ms);  // same tag: replaces value
                   })
          .triggered_by(startup_);
      add_reaction("on_action",
                   [this] {
                     seen.push_back(action_.get());
                     request_shutdown();
                   })
          .triggered_by(action_);
    }

   private:
    StartupTrigger startup_{"startup", this};
    LogicalAction<int> action_{"action", this};
  };
  Environment env(clock);
  Resched reactor(env);
  run_sim(env, kernel, 1_s);
  ASSERT_EQ(reactor.seen.size(), 1u);  // one event, not two
  EXPECT_EQ(reactor.seen[0], 2);
}

TEST_F(ActionTest, PhysicalActionFromOutside) {
  class Sensor final : public Reactor {
   public:
    PhysicalAction<int> sample{"sample", this};
    std::vector<std::pair<int, Tag>> seen;
    explicit Sensor(Environment& env) : Reactor("sensor", env) {
      add_reaction("on_sample", [this] {
        seen.emplace_back(sample.get(), current_tag());
      }).triggered_by(sample);
    }
  };
  Environment::Config config;
  config.keepalive = true;
  Environment env(clock, config);
  Sensor sensor(env);
  SimDriver driver(env, kernel, common::Rng(1));
  driver.start();
  // External events arrive at 3 ms and 8 ms (e.g. network packets).
  kernel.schedule_at(3_ms, [&] { sensor.sample.schedule(10); });
  kernel.schedule_at(8_ms, [&] { sensor.sample.schedule(20); });
  kernel.run_until(20_ms);
  ASSERT_EQ(sensor.seen.size(), 2u);
  EXPECT_EQ(sensor.seen[0].first, 10);
  EXPECT_EQ(sensor.seen[0].second.time, 3_ms);  // tagged with physical arrival
  EXPECT_EQ(sensor.seen[1].first, 20);
  EXPECT_EQ(sensor.seen[1].second.time, 8_ms);
}

TEST_F(ActionTest, ScheduleAtExplicitTag) {
  class Receiver final : public Reactor {
   public:
    PhysicalAction<int> arrival{"arrival", this};
    std::vector<Tag> seen;
    explicit Receiver(Environment& env) : Reactor("receiver", env) {
      add_reaction("on_arrival", [this] { seen.push_back(current_tag()); })
          .triggered_by(arrival);
    }
  };
  Environment::Config config;
  config.keepalive = true;
  Environment env(clock, config);
  Receiver receiver(env);
  SimDriver driver(env, kernel, common::Rng(1));
  driver.start();
  // Message physically arrives at 1 ms but carries safe-to-process tag 10 ms.
  kernel.schedule_at(1_ms, [&] {
    EXPECT_TRUE(receiver.arrival.schedule_at(Tag{10_ms, 0}, 5));
  });
  kernel.run_until(5_ms);
  EXPECT_TRUE(receiver.seen.empty());  // not yet: physical time < tag
  kernel.run_until(20_ms);
  ASSERT_EQ(receiver.seen.size(), 1u);
  EXPECT_EQ(receiver.seen[0], (Tag{10_ms, 0}));
}

TEST_F(ActionTest, ScheduleAtRejectsTardyTag) {
  class Receiver final : public Reactor {
   public:
    PhysicalAction<int> arrival{"arrival", this};
    int count{0};
    explicit Receiver(Environment& env) : Reactor("receiver", env) {
      add_reaction("on_arrival", [this] { ++count; }).triggered_by(arrival);
    }
  };
  Environment::Config config;
  config.keepalive = true;
  Environment env(clock, config);
  Receiver receiver(env);
  SimDriver driver(env, kernel, common::Rng(1));
  driver.start();
  kernel.schedule_at(2_ms, [&] { EXPECT_TRUE(receiver.arrival.schedule_at(Tag{3_ms, 0}, 1)); });
  // At 10 ms, logical time has passed 3 ms; a message tagged 3 ms is tardy.
  kernel.schedule_at(10_ms, [&] {
    EXPECT_FALSE(receiver.arrival.schedule_at(Tag{3_ms, 0}, 2));
  });
  kernel.run_until(20_ms);
  EXPECT_EQ(receiver.count, 1);
}

TEST_F(ActionTest, GetOnAbsentActionThrows) {
  class Bad final : public Reactor {
   public:
    LogicalAction<int> action{"action", this};
    explicit Bad(Environment& env) : Reactor("bad", env) {
      add_reaction("startup_probe",
                   [this] {
                     EXPECT_THROW((void)action.get(), std::logic_error);
                     request_shutdown();
                   })
          .triggered_by(startup_);
    }

   private:
    StartupTrigger startup_{"startup", this};
  };
  Environment env(clock);
  Bad reactor(env);
  run_sim(env, kernel, 1_s);
}

TEST_F(ActionTest, ShutdownTriggerRunsAtStop) {
  class WithShutdown final : public Reactor {
   public:
    bool shutdown_ran{false};
    Tag shutdown_tag{};
    explicit WithShutdown(Environment& env) : Reactor("ws", env) {
      add_reaction("kickoff", [this] { request_shutdown(); }).triggered_by(startup_);
      add_reaction("on_shutdown",
                   [this] {
                     shutdown_ran = true;
                     shutdown_tag = current_tag();
                   })
          .triggered_by(shutdown_);
    }

   private:
    StartupTrigger startup_{"startup", this};
    ShutdownTrigger shutdown_{"shutdown", this};
  };
  Environment env(clock);
  WithShutdown reactor(env);
  run_sim(env, kernel, 1_s);
  EXPECT_TRUE(reactor.shutdown_ran);
  EXPECT_EQ(reactor.shutdown_tag, (Tag{0, 1}));  // one microstep after the request
}

TEST_F(ActionTest, BatchEnqueueTriggersEveryActionAtOneTag) {
  // enqueue_batch_locked: several presence-only actions inserted at one
  // tag under a single lock acquisition; each fires at that tag, and
  // same-level staging follows batch order.
  class One final : public Reactor {
   public:
    PhysicalAction<Empty> go{"go", this};

    One(Environment& env, std::string name, int id, std::vector<int>& fired)
        : Reactor(std::move(name), env) {
      add_reaction("on_go", [&fired, id] { fired.push_back(id); }).triggered_by(go);
    }
  };
  Environment env(clock);
  std::vector<int> fired;
  One first(env, "first", 0, fired);
  One second(env, "second", 1, fired);
  One third(env, "third", 2, fired);
  env.assemble();
  Scheduler& scheduler = env.scheduler();
  scheduler.start_at(Tag{0, 0});
  BaseAction* batch[] = {&third.go, &first.go, &second.go};
  scheduler.with_lock([&] { scheduler.enqueue_batch_locked(batch, 3, Tag{10, 0}); });
  scheduler.notify();
  while (scheduler.process_next_tag(kTimeMax).has_value() && fired.size() < 3) {
  }
  EXPECT_EQ(fired, (std::vector<int>{2, 0, 1}));  // batch order, not construction order
}

}  // namespace
}  // namespace dear::reactor
