#include "reactor/graph.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "reactor_fixture.hpp"

namespace dear::reactor {
namespace {

using namespace dear::literals;
using testing::Counter;
using testing::Doubler;
using testing::Recorder;

struct GraphTest : ::testing::Test {
  sim::Kernel kernel;
  SimClock clock{kernel};
};

TEST_F(GraphTest, ChainLevelsIncrease) {
  Environment env(clock);
  Counter counter(env, 10_ms, 1);
  Doubler d1(env, "d1");
  Doubler d2(env, "d2");
  Recorder<int> recorder(env);
  env.connect(counter.out, d1.in);
  env.connect(d1.out, d2.in);
  env.connect(d2.out, recorder.in);
  env.assemble();
  EXPECT_EQ(env.level_count(), 4);
  EXPECT_EQ(counter.reactions()[0]->level(), 0);
  EXPECT_EQ(d1.reactions()[0]->level(), 1);
  EXPECT_EQ(d2.reactions()[0]->level(), 2);
  EXPECT_EQ(recorder.reactions()[0]->level(), 3);
}

TEST_F(GraphTest, IndependentReactorsShareLevelZero) {
  Environment env(clock);
  Counter a(env, 10_ms, 1, "a");
  Counter b(env, 10_ms, 1, "b");
  env.assemble();
  EXPECT_EQ(env.level_count(), 1);
  EXPECT_EQ(a.reactions()[0]->level(), 0);
  EXPECT_EQ(b.reactions()[0]->level(), 0);
}

TEST_F(GraphTest, DiamondConverges) {
  Environment env(clock);
  Counter source(env, 10_ms, 1, "source");
  Doubler left(env, "left");
  Doubler right(env, "right");
  // Join reactor reading both branches.
  class Join final : public Reactor {
   public:
    Input<int> a{"a", this};
    Input<int> b{"b", this};
    explicit Join(Environment& env) : Reactor("join", env) {
      add_reaction("join", [] {}).triggered_by(a).triggered_by(b);
    }
  };
  Join join(env);
  env.connect(source.out, left.in);
  env.connect(source.out, right.in);
  env.connect(left.out, join.a);
  env.connect(right.out, join.b);
  env.assemble();
  EXPECT_EQ(source.reactions()[0]->level(), 0);
  EXPECT_EQ(left.reactions()[0]->level(), 1);
  EXPECT_EQ(right.reactions()[0]->level(), 1);
  EXPECT_EQ(join.reactions()[0]->level(), 2);
}

TEST_F(GraphTest, IntraReactorPriorityOrders) {
  class MultiReaction final : public Reactor {
   public:
    explicit MultiReaction(Environment& env) : Reactor("multi", env) {
      add_reaction("first", [] {});
      add_reaction("second", [] {});
      add_reaction("third", [] {});
    }
  };
  Environment env(clock);
  MultiReaction reactor(env);
  env.assemble();
  EXPECT_EQ(reactor.reactions()[0]->level(), 0);
  EXPECT_EQ(reactor.reactions()[1]->level(), 1);
  EXPECT_EQ(reactor.reactions()[2]->level(), 2);
  EXPECT_EQ(reactor.reactions()[0]->priority(), 0);
  EXPECT_EQ(reactor.reactions()[2]->priority(), 2);
}

TEST_F(GraphTest, CycleDetectedWithNames) {
  class Loop final : public Reactor {
   public:
    Input<int> in{"in", this};
    Output<int> out{"out", this};
    explicit Loop(Environment& env, std::string name) : Reactor(std::move(name), env) {
      add_reaction("loop", [] {}).triggered_by(in).writes(out);
    }
  };
  Environment env(clock);
  Loop a(env, "loop_a");
  Loop b(env, "loop_b");
  env.connect(a.out, b.in);
  env.connect(b.out, a.in);
  try {
    env.assemble();
    FAIL() << "expected cycle detection to throw";
  } catch (const std::logic_error& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("cycle"), std::string::npos);
    EXPECT_NE(message.find("loop_a"), std::string::npos);
    EXPECT_NE(message.find("loop_b"), std::string::npos);
  }
}

TEST_F(GraphTest, ReadDependencyOrdersWithoutTriggering) {
  // A reaction that only *reads* a port must still run after its writer.
  class Reader final : public Reactor {
   public:
    Input<int> in{"in", this};
    explicit Reader(Environment& env) : Reactor("reader", env), timer_("t", this, 10_ms) {
      add_reaction("read", [] {}).triggered_by(timer_).reads(in);
    }

   private:
    Timer timer_;
  };
  Environment env(clock);
  Counter writer(env, 10_ms, 1, "writer");
  Reader reader(env);
  env.connect(writer.out, reader.in);
  env.assemble();
  EXPECT_GT(reader.reactions()[0]->level(), writer.reactions()[0]->level());
}

TEST_F(GraphTest, NestedReactorsCollected) {
  class Parent final : public Reactor {
   public:
    explicit Parent(Environment& env) : Reactor("parent", env) {
      child = std::make_unique<Counter>(env, 10_ms, 1);
    }
    std::unique_ptr<Counter> child;
  };
  Environment env(clock);
  class Inner final : public Reactor {
   public:
    Inner(std::string name, Reactor* parent) : Reactor(std::move(name), parent) {
      add_reaction("noop", [] {});
    }
  };
  class Outer final : public Reactor {
   public:
    explicit Outer(Environment& env) : Reactor("outer", env), inner("inner", this) {
      add_reaction("outer_noop", [] {});
    }
    Inner inner;
  };
  Outer outer(env);
  env.assemble();
  // Both the outer and the nested reaction got levels.
  EXPECT_GE(outer.reactions()[0]->level(), 0);
  EXPECT_GE(outer.inner.reactions()[0]->level(), 0);
  EXPECT_EQ(outer.inner.fqn(), "outer.inner");
}

// --- const introspection (the static verifier's view) ------------------------

TEST_F(GraphTest, AnalyzeReportsCycleWithoutThrowing) {
  class Loop final : public Reactor {
   public:
    Input<int> in{"in", this};
    Output<int> out{"out", this};
    explicit Loop(Environment& env, std::string name) : Reactor(std::move(name), env) {
      add_reaction("loop", [] {}).triggered_by(in).writes(out);
    }
  };
  Environment env(clock);
  Loop a(env, "loop_a");
  Loop b(env, "loop_b");
  Counter independent(env, 10_ms, 1);
  env.connect(a.out, b.in);
  env.connect(b.out, a.in);
  DependencyGraph graph(env.top_level());
  const auto& analysis = graph.analyze();
  EXPECT_FALSE(analysis.acyclic);
  EXPECT_EQ(analysis.cyclic.size(), 2U);
  // Levels of reactions off the cycle stay valid.
  EXPECT_EQ(graph.level_of(graph.index_of(*independent.reactions()[0])), 0);
  // analyze() is cached and idempotent.
  EXPECT_EQ(&graph.analyze(), &analysis);
}

TEST_F(GraphTest, LevelsGroupReactionsByLevel) {
  Environment env(clock);
  Counter counter(env, 10_ms, 1);
  Doubler d1(env, "d1");
  Doubler d2(env, "d2");
  env.connect(counter.out, d1.in);
  env.connect(d1.out, d2.in);
  env.assemble();
  const DependencyGraph& graph = *env.graph();
  ASSERT_EQ(graph.levels().size(), 3U);
  ASSERT_EQ(graph.levels()[0].size(), 1U);
  EXPECT_EQ(graph.levels()[0][0], counter.reactions()[0].get());
  EXPECT_EQ(graph.levels()[1][0], d1.reactions()[0].get());
  EXPECT_EQ(graph.levels()[2][0], d2.reactions()[0].get());
}

TEST_F(GraphTest, WritersOfResolvesThroughBindings) {
  Environment env(clock);
  Counter counter(env, 10_ms, 1);
  Doubler doubler(env, "d");
  Recorder<int> recorder(env);
  env.connect(counter.out, doubler.in);
  env.connect(doubler.out, recorder.in);
  env.assemble();
  // The writer of a *bound input* is the writer of its source port.
  const auto& writers = DependencyGraph::writers_of(doubler.in);
  ASSERT_EQ(writers.size(), 1U);
  EXPECT_EQ(writers[0], counter.reactions()[0].get());
  const auto& sink_writers = DependencyGraph::writers_of(recorder.in);
  ASSERT_EQ(sink_writers.size(), 1U);
  EXPECT_EQ(sink_writers[0], doubler.reactions()[0].get());
}

TEST_F(GraphTest, DependenciesOfListsDirectPredecessors) {
  Environment env(clock);
  Counter counter(env, 10_ms, 1);
  Doubler d1(env, "d1");
  Doubler d2(env, "d2");
  env.connect(counter.out, d1.in);
  env.connect(d1.out, d2.in);
  env.assemble();
  const DependencyGraph& graph = *env.graph();
  EXPECT_TRUE(graph.dependencies_of(*counter.reactions()[0]).empty());
  const auto d2_deps = graph.dependencies_of(*d2.reactions()[0]);
  ASSERT_EQ(d2_deps.size(), 1U);  // direct only — not the transitive counter
  EXPECT_EQ(d2_deps[0], d1.reactions()[0].get());
}

TEST_F(GraphTest, EmptyGraphAnalyzesAcyclicWithNoLevels) {
  // A reactor without reactions is a legal (if pointless) program.
  class Empty final : public Reactor {
   public:
    explicit Empty(Environment& env) : Reactor("empty", env) {}
  };
  Environment env(clock);
  Empty empty(env);
  DependencyGraph graph(env.top_level());
  const auto& analysis = graph.analyze();
  EXPECT_TRUE(analysis.acyclic);
  EXPECT_EQ(analysis.level_count, 0);
  EXPECT_TRUE(analysis.cyclic.empty());
  EXPECT_TRUE(graph.reactions().empty());
  // assign_levels still reports the scheduler's 1-level minimum.
  EXPECT_EQ(graph.assign_levels(), 1);
}

TEST_F(GraphTest, SingleReactionSelfLoopIsItsOwnCycle) {
  class SelfLoop final : public Reactor {
   public:
    Input<int> in{"in", this};
    Output<int> out{"out", this};
    explicit SelfLoop(Environment& env) : Reactor("self", env) {
      add_reaction("echo", [] {}).triggered_by(in).writes(out);
    }
  };
  Environment env(clock);
  SelfLoop self(env);
  env.connect(self.out, self.in);
  DependencyGraph graph(env.top_level());
  const auto& analysis = graph.analyze();
  EXPECT_FALSE(analysis.acyclic);
  ASSERT_EQ(analysis.cyclic.size(), 1U);
  EXPECT_EQ(graph.reactions()[analysis.cyclic[0]], self.reactions()[0].get());
  EXPECT_THROW((void)graph.export_plan(), std::logic_error);
}

TEST_F(GraphTest, RepeatedAnalyzeKeepsLevelsStable) {
  Environment env(clock);
  Counter counter(env, 10_ms, 1);
  Doubler d1(env, "d1");
  Doubler d2(env, "d2");
  env.connect(counter.out, d1.in);
  env.connect(d1.out, d2.in);
  DependencyGraph graph(env.top_level());
  const auto& first = graph.analyze();
  std::vector<int> levels;
  for (std::size_t i = 0; i < graph.reactions().size(); ++i) {
    levels.push_back(graph.level_of(i));
  }
  for (int round = 0; round < 3; ++round) {
    const auto& again = graph.analyze();
    EXPECT_EQ(&again, &first) << "analyze() must be cached";
    for (std::size_t i = 0; i < graph.reactions().size(); ++i) {
      EXPECT_EQ(graph.level_of(i), levels[i]);
    }
  }
}

// --- compiled schedule plans -------------------------------------------------

TEST_F(GraphTest, ExportedPlanAppliesToAnIdenticalTopology) {
  const auto build = [this](Environment& env, std::vector<std::unique_ptr<Reactor>>& owned) {
    auto counter = std::make_unique<Counter>(env, 10_ms, 1);
    auto d1 = std::make_unique<Doubler>(env, "d1");
    auto d2 = std::make_unique<Doubler>(env, "d2");
    env.connect(counter->out, d1->in);
    env.connect(d1->out, d2->in);
    owned.push_back(std::move(counter));
    owned.push_back(std::move(d1));
    owned.push_back(std::move(d2));
  };
  Environment reference(clock);
  std::vector<std::unique_ptr<Reactor>> reference_reactors;
  build(reference, reference_reactors);
  DependencyGraph probe(reference.top_level());
  const SchedulePlan plan = probe.export_plan();
  ASSERT_EQ(plan.entries.size(), 3U);
  EXPECT_EQ(plan.level_count, 3);

  Environment consumer(clock);
  std::vector<std::unique_ptr<Reactor>> consumer_reactors;
  build(consumer, consumer_reactors);
  consumer.set_schedule_plan(plan);
  consumer.assemble();
  EXPECT_EQ(consumer.level_count(), 3);
  for (std::size_t i = 0; i < consumer_reactors.size(); ++i) {
    EXPECT_EQ(consumer_reactors[i]->reactions()[0]->level(), static_cast<int>(i));
  }
}

TEST_F(GraphTest, StaleOrTamperedPlansAreRejected) {
  Environment env(clock);
  Counter counter(env, 10_ms, 1);
  Doubler doubler(env, "d");
  env.connect(counter.out, doubler.in);
  DependencyGraph probe(env.top_level());
  const SchedulePlan good = probe.export_plan();

  {
    SchedulePlan missing = good;
    missing.entries.pop_back();
    DependencyGraph graph(env.top_level());
    EXPECT_THROW((void)graph.apply_plan(missing), std::logic_error);
  }
  {
    SchedulePlan renamed = good;
    renamed.entries[0].fqn = "ghost/reaction";
    DependencyGraph graph(env.top_level());
    EXPECT_THROW((void)graph.apply_plan(renamed), std::logic_error);
  }
  {
    // Swapped levels break edge monotonicity: counter must precede doubler.
    SchedulePlan swapped = good;
    std::swap(swapped.entries[0].level, swapped.entries[1].level);
    DependencyGraph graph(env.top_level());
    EXPECT_THROW((void)graph.apply_plan(swapped), std::logic_error);
  }
  {
    SchedulePlan out_of_range = good;
    out_of_range.entries[0].level = good.level_count;
    DependencyGraph graph(env.top_level());
    EXPECT_THROW((void)graph.apply_plan(out_of_range), std::logic_error);
  }
  // A valid plan still applies after all the rejected attempts.
  DependencyGraph graph(env.top_level());
  EXPECT_EQ(graph.apply_plan(good), good.level_count);
}

TEST_F(GraphTest, SetSchedulePlanAfterAssembleThrows) {
  Environment env(clock);
  Counter counter(env, 10_ms, 1);
  env.assemble();
  DependencyGraph probe(env.top_level());
  EXPECT_THROW(env.set_schedule_plan(probe.export_plan()), std::logic_error);
}

TEST_F(GraphTest, IndexOfUnknownReactionIsSize) {
  Environment env(clock);
  Counter inside(env, 10_ms, 1);
  env.assemble();
  Environment other(clock);
  Counter outside(other, 10_ms, 1);
  const DependencyGraph& graph = *env.graph();
  EXPECT_EQ(graph.index_of(*inside.reactions()[0]), 0U);
  EXPECT_EQ(graph.index_of(*outside.reactions()[0]), graph.reactions().size());
}

}  // namespace
}  // namespace dear::reactor
