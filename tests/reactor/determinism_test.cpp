// The determinism property: a reactor program without physical actions
// produces exactly the same execution trace — (tag, reaction) sequence —
// on every run, for every worker count, and on both schedulers.
#include <gtest/gtest.h>

#include <algorithm>

#include "reactor_fixture.hpp"

namespace dear::reactor {
namespace {

using namespace dear::literals;
using testing::Counter;
using testing::Doubler;
using testing::Recorder;

/// Builds a small but nontrivial program: two timer sources at different
/// rates, a shared transform stage, a fan-in consumer with state.
struct Program {
  explicit Program(Environment& env)
      : fast(env, 2_ms, 20, "fast"),
        slow(env, 5_ms, 8, "slow"),
        doubler(env),
        fast_sink(env, "fast_sink"),
        slow_sink(env, "slow_sink") {
    env.connect(fast.out, doubler.in);
    env.connect(doubler.out, fast_sink.in);
    env.connect(slow.out, slow_sink.in);
  }

  Counter fast;
  Counter slow;
  Doubler doubler;
  Recorder<int> fast_sink;
  Recorder<int> slow_sink;
};

/// Normalizes a trace for comparison: tags become relative to the start
/// tag, and records within one tag are sorted by name — reactions on the
/// same level are semantically unordered (they may run in parallel), so
/// their recording order is not part of the observable behavior.
[[nodiscard]] std::string normalize_trace(const Environment& env, const Trace& trace,
                                          TimePoint start) {
  (void)env;
  std::vector<std::pair<Tag, std::string>> records;
  for (const TraceRecord& record : trace.records()) {
    records.emplace_back(Tag{record.tag.time - start, record.tag.microstep}, record.reaction);
  }
  std::sort(records.begin(), records.end());
  std::string normalized;
  for (const auto& [tag, name] : records) {
    normalized += tag.to_string() + " " + name + "\n";
  }
  return normalized;
}

[[nodiscard]] std::string threaded_trace(unsigned workers) {
  RealClock clock;
  Environment::Config config;
  config.workers = workers;
  config.tracing = true;
  Environment env(clock, config);
  Program program(env);
  env.run();
  return normalize_trace(env, env.trace(), env.start_time());
}

class WorkerCountTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(WorkerCountTest, TraceIndependentOfWorkerCount) {
  const std::string reference = threaded_trace(1);
  const std::string trace = threaded_trace(GetParam());
  EXPECT_EQ(trace, reference) << "worker count changed observable behavior";
}

INSTANTIATE_TEST_SUITE_P(Workers, WorkerCountTest, ::testing::Values(1u, 2u, 4u, 8u));

TEST(Determinism, RepeatedThreadedRunsIdentical) {
  const std::string first = threaded_trace(2);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(threaded_trace(2), first);
  }
}

[[nodiscard]] std::string sim_trace() {
  sim::Kernel kernel;
  SimClock clock(kernel);
  Environment::Config config;
  config.tracing = true;
  Environment env(clock, config);
  Program program(env);
  SimDriver driver(env, kernel, common::Rng(1));
  driver.start();
  kernel.run_until(10_s);
  return normalize_trace(env, env.trace(), env.start_time());
}

TEST(Determinism, SimAndThreadedTracesAgree) {
  // The same logical program must behave identically under the DES driver
  // and the threaded scheduler.
  EXPECT_EQ(sim_trace(), threaded_trace(2));
}

TEST(Determinism, RecorderValuesIdenticalAcrossRuns) {
  auto run_values = [] {
    RealClock clock;
    Environment::Config config;
    config.workers = 4;
    Environment env(clock, config);
    Program program(env);
    env.run();
    std::vector<int> values;
    for (const auto& entry : program.fast_sink.entries) {
      values.push_back(entry.value);
    }
    for (const auto& entry : program.slow_sink.entries) {
      values.push_back(entry.value);
    }
    return values;
  };
  const auto reference = run_values();
  // slow reaches its limit first (at 35 ms) and shuts the program down:
  // fast emitted 18 values (0..34 ms) + slow's 8.
  EXPECT_EQ(reference.size(), 26u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(run_values(), reference);
  }
}

TEST(Determinism, TraceRecordsDeadlineViolations) {
  sim::Kernel kernel;
  SimClock clock(kernel);
  Environment::Config config;
  config.tracing = true;
  Environment env(clock, config);
  class Violator final : public Reactor {
   public:
    Output<int> out{"out", this};
    explicit Violator(Environment& env) : Reactor("violator", env), timer_("t", this, 10_ms) {
      add_reaction("produce",
                   [this] {
                     out.set(1);
                     request_shutdown();
                   })
          .triggered_by(timer_)
          .writes(out)
          .set_modeled_cost(sim::ExecTimeModel::constant(5_ms));
    }

   private:
    Timer timer_;
  };
  class Sink final : public Reactor {
   public:
    Input<int> in{"in", this};
    explicit Sink(Environment& env) : Reactor("sink", env) {
      add_reaction("consume", [] {}).triggered_by(in).with_deadline(1_ms, [] {});
    }
  };
  Violator violator(env);
  Sink sink(env);
  env.connect(violator.out, sink.in);
  SimDriver driver(env, kernel, common::Rng(1));
  driver.start();
  kernel.run_until(1_s);
  bool violation_recorded = false;
  for (const TraceRecord& record : env.trace().records()) {
    if (record.deadline_violated) {
      violation_recorded = true;
      EXPECT_EQ(record.reaction, "sink.consume");
    }
  }
  EXPECT_TRUE(violation_recorded);
}

}  // namespace
}  // namespace dear::reactor
