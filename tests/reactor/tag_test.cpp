#include "reactor/tag.hpp"

#include <gtest/gtest.h>

namespace dear::reactor {
namespace {

using namespace dear::literals;

TEST(Tag, OrderingByTimeThenMicrostep) {
  EXPECT_LT((Tag{1, 0}), (Tag{2, 0}));
  EXPECT_LT((Tag{1, 0}), (Tag{1, 1}));
  EXPECT_LT((Tag{1, 5}), (Tag{2, 0}));
  EXPECT_EQ((Tag{3, 2}), (Tag{3, 2}));
  EXPECT_GT((Tag{3, 3}), (Tag{3, 2}));
}

TEST(Tag, ZeroDelayAdvancesMicrostep) {
  const Tag tag{100, 4};
  const Tag delayed = tag.delay(0);
  EXPECT_EQ(delayed.time, 100);
  EXPECT_EQ(delayed.microstep, 5u);
  EXPECT_GT(delayed, tag);  // strictly later
}

TEST(Tag, NegativeDelayBehavesLikeZero) {
  const Tag tag{100, 4};
  const Tag delayed = tag.delay(-10);
  EXPECT_EQ(delayed, tag.delay(0));
}

TEST(Tag, PositiveDelayResetsMicrostep) {
  const Tag tag{100, 4};
  const Tag delayed = tag.delay(50);
  EXPECT_EQ(delayed.time, 150);
  EXPECT_EQ(delayed.microstep, 0u);
}

TEST(Tag, DelayChainsAreMonotone) {
  Tag tag{0, 0};
  Tag previous = tag;
  for (int i = 0; i < 100; ++i) {
    tag = tag.delay(i % 3 == 0 ? 0 : 1_ms);
    EXPECT_GT(tag, previous);
    previous = tag;
  }
}

TEST(Tag, MaximumDominatesEverything) {
  EXPECT_GT(Tag::maximum(), (Tag{kTimeMax, 0}));
  EXPECT_GT(Tag::maximum(), (Tag{0, 0}));
}

TEST(Tag, ToStringIsReadable) {
  const Tag tag{2500000, 3};
  const std::string text = tag.to_string();
  EXPECT_NE(text.find("2.500ms"), std::string::npos);
  EXPECT_NE(text.find("3"), std::string::npos);
}

}  // namespace
}  // namespace dear::reactor
