// Threaded scheduler tests: real clock, worker pools, physical actions
// from foreign threads, deadlines under real time.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "reactor_fixture.hpp"

namespace dear::reactor {
namespace {

using namespace dear::literals;
using testing::Counter;
using testing::Recorder;

TEST(ThreadedScheduler, RunsTimerProgramToShutdown) {
  RealClock clock;
  Environment env(clock);
  Counter counter(env, 1_ms, 10);
  Recorder<int> recorder(env);
  env.connect(counter.out, recorder.in);
  env.run();
  ASSERT_EQ(recorder.entries.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(recorder.entries[static_cast<std::size_t>(i)].value, i);
  }
  EXPECT_EQ(env.scheduler().tags_processed(), 11u);  // 10 timer tags + shutdown
}

TEST(ThreadedScheduler, TimerTagsFollowRealTime) {
  // Events are never handled before physical time exceeds their tag.
  RealClock clock;
  Environment env(clock);
  class Probe final : public Reactor {
   public:
    std::vector<Duration> lags;
    explicit Probe(Environment& env) : Reactor("probe", env), timer_("t", this, 2_ms) {
      add_reaction("tick",
                   [this] {
                     lags.push_back(physical_time() - logical_time());
                     if (lags.size() >= 5) {
                       request_shutdown();
                     }
                   })
          .triggered_by(timer_);
    }

   private:
    Timer timer_;
  };
  Probe probe(env);
  env.run();
  ASSERT_EQ(probe.lags.size(), 5u);
  for (const Duration lag : probe.lags) {
    EXPECT_GE(lag, 0) << "reaction ran before physical time reached the tag";
    EXPECT_LT(lag, 100_ms) << "implausible scheduling lag";
  }
}

TEST(ThreadedScheduler, TimeoutTerminatesRun) {
  RealClock clock;
  Environment::Config config;
  config.timeout = 10_ms;
  Environment env(clock, config);
  class Endless final : public Reactor {
   public:
    int ticks{0};
    explicit Endless(Environment& env) : Reactor("endless", env), timer_("t", this, 1_ms) {
      add_reaction("tick", [this] { ++ticks; }).triggered_by(timer_);
    }

   private:
    Timer timer_;
  };
  Endless endless(env);
  env.run();
  EXPECT_GE(endless.ticks, 9);
  EXPECT_LE(endless.ticks, 11);
}

TEST(ThreadedScheduler, KeepaliveWaitsForPhysicalActions) {
  RealClock clock;
  Environment::Config config;
  config.keepalive = true;
  Environment env(clock, config);
  class Sink final : public Reactor {
   public:
    PhysicalAction<int> in{"in", this};
    std::atomic<int> received{0};
    explicit Sink(Environment& env) : Reactor("sink", env) {
      add_reaction("on_in",
                   [this] {
                     received.fetch_add(in.get());
                     if (received.load() >= 30) {
                       request_shutdown();
                     }
                   })
          .triggered_by(in);
    }
  };
  Sink sink(env);
  std::thread producer([&] {
    for (int i = 0; i < 3; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      sink.in.schedule(10);
    }
  });
  env.run();  // returns once the sink requested shutdown
  producer.join();
  EXPECT_EQ(sink.received.load(), 30);
}

TEST(ThreadedScheduler, RequestShutdownFromOutside) {
  RealClock clock;
  Environment::Config config;
  config.keepalive = true;
  Environment env(clock, config);
  Counter counter(env, 1_ms, 1'000'000);  // would run for ages
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    env.request_shutdown();
  });
  env.run();
  stopper.join();
  EXPECT_LT(counter.count(), 1'000'000);
}

TEST(ThreadedScheduler, DeadlineViolationRunsHandlerInsteadOfBody) {
  RealClock clock;
  Environment env(clock);
  class Late final : public Reactor {
   public:
    int body_runs{0};
    int handler_runs{0};
    explicit Late(Environment& env) : Reactor("late", env), timer_("t", this, 2_ms) {
      // The first reaction at each tag burns ~3 ms of physical time; the
      // second has a 1 ms deadline relative to the same tag, which is
      // violated because physical time has already passed tag + 1 ms.
      add_reaction("burn",
                   [this] {
                     std::this_thread::sleep_for(std::chrono::milliseconds(3));
                     if (++ticks_ >= 3) {
                       request_shutdown();
                     }
                   })
          .triggered_by(timer_);
      add_reaction("check", [this] { ++body_runs; })
          .triggered_by(timer_)
          .with_deadline(1_ms, [this] { ++handler_runs; });
    }

   private:
    Timer timer_;
    int ticks_{0};
  };
  Late late(env);
  env.run();
  EXPECT_EQ(late.body_runs, 0);
  EXPECT_EQ(late.handler_runs, 3);
  EXPECT_EQ(env.scheduler().deadline_violations(), 3u);
}

TEST(ThreadedScheduler, DeadlineMetRunsBody) {
  RealClock clock;
  Environment env(clock);
  class OnTime final : public Reactor {
   public:
    int body_runs{0};
    int handler_runs{0};
    explicit OnTime(Environment& env) : Reactor("on_time", env), timer_("t", this, 2_ms) {
      add_reaction("check",
                   [this] {
                     if (++body_runs >= 3) {
                       request_shutdown();
                     }
                   })
          .triggered_by(timer_)
          .with_deadline(500_ms, [this] { ++handler_runs; });
    }

   private:
    Timer timer_;
  };
  OnTime on_time(env);
  env.run();
  EXPECT_EQ(on_time.body_runs, 3);
  EXPECT_EQ(on_time.handler_runs, 0);
}

TEST(ThreadedScheduler, ParallelWorkersExecuteIndependentReactions) {
  RealClock clock;
  Environment::Config config;
  config.workers = 4;
  Environment env(clock, config);
  // Several reactors triggered by their own timers at the same period:
  // their reactions are independent (same level) and may run concurrently.
  class Busy final : public Reactor {
   public:
    std::atomic<int>& concurrent;
    std::atomic<int>& peak;
    explicit Busy(Environment& env, std::string name, std::atomic<int>& concurrent_count,
                  std::atomic<int>& peak_count)
        : Reactor(std::move(name), env), concurrent(concurrent_count), peak(peak_count),
          timer_("t", this, 5_ms) {
      add_reaction("work",
                   [this] {
                     const int now = concurrent.fetch_add(1) + 1;
                     int expected = peak.load();
                     while (now > expected && !peak.compare_exchange_weak(expected, now)) {
                     }
                     std::this_thread::sleep_for(std::chrono::milliseconds(2));
                     concurrent.fetch_sub(1);
                     if (++count_ >= 3) {
                       request_shutdown();
                     }
                   })
          .triggered_by(timer_);
    }

   private:
    Timer timer_;
    int count_{0};
  };
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  Busy a(env, "a", concurrent, peak);
  Busy b(env, "b", concurrent, peak);
  Busy c(env, "c", concurrent, peak);
  env.run();
  EXPECT_GE(peak.load(), 2) << "same-level reactions should run in parallel";
}

TEST(ThreadedScheduler, StatsAreConsistent) {
  RealClock clock;
  Environment env(clock);
  Counter counter(env, 1_ms, 5);
  Recorder<int> recorder(env);
  env.connect(counter.out, recorder.in);
  env.run();
  EXPECT_EQ(env.scheduler().reactions_executed(), 10u);  // 5 emits + 5 records
  EXPECT_EQ(env.scheduler().deadline_violations(), 0u);
}

TEST(ThreadedScheduler, RunRequiresRealClock) {
  sim::Kernel kernel;
  SimClock clock(kernel);
  Environment env(clock);
  Counter counter(env, 1_ms, 1);
  EXPECT_THROW(env.run(), std::logic_error);
}

}  // namespace
}  // namespace dear::reactor
