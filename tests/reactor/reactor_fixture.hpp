// Shared test reactors for the runtime tests. All tests here run on the
// DES driver unless they specifically exercise the threaded scheduler.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "reactor/runtime.hpp"
#include "sim/kernel.hpp"

namespace dear::reactor::testing {

/// Emits 0, 1, 2, ... every `period`, stopping after `limit` values.
class Counter final : public Reactor {
 public:
  Output<int> out{"out", this};

  Counter(Environment& env, Duration period, int limit, std::string name = "counter")
      : Reactor(std::move(name), env) {
    timer_ = std::make_unique<Timer>("timer", this, period);
    add_reaction("emit",
                 [this, limit] {
                   out.set(count_);
                   if (++count_ >= limit) {
                     request_shutdown();
                   }
                 })
        .triggered_by(*timer_)
        .writes(out);
  }

  [[nodiscard]] int count() const noexcept { return count_; }

 private:
  std::unique_ptr<Timer> timer_;
  int count_{0};
};

/// Records every received value with its tag.
template <typename T>
class Recorder final : public Reactor {
 public:
  Input<T> in{"in", this};

  struct Entry {
    T value;
    Tag tag;
  };

  explicit Recorder(Environment& env, std::string name = "recorder")
      : Reactor(std::move(name), env) {
    add_reaction("record", [this] {
      entries.push_back(Entry{in.get(), current_tag()});
    }).triggered_by(in);
  }

  std::vector<Entry> entries;
};

/// Forwards its input to its output, optionally transforming.
class Doubler final : public Reactor {
 public:
  Input<int> in{"in", this};
  Output<int> out{"out", this};

  explicit Doubler(Environment& env, std::string name = "doubler")
      : Reactor(std::move(name), env) {
    add_reaction("double", [this] { out.set(in.get() * 2); })
        .triggered_by(in)
        .writes(out);
  }
};

/// Runs the environment on the kernel until quiescence or the horizon.
inline void run_sim(Environment& env, sim::Kernel& kernel, Duration horizon,
                    common::Rng rng = common::Rng(1)) {
  SimDriver driver(env, kernel, rng);
  driver.start();
  kernel.run_until(horizon);
}

// --- logical-action-loop topology blocks (pipeline / fan-out tests) --------
// The benches keep their own equivalents in bench/topologies.hpp — the test
// tree must not depend on bench sources.

/// Emits 0..limit-1 through a self-rescheduling logical action (`delay`
/// selects back-to-back microsteps (0) or distinct tag times (>0)), then
/// requests shutdown.
class LoopSource final : public Reactor {
 public:
  Output<std::int64_t> out{"out", this};

  LoopSource(Environment& env, std::int64_t limit, Duration delay = 0)
      : Reactor("source", env), limit_(limit), delay_(delay) {
    add_reaction("kick", [this] { action_.schedule(Empty{}); }).triggered_by(startup_);
    add_reaction("emit",
                 [this] {
                   out.set(count_);
                   if (++count_ < limit_) {
                     action_.schedule(Empty{}, delay_);
                   } else {
                     request_shutdown();
                   }
                 })
        .triggered_by(action_)
        .writes(out);
  }

 private:
  StartupTrigger startup_{"startup", this};
  LogicalAction<Empty> action_{"tick", this};
  std::int64_t limit_;
  Duration delay_;
  std::int64_t count_{0};
};

/// Forwards in + 1.
class LoopRelay final : public Reactor {
 public:
  Input<std::int64_t> in{"in", this};
  Output<std::int64_t> out{"out", this};

  LoopRelay(Environment& env, std::string name) : Reactor(std::move(name), env) {
    add_reaction("relay", [this] { out.set(in.get() + 1); }).triggered_by(in).writes(out);
  }
};

/// Accumulates every received value.
class LoopSink final : public Reactor {
 public:
  Input<std::int64_t> in{"in", this};
  std::int64_t sum{0};

  explicit LoopSink(Environment& env, std::string name) : Reactor(std::move(name), env) {
    add_reaction("consume", [this] { sum += in.get(); }).triggered_by(in);
  }
};

}  // namespace dear::reactor::testing
