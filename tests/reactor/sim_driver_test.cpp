#include "reactor/sim_driver.hpp"

#include <gtest/gtest.h>

#include "reactor_fixture.hpp"

namespace dear::reactor {
namespace {

using namespace dear::literals;
using testing::Counter;
using testing::Recorder;

struct SimDriverTest : ::testing::Test {
  sim::Kernel kernel;
  SimClock clock{kernel};
};

TEST_F(SimDriverTest, PhysicalTimeEqualsSimTime) {
  Environment env(clock);
  class Probe final : public Reactor {
   public:
    std::vector<std::pair<TimePoint, TimePoint>> samples;  // (logical, physical)
    explicit Probe(Environment& env) : Reactor("probe", env), timer_("t", this, 10_ms) {
      add_reaction("tick",
                   [this] {
                     samples.emplace_back(logical_time(), physical_time());
                     if (samples.size() >= 4) {
                       request_shutdown();
                     }
                   })
          .triggered_by(timer_);
    }

   private:
    Timer timer_;
  };
  Probe probe(env);
  SimDriver driver(env, kernel, common::Rng(1));
  driver.start();
  kernel.run_until(1_s);
  ASSERT_EQ(probe.samples.size(), 4u);
  for (const auto& [logical, physical] : probe.samples) {
    EXPECT_EQ(logical, physical);  // no modeled cost: zero lag
  }
}

TEST_F(SimDriverTest, ModeledCostDelaysSubsequentTags) {
  Environment env(clock);
  class Heavy final : public Reactor {
   public:
    std::vector<TimePoint> physical_times;
    explicit Heavy(Environment& env) : Reactor("heavy", env), timer_("t", this, 10_ms) {
      add_reaction("work",
                   [this] {
                     physical_times.push_back(physical_time());
                     if (physical_times.size() >= 3) {
                       request_shutdown();
                     }
                   })
          .triggered_by(timer_)
          .set_modeled_cost(sim::ExecTimeModel::constant(15_ms));  // > period!
    }

   private:
    Timer timer_;
  };
  Heavy heavy(env);
  SimDriver driver(env, kernel, common::Rng(1));
  driver.start();
  kernel.run_until(1_s);
  ASSERT_EQ(heavy.physical_times.size(), 3u);
  EXPECT_EQ(heavy.physical_times[0], 0);
  // Tag 10 ms can only be processed after the 15 ms of modeled work.
  EXPECT_EQ(heavy.physical_times[1], 15_ms);
  EXPECT_EQ(heavy.physical_times[2], 30_ms);
  EXPECT_EQ(driver.consumed_cost(), 45_ms);
}

TEST_F(SimDriverTest, IntraTagCostTriggersDownstreamDeadline) {
  // A slow reaction at a tag pushes the *same-tag* downstream reaction
  // past its deadline — the mechanism behind the deadline/error sweep.
  Environment env(clock);
  class SlowProducer final : public Reactor {
   public:
    Output<int> out{"out", this};
    explicit SlowProducer(Environment& env) : Reactor("slow", env), timer_("t", this, 20_ms) {
      add_reaction("produce",
                   [this] {
                     out.set(1);
                     if (++count_ >= 3) {
                       request_shutdown();
                     }
                   })
          .triggered_by(timer_)
          .writes(out)
          .set_modeled_cost(sim::ExecTimeModel::constant(8_ms));
    }

   private:
    Timer timer_;
    int count_{0};
  };
  class DeadlineSink final : public Reactor {
   public:
    Input<int> in{"in", this};
    int ok{0};
    int violated{0};
    explicit DeadlineSink(Environment& env, Duration deadline) : Reactor("sink", env) {
      add_reaction("consume", [this] { ++ok; })
          .triggered_by(in)
          .with_deadline(deadline, [this] { ++violated; });
    }
  };
  SlowProducer producer(env);
  DeadlineSink tight(env, 5_ms);  // 8 ms of upstream work > 5 ms deadline
  env.connect(producer.out, tight.in);
  SimDriver driver(env, kernel, common::Rng(1));
  driver.start();
  kernel.run_until(1_s);
  EXPECT_EQ(tight.ok, 0);
  EXPECT_EQ(tight.violated, 3);
}

TEST_F(SimDriverTest, GenerousDeadlineSurvivesIntraTagCost) {
  Environment env(clock);
  class SlowProducer final : public Reactor {
   public:
    Output<int> out{"out", this};
    explicit SlowProducer(Environment& env) : Reactor("slow", env), timer_("t", this, 20_ms) {
      add_reaction("produce",
                   [this] {
                     out.set(1);
                     if (++count_ >= 3) {
                       request_shutdown();
                     }
                   })
          .triggered_by(timer_)
          .writes(out)
          .set_modeled_cost(sim::ExecTimeModel::constant(8_ms));
    }

   private:
    Timer timer_;
    int count_{0};
  };
  class DeadlineSink final : public Reactor {
   public:
    Input<int> in{"in", this};
    int ok{0};
    int violated{0};
    explicit DeadlineSink(Environment& env, Duration deadline) : Reactor("sink", env) {
      add_reaction("consume", [this] { ++ok; })
          .triggered_by(in)
          .with_deadline(deadline, [this] { ++violated; });
    }
  };
  SlowProducer producer(env);
  DeadlineSink loose(env, 10_ms);
  env.connect(producer.out, loose.in);
  SimDriver driver(env, kernel, common::Rng(1));
  driver.start();
  kernel.run_until(1_s);
  EXPECT_EQ(loose.ok, 3);
  EXPECT_EQ(loose.violated, 0);
}

TEST_F(SimDriverTest, TwoEnvironmentsCoSimulate) {
  // Two independent reactor environments (two SWC processes) share the
  // kernel; events interleave in global simulated time.
  Environment env_a(clock);
  Environment env_b(clock);
  Counter counter_a(env_a, 10_ms, 3, "counter_a");
  Recorder<int> recorder_a(env_a, "recorder_a");
  env_a.connect(counter_a.out, recorder_a.in);
  Counter counter_b(env_b, 15_ms, 2, "counter_b");
  Recorder<int> recorder_b(env_b, "recorder_b");
  env_b.connect(counter_b.out, recorder_b.in);

  SimDriver driver_a(env_a, kernel, common::Rng(1));
  SimDriver driver_b(env_b, kernel, common::Rng(2));
  driver_a.start();
  driver_b.start();
  kernel.run_until(1_s);
  EXPECT_EQ(recorder_a.entries.size(), 3u);
  EXPECT_EQ(recorder_b.entries.size(), 2u);
  EXPECT_TRUE(driver_a.finished());
  EXPECT_TRUE(driver_b.finished());
}

TEST_F(SimDriverTest, StartIsIdempotent) {
  Environment env(clock);
  Counter counter(env, 10_ms, 2);
  SimDriver driver(env, kernel, common::Rng(1));
  driver.start();
  driver.start();  // no effect
  kernel.run_until(1_s);
  EXPECT_EQ(counter.count(), 2);
}

TEST_F(SimDriverTest, LatePhysicalActionWakesIdleEnvironment) {
  Environment::Config config;
  config.keepalive = true;
  Environment env(clock, config);
  class Sink final : public Reactor {
   public:
    PhysicalAction<int> in{"in", this};
    std::vector<TimePoint> seen;
    explicit Sink(Environment& env) : Reactor("sink", env) {
      add_reaction("on_in", [this] { seen.push_back(logical_time()); }).triggered_by(in);
    }
  };
  Sink sink(env);
  SimDriver driver(env, kernel, common::Rng(1));
  driver.start();
  kernel.run_until(50_ms);  // environment idles with an empty queue
  kernel.schedule_at(80_ms, [&] { sink.in.schedule(1); });
  kernel.run_until(200_ms);
  ASSERT_EQ(sink.seen.size(), 1u);
  EXPECT_EQ(sink.seen[0], 80_ms);
}

}  // namespace
}  // namespace dear::reactor
