#include "reactor/delay.hpp"

#include <gtest/gtest.h>

#include "reactor_fixture.hpp"

namespace dear::reactor {
namespace {

using namespace dear::literals;
using testing::Recorder;
using testing::run_sim;

struct DelayTest : ::testing::Test {
  sim::Kernel kernel;
  SimClock clock{kernel};

  static Environment::Config with_timeout(Duration timeout) {
    Environment::Config config;
    config.timeout = timeout;
    return config;
  }
};

/// Emits 0, 1, 2, ... every `period` without requesting shutdown (the
/// environment timeout bounds the run, so delayed events can flush).
class PassiveCounter final : public Reactor {
 public:
  Output<int> out{"out", this};

  PassiveCounter(Environment& env, Duration period)
      : Reactor("counter", env), timer_("timer", this, period) {
    add_reaction("emit", [this] { out.set(count_++); }).triggered_by(timer_).writes(out);
  }

 private:
  Timer timer_;
  int count_{0};
};

TEST_F(DelayTest, PositiveDelayShiftsTags) {
  Environment env(clock, with_timeout(30_ms));
  PassiveCounter counter(env, 10_ms);
  Recorder<int> recorder(env);
  env.connect_delayed(counter.out, recorder.in, 4_ms);
  run_sim(env, kernel, 1_s);
  ASSERT_EQ(recorder.entries.size(), 3u);  // emitted 0/10/20 ms -> 4/14/24 ms
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(recorder.entries[i].value, static_cast<int>(i));
    EXPECT_EQ(recorder.entries[i].tag,
              (Tag{static_cast<TimePoint>(i) * 10_ms + 4_ms, 0}));
  }
}

TEST_F(DelayTest, ZeroDelayAdvancesMicrostep) {
  Environment env(clock, with_timeout(15_ms));
  PassiveCounter counter(env, 10_ms);
  Recorder<int> recorder(env);
  env.connect_delayed(counter.out, recorder.in, 0);
  run_sim(env, kernel, 1_s);
  ASSERT_EQ(recorder.entries.size(), 2u);
  EXPECT_EQ(recorder.entries[0].tag, (Tag{0, 1}));
  EXPECT_EQ(recorder.entries[1].tag, (Tag{10_ms, 1}));
}

TEST_F(DelayTest, DelayedEventsPastShutdownAreDiscarded) {
  // A delayed value whose release tag lies beyond the stop tag never
  // appears (shutdown semantics).
  Environment env(clock, with_timeout(12_ms));
  PassiveCounter counter(env, 10_ms);  // emits at 0, 10 ms
  Recorder<int> recorder(env);
  env.connect_delayed(counter.out, recorder.in, 5_ms);  // releases at 5, 15 ms
  run_sim(env, kernel, 1_s);
  ASSERT_EQ(recorder.entries.size(), 1u);
  EXPECT_EQ(recorder.entries[0].tag.time, 5_ms);
}

TEST_F(DelayTest, DelayedAndDirectPathsCoexist) {
  Environment env(clock, with_timeout(15_ms));
  PassiveCounter counter(env, 10_ms);
  Recorder<int> direct(env, "direct");
  Recorder<int> delayed(env, "delayed");
  env.connect(counter.out, direct.in);
  env.connect_delayed(counter.out, delayed.in, 3_ms);
  run_sim(env, kernel, 1_s);
  ASSERT_EQ(direct.entries.size(), 2u);
  ASSERT_EQ(delayed.entries.size(), 2u);
  EXPECT_EQ(direct.entries[0].tag.time, 0);
  EXPECT_EQ(delayed.entries[0].tag.time, 3_ms);
  EXPECT_EQ(direct.entries[1].value, delayed.entries[1].value);
}

TEST_F(DelayTest, DelayBreaksDependencyCycles) {
  // A feedback loop is illegal as a direct connection but fine through a
  // delayed one (the delay breaks the zero-delay cycle).
  class Feedback final : public Reactor {
   public:
    Input<int> in{"in", this};
    Output<int> out{"out", this};
    std::vector<int> seen;
    explicit Feedback(Environment& env) : Reactor("feedback", env) {
      add_reaction("kick", [this] { out.set(1); }).triggered_by(startup_).writes(out);
      add_reaction("loop",
                   [this] {
                     seen.push_back(in.get());
                     if (in.get() < 5) {
                       out.set(in.get() + 1);
                     } else {
                       request_shutdown();
                     }
                   })
          .triggered_by(in)
          .writes(out);
    }

   private:
    StartupTrigger startup_{"startup", this};
  };
  Environment env(clock);
  Feedback feedback(env);
  env.connect_delayed(feedback.out, feedback.in, 1_ms);
  run_sim(env, kernel, 1_s);
  EXPECT_EQ(feedback.seen, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST_F(DelayTest, DirectFeedbackLoopStillRejected) {
  class Feedback final : public Reactor {
   public:
    Input<int> in{"in", this};
    Output<int> out{"out", this};
    explicit Feedback(Environment& env) : Reactor("feedback", env) {
      add_reaction("loop", [] {}).triggered_by(in).writes(out);
    }
  };
  Environment env(clock);
  Feedback feedback(env);
  env.connect(feedback.out, feedback.in);
  EXPECT_THROW(env.assemble(), std::logic_error);
}

TEST_F(DelayTest, HeavyValuesAreNotCopied) {
  class Producer final : public Reactor {
   public:
    Output<std::vector<int>> out{"out", this};
    explicit Producer(Environment& env) : Reactor("producer", env) {
      add_reaction("emit", [this] { out.set(std::vector<int>(1000, 7)); })
          .triggered_by(startup_)
          .writes(out);
    }

   private:
    StartupTrigger startup_{"startup", this};
  };
  class Probe final : public Reactor {
   public:
    Input<std::vector<int>> in{"in", this};
    std::size_t size_seen{0};
    explicit Probe(Environment& env) : Reactor("probe", env) {
      add_reaction("check",
                   [this] {
                     size_seen = in.get().size();
                     request_shutdown();
                   })
          .triggered_by(in);
    }
  };
  Environment env(clock);
  Producer producer(env);
  Probe probe(env);
  env.connect_delayed(producer.out, probe.in, 5_ms);
  run_sim(env, kernel, 1_s);
  EXPECT_EQ(probe.size_seen, 1000u);
}

}  // namespace
}  // namespace dear::reactor
