#include "reactor/port.hpp"

#include <gtest/gtest.h>

#include "reactor_fixture.hpp"

namespace dear::reactor {
namespace {

using namespace dear::literals;
using testing::Counter;
using testing::Doubler;
using testing::Recorder;
using testing::run_sim;

struct PortTest : ::testing::Test {
  sim::Kernel kernel;
  SimClock clock{kernel};
};

TEST_F(PortTest, ValueFlowsThroughConnection) {
  Environment env(clock);
  Counter counter(env, 10_ms, 3);
  Recorder<int> recorder(env);
  env.connect(counter.out, recorder.in);
  run_sim(env, kernel, 1_s);
  ASSERT_EQ(recorder.entries.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(recorder.entries[static_cast<std::size_t>(i)].value, i);
    EXPECT_EQ(recorder.entries[static_cast<std::size_t>(i)].tag.time,
              static_cast<TimePoint>(i) * 10_ms);
  }
}

TEST_F(PortTest, FanOutDeliversToAllSinks) {
  Environment env(clock);
  Counter counter(env, 10_ms, 2);
  Recorder<int> a(env, "a");
  Recorder<int> b(env, "b");
  Recorder<int> c(env, "c");
  env.connect(counter.out, a.in);
  env.connect(counter.out, b.in);
  env.connect(counter.out, c.in);
  run_sim(env, kernel, 1_s);
  EXPECT_EQ(a.entries.size(), 2u);
  EXPECT_EQ(b.entries.size(), 2u);
  EXPECT_EQ(c.entries.size(), 2u);
}

TEST_F(PortTest, ChainedBindingsReachTheEnd) {
  Environment env(clock);
  Counter counter(env, 10_ms, 2);
  Doubler d1(env, "d1");
  Doubler d2(env, "d2");
  Recorder<int> recorder(env);
  env.connect(counter.out, d1.in);
  env.connect(d1.out, d2.in);
  env.connect(d2.out, recorder.in);
  run_sim(env, kernel, 1_s);
  ASSERT_EQ(recorder.entries.size(), 2u);
  EXPECT_EQ(recorder.entries[0].value, 0);
  EXPECT_EQ(recorder.entries[1].value, 4);  // 1 * 2 * 2
}

TEST_F(PortTest, SameTagForLogicallyInstantaneousChain) {
  Environment env(clock);
  Counter counter(env, 10_ms, 1);
  Doubler doubler(env);
  Recorder<int> recorder(env);
  env.connect(counter.out, doubler.in);
  env.connect(doubler.out, recorder.in);
  run_sim(env, kernel, 1_s);
  ASSERT_EQ(recorder.entries.size(), 1u);
  EXPECT_EQ(recorder.entries[0].tag, (Tag{0, 0}));  // reactions take zero logical time
}

TEST_F(PortTest, DoubleInwardBindingRejected) {
  Environment env(clock);
  Counter a(env, 10_ms, 1, "a");
  Counter b(env, 10_ms, 1, "b");
  Recorder<int> recorder(env);
  env.connect(a.out, recorder.in);
  EXPECT_THROW(env.connect(b.out, recorder.in), std::logic_error);
}

TEST_F(PortTest, ConnectAfterAssembleRejected) {
  Environment env(clock);
  Counter counter(env, 10_ms, 1);
  Recorder<int> recorder(env);
  env.assemble();
  EXPECT_THROW(env.connect(counter.out, recorder.in), std::logic_error);
}

TEST_F(PortTest, SelfConnectionRejected) {
  Environment env(clock);
  Counter counter(env, 10_ms, 1);
  EXPECT_THROW(env.connect(counter.out, counter.out), std::logic_error);
}

TEST_F(PortTest, SharedValueNotCopiedAcrossFanOut) {
  // Heavy payloads are shared by pointer: both sinks must observe the
  // same object.
  class Producer final : public Reactor {
   public:
    Output<std::vector<int>> out{"out", this};
    explicit Producer(Environment& env) : Reactor("producer", env) {
      add_reaction("emit",
                   [this] {
                     out.set(std::vector<int>{1, 2, 3});
                     request_shutdown();
                   })
          .triggered_by(startup_)
          .writes(out);
    }

   private:
    StartupTrigger startup_{"startup", this};
  };
  class PtrProbe final : public Reactor {
   public:
    Input<std::vector<int>> in{"in", this};
    const std::vector<int>* seen{nullptr};
    explicit PtrProbe(Environment& env, std::string name) : Reactor(std::move(name), env) {
      add_reaction("probe", [this] { seen = &in.get(); }).triggered_by(in);
    }
  };

  Environment env(clock);
  Producer producer(env);
  PtrProbe a(env, "a");
  PtrProbe b(env, "b");
  env.connect(producer.out, a.in);
  env.connect(producer.out, b.in);
  run_sim(env, kernel, 1_s);
  ASSERT_NE(a.seen, nullptr);
  EXPECT_EQ(a.seen, b.seen);
}

TEST_F(PortTest, PresenceClearedBetweenTags) {
  class Probe final : public Reactor {
   public:
    Input<int> in{"in", this};
    int absent_ticks{0};
    int present_ticks{0};
    explicit Probe(Environment& env) : Reactor("probe", env) {
      timer_ = std::make_unique<Timer>("timer", this, 5 * kMillisecond);
      add_reaction("check",
                   [this] {
                     if (in.is_present()) {
                       ++present_ticks;
                     } else {
                       ++absent_ticks;
                     }
                   })
          .triggered_by(*timer_)
          .reads(in);
    }

   private:
    std::unique_ptr<Timer> timer_;
  };

  Environment env(clock);
  Counter counter(env, 10_ms, 3);  // fires at 0, 10, 20 ms
  Probe probe(env);                // checks every 5 ms
  env.connect(counter.out, probe.in);
  run_sim(env, kernel, 22_ms);
  // Probe ticks at 0,5,10,15,20: present at 0,10,20 and absent at 5,15.
  EXPECT_EQ(probe.present_ticks, 3);
  EXPECT_EQ(probe.absent_ticks, 2);
}

}  // namespace
}  // namespace dear::reactor
