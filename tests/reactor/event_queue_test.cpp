// Deterministic-order conformance for the pooled EventQueue.
//
// The golden behavior is the std::map<Tag, std::vector<BaseAction*>>
// queue the scheduler used before the swap, reproduced here verbatim as
// MapReferenceQueue: tags pop in ascending order; actions within a tag
// pop in first-insertion order; duplicate inserts of one action at one
// tag coalesce. Every test drives both queues with the same sequence and
// requires identical pops — equal tags across actions, microstep ties,
// min-delay coalescing (re-insert at the same tag) and interleaved
// schedule_at patterns included.
#include "reactor/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <vector>

namespace dear::reactor {
namespace {

/// Opaque, never-dereferenced action identities.
BaseAction* action_id(std::uintptr_t n) {
  // NOLINTNEXTLINE(performance-no-int-to-ptr)
  return reinterpret_cast<BaseAction*>(n << 4);
}

/// The previous scheduler queue, exact semantics.
class MapReferenceQueue {
 public:
  bool insert(BaseAction* action, const Tag& tag) {
    const bool was_earliest = queue_.empty() || tag < queue_.begin()->first;
    auto& actions = queue_[tag];
    if (std::find(actions.begin(), actions.end(), action) == actions.end()) {
      actions.push_back(action);
    }
    return was_earliest;
  }

  [[nodiscard]] bool empty() const { return queue_.empty(); }

  [[nodiscard]] Tag earliest() const {
    return queue_.empty() ? Tag::maximum() : queue_.begin()->first;
  }

  bool pop_at(const Tag& tag, std::vector<BaseAction*>& out) {
    out.clear();
    const auto it = queue_.find(tag);
    if (it == queue_.end()) {
      return false;
    }
    out = std::move(it->second);
    queue_.erase(it);
    return true;
  }

 private:
  std::map<Tag, std::vector<BaseAction*>> queue_;
};

/// Drains both queues completely, asserting identical pop sequences.
void expect_identical_drain(MapReferenceQueue& reference, EventQueue& queue) {
  std::vector<BaseAction*> expected;
  std::vector<BaseAction*> actual;
  while (!reference.empty()) {
    ASSERT_FALSE(queue.empty());
    const Tag tag = reference.earliest();
    ASSERT_EQ(queue.earliest(), tag);
    ASSERT_TRUE(reference.pop_at(tag, expected));
    ASSERT_TRUE(queue.pop_at(tag, actual));
    ASSERT_EQ(actual, expected) << "bucket order diverged at tag " << tag.to_string();
  }
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, EqualTagsAcrossActionsPopInInsertionOrder) {
  MapReferenceQueue reference;
  EventQueue queue;
  const Tag tag{100, 0};
  for (std::uintptr_t i = 5; i > 0; --i) {  // descending ids: order is insertion, not value
    reference.insert(action_id(i), tag);
    queue.insert(action_id(i), tag);
  }
  expect_identical_drain(reference, queue);
}

TEST(EventQueue, MicrostepTiesOrderBeforeLaterMicrosteps) {
  MapReferenceQueue reference;
  EventQueue queue;
  const std::vector<Tag> tags = {{50, 2}, {50, 0}, {50, 1}, {50, 0}, {49, 3}};
  std::uintptr_t id = 1;
  for (const Tag& tag : tags) {
    reference.insert(action_id(id), tag);
    queue.insert(action_id(id), tag);
    ++id;
  }
  EXPECT_EQ(queue.earliest(), (Tag{49, 3}));
  expect_identical_drain(reference, queue);
}

TEST(EventQueue, DuplicateInsertCoalescesAtFirstPosition) {
  // Min-delay coalescing: re-scheduling one action at the same tag (its
  // pending value replaced) must not double-trigger and must keep the
  // action's first-insertion position.
  MapReferenceQueue reference;
  EventQueue queue;
  const Tag tag{10, 1};
  for (const std::uintptr_t id : {1, 2, 1, 3, 2, 1}) {
    reference.insert(action_id(id), tag);
    queue.insert(action_id(id), tag);
  }
  std::vector<BaseAction*> expected;
  std::vector<BaseAction*> actual;
  ASSERT_TRUE(reference.pop_at(tag, expected));
  ASSERT_TRUE(queue.pop_at(tag, actual));
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(actual, (std::vector<BaseAction*>{action_id(1), action_id(2), action_id(3)}));
}

TEST(EventQueue, PopAtMissingTagReturnsFalseAndClearsOut) {
  EventQueue queue;
  queue.insert(action_id(1), Tag{20, 0});
  std::vector<BaseAction*> out = {action_id(9)};
  EXPECT_FALSE(queue.pop_at(Tag{5, 0}, out));  // stop tag before any event
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(queue.earliest(), (Tag{20, 0}));
}

TEST(EventQueue, InsertReportsNewEarliest) {
  EventQueue queue;
  EXPECT_TRUE(queue.insert(action_id(1), Tag{100, 0}));
  EXPECT_FALSE(queue.insert(action_id(2), Tag{200, 0}));
  EXPECT_TRUE(queue.insert(action_id(3), Tag{50, 0}));
  EXPECT_FALSE(queue.insert(action_id(4), Tag{50, 0}));   // ties are not "earlier"
  EXPECT_TRUE(queue.insert(action_id(5), Tag{49, 9}));
}

TEST(EventQueue, BatchInsertMatchesSequentialInserts) {
  MapReferenceQueue reference;
  EventQueue queue;
  std::vector<BaseAction*> batch;
  for (std::uintptr_t i = 1; i <= 6; ++i) {
    batch.push_back(action_id(i));
    reference.insert(action_id(i), Tag{7, 0});
  }
  queue.insert_batch(batch.data(), batch.size(), Tag{7, 0});
  expect_identical_drain(reference, queue);
}

TEST(EventQueue, InterleavedScheduleAtMatchesMapQueue) {
  // schedule_at-style traffic: out-of-order future tags interleaved with
  // pops of the earliest tag, as the DEAR transactors produce under
  // network jitter.
  MapReferenceQueue reference;
  EventQueue queue;
  std::mt19937_64 rng(20260726);
  std::vector<BaseAction*> expected;
  std::vector<BaseAction*> actual;
  TimePoint base = 0;
  for (int round = 0; round < 2000; ++round) {
    const int inserts = static_cast<int>(rng() % 4);
    for (int i = 0; i < inserts; ++i) {
      // Small tag space on purpose: plenty of equal-tag and equal-time /
      // different-microstep collisions.
      const Tag tag{base + static_cast<TimePoint>(rng() % 16),
                    static_cast<std::uint32_t>(rng() % 3)};
      BaseAction* action = action_id(1 + rng() % 8);
      EXPECT_EQ(queue.insert(action, tag), reference.insert(action, tag));
    }
    if (!reference.empty() && rng() % 2 == 0) {
      const Tag tag = reference.earliest();
      ASSERT_EQ(queue.earliest(), tag);
      ASSERT_TRUE(reference.pop_at(tag, expected));
      ASSERT_TRUE(queue.pop_at(tag, actual));
      ASSERT_EQ(actual, expected) << "diverged in round " << round;
      base = tag.time;  // future inserts stay >= the processed tag
    }
  }
  expect_identical_drain(reference, queue);
}

}  // namespace
}  // namespace dear::reactor
