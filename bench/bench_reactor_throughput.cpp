// Reactor runtime microbenchmarks (viability of the DEAR substrate):
// scheduler throughput across pipeline depths, fan-outs and worker
// counts, plus action-scheduling and DES co-simulation costs.
#include <benchmark/benchmark.h>

#include "reactor/runtime.hpp"
#include "sim/kernel.hpp"

namespace {

using namespace dear;
using namespace dear::literals;

/// Source -> chain of relays -> sink, driven by a logical action loop.
class Source final : public reactor::Reactor {
 public:
  reactor::Output<std::int64_t> out{"out", this};

  Source(reactor::Environment& env, std::int64_t limit)
      : Reactor("source", env), limit_(limit) {
    add_reaction("kick", [this] { action_.schedule(reactor::Empty{}); }).triggered_by(startup_);
    add_reaction("emit",
                 [this] {
                   out.set(count_);
                   if (++count_ < limit_) {
                     action_.schedule(reactor::Empty{});
                   } else {
                     request_shutdown();
                   }
                 })
        .triggered_by(action_)
        .writes(out);
  }

 private:
  reactor::StartupTrigger startup_{"startup", this};
  reactor::LogicalAction<reactor::Empty> action_{"tick", this};
  std::int64_t limit_;
  std::int64_t count_{0};
};

class Relay final : public reactor::Reactor {
 public:
  reactor::Input<std::int64_t> in{"in", this};
  reactor::Output<std::int64_t> out{"out", this};

  Relay(reactor::Environment& env, std::string name) : Reactor(std::move(name), env) {
    add_reaction("relay", [this] { out.set(in.get() + 1); }).triggered_by(in).writes(out);
  }
};

class Sink final : public reactor::Reactor {
 public:
  reactor::Input<std::int64_t> in{"in", this};
  std::int64_t sum{0};

  explicit Sink(reactor::Environment& env, std::string name = "sink")
      : Reactor(std::move(name), env) {
    add_reaction("consume", [this] { sum += in.get(); }).triggered_by(in);
  }
};

void BM_PipelineDepth(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  constexpr std::int64_t kEvents = 5'000;
  for (auto _ : state) {
    sim::Kernel kernel;
    reactor::SimClock clock(kernel);
    reactor::Environment env(clock);
    Source source(env, kEvents);
    std::vector<std::unique_ptr<Relay>> relays;
    for (std::size_t i = 0; i < depth; ++i) {
      relays.push_back(std::make_unique<Relay>(env, "relay" + std::to_string(i)));
    }
    Sink sink(env);
    reactor::BasePort* previous = &source.out;
    for (auto& relay : relays) {
      env.connect(*static_cast<reactor::Output<std::int64_t>*>(previous), relay->in);
      previous = &relay->out;
    }
    env.connect(*static_cast<reactor::Output<std::int64_t>*>(previous), sink.in);
    reactor::SimDriver driver(env, kernel, common::Rng(1));
    driver.start();
    kernel.run();
    benchmark::DoNotOptimize(sink.sum);
  }
  state.SetItemsProcessed(state.iterations() * kEvents * (static_cast<std::int64_t>(depth) + 2));
}
BENCHMARK(BM_PipelineDepth)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_FanOut(benchmark::State& state) {
  const auto sinks = static_cast<std::size_t>(state.range(0));
  constexpr std::int64_t kEvents = 5'000;
  for (auto _ : state) {
    sim::Kernel kernel;
    reactor::SimClock clock(kernel);
    reactor::Environment env(clock);
    Source source(env, kEvents);
    std::vector<std::unique_ptr<Sink>> sink_list;
    for (std::size_t i = 0; i < sinks; ++i) {
      sink_list.push_back(std::make_unique<Sink>(env, "sink" + std::to_string(i)));
      env.connect(source.out, sink_list.back()->in);
    }
    reactor::SimDriver driver(env, kernel, common::Rng(1));
    driver.start();
    kernel.run();
    benchmark::DoNotOptimize(sink_list.front()->sum);
  }
  state.SetItemsProcessed(state.iterations() * kEvents * static_cast<std::int64_t>(sinks));
}
BENCHMARK(BM_FanOut)->Arg(2)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_ThreadedWorkers(benchmark::State& state) {
  // Threaded scheduler with N independent timer-driven reactors; measures
  // the level-barrier coordination overhead as worker count grows.
  const auto workers = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    reactor::RealClock clock;
    reactor::Environment::Config config;
    config.workers = workers;
    reactor::Environment env(clock, config);
    Source source(env, 2'000);
    Sink sink(env);
    env.connect(source.out, sink.in);
    env.run();
    benchmark::DoNotOptimize(sink.sum);
  }
  state.SetItemsProcessed(state.iterations() * 2'000);
}
BENCHMARK(BM_ThreadedWorkers)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_LogicalActionScheduling(benchmark::State& state) {
  // Cost of one schedule -> dequeue -> execute cycle.
  for (auto _ : state) {
    sim::Kernel kernel;
    reactor::SimClock clock(kernel);
    reactor::Environment env(clock);
    Source source(env, 10'000);
    reactor::SimDriver driver(env, kernel, common::Rng(1));
    driver.start();
    kernel.run();
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_LogicalActionScheduling)->Unit(benchmark::kMillisecond);

void BM_DesKernelRawEvents(benchmark::State& state) {
  // Baseline: raw kernel event dispatch without the reactor layer.
  for (auto _ : state) {
    sim::Kernel kernel;
    std::int64_t count = 0;
    std::function<void()> chain = [&] {
      if (++count < 100'000) {
        kernel.schedule_after(1, chain);
      }
    };
    kernel.schedule_at(0, chain);
    kernel.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_DesKernelRawEvents)->Unit(benchmark::kMillisecond);

}  // namespace
