// Reactor runtime microbenchmarks (viability of the DEAR substrate):
// event-queue enqueue/dequeue throughput (pooled heap vs the previous
// std::map queue, with the >= 2x floor enforced as a gate), scheduler
// pipeline/fan-out runs, action scheduling and the raw DES kernel
// baseline. `--json out.json` emits the shared dear-bench-v1 report.
#include "suites.hpp"

int main(int argc, char** argv) {
  dear::bench::Harness harness(
      "bench_reactor_throughput",
      "Reactor scheduler hot-path throughput (pooled event queue vs std::map).");
  if (!harness.parse(argc, argv)) {
    return harness.exit_code();
  }
  dear::bench::run_reactor_suite(harness);
  return harness.finish();
}
