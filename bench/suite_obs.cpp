// Observability overhead cases.
//
// The obs contract is twofold: with the registry disabled the hot paths
// pay one predicted branch, and with it enabled they stay within 5% of
// the disabled baseline (docs/observability.md). Each workload here runs
// disabled -> enabled -> disabled again and gates the enabled p50 against
// the slower of the two disabled runs, so a machine-wide slowdown between
// the first and last run cannot masquerade as instrumentation overhead.
// The DEAR pipeline case also re-asserts the determinism contract: the
// output digest with metrics + spans live must equal the disabled run's
// digest (and the golden anchor, on full runs).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <functional>

#include "brake/dear_pipeline.hpp"
#include "obs/obs.hpp"
#include "sim/kernel.hpp"
#include "suites.hpp"
#include "topologies.hpp"

namespace dear::bench {

namespace {

/// Fixed-seed DEAR brake pipeline over SOME/IP (the bench_all anchor
/// workload at 300 frames).
std::uint64_t run_dear_digest(std::uint64_t frames) {
  brake::DearScenarioConfig config;
  config.frames = frames;
  config.platform_seed = 7;
  config.camera_seed = config.platform_seed + 1000;
  config.local_transport = false;
  return brake::run_dear_pipeline(config).output_digest;
}

/// Self-rescheduling DES chain: the kernel's event-queue pump is the
/// whole loop, and the kernel destructor is where the gated lifetime
/// flush (kSimEventsScheduled/Processed) lands.
void run_kernel_chain(std::int64_t events) {
  sim::Kernel kernel;
  std::int64_t count = 0;
  std::function<void()> chain = [&] {
    if (++count < events) {
      kernel.schedule_after(1, chain);
    }
  };
  kernel.schedule_at(0, chain);
  kernel.run();
}

}  // namespace

void run_obs_suite(Harness& h, const ObsOverheadOptions& options) {
  // Quick runs share the host with a parallel ctest sweep; preemption
  // noise there dwarfs a 5% contract, so the smoke gate only catches
  // gross regressions. The dedicated Release bench job enforces 5%.
  const double factor = h.quick() ? 1.50 : 1.05;
  constexpr double kEpsilonNs = 10.0;  // sub-noise floor for tiny p50s

  const auto measure_overhead = [&](const std::string& base, std::uint64_t ops,
                                    const std::function<void()>& fn) {
    obs::Registry::instance().set_metrics_enabled(false);
    obs::Registry::instance().set_span_mask(0);
    const CaseResult& off = h.measure(base + "/off", ops, fn);
    obs::Registry::instance().reset();
    obs::Registry::instance().set_metrics_enabled(true);
    obs::Registry::instance().set_span_mask(obs::kDefaultSpanMask);
    CaseResult& on = h.measure(base + "/on", ops, fn);
    obs::Registry::instance().set_metrics_enabled(false);
    obs::Registry::instance().set_span_mask(0);
    const CaseResult& off2 = h.measure(base + "/off_again", ops, fn);

    const double baseline = std::max(off.p50_ns, off2.p50_ns);
    const double overhead =
        baseline > 0.0 ? (on.p50_ns / baseline - 1.0) * 100.0 : 0.0;
    Harness::counter(on, "overhead_percent", overhead);
    char detail[192];
    std::snprintf(detail, sizeof(detail),
                  "enabled p50 %.1fns/op vs disabled %.1fns/op: %+.1f%% (gate %.0f%% + %.0fns)",
                  on.p50_ns, baseline, overhead, (factor - 1.0) * 100.0, kEpsilonNs);
    h.gate(base + "_overhead_5pct", on.p50_ns <= baseline * factor + kEpsilonNs, detail);
  };

  const auto kernel_events = static_cast<std::int64_t>(h.scale(100'000, 10'000));
  measure_overhead("obs/event_queue", static_cast<std::uint64_t>(kernel_events),
                   [&] { run_kernel_chain(kernel_events); });

  const std::uint64_t frames = options.pipeline_frames;
  std::uint64_t digest_off = 0;
  std::uint64_t digest_on = 0;
  obs::Registry::instance().set_metrics_enabled(false);
  obs::Registry::instance().set_span_mask(0);
  const CaseResult& pipe_off =
      h.measure("obs/dear_pipeline/off", frames, [&] { digest_off = run_dear_digest(frames); });
  obs::Registry::instance().reset();
  obs::Registry::instance().set_metrics_enabled(true);
  obs::Registry::instance().set_span_mask(obs::kDefaultSpanMask);
  CaseResult& pipe_on =
      h.measure("obs/dear_pipeline/on", frames, [&] { digest_on = run_dear_digest(frames); });
  obs::Registry::instance().set_metrics_enabled(false);
  obs::Registry::instance().set_span_mask(0);
  const CaseResult& pipe_off2 = h.measure("obs/dear_pipeline/off_again", frames,
                                          [&] { digest_off = run_dear_digest(frames); });

  const double pipe_baseline = std::max(pipe_off.p50_ns, pipe_off2.p50_ns);
  const double pipe_overhead =
      pipe_baseline > 0.0 ? (pipe_on.p50_ns / pipe_baseline - 1.0) * 100.0 : 0.0;
  Harness::counter(pipe_on, "overhead_percent", pipe_overhead);
  char detail[192];
  std::snprintf(detail, sizeof(detail),
                "enabled p50 %.1fns/frame vs disabled %.1fns/frame: %+.1f%% (gate %.0f%%)",
                pipe_on.p50_ns, pipe_baseline, pipe_overhead, (factor - 1.0) * 100.0);
  h.gate("obs/dear_pipeline_overhead_5pct",
         pipe_on.p50_ns <= pipe_baseline * factor + kEpsilonNs, detail);

  std::snprintf(detail, sizeof(detail), "digest %016llx with obs on, %016llx with obs off",
                static_cast<unsigned long long>(digest_on),
                static_cast<unsigned long long>(digest_off));
  h.gate("obs_digest_invariant", digest_on == digest_off, detail);
  if (options.golden_digest != 0) {
    std::snprintf(detail, sizeof(detail), "digest %016llx with obs on, golden %016llx",
                  static_cast<unsigned long long>(digest_on),
                  static_cast<unsigned long long>(options.golden_digest));
    h.gate("obs_digest_anchor", digest_on == options.golden_digest, detail);
  }

  // Leave the process in the at-rest state for whatever runs next.
  obs::Registry::instance().set_metrics_enabled(false);
  obs::Registry::instance().set_span_mask(0);
  obs::Registry::instance().reset();
}

}  // namespace dear::bench
