// Sensor data plane driver: loaned-slab vs encode event streaming over
// both transport backends (see suite_dataplane.cpp for the cases and
// gates). Standalone runs use non-default batch sizes via --frames, which
// keeps the throughput rows but skips the 300-frame DEAR digest anchors
// unless --anchor-digests is passed (bench_all always runs them against
// the golden value).
#include <algorithm>
#include <cstdint>

#include "suites.hpp"

namespace {

// The 300-frame/seed-7 DEAR anchor digest (same golden value bench_all
// pins); the payload-plane runs must reproduce it bit-exactly.
constexpr std::uint64_t kDearDigest300f7 = 0xe4eb73d5ff217bdeULL;

}  // namespace

int main(int argc, char** argv) {
  dear::bench::Harness harness(
      "bench_sensor_dataplane",
      "Sensor data plane: loaned-slab vs encode streaming at 64KiB..4MiB over both "
      "transports, with zero-copy/zero-alloc and digest-anchor gates.");
  harness.cli().add_int("frames", 256, "frames per measured batch at the 64KiB class");
  harness.cli().add_int("steady-frames", 128,
                        "frames for the steady-state zero-copy/zero-alloc audit");
  harness.cli().add_flag("no-anchor-digests",
                         "skip the 300-frame DEAR digest anchor runs (payload plane live)");
  if (!harness.parse(argc, argv)) {
    return harness.exit_code();
  }

  dear::bench::DataplaneOptions options;
  options.frames = static_cast<std::uint64_t>(
      std::max<std::int64_t>(harness.cli().get_int("frames"), 4));
  options.steady_frames = static_cast<std::uint64_t>(
      std::max<std::int64_t>(harness.cli().get_int("steady-frames"), 8));
  options.golden_digest =
      harness.cli().get_flag("no-anchor-digests") ? 0 : kDearDigest300f7;
  dear::bench::run_dataplane_suite(harness, options);
  return harness.finish();
}
