// Reactor runtime hot-path cases.
//
// The headline pair is event_queue/map vs event_queue/pooled: the exact
// std::map<Tag, std::vector<BaseAction*>> structure the scheduler used
// before the pooled EventQueue, driven with an identical seeded
// insert/pop workload. Both queues must produce the same pop sequence
// (checksum gate) and the pooled queue must clear the 2x throughput floor
// the overhaul targets. Threaded worker-pool scaling lives in
// suite_parallel.cpp.
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "reactor/event_queue.hpp"
#include "suites.hpp"
#include "topologies.hpp"

namespace dear::bench {

namespace {

using namespace dear::reactor;

/// The scheduler's previous event queue, verbatim semantics: ordered map
/// of tag -> actions in insertion order, duplicate inserts coalesced.
class MapEventQueue {
 public:
  bool insert(BaseAction* action, const Tag& tag) {
    const bool was_earliest = queue_.empty() || tag < queue_.begin()->first;
    auto& actions = queue_[tag];
    bool found = false;
    for (BaseAction* existing : actions) {
      if (existing == action) {
        found = true;
        break;
      }
    }
    if (!found) {
      actions.push_back(action);
    }
    return was_earliest;
  }

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }

  [[nodiscard]] Tag earliest() const noexcept {
    return queue_.empty() ? Tag::maximum() : queue_.begin()->first;
  }

  bool pop_at(const Tag& tag, std::vector<BaseAction*>& out) {
    out.clear();
    const auto it = queue_.find(tag);
    if (it == queue_.end()) {
      return false;
    }
    out = std::move(it->second);
    queue_.erase(it);
    return true;
  }

 private:
  std::map<Tag, std::vector<BaseAction*>> queue_;
};

/// Pre-generated schedule deltas, so the timed region measures the queue
/// and not the PRNG (both queues replay the identical sequence).
struct QueuePlan {
  std::vector<TimePoint> delta;       // per re-insert: time offset from the popped tag
  std::vector<std::uint32_t> micro;   // per re-insert: microstep (exercises ties)
};

QueuePlan make_queue_plan(std::uint64_t steps, std::uint64_t fan_in, std::uint64_t seed) {
  QueuePlan plan;
  common::Rng rng(seed);
  plan.delta.reserve(steps * fan_in);
  plan.micro.reserve(steps * fan_in);
  for (std::uint64_t i = 0; i < steps * fan_in; ++i) {
    plan.delta.push_back(1 + static_cast<TimePoint>(rng.next_below(1000)));
    plan.micro.push_back(static_cast<std::uint32_t>(rng.next_below(2)));
  }
  return plan;
}

/// Steady-state scheduler traffic: a window of pending tags; every step
/// pops the earliest bucket and re-schedules each of its actions at the
/// planned future tag. Returns a checksum over the pop sequence (feeds
/// the equivalence gate and defeats dead-code elimination).
template <typename Queue>
std::uint64_t queue_workload(Queue& queue, std::uint64_t steps, const QueuePlan& plan) {
  constexpr std::uint64_t kWindow = 32;  // pending tags of a busy pipeline
  constexpr std::uint64_t kFanIn = 1;
  // Opaque action identities; the queues store and compare the pointers
  // but never dereference them.
  std::uintptr_t next_action = 1;
  for (std::uint64_t i = 0; i < kWindow; ++i) {
    const Tag tag{static_cast<TimePoint>(1 + i * 37), 0};
    for (std::uint64_t k = 0; k < kFanIn; ++k) {
      // NOLINTNEXTLINE(performance-no-int-to-ptr)
      queue.insert(reinterpret_cast<BaseAction*>(next_action++ << 4), tag);
    }
  }
  std::uint64_t checksum = 0;
  std::size_t cursor = 0;
  const std::size_t plan_size = plan.delta.size();
  std::vector<BaseAction*> popped;
  for (std::uint64_t step = 0; step < steps; ++step) {
    const Tag tag = queue.earliest();
    if (!queue.pop_at(tag, popped)) {
      break;
    }
    checksum = checksum * 1099511628211ULL + static_cast<std::uint64_t>(tag.time) + tag.microstep;
    for (BaseAction* action : popped) {
      checksum = checksum * 31 + reinterpret_cast<std::uintptr_t>(action);
      const Tag next{tag.time + plan.delta[cursor], plan.micro[cursor]};
      cursor = cursor + 1 == plan_size ? 0 : cursor + 1;
      queue.insert(action, next);
    }
  }
  return checksum;
}

}  // namespace

void run_reactor_suite(Harness& h) {
  const std::uint64_t queue_steps = h.scale(100'000, 5'000);
  constexpr std::uint64_t kQueueSeed = 42;
  const QueuePlan plan = make_queue_plan(queue_steps, 1, kQueueSeed);
  // Ops per step: one bucket pop + one re-insert (the dominant real
  // pattern: one action per tag).
  const std::uint64_t queue_ops = queue_steps * 2;

  volatile std::uint64_t map_checksum = 0;
  CaseResult& map_case = h.measure("event_queue/map", queue_ops, [&] {
    MapEventQueue queue;
    map_checksum = queue_workload(queue, queue_steps, plan);
  });

  volatile std::uint64_t pooled_checksum = 0;
  CaseResult& pooled_case = h.measure("event_queue/pooled", queue_ops, [&] {
    EventQueue queue;
    pooled_checksum = queue_workload(queue, queue_steps, plan);
  });

  const double speedup = pooled_case.throughput_per_s /
                         (map_case.throughput_per_s > 0.0 ? map_case.throughput_per_s : 1.0);
  Harness::counter(pooled_case, "speedup_vs_map", speedup);
  h.gate("event_queue_pop_order_identical", map_checksum == pooled_checksum,
         "pooled queue must pop the exact sequence the std::map queue popped");
  // Quick (smoke) runs share the host with the rest of a parallel ctest
  // sweep, where preemption bursts can land on either side of the ratio;
  // the dedicated Release bench job and the committed BENCH_hotpath.json
  // enforce the real 2x floor.
  const double floor = h.quick() ? 1.2 : 2.0;
  char detail[128];
  std::snprintf(detail, sizeof(detail),
                "enqueue+dequeue throughput %.2fx vs std::map queue (floor %.1fx)", speedup,
                floor);
  h.gate("event_queue_speedup_2x", speedup >= floor, detail);

  const std::int64_t pipeline_events = static_cast<std::int64_t>(h.scale(5'000, 500));
  h.measure("pipeline_depth/16", static_cast<std::uint64_t>(pipeline_events) * 18,
            [&] { run_pipeline(16, pipeline_events); });
  h.measure("fanout/8", static_cast<std::uint64_t>(pipeline_events) * 8,
            [&] { run_fanout(8, pipeline_events); });

  const std::int64_t loop_events = static_cast<std::int64_t>(h.scale(10'000, 1'000));
  h.measure("action_scheduling", static_cast<std::uint64_t>(loop_events), [&] {
    sim::Kernel kernel;
    SimClock clock(kernel);
    Environment env(clock);
    Source source(env, loop_events);
    SimDriver driver(env, kernel, common::Rng(1));
    driver.start();
    kernel.run();
  });

  const std::int64_t kernel_events = static_cast<std::int64_t>(h.scale(100'000, 10'000));
  h.measure("des_kernel_raw", static_cast<std::uint64_t>(kernel_events), [&] {
    sim::Kernel kernel;
    std::int64_t count = 0;
    std::function<void()> chain = [&] {
      if (++count < kernel_events) {
        kernel.schedule_after(1, chain);
      }
    };
    kernel.schedule_at(0, chain);
    kernel.run();
  });
}

}  // namespace dear::bench
