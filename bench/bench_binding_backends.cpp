// Transport backend comparison: SOME/IP (serialization + in-process
// loopback network over real threads) vs. the zero-copy LocalBinding
// (payload moved through a lock-free queue, no serialization, no network).
//
// Two workloads, identical for both backends:
//   * method round trip — client calls an echo method and waits for the
//     response; per-call latency distribution (p50/p99 via
//     common::BinnedHistogram);
//   * notify throughput — server publishes N event notifications to one
//     subscriber; sustained messages/second.
//
// Expected shape: LocalBinding wins on both axes — it skips the SOME/IP
// encode/decode and the executor hop the loopback network pays per packet.
//
// Knobs: --round-trips (default 3000), --notifies (default 100000),
//        --payload bytes (default 64), --workers (default 2).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "ara/com/local_binding.hpp"
#include "ara/com/someip_binding.hpp"
#include "common/flags.hpp"
#include "common/histogram.hpp"
#include "common/thread_pool.hpp"
#include "net/rt_network.hpp"

namespace {

using namespace dear;

constexpr someip::ServiceId kService = 0x0F0F;
constexpr someip::MethodId kEchoMethod = 0x0001;
constexpr someip::EventId kDataEvent = 0x8001;

constexpr net::Endpoint kServerEp{1, 100};
constexpr net::Endpoint kClientEp{2, 200};

struct WorkloadResult {
  std::vector<double> round_trip_ns;
  double notify_seconds{0.0};
  std::uint64_t notifies{0};
};

double now_ns() {
  return static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now().time_since_epoch())
                                 .count());
}

/// Runs both workloads against an already-wired (server, client) pair.
WorkloadResult run_workloads(ara::com::TransportBinding& server,
                             ara::com::TransportBinding& client, std::uint64_t round_trips,
                             std::uint64_t notifies, std::size_t payload_size) {
  WorkloadResult result;
  const std::vector<std::uint8_t> payload(payload_size, 0xAB);

  server.provide_method(kService, kEchoMethod,
                        [&server](const someip::Message& request, const net::Endpoint& from) {
                          server.respond(request, from, request.payload);
                        });

  // --- round-trip latency ----------------------------------------------------
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  const auto one_call = [&] {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      done = false;
    }
    client.call(kServerEp, kService, kEchoMethod, payload, [&](const someip::Message&) {
      {
        const std::lock_guard<std::mutex> lock(mutex);
        done = true;
      }
      cv.notify_one();
    });
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return done; });
  };

  for (int warmup = 0; warmup < 64; ++warmup) {
    one_call();
  }
  result.round_trip_ns.reserve(round_trips);
  for (std::uint64_t i = 0; i < round_trips; ++i) {
    const double start = now_ns();
    one_call();
    result.round_trip_ns.push_back(now_ns() - start);
  }

  // --- notify throughput -----------------------------------------------------
  std::atomic<std::uint64_t> received{0};
  client.subscribe(kServerEp, kService, kDataEvent,
                   [&received](const someip::Message&) {
                     received.fetch_add(1, std::memory_order_relaxed);
                   });
  // Subscription management may be asynchronous (SOME/IP control message
  // through the executor): wait until it took effect.
  while (server.subscriber_count(kService, kDataEvent) == 0) {
    std::this_thread::yield();
  }

  const double start = now_ns();
  for (std::uint64_t i = 0; i < notifies; ++i) {
    server.notify(kService, kDataEvent, payload);
  }
  while (received.load(std::memory_order_relaxed) < notifies) {
    std::this_thread::yield();
  }
  result.notify_seconds = (now_ns() - start) / 1e9;
  result.notifies = notifies;

  server.remove_method(kService, kEchoMethod);
  client.unsubscribe(kServerEp, kService, kDataEvent);
  return result;
}

WorkloadResult run_someip(std::uint64_t round_trips, std::uint64_t notifies,
                          std::size_t payload_size, std::size_t workers) {
  common::ThreadPoolExecutor executor(workers);
  net::RtNetwork network(executor);
  ara::com::SomeIpBinding server(network, executor, kServerEp, 0x01);
  ara::com::SomeIpBinding client(network, executor, kClientEp, 0x02);
  WorkloadResult result = run_workloads(server, client, round_trips, notifies, payload_size);
  executor.drain();
  return result;
}

WorkloadResult run_local(std::uint64_t round_trips, std::uint64_t notifies,
                         std::size_t payload_size, std::size_t workers) {
  common::ThreadPoolExecutor executor(workers);  // timeout synthesis only
  ara::com::LocalHub hub;
  ara::com::LocalBinding server(hub, executor, kServerEp, 0x01);
  ara::com::LocalBinding client(hub, executor, kClientEp, 0x02);
  WorkloadResult result = run_workloads(server, client, round_trips, notifies, payload_size);
  executor.drain();
  return result;
}

struct LatencySummary {
  double p50;
  double p99;
  double mean;
};

LatencySummary summarize(const std::vector<double>& samples_ns) {
  const double max = *std::max_element(samples_ns.begin(), samples_ns.end());
  common::BinnedHistogram histogram(0.0, max * 1.001 + 1.0, 4096);
  double sum = 0.0;
  for (const double sample : samples_ns) {
    histogram.add(sample);
    sum += sample;
  }
  return LatencySummary{histogram.quantile(0.50), histogram.quantile(0.99),
                        sum / static_cast<double>(samples_ns.size())};
}

void print_row(const char* name, const WorkloadResult& result) {
  const LatencySummary latency = summarize(result.round_trip_ns);
  const double throughput =
      static_cast<double>(result.notifies) / std::max(result.notify_seconds, 1e-9);
  std::printf("  %-8s %12.0f %12.0f %12.0f %16.0f\n", name, latency.p50, latency.p99,
              latency.mean, throughput);
}

}  // namespace

int main(int argc, char** argv) {
  const common::Flags flags(argc, argv);
  const auto round_trips = static_cast<std::uint64_t>(std::max<std::int64_t>(
      flags.get_int("round-trips", common::env_int("DEAR_BINDING_ROUND_TRIPS", 3000)), 1));
  const auto notifies = static_cast<std::uint64_t>(std::max<std::int64_t>(
      flags.get_int("notifies", common::env_int("DEAR_BINDING_NOTIFIES", 100'000)), 1));
  const auto payload =
      static_cast<std::size_t>(std::max<std::int64_t>(flags.get_int("payload", 64), 0));
  const auto workers =
      static_cast<std::size_t>(std::max<std::int64_t>(flags.get_int("workers", 2), 1));

  std::printf("=====================================================================\n");
  std::printf("Transport backend comparison (real threads, %zu workers)\n", workers);
  std::printf("workload: %llu echo round trips + %llu notifies, %zu-byte payload\n",
              static_cast<unsigned long long>(round_trips),
              static_cast<unsigned long long>(notifies), payload);
  std::printf("=====================================================================\n\n");
  std::printf("  %-8s %12s %12s %12s %16s\n", "backend", "rt p50(ns)", "rt p99(ns)",
              "rt mean(ns)", "notify msgs/s");

  const WorkloadResult someip = run_someip(round_trips, notifies, payload, workers);
  print_row("someip", someip);
  const WorkloadResult local = run_local(round_trips, notifies, payload, workers);
  print_row("local", local);

  const double someip_p50 = summarize(someip.round_trip_ns).p50;
  const double local_p50 = summarize(local.round_trip_ns).p50;
  std::printf("\n  round-trip p50 speedup (someip/local): %.1fx\n",
              someip_p50 / std::max(local_p50, 1.0));
  std::printf("  the local backend skips SOME/IP encode/decode and the per-packet\n");
  std::printf("  executor hop of the loopback network; payloads move, untouched,\n");
  std::printf("  through a lock-free queue.\n");
  return 0;
}
