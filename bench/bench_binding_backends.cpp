// Transport backend comparison: SOME/IP (serialization + in-process
// loopback network over real threads) vs. the zero-copy LocalBinding
// (payload moved through a lock-free queue, no serialization, no network).
//
// Two workloads, identical for both backends:
//   * method round trip — client calls an echo method and waits for the
//     response; per-call latency distribution (p50/p99 via
//     common::BinnedHistogram);
//   * notify throughput — server publishes N event notifications to one
//     subscriber; sustained messages/second.
//
// Expected shape: LocalBinding wins on both axes — it skips the SOME/IP
// encode/decode and the executor hop the loopback network pays per packet.
//
// A second section runs the same two workloads through the *typed* ara
// layer (ServiceProxy/Skeleton + method/event templates) over the local
// backend, once with handwritten proxy/skeleton classes and once with the
// descriptor-generated ara::Proxy<I>/ara::Skeleton<I>. Member lookup in
// the generated classes resolves at compile time, so the two rows should
// be statistically indistinguishable — the descriptor API adds zero
// overhead over handwritten classes.
//
// Knobs: --round-trips (default 3000), --notifies (default 100000),
//        --payload bytes (default 64), --workers (default 2).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "ara/com/local_binding.hpp"
#include "ara/com/someip_binding.hpp"
#include "ara/generated.hpp"
#include "ara/runtime.hpp"
#include "common/flags.hpp"
#include "common/histogram.hpp"
#include "common/thread_pool.hpp"
#include "harness.hpp"
#include "net/rt_network.hpp"

namespace {

using namespace dear;

constexpr someip::ServiceId kService = 0x0F0F;
constexpr someip::MethodId kEchoMethod = 0x0001;
constexpr someip::EventId kDataEvent = 0x8001;

constexpr net::Endpoint kServerEp{1, 100};
constexpr net::Endpoint kClientEp{2, 200};

struct WorkloadResult {
  std::vector<double> round_trip_ns;
  double notify_seconds{0.0};
  std::uint64_t notifies{0};
};

double now_ns() { return bench::now_ns(); }

/// Shared measurement harness for every row of both tables. The rows
/// differ only in how a call is issued and how the notify path is wired,
/// so those arrive as callables:
///   issue_call(done)       — starts one echo round trip; done() on response
///   subscribe(count)       — wires the subscriber; count() per notification
///   subscriber_ready()     — true once the subscription took effect
///   send_notify()          — publishes one event sample
///   teardown()             — removes handlers/subscriptions
template <typename IssueCall, typename Subscribe, typename Ready, typename SendNotify,
          typename Teardown>
WorkloadResult run_workload_harness(IssueCall&& issue_call, Subscribe&& subscribe,
                                    Ready&& subscriber_ready, SendNotify&& send_notify,
                                    Teardown&& teardown, std::uint64_t round_trips,
                                    std::uint64_t notifies) {
  WorkloadResult result;

  // --- round-trip latency ----------------------------------------------------
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  const auto one_call = [&] {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      done = false;
    }
    issue_call([&] {
      {
        const std::lock_guard<std::mutex> lock(mutex);
        done = true;
      }
      cv.notify_one();
    });
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return done; });
  };

  for (int warmup = 0; warmup < 64; ++warmup) {
    one_call();
  }
  result.round_trip_ns.reserve(round_trips);
  for (std::uint64_t i = 0; i < round_trips; ++i) {
    const double start = now_ns();
    one_call();
    result.round_trip_ns.push_back(now_ns() - start);
  }

  // --- notify throughput -----------------------------------------------------
  std::atomic<std::uint64_t> received{0};
  subscribe([&received] { received.fetch_add(1, std::memory_order_relaxed); });
  // Subscription management may be asynchronous (SOME/IP control message
  // through the executor): wait until it took effect.
  while (!subscriber_ready()) {
    std::this_thread::yield();
  }

  const double start = now_ns();
  for (std::uint64_t i = 0; i < notifies; ++i) {
    send_notify();
  }
  while (received.load(std::memory_order_relaxed) < notifies) {
    std::this_thread::yield();
  }
  result.notify_seconds = (now_ns() - start) / 1e9;
  result.notifies = notifies;

  teardown();
  return result;
}

/// Runs both workloads against an already-wired (server, client) pair of
/// raw transport bindings.
WorkloadResult run_workloads(ara::com::TransportBinding& server,
                             ara::com::TransportBinding& client, std::uint64_t round_trips,
                             std::uint64_t notifies, std::size_t payload_size) {
  const std::vector<std::uint8_t> payload(payload_size, 0xAB);

  server.provide_method(kService, kEchoMethod,
                        [&server](const someip::Message& request, const net::Endpoint& from) {
                          server.respond(request, from, request.payload);
                        });

  return run_workload_harness(
      [&](auto done) {
        client.call(kServerEp, kService, kEchoMethod, payload,
                    [done = std::move(done)](const someip::Message&) { done(); });
      },
      [&](auto count) {
        client.subscribe(kServerEp, kService, kDataEvent,
                         [count = std::move(count)](const someip::Message&) { count(); });
      },
      [&] { return server.subscriber_count(kService, kDataEvent) != 0; },
      [&] { server.notify(kService, kDataEvent, payload); },
      [&] {
        server.remove_method(kService, kEchoMethod);
        client.unsubscribe(kServerEp, kService, kDataEvent);
      },
      round_trips, notifies);
}

WorkloadResult run_someip(std::uint64_t round_trips, std::uint64_t notifies,
                          std::size_t payload_size, std::size_t workers) {
  common::ThreadPoolExecutor executor(workers);
  net::RtNetwork network(executor);
  ara::com::SomeIpBinding server(network, executor, kServerEp, 0x01);
  ara::com::SomeIpBinding client(network, executor, kClientEp, 0x02);
  WorkloadResult result = run_workloads(server, client, round_trips, notifies, payload_size);
  executor.drain();
  return result;
}

WorkloadResult run_local(std::uint64_t round_trips, std::uint64_t notifies,
                         std::size_t payload_size, std::size_t workers) {
  common::ThreadPoolExecutor executor(workers);  // timeout synthesis only
  ara::com::LocalHub hub;
  ara::com::LocalBinding server(hub, executor, kServerEp, 0x01);
  ara::com::LocalBinding client(hub, executor, kClientEp, 0x02);
  WorkloadResult result = run_workloads(server, client, round_trips, notifies, payload_size);
  executor.drain();
  return result;
}

// --- typed-layer workloads: handwritten vs descriptor-generated -------------------

using Payload = std::vector<std::uint8_t>;

constexpr someip::ServiceId kTypedService = 0x0E0E;
constexpr someip::InstanceId kTypedInstance = 1;
constexpr someip::MethodId kTypedEchoMethod = 0x0001;
constexpr someip::EventId kTypedDataEvent = 0x8001;

/// The handwritten subclassing style (what every service looked like
/// before the descriptor API).
class HandwrittenSkeleton : public ara::ServiceSkeleton {
 public:
  explicit HandwrittenSkeleton(ara::Runtime& runtime)
      : ServiceSkeleton(runtime, {kTypedService, kTypedInstance}) {}

  ara::SkeletonMethod<Payload, Payload> echo{*this, kTypedEchoMethod};
  ara::SkeletonEvent<Payload> data{*this, kTypedDataEvent};
};

class HandwrittenProxy : public ara::ServiceProxy {
 public:
  HandwrittenProxy(ara::Runtime& runtime, net::Endpoint server)
      : ServiceProxy(runtime, {kTypedService, kTypedInstance}, server) {}

  ara::ProxyMethod<Payload, Payload> echo{*this, kTypedEchoMethod};
  ara::ProxyEvent<Payload> data{*this, kTypedDataEvent};
};

/// The same service as a compile-time descriptor.
struct TypedService {
  static constexpr ara::meta::Method<Payload, Payload, kTypedEchoMethod> echo{"echo"};
  static constexpr ara::meta::Event<Payload, kTypedDataEvent> data{"data"};
  static constexpr auto kInterface =
      ara::meta::service_interface("TypedBench", kTypedService, {1, 0}, echo, data);
};

/// Both declaration styles expose the identical typed parts, so one runner
/// (on the shared harness) serves both rows.
WorkloadResult run_typed_workloads(ara::SkeletonMethod<Payload, Payload>& server_echo,
                                   ara::SkeletonEvent<Payload>& server_data,
                                   ara::ProxyMethod<Payload, Payload>& client_echo,
                                   ara::ProxyEvent<Payload>& client_data,
                                   std::uint64_t round_trips, std::uint64_t notifies,
                                   std::size_t payload_size) {
  const Payload payload(payload_size, 0xCD);

  server_echo.set_sync_handler([](const Payload& request) { return request; });

  return run_workload_harness(
      [&](auto done) {
        client_echo(payload).then(
            [done = std::move(done)](const dear::ara::Result<Payload>&) { done(); });
      },
      [&](auto count) {
        client_data.SetImmediateReceiveHandler(
            [count = std::move(count)](const Payload&) { count(); });
        client_data.Subscribe();
      },
      [&] { return server_data.subscriber_count() != 0; },
      [&] { server_data.Send(payload); },
      [&] { client_data.Unsubscribe(); },
      round_trips, notifies);
}

/// Local-backend runtime pair for the typed rows (timeout synthesis and
/// skeleton dispatch share the pool, identically for both styles).
struct TypedWorld {
  explicit TypedWorld(std::size_t workers) : executor(workers) {}

  common::ThreadPoolExecutor executor;
  ara::com::LocalHub hub;
  someip::ServiceDiscovery discovery;
  ara::Runtime server_rt{discovery, executor, ara::com::BackendKind::kLocal,
                         std::make_unique<ara::com::LocalBinding>(hub, executor, kServerEp, 0x01)};
  ara::Runtime client_rt{discovery, executor, ara::com::BackendKind::kLocal,
                         std::make_unique<ara::com::LocalBinding>(hub, executor, kClientEp, 0x02)};
};

WorkloadResult run_typed_handwritten(std::uint64_t round_trips, std::uint64_t notifies,
                                     std::size_t payload_size, std::size_t workers) {
  TypedWorld world(workers);
  HandwrittenSkeleton skeleton(world.server_rt);
  skeleton.OfferService();
  HandwrittenProxy proxy(world.client_rt,
                         *world.client_rt.resolve({kTypedService, kTypedInstance}));
  WorkloadResult result = run_typed_workloads(skeleton.echo, skeleton.data, proxy.echo,
                                              proxy.data, round_trips, notifies, payload_size);
  world.executor.drain();
  return result;
}

WorkloadResult run_typed_generated(std::uint64_t round_trips, std::uint64_t notifies,
                                   std::size_t payload_size, std::size_t workers) {
  TypedWorld world(workers);
  ara::Skeleton<TypedService> skeleton(world.server_rt, kTypedInstance);
  skeleton.OfferService();
  ara::Proxy<TypedService> proxy(world.client_rt, kTypedInstance,
                                 *world.client_rt.resolve({kTypedService, kTypedInstance}));
  WorkloadResult result = run_typed_workloads(
      skeleton.get(TypedService::echo), skeleton.get(TypedService::data),
      proxy.get(TypedService::echo), proxy.get(TypedService::data), round_trips, notifies,
      payload_size);
  world.executor.drain();
  return result;
}

struct LatencySummary {
  double p50;
  double p99;
  double mean;
};

LatencySummary summarize(const std::vector<double>& samples_ns) {
  const double max = *std::max_element(samples_ns.begin(), samples_ns.end());
  common::BinnedHistogram histogram(0.0, max * 1.001 + 1.0, 4096);
  double sum = 0.0;
  for (const double sample : samples_ns) {
    histogram.add(sample);
    sum += sample;
  }
  return LatencySummary{histogram.quantile(0.50), histogram.quantile(0.99),
                        sum / static_cast<double>(samples_ns.size())};
}

void print_row(const char* name, const WorkloadResult& result) {
  const LatencySummary latency = summarize(result.round_trip_ns);
  const double throughput =
      static_cast<double>(result.notifies) / std::max(result.notify_seconds, 1e-9);
  std::printf("  %-8s %12.0f %12.0f %12.0f %16.0f\n", name, latency.p50, latency.p99,
              latency.mean, throughput);
}

/// Records a workload row on the shared harness (per-round-trip latency
/// samples + notify throughput) for the JSON report.
void record_row(bench::Harness& harness, const std::string& name,
                const WorkloadResult& result) {
  const double throughput =
      static_cast<double>(result.notifies) / std::max(result.notify_seconds, 1e-9);
  auto& row = harness.record(name, result.round_trip_ns, throughput);
  bench::Harness::counter(row, "notify_msgs_per_s", throughput);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness(
      "bench_binding_backends",
      "Transport backend comparison: SOME/IP loopback vs zero-copy LocalBinding, raw and "
      "typed.");
  harness.cli().add_int("round-trips", common::env_int("DEAR_BINDING_ROUND_TRIPS", 3000),
                        "echo round trips per backend");
  harness.cli().add_int("notifies", common::env_int("DEAR_BINDING_NOTIFIES", 100'000),
                        "event notifications per backend");
  harness.cli().add_int("payload", 64, "payload bytes");
  harness.cli().add_int("workers", 2, "executor worker threads");
  if (!harness.parse(argc, argv)) {
    return harness.exit_code();
  }
  const auto round_trips = static_cast<std::uint64_t>(
      std::max<std::int64_t>(harness.cli().get_int("round-trips"), 1));
  const auto notifies =
      static_cast<std::uint64_t>(std::max<std::int64_t>(harness.cli().get_int("notifies"), 1));
  const auto payload =
      static_cast<std::size_t>(std::max<std::int64_t>(harness.cli().get_int("payload"), 0));
  const auto workers =
      static_cast<std::size_t>(std::max<std::int64_t>(harness.cli().get_int("workers"), 1));

  std::printf("=====================================================================\n");
  std::printf("Transport backend comparison (real threads, %zu workers)\n", workers);
  std::printf("workload: %llu echo round trips + %llu notifies, %zu-byte payload\n",
              static_cast<unsigned long long>(round_trips),
              static_cast<unsigned long long>(notifies), payload);
  std::printf("=====================================================================\n\n");
  std::printf("  %-8s %12s %12s %12s %16s\n", "backend", "rt p50(ns)", "rt p99(ns)",
              "rt mean(ns)", "notify msgs/s");

  const WorkloadResult someip = run_someip(round_trips, notifies, payload, workers);
  print_row("someip", someip);
  record_row(harness, "binding/someip", someip);
  const WorkloadResult local = run_local(round_trips, notifies, payload, workers);
  print_row("local", local);
  record_row(harness, "binding/local", local);

  const double someip_p50 = summarize(someip.round_trip_ns).p50;
  const double local_p50 = summarize(local.round_trip_ns).p50;
  std::printf("\n  round-trip p50 speedup (someip/local): %.1fx\n",
              someip_p50 / std::max(local_p50, 1.0));
  std::printf("  the local backend skips SOME/IP encode/decode and the per-packet\n");
  std::printf("  executor hop of the loopback network; payloads move, untouched,\n");
  std::printf("  through a lock-free queue.\n");

  std::printf("\ntyped ara layer over the local backend (proxy/skeleton + method/event):\n\n");
  std::printf("  %-8s %12s %12s %12s %16s\n", "style", "rt p50(ns)", "rt p99(ns)",
              "rt mean(ns)", "notify msgs/s");
  const WorkloadResult handwritten =
      run_typed_handwritten(round_trips, notifies, payload, workers);
  print_row("hand", handwritten);
  record_row(harness, "typed/handwritten", handwritten);
  const WorkloadResult generated = run_typed_generated(round_trips, notifies, payload, workers);
  print_row("gen", generated);
  record_row(harness, "typed/generated", generated);

  const double hand_p50 = summarize(handwritten.round_trip_ns).p50;
  const double gen_p50 = summarize(generated.round_trip_ns).p50;
  std::printf("\n  descriptor-generated / handwritten p50 ratio: %.2fx\n",
              gen_p50 / std::max(hand_p50, 1.0));
  std::printf("  Proxy<I>/Skeleton<I> members resolve at compile time to the same\n");
  std::printf("  typed parts the handwritten classes declare; the descriptor API is\n");
  std::printf("  a zero-cost abstraction over them.\n");

  char detail[96];
  // Smoke-size runs (the ctest bench group) have too few samples for a
  // comparative-latency verdict under CI co-load; enforce only at
  // representative sample counts.
  if (round_trips >= 1000) {
    std::snprintf(detail, sizeof(detail), "local p50 %.0fns vs someip p50 %.0fns", local_p50,
                  someip_p50);
    harness.gate("local_backend_lower_p50", local_p50 < someip_p50, detail);
  } else {
    std::snprintf(detail, sizeof(detail),
                  "skipped: %llu round trips below the 1000-sample floor",
                  static_cast<unsigned long long>(round_trips));
    harness.gate("local_backend_lower_p50", true, detail);
  }
  return harness.finish();
}
