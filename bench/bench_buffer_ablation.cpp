// Ablation: input-buffer depth in the classic pipeline.
//
// The APD stores event data in *one-slot* buffers ("the logic of each
// component processes the last data written to its one-slot input buffer",
// paper §IV.A). A natural engineering reflex is to deepen the buffers.
// This ablation shows why that does not fix the problem: deeper FIFO
// buffers absorb the jitter-induced drops, but (a) they feed the logic
// staler data, and (b) once a drop desynchronizes Computer Vision's two
// queues, FIFO consumption keeps them misaligned *persistently* — input
// mismatches and wrong brake decisions go UP, not down. Buffer depth does
// not buy determinism; it trades one failure mode for a worse one.
//
// Environment knob: DEAR_ABLATION_FRAMES (default 20000).
#include <cstdio>

#include "brake/nondet_pipeline.hpp"
#include "common/flags.hpp"
#include "common/stats.hpp"

int main(int argc, char** argv) {
  const dear::common::Flags flags(argc, argv);
  const auto frames = static_cast<std::uint64_t>(
      flags.get_int("frames", dear::common::env_int("DEAR_ABLATION_FRAMES", 20'000)));

  std::printf("=====================================================================\n");
  std::printf("Ablation: input buffer depth in the classic pipeline\n");
  std::printf("(%llu frames per run, aggregated over 8 seeds per depth)\n",
              static_cast<unsigned long long>(frames));
  std::printf("=====================================================================\n\n");
  std::printf("  %-6s %10s %12s %14s %14s %12s\n", "depth", "err(%)", "mismatches",
              "staleness", "staleMax", "wrongDec");

  for (const std::size_t depth : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    std::uint64_t total_errors = 0;
    std::uint64_t mismatches = 0;
    std::uint64_t wrong = 0;
    std::uint64_t total_frames = 0;
    dear::common::RunningStats staleness;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      dear::brake::ScenarioConfig config;
      config.frames = frames;
      config.platform_seed = seed;
      config.camera_seed = seed + 1000;
      config.input_queue_depth = depth;
      const auto result = dear::brake::run_nondet_pipeline(config);
      total_errors += result.errors.total();
      mismatches += result.errors.input_mismatches_cv;
      wrong += result.wrong_decisions;
      total_frames += result.frames_sent;
      staleness.merge(result.staleness);
    }
    std::printf("  %-6zu %10.3f %12llu %14.2f %14.0f %12llu\n", depth,
                100.0 * static_cast<double>(total_errors) / static_cast<double>(total_frames),
                static_cast<unsigned long long>(mismatches), staleness.mean(), staleness.max(),
                static_cast<unsigned long long>(wrong));
  }
  std::printf("\n  expected: the drop-driven error rate collapses at depth 2 (the queue\n");
  std::printf("  absorbs the jitter), but mismatches and wrong decisions *increase*:\n");
  std::printf("  a single drop leaves the frame and lane queues permanently offset.\n");
  std::printf("  Staleness also grows. Buffer depth does not buy determinism.\n");
  return 0;
}
