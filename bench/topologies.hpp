// Reactor topologies shared by the benchmark suites.
//
// Source -> relays -> sink(s), driven by a logical-action loop — the same
// topology family as the original microbenchmarks. suite_reactor uses the
// DES-driven pipeline/fanout runs; suite_parallel drives the fanout under
// the threaded scheduler at several worker counts (wide same-level batches
// are what exercise the level claim cursor and completion barrier).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/digest.hpp"
#include "reactor/runtime.hpp"
#include "sim/kernel.hpp"

namespace dear::bench {

class Source final : public reactor::Reactor {
 public:
  reactor::Output<std::int64_t> out{"out", this};

  Source(reactor::Environment& env, std::int64_t limit)
      : reactor::Reactor("source", env), limit_(limit) {
    add_reaction("kick", [this] { action_.schedule(reactor::Empty{}); }).triggered_by(startup_);
    add_reaction("emit",
                 [this] {
                   out.set(count_);
                   if (++count_ < limit_) {
                     action_.schedule(reactor::Empty{});
                   } else {
                     request_shutdown();
                   }
                 })
        .triggered_by(action_)
        .writes(out);
  }

 private:
  reactor::StartupTrigger startup_{"startup", this};
  reactor::LogicalAction<reactor::Empty> action_{"tick", this};
  std::int64_t limit_;
  std::int64_t count_{0};
};

class Relay final : public reactor::Reactor {
 public:
  reactor::Input<std::int64_t> in{"in", this};
  reactor::Output<std::int64_t> out{"out", this};

  Relay(reactor::Environment& env, std::string name) : reactor::Reactor(std::move(name), env) {
    add_reaction("relay", [this] { out.set(in.get() + 1); }).triggered_by(in).writes(out);
  }
};

class Sink final : public reactor::Reactor {
 public:
  reactor::Input<std::int64_t> in{"in", this};
  std::int64_t sum{0};

  explicit Sink(reactor::Environment& env, std::string name = "sink")
      : reactor::Reactor(std::move(name), env) {
    add_reaction("consume", [this] { sum += in.get(); }).triggered_by(in);
  }
};

/// DES-driven chain of `depth` relays; returns the sink checksum.
inline std::int64_t run_pipeline(std::size_t depth, std::int64_t events) {
  sim::Kernel kernel;
  reactor::SimClock clock(kernel);
  reactor::Environment env(clock);
  Source source(env, events);
  std::vector<std::unique_ptr<Relay>> relays;
  for (std::size_t i = 0; i < depth; ++i) {
    relays.push_back(std::make_unique<Relay>(env, "relay" + std::to_string(i)));
  }
  Sink sink(env);
  reactor::Output<std::int64_t>* previous = &source.out;
  for (auto& relay : relays) {
    env.connect(*previous, relay->in);
    previous = &relay->out;
  }
  env.connect(*previous, sink.in);
  reactor::SimDriver driver(env, kernel, common::Rng(1));
  driver.start();
  kernel.run();
  return sink.sum;
}

/// DES-driven one-to-many fan-out; returns the first sink's checksum.
inline std::int64_t run_fanout(std::size_t sinks, std::int64_t events) {
  sim::Kernel kernel;
  reactor::SimClock clock(kernel);
  reactor::Environment env(clock);
  Source source(env, events);
  std::vector<std::unique_ptr<Sink>> sink_list;
  for (std::size_t i = 0; i < sinks; ++i) {
    sink_list.push_back(std::make_unique<Sink>(env, "sink" + std::to_string(i)));
    env.connect(source.out, sink_list.back()->in);
  }
  reactor::SimDriver driver(env, kernel, common::Rng(1));
  driver.start();
  kernel.run();
  return sink_list.front()->sum;
}

struct ThreadedFanoutResult {
  std::int64_t sum{0};
  /// Digest over the raw execution trace, tags relative to the start tag
  /// (empty runs without tracing leave it 0).
  std::uint64_t trace_digest{0};
  /// Digest over the processed (relative) tag sequence of the trace.
  std::uint64_t tag_digest{0};
};

/// Threaded-scheduler fan-out with a worker pool: every event stages one
/// `sinks`-wide level, so the per-level coordination cost dominates.
inline ThreadedFanoutResult run_fanout_threaded(unsigned workers, std::size_t sinks,
                                                std::int64_t events, bool tracing = false) {
  reactor::RealClock clock;
  reactor::Environment::Config config;
  config.workers = workers;
  config.tracing = tracing;
  reactor::Environment env(clock, config);
  Source source(env, events);
  std::vector<std::unique_ptr<Sink>> sink_list;
  for (std::size_t i = 0; i < sinks; ++i) {
    sink_list.push_back(std::make_unique<Sink>(env, "sink" + std::to_string(i)));
    env.connect(source.out, sink_list.back()->in);
  }
  env.run();
  ThreadedFanoutResult result;
  result.sum = sink_list.front()->sum;
  if (tracing) {
    const TimePoint start = env.start_time();
    reactor::Tag previous = reactor::Tag::maximum();
    for (const reactor::TraceRecord& record : env.trace().records()) {
      common::mix_digest(result.trace_digest,
                         static_cast<std::uint64_t>(record.tag.time - start));
      common::mix_digest(result.trace_digest, record.tag.microstep);
      for (const char c : record.reaction) {
        common::mix_digest(result.trace_digest, static_cast<std::uint64_t>(c));
      }
      common::mix_digest(result.trace_digest, record.deadline_violated ? 1 : 0);
      if (!(record.tag == previous)) {
        previous = record.tag;
        common::mix_digest(result.tag_digest,
                           static_cast<std::uint64_t>(record.tag.time - start));
        common::mix_digest(result.tag_digest, record.tag.microstep);
      }
    }
  }
  return result;
}

}  // namespace dear::bench
