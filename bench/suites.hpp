// Hot-path benchmark suites, shared between the per-area bench binaries
// and the bench_all driver (which aggregates every suite into one
// BENCH_hotpath.json). Each function runs its cases on the given harness
// and registers its sanity gates.
#pragma once

#include <cstdint>

#include "harness.hpp"

namespace dear::bench {

/// Reactor scheduler hot paths: map-vs-pooled event queue (with the >= 2x
/// throughput gate), end-to-end pipeline/fan-out/action-scheduling runs,
/// and the raw DES kernel baseline.
void run_reactor_suite(Harness& harness);

/// SOME/IP hot paths: encode/decode fresh-vs-pooled (with the pooled p50
/// gate), tag-extension overhead, timestamp bypass, and the case study's
/// heaviest payload round trip.
void run_someip_suite(Harness& harness);

struct ParallelScalingOptions {
  /// Events per threaded-scheduler fan-out run.
  std::uint64_t threaded_events{2'000};
  /// Frames per fault-sweep scenario (the preset is a fixed 96-scenario
  /// grid; case names carry "96x<frames>f").
  std::uint64_t campaign_frames{120};
  std::uint64_t campaign_seed{1};
  /// Golden anchor for the serial campaign report digest; 0 skips the
  /// anchor gate (standalone runs with non-default frames).
  std::uint64_t golden_campaign_digest{0};
};

/// Worker-count scaling: threaded scheduler (per-event overhead ceiling +
/// trace/tag digest equality at 1/2/4 workers) and the fault-sweep
/// campaign (>= 1.6x at 2 workers when the host has >= 2 cores, report
/// digest equality always).
void run_parallel_scaling_suite(Harness& harness, const ParallelScalingOptions& options);

struct ObsOverheadOptions {
  /// Frames for the DEAR pipeline overhead pair (the 300-frame anchor
  /// workload; smaller standalone values skip the golden gate).
  std::uint64_t pipeline_frames{300};
  /// Golden output digest the obs-enabled pipeline run must reproduce;
  /// 0 skips the anchor gate.
  std::uint64_t golden_digest{0};
};

/// Observability overhead: disabled -> enabled -> disabled triples on the
/// DES event-queue pump and the DEAR pipeline, gating the enabled p50
/// within 5% of the slower disabled run, plus the digest-invariance gates
/// (obs on == obs off == golden anchor).
void run_obs_suite(Harness& harness, const ObsOverheadOptions& options);

struct FtSuiteOptions {
  /// Frames for the DEAR pipeline idle-overhead triple (the 300-frame
  /// anchor workload; smaller standalone values skip the golden gate).
  std::uint64_t pipeline_frames{300};
  /// Golden output digest the idle-probe run must reproduce; 0 skips the
  /// anchor gate.
  std::uint64_t golden_digest{0};
  /// Frames and seed for the fault-tolerance campaign sweep (48 scenarios
  /// full, 16 under --quick).
  std::uint64_t sweep_frames{120};
  std::uint64_t sweep_seed{1};
};

/// Fault-tolerance gates: FT-free vs inert-fault-plan triples on the DEAR
/// pipeline (idle injection hooks within 5%, digests unchanged vs the
/// golden anchor) plus the fault-tolerance campaign with faults live —
/// zero determinism violations and report-digest equality at 1/2/4
/// workers.
void run_ft_suite(Harness& harness, const FtSuiteOptions& options);

struct DataplaneOptions {
  /// Frames per measured batch at the 64 KiB payload class. Larger
  /// classes scale the per-batch frame count down so every row moves a
  /// comparable byte volume (GB/s stays the comparable unit).
  std::uint64_t frames{256};
  /// Frames for the dedicated steady-state counter audit (zero-copy and
  /// zero-slab-allocation gates on the local loaned path).
  std::uint64_t steady_frames{128};
  /// Golden DEAR pipeline output digest the 300-frame anchor workload
  /// must reproduce with the camera payload plane live; 0 skips the
  /// anchor gates (standalone runs with non-default frames).
  std::uint64_t golden_digest{0};
};

/// Sensor data plane: loaned-slab vs encode event streaming at
/// 64 KiB/256 KiB/1 MiB/4 MiB over both transport backends (GB/s +
/// per-frame p50/p99), the >= 10x local loaned-vs-encode throughput gate
/// at 1 MiB, steady-state counter audits (zero payload copies, zero slab
/// allocations on the local loaned path), and the DEAR digest anchors
/// re-run with a live camera payload plane.
void run_dataplane_suite(Harness& harness, const DataplaneOptions& options);

}  // namespace dear::bench
