// Hot-path benchmark suites, shared between the per-area bench binaries
// and the bench_all driver (which aggregates every suite into one
// BENCH_hotpath.json). Each function runs its cases on the given harness
// and registers its sanity gates.
#pragma once

#include "harness.hpp"

namespace dear::bench {

/// Reactor scheduler hot paths: map-vs-pooled event queue (with the >= 2x
/// throughput gate), end-to-end pipeline/fan-out/action-scheduling runs,
/// and the raw DES kernel baseline.
void run_reactor_suite(Harness& harness);

/// SOME/IP hot paths: encode/decode fresh-vs-pooled (with the pooled p50
/// gate), tag-extension overhead, timestamp bypass, and the case study's
/// heaviest payload round trip.
void run_someip_suite(Harness& harness);

}  // namespace dear::bench
