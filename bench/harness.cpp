#include "harness.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <thread>

#include "common/stats.hpp"

namespace dear::bench {

double now_ns() {
  return static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now().time_since_epoch())
                                 .count());
}

Harness::Harness(std::string name, std::string summary)
    : name_(std::move(name)), cli_(name_, std::move(summary)) {
  cli_.add_string("json", "", "write the dear-bench-v1 JSON report to this file");
  cli_.add_int("warmup", 3, "untimed runs per case before measurement");
  cli_.add_int("repeats", 20, "timed runs per case");
  cli_.add_flag("quick", "trim workloads to smoke-test size (ctest/CI)");
}

bool Harness::parse(int argc, const char* const* argv) {
  if (!cli_.parse(argc, argv)) {
    return false;
  }
  warmup_ = static_cast<std::uint64_t>(std::max<std::int64_t>(cli_.get_int("warmup"), 0));
  repeats_ = static_cast<std::uint64_t>(std::max<std::int64_t>(cli_.get_int("repeats"), 1));
  quick_ = cli_.get_flag("quick");
  if (quick_) {
    warmup_ = std::min<std::uint64_t>(warmup_, 1);
    repeats_ = std::min<std::uint64_t>(repeats_, 5);
  }
  return true;
}

CaseResult& Harness::measure(const std::string& name, std::uint64_t ops_per_call,
                             const std::function<void()>& fn) {
  for (std::uint64_t i = 0; i < warmup_; ++i) {
    fn();
  }
  std::vector<double> samples;
  samples.reserve(repeats_);
  for (std::uint64_t i = 0; i < repeats_; ++i) {
    const double start = now_ns();
    fn();
    samples.push_back((now_ns() - start) / static_cast<double>(std::max<std::uint64_t>(
                                               ops_per_call, 1)));
  }
  CaseResult& result = record(name, samples);
  result.iterations = repeats_ * ops_per_call;
  return result;
}

CaseResult& Harness::record(const std::string& name, const std::vector<double>& samples_ns,
                            double throughput_per_s) {
  common::QuantileSketch sketch;
  double sum = 0.0;
  for (const double sample : samples_ns) {
    sketch.add(sample);
    sum += sample;
  }
  CaseResult result;
  result.name = name;
  result.iterations = samples_ns.size();
  if (!samples_ns.empty()) {
    result.p50_ns = sketch.quantile(0.50);
    result.p99_ns = sketch.quantile(0.99);
    result.mean_ns = sum / static_cast<double>(samples_ns.size());
  }
  result.throughput_per_s =
      throughput_per_s > 0.0
          ? throughput_per_s
          : (result.mean_ns > 0.0 ? 1e9 / result.mean_ns : 0.0);
  cases_.push_back(std::move(result));
  return cases_.back();
}

const CaseResult* Harness::find(const std::string& name) const noexcept {
  for (const CaseResult& result : cases_) {
    if (result.name == name) {
      return &result;
    }
  }
  return nullptr;
}

void Harness::gate(const std::string& name, bool ok, const std::string& detail) {
  gates_.push_back(GateResult{name, ok, false, detail});
}

void Harness::gate_skipped(const std::string& name, const std::string& detail) {
  gates_.push_back(GateResult{name, true, true, detail});
}

namespace {

void json_escape_into(std::string& out, const std::string& in) {
  for (const char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
}

void json_number_into(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";  // JSON has no inf/nan; null keeps the document valid
    return;
  }
  char buffer[64];
  // %.17g round-trips doubles; integral in-range values print without a
  // fraction. The range check precedes the cast (out-of-range
  // double->long long is undefined behavior).
  if (value > -1e15 && value < 1e15 &&
      value == static_cast<double>(static_cast<long long>(value))) {
    std::snprintf(buffer, sizeof(buffer), "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  }
  out += buffer;
}

}  // namespace

bool Harness::write_json(const std::string& path) const {
  std::string out;
  out += "{\n  \"schema\": \"dear-bench-v1\",\n  \"bench\": \"";
  json_escape_into(out, name_);
  out += "\",\n  \"quick\": ";
  out += quick_ ? "true" : "false";
  out += ",\n  \"host_cores\": ";
  json_number_into(out, static_cast<double>(std::thread::hardware_concurrency()));
  out += ",\n  \"results\": [";
  for (std::size_t i = 0; i < cases_.size(); ++i) {
    const CaseResult& c = cases_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"";
    json_escape_into(out, c.name);
    out += "\", \"iterations\": ";
    json_number_into(out, static_cast<double>(c.iterations));
    out += ", \"p50_ns\": ";
    json_number_into(out, c.p50_ns);
    out += ", \"p99_ns\": ";
    json_number_into(out, c.p99_ns);
    out += ", \"mean_ns\": ";
    json_number_into(out, c.mean_ns);
    out += ", \"throughput_per_s\": ";
    json_number_into(out, c.throughput_per_s);
    out += ", \"counters\": {";
    for (std::size_t k = 0; k < c.counters.size(); ++k) {
      out += k == 0 ? "" : ", ";
      out += "\"";
      json_escape_into(out, c.counters[k].first);
      out += "\": ";
      json_number_into(out, c.counters[k].second);
    }
    out += "}}";
  }
  out += "\n  ],\n  \"gates\": [";
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const GateResult& g = gates_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"";
    json_escape_into(out, g.name);
    out += "\", \"ok\": ";
    out += g.ok ? "true" : "false";
    out += ", \"skipped\": ";
    out += g.skipped ? "true" : "false";
    out += ", \"detail\": \"";
    json_escape_into(out, g.detail);
    out += "\"}";
  }
  out += "\n  ],\n  \"all_gates_ok\": ";
  out += std::all_of(gates_.begin(), gates_.end(),
                     [](const GateResult& g) { return g.ok; })
             ? "true"
             : "false";
  out += "\n}\n";

  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file << out;
  file.flush();
  if (!file) {
    std::fprintf(stderr, "%s: cannot write JSON report to '%s'\n", name_.c_str(), path.c_str());
    return false;
  }
  return true;
}

int Harness::finish() {
  std::printf("\n%s (%s mode, warmup %llu, repeats %llu)\n", name_.c_str(),
              quick_ ? "quick" : "full", static_cast<unsigned long long>(warmup_),
              static_cast<unsigned long long>(repeats_));
  std::printf("  %-44s %12s %12s %12s %16s\n", "case", "p50(ns)", "p99(ns)", "mean(ns)",
              "ops/s");
  for (const CaseResult& c : cases_) {
    std::printf("  %-44s %12.1f %12.1f %12.1f %16.0f\n", c.name.c_str(), c.p50_ns, c.p99_ns,
                c.mean_ns, c.throughput_per_s);
  }

  bool all_ok = true;
  for (const GateResult& g : gates_) {
    std::printf("  gate %-39s %s  %s\n", g.name.c_str(),
                g.skipped ? "SKIP" : (g.ok ? "PASS" : "FAIL"), g.detail.c_str());
    all_ok = all_ok && g.ok;
  }

  std::string path = cli_.get_string("json");
  if (path.empty()) {
    path = default_json_path_;
  }
  if (!path.empty()) {
    // A missing report is a failure in its own right: the JSON artifact is
    // what CI uploads and what makes the perf trajectory diffable.
    if (write_json(path)) {
      std::printf("  json report: %s\n", path.c_str());
    } else {
      all_ok = false;
    }
  }
  return all_ok ? 0 : 1;
}

}  // namespace dear::bench
