// Fault-tolerance overhead and determinism cases.
//
// The FT contract mirrors the obs one: with no service faults configured
// the injection hooks and retry plumbing must stay within 5% of the
// FT-free hot path, and the anchor digests must not move. The idle probe
// (ft_idle_probe) installs an inert fault plan on every runtime, so the
// measured run takes the plan-installed branch on each send/receive while
// injecting nothing — the worst idle case. The suite then runs the
// fault-tolerance campaign itself (faults live) and gates zero
// determinism violations plus report-digest equality at 1/2/4 workers.
#include <algorithm>
#include <cstdint>
#include <cstdio>

#include "brake/dear_pipeline.hpp"
#include "scenario/presets.hpp"
#include "scenario/runner.hpp"
#include "suites.hpp"

namespace dear::bench {

namespace {

constexpr unsigned kWorkerCounts[] = {1, 2, 4};

/// Fixed-seed DEAR brake pipeline over SOME/IP (the bench_all anchor
/// workload), optionally with the inert fault plan installed.
std::uint64_t run_dear_digest(std::uint64_t frames, bool idle_probe) {
  brake::DearScenarioConfig config;
  config.frames = frames;
  config.platform_seed = 7;
  config.camera_seed = config.platform_seed + 1000;
  config.local_transport = false;
  config.ft_idle_probe = idle_probe;
  return brake::run_dear_pipeline(config).output_digest;
}

}  // namespace

void run_ft_suite(Harness& h, const FtSuiteOptions& options) {
  // Same noise policy as the obs suite: --quick runs share the host with a
  // parallel ctest sweep, so only the dedicated Release bench job enforces
  // the 5% contract.
  const double factor = h.quick() ? 1.50 : 1.05;
  constexpr double kEpsilonNs = 10.0;
  char detail[192];

  // --- idle overhead: FT-free vs inert-plan triple ---------------------------
  const std::uint64_t frames = options.pipeline_frames;
  std::uint64_t digest_off = 0;
  std::uint64_t digest_probe = 0;
  const CaseResult& off = h.measure("ft/dear_pipeline/off", frames,
                                    [&] { digest_off = run_dear_digest(frames, false); });
  CaseResult& probe = h.measure("ft/dear_pipeline/idle_probe", frames,
                                [&] { digest_probe = run_dear_digest(frames, true); });
  const CaseResult& off2 = h.measure("ft/dear_pipeline/off_again", frames,
                                     [&] { digest_off = run_dear_digest(frames, false); });

  const double baseline = std::max(off.p50_ns, off2.p50_ns);
  const double overhead = baseline > 0.0 ? (probe.p50_ns / baseline - 1.0) * 100.0 : 0.0;
  Harness::counter(probe, "overhead_percent", overhead);
  std::snprintf(detail, sizeof(detail),
                "idle-plan p50 %.1fns/frame vs FT-free %.1fns/frame: %+.1f%% (gate %.0f%%)",
                probe.p50_ns, baseline, overhead, (factor - 1.0) * 100.0);
  h.gate("ft_idle_overhead_5pct", probe.p50_ns <= baseline * factor + kEpsilonNs, detail);

  std::snprintf(detail, sizeof(detail), "digest %016llx with idle plan, %016llx without",
                static_cast<unsigned long long>(digest_probe),
                static_cast<unsigned long long>(digest_off));
  h.gate("ft_idle_digest_invariant", digest_probe == digest_off, detail);
  if (options.golden_digest != 0) {
    std::snprintf(detail, sizeof(detail), "digest %016llx with idle plan, golden %016llx",
                  static_cast<unsigned long long>(digest_probe),
                  static_cast<unsigned long long>(options.golden_digest));
    h.gate("ft_idle_digest_anchor", digest_probe == options.golden_digest, detail);
  }

  // --- fault-tolerance campaign: violations + worker invariance --------------
  // Faults live: crash/restart windows, per-call error/omission dice,
  // retry budgets and the degraded-mode fallbacks all execute. The digest
  // groups span transports, so a single zero-violation run already proves
  // someip == local; the worker sweep proves schedule independence.
  const auto campaign =
      h.quick() ? scenario::presets::fault_tolerance_smoke(options.sweep_frames,
                                                           options.sweep_seed)
                : scenario::presets::fault_tolerance_sweep(options.sweep_frames,
                                                           options.sweep_seed);
  const auto scenario_count = static_cast<std::uint64_t>(campaign.expand().size());
  std::uint64_t serial_digest = 0;
  std::size_t serial_violations = 0;
  bool digests_identical = true;
  for (const unsigned workers : kWorkerCounts) {
    char name[64];
    std::snprintf(name, sizeof(name), "ft_sweep/%llux%lluf/%uworkers",
                  static_cast<unsigned long long>(scenario_count),
                  static_cast<unsigned long long>(options.sweep_frames), workers);
    std::uint64_t digest = 0;
    std::size_t violations = 0;
    h.measure(name, scenario_count, [&] {
      scenario::RunnerOptions runner_options;
      runner_options.workers = workers;
      const auto report = scenario::CampaignRunner(runner_options).run(campaign);
      digest = report.report_digest();
      violations = report.violations.size();
    });
    if (workers == 1) {
      serial_digest = digest;
      serial_violations = violations;
    } else if (digest != serial_digest || violations != serial_violations) {
      digests_identical = false;
    }
  }
  std::snprintf(detail, sizeof(detail), "%zu violation(s) across %llu scenario(s)",
                serial_violations, static_cast<unsigned long long>(scenario_count));
  h.gate("ft_sweep_zero_violations", serial_violations == 0, detail);
  std::snprintf(detail, sizeof(detail), "report digest %016llx identical at 1/2/4 workers: %s",
                static_cast<unsigned long long>(serial_digest),
                digests_identical ? "yes" : "NO");
  h.gate("ft_sweep_digest_workers", digests_identical, detail);
}

}  // namespace dear::bench
