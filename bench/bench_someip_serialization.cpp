// SOME/IP serialization microbenchmarks, including the overhead of the
// DEAR tag extension (12-byte trailer + bypass handling) relative to
// standard untagged messages.
#include <benchmark/benchmark.h>

#include "brake/types.hpp"
#include "brake/logic.hpp"
#include "someip/message.hpp"
#include "someip/timestamp_bypass.hpp"

namespace {

using namespace dear;

someip::Message make_message(std::size_t payload_size, bool tagged) {
  someip::Message message;
  message.service = 0x1234;
  message.method = 0x8001;
  message.client = 0x01;
  message.session = 0x42;
  message.type = someip::MessageType::kNotification;
  message.payload.assign(payload_size, 0xAB);
  if (tagged) {
    message.tag = someip::WireTag{123'456'789, 2};
  }
  return message;
}

void BM_EncodeUntagged(benchmark::State& state) {
  const auto message = make_message(static_cast<std::size_t>(state.range(0)), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(message.encode());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(state.range(0) + 16));
}
BENCHMARK(BM_EncodeUntagged)->Arg(16)->Arg(256)->Arg(4096);

void BM_EncodeTagged(benchmark::State& state) {
  const auto message = make_message(static_cast<std::size_t>(state.range(0)), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(message.encode());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(state.range(0) + 28));
}
BENCHMARK(BM_EncodeTagged)->Arg(16)->Arg(256)->Arg(4096);

void BM_DecodeUntagged(benchmark::State& state) {
  const auto wire = make_message(static_cast<std::size_t>(state.range(0)), false).encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(someip::Message::decode(wire));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_DecodeUntagged)->Arg(16)->Arg(256)->Arg(4096);

void BM_DecodeTagged(benchmark::State& state) {
  const auto wire = make_message(static_cast<std::size_t>(state.range(0)), true).encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(someip::Message::decode(wire));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_DecodeTagged)->Arg(16)->Arg(256)->Arg(4096);

void BM_TimestampBypass(benchmark::State& state) {
  someip::TimestampBypass bypass;
  for (auto _ : state) {
    bypass.deposit(someip::WireTag{1, 0});
    benchmark::DoNotOptimize(bypass.collect());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimestampBypass);

void BM_BrakePayloadRoundTrip(benchmark::State& state) {
  // The case study's heaviest payload: a vehicle list.
  const brake::VideoFrame frame = brake::generate_frame(7, 1000);
  const brake::LaneInfo lane = brake::detect_lane(frame);
  const brake::VehicleList vehicles = brake::detect_vehicles(frame, lane);
  for (auto _ : state) {
    const auto payload = someip::encode_payload(vehicles);
    brake::VehicleList decoded;
    benchmark::DoNotOptimize(someip::decode_payload(payload, decoded));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BrakePayloadRoundTrip);

void BM_BrakeLogicPipeline(benchmark::State& state) {
  // The pure component logic (no coordination): per-frame cost.
  std::uint64_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(brake::reference_decision(id++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BrakeLogicPipeline);

}  // namespace
