// SOME/IP serialization microbenchmarks, including the overhead of the
// DEAR tag extension (12-byte trailer + bypass handling) and the pooled
// buffer path relative to per-message allocation. `--json out.json` emits
// the shared dear-bench-v1 report.
#include "suites.hpp"

int main(int argc, char** argv) {
  dear::bench::Harness harness(
      "bench_someip_serialization",
      "SOME/IP wire encode/decode hot paths (pooled buffers vs fresh allocations).");
  if (!harness.parse(argc, argv)) {
    return harness.exit_code();
  }
  dear::bench::run_someip_suite(harness);
  return harness.finish();
}
