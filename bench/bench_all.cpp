// Hot-path trajectory driver: runs every hot-path suite plus the
// determinism anchors in one process and writes BENCH_hotpath.json (the
// committed, diffable perf record; see docs/performance.md for the
// schema). Exit status reflects the sanity gates:
//   * event_queue_speedup_2x       — pooled queue >= 2x the std::map queue
//   * event_queue_pop_order_identical
//   * someip_pooled_roundtrip_faster
//   * dear_digest_someip/local     — DEAR pipeline output digest unchanged
//   * fault_sweep_digest(_workers) — campaign report digest unchanged and
//                                    identical across 1/2/4 workers
//   * campaign_speedup_2w          — fault sweep >= 1.6x serial at 2
//                                    workers (hosts with >= 2 cores)
//   * threaded_overhead_3x         — threaded scheduler per-event p50 at 2
//                                    workers <= 3x single-threaded
//   * threaded_digest_workers      — trace/tag digests identical at 1/2/4
//                                    workers
//   * ft_idle_*/ft_sweep_*         — idle fault-tolerance hooks within 5%
//                                    with anchor digests unchanged; live
//                                    fault campaign digest-stable at every
//                                    worker count with zero violations
//   * dataplane_*                  — local loaned streaming >= 10x encode
//                                    GB/s at 1 MiB, zero payload copies +
//                                    zero slab allocations in steady
//                                    state, anchor digests unchanged with
//                                    1 MiB camera bursts live
// so CI fails on a hot-path, scaling or determinism regression without
// parsing any console output.
#include <cstdio>

#include "brake/dear_pipeline.hpp"
#include "suites.hpp"

namespace {

// Golden digests for the fixed-seed anchor workloads below. Captured from
// the std::map-queue implementation; every later change must reproduce
// them bit-exactly.
constexpr std::uint64_t kDearDigest300f7 = 0xe4eb73d5ff217bdeULL;      // 300 frames, seed 7
constexpr std::uint64_t kFaultSweepDigest120f1 = 0x6b2d9413c9b8a160ULL;  // 96 scen., 120 frames

std::uint64_t run_dear_digest(bool local_transport) {
  dear::brake::DearScenarioConfig config;
  config.frames = 300;
  config.platform_seed = 7;
  config.camera_seed = config.platform_seed + 1000;
  config.local_transport = local_transport;
  return dear::brake::run_dear_pipeline(config).output_digest;
}

}  // namespace

int main(int argc, char** argv) {
  dear::bench::Harness harness(
      "hotpath", "All hot-path suites + determinism anchors; writes BENCH_hotpath.json.");
  harness.set_default_json_path("BENCH_hotpath.json");
  if (!harness.parse(argc, argv)) {
    return harness.exit_code();
  }

  dear::bench::run_reactor_suite(harness);
  dear::bench::run_someip_suite(harness);

  // --- determinism anchors ---------------------------------------------------
  char detail[160];

  std::uint64_t someip_digest = 0;
  harness.measure("dear_pipeline/300f/someip", 300,
                  [&] { someip_digest = run_dear_digest(false); });
  std::snprintf(detail, sizeof(detail), "digest %016llx, expected %016llx",
                static_cast<unsigned long long>(someip_digest),
                static_cast<unsigned long long>(kDearDigest300f7));
  harness.gate("dear_digest_someip", someip_digest == kDearDigest300f7, detail);

  std::uint64_t local_digest = 0;
  harness.measure("dear_pipeline/300f/local", 300,
                  [&] { local_digest = run_dear_digest(true); });
  std::snprintf(detail, sizeof(detail), "digest %016llx, expected %016llx",
                static_cast<unsigned long long>(local_digest),
                static_cast<unsigned long long>(kDearDigest300f7));
  harness.gate("dear_digest_local", local_digest == kDearDigest300f7, detail);

  // --- parallel scaling ------------------------------------------------------
  // The 96-scenario fault sweep at 1/2/4 workers (report digest anchored
  // to the golden value above and gated identical across worker counts)
  // plus the threaded-scheduler worker sweep.
  dear::bench::ParallelScalingOptions scaling;
  scaling.campaign_frames = 120;
  scaling.campaign_seed = 1;
  scaling.golden_campaign_digest = kFaultSweepDigest120f1;
  dear::bench::run_parallel_scaling_suite(harness, scaling);

  // --- observability overhead ------------------------------------------------
  // Enabled-vs-disabled triples on the event-queue and DEAR pipeline hot
  // paths (<= 5% gate) plus the digest-invariance contract with obs live.
  dear::bench::ObsOverheadOptions obs_options;
  obs_options.pipeline_frames = 300;
  obs_options.golden_digest = kDearDigest300f7;
  dear::bench::run_obs_suite(harness, obs_options);

  // --- fault tolerance -------------------------------------------------------
  // Idle injection hooks within 5% of the FT-free hot path (anchor digest
  // unchanged), then the fault-tolerance campaign with faults live: zero
  // determinism violations, report digest identical at 1/2/4 workers.
  dear::bench::FtSuiteOptions ft_options;
  ft_options.pipeline_frames = 300;
  ft_options.golden_digest = kDearDigest300f7;
  ft_options.sweep_frames = 120;
  ft_options.sweep_seed = 1;
  dear::bench::run_ft_suite(harness, ft_options);

  // --- sensor data plane -----------------------------------------------------
  // Loaned-slab vs encode streaming over both transports (>= 10x local
  // loaned GB/s at 1 MiB, zero payload copies and zero slab allocations
  // in steady state) and the anchor digest re-run with 1 MiB camera
  // bursts live.
  dear::bench::DataplaneOptions dataplane_options;
  dataplane_options.golden_digest = kDearDigest300f7;
  dear::bench::run_dataplane_suite(harness, dataplane_options);

  return harness.finish();
}
