// Hot-path trajectory driver: runs every hot-path suite plus the
// determinism anchors in one process and writes BENCH_hotpath.json (the
// committed, diffable perf record; see docs/performance.md for the
// schema). Exit status reflects the sanity gates:
//   * event_queue_speedup_2x       — pooled queue >= 2x the std::map queue
//   * event_queue_pop_order_identical
//   * someip_pooled_roundtrip_faster
//   * dear_digest_someip/local     — DEAR pipeline output digest unchanged
//   * fault_sweep_digest(_workers) — campaign report digest unchanged and
//                                    identical across worker counts
// so CI fails on a hot-path or determinism regression without parsing any
// console output.
#include <cstdio>

#include "brake/dear_pipeline.hpp"
#include "scenario/presets.hpp"
#include "scenario/runner.hpp"
#include "suites.hpp"

namespace {

// Golden digests for the fixed-seed anchor workloads below. Captured from
// the std::map-queue implementation; every later change must reproduce
// them bit-exactly.
constexpr std::uint64_t kDearDigest300f7 = 0xe4eb73d5ff217bdeULL;      // 300 frames, seed 7
constexpr std::uint64_t kFaultSweepDigest120f1 = 0x6b2d9413c9b8a160ULL;  // 96 scen., 120 frames

std::uint64_t run_dear_digest(bool local_transport) {
  dear::brake::DearScenarioConfig config;
  config.frames = 300;
  config.platform_seed = 7;
  config.camera_seed = config.platform_seed + 1000;
  config.local_transport = local_transport;
  return dear::brake::run_dear_pipeline(config).output_digest;
}

}  // namespace

int main(int argc, char** argv) {
  dear::bench::Harness harness(
      "hotpath", "All hot-path suites + determinism anchors; writes BENCH_hotpath.json.");
  harness.set_default_json_path("BENCH_hotpath.json");
  if (!harness.parse(argc, argv)) {
    return harness.exit_code();
  }

  dear::bench::run_reactor_suite(harness);
  dear::bench::run_someip_suite(harness);

  // --- determinism anchors ---------------------------------------------------
  char detail[160];

  std::uint64_t someip_digest = 0;
  harness.measure("dear_pipeline/300f/someip", 300,
                  [&] { someip_digest = run_dear_digest(false); });
  std::snprintf(detail, sizeof(detail), "digest %016llx, expected %016llx",
                static_cast<unsigned long long>(someip_digest),
                static_cast<unsigned long long>(kDearDigest300f7));
  harness.gate("dear_digest_someip", someip_digest == kDearDigest300f7, detail);

  std::uint64_t local_digest = 0;
  harness.measure("dear_pipeline/300f/local", 300,
                  [&] { local_digest = run_dear_digest(true); });
  std::snprintf(detail, sizeof(detail), "digest %016llx, expected %016llx",
                static_cast<unsigned long long>(local_digest),
                static_cast<unsigned long long>(kDearDigest300f7));
  harness.gate("dear_digest_local", local_digest == kDearDigest300f7, detail);

  // The 96-scenario fault sweep: wall clock is the tracked metric, the
  // report digest (at both worker counts) is the gate.
  const auto campaign = dear::scenario::presets::fault_sweep(120, 1);
  std::uint64_t serial_digest = 0;
  std::uint64_t parallel_digest = 0;
  std::size_t violations = 0;
  harness.measure("fault_sweep/96x120f/serial", 96, [&] {
    dear::scenario::RunnerOptions options;
    options.workers = 1;
    const auto report = dear::scenario::CampaignRunner(options).run(campaign);
    serial_digest = report.report_digest();
    violations = report.violations.size();
  });
  harness.measure("fault_sweep/96x120f/2workers", 96, [&] {
    dear::scenario::RunnerOptions options;
    options.workers = 2;
    const auto report = dear::scenario::CampaignRunner(options).run(campaign);
    parallel_digest = report.report_digest();
  });
  std::snprintf(detail, sizeof(detail), "digest %016llx, expected %016llx, %zu violation(s)",
                static_cast<unsigned long long>(serial_digest),
                static_cast<unsigned long long>(kFaultSweepDigest120f1), violations);
  harness.gate("fault_sweep_digest", serial_digest == kFaultSweepDigest120f1 && violations == 0,
               detail);
  std::snprintf(detail, sizeof(detail), "2-worker digest %016llx vs serial %016llx",
                static_cast<unsigned long long>(parallel_digest),
                static_cast<unsigned long long>(serial_digest));
  harness.gate("fault_sweep_digest_workers", parallel_digest == serial_digest, detail);

  return harness.finish();
}
