// Parallel scaling cases: does adding workers actually pay?
//
// Two subjects, swept over 1/2/4 workers:
//   * the threaded scheduler on an 8-wide fan-out — every event stages one
//     8-reaction level, so the per-event cost is dominated by the level
//     claim cursor + completion barrier this suite guards;
//   * the fault-sweep campaign batch runner — independent DES scenarios
//     claimed in batches off the runner cursor.
//
// Digest gates are unconditional: the threaded trace/tag digests and the
// campaign report digest must be bit-identical at every worker count.
// Speedup/overhead floors need real parallel hardware, so they enforce
// only when the host has >= 2 cores (a 1-core container cannot exhibit
// parallel speedup; the gate is then recorded as skipped — machine-readable
// in the report's per-gate "skipped" field).
#include <cstdint>
#include <cstdio>
#include <thread>

#include "scenario/presets.hpp"
#include "scenario/runner.hpp"
#include "suites.hpp"
#include "topologies.hpp"

namespace dear::bench {

namespace {

constexpr std::size_t kFanoutWidth = 8;
constexpr unsigned kWorkerCounts[] = {1, 2, 4};

}  // namespace

void run_parallel_scaling_suite(Harness& h, const ParallelScalingOptions& options) {
  const std::size_t cores = std::thread::hardware_concurrency();
  char detail[192];

  // --- threaded scheduler: per-event cost over worker counts -----------------
  const auto events = static_cast<std::int64_t>(h.scale(options.threaded_events,
                                                        options.threaded_events / 10 + 1));
  double per_event_1w = 0.0;
  double overhead_2w = 0.0;
  for (const unsigned workers : kWorkerCounts) {
    char name[64];
    std::snprintf(name, sizeof(name), "threaded_workers/%u", workers);
    CaseResult& result = h.measure(name, static_cast<std::uint64_t>(events), [&] {
      (void)run_fanout_threaded(workers, kFanoutWidth, events);
    });
    if (workers == 1) {
      per_event_1w = result.p50_ns;
    } else if (per_event_1w > 0.0) {
      const double overhead = result.p50_ns / per_event_1w;
      Harness::counter(result, "per_event_overhead_vs_1w", overhead);
      if (workers == 2) {
        overhead_2w = overhead;
      }
    }
  }
  const double overhead_ceiling = h.quick() ? 8.0 : 3.0;
  if (cores < 2) {
    std::snprintf(detail, sizeof(detail),
                  "host has %zu core(s) (observed %.2fx at 2 workers)", cores, overhead_2w);
    h.gate_skipped("threaded_overhead_3x", detail);
  } else {
    std::snprintf(detail, sizeof(detail),
                  "per-event p50 at 2 workers %.2fx of single-threaded (ceiling %.1fx)",
                  overhead_2w, overhead_ceiling);
    h.gate("threaded_overhead_3x", overhead_2w <= overhead_ceiling, detail);
  }

  // --- threaded scheduler: digest conformance over worker counts -------------
  // Separate traced runs (tracing is not part of the measured cost): the
  // raw trace and tag digests must be bit-identical at every worker count
  // — the deterministic (level, batch-index) merge at work.
  const std::int64_t digest_events = std::min<std::int64_t>(events, 500);
  ThreadedFanoutResult reference{};
  bool digests_identical = true;
  for (const unsigned workers : kWorkerCounts) {
    const ThreadedFanoutResult run =
        run_fanout_threaded(workers, kFanoutWidth, digest_events, /*tracing=*/true);
    if (workers == 1) {
      reference = run;
    } else if (run.trace_digest != reference.trace_digest ||
               run.tag_digest != reference.tag_digest || run.sum != reference.sum) {
      digests_identical = false;
    }
  }
  std::snprintf(detail, sizeof(detail),
                "trace %016llx / tags %016llx at 1 worker, identical at 2 and 4",
                static_cast<unsigned long long>(reference.trace_digest),
                static_cast<unsigned long long>(reference.tag_digest));
  h.gate("threaded_digest_workers", digests_identical, detail);

  // --- campaign batch runner: throughput over worker counts ------------------
  const auto campaign =
      dear::scenario::presets::fault_sweep(options.campaign_frames, options.campaign_seed);
  const auto scenario_count = static_cast<std::uint64_t>(campaign.expand().size());
  double serial_throughput = 0.0;
  double speedup_2w = 0.0;
  std::uint64_t serial_digest = 0;
  std::size_t serial_violations = 0;
  bool campaign_digests_identical = true;
  for (const unsigned workers : kWorkerCounts) {
    char name[64];
    if (workers == 1) {
      std::snprintf(name, sizeof(name), "fault_sweep/%zux%lluf/serial",
                    static_cast<std::size_t>(scenario_count),
                    static_cast<unsigned long long>(options.campaign_frames));
    } else {
      std::snprintf(name, sizeof(name), "fault_sweep/%zux%lluf/%uworkers",
                    static_cast<std::size_t>(scenario_count),
                    static_cast<unsigned long long>(options.campaign_frames), workers);
    }
    std::uint64_t digest = 0;
    std::size_t violations = 0;
    CaseResult& result = h.measure(name, scenario_count, [&] {
      dear::scenario::RunnerOptions runner_options;
      runner_options.workers = workers;
      const auto report = dear::scenario::CampaignRunner(runner_options).run(campaign);
      digest = report.report_digest();
      violations = report.violations.size();
    });
    if (workers == 1) {
      serial_throughput = result.throughput_per_s;
      serial_digest = digest;
      serial_violations = violations;
    } else {
      if (serial_throughput > 0.0) {
        const double speedup = result.throughput_per_s / serial_throughput;
        Harness::counter(result, "speedup_vs_serial", speedup);
        if (workers == 2) {
          speedup_2w = speedup;
        }
      }
      if (digest != serial_digest || violations != serial_violations) {
        campaign_digests_identical = false;
      }
    }
  }

  if (options.golden_campaign_digest != 0) {
    std::snprintf(detail, sizeof(detail), "digest %016llx, expected %016llx, %zu violation(s)",
                  static_cast<unsigned long long>(serial_digest),
                  static_cast<unsigned long long>(options.golden_campaign_digest),
                  serial_violations);
    h.gate("fault_sweep_digest",
           serial_digest == options.golden_campaign_digest && serial_violations == 0, detail);
  }
  std::snprintf(detail, sizeof(detail),
                "report digest %016llx identical at 1/2/4 workers: %s",
                static_cast<unsigned long long>(serial_digest),
                campaign_digests_identical ? "yes" : "NO");
  h.gate("fault_sweep_digest_workers", campaign_digests_identical, detail);

  const double speedup_floor = h.quick() ? 1.2 : 1.6;
  if (cores < 2) {
    std::snprintf(detail, sizeof(detail),
                  "host has %zu core(s) (observed %.2fx at 2 workers)", cores, speedup_2w);
    h.gate_skipped("campaign_speedup_2w", detail);
  } else {
    std::snprintf(detail, sizeof(detail),
                  "campaign throughput %.2fx serial at 2 workers (floor %.1fx)", speedup_2w,
                  speedup_floor);
    h.gate("campaign_speedup_2w", speedup_2w >= speedup_floor, detail);
  }
}

}  // namespace dear::bench
