// Safe-to-process validation (paper §III.A):
//
//   "when a reactor receives a message with tag t from the network, it
//    has to schedule an action with tag t+D+L+E ... The physical time
//    delay enforced by the scheduler ensures that no message with a
//    timestamp smaller than t is still expected to arrive."
//
// Sweeps the *assumed* latency bound L against a fixed actual latency
// distribution and prints the rate of tardy messages (messages whose
// safe-to-process tag had already passed on arrival). Expected shape:
// zero tardiness once L covers the actual worst-case latency; growing
// tardy rate (all observable, never silent reordering) as L shrinks
// below it.
//
// Environment knob: DEAR_STP_EVENTS (default 2000 events per point).
#include <cstdio>

#include "ara/event.hpp"
#include "ara/runtime.hpp"
#include "ara/skeleton.hpp"
#include "ara/proxy.hpp"
#include "common/flags.hpp"
#include "dear/dear.hpp"
#include "net/sim_network.hpp"
#include "sim/sim_executor.hpp"

namespace {

using namespace dear;
using namespace dear::literals;

constexpr someip::ServiceId kService = 0x0C0C;
constexpr someip::EventId kEvent = 0x8001;

class Skeleton : public ara::ServiceSkeleton {
 public:
  explicit Skeleton(ara::Runtime& rt) : ServiceSkeleton(rt, {kService, 1}) {}
  ara::SkeletonEvent<std::int64_t> data{*this, kEvent};
};

class Proxy : public ara::ServiceProxy {
 public:
  Proxy(ara::Runtime& rt, net::Endpoint server) : ServiceProxy(rt, {kService, 1}, server) {}
  ara::ProxyEvent<std::int64_t> data{*this, kEvent};
};

class Producer final : public reactor::Reactor {
 public:
  reactor::Output<std::int64_t> out{"out", this};
  Producer(reactor::Environment& env, Duration period, std::int64_t limit)
      : Reactor("producer", env), timer_("t", this, period) {
    add_reaction("emit",
                 [this, limit] {
                   if (next_ < limit) {
                     out.set(next_++);
                   }
                 })
        .triggered_by(timer_)
        .writes(out);
  }

 private:
  reactor::Timer timer_;
  std::int64_t next_{0};
};

class Consumer final : public reactor::Reactor {
 public:
  reactor::Input<std::int64_t> in{"in", this};
  std::uint64_t received{0};
  bool in_order{true};
  explicit Consumer(reactor::Environment& env) : Reactor("consumer", env) {
    add_reaction("record",
                 [this] {
                   if (in.get() <= last_) {
                     in_order = false;
                   }
                   last_ = in.get();
                   ++received;
                 })
        .triggered_by(in);
  }

 private:
  std::int64_t last_{-1};
};

struct Point {
  std::uint64_t delivered;
  std::uint64_t tardy;
  bool in_order;
};

Point run_point(Duration assumed_bound, Duration actual_max, std::int64_t events,
                std::uint64_t seed) {
  common::Rng rng(seed);
  sim::Kernel kernel;
  net::SimNetwork network(kernel, rng.stream("net"));
  net::LinkParams link;
  link.latency = sim::ExecTimeModel::uniform(actual_max / 10, actual_max);
  network.set_default_link(link);
  someip::ServiceDiscovery discovery;
  sim::SimExecutor executor(kernel, rng.stream("exec"));
  ara::Runtime server_rt(network, discovery, executor, {1, 100}, 0x01);
  ara::Runtime client_rt(network, discovery, executor, {2, 200}, 0x02);
  Skeleton skeleton(server_rt);
  skeleton.OfferService();
  Proxy proxy(client_rt, *client_rt.resolve({kService, 1}));

  reactor::SimClock clock(kernel);
  reactor::Environment::Config env_config;
  env_config.keepalive = true;
  reactor::Environment server_env(clock, env_config);
  reactor::Environment client_env(clock, env_config);

  transact::TransactorConfig config;
  config.deadline = 1_ms;
  config.latency_bound = assumed_bound;
  Producer producer(server_env, 5_ms, events);
  transact::ServerEventTransactor<std::int64_t> server_tx("server_tx", server_env, skeleton.data,
                                                          server_rt.binding(), config);
  server_env.connect(producer.out, server_tx.in);
  Consumer consumer(client_env);
  transact::ClientEventTransactor<std::int64_t> client_tx("client_tx", client_env, proxy.data,
                                                          client_rt.binding(), config);
  client_env.connect(client_tx.out, consumer.in);

  kernel.run_until(100_ms);  // settle subscription
  reactor::SimDriver server_driver(server_env, kernel, rng.stream("sd"));
  reactor::SimDriver client_driver(client_env, kernel, rng.stream("cd"));
  server_driver.start();
  client_driver.start();
  kernel.run_until(100_ms + (events + 100) * 5_ms);
  return Point{consumer.received, client_tx.tardy_messages(), consumer.in_order};
}

}  // namespace

int main(int argc, char** argv) {
  const common::Flags flags(argc, argv);
  const auto events = static_cast<std::int64_t>(
      flags.get_int("events", common::env_int("DEAR_STP_EVENTS", 2000)));
  const Duration actual_max = 10_ms;

  std::printf("=====================================================================\n");
  std::printf("Safe-to-process sweep: assumed latency bound L vs actual latency\n");
  std::printf("(actual latency uniform in [1, 10] ms; %lld events per point)\n",
              static_cast<long long>(events));
  std::printf("=====================================================================\n\n");
  std::printf("  %-10s %12s %12s %10s %10s\n", "assumed L", "delivered", "tardy", "tardy(%)",
              "in-order");

  for (const Duration bound : {1_ms, 2_ms, 3_ms, 5_ms, 8_ms, 10_ms, 15_ms, 20_ms}) {
    const Point point = run_point(bound, actual_max, events, 42);
    std::printf("  %-10s %12llu %12llu %10.3f %10s\n", format_duration(bound).c_str(),
                static_cast<unsigned long long>(point.delivered),
                static_cast<unsigned long long>(point.tardy),
                100.0 * static_cast<double>(point.tardy) / static_cast<double>(events),
                point.in_order ? "yes" : "NO");
  }
  std::printf("\n  expected: the tardy rate falls monotonically as L grows and reaches\n");
  std::printf("  zero at or before the actual worst case (10 ms) — the receiver's\n");
  std::printf("  logical time lags physical time, which grants extra slack — and\n");
  std::printf("  delivered messages stay in tag order at every point (violations are\n");
  std::printf("  observable errors, never silent reordering).\n");
  return 0;
}
