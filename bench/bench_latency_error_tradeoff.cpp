// Deadline/latency vs error-rate trade-off (paper §IV.B):
//
//   "These benefits come at the cost of an extra physical time delay as
//    each SWC needs to account for worst case computation and
//    communication delays. ... For certain applications it is acceptable
//    to deliberately introduce the possibility of sporadic errors by
//    setting deadlines to values lower than the actual WCET. ... the
//    trade-off between end-to-end latency and error rate becomes
//    apparent."
//
// Sweeps a global scale factor over the paper's deadlines (5/25/25/5 ms)
// and prints end-to-end latency and observable error rate per point.
// Expected shape: latency decreases linearly with the scale; the error
// rate is zero while scaled deadlines cover the execution times
// (scale >= ~0.8 for the modeled 8-20 ms with 25 ms deadlines) and grows
// rapidly below the crossover.
//
// Environment knob: DEAR_TRADEOFF_FRAMES (default 20000).
#include <cstdio>

#include "brake/dear_pipeline.hpp"
#include "common/flags.hpp"

int main(int argc, char** argv) {
  const dear::common::Flags flags(argc, argv);
  const auto frames = static_cast<std::uint64_t>(
      flags.get_int("frames", dear::common::env_int("DEAR_TRADEOFF_FRAMES", 20'000)));

  std::printf("=====================================================================\n");
  std::printf("Deadline scale sweep: end-to-end latency vs observable error rate\n");
  std::printf("(%llu frames per point; deadlines = scale * {5,25,25,5} ms, L = 5 ms)\n",
              static_cast<unsigned long long>(frames));
  std::printf("=====================================================================\n\n");
  std::printf("  %-7s %-12s %-12s %12s %12s %12s %10s\n", "scale", "latency", "latencyMax",
              "errors", "deadlineViol", "tardy", "err(%)");
  std::printf("  (err%% counts observable protocol errors per frame; a frame can\n");
  std::printf("   miss several deadlines, so the rate can exceed 100%%)\n");

  const double scales[] = {1.2, 1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3};
  double previous_rate = -1.0;
  bool monotone_after_crossover = true;
  for (const double scale : scales) {
    dear::brake::DearScenarioConfig config;
    config.frames = frames;
    config.platform_seed = 1;
    config.camera_seed = 7;
    config.deadline_scale = scale;
    const auto result = dear::brake::run_dear_pipeline(config);
    const double mean_latency =
        result.latency.count() > 0 ? result.latency.mean() : 0.0;
    const double max_latency = result.latency.count() > 0 ? result.latency.max() : 0.0;
    const std::uint64_t observable =
        result.errors.total() + result.tardy_messages;
    const double rate =
        100.0 * static_cast<double>(observable) / static_cast<double>(frames);
    std::printf("  %-7.2f %-12s %-12s %12llu %12llu %12llu %10.3f\n", scale,
                dear::format_duration(static_cast<dear::Duration>(mean_latency)).c_str(),
                dear::format_duration(static_cast<dear::Duration>(max_latency)).c_str(),
                static_cast<unsigned long long>(observable),
                static_cast<unsigned long long>(result.deadline_violations),
                static_cast<unsigned long long>(result.tardy_messages), rate);
    // Monotone up to saturation (when nearly every frame already carries
    // two violations, small fluctuations are expected).
    if (previous_rate >= 0.0 && rate < previous_rate * 0.9) {
      monotone_after_crossover = false;
    }
    previous_rate = rate;
  }
  std::printf("\n  expected: zero errors while deadlines cover the WCET, then a\n");
  std::printf("  monotone error-rate increase as the scale shrinks: %s\n",
              monotone_after_crossover ? "observed" : "NOT observed");
  return 0;
}
