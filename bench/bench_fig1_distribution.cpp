// Figure 1 (paper §I): distribution of the value printed by the naive
// AUTOSAR AP client/server program
//
//     s.set_value(1); s.add(2); result = s.get_value();
//
// Rows reproduced: probability of each printed value in {0, 1, 2, 3}.
// Expected shape: all four values occur with nontrivial probability (the
// paper's bar chart shows roughly 0.03-0.4 each); the DEAR version prints
// 3 in every run with zero protocol errors.
//
// Environment knobs: DEAR_FIG1_TRIALS (default 5000),
//                    DEAR_FIG1_SIM_TRIALS (default 20000),
//                    DEAR_FIG1_DEAR_TRIALS (default 20).
#include <cstdio>

#include "common/flags.hpp"
#include "common/histogram.hpp"
#include "demo/fig1.hpp"

namespace {

void print_distribution(const char* label, const dear::common::CategoricalHistogram& histogram,
                        std::uint64_t completed) {
  std::printf("%s (%llu trials):\n", label, static_cast<unsigned long long>(completed));
  std::printf("  %-14s %-12s %s\n", "printed value", "probability", "count");
  for (const std::int64_t value : {0, 1, 2, 3}) {
    std::printf("  %-14lld %-12.4f %llu\n", static_cast<long long>(value),
                histogram.probability(value),
                static_cast<unsigned long long>(histogram.count(value)));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const dear::common::Flags flags(argc, argv);
  const auto trials = static_cast<std::uint64_t>(
      flags.get_int("trials", dear::common::env_int("DEAR_FIG1_TRIALS", 5000)));
  const auto sim_trials = static_cast<std::uint64_t>(
      flags.get_int("sim-trials", dear::common::env_int("DEAR_FIG1_SIM_TRIALS", 20000)));
  const auto dear_trials = static_cast<std::uint64_t>(
      flags.get_int("dear-trials", dear::common::env_int("DEAR_FIG1_DEAR_TRIALS", 20)));

  std::printf("================================================================\n");
  std::printf("Figure 1: printed-value distribution of the naive AP client/server\n");
  std::printf("================================================================\n\n");

  // --- real threads: genuine OS-scheduler nondeterminism -----------------------
  {
    dear::common::CategoricalHistogram histogram;
    std::uint64_t completed = 0;
    dear::demo::Fig1RealHarness harness(4);
    for (std::uint64_t i = 0; i < trials; ++i) {
      const auto outcome = harness.run_trial();
      if (outcome.completed) {
        histogram.add(outcome.printed);
        ++completed;
      }
    }
    print_distribution("AP kEvent dispatch, real thread pool (4 workers)", histogram, completed);
  }

  // --- DES: modeled, seed-reproducible nondeterminism ---------------------------
  {
    dear::common::CategoricalHistogram histogram;
    std::uint64_t completed = 0;
    for (std::uint64_t seed = 1; seed <= sim_trials; ++seed) {
      const auto outcome = dear::demo::run_fig1_nondet_sim(seed);
      if (outcome.completed) {
        histogram.add(outcome.printed);
        ++completed;
      }
    }
    print_distribution("AP kEvent dispatch, DES with dispatch jitter", histogram, completed);
  }

  // --- DEAR: deterministic --------------------------------------------------------
  {
    dear::common::CategoricalHistogram sim_histogram;
    std::uint64_t errors = 0;
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
      const auto outcome = dear::demo::run_fig1_dear_sim(seed);
      sim_histogram.add(outcome.printed);
      errors += outcome.protocol_errors;
    }
    print_distribution("DEAR method transactors, DES (200 seeds)", sim_histogram, 200);
    std::printf("  protocol errors across all DEAR sim runs: %llu\n\n",
                static_cast<unsigned long long>(errors));

    dear::common::CategoricalHistogram threaded_histogram;
    for (std::uint64_t i = 0; i < dear_trials; ++i) {
      const auto outcome = dear::demo::run_fig1_dear_threaded(4);
      threaded_histogram.add(outcome.printed);
    }
    print_distribution("DEAR method transactors, threaded runtime", threaded_histogram,
                       dear_trials);
  }

  std::printf("paper's claim: the naive program prints any of {0,1,2,3}; DEAR always prints 3.\n");
  return 0;
}
