// SOME/IP hot-path cases: wire encode/decode with and without the pooled
// buffer path, the DEAR tag-extension overhead, the timestamp bypass, and
// the case study's heaviest payload round trip.
#include <cstdint>
#include <cstdio>
#include <vector>

#include "brake/logic.hpp"
#include "brake/types.hpp"
#include "someip/message.hpp"
#include "someip/timestamp_bypass.hpp"
#include "suites.hpp"

namespace dear::bench {

namespace {

someip::Message make_message(std::size_t payload_size, bool tagged) {
  someip::Message message;
  message.service = 0x1234;
  message.method = 0x8001;
  message.client = 0x01;
  message.session = 0x42;
  message.type = someip::MessageType::kNotification;
  message.payload.assign(payload_size, 0xAB);
  if (tagged) {
    message.tag = someip::WireTag{123'456'789, 2};
  }
  return message;
}

}  // namespace

void run_someip_suite(Harness& h) {
  const std::uint64_t ops = h.scale(50'000, 2'000);
  constexpr std::size_t kPayload = 256;

  const someip::Message untagged = make_message(kPayload, false);
  const someip::Message tagged = make_message(kPayload, true);
  const std::vector<std::uint8_t> wire_untagged = untagged.encode();
  const std::vector<std::uint8_t> wire_tagged = tagged.encode();

  // Round trip, fresh allocations per message (the pre-overhaul path:
  // every encode grows a new vector, every decode a new payload).
  CaseResult& fresh = h.measure("roundtrip/256/fresh", ops, [&] {
    for (std::uint64_t i = 0; i < ops; ++i) {
      const std::vector<std::uint8_t> wire = untagged.encode();
      const auto decoded = someip::Message::decode(wire);
      if (!decoded.has_value()) {
        std::abort();
      }
    }
  });

  // Round trip over recycled buffers: one wire buffer + one scratch
  // message, zero steady-state allocations.
  CaseResult& pooled = h.measure("roundtrip/256/pooled", ops, [&] {
    std::vector<std::uint8_t> wire;
    someip::Message scratch;
    for (std::uint64_t i = 0; i < ops; ++i) {
      untagged.encode_into(wire);
      if (!someip::Message::decode_into(wire.data(), wire.size(), scratch)) {
        std::abort();
      }
    }
  });

  const double ratio = fresh.p50_ns > 0.0 ? pooled.p50_ns / fresh.p50_ns : 1.0;
  Harness::counter(pooled, "p50_vs_fresh", ratio);
  // Quick (smoke) runs tolerate co-scheduling noise; the Release bench
  // job enforces strictly-lower p50.
  const double ceiling = h.quick() ? 1.2 : 1.0;
  char detail[128];
  std::snprintf(detail, sizeof(detail), "pooled round-trip p50 %.2fx of fresh (must be < %.1f)",
                ratio, ceiling);
  h.gate("someip_pooled_roundtrip_faster", ratio < ceiling, detail);

  h.measure("encode/256/untagged", ops, [&] {
    std::vector<std::uint8_t> wire;
    for (std::uint64_t i = 0; i < ops; ++i) {
      untagged.encode_into(wire);
    }
  });
  CaseResult& encode_tagged = h.measure("encode/256/tagged", ops, [&] {
    std::vector<std::uint8_t> wire;
    for (std::uint64_t i = 0; i < ops; ++i) {
      tagged.encode_into(wire);
    }
  });
  Harness::counter(encode_tagged, "trailer_bytes", someip::kTagTrailerSize);

  h.measure("decode/256/untagged", ops, [&] {
    someip::Message scratch;
    for (std::uint64_t i = 0; i < ops; ++i) {
      if (!someip::Message::decode_into(wire_untagged.data(), wire_untagged.size(), scratch)) {
        std::abort();
      }
    }
  });
  h.measure("decode/256/tagged", ops, [&] {
    someip::Message scratch;
    for (std::uint64_t i = 0; i < ops; ++i) {
      if (!someip::Message::decode_into(wire_tagged.data(), wire_tagged.size(), scratch)) {
        std::abort();
      }
    }
  });

  h.measure("timestamp_bypass", ops, [&] {
    someip::TimestampBypass bypass;
    for (std::uint64_t i = 0; i < ops; ++i) {
      bypass.deposit(someip::WireTag{static_cast<std::int64_t>(i), 0});
      if (!bypass.collect().has_value()) {
        std::abort();
      }
    }
  });

  // The heaviest application payload: a detected-vehicle list through the
  // typed serializer, into a recycled buffer.
  const brake::VideoFrame frame = brake::generate_frame(7, 1000);
  const brake::LaneInfo lane = brake::detect_lane(frame);
  const brake::VehicleList vehicles = brake::detect_vehicles(frame, lane);
  const std::uint64_t payload_ops = h.scale(10'000, 500);
  h.measure("brake_payload_roundtrip", payload_ops, [&] {
    std::vector<std::uint8_t> payload;
    brake::VehicleList decoded;
    for (std::uint64_t i = 0; i < payload_ops; ++i) {
      someip::encode_payload_into(payload, vehicles);
      if (!someip::decode_payload(payload, decoded)) {
        std::abort();
      }
    }
  });
}

}  // namespace dear::bench
