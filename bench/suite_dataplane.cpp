// Sensor data plane: what does it cost to move high-bandwidth payloads
// (camera frames) through the event plane?
//
// Two publishing disciplines per transport, swept over the slab classes
// (64 KiB / 256 KiB / 1 MiB / 4 MiB):
//   * loaned — the publisher loans a pooled slab, stamps a small header,
//     and hands the refcounted handle to notify_loaned(). The local
//     backend fans the handle out without touching the bytes; SOME/IP
//     frames the slab onto the wire with exactly one copy.
//   * encode — the pre-data-plane baseline: a std::vector payload copied
//     into the binding per notify() (plus the SOME/IP encode/decode pair
//     on the wire backend).
//
// Per-batch frame counts scale inversely with the payload class so every
// row moves a comparable byte volume; GB/s is the comparable unit.
//
// Gates:
//   * dataplane_local_loaned_10x_1mb — local loaned >= 10x local encode
//     GB/s at 1 MiB;
//   * dataplane_local_zero_copy — zero payload memcpys (obs counter
//     delta) across a steady-state local loaned segment;
//   * dataplane_local_zero_alloc — zero new slab allocations in the same
//     segment: every loan is a shelf hit;
//   * dataplane_digest_local/someip — the 300-frame DEAR anchor digest is
//     bit-identical with the camera payload plane live (1 MiB bursts).
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "ara/com/local_binding.hpp"
#include "ara/com/someip_binding.hpp"
#include "brake/dear_pipeline.hpp"
#include "common/buffer_pool.hpp"
#include "common/thread_pool.hpp"
#include "net/rt_network.hpp"
#include "obs/obs.hpp"
#include "suites.hpp"

namespace dear::bench {

namespace {

constexpr someip::ServiceId kService = 0x0D0E;
constexpr someip::EventId kDataEvent = 0x8001;
constexpr net::Endpoint kServerEp{1, 100};
constexpr net::Endpoint kClientEp{2, 200};

constexpr std::size_t kPayloadClasses[] = {64u * 1024u, 256u * 1024u, 1024u * 1024u,
                                           4u * 1024u * 1024u};

const char* class_name(std::size_t bytes) {
  switch (bytes) {
    case 64u * 1024u: return "64KiB";
    case 256u * 1024u: return "256KiB";
    case 1024u * 1024u: return "1MiB";
    default: return "4MiB";
  }
}

/// Sensor-style header stamp: the producer writes a tiny header (here the
/// frame index, little-endian) instead of filling the whole slab — DMA
/// owns the bulk bytes in the modeled system, and filling them from the
/// CPU would turn every row into a memset benchmark.
void stamp_frame(std::uint8_t* data, std::uint64_t frame_index) {
  for (std::size_t i = 0; i < 8; ++i) {
    data[i] = static_cast<std::uint8_t>((frame_index >> (8 * i)) & 0xFFu);
  }
}

/// Frames per batch for a payload class: scaled so frames * bytes is
/// roughly constant (the 64 KiB class count), floored at 4.
std::uint64_t frames_for(std::uint64_t base_frames, std::size_t bytes) {
  const std::uint64_t scaled = base_frames * (64u * 1024u) / bytes;
  return scaled < 4 ? 4 : scaled;
}

struct StreamRow {
  std::vector<double> per_frame_ns;
  double gb_per_s{0.0};
  std::uint64_t frames{0};
  std::uint64_t bytes_delivered{0};
};

/// Streams `batches` timed batches of `frames_per_batch` event frames
/// from server to one subscribed client, waiting out the in-flight tail
/// after each batch. One untimed warmup batch populates the slab shelves
/// (and the SOME/IP executor caches) first. `send_frame(server, index)`
/// publishes one frame.
template <typename SendFrame>
StreamRow run_stream(ara::com::TransportBinding& server, ara::com::TransportBinding& client,
                     std::size_t payload_bytes, std::uint64_t frames_per_batch,
                     std::uint64_t batches, SendFrame&& send_frame) {
  std::atomic<std::uint64_t> received{0};
  std::atomic<std::uint64_t> bytes_delivered{0};
  client.subscribe(kServerEp, kService, kDataEvent,
                   [&received, &bytes_delivered](const someip::Message& message) {
                     bytes_delivered.fetch_add(
                         message.loaned ? message.loaned.size() : message.payload.size(),
                         std::memory_order_relaxed);
                     received.fetch_add(1, std::memory_order_release);
                   });
  while (server.subscriber_count(kService, kDataEvent) == 0) {
    std::this_thread::yield();
  }

  std::uint64_t sent = 0;
  const auto run_batch = [&]() -> double {
    const double start = now_ns();
    for (std::uint64_t frame = 0; frame < frames_per_batch; ++frame) {
      send_frame(server, sent);
      ++sent;
    }
    while (received.load(std::memory_order_acquire) < sent) {
      std::this_thread::yield();
    }
    return now_ns() - start;
  };

  (void)run_batch();  // warmup: shelves filled, wire caches primed

  StreamRow row;
  row.per_frame_ns.reserve(batches);
  double total_ns = 0.0;
  for (std::uint64_t batch = 0; batch < batches; ++batch) {
    const double elapsed = run_batch();
    total_ns += elapsed;
    row.per_frame_ns.push_back(elapsed / static_cast<double>(frames_per_batch));
  }
  row.frames = frames_per_batch * batches;
  // bytes / ns == GB/s (both decimal giga).
  row.gb_per_s = total_ns > 0.0
                     ? static_cast<double>(row.frames) * static_cast<double>(payload_bytes) /
                           total_ns
                     : 0.0;
  client.unsubscribe(kServerEp, kService, kDataEvent);
  row.bytes_delivered = bytes_delivered.load(std::memory_order_relaxed);
  return row;
}

/// Publishes one loaned frame: shelf loan, header stamp, publish, hand
/// the refcounted handle to the binding.
void send_loaned(ara::com::TransportBinding& server, std::size_t payload_bytes,
                 std::uint64_t frame_index) {
  common::LoanedBuffer buffer = common::BufferPool::instance().loan(payload_bytes);
  if (!buffer) {
    return;
  }
  stamp_frame(buffer.data(), frame_index);
  buffer.publish(payload_bytes);
  server.notify_loaned(kService, kDataEvent, std::move(buffer));
}

/// Records one stream row on the harness with its GB/s counter.
CaseResult& record_row(Harness& harness, const std::string& name, const StreamRow& row) {
  CaseResult& result = harness.record(name, row.per_frame_ns);
  result.iterations = row.frames;
  Harness::counter(result, "gb_per_s", row.gb_per_s);
  Harness::counter(result, "bytes_delivered", static_cast<double>(row.bytes_delivered));
  return result;
}

/// The 300-frame DEAR anchor workload with the camera payload plane live:
/// every captured frame additionally bursts a 1 MiB slab through the
/// pipeline's frame sink. The output digest must not move — payload
/// transport is out-of-band of the tagged control plane.
struct PayloadDigestRun {
  std::uint64_t digest{0};
  std::uint64_t payload_frames{0};
  std::uint64_t payload_drops{0};
};

PayloadDigestRun run_dear_payload_digest(bool local_transport) {
  brake::DearScenarioConfig config;
  config.frames = 300;
  config.platform_seed = 7;
  config.camera_seed = config.platform_seed + 1000;
  config.local_transport = local_transport;
  config.camera_payload_bytes = 1024u * 1024u;
  const brake::PipelineResult result = brake::run_dear_pipeline(config);
  return PayloadDigestRun{result.output_digest, result.camera_payload_frames,
                          result.camera_payload_drops};
}

std::uint64_t counter_now(obs::Counter counter) {
  return obs::Registry::instance().counter_total(counter);
}

}  // namespace

void run_dataplane_suite(Harness& h, const DataplaneOptions& options) {
  char detail[192];
  const std::uint64_t base_frames = h.scale(options.frames, options.frames / 8 + 4);
  const std::uint64_t batches = h.repeats();

  // --- local backend: loaned vs encode over the payload classes --------------
  double local_loaned_1mb = 0.0;
  double local_encode_1mb = 0.0;
  {
    common::ThreadPoolExecutor executor(1);  // timeout synthesis only
    ara::com::LocalHub hub;
    ara::com::LocalBinding server(hub, executor, kServerEp, 0x01);
    ara::com::LocalBinding client(hub, executor, kClientEp, 0x02);

    for (const std::size_t payload_bytes : kPayloadClasses) {
      const std::uint64_t frames = frames_for(base_frames, payload_bytes);
      char name[96];

      const StreamRow loaned = run_stream(
          server, client, payload_bytes, frames, batches,
          [payload_bytes](ara::com::TransportBinding& binding, std::uint64_t index) {
            send_loaned(binding, payload_bytes, index);
          });
      std::snprintf(name, sizeof(name), "dataplane/local/loaned/%s",
                    class_name(payload_bytes));
      record_row(h, name, loaned);

      std::vector<std::uint8_t> staging(payload_bytes, 0xA5);
      const StreamRow encode = run_stream(
          server, client, payload_bytes, frames, batches,
          [&staging](ara::com::TransportBinding& binding, std::uint64_t index) {
            stamp_frame(staging.data(), index);
            binding.notify(kService, kDataEvent, staging);
          });
      std::snprintf(name, sizeof(name), "dataplane/local/encode/%s",
                    class_name(payload_bytes));
      record_row(h, name, encode);

      if (payload_bytes == 1024u * 1024u) {
        local_loaned_1mb = loaned.gb_per_s;
        local_encode_1mb = encode.gb_per_s;
      }
    }

    // --- steady-state counter audit on the warmed 1 MiB loaned path ---------
    // The rows above already cycled every shelf; from here on each loan
    // must be a shelf hit and no payload byte may be copied.
    {
      std::atomic<std::uint64_t> received{0};
      client.subscribe(kServerEp, kService, kDataEvent,
                       [&received](const someip::Message&) {
                         received.fetch_add(1, std::memory_order_release);
                       });
      while (server.subscriber_count(kService, kDataEvent) == 0) {
        std::this_thread::yield();
      }
      const std::uint64_t steady_frames =
          h.scale(options.steady_frames, options.steady_frames / 4 + 8);
      // One warmup frame after the (re-)subscription, then snapshot.
      send_loaned(server, 1024u * 1024u, 0);
      while (received.load(std::memory_order_acquire) < 1) {
        std::this_thread::yield();
      }
      const std::uint64_t loans_before = counter_now(obs::Counter::kPoolSlabLoans);
      const std::uint64_t hits_before = counter_now(obs::Counter::kPoolSlabShelfHits);
      const std::uint64_t allocs_before = counter_now(obs::Counter::kPoolSlabAllocs);
      const std::uint64_t copies_before = counter_now(obs::Counter::kDataplanePayloadCopies);
      for (std::uint64_t frame = 0; frame < steady_frames; ++frame) {
        send_loaned(server, 1024u * 1024u, frame + 1);
      }
      while (received.load(std::memory_order_acquire) < steady_frames + 1) {
        std::this_thread::yield();
      }
      const std::uint64_t loans = counter_now(obs::Counter::kPoolSlabLoans) - loans_before;
      const std::uint64_t hits = counter_now(obs::Counter::kPoolSlabShelfHits) - hits_before;
      const std::uint64_t allocs = counter_now(obs::Counter::kPoolSlabAllocs) - allocs_before;
      const std::uint64_t copies =
          counter_now(obs::Counter::kDataplanePayloadCopies) - copies_before;
      client.unsubscribe(kServerEp, kService, kDataEvent);

      std::snprintf(detail, sizeof(detail),
                    "%llu payload memcpys across %llu steady-state 1MiB local frames",
                    static_cast<unsigned long long>(copies),
                    static_cast<unsigned long long>(steady_frames));
      h.gate("dataplane_local_zero_copy", copies == 0, detail);
      std::snprintf(detail, sizeof(detail),
                    "%llu slab allocations, %llu/%llu loans shelf-hit",
                    static_cast<unsigned long long>(allocs),
                    static_cast<unsigned long long>(hits),
                    static_cast<unsigned long long>(loans));
      h.gate("dataplane_local_zero_alloc",
             allocs == 0 && loans == steady_frames && hits == loans, detail);
    }
    executor.drain();
  }

  const double loaned_speedup =
      local_encode_1mb > 0.0 ? local_loaned_1mb / local_encode_1mb : 0.0;
  std::snprintf(detail, sizeof(detail),
                "local loaned %.2f GB/s vs encode %.2f GB/s at 1MiB (%.1fx, floor 10x)",
                local_loaned_1mb, local_encode_1mb, loaned_speedup);
  h.gate("dataplane_local_loaned_10x_1mb", loaned_speedup >= 10.0, detail);

  // --- SOME/IP backend: loaned framing vs full encode ------------------------
  // Loaned payloads still cross the loopback wire (one framing copy per
  // frame, counted in dataplane.payload_copies); the win over encode is
  // skipping the payload staging copy and the per-frame vector churn.
  {
    common::ThreadPoolExecutor executor(2);
    net::RtNetwork network(executor);
    ara::com::SomeIpBinding server(network, executor, kServerEp, 0x01);
    ara::com::SomeIpBinding client(network, executor, kClientEp, 0x02);

    for (const std::size_t payload_bytes : kPayloadClasses) {
      const std::uint64_t frames = frames_for(base_frames, payload_bytes);
      char name[96];
      const StreamRow loaned = run_stream(
          server, client, payload_bytes, frames, batches,
          [payload_bytes](ara::com::TransportBinding& binding, std::uint64_t index) {
            send_loaned(binding, payload_bytes, index);
          });
      std::snprintf(name, sizeof(name), "dataplane/someip/loaned/%s",
                    class_name(payload_bytes));
      record_row(h, name, loaned);

      if (payload_bytes == 1024u * 1024u) {
        std::vector<std::uint8_t> staging(payload_bytes, 0xA5);
        const StreamRow encode = run_stream(
            server, client, payload_bytes, frames, batches,
            [&staging](ara::com::TransportBinding& binding, std::uint64_t index) {
              stamp_frame(staging.data(), index);
              binding.notify(kService, kDataEvent, staging);
            });
        std::snprintf(name, sizeof(name), "dataplane/someip/encode/%s",
                      class_name(payload_bytes));
        record_row(h, name, encode);
      }
    }
    executor.drain();
  }

  // --- DEAR digest anchors with the payload plane live -----------------------
  if (options.golden_digest != 0) {
    for (const bool local_transport : {false, true}) {
      PayloadDigestRun run{};
      std::vector<double> sample(1, 0.0);
      const double start = now_ns();
      run = run_dear_payload_digest(local_transport);
      sample[0] = (now_ns() - start) / 300.0;
      char name[96];
      std::snprintf(name, sizeof(name), "dataplane/dear_300f_payload/%s",
                    local_transport ? "local" : "someip");
      h.record(name, sample);
      std::snprintf(detail, sizeof(detail),
                    "digest %016llx, expected %016llx (%llu payload frames, %llu drops)",
                    static_cast<unsigned long long>(run.digest),
                    static_cast<unsigned long long>(options.golden_digest),
                    static_cast<unsigned long long>(run.payload_frames),
                    static_cast<unsigned long long>(run.payload_drops));
      h.gate(local_transport ? "dataplane_digest_local" : "dataplane_digest_someip",
             run.digest == options.golden_digest && run.payload_frames == 300 &&
                 run.payload_drops == 0,
             detail);
    }
  }
}

}  // namespace dear::bench
