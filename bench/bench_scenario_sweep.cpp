// Campaign batch-runner scaling: one scenario grid executed at several
// worker counts.
//
// Each scenario is an independent single-threaded DES run, so the batch
// must scale near-linearly until the core count is exhausted — and the
// report digest must be bit-identical at every worker count (the
// scheduling-independence half of the scenario engine's determinism
// contract). Digest equality is always enforced; the speedup threshold is
// enforced only when the host actually has at least --speedup-workers
// cores (a 1-core container cannot exhibit parallel speedup).
//
// Environment knobs: DEAR_SWEEP_SCENARIOS, DEAR_SWEEP_FRAMES.
#include <cstdio>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/flags.hpp"
#include "scenario/presets.hpp"
#include "scenario/runner.hpp"

int main(int argc, char** argv) {
  dear::common::Cli cli("bench_scenario_sweep",
                        "Measures campaign throughput scaling over worker counts.");
  cli.add_int("scenarios", dear::common::env_int("DEAR_SWEEP_SCENARIOS", 64),
              "grid size (homogeneous DEAR scenarios)");
  cli.add_int("frames", dear::common::env_int("DEAR_SWEEP_FRAMES", 2000),
              "frames per scenario");
  cli.add_int("seed", 1, "campaign seed");
  cli.add_int("max-workers", 4, "highest worker count measured (1, 2, 4, ... up to this)");
  cli.add_double("min-speedup", 3.0,
                 "required speedup at --speedup-workers (enforced only when the host has "
                 "that many cores; 0 disables)");
  cli.add_int("speedup-workers", 4, "worker count the speedup requirement applies to");
  if (!cli.parse(argc, argv)) {
    return cli.exit_code();
  }

  const auto scenarios = static_cast<std::uint64_t>(cli.get_int("scenarios"));
  const auto frames = static_cast<std::uint64_t>(cli.get_int("frames"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto max_workers = static_cast<std::size_t>(cli.get_int("max-workers"));
  const double min_speedup = cli.get_double("min-speedup");
  const auto speedup_workers = static_cast<std::size_t>(cli.get_int("speedup-workers"));
  const std::size_t cores = std::thread::hardware_concurrency();

  const auto campaign = dear::scenario::presets::throughput(scenarios, frames, seed);
  std::printf("scenario batch scaling: %llu scenarios x %llu frames, %zu hardware cores\n\n",
              static_cast<unsigned long long>(scenarios),
              static_cast<unsigned long long>(frames), cores);
  std::printf("  %-8s %12s %14s %10s %12s %18s\n", "workers", "wall(s)", "scen/s", "speedup",
              "violations", "reportDigest");

  struct Row {
    std::size_t workers;
    double wall;
    double rate;
    std::uint64_t digest;
    std::size_t violations;
  };
  std::vector<Row> rows;
  for (std::size_t workers = 1; workers <= max_workers; workers *= 2) {
    dear::scenario::RunnerOptions options;
    options.workers = workers;
    const auto report = dear::scenario::CampaignRunner(options).run(campaign);
    rows.push_back(Row{workers, report.wall_seconds, report.scenarios_per_second(),
                       report.report_digest(), report.violations.size()});
    const double speedup = rows.front().wall / report.wall_seconds;
    std::printf("  %-8zu %12.3f %14.1f %9.2fx %12zu   %016llx\n", workers, report.wall_seconds,
                report.scenarios_per_second(), speedup, report.violations.size(),
                static_cast<unsigned long long>(report.report_digest()));
  }

  bool ok = true;
  for (const Row& row : rows) {
    if (row.digest != rows.front().digest) {
      std::printf("\nFAIL: report digest at %zu workers differs from serial run\n", row.workers);
      ok = false;
    }
    if (row.violations != 0) {
      std::printf("\nFAIL: %zu determinism violation(s) at %zu workers\n", row.violations,
                  row.workers);
      ok = false;
    }
  }
  std::printf("\nreport digest identical across worker counts: %s\n", ok ? "yes" : "NO");

  for (const Row& row : rows) {
    if (row.workers != speedup_workers || min_speedup <= 0.0) {
      continue;
    }
    const double speedup = rows.front().wall / row.wall;
    if (cores < speedup_workers) {
      std::printf("speedup check skipped: host has %zu core(s) < %zu workers\n", cores,
                  speedup_workers);
    } else if (speedup < min_speedup) {
      std::printf("FAIL: speedup %.2fx at %zu workers below required %.2fx\n", speedup,
                  row.workers, min_speedup);
      ok = false;
    } else {
      std::printf("speedup %.2fx at %zu workers meets the %.2fx requirement\n", speedup,
                  row.workers, min_speedup);
    }
  }
  return ok ? 0 : 1;
}
