// The AP "deterministic client" baseline (paper §II.B):
//
//   "Because its scope is limited to individual SWCs, the solution only
//    addresses the first source of nondeterminism. Applications that
//    consist of multiple communicating deterministic clients can still
//    exhibit nondeterminism via 2) and 3)."
//
// Runs the same workload through three coordination schemes and prints
// the error totals per seed:
//   classic        — thread-style SWCs, one-slot buffers (the APD default)
//   det. client    — every SWC driven by the AP deterministic client
//   DEAR           — reactor SWCs with transactors
// Expected shape: classic and deterministic-client columns show the same
// class of errors (buffer races are untouched); the DEAR column is zero.
//
// Environment knob: DEAR_BASELINE_FRAMES (default 20000).
#include <cstdio>

#include "brake/dear_pipeline.hpp"
#include "brake/det_client_pipeline.hpp"
#include "brake/nondet_pipeline.hpp"
#include "common/flags.hpp"

int main(int argc, char** argv) {
  const dear::common::Flags flags(argc, argv);
  const auto frames = static_cast<std::uint64_t>(
      flags.get_int("frames", dear::common::env_int("DEAR_BASELINE_FRAMES", 20'000)));

  std::printf("=====================================================================\n");
  std::printf("Baseline comparison: classic vs AP deterministic client vs DEAR\n");
  std::printf("(%llu frames per run; totals of the four Figure 5 error classes)\n",
              static_cast<unsigned long long>(frames));
  std::printf("=====================================================================\n\n");
  std::printf("  %-5s %14s %14s %14s\n", "seed", "classic", "det.client", "DEAR");

  std::uint64_t classic_total = 0;
  std::uint64_t det_client_total = 0;
  std::uint64_t dear_total = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    dear::brake::ScenarioConfig classic;
    classic.frames = frames;
    classic.platform_seed = seed;
    classic.camera_seed = seed + 1000;

    dear::brake::DearScenarioConfig dear_config;
    dear_config.frames = frames;
    dear_config.platform_seed = seed;
    dear_config.camera_seed = seed + 1000;

    const auto classic_result = dear::brake::run_nondet_pipeline(classic);
    const auto det_client_result = dear::brake::run_det_client_pipeline(classic);
    const auto dear_result = dear::brake::run_dear_pipeline(dear_config);

    classic_total += classic_result.errors.total();
    det_client_total += det_client_result.errors.total();
    dear_total += dear_result.errors.total() + dear_result.deadline_violations +
                  dear_result.tardy_messages;
    std::printf("  %-5llu %14llu %14llu %14llu\n", static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(classic_result.errors.total()),
                static_cast<unsigned long long>(det_client_result.errors.total()),
                static_cast<unsigned long long>(dear_result.errors.total()));
  }
  std::printf("  %-5s %14llu %14llu %14llu\n", "total",
              static_cast<unsigned long long>(classic_total),
              static_cast<unsigned long long>(det_client_total),
              static_cast<unsigned long long>(dear_total));
  std::printf("\n  expected: the deterministic client does not reduce inter-SWC errors\n");
  std::printf("  (sources 2 and 3 persist); DEAR eliminates them.\n");
  return dear_total == 0 ? 0 : 1;
}
