// Figure 5 (paper §IV.A): prevalence of errors for 20 executions of the
// brake assistant, 100,000 frames each, sorted by error rate; stacked by
// error type. Followed by the DEAR pipeline on the same 20 seeds (§IV.B),
// which must show zero errors.
//
// Expected shape (paper): per-instance error rates spanning roughly
// 0.018% .. 22.25% (mean 5.60%); the dominant error type varies between
// instances; the deterministic implementation shows no errors at all.
//
// Environment knobs: DEAR_FIG5_FRAMES (default 100000),
//                    DEAR_FIG5_INSTANCES (default 20),
//                    DEAR_FIG5_DEAR_FRAMES (default = DEAR_FIG5_FRAMES).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "brake/dear_pipeline.hpp"
#include "brake/nondet_pipeline.hpp"
#include "common/flags.hpp"
#include "common/stats.hpp"

int main(int argc, char** argv) {
  const dear::common::Flags flags(argc, argv);
  const auto frames = static_cast<std::uint64_t>(
      flags.get_int("frames", dear::common::env_int("DEAR_FIG5_FRAMES", 100'000)));
  const auto instances = static_cast<std::uint64_t>(
      flags.get_int("instances", dear::common::env_int("DEAR_FIG5_INSTANCES", 20)));
  const auto dear_frames = static_cast<std::uint64_t>(flags.get_int(
      "dear-frames", dear::common::env_int("DEAR_FIG5_DEAR_FRAMES",
                                           static_cast<std::int64_t>(frames))));

  std::printf("=====================================================================\n");
  std::printf("Figure 5: error prevalence, %llu executions x %llu frames\n",
              static_cast<unsigned long long>(instances),
              static_cast<unsigned long long>(frames));
  std::printf("=====================================================================\n\n");

  struct Row {
    std::uint64_t seed;
    dear::brake::PipelineResult result;
  };
  std::vector<Row> rows;
  for (std::uint64_t seed = 1; seed <= instances; ++seed) {
    dear::brake::ScenarioConfig config;
    config.frames = frames;
    config.platform_seed = seed;
    config.camera_seed = seed + 1000;
    rows.push_back(Row{seed, dear::brake::run_nondet_pipeline(config)});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.result.error_prevalence_percent() < b.result.error_prevalence_percent();
  });

  std::printf("stock (nondeterministic) brake assistant, sorted by error rate:\n\n");
  std::printf("  %-4s %-5s %10s %12s %12s %12s %12s %10s\n", "#", "seed", "prev(%)",
              "dropPre", "dropCV", "mismatchCV", "dropEBA", "wrongDec");
  dear::common::RunningStats prevalence;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& errors = rows[i].result.errors;
    const double rate = rows[i].result.error_prevalence_percent();
    prevalence.add(rate);
    std::printf("  %-4zu %-5llu %10.3f %12llu %12llu %12llu %12llu %10llu\n", i + 1,
                static_cast<unsigned long long>(rows[i].seed), rate,
                static_cast<unsigned long long>(errors.dropped_frames_preprocessing),
                static_cast<unsigned long long>(errors.dropped_frames_cv),
                static_cast<unsigned long long>(errors.input_mismatches_cv),
                static_cast<unsigned long long>(errors.dropped_vehicles_eba),
                static_cast<unsigned long long>(rows[i].result.wrong_decisions));
  }
  std::printf("\n  error prevalence: min %.3f%%  mean %.3f%%  max %.3f%%\n",
              prevalence.min(), prevalence.mean(), prevalence.max());
  std::printf("  (paper: min 0.018%%  mean 5.60%%  max 22.25%%)\n\n");

  std::printf("DEAR (deterministic) brake assistant, same seeds, %llu frames each:\n\n",
              static_cast<unsigned long long>(dear_frames));
  std::printf("  %-5s %10s %12s %12s %12s %10s %12s\n", "seed", "prev(%)", "errors",
              "deadlineViol", "tardy", "wrongDec", "ebaFrames");
  std::uint64_t total_errors = 0;
  std::uint64_t reference_digest = 0;
  bool digests_match = true;
  for (std::uint64_t seed = 1; seed <= instances; ++seed) {
    dear::brake::DearScenarioConfig config;
    config.frames = dear_frames;
    config.platform_seed = seed;
    config.camera_seed = 424242;  // same camera input for every instance
    const auto result = dear::brake::run_dear_pipeline(config);
    total_errors += result.errors.total() + result.deadline_violations + result.tardy_messages;
    if (seed == 1) {
      reference_digest = result.output_digest;
    } else if (result.output_digest != reference_digest) {
      digests_match = false;
    }
    std::printf("  %-5llu %10.3f %12llu %12llu %12llu %10llu %12llu\n",
                static_cast<unsigned long long>(seed), result.error_prevalence_percent(),
                static_cast<unsigned long long>(result.errors.total()),
                static_cast<unsigned long long>(result.deadline_violations),
                static_cast<unsigned long long>(result.tardy_messages),
                static_cast<unsigned long long>(result.wrong_decisions),
                static_cast<unsigned long long>(result.frames_processed_eba));
  }
  std::printf("\n  total DEAR errors across all instances: %llu (paper: 0)\n",
              static_cast<unsigned long long>(total_errors));
  std::printf("  identical output digest across platform seeds: %s\n",
              digests_match ? "yes (deterministic)" : "NO");
  return total_errors == 0 && digests_match ? 0 : 1;
}
