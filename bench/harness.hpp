// Shared benchmark harness: every bench in this directory links it.
//
// What it standardizes:
//   * fixed-seed runs — benches take seeds through flags with fixed
//     defaults; the harness itself never injects wall-clock entropy;
//   * warmup/repeat control (--warmup, --repeats, --quick);
//   * per-case p50/p99/mean latency and throughput extraction;
//   * machine-readable output: --json <path> writes every case and gate
//     in the one shared "dear-bench-v1" schema (see docs/performance.md),
//     which is what makes BENCH_*.json diffable across PRs;
//   * sanity gates: named pass/fail checks (digest equality, scaling
//     floors, speedup targets). finish() returns nonzero when any gate
//     failed, so CI fails on a hot-path regression without parsing output.
//
// Typical shape:
//   bench::Harness h("bench_foo", "What it measures.");
//   h.cli().add_int("events", 20000, "events per run");
//   if (!h.parse(argc, argv)) return h.exit_code();
//   auto& c = h.measure("foo/fast", ops, [&] { ... });
//   h.gate("foo_speedup", c.throughput_per_s >= 2.0 * base, "details");
//   return h.finish();
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/cli.hpp"

namespace dear::bench {

/// Monotonic wall clock in nanoseconds.
[[nodiscard]] double now_ns();

struct CaseResult {
  std::string name;
  std::uint64_t iterations{0};  // total measured operations
  double p50_ns{0.0};           // per-operation latency percentiles
  double p99_ns{0.0};
  double mean_ns{0.0};
  double throughput_per_s{0.0};
  /// Bench-specific extras (digests, byte counts, ratios...), emitted
  /// verbatim into the JSON counters object.
  std::vector<std::pair<std::string, double>> counters;
};

struct GateResult {
  std::string name;
  bool ok{false};
  /// The gate could not be evaluated on this host (e.g. a scaling gate on
  /// a 1-core runner). Skipped gates never fail the run, and the JSON
  /// report carries the flag so downstream tooling can tell "passed" from
  /// "not measured" without parsing the detail string.
  bool skipped{false};
  std::string detail;
};

class Harness {
 public:
  Harness(std::string name, std::string summary);

  /// Register bench-specific options here before parse().
  [[nodiscard]] common::Cli& cli() noexcept { return cli_; }

  /// Parses argv (adding --json/--warmup/--repeats/--quick). False means
  /// exit with exit_code() (--help or bad flag).
  [[nodiscard]] bool parse(int argc, const char* const* argv);
  [[nodiscard]] int exit_code() const noexcept { return cli_.exit_code(); }

  /// --quick trims workloads for smoke runs (ctest / CI PR loops).
  [[nodiscard]] bool quick() const noexcept { return quick_; }
  /// Convenience: `full` normally, `quick_value` under --quick.
  [[nodiscard]] std::uint64_t scale(std::uint64_t full, std::uint64_t quick_value) const noexcept {
    return quick_ ? quick_value : full;
  }

  [[nodiscard]] std::uint64_t warmup() const noexcept { return warmup_; }
  [[nodiscard]] std::uint64_t repeats() const noexcept { return repeats_; }

  /// Runs fn() `warmup()` times untimed, then `repeats()` timed times.
  /// Each timed call yields one latency sample of elapsed / ops_per_call.
  CaseResult& measure(const std::string& name, std::uint64_t ops_per_call,
                      const std::function<void()>& fn);

  /// Records a case computed from externally collected per-op samples
  /// (e.g. per-round-trip latencies measured inside a workload).
  CaseResult& record(const std::string& name, const std::vector<double>& samples_ns,
                     double throughput_per_s = 0.0);

  /// Attaches a named counter to a case.
  static void counter(CaseResult& result, std::string name, double value) {
    result.counters.emplace_back(std::move(name), value);
  }

  [[nodiscard]] const CaseResult* find(const std::string& name) const noexcept;

  /// Sanity gate; failing gates make finish() return 1.
  void gate(const std::string& name, bool ok, const std::string& detail);

  /// Records a gate this host cannot evaluate (counts as ok, flagged
  /// `skipped` in the report).
  void gate_skipped(const std::string& name, const std::string& detail);

  /// Used by drivers with a canonical output file (bench_all →
  /// BENCH_hotpath.json); --json still overrides.
  void set_default_json_path(std::string path) { default_json_path_ = std::move(path); }

  /// Prints the case table and gate verdicts, writes the JSON report, and
  /// returns the process exit code (0 iff all gates passed and the report,
  /// when requested, was written).
  [[nodiscard]] int finish();

 private:
  [[nodiscard]] bool write_json(const std::string& path) const;

  std::string name_;
  common::Cli cli_;
  /// Deque, not vector: measure()/record() hand out references that must
  /// survive later case registrations.
  std::deque<CaseResult> cases_;
  std::vector<GateResult> gates_;
  std::string default_json_path_;
  std::uint64_t warmup_{3};
  std::uint64_t repeats_{20};
  bool quick_{false};
};

}  // namespace dear::bench
