// Standalone driver for the parallel scaling suite (suite_parallel.cpp):
// threaded-scheduler worker sweep + fault-sweep campaign worker sweep,
// with the digest gates always on and the speedup/overhead floors
// enforced on hosts with >= 2 cores.
//
// Environment knobs: DEAR_SCALING_EVENTS, DEAR_SCALING_FRAMES.
#include "common/flags.hpp"
#include "suites.hpp"

int main(int argc, char** argv) {
  dear::bench::Harness harness(
      "parallel_scaling",
      "Worker-count scaling of the threaded scheduler and the campaign runner.");
  harness.cli().add_int("events", dear::common::env_int("DEAR_SCALING_EVENTS", 2000),
                        "events per threaded-scheduler run");
  harness.cli().add_int("frames", dear::common::env_int("DEAR_SCALING_FRAMES", 120),
                        "frames per fault-sweep scenario");
  harness.cli().add_int("seed", 1, "campaign seed");
  if (!harness.parse(argc, argv)) {
    return harness.exit_code();
  }

  dear::bench::ParallelScalingOptions options;
  options.threaded_events = static_cast<std::uint64_t>(harness.cli().get_int("events"));
  options.campaign_frames = static_cast<std::uint64_t>(harness.cli().get_int("frames"));
  options.campaign_seed = static_cast<std::uint64_t>(harness.cli().get_int("seed"));
  dear::bench::run_parallel_scaling_suite(harness, options);
  return harness.finish();
}
