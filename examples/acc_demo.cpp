// The adaptive cruise-control chain (radar → tracker → ACC controller →
// actuator, plus a driver console on the target_speed field), built
// entirely from ServiceInterface descriptors and the AppBuilder — no
// handwritten proxy/skeleton/transactor wiring anywhere (see
// src/acc/services.hpp and src/acc/pipeline.cpp).
//
#include <cstdio>

#include "acc/pipeline.hpp"
#include "common/cli.hpp"
#include "obs/obs_cli.hpp"

int main(int argc, char** argv) {
  dear::common::Cli cli("acc_demo", "Runs the DEAR adaptive cruise-control chain.");
  cli.add_int("scans", 5'000, "radar scans to simulate");
  cli.add_int("seed", 7, "platform seed (radar seed derives from it)");
  cli.add_double("deadline-scale", 1.0, "global scale on the transactor deadlines");
  cli.add_flag("local-transport",
               "deploy over the zero-copy in-process binding instead of SOME/IP");
  dear::obs::register_cli_options(cli);
  if (!cli.parse(argc, argv)) {
    return cli.exit_code();
  }
  if (!dear::obs::configure_from_cli(cli)) {
    return 1;
  }

  dear::acc::AccScenarioConfig config;
  config.scans = static_cast<std::uint64_t>(cli.get_int("scans"));
  config.platform_seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  config.radar_seed = config.platform_seed + 1000;
  config.deadline_scale = cli.get_double("deadline-scale");
  config.local_transport = cli.get_flag("local-transport");

  std::printf(
      "running the DEAR adaptive cruise control chain: %llu scans, seed %llu, "
      "deadline scale %.2f, transport %s\n",
      static_cast<unsigned long long>(config.scans),
      static_cast<unsigned long long>(config.platform_seed), config.deadline_scale,
      config.local_transport ? "local (zero-copy in-process)" : "someip");

  const auto result = dear::acc::run_acc_pipeline(config);

  std::printf("\nscans sent:                  %llu\n",
              static_cast<unsigned long long>(result.scans_sent));
  std::printf("commands at actuator:        %llu\n",
              static_cast<unsigned long long>(result.commands));
  std::printf("brake interventions:         %llu\n",
              static_cast<unsigned long long>(result.brake_interventions));
  std::printf("wrong commands:              %llu\n",
              static_cast<unsigned long long>(result.wrong_commands));
  std::printf("field gets / sets / notifies: %llu / %llu / %llu\n",
              static_cast<unsigned long long>(result.field_gets),
              static_cast<unsigned long long>(result.field_sets),
              static_cast<unsigned long long>(result.field_notifies));
  std::printf("deadline violations:         %llu\n",
              static_cast<unsigned long long>(result.deadline_violations));
  std::printf("tardy messages:              %llu\n",
              static_cast<unsigned long long>(result.tardy_messages));
  std::printf("output digest:               %016llx\n",
              static_cast<unsigned long long>(result.output_digest));
  std::printf("tag digest:                  %016llx\n",
              static_cast<unsigned long long>(result.tag_digest));
  std::printf("console digest:              %016llx\n",
              static_cast<unsigned long long>(result.console_digest));
  if (!dear::obs::export_from_cli(cli)) {
    return 1;
  }
  return result.total_errors() == 0 ? 0 : 1;
}
