// The deterministic brake assistant built on DEAR (paper §IV.B).
//
// Same workload as brake_assistant_nondet, but each SWC is a reactor bound
// to the unchanged AP service interfaces through transactors, with the
// paper's deadlines (5/25/25/5 ms, L = 5 ms, E = 0). Expect zero errors
// and a deterministic output digest.
//
// Flags: --frames N (default 20000), --seed N (default 7),
//        --deadline-scale F (default 1.0; try 0.5 to see the trade-off),
//        --local-transport (deploy inter-SWC services over the zero-copy
//        in-process binding instead of SOME/IP; same outputs and tags)
#include <cstdio>

#include "brake/dear_pipeline.hpp"
#include "common/flags.hpp"

int main(int argc, char** argv) {
  const dear::common::Flags flags(argc, argv);

  dear::brake::DearScenarioConfig config;
  config.frames = static_cast<std::uint64_t>(flags.get_int("frames", 20'000));
  config.platform_seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  config.camera_seed = config.platform_seed + 1000;
  config.deadline_scale = flags.get_double("deadline-scale", 1.0);
  config.local_transport = flags.get_bool("local-transport", false);

  std::printf(
      "running the DEAR brake assistant: %llu frames, seed %llu, deadline scale %.2f, "
      "transport %s\n",
      static_cast<unsigned long long>(config.frames),
      static_cast<unsigned long long>(config.platform_seed), config.deadline_scale,
      config.local_transport ? "local (zero-copy in-process)" : "someip");

  const auto result = dear::brake::run_dear_pipeline(config);

  std::printf("\nframes sent:                 %llu\n",
              static_cast<unsigned long long>(result.frames_sent));
  std::printf("frames processed by EBA:     %llu\n",
              static_cast<unsigned long long>(result.frames_processed_eba));
  std::printf("pipeline errors (Fig.5 cat): %llu\n",
              static_cast<unsigned long long>(result.errors.total()));
  std::printf("deadline violations:         %llu\n",
              static_cast<unsigned long long>(result.deadline_violations));
  std::printf("tardy messages:              %llu\n",
              static_cast<unsigned long long>(result.tardy_messages));
  std::printf("wrong brake decisions:       %llu\n",
              static_cast<unsigned long long>(result.wrong_decisions));
  std::printf("output digest:               %016llx\n",
              static_cast<unsigned long long>(result.output_digest));
  if (result.latency.count() > 0) {
    std::printf("end-to-end latency (arrival->brake): mean %s  max %s\n",
                dear::format_duration(static_cast<dear::Duration>(result.latency.mean())).c_str(),
                dear::format_duration(static_cast<dear::Duration>(result.latency.max())).c_str());
  }
  return result.errors.total() == 0 && result.wrong_decisions == 0 ? 0 : 1;
}
