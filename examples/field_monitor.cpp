// Fields and gradual migration.
//
// Part 1: plain ara::com field usage — a legacy cruise-control server
// exposes a `target_speed` field (get method, set method, update event)
// and a legacy client gets/sets/subscribes.
//
// Part 2: a DEAR reactor client talks to the *same legacy server* through
// a client field transactor bundle. The legacy server knows nothing about
// tags, so its responses arrive untagged; with UntaggedPolicy::kPhysicalTime
// the transactors treat them like sporadic sensor inputs — "backward
// compatibility with existing service implementations and the ability to
// gradually introduce reactor-based SWCs" (paper §III.B).
//
// Everything runs on the DES kernel (deterministic, seeded).
#include <cstdio>

#include "ara/field.hpp"
#include "ara/runtime.hpp"
#include "dear/dear.hpp"
#include "net/sim_network.hpp"
#include "sim/sim_executor.hpp"

using namespace dear;
using namespace dear::literals;

namespace {

constexpr someip::ServiceId kCruiseService = 0x3001;
constexpr someip::InstanceId kCruiseInstance = 1;
constexpr ara::FieldIds kSpeedField{0x0010, 0x0011, 0x8010};

constexpr net::Endpoint kServerEp{1, 30};
constexpr net::Endpoint kLegacyClientEp{2, 31};
constexpr net::Endpoint kDearClientEp{2, 32};

/// Legacy server: state lives in the SkeletonField, no reactors involved.
class CruiseSkeleton : public ara::ServiceSkeleton {
 public:
  explicit CruiseSkeleton(ara::Runtime& runtime)
      : ServiceSkeleton(runtime, {kCruiseService, kCruiseInstance}) {}

  ara::SkeletonField<double> target_speed{*this, kSpeedField};
};

class CruiseProxy : public ara::ServiceProxy {
 public:
  CruiseProxy(ara::Runtime& runtime, net::Endpoint server)
      : ServiceProxy(runtime, {kCruiseService, kCruiseInstance}, server) {}

  ara::ProxyField<double> target_speed{*this, kSpeedField};
};

/// Raw field pieces for the DEAR client (the transactors need the plain
/// proxy methods/event rather than the ProxyField wrapper).
class CruiseRawProxy : public ara::ServiceProxy {
 public:
  CruiseRawProxy(ara::Runtime& runtime, net::Endpoint server)
      : ServiceProxy(runtime, {kCruiseService, kCruiseInstance}, server) {}

  transact::FieldClientParts<double> speed{*this, kSpeedField};
};

/// The DEAR monitor: periodically polls the field and reacts to updates,
/// all in deterministic tag order.
class Monitor final : public reactor::Reactor {
 public:
  reactor::Output<reactor::Empty> poll_out{"poll_out", this};
  reactor::Input<double> speed_in{"speed_in", this};
  reactor::Input<double> update_in{"update_in", this};

  explicit Monitor(reactor::Environment& env) : Reactor("monitor", env) {
    add_reaction("poll", [this] { poll_out.set(reactor::Empty{}); })
        .triggered_by(timer_)
        .writes(poll_out);
    add_reaction("on_poll_result",
                 [this] {
                   std::printf("  [monitor] t=%-9s polled target_speed = %.1f km/h\n",
                               format_duration(elapsed_logical_time()).c_str(), speed_in.get());
                 })
        .triggered_by(speed_in);
    add_reaction("on_update",
                 [this] {
                   std::printf("  [monitor] t=%-9s update notification  = %.1f km/h\n",
                               format_duration(elapsed_logical_time()).c_str(), update_in.get());
                 })
        .triggered_by(update_in);
  }

 private:
  reactor::Timer timer_{"poll_timer", this, 20_ms, 5_ms};
};

}  // namespace

int main() {
  common::Rng rng(42);
  sim::Kernel kernel;
  net::SimNetwork network(kernel, rng.stream("net"));
  someip::ServiceDiscovery discovery;
  sim::SimExecutor executor(kernel, rng.stream("dispatch"));

  // --- the legacy server -------------------------------------------------------
  ara::Runtime server_rt(network, discovery, executor, kServerEp, 0x51);
  CruiseSkeleton server(server_rt);
  server.target_speed.set_set_filter([](const double& requested) {
    return requested < 0.0 ? 0.0 : (requested > 130.0 ? 130.0 : requested);
  });
  server.target_speed.Update(100.0);
  server.OfferService();

  // --- part 1: legacy client ----------------------------------------------------
  std::printf("== Part 1: legacy ara::com client ==\n");
  ara::Runtime legacy_rt(network, discovery, executor, kLegacyClientEp, 0x52);
  CruiseProxy legacy(legacy_rt, *legacy_rt.resolve({kCruiseService, kCruiseInstance}));
  legacy.target_speed.notifier().SetReceiveHandler([](const double& value) {
    std::printf("  [legacy]  update notification = %.1f km/h\n", value);
  });
  legacy.target_speed.notifier().Subscribe();

  auto get_future = legacy.target_speed.Get();
  get_future.then([](const ara::Result<double>& result) {
    std::printf("  [legacy]  Get() -> %.1f km/h\n", result.value_or(-1.0));
  });
  auto set_future = legacy.target_speed.Set(150.0);  // gets clamped to 130
  set_future.then([](const ara::Result<double>& result) {
    std::printf("  [legacy]  Set(150.0) adopted -> %.1f km/h (server clamped)\n",
                result.value_or(-1.0));
  });
  kernel.run();

  // --- part 2: DEAR reactor client against the unchanged legacy server ------------
  std::printf("\n== Part 2: DEAR monitor with UntaggedPolicy::kPhysicalTime ==\n");
  ara::Runtime dear_rt(network, discovery, executor, kDearClientEp, 0x53);
  CruiseRawProxy raw(dear_rt, *dear_rt.resolve({kCruiseService, kCruiseInstance}));

  reactor::SimClock clock(kernel);
  reactor::Environment::Config env_config;
  env_config.keepalive = true;
  env_config.timeout = 100_ms;
  reactor::Environment env(clock, env_config);

  Monitor monitor(env);
  transact::TransactorConfig tc;
  tc.deadline = 2_ms;
  tc.latency_bound = 5_ms;
  tc.untagged = transact::UntaggedPolicy::kPhysicalTime;  // legacy peer!
  transact::ClientFieldTransactor<double> field("speed_field", env, raw.speed, dear_rt.binding(),
                                                tc);
  env.connect(monitor.poll_out, field.get.request);
  env.connect(field.get.response, monitor.speed_in);
  env.connect(field.notify.out, monitor.update_in);

  reactor::SimDriver driver(env, kernel, rng.stream("cost"));
  driver.start();

  // Someone changes the set-point mid-run (a legacy write).
  kernel.schedule_after(50_ms, [&] { server.target_speed.Update(80.0); });

  kernel.run();

  std::printf("\nuntagged messages handled by the DEAR client: %llu (policy: physical time)\n",
              static_cast<unsigned long long>(field.get.untagged_messages() +
                                              field.notify.untagged_messages()));
  return 0;
}
