// Fields and gradual migration, on the descriptor API.
//
// The cruise-control service is declared once, as a compile-time
// ServiceInterface descriptor with a single field member; everything else
// is derived from it:
//
// Part 1: plain ara::com usage — ara::Skeleton<Cruise> (field state in the
// skeleton) serves a legacy ara::Proxy<Cruise> client that gets/sets/
// subscribes.
//
// Part 2: a DEAR reactor client talks to the *same legacy server* through
// dear::ClientSide<Cruise>, which derives the field transactor bundle from
// the descriptor. The legacy server knows nothing about tags, so its
// responses arrive untagged; with UntaggedPolicy::kPhysicalTime the
// transactors treat them like sporadic sensor inputs — "backward
// compatibility with existing service implementations and the ability to
// gradually introduce reactor-based SWCs" (paper §III.B).
//
// Everything runs on the DES kernel (deterministic, seeded).
#include <cstdio>

#include "ara/generated.hpp"
#include "ara/runtime.hpp"
#include "common/cli.hpp"
#include "dear/dear.hpp"
#include "net/sim_network.hpp"
#include "sim/sim_executor.hpp"

using namespace dear;
using namespace dear::literals;

namespace {

constexpr someip::ServiceId kCruiseService = 0x3001;
constexpr someip::InstanceId kCruiseInstance = 1;

constexpr net::Endpoint kServerEp{1, 30};
constexpr net::Endpoint kLegacyClientEp{2, 31};
constexpr net::Endpoint kDearClientEp{2, 32};

/// The single source of truth for the cruise-control service.
struct Cruise {
  static constexpr ara::meta::Field<double, 0x0010, 0x0011, 0x8010> target_speed{"target_speed"};
  static constexpr auto kInterface =
      ara::meta::service_interface("Cruise", kCruiseService, {1, 0}, target_speed);
};

/// The DEAR monitor: periodically polls the field and reacts to updates,
/// all in deterministic tag order.
class Monitor final : public reactor::Reactor {
 public:
  reactor::Output<reactor::Empty> poll_out{"poll_out", this};
  reactor::Input<double> speed_in{"speed_in", this};
  reactor::Input<double> update_in{"update_in", this};

  explicit Monitor(reactor::Environment& env) : Reactor("monitor", env) {
    add_reaction("poll", [this] { poll_out.set(reactor::Empty{}); })
        .triggered_by(timer_)
        .writes(poll_out);
    add_reaction("on_poll_result",
                 [this] {
                   std::printf("  [monitor] t=%-9s polled target_speed = %.1f km/h\n",
                               format_duration(elapsed_logical_time()).c_str(), speed_in.get());
                 })
        .triggered_by(speed_in);
    add_reaction("on_update",
                 [this] {
                   std::printf("  [monitor] t=%-9s update notification  = %.1f km/h\n",
                               format_duration(elapsed_logical_time()).c_str(), update_in.get());
                 })
        .triggered_by(update_in);
  }

 private:
  reactor::Timer timer_{"poll_timer", this, 20_ms, 5_ms};
};

}  // namespace

int main(int argc, char** argv) {
  common::Cli cli("field_monitor",
                  "Legacy ara::com field usage plus a DEAR monitor on the same server.");
  cli.add_int("seed", 42, "seed for the simulated network and dispatch streams");
  if (!cli.parse(argc, argv)) {
    return cli.exit_code();
  }

  common::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  sim::Kernel kernel;
  net::SimNetwork network(kernel, rng.stream("net"));
  someip::ServiceDiscovery discovery;
  sim::SimExecutor executor(kernel, rng.stream("dispatch"));

  // --- the legacy server -------------------------------------------------------
  ara::Runtime server_rt(network, discovery, executor, kServerEp, 0x51);
  ara::Skeleton<Cruise> server(server_rt, kCruiseInstance);
  server.get(Cruise::target_speed).set_set_filter([](const double& requested) {
    return requested < 0.0 ? 0.0 : (requested > 130.0 ? 130.0 : requested);
  });
  server.get(Cruise::target_speed).Update(100.0);
  server.OfferService();

  // --- part 1: legacy client ----------------------------------------------------
  std::printf("== Part 1: legacy ara::com client ==\n");
  ara::Runtime legacy_rt(network, discovery, executor, kLegacyClientEp, 0x52);
  ara::Proxy<Cruise> legacy(legacy_rt, kCruiseInstance,
                            *legacy_rt.resolve({kCruiseService, kCruiseInstance}));
  legacy.get(Cruise::target_speed).notifier().SetReceiveHandler([](const double& value) {
    std::printf("  [legacy]  update notification = %.1f km/h\n", value);
  });
  legacy.get(Cruise::target_speed).notifier().Subscribe();

  auto get_future = legacy.get(Cruise::target_speed).Get();
  get_future.then([](const ara::Result<double>& result) {
    std::printf("  [legacy]  Get() -> %.1f km/h\n", result.value_or(-1.0));
  });
  auto set_future = legacy.get(Cruise::target_speed).Set(150.0);  // gets clamped to 130
  set_future.then([](const ara::Result<double>& result) {
    std::printf("  [legacy]  Set(150.0) adopted -> %.1f km/h (server clamped)\n",
                result.value_or(-1.0));
  });
  kernel.run();

  // --- part 2: DEAR reactor client against the unchanged legacy server ------------
  std::printf("\n== Part 2: DEAR monitor with UntaggedPolicy::kPhysicalTime ==\n");
  ara::Runtime dear_rt(network, discovery, executor, kDearClientEp, 0x53);

  reactor::SimClock clock(kernel);
  reactor::Environment::Config env_config;
  env_config.keepalive = true;
  env_config.timeout = 100_ms;
  reactor::Environment env(clock, env_config);

  Monitor monitor(env);
  transact::TransactorConfig tc;
  tc.deadline = 2_ms;
  tc.latency_bound = 5_ms;
  tc.untagged = transact::UntaggedPolicy::kPhysicalTime;  // legacy peer!
  dear::ClientSide<Cruise> cruise("speed_field", env, dear_rt, kCruiseInstance, tc);
  auto& field = cruise.tx(Cruise::target_speed);
  env.connect(monitor.poll_out, field.get.request);
  env.connect(field.get.response, monitor.speed_in);
  env.connect(field.notify.out, monitor.update_in);

  reactor::SimDriver driver(env, kernel, rng.stream("cost"));
  driver.start();

  // Someone changes the set-point mid-run (a legacy write).
  kernel.schedule_after(50_ms, [&] { server.get(Cruise::target_speed).Update(80.0); });

  kernel.run();

  std::printf("\nuntagged messages handled by the DEAR client: %llu (policy: physical time)\n",
              static_cast<unsigned long long>(cruise.untagged_messages()));
  return 0;
}
