// The Figure 1 experiment, interactively.
//
// Part 1 runs the naive AUTOSAR AP client/server program many times over a
// real thread pool and prints the distribution of the "printed value" —
// reproducing the histogram next to Figure 1 (all of 0, 1, 2, 3 occur).
// Part 2 runs the same program through DEAR method transactors: the calls
// happen at successive logical tags, the server handles them in tag order,
// and the printed value is always 3.
//
#include <cstdio>

#include "common/cli.hpp"
#include "common/histogram.hpp"
#include "demo/fig1.hpp"
#include "obs/obs_cli.hpp"

int main(int argc, char** argv) {
  dear::common::Cli cli("fig1_client_server",
                        "Reproduces the Figure 1 client/server experiment interactively.");
  cli.add_int("trials", 2000, "stock client/server trials over real threads");
  cli.add_int("workers", 4, "thread-pool workers for both parts");
  cli.add_int("dear-trials", 10, "trials of the same program over DEAR");
  dear::obs::register_cli_options(cli);
  if (!cli.parse(argc, argv)) {
    return cli.exit_code();
  }
  if (!dear::obs::configure_from_cli(cli)) {
    return 1;
  }
  const auto trials = static_cast<std::uint64_t>(cli.get_int("trials"));
  const auto workers = static_cast<std::size_t>(cli.get_int("workers"));
  const auto dear_trials = static_cast<std::uint64_t>(cli.get_int("dear-trials"));

  std::printf("== Part 1: stock AUTOSAR AP client/server (real threads, %zu workers) ==\n",
              workers);
  std::printf("client body:  s.set_value(1); s.add(2); result = s.get_value();\n\n");

  dear::common::CategoricalHistogram histogram;
  {
    dear::demo::Fig1RealHarness harness(workers);
    for (std::uint64_t i = 0; i < trials; ++i) {
      const auto outcome = harness.run_trial();
      if (outcome.completed) {
        histogram.add(outcome.printed);
      }
    }
  }
  std::printf("printed value distribution over %llu trials:\n%s\n",
              static_cast<unsigned long long>(trials), histogram.to_ascii().c_str());

  std::printf("== Part 2: the same program over DEAR (threaded reactor runtime) ==\n");
  bool all_three = true;
  for (std::uint64_t i = 0; i < dear_trials; ++i) {
    const auto outcome = dear::demo::run_fig1_dear_threaded(workers);
    std::printf("trial %llu: printed %d (protocol errors: %llu)\n",
                static_cast<unsigned long long>(i), outcome.printed,
                static_cast<unsigned long long>(outcome.protocol_errors));
    all_three = all_three && outcome.printed == 3;
  }
  std::printf("\nDEAR printed 3 in every trial: %s\n", all_three ? "yes" : "NO");
  if (!dear::obs::export_from_cli(cli)) {
    return 1;
  }
  return all_three ? 0 : 1;
}
