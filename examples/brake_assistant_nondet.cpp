// The stock (nondeterministic) brake assistant from the Adaptive Platform
// Demonstrator, on the simulated two-platform testbed (paper §IV.A).
//
// Runs one experiment instance and reports the four error categories of
// Figure 5. Different seeds model different process start offsets — watch
// the error rate swing by orders of magnitude.
//
// Flags: --frames N (default 20000), --seed N (default 7)
#include <cstdio>

#include "brake/nondet_pipeline.hpp"
#include "common/flags.hpp"

int main(int argc, char** argv) {
  const dear::common::Flags flags(argc, argv);

  dear::brake::ScenarioConfig config;
  config.frames = static_cast<std::uint64_t>(flags.get_int("frames", 20'000));
  config.platform_seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  config.camera_seed = config.platform_seed + 1000;

  std::printf("running the stock brake assistant: %llu frames, seed %llu ...\n",
              static_cast<unsigned long long>(config.frames),
              static_cast<unsigned long long>(config.platform_seed));

  const auto result = dear::brake::run_nondet_pipeline(config);

  std::printf("\nframes sent:                        %llu\n",
              static_cast<unsigned long long>(result.frames_sent));
  std::printf("frames processed by EBA:            %llu\n",
              static_cast<unsigned long long>(result.frames_processed_eba));
  std::printf("dropped frames (Preprocessing):     %llu\n",
              static_cast<unsigned long long>(result.errors.dropped_frames_preprocessing));
  std::printf("dropped frames (Computer Vision):   %llu\n",
              static_cast<unsigned long long>(result.errors.dropped_frames_cv));
  std::printf("input mismatches (Computer Vision): %llu\n",
              static_cast<unsigned long long>(result.errors.input_mismatches_cv));
  std::printf("dropped vehicles (EBA):             %llu\n",
              static_cast<unsigned long long>(result.errors.dropped_vehicles_eba));
  std::printf("wrong brake decisions:              %llu\n",
              static_cast<unsigned long long>(result.wrong_decisions));
  std::printf("error prevalence:                   %.3f%%\n", result.error_prevalence_percent());
  return 0;
}
