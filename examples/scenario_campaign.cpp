// Declarative fault/clock/network campaigns, batch-executed.
//
// Expands one of the preset scenario grids (src/scenario/presets.hpp)
// into a scenario matrix, runs every scenario on a worker pool, checks
// the determinism invariants (DEAR digests bit-identical across platform
// seeds, fault knobs within bounds, transports and worker counts; nondet
// error prevalence free to vary), prints the campaign table and
// optionally writes the JSON report consumed by CI.
#include <cstdio>
#include <fstream>

#include "common/cli.hpp"
#include "obs/obs_cli.hpp"
#include "scenario/presets.hpp"
#include "scenario/runner.hpp"

int main(int argc, char** argv) {
  dear::common::Cli cli("scenario_campaign",
                        "Runs a declarative fault/clock/network scenario campaign.");
  cli.add_string("preset", "smoke",
                 "campaign grid: smoke | fault-sweep | throughput | "
                 "fault-tolerance | fault-tolerance-smoke");
  cli.add_int("frames", 500, "sensor samples per scenario");
  cli.add_int("seed", 1, "campaign seed (root of every derived stream)");
  cli.add_int("workers", 0, "worker threads (0 = hardware concurrency)");
  cli.add_int("scenarios", 64, "grid size for the throughput preset");
  cli.add_string("json", "", "write the CampaignReport JSON to this file");
  cli.add_flag("timing", "annotate every row with the static timing verdict");
  cli.add_flag("quiet", "suppress the per-scenario table");
  dear::obs::register_cli_options(cli);
  if (!cli.parse(argc, argv)) {
    return cli.exit_code();
  }
  if (!dear::obs::configure_from_cli(cli)) {
    return 1;
  }

  const auto frames = static_cast<std::uint64_t>(cli.get_int("frames"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const std::string preset = cli.get_string("preset");

  dear::scenario::CampaignSpec campaign;
  if (preset == "smoke") {
    campaign = dear::scenario::presets::smoke(frames, seed);
  } else if (preset == "fault-sweep") {
    campaign = dear::scenario::presets::fault_sweep(frames, seed);
  } else if (preset == "throughput") {
    campaign = dear::scenario::presets::throughput(
        static_cast<std::uint64_t>(cli.get_int("scenarios")), frames, seed);
  } else if (preset == "fault-tolerance") {
    campaign = dear::scenario::presets::fault_tolerance_sweep(frames, seed);
  } else if (preset == "fault-tolerance-smoke") {
    campaign = dear::scenario::presets::fault_tolerance_smoke(frames, seed);
  } else {
    std::fprintf(stderr,
                 "unknown preset '%s' (smoke | fault-sweep | throughput | "
                 "fault-tolerance | fault-tolerance-smoke)\n",
                 preset.c_str());
    return 1;
  }

  dear::scenario::RunnerOptions options;
  options.workers = static_cast<std::size_t>(cli.get_int("workers"));
  options.annotate_timing = cli.get_flag("timing");
  const dear::scenario::CampaignRunner runner(options);

  std::printf("expanding campaign '%s': %llu scenarios, seed %llu, %zu workers\n",
              campaign.name.c_str(), static_cast<unsigned long long>(campaign.grid_size()),
              static_cast<unsigned long long>(seed), runner.worker_count());
  const auto report = runner.run(campaign);

  if (!cli.get_flag("quiet")) {
    std::fputs(report.to_table().c_str(), stdout);
  } else {
    std::printf("%zu scenarios in %.2fs (%.1f/s), %zu violation(s), report digest %016llx\n",
                report.results.size(), report.wall_seconds, report.scenarios_per_second(),
                report.violations.size(),
                static_cast<unsigned long long>(report.report_digest()));
  }

  const std::string json_path = cli.get_string("json");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << report.to_json();
    std::printf("report written to %s\n", json_path.c_str());
  }
  if (!dear::obs::export_from_cli(cli)) {
    return 1;
  }

  return report.invariants_ok() ? 0 : 1;
}
