// Quickstart: a minimal deterministic reactor program on the threaded
// runtime.
//
// Topology:   Sensor --(reading)--> Controller --(command)--> Actuator
//
// The sensor samples every 10 ms (a timer), the controller smooths the
// readings, and the actuator has a 2 ms deadline — if its reaction were
// triggered too late, the deadline handler would run instead. With a sane
// machine this program prints 20 in-order actuations and exits.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "reactor/runtime.hpp"

using namespace dear;
using namespace dear::literals;

namespace {

class Sensor final : public reactor::Reactor {
 public:
  reactor::Output<double> reading{"reading", this};

  Sensor(reactor::Environment& env, int samples)
      : Reactor("sensor", env), samples_(samples) {
    add_reaction("sample",
                 [this] {
                   // A deterministic waveform standing in for real sensor data.
                   const double value = 20.0 + 5.0 * static_cast<double>(count_ % 7);
                   reading.set(value);
                   if (++count_ >= samples_) {
                     request_shutdown();
                   }
                 })
        .triggered_by(timer_)
        .writes(reading);
  }

 private:
  reactor::Timer timer_{"timer", this, 10_ms};
  int count_{0};
  int samples_;
};

class Controller final : public reactor::Reactor {
 public:
  reactor::Input<double> reading{"reading", this};
  reactor::Output<double> command{"command", this};

  explicit Controller(reactor::Environment& env) : Reactor("controller", env) {
    add_reaction("control",
                 [this] {
                   // Exponential smoothing — logically instantaneous.
                   smoothed_ = 0.8 * smoothed_ + 0.2 * reading.get();
                   command.set(smoothed_);
                 })
        .triggered_by(reading)
        .writes(command);
  }

 private:
  double smoothed_{20.0};
};

class Actuator final : public reactor::Reactor {
 public:
  reactor::Input<double> command{"command", this};

  explicit Actuator(reactor::Environment& env) : Reactor("actuator", env) {
    add_reaction("actuate",
                 [this] {
                   std::printf("t=%-8s command=%.3f\n",
                               format_duration(elapsed_logical_time()).c_str(), command.get());
                 })
        .triggered_by(command)
        .with_deadline(2_ms, [this] {
          std::printf("t=%-8s DEADLINE VIOLATION (actuation skipped)\n",
                      format_duration(elapsed_logical_time()).c_str());
        });
  }
};

}  // namespace

int main() {
  reactor::RealClock clock;
  reactor::Environment::Config config;
  config.workers = 2;
  reactor::Environment env(clock, config);

  Sensor sensor(env, 20);
  Controller controller(env);
  Actuator actuator(env);
  env.connect(sensor.reading, controller.reading);
  env.connect(controller.command, actuator.command);

  env.run();

  std::printf("done: %llu reactions across %llu tags, %llu deadline violations\n",
              static_cast<unsigned long long>(env.scheduler().reactions_executed()),
              static_cast<unsigned long long>(env.scheduler().tags_processed()),
              static_cast<unsigned long long>(env.scheduler().deadline_violations()));
  return 0;
}
