// Data types flowing through the adaptive cruise-control chain.
//
// Like the brake assistant (brake/types.hpp), the interesting errors here
// are coordination errors, not perception errors: payloads carry
// deterministic synthetic content derived from the scan id, so every
// downstream value records exactly which radar scan produced it and drops
// or misalignment are detectable by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "someip/serialization.hpp"

namespace dear::acc {

/// One reflection in a radar scan.
struct RadarReturn {
  std::uint32_t object_id{0};
  /// Distance to the reflecting object (meters).
  double range_m{0.0};
  /// Closing speed (m/s, positive = approaching).
  double closing_speed{0.0};
  /// Bearing relative to the vehicle axis (degrees, 0 = straight ahead).
  double azimuth_deg{0.0};

  bool operator==(const RadarReturn&) const = default;
};

struct RadarScan {
  std::uint64_t scan_id{0};
  /// Capture time on the radar's clock (ns). Not part of the scan content.
  std::int64_t capture_time{0};
  std::vector<RadarReturn> returns;

  bool operator==(const RadarScan&) const = default;
};

/// A tracked in-lane object.
struct Track {
  std::uint32_t track_id{0};
  double distance_m{0.0};
  double closing_speed{0.0};

  bool operator==(const Track&) const = default;
};

struct TrackList {
  /// Scan the tracks were computed from.
  std::uint64_t scan_id{0};
  std::vector<Track> tracks;

  bool operator==(const TrackList&) const = default;
};

/// Longitudinal command issued by the ACC controller.
struct AccCommand {
  std::uint64_t scan_id{0};
  /// The cruise set-point that was active when the command was computed.
  double target_speed_kmh{0.0};
  /// Commanded acceleration (m/s², negative = decelerate).
  double accel_mps2{0.0};
  /// True when the command is a collision-avoidance braking intervention.
  bool braking{false};

  bool operator==(const AccCommand&) const = default;
};

// --- SOME/IP codecs ---------------------------------------------------------

inline void someip_serialize(someip::Writer& w, const RadarReturn& v) {
  w.write_u32(v.object_id);
  w.write_f64(v.range_m);
  w.write_f64(v.closing_speed);
  w.write_f64(v.azimuth_deg);
}

inline void someip_deserialize(someip::Reader& r, RadarReturn& v) {
  v.object_id = r.read_u32();
  v.range_m = r.read_f64();
  v.closing_speed = r.read_f64();
  v.azimuth_deg = r.read_f64();
}

inline void someip_serialize(someip::Writer& w, const RadarScan& v) {
  w.write_u64(v.scan_id);
  w.write_i64(v.capture_time);
  someip_serialize(w, v.returns);
}

inline void someip_deserialize(someip::Reader& r, RadarScan& v) {
  v.scan_id = r.read_u64();
  v.capture_time = r.read_i64();
  someip_deserialize(r, v.returns);
}

inline void someip_serialize(someip::Writer& w, const Track& v) {
  w.write_u32(v.track_id);
  w.write_f64(v.distance_m);
  w.write_f64(v.closing_speed);
}

inline void someip_deserialize(someip::Reader& r, Track& v) {
  v.track_id = r.read_u32();
  v.distance_m = r.read_f64();
  v.closing_speed = r.read_f64();
}

inline void someip_serialize(someip::Writer& w, const TrackList& v) {
  w.write_u64(v.scan_id);
  someip_serialize(w, v.tracks);
}

inline void someip_deserialize(someip::Reader& r, TrackList& v) {
  v.scan_id = r.read_u64();
  someip_deserialize(r, v.tracks);
}

inline void someip_serialize(someip::Writer& w, const AccCommand& v) {
  w.write_u64(v.scan_id);
  w.write_f64(v.target_speed_kmh);
  w.write_f64(v.accel_mps2);
  w.write_bool(v.braking);
}

inline void someip_deserialize(someip::Reader& r, AccCommand& v) {
  v.scan_id = r.read_u64();
  v.target_speed_kmh = r.read_f64();
  v.accel_mps2 = r.read_f64();
  v.braking = r.read_bool();
}

}  // namespace dear::acc
