// Component logic of the adaptive cruise-control SWCs.
//
// Pure, deterministic functions of their inputs, mirroring
// brake/logic.hpp: the chain's behavioral output is attributable entirely
// to coordination, so digests over the actuator commands detect any
// nondeterminism introduced by the middleware or the deployment.
#pragma once

#include <cstdint>

#include "acc/types.hpp"

namespace dear::acc {

/// Cruise set-point bounds enforced by the controller (km/h).
inline constexpr double kMinTargetSpeedKmh = 30.0;
inline constexpr double kMaxTargetSpeedKmh = 130.0;

/// Synthesizes the scan a radar would capture at `capture_time`. Content
/// depends only on scan_id, so downstream components can verify which scan
/// a value was derived from.
[[nodiscard]] RadarScan generate_scan(std::uint64_t scan_id, std::int64_t capture_time);

/// Tracker: associates radar returns with the travel lane and produces
/// in-lane object tracks. Deterministic in the scan.
[[nodiscard]] TrackList track_objects(const RadarScan& scan);

/// ACC controller: follows the lead vehicle when one is tracked, otherwise
/// regulates toward the cruise set-point; time-to-collision below the
/// threshold triggers a braking intervention. Deterministic in
/// (tracks, target speed).
[[nodiscard]] AccCommand decide_accel(const TrackList& tracks, double target_speed_kmh);

/// Reference chain: the command scan_id *should* produce under set-point
/// `target_speed_kmh` when nothing is dropped or misaligned.
[[nodiscard]] AccCommand reference_command(std::uint64_t scan_id, double target_speed_kmh);

}  // namespace dear::acc
