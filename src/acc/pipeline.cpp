#include "acc/pipeline.hpp"

#include <algorithm>
#include <functional>
#include <iterator>
#include <memory>
#include <optional>
#include <unordered_map>

#include "acc/logic.hpp"
#include "acc/services.hpp"
#include "analysis/report.hpp"
#include "analysis/rules.hpp"
#include "ara/com/local_binding.hpp"
#include "common/digest.hpp"
#include "common/rng.hpp"
#include "dear/app_builder.hpp"
#include "dear/bundles.hpp"
#include "ft/health.hpp"
#include "net/sim_network.hpp"
#include "obs/obs.hpp"
#include "sim/clock_model.hpp"
#include "sim/periodic_task.hpp"
#include "sim/sim_executor.hpp"

namespace dear::acc {

namespace {

constexpr net::NodeId kPlatform = 1;

constexpr net::Endpoint kRadarEp{kPlatform, 301};
constexpr net::Endpoint kTrackerEp{kPlatform, 302};
constexpr net::Endpoint kAccEp{kPlatform, 303};
constexpr net::Endpoint kActuatorEp{kPlatform, 304};
constexpr net::Endpoint kConsoleEp{kPlatform, 305};

using common::mix_digest;

/// Coast-fallback commands carry a marker id (top 16 bits set) so the
/// actuator can account for them without consulting the reference chain:
/// there is no radar scan a coast tick corresponds to.
constexpr std::uint64_t kCoastMarker = 0xFFFF'0000'0000'0000ULL;

[[nodiscard]] constexpr bool is_coast_marker(std::uint64_t scan_id) noexcept {
  return (scan_id & kCoastMarker) == kCoastMarker;
}

// --- SWC logic reactors ----------------------------------------------------------

/// Radar logic: the sensor boundary. Scans arrive from the radar front-end
/// and are tagged with the physical time of reception.
class RadarLogic final : public reactor::Reactor {
 public:
  reactor::PhysicalAction<RadarScan> scan_arrival{"scan_arrival", this};
  reactor::Output<RadarScan> out{"out", this};

  RadarLogic(reactor::Environment& environment, sim::ExecTimeModel cost)
      : Reactor("radar_logic", environment) {
    add_reaction("on_scan", [this] { out.set(scan_arrival.get_ptr()); })
        .triggered_by(scan_arrival)
        .writes(out)
        .set_modeled_cost(cost);
  }
};

class TrackerLogic final : public reactor::Reactor {
 public:
  reactor::Input<RadarScan> scan_in{"scan_in", this};
  reactor::Output<TrackList> tracks_out{"tracks_out", this};

  TrackerLogic(reactor::Environment& environment, sim::ExecTimeModel cost)
      : Reactor("tracker_logic", environment) {
    add_reaction("on_scan", [this] { tracks_out.set(track_objects(scan_in.get())); })
        .triggered_by(scan_in)
        .writes(tracks_out)
        .set_modeled_cost(cost);
  }
};

/// ACC controller logic: owns the cruise set-point (the target_speed field
/// state lives *here*, in the reactor, which is what makes the field
/// deterministic) and computes a command per track list.
class AccLogic final : public reactor::Reactor {
 public:
  reactor::Input<TrackList> tracks_in{"tracks_in", this};
  reactor::Output<AccCommand> command_out{"command_out", this};

  // target_speed field server ports (wired to the ServerFieldTransactor).
  reactor::Input<reactor::Empty> get_request{"get_request", this};
  reactor::Output<double> get_response{"get_response", this};
  reactor::Input<double> set_request{"set_request", this};
  reactor::Output<double> set_response{"set_response", this};
  reactor::Output<double> notify_out{"notify_out", this};

  // Degraded-mode ports, created only when the fault-tolerance layer is
  // deployed (coast_period > 0): with FT off the reactor graph — and with
  // it the fact table and the golden digests — is unchanged.
  std::unique_ptr<reactor::Input<ft::HealthState>> health_in;

  AccLogic(reactor::Environment& environment, sim::ExecTimeModel cost, double initial_target,
           Duration coast_period = 0, Duration coast_phase = 0)
      : Reactor("acc_logic", environment), target_(initial_target) {
    // Set before compute: a same-tag set-point update applies to the
    // command computed at that tag.
    add_reaction("on_set",
                 [this] {
                   target_ = std::clamp(set_request.get(), kMinTargetSpeedKmh,
                                        kMaxTargetSpeedKmh);
                   set_response.set(target_);
                   notify_out.set(target_);
                 })
        .triggered_by(set_request)
        .writes(set_response)
        .writes(notify_out)
        .writes_state("acc.target_speed");
    add_reaction("on_get", [this] { get_response.set(target_); })
        .triggered_by(get_request)
        .writes(get_response)
        .reads_state("acc.target_speed");
    add_reaction("on_tracks",
                 [this] { command_out.set(decide_accel(tracks_in.get(), target_)); })
        .triggered_by(tracks_in)
        .writes(command_out)
        .reads_state("acc.target_speed")
        .set_modeled_cost(cost);
    if (coast_period > 0) {
      // Coast fallback: while the radar is dead (no scans, hence no
      // tracks), keep emitting hold-speed commands at the nominal cadence.
      // Both triggers (supervisor transitions, coast timer) are logical,
      // so degraded ticks land at reproducible tags.
      health_in = std::make_unique<reactor::Input<ft::HealthState>>("health_in", this);
      coast_timer_ = std::make_unique<reactor::Timer>("coast_timer", this, coast_period,
                                                      coast_phase > 0 ? coast_phase : coast_period);
      add_reaction("on_health", [this] { health_ = health_in->get(); })
          .triggered_by(*health_in)
          .writes_state("acc.health");
      add_reaction("on_coast",
                   [this] {
                     if (health_ != ft::HealthState::kDead) {
                       return;
                     }
                     AccCommand command;
                     command.scan_id = kCoastMarker | coast_tick_++;
                     command.target_speed_kmh = target_;
                     command_out.set(command);
                   })
          .triggered_by(*coast_timer_)
          .writes(command_out)
          .reads_state("acc.target_speed")
          .reads_state("acc.health");
    }
  }

 private:
  double target_;
  std::unique_ptr<reactor::Timer> coast_timer_;
  ft::HealthState health_{ft::HealthState::kHealthy};
  std::uint64_t coast_tick_{0};
};

class ActuatorLogic final : public reactor::Reactor {
 public:
  reactor::Input<AccCommand> command_in{"command_in", this};

  using Observer = std::function<void(const AccCommand&, const reactor::Tag&)>;

  ActuatorLogic(reactor::Environment& environment, sim::ExecTimeModel cost, Observer observer)
      : Reactor("actuator_logic", environment), observer_(std::move(observer)) {
    add_reaction("on_command", [this] { observer_(command_in.get(), current_tag()); })
        .triggered_by(command_in)
        .set_modeled_cost(cost);
  }

 private:
  Observer observer_;
};

/// Driver console: periodically polls the set-point (field get) and steps
/// it through a deterministic profile (field set); also observes change
/// notifications. Everything is timer-driven, hence logical and
/// reproducible.
class ConsoleLogic final : public reactor::Reactor {
 public:
  reactor::Output<reactor::Empty> get_request{"get_request", this};
  reactor::Input<double> get_response{"get_response", this};
  reactor::Output<double> set_request{"set_request", this};
  reactor::Input<double> set_response{"set_response", this};
  reactor::Input<double> notify_in{"notify_in", this};

  std::uint64_t gets{0};
  std::uint64_t sets{0};
  std::uint64_t notifies{0};
  std::uint64_t digest{0};

  ConsoleLogic(reactor::Environment& environment, Duration poll_period, Duration update_period)
      : Reactor("console_logic", environment),
        poll_timer_("poll_timer", this, poll_period, poll_period / 2),
        update_timer_("update_timer", this, update_period, update_period) {
    add_reaction("poll", [this] { get_request.set(reactor::Empty{}); })
        .triggered_by(poll_timer_)
        .writes(get_request);
    add_reaction("update",
                 [this] {
                   // A deterministic set-point profile sweeping the legal
                   // range (and deliberately overshooting it once per
                   // cycle to exercise the controller's clamping).
                   static constexpr double kProfile[] = {110.0, 70.0, 150.0, 50.0, 90.0, 20.0};
                   set_request.set(kProfile[update_index_++ % std::size(kProfile)]);
                 })
        .triggered_by(update_timer_)
        .writes(set_request);
    add_reaction("on_get_response",
                 [this] {
                   ++gets;
                   mix_digest(digest, static_cast<std::uint64_t>(get_response.get() * 100.0));
                 })
        .triggered_by(get_response);
    add_reaction("on_set_response",
                 [this] {
                   ++sets;
                   mix_digest(digest, static_cast<std::uint64_t>(set_response.get() * 100.0) + 1);
                 })
        .triggered_by(set_response);
    add_reaction("on_notify",
                 [this] {
                   ++notifies;
                   mix_digest(digest, static_cast<std::uint64_t>(notify_in.get() * 100.0) + 2);
                 })
        .triggered_by(notify_in);
  }

 private:
  reactor::Timer poll_timer_;
  reactor::Timer update_timer_;
  std::size_t update_index_{0};
};

}  // namespace

AccResult run_acc_pipeline(const AccScenarioConfig& config) {
  common::Rng platform_rng(config.platform_seed);
  common::Rng radar_rng(config.radar_seed);

  sim::Kernel kernel;
  net::SimNetwork network(kernel, platform_rng.stream("net"));
  net::LinkParams link;
  link.latency = sim::ExecTimeModel::uniform(config.link_latency_min, config.link_latency_max);
  network.set_default_link(link);
  // The whole chain is co-located, so every service message rides the
  // loopback link — the surface the scenario engine's fault knobs stress.
  net::LinkParams svc_link;
  svc_link.latency = sim::ExecTimeModel::uniform(config.svc_latency_min, config.svc_latency_max);
  svc_link.drop_probability = config.net_drop_probability;
  svc_link.duplicate_probability = config.net_duplicate_probability;
  svc_link.enforce_in_order = config.net_in_order;
  network.set_loopback_link(svc_link);

  someip::ServiceDiscovery discovery;
  sim::SimExecutor executor(kernel, platform_rng.stream("dispatch"));

  ara::com::LocalHub hub;

  // Radar activation grid, fixed before the fault plan: the injection
  // window and the health timers are anchored to it (cf. the brake
  // pipeline — identical crash_at semantics on both workloads). Draws are
  // sequenced explicitly: as constructor arguments their evaluation order
  // would be compiler-dependent.
  auto radar_cfg_rng = radar_rng.stream("radar");
  const Duration radar_clock_offset = radar_cfg_rng.uniform_duration(0, config.period);
  const double radar_clock_drift =
      radar_cfg_rng.uniform(-1000, 1000) * 1e-3 * config.radar_drift_ppm;
  const sim::PlatformClock radar_clock(radar_clock_offset, radar_clock_drift);
  const Duration radar_phase = radar_cfg_rng.uniform_duration(0, config.period - 1);

  // The radar starts once the service wiring has settled (see below), so
  // grid points before `settle` are missed activations. Replicating
  // PeriodicTask's arm rule here yields the nominal global release of
  // scan 0 — jitter delays individual releases but never moves the grid.
  const Duration settle = 5 * kMillisecond + 2 * config.svc_latency_max;
  TimePoint first_scan = radar_clock.global_from_local(radar_phase);
  for (TimePoint k = 1; first_scan < settle; ++k) {
    first_scan = radar_clock.global_from_local(radar_phase + k * config.period);
  }

  // Fault-injection plan shared read-only by every binding in the chain.
  // Declared before the AppBuilder so it outlives the node runtimes that
  // hold a pointer to it. The radar node is the victim: crashing the
  // sensor boundary exercises the consumer-side degradation path.
  //
  // The down window counts from scan 0's nominal release, so which scans
  // lose their traffic is a pure function of the scenario knobs — the
  // radar clock's offset cannot shift window membership.
  const bool ft_on = config.service_faults.any();
  ft::FaultPlan fault_plan;
  fault_plan.victim = kRadarEp;
  fault_plan.down_from =
      config.service_faults.crash_at > 0 ? first_scan + config.service_faults.crash_at
                                         : Duration{0};
  fault_plan.down_until =
      fault_plan.down_from > 0 && config.service_faults.restart_after > 0
          ? fault_plan.down_from + config.service_faults.restart_after
          : Duration{0};
  fault_plan.call_error_probability = config.service_faults.call_error_probability;
  fault_plan.call_omission_probability = config.service_faults.call_omission_probability;
  fault_plan.fault_seed = config.fault_seed;

  // Health timers ride the same anchor, offset to sit strictly between
  // the chain's wire-tag grid (scans land at the grid +{5, 25, 35, 40}ms
  // mod period, window boundaries at +period/2): beats a quarter period
  // off the grid, supervisor checks at +period/4, coast ticks at +3/8.
  const Duration ft_anchor = first_scan % config.period;

  const auto make_config = [&](Duration deadline) {
    transact::TransactorConfig tc;
    tc.deadline = scale_duration(deadline, config.deadline_scale);
    tc.latency_bound = config.latency_bound;
    tc.clock_error_bound = config.clock_error_bound;
    tc.untagged = config.untagged;
    return tc;
  };

  AppBuilder::Config app_config;
  app_config.local_hub = config.local_transport ? &hub : nullptr;
  AppBuilder app(kernel, network, discovery, executor, platform_rng, app_config);

  auto& radar = app.node("radar", kRadarEp, 0x31);
  auto& tracker = app.node("tracker", kTrackerEp, 0x32);
  auto& acc = app.node("acc", kAccEp, 0x33);
  auto& actuator = app.node("actuator", kActuatorEp, 0x34);
  auto& console = app.node("console", kConsoleEp, 0x35);

  // The plan hooks live in every binding either way; installing an inert
  // plan (ft_idle_probe) measures their cost on the undisturbed hot path.
  if (ft_on || config.ft_idle_probe) {
    for (auto* node : {&radar, &tracker, &acc, &actuator, &console}) {
      node->runtime().set_fault_plan(&fault_plan);
    }
  }

  // Servers first (offered on construction), then clients.
  auto& radar_srv = radar.serve<Radar>(kInstance, make_config(config.radar_deadline));
  auto& tracker_srv = tracker.serve<Tracker>(kInstance, make_config(config.tracker_deadline));
  auto& acc_srv = acc.serve<AccController>(kInstance, make_config(config.acc_deadline));
  // Health monitoring rides the same descriptor machinery as the chain
  // services: the victim offers the heartbeat stream, the controller node
  // supervises it (wired below, after the logic reactors exist).
  transact::ServerSide<ft::Health>* health_srv = nullptr;
  if (ft_on) {
    health_srv = &radar.serve<ft::Health>(kInstance, make_config(config.radar_deadline));
  }

  auto& tracker_cli = tracker.require<Radar>(kInstance, make_config(config.tracker_deadline));
  auto& acc_cli = acc.require<Tracker>(kInstance, make_config(config.acc_deadline));
  auto& actuator_cli =
      actuator.require<AccController>(kInstance, make_config(config.actuator_deadline));
  auto& console_cli =
      console.require<AccController>(kInstance, make_config(config.console_deadline));
  transact::ClientSide<ft::Health>* health_cli = nullptr;
  if (ft_on) {
    health_cli = &acc.require<ft::Health>(kInstance, make_config(config.acc_deadline));
  }
  if (config.retry.enabled()) {
    // Field get/set are methods on the wire; the console's proxy retries
    // them with the deterministic logical backoff.
    console_cli.proxy().set_retry_policy(config.retry);
  }

  const double ts = config.exec_time_scale;
  const auto light_cost =
      sim::ExecTimeModel::normal(500 * kMicrosecond, 150 * kMicrosecond, 100 * kMicrosecond,
                                 2 * kMillisecond)
          .scaled(ts);
  const auto tracker_cost =
      sim::ExecTimeModel::normal(8 * kMillisecond, 1 * kMillisecond, 4 * kMillisecond,
                                 15 * kMillisecond)
          .scaled(ts);
  const auto acc_cost =
      sim::ExecTimeModel::normal(4 * kMillisecond, 800 * kMicrosecond, 2 * kMillisecond,
                                 8 * kMillisecond)
          .scaled(ts);

  AccResult result;
  std::unordered_map<std::uint64_t, TimePoint> arrival_time;

  auto& radar_logic = radar.logic<RadarLogic>(light_cost);
  auto& tracker_logic = tracker.logic<TrackerLogic>(tracker_cost);
  auto& acc_logic = acc.logic<AccLogic>(acc_cost, 100.0, ft_on ? config.period : Duration{0},
                                        ft_anchor + config.period / 4 + config.period / 8);
  auto& actuator_logic = actuator.logic<ActuatorLogic>(
      light_cost, [&](const AccCommand& command, const reactor::Tag& tag) {
        if (is_coast_marker(command.scan_id)) {
          // Degraded tick: no reference command exists (there was no scan);
          // the marker and the held set-point still enter the digest so a
          // nondeterministic fallback could not hide.
          ++result.ft_degraded_ticks;
          mix_digest(result.output_digest, command.scan_id);
          mix_digest(result.output_digest,
                     static_cast<std::uint64_t>(command.target_speed_kmh * 100.0));
          return;
        }
        ++result.commands;
        if (command.braking) {
          ++result.brake_interventions;
        }
        if (command != reference_command(command.scan_id, command.target_speed_kmh)) {
          ++result.wrong_commands;
        }
        mix_digest(result.output_digest, command.scan_id);
        // accel_mps2 is negative for decelerations: go through int64_t (a
        // direct negative-double→uint64_t cast is UB / float-cast-overflow).
        mix_digest(result.output_digest,
                   static_cast<std::uint64_t>(static_cast<std::int64_t>(command.accel_mps2 * 1e6)));
        mix_digest(result.output_digest, command.braking ? 1 : 0);
        mix_digest(result.output_digest,
                   static_cast<std::uint64_t>(command.target_speed_kmh * 100.0));
        const auto it = arrival_time.find(command.scan_id);
        if (it != arrival_time.end()) {
          mix_digest(result.tag_digest, static_cast<std::uint64_t>(tag.time - it->second));
          mix_digest(result.tag_digest, tag.microstep);
          arrival_time.erase(it);
        }
      });
  auto& console_logic =
      console.logic<ConsoleLogic>(config.console_poll_period, config.console_update_period);

  ft::Supervisor* supervisor = nullptr;
  if (ft_on) {
    auto& beat_src = radar.logic<ft::HeartbeatEmitter>(
        config.period, ft_anchor + config.period + config.period / 4);
    radar.connect(beat_src.out, health_srv->tx(ft::Health::beat).in);
    // Staleness thresholds scale with the chain cadence: one missed beat
    // is tolerated, ~2.5 periods without beats counts as degraded, four as
    // dead (engaging the coast fallback).
    ft::SupervisorConfig sup_config;
    sup_config.check_period = config.period;
    sup_config.check_phase = ft_anchor + config.period / 4;
    sup_config.degraded_after = 2 * config.period + config.period / 2;
    sup_config.dead_after = 4 * config.period;
    supervisor = &acc.logic<ft::Supervisor>(sup_config);
    acc.connect(health_cli->tx(ft::Health::beat).out, supervisor->beat_in);
    acc.connect(supervisor->state_out, *acc_logic.health_in);
  }

  // --- wiring: all of it derived from the descriptors -------------------------
  radar.connect(radar_logic.out, radar_srv.tx(Radar::scan).in);

  tracker.connect(tracker_cli.tx(Radar::scan).out, tracker_logic.scan_in);
  tracker.connect(tracker_logic.tracks_out, tracker_srv.tx(Tracker::tracks).in);

  acc.connect(acc_cli.tx(Tracker::tracks).out, acc_logic.tracks_in);
  acc.connect(acc_logic.command_out, acc_srv.tx(AccController::command).in);
  auto& field_srv = acc_srv.tx(AccController::target_speed);
  acc.connect(field_srv.get.request, acc_logic.get_request);
  acc.connect(acc_logic.get_response, field_srv.get.response);
  acc.connect(field_srv.set.request, acc_logic.set_request);
  acc.connect(acc_logic.set_response, field_srv.set.response);
  acc.connect(acc_logic.notify_out, field_srv.notify.in);

  actuator.connect(actuator_cli.tx(AccController::command).out, actuator_logic.command_in);

  auto& field_cli = console_cli.tx(AccController::target_speed);
  console.connect(console_logic.get_request, field_cli.get.request);
  console.connect(field_cli.get.response, console_logic.get_response);
  console.connect(console_logic.set_request, field_cli.set.request);
  console.connect(field_cli.set.response, console_logic.set_response);
  console.connect(field_cli.notify.out, console_logic.notify_in);

  // --- the radar front-end -----------------------------------------------------
  sim::SensorFaultInjector radar_faults(config.sensor_faults, radar_rng.stream("radar.faults"));
  std::uint64_t captures = 0;
  std::uint64_t scans_sent = 0;
  std::optional<RadarScan> last_scan;
  sim::PeriodicTask radar_task(
      kernel, radar_clock, config.period, radar_phase,
      [&](std::uint64_t /*activation*/, TimePoint release) {
        if (captures >= config.scans) {
          return;
        }
        // Scan ids are capture ordinals (cf. brake::Camera): the input
        // stream 0..N-1 must not depend on where the radar clock's offset
        // lands the periodic grid.
        const std::uint64_t scan_id = captures++;
        RadarScan scan = generate_scan(scan_id, radar_clock.local_now(release));
        switch (radar_faults.next()) {
          case sim::SensorFaultInjector::Outcome::kDrop:
            return;
          case sim::SensorFaultInjector::Outcome::kStuck:
            if (last_scan.has_value()) {
              scan = *last_scan;
            }
            break;
          case sim::SensorFaultInjector::Outcome::kNoisy:
            // Corrupted reflections: the returns of a different (perturbed)
            // scan under the sample's own identity.
            scan.returns = generate_scan(scan.scan_id ^ radar_faults.noise_word(), 0).returns;
            break;
          case sim::SensorFaultInjector::Outcome::kNominal:
            break;
        }
        last_scan = scan;
        ++scans_sent;
        arrival_time.emplace(scan.scan_id, kernel.now());
        radar_logic.scan_arrival.schedule(scan);
      });
  radar_task.set_jitter(sim::ExecTimeModel::uniform(0, config.radar_jitter),
                        radar_rng.stream("radar.jitter"));

  // --- static pre-flight --------------------------------------------------------
  if (config.preflight) {
    config.preflight(app);
  }
  if (config.build_only) {
    return result;
  }
  // Consume the compiled level tables (when a plan is supplied) before the
  // environments assemble; a stale plan throws here, before any event runs.
  if (config.schedule_plan != nullptr) {
    app.apply_schedule_plans(*config.schedule_plan);
  }
  // Fail fast on structural determinism violations before any event runs.
  // The structural gate lets deliberately tightened deadline budgets through:
  // those runs are out-of-envelope experiments whose misses the error
  // counters must observe.
  app.validate(analysis::Gate::kStructural);

  app.start();

  // Let the service wiring settle before the sensor streams: event
  // subscriptions are SOME/IP control messages that traverse the simulated
  // network, so a scan published at t≈0 would reach a server binding that
  // does not know its subscribers yet. Real deployments sequence this
  // through service discovery; the DES equivalent is a short drain scaled
  // to the service-link model.
  kernel.run_until(settle);
  radar_task.start();

  // Subscription churn: toggle the actuator's command subscription at a
  // fixed physical cadence. The toggle windows are physical time, so churn
  // scenarios are excluded from the digest-invariance groups; the claim
  // under test is error accounting, not bit-identical output.
  std::function<void()> churn_toggle;
  if (config.service_faults.churn_period > 0) {
    churn_toggle = [&] {
      auto& rx = actuator_cli.tx(AccController::command);
      if (rx.subscribed()) {
        rx.unsubscribe();
      } else {
        rx.resubscribe();
      }
      kernel.schedule_after(config.service_faults.churn_period, [&] { churn_toggle(); });
    };
    kernel.schedule_after(config.service_faults.churn_period, [&] { churn_toggle(); });
  }

  const TimePoint horizon = settle +
                            static_cast<TimePoint>(config.scans + 16) * config.period +
                            16 * config.period;
  kernel.run_until(horizon);
  radar_task.stop();

  // --- collect results ----------------------------------------------------------
  result.scans_sent = scans_sent;
  result.sensor_dropped = radar_faults.dropped_samples();
  result.sensor_stuck = radar_faults.stuck_samples();
  result.sensor_noisy = radar_faults.noisy_samples();
  result.field_gets = console_logic.gets;
  result.field_sets = console_logic.sets;
  result.field_notifies = console_logic.notifies;
  result.console_digest = console_logic.digest;
  result.deadline_violations = app.deadline_violations();
  result.tardy_messages = app.tardy_messages();
  result.untagged_messages = app.untagged_messages();
  result.dropped_messages = app.dropped_messages();
  result.remote_errors = app.remote_errors();

  result.ft_crash_drops = fault_plan.crash_drops.load(std::memory_order_relaxed);
  result.ft_call_faults = fault_plan.call_errors.load(std::memory_order_relaxed) +
                          fault_plan.call_omissions.load(std::memory_order_relaxed);
  result.ft_retries = console_cli.proxy().retries();
  // ft_degraded_ticks accumulated in the actuator observer.
  result.ft_failovers = supervisor != nullptr ? supervisor->failovers() : 0;
  obs::count(obs::Counter::kFtCrashDrops, result.ft_crash_drops);
  obs::count(obs::Counter::kFtCallFaults, result.ft_call_faults);
  obs::count(obs::Counter::kFtDegradedTicks, result.ft_degraded_ticks);
  return result;
}

}  // namespace dear::acc
