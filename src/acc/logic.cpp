#include "acc/logic.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace dear::acc {

namespace {

/// Deterministic per-(scan, salt) value in [0, 1).
[[nodiscard]] double unit_hash(std::uint64_t scan_id, std::uint64_t salt) {
  std::uint64_t state = scan_id * 0x9e3779b97f4a7c15ULL + salt;
  return static_cast<double>(common::splitmix64(state) >> 11) * 0x1.0p-53;
}

/// Braking intervenes when the projected time to collision falls below 3 s.
constexpr double kTtcThresholdSeconds = 3.0;
/// Half-width of the travel lane in bearing terms.
constexpr double kLaneAzimuthDeg = 10.0;
/// Desired following distance (m).
constexpr double kFollowDistanceM = 40.0;
constexpr double kMaxAccel = 2.0;
constexpr double kMaxDecel = -6.0;

}  // namespace

RadarScan generate_scan(std::uint64_t scan_id, std::int64_t capture_time) {
  RadarScan scan;
  scan.scan_id = scan_id;
  scan.capture_time = capture_time;
  // 0-3 reflections; traffic density varies scan to scan.
  const auto count = static_cast<std::uint32_t>(unit_hash(scan_id, 1) * 4.0);
  scan.returns.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    RadarReturn ret;
    ret.object_id = i;
    ret.range_m = 10.0 + 90.0 * unit_hash(scan_id, 10 + i);
    ret.closing_speed = -10.0 + 30.0 * unit_hash(scan_id, 20 + i);
    ret.azimuth_deg = -30.0 + 60.0 * unit_hash(scan_id, 30 + i);
    scan.returns.push_back(ret);
  }
  return scan;
}

TrackList track_objects(const RadarScan& scan) {
  TrackList tracks;
  tracks.scan_id = scan.scan_id;
  for (const RadarReturn& ret : scan.returns) {
    if (std::abs(ret.azimuth_deg) > kLaneAzimuthDeg) {
      continue;  // outside the travel lane
    }
    tracks.tracks.push_back(Track{ret.object_id, ret.range_m, ret.closing_speed});
  }
  // Nearest object first: the controller follows tracks.front().
  std::sort(tracks.tracks.begin(), tracks.tracks.end(),
            [](const Track& a, const Track& b) { return a.distance_m < b.distance_m; });
  return tracks;
}

AccCommand decide_accel(const TrackList& tracks, double target_speed_kmh) {
  AccCommand command;
  command.scan_id = tracks.scan_id;
  command.target_speed_kmh = target_speed_kmh;
  if (!tracks.tracks.empty()) {
    const Track& lead = tracks.tracks.front();
    if (lead.closing_speed > 0.0 &&
        lead.distance_m < kTtcThresholdSeconds * lead.closing_speed) {
      // Collision avoidance: decelerate hard enough to null the closing
      // speed within the remaining gap.
      command.braking = true;
      command.accel_mps2 = std::max(
          kMaxDecel, -(lead.closing_speed * lead.closing_speed) / (2.0 * lead.distance_m));
      return command;
    }
    // Distance-keeping behind the lead vehicle.
    command.accel_mps2 = std::clamp(0.05 * (lead.distance_m - kFollowDistanceM) -
                                        0.25 * lead.closing_speed,
                                    kMaxDecel, kMaxAccel);
    return command;
  }
  // Free road: regulate toward the set-point (proportional, around the
  // nominal 90 km/h plant the synthetic scenario assumes).
  command.accel_mps2 = std::clamp(0.05 * (target_speed_kmh - 90.0), kMaxDecel, kMaxAccel);
  return command;
}

AccCommand reference_command(std::uint64_t scan_id, double target_speed_kmh) {
  return decide_accel(track_objects(generate_scan(scan_id, 0)), target_speed_kmh);
}

}  // namespace dear::acc
