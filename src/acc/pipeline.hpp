// The adaptive cruise-control chain built on DEAR, entirely from
// ServiceInterface descriptors and the AppBuilder.
//
//   radar ──scan──▶ tracker ──tracks──▶ acc ──command──▶ actuator
//                                        ▲
//                        console ──get/set/notify (target_speed field)
//
// Five SWC processes on the compute platform: the radar SWC is the sensor
// boundary (scans are tagged with the physical time of reception, like the
// brake assistant's Video Adapter), tracker and ACC controller are pure
// logic reactors, the actuator consumes the command stream, and a driver
// console polls and updates the cruise set-point through the controller's
// target_speed *field* — so one run exercises event, method and field
// transactors derived from the same descriptors.
//
// Like the brake pipeline, the chain runs unchanged over SOME/IP or the
// zero-copy in-process transport (local_transport), with bit-identical
// observable outputs and logical tags.
#pragma once

#include <cstdint>
#include <functional>

#include "common/time.hpp"
#include "dear/config.hpp"
#include "ft/fault_model.hpp"
#include "sim/fault_injection.hpp"

namespace dear {
class AppBuilder;
namespace analysis {
struct StaticPlan;
}
}

namespace dear::acc {

struct AccScenarioConfig {
  /// Seed for the radar's timing (capture phase + jitter + clock drift).
  std::uint64_t radar_seed{1};
  /// Seed for everything platform-side (network latency, dispatch order,
  /// modeled execution-time draws).
  std::uint64_t platform_seed{1};
  std::uint64_t scans{10'000};
  Duration period{50 * kMillisecond};
  Duration radar_jitter{500 * kMicrosecond};
  Duration link_latency_min{200 * kMicrosecond};
  Duration link_latency_max{800 * kMicrosecond};
  /// Radar platform clock drift bound (ppm); the actual drift is drawn
  /// from radar_seed (it shapes the sensor's capture timing). Immaterial
  /// to the logical results: scan tags follow physical reception.
  double radar_drift_ppm{30.0};

  // Transactor deadlines and safe-to-process bounds.
  Duration radar_deadline{5 * kMillisecond};
  Duration tracker_deadline{20 * kMillisecond};
  Duration acc_deadline{10 * kMillisecond};
  Duration actuator_deadline{5 * kMillisecond};
  Duration console_deadline{5 * kMillisecond};
  Duration latency_bound{5 * kMillisecond};
  Duration clock_error_bound{0};

  /// Global scale on all deadlines (latency/error trade-off knob).
  double deadline_scale{1.0};
  /// Scale factor on the modeled execution times (stress knob).
  double exec_time_scale{1.0};

  /// Console cadence: how often the set-point is polled resp. stepped
  /// through the field's get/set methods (logical time).
  Duration console_poll_period{500 * kMillisecond};
  Duration console_update_period{2000 * kMillisecond};

  /// Deploy all chain services over the zero-copy in-process transport
  /// instead of SOME/IP.
  bool local_transport{false};

  transact::UntaggedPolicy untagged{transact::UntaggedPolicy::kFail};

  // --- fault-campaign knobs (scenario engine) --------------------------------
  /// Latency range of the on-platform service links (all chain traffic is
  /// same-node, i.e. loopback). Keep the max below latency_bound for
  /// loss-free operation.
  Duration svc_latency_min{5 * kMicrosecond};
  Duration svc_latency_max{50 * kMicrosecond};
  /// Per-message drop probability on the service links.
  double net_drop_probability{0.0};
  /// Per-message duplication probability on the service links.
  double net_duplicate_probability{0.0};
  /// Enforce in-order delivery on the service links (default: off).
  bool net_in_order{false};
  /// Radar sensor faults (input-side: decided from radar_seed).
  sim::SensorFaultModel sensor_faults{};

  // --- deterministic fault tolerance (src/ft/) -------------------------------
  /// Service faults: the radar node is the victim (crash/restart windows
  /// in wire-tag time, per-call error/omission, subscription churn).
  /// Enabling any knob also deploys the health-monitor service and the
  /// ACC controller's coast fallback.
  ft::ServiceFaultModel service_faults{};
  /// Retry budget installed on the console's field proxy.
  ft::RetryBudget retry{};
  /// Seed for the per-call fault die.
  std::uint64_t fault_seed{1};
  /// Bench-only: install an inert fault plan (real victim, empty crash
  /// window, zero probabilities) WITHOUT the health service, to measure
  /// the pure hook overhead on the hot path.
  bool ft_idle_probe{false};

  // --- static-analysis hooks (src/analysis/) ---------------------------------
  /// Invoked after the app is fully wired, before validate()/start().
  std::function<void(AppBuilder&)> preflight{};
  /// Construct and wire the application, run preflight, and return
  /// without starting drivers or the radar (no event executes).
  bool build_only{false};
  /// When set, every node consumes its level table from this compiled
  /// plan (analysis::build_plan) instead of re-deriving it at assembly;
  /// traces and digests are bit-identical either way. The plan must match
  /// the constructed topology (stale plans throw).
  const analysis::StaticPlan* schedule_plan{nullptr};
};

struct AccResult {
  std::uint64_t scans_sent{0};
  /// Commands received by the actuator (== scans_sent when nothing drops).
  std::uint64_t commands{0};
  std::uint64_t brake_interventions{0};
  /// Commands that differ from the drop-free reference chain.
  std::uint64_t wrong_commands{0};

  // Field traffic observed by the console.
  std::uint64_t field_gets{0};
  std::uint64_t field_sets{0};
  std::uint64_t field_notifies{0};

  // Injected radar faults (input-side).
  std::uint64_t sensor_dropped{0};
  std::uint64_t sensor_stuck{0};
  std::uint64_t sensor_noisy{0};

  // Observable protocol errors (summed over every transactor in the app).
  std::uint64_t deadline_violations{0};
  std::uint64_t tardy_messages{0};
  std::uint64_t untagged_messages{0};
  std::uint64_t dropped_messages{0};
  /// Remote/communication errors on method futures (field get/set calls).
  std::uint64_t remote_errors{0};

  /// Order-sensitive digest over every actuator command (scan id, accel,
  /// braking, active set-point).
  std::uint64_t output_digest{0};
  /// Digest over the actuator tags relative to the radar arrival tags.
  std::uint64_t tag_digest{0};
  /// Digest over the console's get/set/notify observations.
  std::uint64_t console_digest{0};

  // Fault-tolerance accounting (zero when no plan is installed).
  std::uint64_t ft_crash_drops{0};
  std::uint64_t ft_call_faults{0};
  std::uint64_t ft_retries{0};
  /// Actuator ticks served by the ACC coast fallback (radar dead).
  std::uint64_t ft_degraded_ticks{0};
  /// Supervisor transitions into the dead state.
  std::uint64_t ft_failovers{0};

  [[nodiscard]] std::uint64_t total_errors() const noexcept {
    return deadline_violations + tardy_messages + dropped_messages + remote_errors +
           wrong_commands;
  }
};

/// Runs the ACC chain to completion and returns the instrumented outcome.
[[nodiscard]] AccResult run_acc_pipeline(const AccScenarioConfig& config);

}  // namespace dear::acc
