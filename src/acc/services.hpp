// Service interfaces of the adaptive cruise-control chain, declared as
// compile-time ServiceInterface descriptors.
//
// This application exists to prove the scenario-diversity payoff of the
// descriptor API: unlike the brake assistant (which was ported from
// handwritten classes), the ACC chain is built *purely* on descriptors +
// AppBuilder — there is no per-service boilerplate class anywhere in the
// chain, and the AccController interface exercises all three member kinds
// (event + field, the field expanding to two methods and one event).
#pragma once

#include <array>

#include "acc/types.hpp"
#include "ara/meta/service_interface.hpp"

namespace dear::acc {

// Service ids (the brake assistant occupies 0x1001-0x1004).
inline constexpr someip::ServiceId kRadarService = 0x2001;
inline constexpr someip::ServiceId kTrackerService = 0x2002;
inline constexpr someip::ServiceId kAccService = 0x2003;
inline constexpr someip::InstanceId kInstance = 0x0001;

/// Radar: offers the scan stream (sensor boundary of the chain).
struct Radar {
  static constexpr ara::meta::Event<RadarScan, 0x8001> scan{"scan"};
  static constexpr auto kInterface =
      ara::meta::service_interface("Radar", kRadarService, {1, 0}, scan);
};

/// Tracker: offers in-lane object tracks.
struct Tracker {
  static constexpr ara::meta::Event<TrackList, 0x8001> tracks{"tracks"};
  static constexpr auto kInterface =
      ara::meta::service_interface("Tracker", kTrackerService, {1, 0}, tracks);
};

/// ACC controller: offers the longitudinal command stream plus the cruise
/// set-point as a field (get/set methods + change notification).
struct AccController {
  static constexpr ara::meta::Event<AccCommand, 0x8001> command{"command"};
  static constexpr ara::meta::Field<double, 0x0001, 0x0002, 0x8002> target_speed{"target_speed"};
  static constexpr auto kInterface =
      ara::meta::service_interface("AccController", kAccService, {1, 0}, command, target_speed);
  /// Radar→actuator end-to-end budget: the chain's logical latency at the
  /// default deadlines is (5+5)+(20+5)+(10+5) = 50 ms; 60 ms leaves
  /// headroom without hiding a regression (DEAR-LAT-001 checks it).
  static constexpr std::array kEndToEndBudgets{
      ara::meta::EndToEndBudget{"command", 60'000'000}};
};

}  // namespace dear::acc
