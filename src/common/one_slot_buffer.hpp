// The one-slot input buffer pattern used by the APD brake assistant
// (paper §IV.A): event handlers overwrite the slot, the periodic SWC logic
// takes the latest value. An overwrite of an unread value is a dropped
// input — exactly the error class Figure 5 counts.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <utility>

namespace dear::common {

template <typename T>
class OneSlotBuffer {
 public:
  /// Stores a value, returning true if an unread value was overwritten
  /// (i.e. an input was dropped).
  bool store(T value) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const bool overwrote = slot_.has_value();
    if (overwrote) {
      ++overwrites_;
    }
    slot_ = std::move(value);
    ++stores_;
    return overwrote;
  }

  /// Removes and returns the current value, or nullopt when the slot is
  /// empty (the SWC then "silently stops computation", per the paper).
  [[nodiscard]] std::optional<T> take() {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::optional<T> result = std::move(slot_);
    slot_.reset();
    if (result.has_value()) {
      ++takes_;
    } else {
      ++empty_takes_;
    }
    return result;
  }

  /// Reads without consuming (used by instrumentation only).
  [[nodiscard]] std::optional<T> peek() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return slot_;
  }

  [[nodiscard]] std::uint64_t stores() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return stores_;
  }
  [[nodiscard]] std::uint64_t overwrites() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return overwrites_;
  }
  [[nodiscard]] std::uint64_t takes() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return takes_;
  }
  [[nodiscard]] std::uint64_t empty_takes() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return empty_takes_;
  }

 private:
  mutable std::mutex mutex_;
  std::optional<T> slot_;
  std::uint64_t stores_{0};
  std::uint64_t overwrites_{0};
  std::uint64_t takes_{0};
  std::uint64_t empty_takes_{0};
};

}  // namespace dear::common
