// Strand adapter: serializes tasks posted through it onto an underlying
// executor, preserving FIFO order. Used for the kEventSingleThread method
// call processing mode ("the server could inform the runtime to use a
// single thread rather than multiple", paper §I).
#pragma once

#include <deque>
#include <memory>
#include <mutex>

#include "common/executor.hpp"

namespace dear::common {

class SerialExecutor final : public Executor {
 public:
  explicit SerialExecutor(Executor& underlying) : underlying_(underlying) {}

  void post(Task task) override {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(task));
      if (running_) {
        return;
      }
      running_ = true;
    }
    underlying_.post([this] { run_one(); });
  }

  void post_after(Duration delay, Task task) override {
    underlying_.post_after(delay,
                           [this, task = std::move(task)]() mutable { post(std::move(task)); });
  }

  [[nodiscard]] TimePoint now() const override { return underlying_.now(); }

 private:
  void run_one() {
    Task task;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    bool more = false;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      more = !queue_.empty();
      if (!more) {
        running_ = false;
      }
    }
    if (more) {
      underlying_.post([this] { run_one(); });
    }
  }

  Executor& underlying_;
  std::mutex mutex_;
  std::deque<Task> queue_;
  bool running_{false};
};

}  // namespace dear::common
