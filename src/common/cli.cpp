#include "common/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace dear::common {

void Cli::add_int(std::string name, std::int64_t fallback, std::string help) {
  options_.push_back(
      Option{std::move(name), Kind::kInt, std::to_string(fallback), std::move(help)});
}

void Cli::add_double(std::string name, double fallback, std::string help) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%g", fallback);
  options_.push_back(Option{std::move(name), Kind::kDouble, buffer, std::move(help)});
}

void Cli::add_string(std::string name, std::string fallback, std::string help) {
  options_.push_back(Option{std::move(name), Kind::kString, std::move(fallback), std::move(help)});
}

void Cli::add_flag(std::string name, std::string help) {
  options_.push_back(Option{std::move(name), Kind::kBool, "false", std::move(help)});
}

const Cli::Option* Cli::find(std::string_view name) const noexcept {
  for (const Option& option : options_) {
    if (option.name == name) {
      return &option;
    }
  }
  return nullptr;
}

const Cli::Option& Cli::require(std::string_view name, Kind kind) const {
  const Option* option = find(name);
  if (option == nullptr || option->kind != kind) {
    throw std::logic_error("Cli: option '" + std::string(name) +
                           "' was not registered (with this type)");
  }
  return *option;
}

namespace {

/// Whole-string numeric parses: "10O0" or "1.5x" are registration typos,
/// not values, and must be rejected rather than silently truncated.
[[nodiscard]] bool parses_as_int(const std::string& text) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  (void)std::strtoll(text.c_str(), &end, 10);
  return end == text.c_str() + text.size();
}

[[nodiscard]] bool parses_as_double(const std::string& text) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  (void)std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

[[nodiscard]] bool parses_as_bool(const std::string& text) {
  return text == "true" || text == "false" || text == "1" || text == "0" || text == "yes" ||
         text == "no";
}

}  // namespace

bool Cli::parse(int argc, const char* const* argv) {
  flags_ = Flags(argc, argv);
  parsed_ = true;
  if (flags_.has("help")) {
    std::fputs(usage().c_str(), stdout);
    exit_code_ = 0;
    return false;
  }
  bool ok = true;
  for (const std::string& name : flags_.names()) {
    const Option* option = find(name);
    if (option == nullptr) {
      std::fprintf(stderr, "%s: unknown flag --%s\n", program_.c_str(), name.c_str());
      ok = false;
      continue;
    }
    const std::string value = flags_.get_string(name, option->fallback);
    bool value_ok = true;
    switch (option->kind) {
      case Kind::kInt:
        value_ok = parses_as_int(value);
        break;
      case Kind::kDouble:
        value_ok = parses_as_double(value);
        break;
      case Kind::kBool:
        value_ok = parses_as_bool(value);
        break;
      case Kind::kString:
        break;
    }
    if (!value_ok) {
      std::fprintf(stderr, "%s: invalid value '%s' for --%s\n", program_.c_str(), value.c_str(),
                   name.c_str());
      ok = false;
    }
  }
  if (!ok) {
    std::fputs(usage().c_str(), stderr);
    exit_code_ = 1;
    return false;
  }
  return true;
}

std::int64_t Cli::get_int(std::string_view name) const {
  const Option& option = require(name, Kind::kInt);
  return flags_.get_int(name, std::strtoll(option.fallback.c_str(), nullptr, 10));
}

double Cli::get_double(std::string_view name) const {
  const Option& option = require(name, Kind::kDouble);
  return flags_.get_double(name, std::strtod(option.fallback.c_str(), nullptr));
}

std::string Cli::get_string(std::string_view name) const {
  const Option& option = require(name, Kind::kString);
  return flags_.get_string(name, option.fallback);
}

bool Cli::get_flag(std::string_view name) const {
  (void)require(name, Kind::kBool);
  return flags_.get_bool(name, false);
}

bool Cli::was_set(std::string_view name) const { return flags_.has(name); }

std::string Cli::usage() const {
  std::string out = program_ + " — " + summary_ + "\n\nOptions:\n";
  for (const Option& option : options_) {
    std::string left = "  --" + option.name;
    switch (option.kind) {
      case Kind::kInt:
        left += " N";
        break;
      case Kind::kDouble:
        left += " F";
        break;
      case Kind::kString:
        left += " S";
        break;
      case Kind::kBool:
        break;
    }
    if (left.size() < 28) {
      left.resize(28, ' ');
    } else {
      left += ' ';
    }
    out += left + option.help;
    if (option.kind != Kind::kBool) {
      out += " (default: " + option.fallback + ")";
    }
    out += '\n';
  }
  out += "  --help                    print this help\n";
  return out;
}

}  // namespace dear::common
