// Streaming summary statistics (Welford) used by the experiment harnesses.
#pragma once

#include <cstdint>
#include <vector>

namespace dear::common {

/// Single-pass mean/variance/min/max accumulator.
class RunningStats {
 public:
  void add(double sample) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Merges another accumulator into this one (parallel-friendly).
  void merge(const RunningStats& other) noexcept;

 private:
  std::uint64_t count_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
};

/// Exact quantile over a retained sample vector. Suitable for the
/// experiment sizes in this repository (<= a few million samples).
class QuantileSketch {
 public:
  void add(double sample) {
    samples_.push_back(sample);
    sorted_ = false;
  }
  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  /// q in [0,1]; returns 0.0 when empty.
  [[nodiscard]] double quantile(double q) const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_{false};
};

}  // namespace dear::common
