#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace dear::common {

void RunningStats::add(double sample) noexcept {
  if (count_ == 0) {
    min_ = sample;
    max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double QuantileSketch::quantile(double q) const {
  if (samples_.empty()) {
    return 0.0;
  }
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double clamped = std::clamp(q, 0.0, 1.0);
  const auto index = static_cast<std::size_t>(clamped * static_cast<double>(samples_.size() - 1));
  return samples_[index];
}

}  // namespace dear::common
