// Common time representation shared by the simulation kernel, the network
// models, the SOME/IP stack and the reactor runtime.
//
// All times are signed 64-bit nanosecond counts. Physical and logical time
// points share the representation but are kept apart by the type aliases
// below; arithmetic helpers are constexpr so models can be configured with
// literals like `50 * kMillisecond`.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace dear {

/// A point in time, in nanoseconds since an arbitrary epoch.
using TimePoint = std::int64_t;
/// A span of time in nanoseconds. May be negative in intermediate arithmetic.
using Duration = std::int64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1'000;
inline constexpr Duration kMillisecond = 1'000'000;
inline constexpr Duration kSecond = 1'000'000'000;

inline constexpr TimePoint kTimeMax = std::numeric_limits<TimePoint>::max();
inline constexpr TimePoint kTimeMin = std::numeric_limits<TimePoint>::min();

[[nodiscard]] constexpr Duration nanoseconds(std::int64_t n) noexcept { return n; }
[[nodiscard]] constexpr Duration microseconds(std::int64_t n) noexcept { return n * kMicrosecond; }
[[nodiscard]] constexpr Duration milliseconds(std::int64_t n) noexcept { return n * kMillisecond; }
[[nodiscard]] constexpr Duration seconds(std::int64_t n) noexcept { return n * kSecond; }

/// Scales a duration by a real factor (deadline-scale knobs of the
/// case-study pipelines).
[[nodiscard]] constexpr Duration scale_duration(Duration d, double factor) noexcept {
  return static_cast<Duration>(static_cast<double>(d) * factor);
}

/// Formats a time point or duration as a human-readable string, e.g.
/// "1.250ms" or "3.000s". Used by log messages and benchmark tables.
[[nodiscard]] std::string format_duration(Duration d);

namespace literals {
constexpr Duration operator""_ns(unsigned long long n) { return static_cast<Duration>(n); }
constexpr Duration operator""_us(unsigned long long n) { return static_cast<Duration>(n) * kMicrosecond; }
constexpr Duration operator""_ms(unsigned long long n) { return static_cast<Duration>(n) * kMillisecond; }
constexpr Duration operator""_s(unsigned long long n) { return static_cast<Duration>(n) * kSecond; }
}  // namespace literals

}  // namespace dear
