// Executor abstraction.
//
// The ara::com runtime dispatches incoming method calls and event handlers
// onto an executor. Two implementations exist:
//   * common::ThreadPoolExecutor — real OS threads (genuine scheduler
//     nondeterminism; used for the Figure 1 experiment),
//   * sim::SimExecutor — discrete-event simulation with seeded dispatch
//     jitter (modeled, reproducible nondeterminism; used for Figure 5).
#pragma once

#include <functional>

#include "common/time.hpp"

namespace dear::common {

class Executor {
 public:
  using Task = std::function<void()>;

  virtual ~Executor() = default;

  /// Runs `task` as soon as the executor gets to it.
  virtual void post(Task task) = 0;

  /// Runs `task` no earlier than `delay` from now.
  virtual void post_after(Duration delay, Task task) = 0;

  /// The executor's notion of current physical time.
  [[nodiscard]] virtual TimePoint now() const = 0;
};

}  // namespace dear::common
