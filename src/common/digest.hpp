// Order-sensitive digesting of observable pipeline outputs.
//
// Cross-pipeline digest comparison (same digest over SOME/IP and the
// local transport, over different platform seeds, across the brake and
// ACC case studies) is a core invariant of this repo, so every harness
// must mix values identically — hence one shared helper rather than
// per-pipeline copies.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace dear::common {

/// Folds `value` into `digest` (order-sensitive splitmix64 chaining).
inline void mix_digest(std::uint64_t& digest, std::uint64_t value) {
  std::uint64_t state = digest ^ (value + 0x9e3779b97f4a7c15ULL);
  digest = splitmix64(state);
}

}  // namespace dear::common
