// Recycled byte buffers for the wire paths.
//
// Every SOME/IP message used to allocate (at least) two fresh
// std::vector<uint8_t>s: one in the Writer while encoding and one for the
// decoded payload. BufferPool closes the loop: senders acquire() a buffer
// with warm capacity, the network layers release() the packet payload back
// once the receive handler returns, and a steady-state message stream
// touches the system allocator zero times (asserted by the
// allocation-count regression tests).
//
// Like SmallBlockPool the singleton is leaked so late releases from
// static-storage objects are safe, and the retained set is capped.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace dear::common {

class BufferPool {
 public:
  static BufferPool& instance() {
    static BufferPool* pool = new BufferPool();
    return *pool;
  }

  /// An empty buffer, with the capacity it retired with (plus a reserve
  /// hint for cold starts).
  [[nodiscard]] std::vector<std::uint8_t> acquire(std::size_t reserve_hint = 0) {
    std::vector<std::uint8_t> buffer;
    lock();
    if (!free_.empty()) {
      buffer = std::move(free_.back());
      free_.pop_back();
      unlock();
      buffer.clear();
    } else {
      unlock();
    }
    if (buffer.capacity() < reserve_hint) {
      buffer.reserve(reserve_hint);
    }
    return buffer;
  }

  void release(std::vector<std::uint8_t>&& buffer) noexcept {
    // The capacity ceiling keeps one-off giants (a large frame payload)
    // from pinning process memory for the pool's lifetime; together with
    // kMaxRetained it bounds the retained set to ~16 MiB worst case.
    if (buffer.capacity() == 0 || buffer.capacity() > kMaxRetainedCapacity) {
      return;  // let the vector free its storage here
    }
    lock();
    if (free_.size() < kMaxRetained) {
      free_.push_back(std::move(buffer));
      unlock();
      return;
    }
    unlock();
    // Over cap: let the vector free its storage here, outside the lock.
  }

 private:
  static constexpr std::size_t kMaxRetained = 1024;
  static constexpr std::size_t kMaxRetainedCapacity = 16 * 1024;

  BufferPool() { free_.reserve(kMaxRetained); }

  void lock() noexcept {
    while (busy_.test_and_set(std::memory_order_acquire)) {
    }
  }
  void unlock() noexcept { busy_.clear(std::memory_order_release); }

  std::atomic_flag busy_ = ATOMIC_FLAG_INIT;
  std::vector<std::vector<std::uint8_t>> free_;
};

}  // namespace dear::common
