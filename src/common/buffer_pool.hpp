// Recycled byte buffers for the wire paths, with per-thread caches.
//
// Every SOME/IP message used to allocate (at least) two fresh
// std::vector<uint8_t>s: one in the Writer while encoding and one for the
// decoded payload. BufferPool closes the loop: senders acquire() a buffer
// with warm capacity, the network layers release() the packet payload back
// once the receive handler returns, and a steady-state message stream
// touches the system allocator zero times (asserted by the
// allocation-count regression tests).
//
// acquire/release first hit a small thread-local stash (no atomics): a
// campaign worker's scenarios recycle wire buffers entirely within the
// worker thread, so concurrent scenarios share no cache lines. The stash
// refills from / flushes to the global spinlocked pool in batches, and a
// registered drain returns it when the thread exits. shelf_lock_count()
// counts global-pool lock acquisitions for the regression tests.
//
// Like SmallBlockPool the singleton is leaked so late releases from
// static-storage objects are safe, and the retained set is capped.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/thread_cache.hpp"
#include "obs/obs.hpp"

namespace dear::common {

class BufferPool {
 public:
  static BufferPool& instance() {
    static BufferPool* pool = new BufferPool();
    return *pool;
  }

  /// An empty buffer, with the capacity it retired with (plus a reserve
  /// hint for cold starts).
  [[nodiscard]] std::vector<std::uint8_t> acquire(std::size_t reserve_hint = 0) {
    std::vector<std::uint8_t> buffer;
    if (ThreadCache* cache = ThreadCacheSlot<BufferPool>::get()) {
      if (cache->buffers.empty()) {
        refill(*cache);
      }
      if (!cache->buffers.empty()) {
        buffer = std::move(cache->buffers.back());
        cache->buffers.pop_back();
        buffer.clear();
      }
    } else {
      buffer = acquire_global();
    }
    if (buffer.capacity() < reserve_hint) {
      buffer.reserve(reserve_hint);
    }
    return buffer;
  }

  void release(std::vector<std::uint8_t>&& buffer) noexcept {
    // The capacity ceiling keeps one-off giants (a large frame payload)
    // from pinning process memory for the pool's lifetime; together with
    // kMaxRetained it bounds the retained set to ~16 MiB worst case.
    if (buffer.capacity() == 0 || buffer.capacity() > kMaxRetainedCapacity) {
      return;  // let the vector free its storage here
    }
    if (ThreadCache* cache = ThreadCacheSlot<BufferPool>::get()) {
      if (cache->buffers.size() >= kThreadCacheBuffers) {
        flush(*cache, kThreadCacheBuffers / 2);
      }
      cache->buffers.push_back(std::move(buffer));
      return;
    }
    release_global(std::move(buffer));
  }

  /// Global-pool lock acquisitions since process start (slow path only).
  /// Thin read over the registry-backed metric (`pool.buffer.shelf_locks`
  /// in snapshots).
  [[nodiscard]] std::uint64_t shelf_lock_count() const {
    return obs::Registry::instance().counter_total(obs::Counter::kPoolBufferShelfLocks);
  }

  // --- thread-cache plumbing (ThreadCacheSlot owner contract) ------------------

  struct ThreadCache {
    ThreadCache() { buffers.reserve(kThreadCacheBuffers); }
    std::vector<std::vector<std::uint8_t>> buffers;
  };

  static void drain_thread_cache(ThreadCache& cache) noexcept {
    instance().flush(cache, 0);
  }

 private:
  static constexpr std::size_t kMaxRetained = 1024;
  static constexpr std::size_t kMaxRetainedCapacity = 16 * 1024;
  /// Buffers stashed per thread — sized for the peak in-flight packet set
  /// of one DES scenario (sim-network queues hold dozens of undelivered
  /// payloads), so a campaign worker's steady state never reaches the
  /// global pool (asserted by the alloc-count shelf-lock tests).
  static constexpr std::size_t kThreadCacheBuffers = 128;
  /// Buffers moved per global-pool interaction.
  static constexpr std::size_t kRefillBatch = 32;

  BufferPool() { free_.reserve(kMaxRetained); }

  void lock() noexcept {
    obs::count_always(obs::Counter::kPoolBufferShelfLocks);
    while (busy_.test_and_set(std::memory_order_acquire)) {
    }
  }
  void unlock() noexcept { busy_.clear(std::memory_order_release); }

  void refill(ThreadCache& cache) noexcept {
    obs::count_always(obs::Counter::kPoolBufferRefills);
    lock();
    for (std::size_t i = 0; i < kRefillBatch && !free_.empty(); ++i) {
      cache.buffers.push_back(std::move(free_.back()));
      free_.pop_back();
    }
    unlock();
  }

  /// Flushes the stash down to `keep` buffers (one lock); buffers over the
  /// global cap are freed outside the lock.
  void flush(ThreadCache& cache, std::size_t keep) noexcept {
    obs::count_always(obs::Counter::kPoolBufferFlushes);
    lock();
    while (cache.buffers.size() > keep && free_.size() < kMaxRetained) {
      free_.push_back(std::move(cache.buffers.back()));
      cache.buffers.pop_back();
    }
    unlock();
    while (cache.buffers.size() > keep) {
      cache.buffers.pop_back();  // over cap: storage freed here
    }
  }

  [[nodiscard]] std::vector<std::uint8_t> acquire_global() noexcept {
    std::vector<std::uint8_t> buffer;
    lock();
    if (!free_.empty()) {
      buffer = std::move(free_.back());
      free_.pop_back();
      unlock();
      buffer.clear();
      return buffer;
    }
    unlock();
    return buffer;
  }

  void release_global(std::vector<std::uint8_t>&& buffer) noexcept {
    lock();
    if (free_.size() < kMaxRetained) {
      free_.push_back(std::move(buffer));
      unlock();
      return;
    }
    unlock();
    // Over cap: let the vector free its storage here, outside the lock.
  }

  std::atomic_flag busy_ = ATOMIC_FLAG_INIT;
  std::vector<std::vector<std::uint8_t>> free_;
};

/// RAII custody of an in-flight pooled buffer: releases the payload back
/// to the BufferPool when destroyed still armed, so a delivery event that
/// dies unrun (kernel or executor torn down mid-flight at scenario end)
/// cannot bleed buffers out of the pool's steady state. take() hands the
/// payload to the receive path and stands the keeper down.
///
/// Copyable only because std::function demands it of its captures; a copy
/// duplicates the bytes and owns its own release (no copy happens on the
/// send paths — handlers are constructed from rvalues).
class PooledBuffer {
 public:
  explicit PooledBuffer(std::vector<std::uint8_t>&& payload) noexcept
      : payload_(std::move(payload)) {}
  PooledBuffer(PooledBuffer&& other) noexcept
      : payload_(std::move(other.payload_)), armed_(other.armed_) {
    other.armed_ = false;
  }
  PooledBuffer(const PooledBuffer& other) : payload_(other.payload_), armed_(other.armed_) {}
  PooledBuffer& operator=(PooledBuffer&&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;
  ~PooledBuffer() {
    if (armed_) {
      BufferPool::instance().release(std::move(payload_));
    }
  }

  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    armed_ = false;
    return std::move(payload_);
  }

 private:
  std::vector<std::uint8_t> payload_;
  bool armed_{true};
};

}  // namespace dear::common
