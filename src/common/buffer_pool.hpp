// Recycled byte buffers for the wire paths, with per-thread caches.
//
// Every SOME/IP message used to allocate (at least) two fresh
// std::vector<uint8_t>s: one in the Writer while encoding and one for the
// decoded payload. BufferPool closes the loop: senders acquire() a buffer
// with warm capacity, the network layers release() the packet payload back
// once the receive handler returns, and a steady-state message stream
// touches the system allocator zero times (asserted by the
// allocation-count regression tests).
//
// acquire/release first hit a small thread-local stash (no atomics): a
// campaign worker's scenarios recycle wire buffers entirely within the
// worker thread, so concurrent scenarios share no cache lines. The stash
// refills from / flushes to the global spinlocked pool in batches, and a
// registered drain returns it when the thread exits. shelf_lock_count()
// counts global-pool lock acquisitions for the regression tests.
//
// Like SmallBlockPool the singleton is leaked so late releases from
// static-storage objects are safe, and the retained set is capped — by a
// byte budget, not a buffer count, so the cap means the same thing for a
// shelf of 256-byte wire buffers and a shelf of megabyte slabs.
//
// Large payloads (camera frames, point clouds) do not travel as vectors at
// all: loan() hands out a refcounted LoanedBuffer backed by a size-classed
// slab shelf (64 KB - 4 MB). The producer writes the slab, publishes it
// immutable, and every consumer retains/releases the same storage; the
// slab returns to its shelf on the last release. This is the zero-copy
// sensor data plane: the transport bindings move the handle, never the
// bytes (bench/suite_dataplane.cpp gates the GB/s and the zero-copy
// claim).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_cache.hpp"
#include "obs/obs.hpp"

namespace dear::common {

namespace detail {

/// Control block + storage of one loaned slab. Producers and consumers
/// synchronize through the channel that carries the handle (queue push /
/// subscriber dispatch), so `size`/`published` need no atomicity — only
/// the refcount is shared-mutable after publication.
struct Slab {
  explicit Slab(std::size_t bytes) : storage(new std::uint8_t[bytes]), capacity(bytes) {}

  std::unique_ptr<std::uint8_t[]> storage;
  std::size_t capacity{0};
  /// Payload bytes, fixed at publish().
  std::size_t size{0};
  bool published{false};
  /// Size-class index, or -1 for an oversize slab that is never shelved.
  int shelf{-1};
  std::atomic<std::uint32_t> refs{1};
  /// Shelf free-list link (valid only while retained by the pool).
  Slab* next{nullptr};
};

}  // namespace detail

class LoanedBuffer;

class BufferPool {
 public:
  static BufferPool& instance() {
    static BufferPool* pool = new BufferPool();
    return *pool;
  }

  /// An empty buffer, with the capacity it retired with (plus a reserve
  /// hint for cold starts).
  [[nodiscard]] std::vector<std::uint8_t> acquire(std::size_t reserve_hint = 0) {
    std::vector<std::uint8_t> buffer;
    if (ThreadCache* cache = ThreadCacheSlot<BufferPool>::get()) {
      if (cache->buffers.empty()) {
        refill(*cache);
      }
      if (!cache->buffers.empty()) {
        buffer = std::move(cache->buffers.back());
        cache->buffers.pop_back();
        buffer.clear();
      }
    } else {
      buffer = acquire_global();
    }
    if (buffer.capacity() < reserve_hint) {
      buffer.reserve(reserve_hint);
    }
    return buffer;
  }

  void release(std::vector<std::uint8_t>&& buffer) noexcept {
    // The capacity ceiling keeps one-off giants (a large frame payload)
    // from pinning process memory for the pool's lifetime; anything larger
    // belongs on the loaned-slab plane (loan() below). The global retained
    // set is additionally bounded by the kMaxRetainedBytes budget.
    if (buffer.capacity() == 0 || buffer.capacity() > kMaxRetainedCapacity) {
      return;  // let the vector free its storage here
    }
    if (ThreadCache* cache = ThreadCacheSlot<BufferPool>::get()) {
      if (cache->buffers.size() >= kThreadCacheBuffers) {
        flush(*cache, kThreadCacheBuffers / 2);
      }
      cache->buffers.push_back(std::move(buffer));
      return;
    }
    release_global(std::move(buffer));
  }

  /// Global-pool lock acquisitions since process start (slow path only).
  /// Thin read over the registry-backed metric (`pool.buffer.shelf_locks`
  /// in snapshots).
  [[nodiscard]] std::uint64_t shelf_lock_count() const {
    return obs::Registry::instance().counter_total(obs::Counter::kPoolBufferShelfLocks);
  }

  // --- loaned large-slab data plane --------------------------------------------

  /// Slab size classes served by the shelves; loans round up to the
  /// smallest class that fits, anything beyond the largest class is
  /// allocated unpooled and freed on last release.
  static constexpr std::size_t kSlabClassBytes[] = {64 * 1024, 256 * 1024, 1024 * 1024,
                                                    4 * 1024 * 1024};
  static constexpr std::size_t kSlabClassCount =
      sizeof(kSlabClassBytes) / sizeof(kSlabClassBytes[0]);
  /// Byte budget across every retained slab. A count cap would be
  /// meaningless here — sixteen retained 4 MiB slabs already cost 64 MiB —
  /// so the shelves retain bytes, not buffers (regression-pinned by the
  /// buffer-pool budget tests).
  static constexpr std::size_t kMaxRetainedSlabBytes = 32 * 1024 * 1024;

  /// Loans a writable slab of at least `bytes` capacity (defined after
  /// LoanedBuffer below). Steady state is allocation-free: the slab comes
  /// off its size-class shelf and returns there on the last release.
  [[nodiscard]] inline LoanedBuffer loan(std::size_t bytes);

  /// Bytes currently parked on the slab shelves (approximate under
  /// concurrent traffic; exact when quiescent).
  [[nodiscard]] std::size_t retained_slab_bytes() const noexcept {
    return retained_slab_bytes_.load(std::memory_order_relaxed);
  }

  /// Bytes currently retained on the small-buffer global shelf.
  [[nodiscard]] std::size_t retained_bytes() const noexcept {
    return free_bytes_.load(std::memory_order_relaxed);
  }

  /// Called by LoanedBuffer when the last reference drops: shelve the slab
  /// (within the byte budget) or free it.
  void release_slab(detail::Slab* slab) noexcept {
    if (slab->shelf >= 0 &&
        retained_slab_bytes_.load(std::memory_order_relaxed) + slab->capacity <=
            kMaxRetainedSlabBytes) {
      retained_slab_bytes_.fetch_add(slab->capacity, std::memory_order_relaxed);
      SlabShelf& shelf = slab_shelves_[static_cast<std::size_t>(slab->shelf)];
      lock_slab_shelf(shelf);
      slab->next = shelf.head;
      shelf.head = slab;
      unlock_slab_shelf(shelf);
      return;
    }
    delete slab;  // oversize, or the shelves are at their byte budget
  }

  // --- thread-cache plumbing (ThreadCacheSlot owner contract) ------------------

  struct ThreadCache {
    ThreadCache() { buffers.reserve(kThreadCacheBuffers); }
    std::vector<std::vector<std::uint8_t>> buffers;
  };

  static void drain_thread_cache(ThreadCache& cache) noexcept {
    instance().flush(cache, 0);
  }

 public:
  /// Per-buffer capacity ceiling on the small (vector) plane.
  static constexpr std::size_t kMaxRetainedCapacity = 16 * 1024;
  /// Byte budget for the small-buffer global shelf — the old count cap
  /// (1024 buffers) implicitly assumed small buffers; this makes the
  /// worst case it allowed (1024 x 16 KiB = 16 MiB) the explicit bound
  /// for any capacity mix.
  static constexpr std::size_t kMaxRetainedBytes = 16 * 1024 * 1024;

 private:
  /// Buffers stashed per thread — sized for the peak in-flight packet set
  /// of one DES scenario (sim-network queues hold dozens of undelivered
  /// payloads), so a campaign worker's steady state never reaches the
  /// global pool (asserted by the alloc-count shelf-lock tests).
  static constexpr std::size_t kThreadCacheBuffers = 128;
  /// Buffers moved per global-pool interaction.
  static constexpr std::size_t kRefillBatch = 32;

  BufferPool() { free_.reserve(1024); }

  void lock() noexcept {
    obs::count_always(obs::Counter::kPoolBufferShelfLocks);
    while (busy_.test_and_set(std::memory_order_acquire)) {
    }
  }
  void unlock() noexcept { busy_.clear(std::memory_order_release); }

  void refill(ThreadCache& cache) noexcept {
    obs::count_always(obs::Counter::kPoolBufferRefills);
    lock();
    for (std::size_t i = 0; i < kRefillBatch && !free_.empty(); ++i) {
      free_bytes_.fetch_sub(free_.back().capacity(), std::memory_order_relaxed);
      cache.buffers.push_back(std::move(free_.back()));
      free_.pop_back();
    }
    unlock();
  }

  /// Flushes the stash down to `keep` buffers (one lock); buffers over the
  /// global byte budget are freed outside the lock.
  void flush(ThreadCache& cache, std::size_t keep) noexcept {
    obs::count_always(obs::Counter::kPoolBufferFlushes);
    lock();
    while (cache.buffers.size() > keep &&
           free_bytes_.load(std::memory_order_relaxed) + cache.buffers.back().capacity() <=
               kMaxRetainedBytes) {
      free_bytes_.fetch_add(cache.buffers.back().capacity(), std::memory_order_relaxed);
      free_.push_back(std::move(cache.buffers.back()));
      cache.buffers.pop_back();
    }
    unlock();
    while (cache.buffers.size() > keep) {
      cache.buffers.pop_back();  // over budget: storage freed here
    }
  }

  [[nodiscard]] std::vector<std::uint8_t> acquire_global() noexcept {
    std::vector<std::uint8_t> buffer;
    lock();
    if (!free_.empty()) {
      free_bytes_.fetch_sub(free_.back().capacity(), std::memory_order_relaxed);
      buffer = std::move(free_.back());
      free_.pop_back();
      unlock();
      buffer.clear();
      return buffer;
    }
    unlock();
    return buffer;
  }

  void release_global(std::vector<std::uint8_t>&& buffer) noexcept {
    lock();
    if (free_bytes_.load(std::memory_order_relaxed) + buffer.capacity() <= kMaxRetainedBytes) {
      free_bytes_.fetch_add(buffer.capacity(), std::memory_order_relaxed);
      free_.push_back(std::move(buffer));
      unlock();
      return;
    }
    unlock();
    // Over budget: let the vector free its storage here, outside the lock.
  }

  // --- slab machinery ----------------------------------------------------------

  struct SlabShelf {
    std::atomic_flag busy = ATOMIC_FLAG_INIT;
    detail::Slab* head{nullptr};
  };

  static void lock_slab_shelf(SlabShelf& shelf) noexcept {
    obs::count_always(obs::Counter::kPoolBufferShelfLocks);
    while (shelf.busy.test_and_set(std::memory_order_acquire)) {
    }
  }
  static void unlock_slab_shelf(SlabShelf& shelf) noexcept {
    shelf.busy.clear(std::memory_order_release);
  }

  /// Smallest size class holding `bytes`, or kSlabClassCount if oversize.
  [[nodiscard]] static std::size_t slab_class_for(std::size_t bytes) noexcept {
    for (std::size_t cls = 0; cls < kSlabClassCount; ++cls) {
      if (bytes <= kSlabClassBytes[cls]) {
        return cls;
      }
    }
    return kSlabClassCount;
  }

  [[nodiscard]] detail::Slab* acquire_slab(std::size_t bytes) {
    obs::count_always(obs::Counter::kPoolSlabLoans);
    const std::size_t cls = slab_class_for(bytes);
    if (cls < kSlabClassCount) {
      SlabShelf& shelf = slab_shelves_[cls];
      lock_slab_shelf(shelf);
      detail::Slab* slab = shelf.head;
      if (slab != nullptr) {
        shelf.head = slab->next;
      }
      unlock_slab_shelf(shelf);
      if (slab != nullptr) {
        retained_slab_bytes_.fetch_sub(slab->capacity, std::memory_order_relaxed);
        obs::count_always(obs::Counter::kPoolSlabShelfHits);
        slab->next = nullptr;
        slab->size = 0;
        slab->published = false;
        slab->refs.store(1, std::memory_order_relaxed);
        return slab;
      }
      obs::count_always(obs::Counter::kPoolSlabAllocs);
      auto* fresh = new detail::Slab(kSlabClassBytes[cls]);
      fresh->shelf = static_cast<int>(cls);
      return fresh;
    }
    obs::count_always(obs::Counter::kPoolSlabAllocs);
    return new detail::Slab(bytes);  // oversize: shelf stays -1, freed on release
  }

  std::atomic_flag busy_ = ATOMIC_FLAG_INIT;
  std::vector<std::vector<std::uint8_t>> free_;
  /// Bytes parked in free_ (updated under lock(); read lock-free).
  std::atomic<std::size_t> free_bytes_{0};
  SlabShelf slab_shelves_[kSlabClassCount];
  /// Bytes parked across the slab shelves (racy-benign budget check: a
  /// concurrent release may briefly overshoot by one slab, never unbounded).
  std::atomic<std::size_t> retained_slab_bytes_{0};
};

/// Refcounted handle to one pooled slab — the unit of the zero-copy sensor
/// data plane. The producer loan()s a slab, writes up to capacity() bytes,
/// then publish()es it immutable; after that any number of consumers may
/// copy the handle (copy = retain, move = transfer) and read data()/size().
/// The slab returns to its shelf when the last handle releases, so a
/// steady-state frame stream allocates nothing.
class LoanedBuffer {
 public:
  LoanedBuffer() noexcept = default;
  LoanedBuffer(const LoanedBuffer& other) noexcept : slab_(other.slab_) {
    if (slab_ != nullptr) {
      slab_->refs.fetch_add(1, std::memory_order_relaxed);
    }
  }
  LoanedBuffer(LoanedBuffer&& other) noexcept : slab_(other.slab_) { other.slab_ = nullptr; }
  LoanedBuffer& operator=(const LoanedBuffer& other) noexcept {
    if (this != &other) {
      if (other.slab_ != nullptr) {
        other.slab_->refs.fetch_add(1, std::memory_order_relaxed);
      }
      reset();
      slab_ = other.slab_;
    }
    return *this;
  }
  LoanedBuffer& operator=(LoanedBuffer&& other) noexcept {
    if (this != &other) {
      reset();
      slab_ = other.slab_;
      other.slab_ = nullptr;
    }
    return *this;
  }
  ~LoanedBuffer() { reset(); }

  /// Drops this reference; the last one returns the slab to its shelf.
  void reset() noexcept {
    if (slab_ != nullptr && slab_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      BufferPool::instance().release_slab(slab_);
    }
    slab_ = nullptr;
  }

  [[nodiscard]] explicit operator bool() const noexcept { return slab_ != nullptr; }
  [[nodiscard]] std::uint8_t* data() noexcept { return slab_->storage.get(); }
  [[nodiscard]] const std::uint8_t* data() const noexcept { return slab_->storage.get(); }
  /// Payload bytes (0 until publish()).
  [[nodiscard]] std::size_t size() const noexcept { return slab_ != nullptr ? slab_->size : 0; }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return slab_ != nullptr ? slab_->capacity : 0;
  }

  /// Freezes the payload at `bytes` (clamped to capacity). After publish
  /// the bytes are immutable by contract — consumers read the same storage
  /// the producer wrote, so a post-publish write would race every reader.
  void publish(std::size_t bytes) noexcept {
    if (slab_ == nullptr) {
      return;
    }
    slab_->size = bytes < slab_->capacity ? bytes : slab_->capacity;
    slab_->published = true;
    obs::count_always(obs::Counter::kPoolSlabPublishes);
  }
  [[nodiscard]] bool published() const noexcept {
    return slab_ != nullptr && slab_->published;
  }

  /// Outstanding handles on the slab (relaxed read — exact only when the
  /// caller knows no concurrent retain/release is in flight).
  [[nodiscard]] std::uint32_t use_count() const noexcept {
    return slab_ != nullptr ? slab_->refs.load(std::memory_order_relaxed) : 0;
  }

 private:
  friend class BufferPool;
  explicit LoanedBuffer(detail::Slab* slab) noexcept : slab_(slab) {}

  detail::Slab* slab_{nullptr};
};

inline LoanedBuffer BufferPool::loan(std::size_t bytes) { return LoanedBuffer(acquire_slab(bytes)); }

/// RAII custody of an in-flight pooled buffer: releases the payload back
/// to the BufferPool when destroyed still armed, so a delivery event that
/// dies unrun (kernel or executor torn down mid-flight at scenario end)
/// cannot bleed buffers out of the pool's steady state. take() hands the
/// payload to the receive path and stands the keeper down.
///
/// Copyable only because std::function demands it of its captures; a copy
/// duplicates the bytes and owns its own release (no copy happens on the
/// send paths — handlers are constructed from rvalues).
class PooledBuffer {
 public:
  explicit PooledBuffer(std::vector<std::uint8_t>&& payload) noexcept
      : payload_(std::move(payload)) {}
  PooledBuffer(PooledBuffer&& other) noexcept
      : payload_(std::move(other.payload_)), armed_(other.armed_) {
    other.armed_ = false;
  }
  PooledBuffer(const PooledBuffer& other) : payload_(other.payload_), armed_(other.armed_) {}
  PooledBuffer& operator=(PooledBuffer&&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;
  ~PooledBuffer() {
    if (armed_) {
      BufferPool::instance().release(std::move(payload_));
    }
  }

  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    armed_ = false;
    return std::move(payload_);
  }

 private:
  std::vector<std::uint8_t> payload_;
  bool armed_{true};
};

}  // namespace dear::common
