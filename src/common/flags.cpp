#include "common/flags.hpp"

#include <cstdlib>

namespace dear::common {

Flags::Flags(int argc, const char* const* argv) {
  if (argc > 0) {
    program_ = argv[0];
  }
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.emplace_back(arg);
      continue;
    }
    const std::string_view body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string_view::npos) {
      values_.emplace(std::string(body.substr(0, eq)), std::string(body.substr(eq + 1)));
      continue;
    }
    // `--name value` when the next token is not itself a flag; else boolean.
    if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      values_.emplace(std::string(body), argv[i + 1]);
      ++i;
    } else {
      values_.emplace(std::string(body), "true");
    }
  }
}

bool Flags::has(std::string_view name) const { return values_.find(name) != values_.end(); }

std::vector<std::string> Flags::names() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [name, value] : values_) {
    out.push_back(name);
  }
  return out;
}

std::string Flags::get_string(std::string_view name, std::string_view fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? std::string(fallback) : it->second;
}

std::int64_t Flags::get_int(std::string_view name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(std::string_view name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(std::string_view name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  if (const char* env = std::getenv(name); env != nullptr && *env != '\0') {
    return std::strtoll(env, nullptr, 10);
  }
  return fallback;
}

}  // namespace dear::common
