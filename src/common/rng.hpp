// Seedable random number generation for the simulation models.
//
// Every stochastic choice in the DES (phase offsets, scheduling jitter,
// network latency, dispatch interleaving) draws from a named stream derived
// from a root seed, so entire experiments are bit-reproducible while still
// modeling nondeterministic platforms. The generator is xoshiro256**, seeded
// through splitmix64 as its authors recommend.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/time.hpp"

namespace dear::common {

/// splitmix64 step; also used for hashing stream names into sub-seeds.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// FNV-1a, used to derive independent sub-streams from string names.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view text) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      word = splitmix64(sm);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~static_cast<result_type>(0); }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept;

  /// Uniform duration in [lo, hi] inclusive.
  [[nodiscard]] Duration uniform_duration(Duration lo, Duration hi) noexcept;

  /// Standard normal via Box-Muller (no cached spare; stateless draws).
  [[nodiscard]] double normal() noexcept;

  /// Normal with the given mean and standard deviation, truncated to
  /// [mean - 4*sigma, mean + 4*sigma] to keep models bounded.
  [[nodiscard]] double normal(double mean, double sigma) noexcept;

  /// Bernoulli trial with probability p of returning true.
  [[nodiscard]] bool chance(double p) noexcept { return uniform01() < p; }

  /// Derives an independent generator for a named sub-stream. Streams with
  /// different names (or parents with different seeds) are decorrelated.
  [[nodiscard]] Rng stream(std::string_view name) const noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace dear::common
