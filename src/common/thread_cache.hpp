// Thread-local cache slot with a registered exit drain.
//
// Both allocation pools (SmallBlockPool, BufferPool) keep a per-thread
// magazine so their steady-state fast paths never touch the shared,
// spinlocked shelves. This helper owns the thread-local plumbing they
// share:
//
//   * the cache pointer itself is a POD thread_local (no destructor), so
//     it stays readable even during thread teardown — a value released by
//     a static-storage object after the cache is gone simply sees nullptr
//     and takes the pool's locked fallback path;
//   * the drain is registered as a separate thread_local RAII object the
//     first time the cache is created: when the thread exits (campaign
//     workers, scheduler workers), the owner's drain hook returns every
//     cached block to the global shelves instead of stranding them;
//   * after the drain has run the slot is marked retired — late calls on
//     that thread never resurrect a cache whose reaper is already gone.
//
// Owner contract: `Owner::ThreadCache` is default-constructible and
// `Owner::drain_thread_cache(ThreadCache&)` returns its contents to the
// owner's global state (called exactly once per thread, at exit).
#pragma once

namespace dear::common {

template <typename Owner>
class ThreadCacheSlot {
 public:
  using Cache = typename Owner::ThreadCache;

  /// The calling thread's cache, created on first use; nullptr once the
  /// thread is past its drain (callers fall back to the locked path).
  [[nodiscard]] static Cache* get() {
    if (cache_ == nullptr) {
      if (retired_) {
        return nullptr;
      }
      cache_ = new Cache();
      thread_local Reaper reaper;
      (void)reaper;
    }
    return cache_;
  }

 private:
  struct Reaper {
    ~Reaper() {
      if (cache_ != nullptr) {
        Owner::drain_thread_cache(*cache_);
        delete cache_;
        cache_ = nullptr;
      }
      retired_ = true;
    }
  };

  static thread_local Cache* cache_;
  static thread_local bool retired_;
};

template <typename Owner>
thread_local typename ThreadCacheSlot<Owner>::Cache* ThreadCacheSlot<Owner>::cache_ = nullptr;

template <typename Owner>
thread_local bool ThreadCacheSlot<Owner>::retired_ = false;

}  // namespace dear::common
