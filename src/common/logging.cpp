#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace dear::log {

namespace {

std::atomic<Level> g_threshold{Level::kWarn};
std::mutex g_sink_mutex;

[[nodiscard]] const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::kTrace:
      return "TRACE";
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO";
    case Level::kWarn:
      return "WARN";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF";
  }
  return "?";
}

/// Reads DEAR_LOG_LEVEL from the environment once at startup.
Level initial_threshold() noexcept {
  if (const char* env = std::getenv("DEAR_LOG_LEVEL"); env != nullptr) {
    return parse_level(env);
  }
  return Level::kWarn;
}

struct ThresholdInit {
  ThresholdInit() { g_threshold.store(initial_threshold(), std::memory_order_relaxed); }
};
const ThresholdInit g_threshold_init{};

}  // namespace

Level threshold() noexcept { return g_threshold.load(std::memory_order_relaxed); }

void set_threshold(Level level) noexcept { g_threshold.store(level, std::memory_order_relaxed); }

Level parse_level(std::string_view text) noexcept {
  if (text == "trace") return Level::kTrace;
  if (text == "debug") return Level::kDebug;
  if (text == "info") return Level::kInfo;
  if (text == "warn") return Level::kWarn;
  if (text == "error") return Level::kError;
  if (text == "off") return Level::kOff;
  return Level::kInfo;
}

namespace detail {

void emit(Level level, std::string_view component, const std::string& message) {
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[%s] %.*s: %s\n", level_name(level), static_cast<int>(component.size()),
               component.data(), message.c_str());
}

}  // namespace detail

}  // namespace dear::log
