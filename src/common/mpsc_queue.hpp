// Unbounded lock-free multi-producer single-consumer queue (Vyukov's
// intrusive MPSC design, node-per-element variant).
//
// push() is wait-free for any number of producers: one atomic exchange plus
// one release store. pop() must be called by one consumer at a time (the
// in-process transport serializes its drain loop with a mutex, which also
// gives the deposit→handler pairing the same race-freedom as the SOME/IP
// receive path).
//
// The design has one visible quirk: between a producer's exchange and its
// link store, pop() can transiently report empty even though a later push
// already completed. Callers that drain after their own push (as the local
// transport does) never strand an element: the producer whose link closes
// the chain drains everything reachable through it.
// Nodes come from the SmallBlockPool: a steady-state message stream pushes
// and pops with zero system-allocator traffic (the data-plane alloc-count
// tests assert this through the local transport).
#pragma once

#include <atomic>
#include <optional>
#include <utility>

#include "common/pool_allocator.hpp"

namespace dear::common {

template <typename T>
class MpscQueue {
 public:
  MpscQueue() : head_(&stub_), tail_(&stub_) {}

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  ~MpscQueue() {
    // Single-threaded at destruction: walk the chain and free live nodes.
    Node* node = tail_;
    while (node != nullptr) {
      Node* next = node->next.load(std::memory_order_relaxed);
      if (node != &stub_) {
        delete node;
      }
      node = next;
    }
  }

  /// Producer side; safe from any thread.
  void push(T value) {
    Node* node = new Node(std::move(value));
    push_node(node);
  }

  /// Consumer side; callers must ensure mutual exclusion between pops.
  /// Returns nullopt when the queue is empty (or transiently appears so,
  /// see the header comment).
  [[nodiscard]] std::optional<T> pop() {
    Node* tail = tail_;
    Node* next = tail->next.load(std::memory_order_acquire);
    if (tail == &stub_) {
      if (next == nullptr) {
        return std::nullopt;  // empty
      }
      // Skip past the stub to the first real node.
      tail_ = next;
      tail = next;
      next = next->next.load(std::memory_order_acquire);
    }
    if (next != nullptr) {
      tail_ = next;
      return take(tail);
    }
    if (tail != head_.load(std::memory_order_acquire)) {
      // A producer finished its exchange but not its link store yet; the
      // element becomes visible once that store lands.
      return std::nullopt;
    }
    // `tail` is the sole node: re-insert the stub behind it so the chain
    // stays closed, then consume it.
    stub_.next.store(nullptr, std::memory_order_relaxed);
    push_node(&stub_);
    next = tail->next.load(std::memory_order_acquire);
    if (next == nullptr) {
      return std::nullopt;  // another producer slipped in between; retry later
    }
    tail_ = next;
    return take(tail);
  }

  /// Consumer-side emptiness probe (same transient caveat as pop()).
  [[nodiscard]] bool empty() const {
    return tail_ == &stub_ && tail_->next.load(std::memory_order_acquire) == nullptr;
  }

 private:
  struct Node {
    Node() = default;
    explicit Node(T v) : value(std::move(v)) {}

    // Pool-backed when the node fits a small-block class; stub_ is a plain
    // member and never passes through these.
    static void* operator new(std::size_t bytes) {
      return SmallBlockPool::instance().allocate(bytes);
    }
    static void operator delete(void* pointer, std::size_t bytes) noexcept {
      SmallBlockPool::instance().deallocate(pointer, bytes);
    }

    std::atomic<Node*> next{nullptr};
    T value{};
  };

  void push_node(Node* node) {
    Node* prev = head_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
  }

  [[nodiscard]] T take(Node* node) {
    T value = std::move(node->value);
    delete node;
    return value;
  }

  std::atomic<Node*> head_;  // producers exchange onto this end
  Node* tail_;               // consumer-owned
  Node stub_;
};

}  // namespace dear::common
