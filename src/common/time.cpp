#include "common/time.hpp"

#include <cinttypes>
#include <cstdio>

namespace dear {

std::string format_duration(Duration d) {
  char buffer[64];
  const char* sign = d < 0 ? "-" : "";
  const std::int64_t abs = d < 0 ? -d : d;
  if (abs >= kSecond) {
    std::snprintf(buffer, sizeof(buffer), "%s%.3fs", sign,
                  static_cast<double>(abs) / static_cast<double>(kSecond));
  } else if (abs >= kMillisecond) {
    std::snprintf(buffer, sizeof(buffer), "%s%.3fms", sign,
                  static_cast<double>(abs) / static_cast<double>(kMillisecond));
  } else if (abs >= kMicrosecond) {
    std::snprintf(buffer, sizeof(buffer), "%s%.3fus", sign,
                  static_cast<double>(abs) / static_cast<double>(kMicrosecond));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%s%" PRId64 "ns", sign, abs);
  }
  return buffer;
}

}  // namespace dear
