// Declarative command-line interface shared by the examples and the
// report-style benchmark harnesses.
//
// common::Flags (flags.hpp) is the raw token parser; Cli layers a typed
// option registry on top: every harness declares its options once (name,
// default, help text) and gets --help output, unknown-flag rejection and
// typed access for free — replacing the per-example pattern of
// undocumented get_int() calls whose defaults lived only in a comment.
//
//   common::Cli cli("acc_demo", "Runs the DEAR adaptive cruise chain.");
//   cli.add_int("scans", 5000, "radar scans to simulate");
//   cli.add_flag("local-transport", "deploy over the in-process binding");
//   if (!cli.parse(argc, argv)) return cli.exit_code();
//   const auto scans = cli.get_int("scans");
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/flags.hpp"

namespace dear::common {

class Cli {
 public:
  Cli(std::string program, std::string summary)
      : program_(std::move(program)), summary_(std::move(summary)) {}

  // --- option registration (before parse) -----------------------------------
  void add_int(std::string name, std::int64_t fallback, std::string help);
  void add_double(std::string name, double fallback, std::string help);
  void add_string(std::string name, std::string fallback, std::string help);
  /// Boolean option, false unless passed (--name or --name=true).
  void add_flag(std::string name, std::string help);

  /// Parses argv. Returns false when the harness should exit instead of
  /// running: --help was requested (exit_code 0) or an unknown flag was
  /// passed (usage printed to stderr, exit_code 1).
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] int exit_code() const noexcept { return exit_code_; }

  // --- typed access (after parse) -------------------------------------------
  [[nodiscard]] std::int64_t get_int(std::string_view name) const;
  [[nodiscard]] double get_double(std::string_view name) const;
  [[nodiscard]] std::string get_string(std::string_view name) const;
  [[nodiscard]] bool get_flag(std::string_view name) const;
  /// True when the user passed the option explicitly.
  [[nodiscard]] bool was_set(std::string_view name) const;

  /// The generated usage text (what --help prints).
  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind : std::uint8_t { kInt, kDouble, kString, kBool };

  struct Option {
    std::string name;
    Kind kind;
    std::string fallback;
    std::string help;
  };

  [[nodiscard]] const Option* find(std::string_view name) const noexcept;
  const Option& require(std::string_view name, Kind kind) const;

  std::string program_;
  std::string summary_;
  std::vector<Option> options_;
  Flags flags_{0, nullptr};
  bool parsed_{false};
  int exit_code_{0};
};

}  // namespace dear::common
