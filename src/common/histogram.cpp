#include "common/histogram.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace dear::common {

std::uint64_t CategoricalHistogram::total() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& [value, count] : counts_) {
    sum += count;
  }
  return sum;
}

double CategoricalHistogram::probability(std::int64_t value) const {
  const std::uint64_t sum = total();
  if (sum == 0) {
    return 0.0;
  }
  return static_cast<double>(count(value)) / static_cast<double>(sum);
}

std::vector<std::int64_t> CategoricalHistogram::values() const {
  std::vector<std::int64_t> result;
  result.reserve(counts_.size());
  for (const auto& [value, count] : counts_) {
    result.push_back(value);
  }
  return result;
}

std::string CategoricalHistogram::to_ascii(int bar_width) const {
  std::string out;
  const std::uint64_t sum = total();
  if (sum == 0) {
    return "(empty)\n";
  }
  std::uint64_t max_count = 0;
  for (const auto& [value, count] : counts_) {
    max_count = std::max(max_count, count);
  }
  char line[160];
  for (const auto& [value, count] : counts_) {
    const double p = static_cast<double>(count) / static_cast<double>(sum);
    const int bar = max_count == 0
                        ? 0
                        : static_cast<int>(static_cast<double>(count) * bar_width /
                                           static_cast<double>(max_count));
    std::snprintf(line, sizeof(line), "%6lld | %-*s %6.3f (%llu)\n",
                  static_cast<long long>(value), bar_width,
                  std::string(static_cast<std::size_t>(bar), '#').c_str(), p,
                  static_cast<unsigned long long>(count));
    out += line;
  }
  return out;
}

}  // namespace dear::common
