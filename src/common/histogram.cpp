#include "common/histogram.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace dear::common {

std::uint64_t CategoricalHistogram::total() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& [value, count] : counts_) {
    sum += count;
  }
  return sum;
}

double CategoricalHistogram::probability(std::int64_t value) const {
  const std::uint64_t sum = total();
  if (sum == 0) {
    return 0.0;
  }
  return static_cast<double>(count(value)) / static_cast<double>(sum);
}

std::vector<std::int64_t> CategoricalHistogram::values() const {
  std::vector<std::int64_t> result;
  result.reserve(counts_.size());
  for (const auto& [value, count] : counts_) {
    result.push_back(value);
  }
  return result;
}

std::string CategoricalHistogram::to_ascii(int bar_width) const {
  std::string out;
  const std::uint64_t sum = total();
  if (sum == 0) {
    return "(empty)\n";
  }
  std::uint64_t max_count = 0;
  for (const auto& [value, count] : counts_) {
    max_count = std::max(max_count, count);
  }
  char line[160];
  for (const auto& [value, count] : counts_) {
    const double p = static_cast<double>(count) / static_cast<double>(sum);
    const int bar = max_count == 0
                        ? 0
                        : static_cast<int>(static_cast<double>(count) * bar_width /
                                           static_cast<double>(max_count));
    std::snprintf(line, sizeof(line), "%6lld | %-*s %6.3f (%llu)\n",
                  static_cast<long long>(value), bar_width,
                  std::string(static_cast<std::size_t>(bar), '#').c_str(), p,
                  static_cast<unsigned long long>(count));
    out += line;
  }
  return out;
}

BinnedHistogram::BinnedHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("BinnedHistogram requires bins > 0 and hi > lo");
  }
}

void BinnedHistogram::add(double value) {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    return;
  }
  auto index = static_cast<std::size_t>((value - lo_) / width_);
  index = std::min(index, counts_.size() - 1);
  ++counts_[index];
}

double BinnedHistogram::bin_lower(std::size_t index) const {
  return lo_ + width_ * static_cast<double>(index);
}

double BinnedHistogram::bin_upper(std::size_t index) const {
  return lo_ + width_ * static_cast<double>(index + 1);
}

double BinnedHistogram::quantile(double q) const {
  if (total_ == 0) {
    return lo_;
  }
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_));
  std::uint64_t cumulative = underflow_;
  if (cumulative > target) {
    return lo_;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (cumulative + counts_[i] > target) {
      const double within =
          counts_[i] == 0
              ? 0.0
              : static_cast<double>(target - cumulative) / static_cast<double>(counts_[i]);
      return bin_lower(i) + within * width_;
    }
    cumulative += counts_[i];
  }
  return hi_;
}

}  // namespace dear::common
