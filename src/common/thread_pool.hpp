// Real-threads executor.
//
// A fixed pool of workers pulling from a shared queue, plus a timer queue
// for delayed tasks. With more than one worker, the completion order of
// posted tasks is decided by the OS scheduler — this is precisely the
// nondeterminism source 1/2 of the paper, and it is what the Figure 1
// experiment measures. now() is wall time relative to construction.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/executor.hpp"

namespace dear::common {

class ThreadPoolExecutor final : public Executor {
 public:
  explicit ThreadPoolExecutor(std::size_t workers);
  ~ThreadPoolExecutor() override;

  ThreadPoolExecutor(const ThreadPoolExecutor&) = delete;
  ThreadPoolExecutor& operator=(const ThreadPoolExecutor&) = delete;

  void post(Task task) override;
  void post_after(Duration delay, Task task) override;
  [[nodiscard]] TimePoint now() const override;

  /// Blocks until every task posted so far (including delayed tasks whose
  /// deadline already passed) has completed and the queue is empty.
  void drain();

  [[nodiscard]] std::size_t worker_count() const noexcept { return workers_.size(); }

 private:
  struct TimedTask {
    TimePoint due;
    std::uint64_t seq;
    Task task;
    bool operator>(const TimedTask& other) const noexcept {
      return due != other.due ? due > other.due : seq > other.seq;
    }
  };

  void worker_loop();
  void timer_loop();

  std::chrono::steady_clock::time_point start_{std::chrono::steady_clock::now()};

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<Task> queue_;
  std::size_t active_{0};
  bool shutdown_{false};

  std::mutex timer_mutex_;
  std::condition_variable timer_cv_;
  std::priority_queue<TimedTask, std::vector<TimedTask>, std::greater<>> timers_;
  std::uint64_t timer_seq_{0};
  bool timer_shutdown_{false};

  std::vector<std::thread> workers_;
  std::thread timer_thread_;
};

}  // namespace dear::common
