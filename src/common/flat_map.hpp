// Cache-friendly sorted-vector map for the hot paths, replacing std::map
// in per-message/per-event code.
//
// FlatMap keeps (key, value) pairs in a sorted std::vector. Lookup is a
// binary search over contiguous memory; insertion and erasure shift the
// tail but never allocate once capacity is reached. Iteration order is
// key order, so it is a drop-in for the deterministic-iteration uses of
// std::map (service-discovery watcher notification, subscriber lists).
// Right shape for the small-to-medium, read-mostly dispatch tables of the
// SOME/IP binding, service discovery and the per-action pending-value
// maps.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace dear::common {

template <typename Key, typename Value, typename Compare = std::less<Key>>
class FlatMap {
 public:
  using value_type = std::pair<Key, Value>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  [[nodiscard]] iterator begin() noexcept { return entries_.begin(); }
  [[nodiscard]] iterator end() noexcept { return entries_.end(); }
  [[nodiscard]] const_iterator begin() const noexcept { return entries_.begin(); }
  [[nodiscard]] const_iterator end() const noexcept { return entries_.end(); }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  void clear() noexcept { entries_.clear(); }
  void reserve(std::size_t n) { entries_.reserve(n); }

  [[nodiscard]] iterator find(const Key& key) {
    const iterator it = lower_bound(key);
    return (it != entries_.end() && !compare_(key, it->first)) ? it : entries_.end();
  }
  [[nodiscard]] const_iterator find(const Key& key) const {
    const const_iterator it = lower_bound(key);
    return (it != entries_.end() && !compare_(key, it->first)) ? it : entries_.end();
  }
  [[nodiscard]] bool contains(const Key& key) const { return find(key) != entries_.end(); }

  /// Inserts a default-constructed value when absent.
  Value& operator[](const Key& key) {
    const iterator it = lower_bound(key);
    if (it != entries_.end() && !compare_(key, it->first)) {
      return it->second;
    }
    return entries_.emplace(it, key, Value{})->second;
  }

  template <typename V>
  std::pair<iterator, bool> insert_or_assign(const Key& key, V&& value) {
    const iterator it = lower_bound(key);
    if (it != entries_.end() && !compare_(key, it->first)) {
      it->second = std::forward<V>(value);
      return {it, false};
    }
    return {entries_.emplace(it, key, std::forward<V>(value)), true};
  }

  /// Returns the number of entries removed (0 or 1).
  std::size_t erase(const Key& key) {
    const iterator it = find(key);
    if (it == entries_.end()) {
      return 0;
    }
    entries_.erase(it);
    return 1;
  }
  iterator erase(iterator it) { return entries_.erase(it); }

  [[nodiscard]] iterator lower_bound(const Key& key) {
    return std::lower_bound(entries_.begin(), entries_.end(), key,
                            [this](const value_type& entry, const Key& k) {
                              return compare_(entry.first, k);
                            });
  }
  [[nodiscard]] const_iterator lower_bound(const Key& key) const {
    return std::lower_bound(entries_.begin(), entries_.end(), key,
                            [this](const value_type& entry, const Key& k) {
                              return compare_(entry.first, k);
                            });
  }

 private:
  std::vector<value_type> entries_;
  [[no_unique_address]] Compare compare_{};
};

}  // namespace dear::common
