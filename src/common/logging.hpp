// Minimal leveled logger.
//
// The AUTOSAR Adaptive Platform specifies ara::log; this project only needs
// a thread-safe sink with severity filtering, so we provide exactly that.
// Messages are composed into an ostringstream and emitted atomically.
#pragma once

#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace dear::log {

enum class Level : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Returns the process-wide minimum severity that is emitted.
[[nodiscard]] Level threshold() noexcept;

/// Sets the process-wide minimum severity. Thread-safe.
void set_threshold(Level level) noexcept;

/// Parses "trace" / "debug" / "info" / "warn" / "error" / "off".
/// Unknown strings map to kInfo.
[[nodiscard]] Level parse_level(std::string_view text) noexcept;

namespace detail {
void emit(Level level, std::string_view component, const std::string& message);
}

/// RAII message builder: `Logger(Level::kInfo, "scheduler") << "tag " << t;`
/// emits on destruction if the level passes the threshold.
class Logger {
 public:
  Logger(Level level, std::string_view component) noexcept
      : level_(level), component_(component), enabled_(level >= threshold()) {}

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  ~Logger() {
    if (enabled_) {
      detail::emit(level_, component_, stream_.str());
    }
  }

  template <typename T>
  Logger& operator<<(const T& value) {
    if (enabled_) {
      stream_ << value;
    }
    return *this;
  }

 private:
  Level level_;
  std::string_view component_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace dear::log

#define DEAR_LOG_TRACE(component) ::dear::log::Logger(::dear::log::Level::kTrace, component)
#define DEAR_LOG_DEBUG(component) ::dear::log::Logger(::dear::log::Level::kDebug, component)
#define DEAR_LOG_INFO(component) ::dear::log::Logger(::dear::log::Level::kInfo, component)
#define DEAR_LOG_WARN(component) ::dear::log::Logger(::dear::log::Level::kWarn, component)
#define DEAR_LOG_ERROR(component) ::dear::log::Logger(::dear::log::Level::kError, component)
