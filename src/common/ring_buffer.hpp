// Fixed-capacity FIFO ring buffer (single-threaded). Used by transport
// queues and the trace recorder where allocation-free steady state matters.
#pragma once

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

namespace dear::common {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : storage_(capacity) {
    if (capacity == 0) {
      throw std::invalid_argument("RingBuffer capacity must be > 0");
    }
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return storage_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool full() const noexcept { return size_ == storage_.size(); }

  /// Appends; returns false (and leaves the buffer unchanged) when full.
  bool push(T value) {
    if (full()) {
      return false;
    }
    storage_[(head_ + size_) % storage_.size()] = std::move(value);
    ++size_;
    return true;
  }

  /// Appends, evicting the oldest element when full. Returns the evicted
  /// element if any.
  std::optional<T> push_evict(T value) {
    std::optional<T> evicted;
    if (full()) {
      evicted = std::move(storage_[head_]);
      head_ = (head_ + 1) % storage_.size();
      --size_;
    }
    push(std::move(value));
    return evicted;
  }

  [[nodiscard]] std::optional<T> pop() {
    if (empty()) {
      return std::nullopt;
    }
    T value = std::move(storage_[head_]);
    head_ = (head_ + 1) % storage_.size();
    --size_;
    return value;
  }

  [[nodiscard]] const T& front() const {
    if (empty()) {
      throw std::out_of_range("RingBuffer::front on empty buffer");
    }
    return storage_[head_];
  }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> storage_;
  std::size_t head_{0};
  std::size_t size_{0};
};

}  // namespace dear::common
