// String interner: stable string_views for names seen repeatedly.
//
// Lookup is a FlatMap binary search (contiguous, log n) instead of the
// linear scan the execution trace used to carry; the backing strings live
// in unique_ptrs so an interned view stays valid across index growth for
// the interner's lifetime. One allocation per distinct name, ever — every
// later intern of the same name is allocation-free, which is what lets the
// span tracer intern on its recording path.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/flat_map.hpp"

namespace dear::common {

class Interner {
 public:
  /// The canonical view for `name`, interning it on first sight. Returned
  /// views point at NUL-terminated storage owned by this interner.
  [[nodiscard]] std::string_view intern(std::string_view name) {
    const auto it = index_.find(name);
    if (it != index_.end()) {
      return it->second;
    }
    owned_.push_back(std::make_unique<std::string>(name));
    const std::string_view view = *owned_.back();
    index_.insert_or_assign(view, view);
    return view;
  }

  [[nodiscard]] std::size_t size() const noexcept { return owned_.size(); }
  [[nodiscard]] bool empty() const noexcept { return owned_.empty(); }

  void clear() noexcept {
    index_.clear();
    owned_.clear();
  }

 private:
  /// Keys view the owned strings, so the index itself stores no text.
  FlatMap<std::string_view, std::string_view> index_;
  std::vector<std::unique_ptr<std::string>> owned_;
};

}  // namespace dear::common
