#include "common/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace dear::common {

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire's debiased multiply-shift rejection method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) noexcept {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  return lo + static_cast<std::int64_t>(next_below(range));
}

double Rng::uniform01() noexcept {
  // 53 random mantissa bits.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

Duration Rng::uniform_duration(Duration lo, Duration hi) noexcept { return uniform(lo, hi); }

double Rng::normal() noexcept {
  double u1 = uniform01();
  while (u1 <= 0.0) {
    u1 = uniform01();
  }
  const double u2 = uniform01();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double sigma) noexcept {
  const double raw = mean + sigma * normal();
  return std::clamp(raw, mean - 4.0 * sigma, mean + 4.0 * sigma);
}

Rng Rng::stream(std::string_view name) const noexcept {
  // Mix the current state with the stream name; the parent is not advanced.
  std::uint64_t mix = state_[0] ^ rotl(state_[1], 13) ^ rotl(state_[2], 31) ^ rotl(state_[3], 47);
  mix ^= fnv1a(name);
  return Rng(splitmix64(mix));
}

}  // namespace dear::common
