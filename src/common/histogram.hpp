// Small histogram utilities used by the benchmark harnesses to report
// distributions (e.g. the Figure 1 printed-value distribution and the
// Figure 5 per-type error breakdown).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/histogram.hpp"

namespace dear::common {

/// Counts occurrences of integer-valued outcomes.
class CategoricalHistogram {
 public:
  void add(std::int64_t value, std::uint64_t count = 1) { counts_[value] += count; }

  [[nodiscard]] std::uint64_t count(std::int64_t value) const {
    const auto it = counts_.find(value);
    return it == counts_.end() ? 0 : it->second;
  }

  [[nodiscard]] std::uint64_t total() const noexcept;

  [[nodiscard]] double probability(std::int64_t value) const;

  /// All observed values in ascending order.
  [[nodiscard]] std::vector<std::int64_t> values() const;

  /// Renders an ASCII bar chart like the one next to Figure 1.
  [[nodiscard]] std::string to_ascii(int bar_width = 40) const;

  [[nodiscard]] bool empty() const noexcept { return counts_.empty(); }

 private:
  std::map<std::int64_t, std::uint64_t> counts_;
};

/// Fixed-bin histogram over a numeric range, for latency distributions.
/// Thin facade over obs::Histogram — one implementation of the uniform
/// bucket/quantile math serves both the bench harnesses and the metrics
/// registry.
class BinnedHistogram {
 public:
  BinnedHistogram(double lo, double hi, std::size_t bins) : core_(lo, hi, bins) {}

  void add(double value) { core_.add(value); }

  [[nodiscard]] std::size_t bin_count() const noexcept { return core_.bin_count(); }
  [[nodiscard]] std::uint64_t bin(std::size_t index) const { return core_.bin(index); }
  [[nodiscard]] double bin_lower(std::size_t index) const { return core_.bin_lower(index); }
  [[nodiscard]] double bin_upper(std::size_t index) const { return core_.bin_upper(index); }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return core_.underflow(); }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return core_.overflow(); }
  [[nodiscard]] std::uint64_t total() const noexcept { return core_.total(); }

  /// Value below which the given fraction of samples fall (linear
  /// interpolation inside the bin). quantile in [0, 1].
  [[nodiscard]] double quantile(double q) const noexcept { return core_.quantile(q); }

 private:
  obs::Histogram core_;
};

}  // namespace dear::common
