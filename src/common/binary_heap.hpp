// Vector-backed binary min-heap shared by the scheduler's event queue and
// the simulation kernel.
//
// Differences from std::priority_queue that matter on the hot paths:
//   * min-heap under Less (no inverted comparator gymnastics),
//   * pop_move() extracts the top element by move (priority_queue only
//     exposes a const top(), forcing a const_cast to avoid copying
//     handlers),
//   * reserve()/clear() retain capacity, so a steady-state push/pop
//     workload performs zero allocations.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace dear::common {

template <typename T, typename Less = std::less<T>>
class BinaryHeap {
 public:
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  void reserve(std::size_t n) { items_.reserve(n); }
  void clear() noexcept { items_.clear(); }

  [[nodiscard]] const T& top() const noexcept { return items_.front(); }

  void push(T item) {
    items_.push_back(std::move(item));
    // Hole-based sift-up: one move per level instead of a three-move swap.
    std::size_t index = items_.size() - 1;
    T value = std::move(items_[index]);
    while (index > 0) {
      const std::size_t parent = (index - 1) / 2;
      if (!less_(value, items_[parent])) {
        break;
      }
      items_[index] = std::move(items_[parent]);
      index = parent;
    }
    items_[index] = std::move(value);
  }

  void pop() {
    T value = std::move(items_.back());
    items_.pop_back();
    if (items_.empty()) {
      return;
    }
    // Hole-based sift-down of the displaced last element.
    const std::size_t count = items_.size();
    std::size_t index = 0;
    for (;;) {
      std::size_t child = 2 * index + 1;
      if (child >= count) {
        break;
      }
      if (child + 1 < count && less_(items_[child + 1], items_[child])) {
        ++child;
      }
      if (!less_(items_[child], value)) {
        break;
      }
      items_[index] = std::move(items_[child]);
      index = child;
    }
    items_[index] = std::move(value);
  }

  /// Removes and returns the smallest element.
  [[nodiscard]] T pop_move() {
    T out = std::move(items_.front());
    pop();
    return out;
  }

 private:

  std::vector<T> items_;
  [[no_unique_address]] Less less_{};
};

}  // namespace dear::common
