// Tiny command-line flag parser for the examples and benchmark harnesses.
//
// Supports `--name=value`, `--name value` and boolean `--name`. Unknown
// flags are collected so harnesses can reject typos. Values can also fall
// back to environment variables (used to scale experiment sizes in CI).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace dear::common {

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  [[nodiscard]] bool has(std::string_view name) const;

  [[nodiscard]] std::string get_string(std::string_view name, std::string_view fallback) const;
  [[nodiscard]] std::int64_t get_int(std::string_view name, std::int64_t fallback) const;
  [[nodiscard]] double get_double(std::string_view name, double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view name, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept { return positional_; }

  /// Names of every flag that was passed, in sorted order (used by the
  /// Cli layer to reject typos against its registry).
  [[nodiscard]] std::vector<std::string> names() const;

  /// Program name (argv[0]).
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> positional_;
};

/// Reads an integer from the environment, or returns fallback. Used so CI
/// can shrink experiment sizes (e.g. DEAR_FIG5_FRAMES=10000).
[[nodiscard]] std::int64_t env_int(const char* name, std::int64_t fallback);

}  // namespace dear::common
