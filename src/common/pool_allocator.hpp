// Size-classed free-list pool for small, high-churn heap blocks.
//
// The reactor runtime allocates one shared_ptr control block (+ inline
// value) per scheduled event; the paper's pitch only holds if that cost is
// amortized away. SmallBlockPool keeps freed blocks on per-size-class
// free lists: after warmup the scheduler hot loop allocates nothing from
// the system allocator (asserted by the allocation-count regression
// tests). Blocks larger than the biggest size class fall through to
// operator new untouched.
//
// Thread safety: each size class is guarded by a spinlock. Events may be
// scheduled and released from different threads (physical actions,
// executor workers), so the free lists must be shared — a thread-local
// design would strand blocks on threads that only ever free.
//
// The singleton is intentionally leaked (never destroyed): values released
// by static-storage objects after main() must not touch a dead pool. All
// pooled memory stays reachable through the instance pointer, so leak
// checkers stay quiet.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>

namespace dear::common {

class SmallBlockPool {
 public:
  static SmallBlockPool& instance() {
    static SmallBlockPool* pool = new SmallBlockPool();
    return *pool;
  }

  [[nodiscard]] void* allocate(std::size_t bytes) {
    const int size_class = class_for(bytes);
    if (size_class < 0) {
      return ::operator new(bytes);
    }
    Shelf& shelf = shelves_[static_cast<std::size_t>(size_class)];
    lock(shelf);
    FreeNode* node = shelf.head;
    if (node != nullptr) {
      shelf.head = node->next;
      --shelf.count;
      unlock(shelf);
      ++hits_;
      return node;
    }
    unlock(shelf);
    ++misses_;
    return ::operator new(kClassBytes[static_cast<std::size_t>(size_class)]);
  }

  void deallocate(void* pointer, std::size_t bytes) noexcept {
    const int size_class = class_for(bytes);
    if (size_class < 0) {
      ::operator delete(pointer);
      return;
    }
    Shelf& shelf = shelves_[static_cast<std::size_t>(size_class)];
    lock(shelf);
    if (shelf.count >= kMaxBlocksPerClass) {
      unlock(shelf);
      ::operator delete(pointer);
      return;
    }
    auto* node = static_cast<FreeNode*>(pointer);
    node->next = shelf.head;
    shelf.head = node;
    ++shelf.count;
    unlock(shelf);
  }

  /// Blocks served from a free list / from operator new (diagnostics).
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_.load(); }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_.load(); }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  static constexpr std::size_t kClassBytes[] = {64, 128, 256, 512};
  static constexpr std::size_t kClassCount = sizeof(kClassBytes) / sizeof(kClassBytes[0]);
  /// Cap per class: bounds retained memory at ~4 MiB more than the peak
  /// working set while covering every steady-state workload in the repo.
  static constexpr std::size_t kMaxBlocksPerClass = 8192;

  struct Shelf {
    std::atomic_flag busy = ATOMIC_FLAG_INIT;
    FreeNode* head{nullptr};
    std::size_t count{0};
  };

  SmallBlockPool() = default;

  [[nodiscard]] static constexpr int class_for(std::size_t bytes) noexcept {
    for (std::size_t i = 0; i < kClassCount; ++i) {
      if (bytes <= kClassBytes[i]) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  static void lock(Shelf& shelf) noexcept {
    while (shelf.busy.test_and_set(std::memory_order_acquire)) {
    }
  }
  static void unlock(Shelf& shelf) noexcept { shelf.busy.clear(std::memory_order_release); }

  Shelf shelves_[kClassCount];
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

/// Standard allocator facade over SmallBlockPool, usable with
/// std::allocate_shared to pool the control-block + value allocation of
/// event payloads.
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() noexcept = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(SmallBlockPool::instance().allocate(n * sizeof(T)));
  }
  void deallocate(T* pointer, std::size_t n) noexcept {
    SmallBlockPool::instance().deallocate(pointer, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const PoolAllocator<U>&) const noexcept {
    return true;
  }
};

}  // namespace dear::common
