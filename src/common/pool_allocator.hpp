// Size-classed pool for small, high-churn heap blocks, with per-thread
// magazine caches.
//
// The reactor runtime allocates one shared_ptr control block (+ inline
// value) per scheduled event; the paper's pitch only holds if that cost is
// amortized away. SmallBlockPool keeps freed blocks on per-size-class
// free lists: after warmup the scheduler hot loop allocates nothing from
// the system allocator (asserted by the allocation-count regression
// tests).
//
// Two tiers:
//   * a thread-local magazine per size class (tcmalloc-style): allocate
//     pops and deallocate pushes with no atomics at all, so concurrent
//     campaign scenarios and scheduler workers share no cache lines in
//     steady state;
//   * the global shelves (spinlocked free lists) behind them: magazines
//     refill and flush in batches, and a registered per-thread drain
//     returns a worker's magazines to the shelves when its thread exits —
//     blocks migrate between threads only through the shelves, so a
//     producer/consumer pair costs one shelf lock per kMagazineRefill
//     blocks, not one per block.
//
// shelf_lock_count() counts every shelf spinlock acquisition; the
// allocation-count regression tests assert it stays flat in steady state
// for both a multi-worker campaign and the threaded scheduler.
//
// The singleton is intentionally leaked (never destroyed): values released
// by static-storage objects after main() must not touch a dead pool. All
// pooled memory stays reachable through the instance pointer and the
// thread caches drain back into it, so leak checkers stay quiet.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>

#include "common/thread_cache.hpp"
#include "obs/obs.hpp"

namespace dear::common {

class SmallBlockPool {
 private:
  static constexpr std::size_t kClassBytes[] = {64, 128, 256, 512};
  static constexpr std::size_t kClassCount = sizeof(kClassBytes) / sizeof(kClassBytes[0]);
  /// Cap per shelf: bounds retained memory at ~4 MiB more than the peak
  /// working set while covering every steady-state workload in the repo.
  static constexpr std::size_t kMaxBlocksPerClass = 8192;
  /// Magazine depth per thread and class. Sized so one DES scenario's peak
  /// live event set fits without spilling — the campaign steady state then
  /// performs zero shelf traffic (asserted by the alloc-count tests).
  static constexpr std::size_t kMagazineSlots = 256;
  /// Blocks moved per shelf interaction (refill batch / flush retains this
  /// many): the cross-thread amortization factor.
  static constexpr std::size_t kMagazineRefill = 64;

  struct Magazine {
    std::size_t count{0};
    void* slots[kMagazineSlots];
  };

 public:
  static SmallBlockPool& instance() {
    static SmallBlockPool* pool = new SmallBlockPool();
    return *pool;
  }

  [[nodiscard]] void* allocate(std::size_t bytes) {
    const int size_class = class_for(bytes);
    if (size_class < 0) {
      return ::operator new(bytes);
    }
    if (ThreadCache* cache = ThreadCacheSlot<SmallBlockPool>::get()) {
      Magazine& magazine = cache->magazines[static_cast<std::size_t>(size_class)];
      if (magazine.count > 0) {
        return magazine.slots[--magazine.count];
      }
      refill(magazine, size_class);
      if (magazine.count > 0) {
        return magazine.slots[--magazine.count];
      }
      return ::operator new(kClassBytes[static_cast<std::size_t>(size_class)]);
    }
    return allocate_from_shelf(size_class);
  }

  void deallocate(void* pointer, std::size_t bytes) noexcept {
    const int size_class = class_for(bytes);
    if (size_class < 0) {
      ::operator delete(pointer);
      return;
    }
    if (ThreadCache* cache = ThreadCacheSlot<SmallBlockPool>::get()) {
      Magazine& magazine = cache->magazines[static_cast<std::size_t>(size_class)];
      if (magazine.count == kMagazineSlots) {
        flush(magazine, size_class, kMagazineSlots - kMagazineRefill);
      }
      magazine.slots[magazine.count++] = pointer;
      return;
    }
    deallocate_to_shelf(pointer, size_class);
  }

  /// Shelf spinlock acquisitions since process start (slow path only; the
  /// magazine fast path never touches it). Regression-tested to stay flat
  /// in steady state. Thin read over the registry-backed metric
  /// (`pool.small.shelf_locks` in snapshots).
  [[nodiscard]] std::uint64_t shelf_lock_count() const {
    return obs::Registry::instance().counter_total(obs::Counter::kPoolSmallShelfLocks);
  }

  // --- thread-cache plumbing (ThreadCacheSlot owner contract) ------------------

  /// One thread's magazines. Lives behind a POD thread_local pointer so
  /// late frees during thread teardown fall back to the shelves safely.
  struct ThreadCache {
    Magazine magazines[kClassCount];
  };

  static void drain_thread_cache(ThreadCache& cache) noexcept {
    SmallBlockPool& pool = instance();
    for (std::size_t i = 0; i < kClassCount; ++i) {
      pool.flush(cache.magazines[i], static_cast<int>(i), 0);
    }
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  struct Shelf {
    std::atomic_flag busy = ATOMIC_FLAG_INIT;
    FreeNode* head{nullptr};
    std::size_t count{0};
  };

  SmallBlockPool() = default;

  [[nodiscard]] static constexpr int class_for(std::size_t bytes) noexcept {
    for (std::size_t i = 0; i < kClassCount; ++i) {
      if (bytes <= kClassBytes[i]) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  static void lock(Shelf& shelf) noexcept {
    obs::count_always(obs::Counter::kPoolSmallShelfLocks);
    while (shelf.busy.test_and_set(std::memory_order_acquire)) {
    }
  }
  static void unlock(Shelf& shelf) noexcept { shelf.busy.clear(std::memory_order_release); }

  /// Moves up to kMagazineRefill shelf blocks into the magazine (one lock).
  void refill(Magazine& magazine, int size_class) noexcept {
    obs::count_always(obs::Counter::kPoolSmallRefills);
    Shelf& shelf = shelves_[static_cast<std::size_t>(size_class)];
    lock(shelf);
    while (magazine.count < kMagazineRefill && shelf.head != nullptr) {
      FreeNode* node = shelf.head;
      shelf.head = node->next;
      --shelf.count;
      magazine.slots[magazine.count++] = node;
    }
    unlock(shelf);
  }

  /// Flushes the magazine down to `keep` blocks (one lock); blocks the
  /// shelf cannot retain are freed outside the lock.
  void flush(Magazine& magazine, int size_class, std::size_t keep) noexcept {
    obs::count_always(obs::Counter::kPoolSmallFlushes);
    Shelf& shelf = shelves_[static_cast<std::size_t>(size_class)];
    std::size_t overflow = 0;
    lock(shelf);
    while (magazine.count > keep) {
      if (shelf.count >= kMaxBlocksPerClass) {
        ++overflow;  // slots [count - overflow, count) freed below
        --magazine.count;
        continue;
      }
      auto* node = static_cast<FreeNode*>(magazine.slots[--magazine.count]);
      node->next = shelf.head;
      shelf.head = node;
      ++shelf.count;
    }
    unlock(shelf);
    for (std::size_t i = 0; i < overflow; ++i) {
      ::operator delete(magazine.slots[magazine.count + i]);
    }
  }

  [[nodiscard]] void* allocate_from_shelf(int size_class) noexcept {
    Shelf& shelf = shelves_[static_cast<std::size_t>(size_class)];
    lock(shelf);
    FreeNode* node = shelf.head;
    if (node != nullptr) {
      shelf.head = node->next;
      --shelf.count;
    }
    unlock(shelf);
    if (node != nullptr) {
      return node;
    }
    return ::operator new(kClassBytes[static_cast<std::size_t>(size_class)]);
  }

  void deallocate_to_shelf(void* pointer, int size_class) noexcept {
    Shelf& shelf = shelves_[static_cast<std::size_t>(size_class)];
    lock(shelf);
    if (shelf.count >= kMaxBlocksPerClass) {
      unlock(shelf);
      ::operator delete(pointer);
      return;
    }
    auto* node = static_cast<FreeNode*>(pointer);
    node->next = shelf.head;
    shelf.head = node;
    ++shelf.count;
    unlock(shelf);
  }

  Shelf shelves_[kClassCount];
};

/// Standard allocator facade over SmallBlockPool, usable with
/// std::allocate_shared to pool the control-block + value allocation of
/// event payloads.
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() noexcept = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(SmallBlockPool::instance().allocate(n * sizeof(T)));
  }
  void deallocate(T* pointer, std::size_t n) noexcept {
    SmallBlockPool::instance().deallocate(pointer, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const PoolAllocator<U>&) const noexcept {
    return true;
  }
};

}  // namespace dear::common
