#include "common/thread_pool.hpp"

#include <utility>

namespace dear::common {

ThreadPoolExecutor::ThreadPoolExecutor(std::size_t workers) {
  if (workers == 0) {
    workers = 1;
  }
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  timer_thread_ = std::thread([this] { timer_loop(); });
}

ThreadPoolExecutor::~ThreadPoolExecutor() {
  {
    const std::lock_guard<std::mutex> lock(timer_mutex_);
    timer_shutdown_ = true;
  }
  timer_cv_.notify_all();
  timer_thread_.join();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPoolExecutor::post(Task task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPoolExecutor::post_after(Duration delay, Task task) {
  if (delay <= 0) {
    post(std::move(task));
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(timer_mutex_);
    timers_.push(TimedTask{now() + delay, timer_seq_++, std::move(task)});
  }
  timer_cv_.notify_all();
}

TimePoint ThreadPoolExecutor::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
}

void ThreadPoolExecutor::drain() {
  // First wait for the timer queue to flush everything currently due.
  {
    std::unique_lock<std::mutex> lock(timer_mutex_);
    timer_cv_.wait(lock, [this] { return timers_.empty() || timer_shutdown_; });
  }
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPoolExecutor::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (shutdown_ && queue_.empty()) {
      return;
    }
    Task task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    task();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) {
      idle_cv_.notify_all();
    }
  }
}

void ThreadPoolExecutor::timer_loop() {
  std::unique_lock<std::mutex> lock(timer_mutex_);
  for (;;) {
    if (timer_shutdown_) {
      return;
    }
    if (timers_.empty()) {
      timer_cv_.wait(lock);
      continue;
    }
    const TimePoint due = timers_.top().due;
    const TimePoint current = now();
    if (current < due) {
      timer_cv_.wait_for(lock, std::chrono::nanoseconds(due - current));
      continue;
    }
    Task task = std::move(const_cast<TimedTask&>(timers_.top()).task);
    timers_.pop();
    const bool drained = timers_.empty();
    lock.unlock();
    post(std::move(task));
    lock.lock();
    if (drained) {
      timer_cv_.notify_all();  // wake drain()
    }
  }
}

}  // namespace dear::common
