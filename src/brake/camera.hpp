// Video Provider (camera) on platform 1.
//
// "Video Provider captures video frames and sends one approximately every
// 50 ms (via a proprietary protocol) to Video Adapter, which is running on
// the second platform" (paper §IV.A). The proprietary protocol is modeled
// as raw serialized frames over the datagram network — deliberately *not*
// SOME/IP, and never tagged; the Video Adapter is the sensor boundary of
// the system in both pipeline variants.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "brake/logic.hpp"
#include "common/buffer_pool.hpp"
#include "brake/types.hpp"
#include "common/rng.hpp"
#include "net/network.hpp"
#include "sim/clock_model.hpp"
#include "sim/exec_time_model.hpp"
#include "sim/fault_injection.hpp"
#include "sim/kernel.hpp"
#include "sim/periodic_task.hpp"

namespace dear::brake {

/// Decodes a proprietary camera datagram back into a frame. Returns false
/// on malformed input.
[[nodiscard]] bool decode_camera_packet(const std::vector<std::uint8_t>& payload,
                                        VideoFrame& frame);

class Camera {
 public:
  struct Config {
    Duration period{50 * kMillisecond};
    /// Phase of the first capture on the camera's local clock.
    Duration phase{0};
    /// Per-capture release jitter.
    sim::ExecTimeModel jitter{sim::ExecTimeModel::uniform(0, 500 * kMicrosecond)};
    /// Stops the camera after this many *captures* (0 = unlimited). With
    /// fault injection, dropped captures count toward the limit but are
    /// never sent, so frames_sent() can end up below the limit.
    std::uint64_t frame_limit{0};
    /// Sensor faults, decided per capture from the camera's own rng — part
    /// of the input stream, not of the platform.
    sim::SensorFaultModel faults{};
    /// Burst-capture data plane: when nonzero, each sent frame also fills
    /// and publishes a loaned pixel slab of this many bytes (the frame
    /// header words are stamped into the slab, the rest models pixel
    /// data). 0 keeps the metadata-only camera.
    std::size_t payload_bytes{0};
    /// Frame ring depth: slabs cycling through dequeue → fill → publish →
    /// requeue. A slab requeues when every consumer released it; if all
    /// ring slots are still held downstream the capture is *dropped*, and
    /// the drop is deterministic (it enters the digest as a missing
    /// frame).
    std::size_t ring_slabs{4};
    /// Receives every published frame slab (retains it by handle copy).
    std::function<void(const common::LoanedBuffer&, const VideoFrame&)> frame_sink;
  };

  Camera(sim::Kernel& kernel, const sim::PlatformClock& clock, net::Network& network,
         net::Endpoint self, net::Endpoint adapter, Config config, common::Rng rng);

  void start() { task_.start(); }
  void stop() { task_.stop(); }

  [[nodiscard]] std::uint64_t frames_sent() const noexcept { return frames_sent_; }
  [[nodiscard]] std::uint64_t captures() const noexcept { return captures_; }
  /// Pixel slabs published / captures dropped on ring exhaustion (both 0
  /// unless payload_bytes is configured).
  [[nodiscard]] std::uint64_t payload_frames() const noexcept { return payload_frames_; }
  [[nodiscard]] std::uint64_t payload_drops() const noexcept { return payload_drops_; }
  [[nodiscard]] const sim::SensorFaultInjector& fault_injector() const noexcept {
    return faults_;
  }

 private:
  void capture(std::uint64_t index, TimePoint release_time);
  /// Burst-capture cycle for one frame: dequeue a ring slab, stamp + fill,
  /// publish, hand to the sink. Returns false when the ring is exhausted
  /// (capture dropped).
  [[nodiscard]] bool capture_payload(const VideoFrame& frame);

  sim::Kernel& kernel_;
  const sim::PlatformClock& clock_;
  net::Network& network_;
  net::Endpoint self_;
  net::Endpoint adapter_;
  Config config_;
  sim::PeriodicTask task_;
  sim::SensorFaultInjector faults_;
  std::optional<VideoFrame> last_frame_;
  /// Fixed ring of frame slabs (handles; empty slots loan lazily).
  std::vector<common::LoanedBuffer> ring_;
  std::uint64_t frames_sent_{0};
  std::uint64_t captures_{0};
  std::uint64_t payload_frames_{0};
  std::uint64_t payload_drops_{0};
};

}  // namespace dear::brake
