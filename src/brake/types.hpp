// Data types flowing through the brake assistant pipeline (paper Figure 4).
//
// The paper's errors are coordination errors, not vision errors, so the
// payloads carry deterministic synthetic content derived from the frame
// id. Every value downstream records which frame(s) produced it, which
// makes drops and misalignment exactly detectable.
#pragma once

#include <cstdint>
#include <vector>

#include "someip/serialization.hpp"

namespace dear::brake {

struct VideoFrame {
  std::uint64_t frame_id{0};
  /// Capture time on the camera's clock (ns).
  std::int64_t capture_time{0};
  std::uint16_t width{1280};
  std::uint16_t height{720};
  /// Stand-in for pixel data: deterministic function of frame_id.
  std::uint64_t content_hash{0};

  bool operator==(const VideoFrame&) const = default;
};

struct LaneInfo {
  /// Frame this lane estimate was computed from.
  std::uint64_t frame_id{0};
  /// Bounding box demarcating the travel lane (pixels).
  std::uint16_t left{0};
  std::uint16_t right{0};
  std::uint16_t top{0};
  std::uint16_t bottom{0};
  double confidence{0.0};

  bool operator==(const LaneInfo&) const = default;
};

struct Vehicle {
  std::uint32_t vehicle_id{0};
  /// Estimated distance to the vehicle ahead (meters).
  double distance_m{0.0};
  /// Estimated closing speed (m/s, positive = approaching).
  double closing_speed{0.0};

  bool operator==(const Vehicle&) const = default;
};

struct VehicleList {
  /// Frame the detection ran on.
  std::uint64_t frame_id{0};
  /// Frame the lane information came from; != frame_id means the inputs
  /// were misaligned (paper §IV.A).
  std::uint64_t lane_frame_id{0};
  std::vector<Vehicle> vehicles;

  bool operator==(const VehicleList&) const = default;
};

struct BrakeCommand {
  std::uint64_t frame_id{0};
  bool brake{false};
  /// Brake intensity in [0, 1].
  double intensity{0.0};

  bool operator==(const BrakeCommand&) const = default;
};

// --- SOME/IP codecs ---------------------------------------------------------

inline void someip_serialize(someip::Writer& w, const VideoFrame& v) {
  w.write_u64(v.frame_id);
  w.write_i64(v.capture_time);
  w.write_u16(v.width);
  w.write_u16(v.height);
  w.write_u64(v.content_hash);
}

inline void someip_deserialize(someip::Reader& r, VideoFrame& v) {
  v.frame_id = r.read_u64();
  v.capture_time = r.read_i64();
  v.width = r.read_u16();
  v.height = r.read_u16();
  v.content_hash = r.read_u64();
}

inline void someip_serialize(someip::Writer& w, const LaneInfo& v) {
  w.write_u64(v.frame_id);
  w.write_u16(v.left);
  w.write_u16(v.right);
  w.write_u16(v.top);
  w.write_u16(v.bottom);
  w.write_f64(v.confidence);
}

inline void someip_deserialize(someip::Reader& r, LaneInfo& v) {
  v.frame_id = r.read_u64();
  v.left = r.read_u16();
  v.right = r.read_u16();
  v.top = r.read_u16();
  v.bottom = r.read_u16();
  v.confidence = r.read_f64();
}

inline void someip_serialize(someip::Writer& w, const Vehicle& v) {
  w.write_u32(v.vehicle_id);
  w.write_f64(v.distance_m);
  w.write_f64(v.closing_speed);
}

inline void someip_deserialize(someip::Reader& r, Vehicle& v) {
  v.vehicle_id = r.read_u32();
  v.distance_m = r.read_f64();
  v.closing_speed = r.read_f64();
}

inline void someip_serialize(someip::Writer& w, const VehicleList& v) {
  w.write_u64(v.frame_id);
  w.write_u64(v.lane_frame_id);
  someip_serialize(w, v.vehicles);
}

inline void someip_deserialize(someip::Reader& r, VehicleList& v) {
  v.frame_id = r.read_u64();
  v.lane_frame_id = r.read_u64();
  someip_deserialize(r, v.vehicles);
}

inline void someip_serialize(someip::Writer& w, const BrakeCommand& v) {
  w.write_u64(v.frame_id);
  w.write_bool(v.brake);
  w.write_f64(v.intensity);
}

inline void someip_deserialize(someip::Reader& r, BrakeCommand& v) {
  v.frame_id = r.read_u64();
  v.brake = r.read_bool();
  v.intensity = r.read_f64();
}

}  // namespace dear::brake
