#include "brake/camera.hpp"

#include "common/buffer_pool.hpp"
#include "someip/serialization.hpp"

namespace dear::brake {

bool decode_camera_packet(const std::vector<std::uint8_t>& payload, VideoFrame& frame) {
  someip::Reader reader(payload);
  someip_deserialize(reader, frame);
  return reader.ok() && reader.remaining() == 0;
}

Camera::Camera(sim::Kernel& kernel, const sim::PlatformClock& clock, net::Network& network,
               net::Endpoint self, net::Endpoint adapter, Config config, common::Rng rng)
    : kernel_(kernel), clock_(clock), network_(network), self_(self), adapter_(adapter),
      config_(config),
      task_(kernel, clock, config.period, config.phase,
            [this](std::uint64_t index, TimePoint release) { capture(index, release); }),
      faults_(config.faults, rng.stream("camera.faults")) {
  task_.set_jitter(config_.jitter, rng.stream("camera.jitter"));
}

void Camera::capture(std::uint64_t /*activation*/, TimePoint release_time) {
  if (config_.frame_limit != 0 && captures_ >= config_.frame_limit) {
    task_.stop();
    return;
  }
  // Frame ids are capture ordinals, not activation indices: where the
  // periodic grid starts depends on the camera clock's offset (a platform
  // property), while the frame stream 0..N-1 is the *input* and must be
  // identical for every platform seed.
  const std::uint64_t frame_id = captures_++;
  VideoFrame frame = generate_frame(frame_id, clock_.local_now(release_time));
  switch (faults_.next()) {
    case sim::SensorFaultInjector::Outcome::kDrop:
      return;
    case sim::SensorFaultInjector::Outcome::kStuck:
      // A frozen sensor re-delivers the previous frame verbatim; the very
      // first capture has nothing to freeze on and stays nominal.
      if (last_frame_.has_value()) {
        frame = *last_frame_;
      }
      break;
    case sim::SensorFaultInjector::Outcome::kNoisy:
      frame.content_hash ^= faults_.noise_word();
      break;
    case sim::SensorFaultInjector::Outcome::kNominal:
      break;
  }
  last_frame_ = frame;
  // Pooled wire buffer: the network layer releases it back after delivery,
  // so the frame stream's acquire/release traffic balances — a sender that
  // pushed fresh vectors into the pool would force a cache flush per
  // scenario (caught by the alloc-count shelf-lock tests).
  someip::Writer writer(common::BufferPool::instance().acquire());
  someip_serialize(writer, frame);
  network_.send(self_, adapter_, writer.take());
  ++frames_sent_;
}

}  // namespace dear::brake
