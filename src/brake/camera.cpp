#include "brake/camera.hpp"

#include "someip/serialization.hpp"

namespace dear::brake {

bool decode_camera_packet(const std::vector<std::uint8_t>& payload, VideoFrame& frame) {
  someip::Reader reader(payload);
  someip_deserialize(reader, frame);
  return reader.ok() && reader.remaining() == 0;
}

Camera::Camera(sim::Kernel& kernel, const sim::PlatformClock& clock, net::Network& network,
               net::Endpoint self, net::Endpoint adapter, Config config, common::Rng rng)
    : kernel_(kernel), clock_(clock), network_(network), self_(self), adapter_(adapter),
      config_(config),
      task_(kernel, clock, config.period, config.phase,
            [this](std::uint64_t index, TimePoint release) { capture(index, release); }) {
  task_.set_jitter(config_.jitter, rng.stream("camera.jitter"));
}

void Camera::capture(std::uint64_t index, TimePoint release_time) {
  if (config_.frame_limit != 0 && frames_sent_ >= config_.frame_limit) {
    task_.stop();
    return;
  }
  const VideoFrame frame = generate_frame(index, clock_.local_now(release_time));
  someip::Writer writer;
  someip_serialize(writer, frame);
  network_.send(self_, adapter_, writer.take());
  ++frames_sent_;
}

}  // namespace dear::brake
