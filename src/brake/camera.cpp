#include "brake/camera.hpp"

#include "common/buffer_pool.hpp"
#include "obs/obs.hpp"
#include "someip/serialization.hpp"

namespace dear::brake {

namespace {

/// Stamps the frame identity words into the slab head, little-endian (the
/// deterministic part of the "pixel" content — consumers can verify which
/// logical frame a slab carries without decoding the metadata packet).
void stamp_frame(std::uint8_t* data, std::size_t capacity, const VideoFrame& frame,
                 std::uint64_t payload_bytes) {
  const std::uint64_t words[4] = {frame.frame_id, static_cast<std::uint64_t>(frame.capture_time),
                                  frame.content_hash, payload_bytes};
  std::size_t offset = 0;
  for (const std::uint64_t word : words) {
    if (offset + sizeof(word) > capacity) {
      break;
    }
    for (std::size_t i = 0; i < sizeof(word); ++i) {
      data[offset + i] = static_cast<std::uint8_t>(word >> (8 * i));
    }
    offset += sizeof(word);
  }
}

}  // namespace

bool decode_camera_packet(const std::vector<std::uint8_t>& payload, VideoFrame& frame) {
  someip::Reader reader(payload);
  someip_deserialize(reader, frame);
  return reader.ok() && reader.remaining() == 0;
}

Camera::Camera(sim::Kernel& kernel, const sim::PlatformClock& clock, net::Network& network,
               net::Endpoint self, net::Endpoint adapter, Config config, common::Rng rng)
    : kernel_(kernel), clock_(clock), network_(network), self_(self), adapter_(adapter),
      config_(config),
      task_(kernel, clock, config.period, config.phase,
            [this](std::uint64_t index, TimePoint release) { capture(index, release); }),
      faults_(config.faults, rng.stream("camera.faults")) {
  task_.set_jitter(config_.jitter, rng.stream("camera.jitter"));
}

void Camera::capture(std::uint64_t /*activation*/, TimePoint release_time) {
  if (config_.frame_limit != 0 && captures_ >= config_.frame_limit) {
    task_.stop();
    return;
  }
  // Frame ids are capture ordinals, not activation indices: where the
  // periodic grid starts depends on the camera clock's offset (a platform
  // property), while the frame stream 0..N-1 is the *input* and must be
  // identical for every platform seed.
  const std::uint64_t frame_id = captures_++;
  VideoFrame frame = generate_frame(frame_id, clock_.local_now(release_time));
  switch (faults_.next()) {
    case sim::SensorFaultInjector::Outcome::kDrop:
      return;
    case sim::SensorFaultInjector::Outcome::kStuck:
      // A frozen sensor re-delivers the previous frame verbatim; the very
      // first capture has nothing to freeze on and stays nominal.
      if (last_frame_.has_value()) {
        frame = *last_frame_;
      }
      break;
    case sim::SensorFaultInjector::Outcome::kNoisy:
      frame.content_hash ^= faults_.noise_word();
      break;
    case sim::SensorFaultInjector::Outcome::kNominal:
      break;
  }
  last_frame_ = frame;
  // Burst-capture data plane: the pixel slab must be secured before the
  // metadata packet goes out — a ring-exhausted capture is dropped whole
  // (no packet, no slab), so the drop shows up identically in the frame
  // digest and in the payload accounting.
  if (config_.payload_bytes > 0 && !capture_payload(frame)) {
    return;
  }
  // Pooled wire buffer: the network layer releases it back after delivery,
  // so the frame stream's acquire/release traffic balances — a sender that
  // pushed fresh vectors into the pool would force a cache flush per
  // scenario (caught by the alloc-count shelf-lock tests).
  someip::Writer writer(common::BufferPool::instance().acquire());
  someip_serialize(writer, frame);
  network_.send(self_, adapter_, writer.take());
  ++frames_sent_;
}

bool Camera::capture_payload(const VideoFrame& frame) {
  if (ring_.empty()) {
    ring_.resize(config_.ring_slabs > 0 ? config_.ring_slabs : 1);
  }
  // Dequeue: an empty slot loans lazily; a slot whose previous frame every
  // consumer has released (we hold the only handle) requeues — reset + a
  // fresh loan, which the shelf serves without allocating.
  common::LoanedBuffer* slot = nullptr;
  for (auto& candidate : ring_) {
    if (!candidate || candidate.use_count() == 1) {
      slot = &candidate;
      break;
    }
  }
  if (slot == nullptr) {
    // Every ring slab is still held downstream: deterministic drop.
    ++payload_drops_;
    obs::count_always(obs::Counter::kCameraPayloadDrops);
    return false;
  }
  slot->reset();
  *slot = common::BufferPool::instance().loan(config_.payload_bytes);
  stamp_frame(slot->data(), slot->capacity(), frame, config_.payload_bytes);
  slot->publish(config_.payload_bytes);
  ++payload_frames_;
  obs::count_always(obs::Counter::kCameraPayloadFrames);
  if (config_.frame_sink) {
    config_.frame_sink(*slot, frame);
  }
  return true;
}

}  // namespace dear::brake
