#include "brake/dear_pipeline.hpp"

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>

#include "analysis/report.hpp"
#include "analysis/rules.hpp"
#include "ara/com/local_binding.hpp"
#include "brake/camera.hpp"
#include "brake/logic.hpp"
#include "brake/services.hpp"
#include "common/digest.hpp"
#include "common/rng.hpp"
#include "dear/app_builder.hpp"
#include "dear/bundles.hpp"
#include "ft/health.hpp"
#include "net/sim_network.hpp"
#include "obs/obs.hpp"
#include "sim/clock_model.hpp"
#include "sim/sim_executor.hpp"

namespace dear::brake {

namespace {

constexpr net::NodeId kPlatform1 = 1;
constexpr net::NodeId kPlatform2 = 2;

constexpr net::Endpoint kCameraEp{kPlatform1, 10};
constexpr net::Endpoint kAdapterRawEp{kPlatform2, 100};
constexpr net::Endpoint kAdapterEp{kPlatform2, 101};
constexpr net::Endpoint kPreprocEp{kPlatform2, 102};
constexpr net::Endpoint kCvEp{kPlatform2, 103};
constexpr net::Endpoint kEbaEp{kPlatform2, 104};
constexpr net::Endpoint kMonitorEp{kPlatform2, 105};

using common::mix_digest;

// --- SWC logic reactors ----------------------------------------------------------

/// Video Adapter logic: a sensor reactor. Frames arrive sporadically over
/// the proprietary protocol and are tagged with physical reception time.
class AdapterLogic final : public reactor::Reactor {
 public:
  reactor::PhysicalAction<VideoFrame> frame_arrival{"frame_arrival", this};
  reactor::Output<VideoFrame> out{"out", this};

  AdapterLogic(reactor::Environment& environment, sim::ExecTimeModel cost)
      : Reactor("adapter_logic", environment) {
    add_reaction("on_frame", [this] { out.set(frame_arrival.get_ptr()); })
        .triggered_by(frame_arrival)
        .writes(out)
        .set_modeled_cost(cost);
  }
};

class PreprocessingLogic final : public reactor::Reactor {
 public:
  reactor::Input<VideoFrame> frame_in{"frame_in", this};
  reactor::Output<LaneInfo> lane_out{"lane_out", this};
  reactor::Output<VideoFrame> frame_fwd{"frame_fwd", this};

  PreprocessingLogic(reactor::Environment& environment, sim::ExecTimeModel cost)
      : Reactor("preprocessing_logic", environment) {
    add_reaction("on_frame",
                 [this] {
                   lane_out.set(detect_lane(frame_in.get()));
                   frame_fwd.set(frame_in.get_ptr());
                 })
        .triggered_by(frame_in)
        .writes(lane_out)
        .writes(frame_fwd)
        .set_modeled_cost(cost);
  }
};

class ComputerVisionLogic final : public reactor::Reactor {
 public:
  reactor::Input<VideoFrame> frame_in{"frame_in", this};
  reactor::Input<LaneInfo> lane_in{"lane_in", this};
  reactor::Output<VehicleList> vehicles_out{"vehicles_out", this};

  std::uint64_t input_mismatches{0};

  ComputerVisionLogic(reactor::Environment& environment, sim::ExecTimeModel cost)
      : Reactor("cv_logic", environment) {
    // One reaction triggered by either input; "the reaction that calls its
    // logic expects to receive two events with the same tag at both
    // inputs. If only one input is received, this is considered an error"
    // (paper §IV.B).
    add_reaction("on_inputs",
                 [this] {
                   if (!frame_in.is_present() || !lane_in.is_present()) {
                     ++input_mismatches;
                     return;
                   }
                   if (frame_in.get().frame_id != lane_in.get().frame_id) {
                     ++input_mismatches;
                     return;
                   }
                   vehicles_out.set(detect_vehicles(frame_in.get(), lane_in.get()));
                 })
        .triggered_by(frame_in)
        .triggered_by(lane_in)
        .writes(vehicles_out)
        .set_modeled_cost(cost);
  }
};

class EbaLogic final : public reactor::Reactor {
 public:
  reactor::Input<VehicleList> vehicles_in{"vehicles_in", this};
  reactor::Output<BrakeCommand> brake_out{"brake_out", this};

  using Observer = std::function<void(const VehicleList&, const BrakeCommand&, const reactor::Tag&)>;
  /// Invoked for every hold-fallback re-emission (no vehicle list exists).
  using HoldObserver = std::function<void(const BrakeCommand&, const reactor::Tag&)>;

  // Degraded-mode port, created only when the fault-tolerance layer is
  // deployed (hold_period > 0): with FT off the reactor graph — and with
  // it the fact table and the golden digests — is unchanged.
  std::unique_ptr<reactor::Input<ft::HealthState>> health_in;

  EbaLogic(reactor::Environment& environment, sim::ExecTimeModel cost, Observer observer,
           Duration hold_period = 0, HoldObserver hold_observer = {}, Duration hold_phase = 0)
      : Reactor("eba_logic", environment),
        observer_(std::move(observer)),
        hold_observer_(std::move(hold_observer)) {
    auto& on_vehicles = add_reaction("on_vehicles",
                                     [this] {
                                       const BrakeCommand command = decide_brake(vehicles_in.get());
                                       last_command_ = command;
                                       brake_out.set(command);
                                       observer_(vehicles_in.get(), command, current_tag());
                                     })
                            .triggered_by(vehicles_in)
                            .writes(brake_out);
    on_vehicles.set_modeled_cost(cost);
    if (hold_period > 0) {
      // The state annotation exists only alongside the fallback reader, so
      // the FT-off fact table stays byte-identical to before.
      on_vehicles.writes_state("eba.last_command");
      // Hold fallback: while computer vision is dead, keep re-emitting the
      // last safe brake command at the nominal cadence. Both triggers
      // (supervisor transitions, hold timer) are logical, so degraded
      // ticks land at reproducible tags.
      health_in = std::make_unique<reactor::Input<ft::HealthState>>("health_in", this);
      hold_timer_ = std::make_unique<reactor::Timer>("hold_timer", this, hold_period,
                                                     hold_phase > 0 ? hold_phase : hold_period);
      add_reaction("on_health", [this] { health_ = health_in->get(); })
          .triggered_by(*health_in)
          .writes_state("eba.health");
      add_reaction("on_hold",
                   [this] {
                     if (health_ != ft::HealthState::kDead || !last_command_.has_value()) {
                       return;
                     }
                     brake_out.set(*last_command_);
                     if (hold_observer_) {
                       hold_observer_(*last_command_, current_tag());
                     }
                   })
          .triggered_by(*hold_timer_)
          .writes(brake_out)
          .reads_state("eba.last_command")
          .reads_state("eba.health");
    }
  }

 private:
  Observer observer_;
  HoldObserver hold_observer_;
  std::unique_ptr<reactor::Timer> hold_timer_;
  ft::HealthState health_{ft::HealthState::kHealthy};
  std::optional<BrakeCommand> last_command_;
};

}  // namespace

PipelineResult run_dear_pipeline(const DearScenarioConfig& config) {
  common::Rng platform_rng(config.platform_seed);
  common::Rng camera_rng(config.camera_seed);

  sim::Kernel kernel;
  // Camera on platform 1 with its own clock; platform 2 hosts the SWCs.
  // The two draws are sequenced explicitly: as constructor arguments their
  // evaluation order would be compiler-dependent, and every stream draw
  // must be a pure function of (seed, draw index).
  auto drift_rng = platform_rng.stream("clock.drift");
  const Duration clock1_offset = drift_rng.uniform_duration(0, config.period);
  const double clock1_drift = drift_rng.uniform(-1000, 1000) * 1e-3 * config.camera_drift_ppm;
  const sim::PlatformClock clock1(clock1_offset, clock1_drift);
  // Platform 2 is the simulation reference clock (its SWCs are driven by
  // event arrival, not local timers, so its drift is immaterial here).

  net::SimNetwork network(kernel, platform_rng.stream("net"));
  net::LinkParams inter_link;
  inter_link.latency =
      sim::ExecTimeModel::uniform(config.link_latency_min, config.link_latency_max);
  network.set_default_link(inter_link);
  // The SWC-to-SWC SOME/IP traffic stays on platform 2 and runs over the
  // loopback link — the surface the scenario engine's network fault knobs
  // stress.
  net::LinkParams svc_link;
  svc_link.latency = sim::ExecTimeModel::uniform(config.svc_latency_min, config.svc_latency_max);
  svc_link.drop_probability = config.net_drop_probability;
  svc_link.duplicate_probability = config.net_duplicate_probability;
  svc_link.enforce_in_order = config.net_in_order;
  network.set_loopback_link(svc_link);

  someip::ServiceDiscovery discovery;
  sim::SimExecutor executor(kernel, platform_rng.stream("dispatch"));

  // --- the application, declaratively -----------------------------------------
  // Declared before the app: LocalBindings owned by the nodes' registries
  // detach from the hub on destruction.
  ara::com::LocalHub hub;

  // Camera activation grid, fixed before the fault plan: the injection
  // window and the health timers are anchored to it. The phase draw is a
  // named sub-stream, so hoisting it here leaves every other draw — and
  // with it the fault-free digests — untouched.
  auto camera_cfg_rng = camera_rng.stream("camera");
  // Newest published pixel slab (sensor data plane). Declared before the
  // camera so the handle is destroyed after it; holding only the latest
  // frame keeps the ring from exhausting, so engaging the data plane
  // changes no frame stream and no digest.
  common::LoanedBuffer latest_frame_pixels;
  Camera::Config camera_config;
  camera_config.period = config.period;
  camera_config.phase = camera_cfg_rng.uniform_duration(0, config.period - 1);
  camera_config.jitter = sim::ExecTimeModel::uniform(0, config.camera_jitter);
  camera_config.frame_limit = config.frames;
  camera_config.faults = config.sensor_faults;
  camera_config.payload_bytes = config.camera_payload_bytes;
  if (config.camera_payload_bytes > 0) {
    camera_config.frame_sink = [&latest_frame_pixels](const common::LoanedBuffer& slab,
                                                      const VideoFrame&) {
      latest_frame_pixels = slab;
    };
  }

  // The camera starts once the service wiring has settled (see below), so
  // grid points before `settle` are missed activations. Replicating
  // PeriodicTask's arm rule here yields the nominal global release of
  // frame 0 — jitter delays individual releases but never moves the grid.
  const Duration settle = 5 * kMillisecond + 2 * config.svc_latency_max;
  TimePoint first_capture = clock1.global_from_local(camera_config.phase);
  for (TimePoint k = 1; first_capture < settle; ++k) {
    first_capture = clock1.global_from_local(camera_config.phase + k * config.period);
  }

  // Fault-injection plan shared read-only by every binding. Declared
  // before the AppBuilder so it outlives the node runtimes that hold a
  // pointer to it. Computer vision is the victim: the longest stage, and
  // the one EBA's hold fallback guards.
  //
  // The down window is anchored to the capture grid: crash_at counts from
  // frame 0's nominal release, so which frames lose their traffic is a
  // pure function of the scenario knobs. The camera clock's offset (a
  // platform-seed draw spanning a whole period) shifts every sensor tag,
  // and an absolute window would let it shift window membership too —
  // breaking the cross-platform-seed digest invariance the campaign
  // checks.
  const bool ft_on = config.service_faults.any();
  ft::FaultPlan fault_plan;
  fault_plan.victim = kCvEp;
  fault_plan.down_from =
      config.service_faults.crash_at > 0 ? first_capture + config.service_faults.crash_at
                                         : Duration{0};
  fault_plan.down_until =
      fault_plan.down_from > 0 && config.service_faults.restart_after > 0
          ? fault_plan.down_from + config.service_faults.restart_after
          : Duration{0};
  fault_plan.call_error_probability = config.service_faults.call_error_probability;
  fault_plan.call_omission_probability = config.service_faults.call_omission_probability;
  fault_plan.fault_seed = config.fault_seed;

  // Health timers ride the same anchor, offset to sit strictly between
  // the chain's wire-tag clouds (frames land near the grid +{5, 10, 30}ms
  // mod period, window boundaries at +period/2): beats a quarter period
  // off the grid, supervisor checks at +period/4, hold ticks at +3/8.
  const Duration ft_anchor = first_capture % config.period;

  // Transactor configurations (paper §IV.B): one per SWC, derived from the
  // paper deadlines and the scenario's scaling knobs.
  const auto make_config = [&](Duration deadline) {
    transact::TransactorConfig tc;
    tc.deadline = scale_duration(deadline, config.deadline_scale);
    tc.latency_bound = config.latency_bound;
    tc.clock_error_bound = config.clock_error_bound;
    tc.untagged = config.untagged;
    return tc;
  };

  // Deployment: all four SWC services either stay on the default SOME/IP
  // backend or, when requested, move onto the zero-copy in-process
  // transport. The builder attaches the backend per node and deploys every
  // served/required instance before skeletons/proxies resolve bindings.
  AppBuilder::Config app_config;
  app_config.local_hub = config.local_transport ? &hub : nullptr;
  AppBuilder app(kernel, network, discovery, executor, platform_rng, app_config);

  auto& adapter = app.node("adapter", kAdapterEp, 0x21);
  auto& preproc = app.node("preproc", kPreprocEp, 0x22);
  auto& cv = app.node("cv", kCvEp, 0x23);
  auto& eba = app.node("eba", kEbaEp, 0x24);
  auto& monitor = app.node("monitor", kMonitorEp, 0x25);

  // The plan hooks live in every binding either way; installing an inert
  // plan (ft_idle_probe) measures their cost on the undisturbed hot path.
  if (ft_on || config.ft_idle_probe) {
    for (auto* node : {&adapter, &preproc, &cv, &eba, &monitor}) {
      node->runtime().set_fault_plan(&fault_plan);
    }
  }

  // Server bundles first (offered on construction), then client bundles.
  auto& adapter_srv = adapter.serve<VideoAdapter>(kInstance, make_config(config.adapter_deadline));
  auto& preproc_srv =
      preproc.serve<Preprocessing>(kInstance, make_config(config.preprocessing_deadline));
  auto& cv_srv = cv.serve<ComputerVision>(kInstance, make_config(config.cv_deadline));
  auto& eba_srv = eba.serve<Eba>(kInstance, make_config(config.eba_deadline));
  // Health monitoring rides the same descriptor machinery as the pipeline
  // services: the victim offers the heartbeat stream, EBA's node
  // supervises it (wired below, after the logic reactors exist).
  transact::ServerSide<ft::Health>* health_srv = nullptr;
  if (ft_on) {
    health_srv = &cv.serve<ft::Health>(kInstance, make_config(config.cv_deadline));
  }

  auto& preproc_cli =
      preproc.require<VideoAdapter>(kInstance, make_config(config.preprocessing_deadline));
  auto& cv_cli = cv.require<Preprocessing>(kInstance, make_config(config.cv_deadline));
  auto& eba_cli = eba.require<ComputerVision>(kInstance, make_config(config.eba_deadline));
  transact::ClientSide<ft::Health>* health_cli = nullptr;
  if (ft_on) {
    health_cli = &eba.require<ft::Health>(kInstance, make_config(config.eba_deadline));
  }
  if (config.retry.enabled()) {
    // The pipeline interfaces are pure event streams, so the budget has no
    // method call to retry here; installing it still exercises the policy
    // plumbing and keeps the two workloads symmetric.
    for (ara::ServiceProxy* proxy :
         {&preproc_cli.proxy(), &cv_cli.proxy(), &eba_cli.proxy()}) {
      proxy->set_retry_policy(config.retry);
    }
  }

  // Modeled execution times (upper bounds sit below the paper deadlines).
  const double ts = config.exec_time_scale;
  const auto adapter_cost =
      sim::ExecTimeModel::normal(1 * kMillisecond, 300 * kMicrosecond, 200 * kMicrosecond,
                                 3 * kMillisecond)
          .scaled(ts);
  const auto preproc_cost =
      sim::ExecTimeModel::normal(14 * kMillisecond, 2 * kMillisecond, 8 * kMillisecond,
                                 20 * kMillisecond)
          .scaled(ts);
  const auto cv_cost =
      sim::ExecTimeModel::normal(15 * kMillisecond, 2 * kMillisecond, 8 * kMillisecond,
                                 20 * kMillisecond)
          .scaled(ts);
  const auto eba_cost =
      sim::ExecTimeModel::normal(1 * kMillisecond, 300 * kMicrosecond, 200 * kMicrosecond,
                                 3 * kMillisecond)
          .scaled(ts);

  PipelineResult result;
  // Physical arrival time of each frame at the adapter, for end-to-end
  // latency accounting (capture→brake would need cross-clock conversion;
  // arrival→brake is the portion the pipeline controls).
  std::unordered_map<std::uint64_t, TimePoint> arrival_time;

  auto& adapter_logic = adapter.logic<AdapterLogic>(adapter_cost);
  auto& preproc_logic = preproc.logic<PreprocessingLogic>(preproc_cost);
  auto& cv_logic = cv.logic<ComputerVisionLogic>(cv_cost);
  auto& eba_logic = eba.logic<EbaLogic>(
      eba_cost,
      [&](const VehicleList& vehicles, const BrakeCommand& command, const reactor::Tag& tag) {
        ++result.frames_processed_eba;
        if (command.brake) {
          ++result.brake_commands;
        }
        if (command != reference_decision(vehicles.frame_id)) {
          ++result.wrong_decisions;
        }
        mix_digest(result.output_digest, vehicles.frame_id);
        mix_digest(result.output_digest, command.brake ? 1 : 0);
        mix_digest(result.output_digest, static_cast<std::uint64_t>(command.intensity * 1e6));
        const auto it = arrival_time.find(vehicles.frame_id);
        if (it != arrival_time.end()) {
          // The logical offset from the sensor tag is the deterministic
          // part of the tag; the absolute tag follows the camera/network
          // timing inputs.
          mix_digest(result.tag_digest, static_cast<std::uint64_t>(tag.time - it->second));
          mix_digest(result.tag_digest, tag.microstep);
          result.latency.add(static_cast<double>(kernel.now() - it->second));
          arrival_time.erase(it);
        }
      },
      ft_on ? config.period : Duration{0},
      [&](const BrakeCommand& command, const reactor::Tag& /*tag*/) {
        // Degraded tick: the held command re-enters the digest under a
        // marker so a nondeterministic fallback could not hide; no
        // reference comparison (there is no frame behind a held tick).
        ++result.ft_degraded_ticks;
        mix_digest(result.output_digest, 0xFFFF'0000'0000'0000ULL | command.frame_id);
        mix_digest(result.output_digest, command.brake ? 1 : 0);
        mix_digest(result.output_digest, static_cast<std::uint64_t>(command.intensity * 1e6));
      },
      ft_anchor + config.period / 4 + config.period / 8);

  ft::Supervisor* supervisor = nullptr;
  if (ft_on) {
    auto& beat_src = cv.logic<ft::HeartbeatEmitter>(
        config.period, ft_anchor + config.period + config.period / 4);
    cv.connect(beat_src.out, health_srv->tx(ft::Health::beat).in);
    // Staleness thresholds scale with the pipeline cadence: one missed
    // beat is tolerated, ~2.5 periods without beats counts as degraded,
    // four as dead (engaging the hold fallback).
    ft::SupervisorConfig sup_config;
    sup_config.check_period = config.period;
    sup_config.check_phase = ft_anchor + config.period / 4;
    sup_config.degraded_after = 2 * config.period + config.period / 2;
    sup_config.dead_after = 4 * config.period;
    supervisor = &eba.logic<ft::Supervisor>(sup_config);
    eba.connect(health_cli->tx(ft::Health::beat).out, supervisor->beat_in);
    eba.connect(supervisor->state_out, *eba_logic.health_in);
  }

  // Video Adapter publishes frames; Preprocessing consumes them and
  // publishes lane info + the forwarded frame; Computer Vision fuses both
  // into vehicle lists; EBA decides. Each connect binds an SWC logic port
  // to the matching member transactor derived from the service descriptor.
  adapter.connect(adapter_logic.out, adapter_srv.tx(VideoAdapter::frame).in);

  preproc.connect(preproc_cli.tx(VideoAdapter::frame).out, preproc_logic.frame_in);
  preproc.connect(preproc_logic.lane_out, preproc_srv.tx(Preprocessing::lane).in);
  preproc.connect(preproc_logic.frame_fwd, preproc_srv.tx(Preprocessing::forwarded_frame).in);

  cv.connect(cv_cli.tx(Preprocessing::forwarded_frame).out, cv_logic.frame_in);
  cv.connect(cv_cli.tx(Preprocessing::lane).out, cv_logic.lane_in);
  cv.connect(cv_logic.vehicles_out, cv_srv.tx(ComputerVision::vehicles).in);

  eba.connect(eba_cli.tx(ComputerVision::vehicles).out, eba_logic.vehicles_in);
  eba.connect(eba_logic.brake_out, eba_srv.tx(Eba::brake).in);

  // Untagged monitor subscriber (exercises interoperability: the tag on
  // the brake event is simply not collected by a non-reactor client).
  auto& eba_proxy = monitor.proxy<Eba>(kInstance);
  eba_proxy.get(Eba::brake).SetReceiveHandler([](const BrakeCommand&) {});
  eba_proxy.get(Eba::brake).Subscribe();

  // Camera frames enter the reactor world as sensor events: tagged with
  // the physical time of reception (paper §IV.B).
  network.bind(kAdapterRawEp, [&](const net::Packet& packet) {
    VideoFrame frame;
    if (!decode_camera_packet(packet.payload, frame)) {
      return;
    }
    arrival_time.emplace(frame.frame_id, kernel.now());
    adapter_logic.frame_arrival.schedule(frame);
  });

  // --- static pre-flight --------------------------------------------------------------
  if (config.preflight) {
    config.preflight(app);
  }
  if (config.build_only) {
    return result;
  }
  // Consume the compiled level tables (when a plan is supplied) before the
  // environments assemble; a stale plan throws here, before any event runs.
  if (config.schedule_plan != nullptr) {
    app.apply_schedule_plans(*config.schedule_plan);
  }
  // Fail fast on structural determinism violations before any event runs.
  // The structural gate lets deliberately tightened deadline budgets through:
  // those runs are out-of-envelope experiments whose misses the error
  // counters must observe.
  app.validate(analysis::Gate::kStructural);

  // --- drivers + camera ---------------------------------------------------------------
  app.start();

  // Let the service wiring settle before the sensor stream starts: event
  // subscriptions are SOME/IP control messages that traverse the simulated
  // service links, so with a slow link a frame published right away could
  // reach a server binding that does not know its subscribers yet — and
  // whether it does would depend on platform-side latency draws. Real
  // deployments sequence this through service discovery; the DES
  // equivalent is a short drain scaled to the link model.
  kernel.run_until(settle);

  Camera camera(kernel, clock1, network, kCameraEp, kAdapterRawEp, camera_config, camera_rng);
  camera.start();

  // Subscription churn: toggle EBA's vehicles subscription at a fixed
  // physical cadence. The toggle windows are physical time, so churn
  // scenarios are excluded from the digest-invariance groups; the claim
  // under test is error accounting, not bit-identical output.
  std::function<void()> churn_toggle;
  if (config.service_faults.churn_period > 0) {
    churn_toggle = [&] {
      auto& rx = eba_cli.tx(ComputerVision::vehicles);
      if (rx.subscribed()) {
        rx.unsubscribe();
      } else {
        rx.resubscribe();
      }
      kernel.schedule_after(config.service_faults.churn_period, [&] { churn_toggle(); });
    };
    kernel.schedule_after(config.service_faults.churn_period, [&] { churn_toggle(); });
  }

  const TimePoint horizon = settle +
                            static_cast<TimePoint>(config.frames + 16) * config.period +
                            16 * config.period;
  kernel.run_until(horizon);
  camera.stop();

  // --- collect results -------------------------------------------------------------------
  result.frames_sent = camera.frames_sent();
  result.camera_payload_frames = camera.payload_frames();
  result.camera_payload_drops = camera.payload_drops();
  result.sensor_dropped = camera.fault_injector().dropped_samples();
  result.sensor_stuck = camera.fault_injector().stuck_samples();
  result.sensor_noisy = camera.fault_injector().noisy_samples();
  result.errors.input_mismatches_cv = cv_logic.input_mismatches;

  result.deadline_violations = app.deadline_violations();
  result.tardy_messages = app.tardy_messages();
  result.untagged_messages = app.untagged_messages();

  // Observable protocol errors map onto the Figure 5 categories: a missing
  // or late message surfaces at the stage that would have consumed it.
  const auto& frame_tx = adapter_srv.tx(VideoAdapter::frame);
  const auto& frame_rx = preproc_cli.tx(VideoAdapter::frame);
  const auto& lane_tx = preproc_srv.tx(Preprocessing::lane);
  const auto& fwd_tx = preproc_srv.tx(Preprocessing::forwarded_frame);
  const auto& cv_frame_rx = cv_cli.tx(Preprocessing::forwarded_frame);
  const auto& cv_lane_rx = cv_cli.tx(Preprocessing::lane);
  const auto& vehicles_tx = cv_srv.tx(ComputerVision::vehicles);
  const auto& vehicles_rx = eba_cli.tx(ComputerVision::vehicles);

  result.errors.dropped_frames_preprocessing += frame_tx.deadline_violations() +
                                                frame_rx.tardy_messages() +
                                                frame_rx.dropped_messages();
  result.errors.dropped_frames_cv +=
      lane_tx.deadline_violations() + fwd_tx.deadline_violations() + cv_frame_rx.tardy_messages() +
      cv_lane_rx.tardy_messages() + cv_frame_rx.dropped_messages() + cv_lane_rx.dropped_messages();
  result.errors.dropped_vehicles_eba += vehicles_tx.deadline_violations() +
                                        vehicles_rx.tardy_messages() +
                                        vehicles_rx.dropped_messages();

  result.ft_crash_drops = fault_plan.crash_drops.load(std::memory_order_relaxed);
  result.ft_call_faults = fault_plan.call_errors.load(std::memory_order_relaxed) +
                          fault_plan.call_omissions.load(std::memory_order_relaxed);
  result.ft_retries =
      preproc_cli.proxy().retries() + cv_cli.proxy().retries() + eba_cli.proxy().retries();
  // ft_degraded_ticks accumulated in the hold observer.
  result.ft_failovers = supervisor != nullptr ? supervisor->failovers() : 0;
  obs::count(obs::Counter::kFtCrashDrops, result.ft_crash_drops);
  obs::count(obs::Counter::kFtCallFaults, result.ft_call_faults);
  obs::count(obs::Counter::kFtDegradedTicks, result.ft_degraded_ticks);

  // End-to-end logical latency: the EBA tag is the adapter arrival tag plus
  // the accumulated D + L offsets — deterministic by construction; report
  // the per-frame physical completion latency instead (capture to EBA
  // execution) using the drivers' trace-free accounting.
  return result;
}

}  // namespace dear::brake
