#include "brake/dear_pipeline.hpp"

#include <memory>
#include <unordered_map>

#include "ara/com/local_binding.hpp"
#include "ara/runtime.hpp"
#include "brake/camera.hpp"
#include "brake/logic.hpp"
#include "brake/services.hpp"
#include "common/rng.hpp"
#include "dear/dear.hpp"
#include "net/sim_network.hpp"
#include "sim/clock_model.hpp"
#include "sim/sim_executor.hpp"

namespace dear::brake {

namespace {

constexpr net::NodeId kPlatform1 = 1;
constexpr net::NodeId kPlatform2 = 2;

constexpr net::Endpoint kCameraEp{kPlatform1, 10};
constexpr net::Endpoint kAdapterRawEp{kPlatform2, 100};
constexpr net::Endpoint kAdapterEp{kPlatform2, 101};
constexpr net::Endpoint kPreprocEp{kPlatform2, 102};
constexpr net::Endpoint kCvEp{kPlatform2, 103};
constexpr net::Endpoint kEbaEp{kPlatform2, 104};
constexpr net::Endpoint kMonitorEp{kPlatform2, 105};

void mix_digest(std::uint64_t& digest, std::uint64_t value) {
  std::uint64_t state = digest ^ (value + 0x9e3779b97f4a7c15ULL);
  digest = common::splitmix64(state);
}

[[nodiscard]] Duration scaled(Duration d, double factor) {
  return static_cast<Duration>(static_cast<double>(d) * factor);
}

// --- SWC logic reactors ----------------------------------------------------------

/// Video Adapter logic: a sensor reactor. Frames arrive sporadically over
/// the proprietary protocol and are tagged with physical reception time.
class AdapterLogic final : public reactor::Reactor {
 public:
  reactor::PhysicalAction<VideoFrame> frame_arrival{"frame_arrival", this};
  reactor::Output<VideoFrame> out{"out", this};

  AdapterLogic(reactor::Environment& environment, sim::ExecTimeModel cost)
      : Reactor("adapter_logic", environment) {
    add_reaction("on_frame", [this] { out.set(frame_arrival.get_ptr()); })
        .triggered_by(frame_arrival)
        .writes(out)
        .set_modeled_cost(cost);
  }
};

class PreprocessingLogic final : public reactor::Reactor {
 public:
  reactor::Input<VideoFrame> frame_in{"frame_in", this};
  reactor::Output<LaneInfo> lane_out{"lane_out", this};
  reactor::Output<VideoFrame> frame_fwd{"frame_fwd", this};

  PreprocessingLogic(reactor::Environment& environment, sim::ExecTimeModel cost)
      : Reactor("preprocessing_logic", environment) {
    add_reaction("on_frame",
                 [this] {
                   lane_out.set(detect_lane(frame_in.get()));
                   frame_fwd.set(frame_in.get_ptr());
                 })
        .triggered_by(frame_in)
        .writes(lane_out)
        .writes(frame_fwd)
        .set_modeled_cost(cost);
  }
};

class ComputerVisionLogic final : public reactor::Reactor {
 public:
  reactor::Input<VideoFrame> frame_in{"frame_in", this};
  reactor::Input<LaneInfo> lane_in{"lane_in", this};
  reactor::Output<VehicleList> vehicles_out{"vehicles_out", this};

  std::uint64_t input_mismatches{0};

  ComputerVisionLogic(reactor::Environment& environment, sim::ExecTimeModel cost)
      : Reactor("cv_logic", environment) {
    // One reaction triggered by either input; "the reaction that calls its
    // logic expects to receive two events with the same tag at both
    // inputs. If only one input is received, this is considered an error"
    // (paper §IV.B).
    add_reaction("on_inputs",
                 [this] {
                   if (!frame_in.is_present() || !lane_in.is_present()) {
                     ++input_mismatches;
                     return;
                   }
                   if (frame_in.get().frame_id != lane_in.get().frame_id) {
                     ++input_mismatches;
                     return;
                   }
                   vehicles_out.set(detect_vehicles(frame_in.get(), lane_in.get()));
                 })
        .triggered_by(frame_in)
        .triggered_by(lane_in)
        .writes(vehicles_out)
        .set_modeled_cost(cost);
  }
};

class EbaLogic final : public reactor::Reactor {
 public:
  reactor::Input<VehicleList> vehicles_in{"vehicles_in", this};
  reactor::Output<BrakeCommand> brake_out{"brake_out", this};

  using Observer = std::function<void(const VehicleList&, const BrakeCommand&, const reactor::Tag&)>;

  EbaLogic(reactor::Environment& environment, sim::ExecTimeModel cost, Observer observer)
      : Reactor("eba_logic", environment), observer_(std::move(observer)) {
    add_reaction("on_vehicles",
                 [this] {
                   const BrakeCommand command = decide_brake(vehicles_in.get());
                   brake_out.set(command);
                   observer_(vehicles_in.get(), command, current_tag());
                 })
        .triggered_by(vehicles_in)
        .writes(brake_out)
        .set_modeled_cost(cost);
  }

 private:
  Observer observer_;
};

}  // namespace

PipelineResult run_dear_pipeline(const DearScenarioConfig& config) {
  common::Rng platform_rng(config.platform_seed);
  common::Rng camera_rng(config.camera_seed);

  sim::Kernel kernel;
  // Camera on platform 1 with its own clock; platform 2 hosts the SWCs.
  auto drift_rng = platform_rng.stream("clock.drift");
  const sim::PlatformClock clock1(drift_rng.uniform_duration(0, config.period),
                                  drift_rng.uniform(-1000, 1000) * 0.03);
  // Platform 2 is the simulation reference clock (its SWCs are driven by
  // event arrival, not local timers, so its drift is immaterial here).

  net::SimNetwork network(kernel, platform_rng.stream("net"));
  net::LinkParams inter_link;
  inter_link.latency =
      sim::ExecTimeModel::uniform(config.link_latency_min, config.link_latency_max);
  network.set_default_link(inter_link);

  someip::ServiceDiscovery discovery;
  sim::SimExecutor executor(kernel, platform_rng.stream("dispatch"));

  // --- ara runtimes + services ------------------------------------------------
  // Declared before the runtimes: LocalBindings owned by the runtimes'
  // registries detach from the hub on destruction.
  ara::com::LocalHub hub;
  ara::Runtime adapter_rt(network, discovery, executor, kAdapterEp, 0x21);
  ara::Runtime preproc_rt(network, discovery, executor, kPreprocEp, 0x22);
  ara::Runtime cv_rt(network, discovery, executor, kCvEp, 0x23);
  ara::Runtime eba_rt(network, discovery, executor, kEbaEp, 0x24);
  ara::Runtime monitor_rt(network, discovery, executor, kMonitorEp, 0x25);

  // Deployment: all four SWC services either stay on the default SOME/IP
  // backend or, when requested, move onto the zero-copy in-process
  // transport. Must happen before skeletons/proxies resolve their binding.
  if (config.local_transport) {
    for (ara::Runtime* rt : {&adapter_rt, &preproc_rt, &cv_rt, &eba_rt, &monitor_rt}) {
      // The local backend shares the SOME/IP backend's endpoint and client
      // id, so discovery and session accounting are transport-agnostic.
      rt->attach_backend(ara::com::BackendKind::kLocal,
                         std::make_unique<ara::com::LocalBinding>(
                             hub, executor, rt->endpoint(), rt->binding().client_id()));
      for (const someip::ServiceId service :
           {kVideoAdapterService, kPreprocessingService, kComputerVisionService, kEbaService}) {
        rt->deploy({service, kInstance}, ara::com::BackendKind::kLocal);
      }
    }
  }

  VideoAdapterSkeleton adapter_skel(adapter_rt);
  PreprocessingSkeleton preproc_skel(preproc_rt);
  ComputerVisionSkeleton cv_skel(cv_rt);
  EbaSkeleton eba_skel(eba_rt);
  adapter_skel.OfferService();
  preproc_skel.OfferService();
  cv_skel.OfferService();
  eba_skel.OfferService();

  VideoAdapterProxy adapter_proxy(preproc_rt, {kVideoAdapterService, kInstance},
                                  *preproc_rt.resolve({kVideoAdapterService, kInstance}));
  PreprocessingProxy preproc_proxy(cv_rt, {kPreprocessingService, kInstance},
                                   *cv_rt.resolve({kPreprocessingService, kInstance}));
  ComputerVisionProxy cv_proxy(eba_rt, {kComputerVisionService, kInstance},
                               *eba_rt.resolve({kComputerVisionService, kInstance}));
  EbaProxy eba_proxy(monitor_rt, {kEbaService, kInstance},
                     *monitor_rt.resolve({kEbaService, kInstance}));

  // --- reactor environments, one per SWC process ---------------------------------
  reactor::SimClock sim_clock(kernel);
  reactor::Environment::Config env_config;
  env_config.keepalive = true;
  reactor::Environment adapter_env(sim_clock, env_config);
  reactor::Environment preproc_env(sim_clock, env_config);
  reactor::Environment cv_env(sim_clock, env_config);
  reactor::Environment eba_env(sim_clock, env_config);

  // Modeled execution times (upper bounds sit below the paper deadlines).
  const double ts = config.exec_time_scale;
  const auto adapter_cost =
      sim::ExecTimeModel::normal(1 * kMillisecond, 300 * kMicrosecond, 200 * kMicrosecond,
                                 3 * kMillisecond)
          .scaled(ts);
  const auto preproc_cost =
      sim::ExecTimeModel::normal(14 * kMillisecond, 2 * kMillisecond, 8 * kMillisecond,
                                 20 * kMillisecond)
          .scaled(ts);
  const auto cv_cost =
      sim::ExecTimeModel::normal(15 * kMillisecond, 2 * kMillisecond, 8 * kMillisecond,
                                 20 * kMillisecond)
          .scaled(ts);
  const auto eba_cost =
      sim::ExecTimeModel::normal(1 * kMillisecond, 300 * kMicrosecond, 200 * kMicrosecond,
                                 3 * kMillisecond)
          .scaled(ts);

  PipelineResult result;
  // Physical arrival time of each frame at the adapter, for end-to-end
  // latency accounting (capture→brake would need cross-clock conversion;
  // arrival→brake is the portion the pipeline controls).
  std::unordered_map<std::uint64_t, TimePoint> arrival_time;

  AdapterLogic adapter_logic(adapter_env, adapter_cost);
  PreprocessingLogic preproc_logic(preproc_env, preproc_cost);
  ComputerVisionLogic cv_logic(cv_env, cv_cost);
  EbaLogic eba_logic(eba_env, eba_cost,
                     [&](const VehicleList& vehicles, const BrakeCommand& command,
                         const reactor::Tag& tag) {
                       ++result.frames_processed_eba;
                       if (command.brake) {
                         ++result.brake_commands;
                       }
                       if (command != reference_decision(vehicles.frame_id)) {
                         ++result.wrong_decisions;
                       }
                       mix_digest(result.output_digest, vehicles.frame_id);
                       mix_digest(result.output_digest, command.brake ? 1 : 0);
                       mix_digest(result.output_digest,
                                  static_cast<std::uint64_t>(command.intensity * 1e6));
                       const auto it = arrival_time.find(vehicles.frame_id);
                       if (it != arrival_time.end()) {
                         // The logical offset from the sensor tag is the
                         // deterministic part of the tag; the absolute tag
                         // follows the camera/network timing inputs.
                         mix_digest(result.tag_digest,
                                    static_cast<std::uint64_t>(tag.time - it->second));
                         mix_digest(result.tag_digest, tag.microstep);
                         result.latency.add(static_cast<double>(kernel.now() - it->second));
                         arrival_time.erase(it);
                       }
                     });

  // --- transactor configurations (paper §IV.B) --------------------------------------
  const auto make_config = [&](Duration deadline) {
    transact::TransactorConfig tc;
    tc.deadline = scaled(deadline, config.deadline_scale);
    tc.latency_bound = config.latency_bound;
    tc.clock_error_bound = config.clock_error_bound;
    tc.untagged = config.untagged;
    return tc;
  };

  // Video Adapter (server role: publishes frames).
  transact::ServerEventTransactor<VideoFrame> adapter_frame_tx(
      "adapter_frame_tx", adapter_env, adapter_skel.frame,
      *adapter_rt.binding_for({kVideoAdapterService, kInstance}),
      make_config(config.adapter_deadline));
  adapter_env.connect(adapter_logic.out, adapter_frame_tx.in);

  // Preprocessing (client role for frames; server role for lane + fwd frame).
  transact::ClientEventTransactor<VideoFrame> preproc_frame_rx(
      "preproc_frame_rx", preproc_env, adapter_proxy.frame,
      *preproc_rt.binding_for({kVideoAdapterService, kInstance}),
      make_config(config.preprocessing_deadline));
  preproc_env.connect(preproc_frame_rx.out, preproc_logic.frame_in);
  transact::ServerEventTransactor<LaneInfo> preproc_lane_tx(
      "preproc_lane_tx", preproc_env, preproc_skel.lane,
      *preproc_rt.binding_for({kPreprocessingService, kInstance}),
      make_config(config.preprocessing_deadline));
  preproc_env.connect(preproc_logic.lane_out, preproc_lane_tx.in);
  transact::ServerEventTransactor<VideoFrame> preproc_fwd_tx(
      "preproc_fwd_tx", preproc_env, preproc_skel.forwarded_frame,
      *preproc_rt.binding_for({kPreprocessingService, kInstance}),
      make_config(config.preprocessing_deadline));
  preproc_env.connect(preproc_logic.frame_fwd, preproc_fwd_tx.in);

  // Computer Vision (client role for lane + frame; server role for vehicles).
  transact::ClientEventTransactor<VideoFrame> cv_frame_rx(
      "cv_frame_rx", cv_env, preproc_proxy.forwarded_frame,
      *cv_rt.binding_for({kPreprocessingService, kInstance}),
      make_config(config.cv_deadline));
  cv_env.connect(cv_frame_rx.out, cv_logic.frame_in);
  transact::ClientEventTransactor<LaneInfo> cv_lane_rx(
      "cv_lane_rx", cv_env, preproc_proxy.lane,
      *cv_rt.binding_for({kPreprocessingService, kInstance}),
      make_config(config.cv_deadline));
  cv_env.connect(cv_lane_rx.out, cv_logic.lane_in);
  transact::ServerEventTransactor<VehicleList> cv_vehicles_tx(
      "cv_vehicles_tx", cv_env, cv_skel.vehicles,
      *cv_rt.binding_for({kComputerVisionService, kInstance}),
      make_config(config.cv_deadline));
  cv_env.connect(cv_logic.vehicles_out, cv_vehicles_tx.in);

  // EBA (client role for vehicles; server role for the brake command).
  transact::ClientEventTransactor<VehicleList> eba_vehicles_rx(
      "eba_vehicles_rx", eba_env, cv_proxy.vehicles,
      *eba_rt.binding_for({kComputerVisionService, kInstance}),
      make_config(config.eba_deadline));
  eba_env.connect(eba_vehicles_rx.out, eba_logic.vehicles_in);
  transact::ServerEventTransactor<BrakeCommand> eba_brake_tx(
      "eba_brake_tx", eba_env, eba_skel.brake,
      *eba_rt.binding_for({kEbaService, kInstance}),
      make_config(config.eba_deadline));
  eba_env.connect(eba_logic.brake_out, eba_brake_tx.in);

  // Untagged monitor subscriber (exercises interoperability: the tag on
  // the brake event is simply not collected by a non-reactor client).
  eba_proxy.brake.SetReceiveHandler([](const BrakeCommand&) {});
  eba_proxy.brake.Subscribe();

  // Camera frames enter the reactor world as sensor events: tagged with
  // the physical time of reception (paper §IV.B).
  network.bind(kAdapterRawEp, [&](const net::Packet& packet) {
    VideoFrame frame;
    if (!decode_camera_packet(packet.payload, frame)) {
      return;
    }
    arrival_time.emplace(frame.frame_id, kernel.now());
    adapter_logic.frame_arrival.schedule(frame);
  });

  // --- drivers + camera ---------------------------------------------------------------
  reactor::SimDriver adapter_driver(adapter_env, kernel, platform_rng.stream("cost.adapter"));
  reactor::SimDriver preproc_driver(preproc_env, kernel, platform_rng.stream("cost.preproc"));
  reactor::SimDriver cv_driver(cv_env, kernel, platform_rng.stream("cost.cv"));
  reactor::SimDriver eba_driver(eba_env, kernel, platform_rng.stream("cost.eba"));
  adapter_driver.start();
  preproc_driver.start();
  cv_driver.start();
  eba_driver.start();

  auto camera_cfg_rng = camera_rng.stream("camera");
  Camera::Config camera_config;
  camera_config.period = config.period;
  camera_config.phase = camera_cfg_rng.uniform_duration(0, config.period - 1);
  camera_config.jitter = sim::ExecTimeModel::uniform(0, config.camera_jitter);
  camera_config.frame_limit = config.frames;
  Camera camera(kernel, clock1, network, kCameraEp, kAdapterRawEp, camera_config, camera_rng);
  camera.start();

  const TimePoint horizon =
      static_cast<TimePoint>(config.frames + 16) * config.period + 16 * config.period;
  kernel.run_until(horizon);
  camera.stop();

  // --- collect results -------------------------------------------------------------------
  result.frames_sent = camera.frames_sent();
  result.errors.input_mismatches_cv = cv_logic.input_mismatches;

  const transact::Transactor* transactors[] = {
      &adapter_frame_tx, &preproc_frame_rx, &preproc_lane_tx, &preproc_fwd_tx,
      &cv_frame_rx,      &cv_lane_rx,       &cv_vehicles_tx,  &eba_vehicles_rx,
      &eba_brake_tx};
  for (const transact::Transactor* tx : transactors) {
    result.deadline_violations += tx->deadline_violations();
    result.tardy_messages += tx->tardy_messages();
    result.untagged_messages += tx->untagged_messages();
  }
  // Observable protocol errors map onto the Figure 5 categories: a missing
  // or late message surfaces at the stage that would have consumed it.
  result.errors.dropped_frames_preprocessing +=
      adapter_frame_tx.deadline_violations() + preproc_frame_rx.tardy_messages() +
      preproc_frame_rx.dropped_messages();
  result.errors.dropped_frames_cv += preproc_lane_tx.deadline_violations() +
                                     preproc_fwd_tx.deadline_violations() +
                                     cv_frame_rx.tardy_messages() + cv_lane_rx.tardy_messages() +
                                     cv_frame_rx.dropped_messages() +
                                     cv_lane_rx.dropped_messages();
  result.errors.dropped_vehicles_eba += cv_vehicles_tx.deadline_violations() +
                                        eba_vehicles_rx.tardy_messages() +
                                        eba_vehicles_rx.dropped_messages();

  // End-to-end logical latency: the EBA tag is the adapter arrival tag plus
  // the accumulated D + L offsets — deterministic by construction; report
  // the per-frame physical completion latency instead (capture to EBA
  // execution) using the drivers' trace-free accounting.
  return result;
}

}  // namespace dear::brake
