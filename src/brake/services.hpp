// Service interfaces of the brake assistant (paper Figure 4).
//
// The communication along the component chain occurs through AP service
// interfaces via the SOME/IP middleware; event notifications transfer the
// data. These are the "generated" proxy/skeleton classes for each service.
#pragma once

#include "ara/event.hpp"
#include "ara/proxy.hpp"
#include "ara/skeleton.hpp"
#include "brake/types.hpp"

namespace dear::brake {

// Service ids.
inline constexpr someip::ServiceId kVideoAdapterService = 0x1001;
inline constexpr someip::ServiceId kPreprocessingService = 0x1002;
inline constexpr someip::ServiceId kComputerVisionService = 0x1003;
inline constexpr someip::ServiceId kEbaService = 0x1004;
inline constexpr someip::InstanceId kInstance = 0x0001;

// Event ids (high bit set per SOME/IP convention).
inline constexpr someip::EventId kFrameEvent = 0x8001;
inline constexpr someip::EventId kLaneEvent = 0x8002;
/// Preprocessing forwards the original frame alongside the lane info
/// ("Computer Vision receives from Preprocessing both the lane information
/// as well as the original frame", paper §IV.A).
inline constexpr someip::EventId kForwardedFrameEvent = 0x8003;
inline constexpr someip::EventId kVehiclesEvent = 0x8004;
inline constexpr someip::EventId kBrakeEvent = 0x8005;

// --- Video Adapter: offers the frame stream ---------------------------------

class VideoAdapterSkeleton : public ara::ServiceSkeleton {
 public:
  VideoAdapterSkeleton(ara::Runtime& runtime,
                       ara::MethodCallProcessingMode mode = ara::MethodCallProcessingMode::kEvent)
      : ServiceSkeleton(runtime, {kVideoAdapterService, kInstance}, mode) {}

  ara::SkeletonEvent<VideoFrame> frame{*this, kFrameEvent};
};

class VideoAdapterProxy : public ara::ServiceProxy {
 public:
  VideoAdapterProxy(ara::Runtime& runtime, ara::InstanceIdentifier instance, net::Endpoint server)
      : ServiceProxy(runtime, instance, server) {}

  ara::ProxyEvent<VideoFrame> frame{*this, kFrameEvent};
};

// --- Preprocessing: offers lane info + forwarded frames -----------------------

class PreprocessingSkeleton : public ara::ServiceSkeleton {
 public:
  PreprocessingSkeleton(ara::Runtime& runtime,
                        ara::MethodCallProcessingMode mode = ara::MethodCallProcessingMode::kEvent)
      : ServiceSkeleton(runtime, {kPreprocessingService, kInstance}, mode) {}

  ara::SkeletonEvent<LaneInfo> lane{*this, kLaneEvent};
  ara::SkeletonEvent<VideoFrame> forwarded_frame{*this, kForwardedFrameEvent};
};

class PreprocessingProxy : public ara::ServiceProxy {
 public:
  PreprocessingProxy(ara::Runtime& runtime, ara::InstanceIdentifier instance,
                     net::Endpoint server)
      : ServiceProxy(runtime, instance, server) {}

  ara::ProxyEvent<LaneInfo> lane{*this, kLaneEvent};
  ara::ProxyEvent<VideoFrame> forwarded_frame{*this, kForwardedFrameEvent};
};

// --- Computer Vision: offers detected vehicles ---------------------------------

class ComputerVisionSkeleton : public ara::ServiceSkeleton {
 public:
  ComputerVisionSkeleton(ara::Runtime& runtime,
                         ara::MethodCallProcessingMode mode = ara::MethodCallProcessingMode::kEvent)
      : ServiceSkeleton(runtime, {kComputerVisionService, kInstance}, mode) {}

  ara::SkeletonEvent<VehicleList> vehicles{*this, kVehiclesEvent};
};

class ComputerVisionProxy : public ara::ServiceProxy {
 public:
  ComputerVisionProxy(ara::Runtime& runtime, ara::InstanceIdentifier instance,
                      net::Endpoint server)
      : ServiceProxy(runtime, instance, server) {}

  ara::ProxyEvent<VehicleList> vehicles{*this, kVehiclesEvent};
};

// --- EBA: offers the brake command (for actuators / instrumentation) -----------

class EbaSkeleton : public ara::ServiceSkeleton {
 public:
  EbaSkeleton(ara::Runtime& runtime,
              ara::MethodCallProcessingMode mode = ara::MethodCallProcessingMode::kEvent)
      : ServiceSkeleton(runtime, {kEbaService, kInstance}, mode) {}

  ara::SkeletonEvent<BrakeCommand> brake{*this, kBrakeEvent};
};

class EbaProxy : public ara::ServiceProxy {
 public:
  EbaProxy(ara::Runtime& runtime, ara::InstanceIdentifier instance, net::Endpoint server)
      : ServiceProxy(runtime, instance, server) {}

  ara::ProxyEvent<BrakeCommand> brake{*this, kBrakeEvent};
};

}  // namespace dear::brake
