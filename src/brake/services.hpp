// Service interfaces of the brake assistant (paper Figure 4), declared as
// compile-time ServiceInterface descriptors.
//
// The communication along the component chain occurs through AP service
// interfaces via the SOME/IP middleware; event notifications transfer the
// data. Where earlier revisions spelled out one proxy and one skeleton
// class per service by hand, each service is now a single descriptor —
// the generator-input replacement — and every consumer derives what it
// needs from it:
//
//   ara::Proxy<VideoAdapter> / ara::Skeleton<VideoAdapter>   (ara/generated.hpp)
//   dear::ClientSide<VideoAdapter> / dear::ServerSide<VideoAdapter>
//                                                            (dear/bundles.hpp)
//
// Wire identifiers (service ids, event ids) are unchanged from the
// handwritten classes; tests/ara/descriptor_test.cpp pins them.
#pragma once

#include <array>

#include "ara/meta/service_interface.hpp"
#include "brake/types.hpp"

namespace dear::brake {

// Service ids.
inline constexpr someip::ServiceId kVideoAdapterService = 0x1001;
inline constexpr someip::ServiceId kPreprocessingService = 0x1002;
inline constexpr someip::ServiceId kComputerVisionService = 0x1003;
inline constexpr someip::ServiceId kEbaService = 0x1004;
inline constexpr someip::InstanceId kInstance = 0x0001;

// Event ids (high bit set per SOME/IP convention).
inline constexpr someip::EventId kFrameEvent = 0x8001;
inline constexpr someip::EventId kLaneEvent = 0x8002;
/// Preprocessing forwards the original frame alongside the lane info
/// ("Computer Vision receives from Preprocessing both the lane information
/// as well as the original frame", paper §IV.A).
inline constexpr someip::EventId kForwardedFrameEvent = 0x8003;
inline constexpr someip::EventId kVehiclesEvent = 0x8004;
inline constexpr someip::EventId kBrakeEvent = 0x8005;

/// Video Adapter: offers the frame stream.
struct VideoAdapter {
  static constexpr ara::meta::Event<VideoFrame, kFrameEvent> frame{"frame"};
  static constexpr auto kInterface =
      ara::meta::service_interface("VideoAdapter", kVideoAdapterService, {1, 0}, frame);
};

/// Preprocessing: offers lane info + forwarded frames.
struct Preprocessing {
  static constexpr ara::meta::Event<LaneInfo, kLaneEvent> lane{"lane"};
  static constexpr ara::meta::Event<VideoFrame, kForwardedFrameEvent> forwarded_frame{
      "forwarded_frame"};
  static constexpr auto kInterface = ara::meta::service_interface(
      "Preprocessing", kPreprocessingService, {1, 0}, lane, forwarded_frame);
};

/// Computer Vision: offers detected vehicles.
struct ComputerVision {
  static constexpr ara::meta::Event<VehicleList, kVehiclesEvent> vehicles{"vehicles"};
  static constexpr auto kInterface =
      ara::meta::service_interface("ComputerVision", kComputerVisionService, {1, 0}, vehicles);
};

/// EBA: offers the brake command (for actuators / instrumentation).
struct Eba {
  static constexpr ara::meta::Event<BrakeCommand, kBrakeEvent> brake{"brake"};
  static constexpr auto kInterface =
      ara::meta::service_interface("Eba", kEbaService, {1, 0}, brake);
  /// Camera→brake end-to-end budget: the logical latency of the chain at
  /// the paper's deadlines is (5+5)+(25+5)+(25+5) = 70 ms; 80 ms leaves
  /// headroom without hiding a regression (DEAR-LAT-001 checks it).
  static constexpr std::array kEndToEndBudgets{
      ara::meta::EndToEndBudget{"brake", 80'000'000}};
};

}  // namespace dear::brake
