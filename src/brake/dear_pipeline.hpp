// The deterministic brake assistant built on DEAR (paper §IV.B) —
// variant 3 of the three brake-assistant pipelines (variant 1:
// nondet_pipeline.hpp, the stock APD baseline; variant 2:
// det_client_pipeline.hpp, the DeterministicClient baseline; see the
// overview in det_client_pipeline.hpp).
//
// Each SWC's logic is encapsulated in a reactor with one reaction per
// incoming event; transactor bundles derived from the service descriptors
// (brake/services.hpp, dear/bundles.hpp) bind the reactors to the
// unchanged AP service interfaces, and the whole deployment is assembled
// by dear::AppBuilder. The Video Adapter is the sensor boundary: incoming
// camera frames are tagged with the physical time of reception, and from
// there on every reaction executes in a deterministic order.
//
// Deadlines (defaults from the paper): Video Adapter 5 ms, Preprocessing
// 25 ms, Computer Vision 25 ms, EBA 5 ms; maximum communication latency
// 5 ms; clock synchronization error 0 (all four SWCs share platform 2).
#pragma once

#include <cstdint>
#include <functional>

#include "brake/metrics.hpp"
#include "brake/nondet_pipeline.hpp"
#include "dear/config.hpp"
#include "ft/fault_model.hpp"

namespace dear {
class AppBuilder;
namespace analysis {
struct StaticPlan;
}
}

namespace dear::brake {

struct DearScenarioConfig {
  /// Timing seeds, split like ScenarioConfig so determinism can be tested
  /// against platform-side timing variation in isolation.
  std::uint64_t camera_seed{1};
  std::uint64_t platform_seed{1};
  std::uint64_t frames{100'000};
  Duration period{50 * kMillisecond};
  Duration camera_jitter{500 * kMicrosecond};
  Duration link_latency_min{200 * kMicrosecond};
  Duration link_latency_max{800 * kMicrosecond};
  /// Camera platform clock drift bound (ppm); the actual drift is drawn
  /// per platform seed. Immaterial to the logical results: sensor tags
  /// follow physical reception.
  double camera_drift_ppm{30.0};

  // Paper §IV.B deadlines and bounds.
  Duration adapter_deadline{5 * kMillisecond};
  Duration preprocessing_deadline{25 * kMillisecond};
  Duration cv_deadline{25 * kMillisecond};
  Duration eba_deadline{5 * kMillisecond};
  Duration latency_bound{5 * kMillisecond};
  Duration clock_error_bound{0};

  /// Global scale factor on all four deadlines — the knob of the
  /// latency/error trade-off sweep ("for certain applications it is
  /// acceptable to deliberately introduce the possibility of sporadic
  /// errors by setting deadlines to values lower than the actual WCET").
  double deadline_scale{1.0};

  /// Scale factor on the modeled execution times (stress knob).
  double exec_time_scale{1.0};

  /// Deploy the four co-located platform-2 SWC services over the zero-copy
  /// in-process transport (ara::com LocalBinding) instead of SOME/IP. The
  /// camera→adapter link stays on the network; inter-SWC messages skip
  /// serialization and the simulated wire entirely.
  bool local_transport{false};

  transact::UntaggedPolicy untagged{transact::UntaggedPolicy::kFail};

  // --- fault-campaign knobs (scenario engine) --------------------------------
  /// Latency range of the intra-platform service links (SWC-to-SWC SOME/IP
  /// traffic). As long as svc_latency_max stays below latency_bound, these
  /// are semantics-preserving: DEAR digests do not change.
  Duration svc_latency_min{5 * kMicrosecond};
  Duration svc_latency_max{50 * kMicrosecond};
  /// Per-message drop probability on the service links. Drops violate the
  /// reliable-delivery assumption: frames are lost (observably), and which
  /// ones depends on the platform seed.
  double net_drop_probability{0.0};
  /// Per-message duplication probability on the service links. Duplicates
  /// carry the same wire tag and are absorbed deterministically.
  double net_duplicate_probability{0.0};
  /// Enforce in-order delivery on the service links (default: off).
  bool net_in_order{false};
  /// Camera sensor faults (input-side: decided from camera_seed).
  sim::SensorFaultModel sensor_faults{};
  /// Sensor data plane: when nonzero the camera publishes a loaned pixel
  /// slab of this many bytes per sent frame (zero-copy over the in-process
  /// ring; the metadata stream and its digests are unchanged).
  std::size_t camera_payload_bytes{0};

  // --- deterministic fault tolerance (src/ft/) -------------------------------
  /// Service faults: the computer-vision node is the victim (crash/restart
  /// windows in wire-tag time, per-call error/omission, subscription
  /// churn). Enabling any knob also deploys the health-monitor service and
  /// the EBA's hold-last-safe-command fallback.
  ft::ServiceFaultModel service_faults{};
  /// Retry budget installed on the monitor's proxy methods.
  ft::RetryBudget retry{};
  /// Seed for the per-call fault die.
  std::uint64_t fault_seed{1};
  /// Bench-only: install an inert fault plan (real victim, empty crash
  /// window, zero probabilities) WITHOUT the health service, to measure
  /// the pure hook overhead on the hot path.
  bool ft_idle_probe{false};

  // --- static-analysis hooks (src/analysis/) ---------------------------------
  /// Invoked after the app is fully wired, before validate()/start().
  /// The static verifier uses it to extract the fact table from the
  /// genuine reactor graphs without executing anything.
  std::function<void(AppBuilder&)> preflight{};
  /// Construct and wire the application, run preflight, and return
  /// without starting drivers or the camera (no event executes).
  bool build_only{false};
  /// When set, every node consumes its level table from this compiled
  /// plan (analysis::build_plan) instead of re-deriving it at assembly;
  /// traces and digests are bit-identical either way. The plan must match
  /// the constructed topology (stale plans throw).
  const analysis::StaticPlan* schedule_plan{nullptr};
};

/// Runs the DEAR pipeline; deadline violations, tardy messages and CV
/// mismatches are reported through PipelineResult.
[[nodiscard]] PipelineResult run_dear_pipeline(const DearScenarioConfig& config);

}  // namespace dear::brake
