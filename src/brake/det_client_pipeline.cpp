#include "brake/det_client_pipeline.hpp"

namespace dear::brake {

PipelineResult run_det_client_pipeline(ScenarioConfig config) {
  config.use_deterministic_client = true;
  return run_nondet_pipeline(config);
}

}  // namespace dear::brake
