// Baseline variant 2 of 3 — see the overview in det_client_pipeline.hpp.
//
// The DeterministicClient changes *intra-SWC* behavior only, so this
// variant is implemented as a configuration of the classic pipeline rather
// than a separate testbed: run_nondet_pipeline already hosts the periodic
// SWCs, and setting use_deterministic_client routes each activation
// through the ara::DeterministicClient cycle state machine
// (WaitForActivation: three startup phases, then kRun per cycle — paper
// §II.B). Everything the paper identifies as the *source* of the Figure 5
// errors — one-slot input buffers, unsynchronized callback phases,
// scheduling jitter, clock drift — is untouched.
//
// Contrast with the DEAR variant (dear_pipeline.cpp), which replaces the
// buffer-based coordination itself and eliminates those error classes.
#include "brake/det_client_pipeline.hpp"

namespace dear::brake {

PipelineResult run_det_client_pipeline(ScenarioConfig config) {
  config.use_deterministic_client = true;
  return run_nondet_pipeline(config);
}

}  // namespace dear::brake
