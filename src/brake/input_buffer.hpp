// Input buffering policies for the classic pipeline.
//
// The APD uses one-slot buffers ("latest wins"); a natural alternative is
// a small FIFO queue that absorbs jitter at the cost of staleness. The
// buffer-depth ablation (bench_buffer_ablation) quantifies that trade:
// deeper buffers drop fewer inputs but feed the logic older data.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>

#include "common/ring_buffer.hpp"

namespace dear::brake {

template <typename T>
class InputBuffer {
 public:
  /// depth == 1 reproduces the APD one-slot overwrite semantics; depth > 1
  /// queues FIFO and evicts the oldest element when full.
  explicit InputBuffer(std::size_t depth) : ring_(depth == 0 ? 1 : depth) {}

  /// Stores a value; returns true when an unconsumed value was lost
  /// (overwritten or evicted).
  bool store(T value) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (ring_.capacity() == 1) {
      // Latest-wins slot: an unread value is overwritten.
      const bool lost = !ring_.empty();
      ring_.clear();
      (void)ring_.push(std::move(value));
      if (lost) {
        ++lost_;
      }
      return lost;
    }
    const bool lost = ring_.push_evict(std::move(value)).has_value();
    if (lost) {
      ++lost_;
    }
    return lost;
  }

  /// Removes the element the logic should process next: the newest under
  /// one-slot semantics, the oldest under FIFO semantics.
  [[nodiscard]] std::optional<T> take() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return ring_.pop();
  }

  [[nodiscard]] std::size_t depth() const noexcept { return ring_.capacity(); }
  [[nodiscard]] std::uint64_t lost() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return lost_;
  }

 private:
  mutable std::mutex mutex_;
  common::RingBuffer<T> ring_;
  std::uint64_t lost_{0};
};

}  // namespace dear::brake
