#include "brake/nondet_pipeline.hpp"

#include <memory>
#include <optional>

#include "ara/deterministic_client.hpp"
#include "ara/generated.hpp"
#include "ara/runtime.hpp"
#include "brake/camera.hpp"
#include "brake/logic.hpp"
#include "brake/services.hpp"
#include "brake/input_buffer.hpp"
#include "common/digest.hpp"
#include "common/rng.hpp"
#include "net/sim_network.hpp"
#include "sim/clock_model.hpp"
#include "sim/periodic_task.hpp"
#include "sim/sim_executor.hpp"

namespace dear::brake {

namespace {

constexpr net::NodeId kPlatform1 = 1;
constexpr net::NodeId kPlatform2 = 2;

constexpr net::Endpoint kCameraEp{kPlatform1, 10};
constexpr net::Endpoint kAdapterRawEp{kPlatform2, 100};
constexpr net::Endpoint kAdapterEp{kPlatform2, 101};
constexpr net::Endpoint kPreprocEp{kPlatform2, 102};
constexpr net::Endpoint kCvEp{kPlatform2, 103};
constexpr net::Endpoint kEbaEp{kPlatform2, 104};
constexpr net::Endpoint kMonitorEp{kPlatform2, 105};

using common::mix_digest;

/// Draws a drift in [-bound, bound] with mass concentrated near zero
/// (cubic shaping): most real clocks/timers sit close to nominal, a few
/// are well off — which is what makes the best experiment instances of
/// Figure 5 nearly error-free and the worst ones terrible.
[[nodiscard]] double draw_drift(common::Rng& rng, double bound) {
  const double u = 2.0 * rng.uniform01() - 1.0;
  return bound * u * u * u;
}

/// Shared state of one scenario execution.
struct Scenario {
  explicit Scenario(const ScenarioConfig& config)
      : config(config), platform_rng(config.platform_seed), camera_rng(config.camera_seed) {}

  const ScenarioConfig& config;
  common::Rng platform_rng;
  common::Rng camera_rng;

  sim::Kernel kernel;
  sim::PlatformClock clock1;  // camera platform
  sim::PlatformClock clock2;  // compute platform
  std::unique_ptr<net::SimNetwork> network;
  someip::ServiceDiscovery discovery;
  std::unique_ptr<sim::SimExecutor> executor;

  PipelineResult result;

  [[nodiscard]] Duration random_phase(common::Rng& rng) {
    return rng.uniform_duration(0, config.period - 1);
  }
};

/// One SWC of the classic pipeline: periodic callback + one-slot buffers.
/// The deterministic-client variant routes each activation through the
/// DeterministicClient cycle state machine (intra-SWC determinism only).
class ClassicSwc {
 public:
  static Duration effective_period(Scenario& scenario, const std::string& name) {
    auto rng = scenario.platform_rng.stream(name + ".period_drift");
    const double bound = scenario.config.task_period_drift_ppm * 1e-6 *
                         static_cast<double>(scenario.config.period);
    return scenario.config.period + static_cast<Duration>(draw_drift(rng, bound));
  }

  ClassicSwc(Scenario& scenario, std::string name, Duration phase,
             std::function<void(TimePoint)> logic)
      : logic_(std::move(logic)),
        task_(scenario.kernel, scenario.clock2, effective_period(scenario, name), phase,
              [this](std::uint64_t, TimePoint release) { tick(release); }) {
    task_.set_jitter(
        sim::ExecTimeModel::uniform(0, scenario.config.callback_jitter),
        scenario.platform_rng.stream(name + ".jitter"));
    if (scenario.config.use_deterministic_client) {
      client_.emplace(ara::DeterministicClient::Config{scenario.config.platform_seed, 4});
    }
  }

  void start() { task_.start(); }
  void stop() { task_.stop(); }

 private:
  void tick(TimePoint release) {
    if (client_.has_value()) {
      // Drive the deterministic client's activation cycle; the first three
      // activations are startup phases.
      const auto state = client_->WaitForActivation(release);
      if (state != ara::ActivationReturnType::kRun) {
        return;
      }
    }
    logic_(release);
  }

  std::function<void(TimePoint)> logic_;
  sim::PeriodicTask task_;
  std::optional<ara::DeterministicClient> client_;
};

}  // namespace

PipelineResult run_nondet_pipeline(const ScenarioConfig& config) {
  Scenario s(config);

  // --- platform clocks (offset + drift, paper's two MinnowBoards) -----------
  // Draws are sequenced explicitly: as constructor arguments their
  // evaluation order would be compiler-dependent.
  auto drift_rng = s.platform_rng.stream("clock.drift");
  const Duration clock1_offset = drift_rng.uniform_duration(0, config.period);
  const double clock1_drift = draw_drift(drift_rng, config.max_drift_ppm);
  s.clock1 = sim::PlatformClock(clock1_offset, clock1_drift);
  const Duration clock2_offset = drift_rng.uniform_duration(0, config.period);
  const double clock2_drift = draw_drift(drift_rng, config.max_drift_ppm);
  s.clock2 = sim::PlatformClock(clock2_offset, clock2_drift);

  // --- network ----------------------------------------------------------------
  s.network = std::make_unique<net::SimNetwork>(s.kernel, s.platform_rng.stream("net"));
  net::LinkParams inter_link;
  inter_link.latency =
      sim::ExecTimeModel::uniform(config.link_latency_min, config.link_latency_max);
  s.network->set_default_link(inter_link);
  // SWC-to-SWC SOME/IP traffic stays on platform 2 (loopback link) — the
  // surface the scenario engine's network fault knobs stress.
  net::LinkParams svc_link;
  svc_link.latency = sim::ExecTimeModel::uniform(config.svc_latency_min, config.svc_latency_max);
  svc_link.drop_probability = config.net_drop_probability;
  svc_link.duplicate_probability = config.net_duplicate_probability;
  svc_link.enforce_in_order = config.net_in_order;
  s.network->set_loopback_link(svc_link);

  s.executor = std::make_unique<sim::SimExecutor>(
      s.kernel, s.platform_rng.stream("dispatch"),
      sim::ExecTimeModel::uniform(0, config.dispatch_jitter));

  // --- runtimes, skeletons, proxies ---------------------------------------------
  ara::Runtime adapter_rt(*s.network, s.discovery, *s.executor, kAdapterEp, 0x11);
  ara::Runtime preproc_rt(*s.network, s.discovery, *s.executor, kPreprocEp, 0x12);
  ara::Runtime cv_rt(*s.network, s.discovery, *s.executor, kCvEp, 0x13);
  ara::Runtime eba_rt(*s.network, s.discovery, *s.executor, kEbaEp, 0x14);
  ara::Runtime monitor_rt(*s.network, s.discovery, *s.executor, kMonitorEp, 0x15);

  ara::Skeleton<VideoAdapter> adapter_skel(adapter_rt, kInstance);
  ara::Skeleton<Preprocessing> preproc_skel(preproc_rt, kInstance);
  ara::Skeleton<ComputerVision> cv_skel(cv_rt, kInstance);
  ara::Skeleton<Eba> eba_skel(eba_rt, kInstance);
  adapter_skel.OfferService();
  preproc_skel.OfferService();
  cv_skel.OfferService();
  eba_skel.OfferService();

  ara::Proxy<VideoAdapter> adapter_proxy(preproc_rt, kInstance,
                                         *preproc_rt.resolve({kVideoAdapterService, kInstance}));
  ara::Proxy<Preprocessing> preproc_proxy(cv_rt, kInstance,
                                          *cv_rt.resolve({kPreprocessingService, kInstance}));
  ara::Proxy<ComputerVision> cv_proxy(eba_rt, kInstance,
                                      *eba_rt.resolve({kComputerVisionService, kInstance}));
  ara::Proxy<Eba> eba_proxy(monitor_rt, kInstance,
                            *monitor_rt.resolve({kEbaService, kInstance}));

  // --- one-slot input buffers (the nondeterminism at the heart of §IV.A) ------
  const std::size_t depth = config.input_queue_depth;
  InputBuffer<VideoFrame> adapter_buffer(depth);
  InputBuffer<VideoFrame> preproc_buffer(depth);
  InputBuffer<VideoFrame> cv_frame_buffer(depth);
  InputBuffer<LaneInfo> cv_lane_buffer(depth);
  InputBuffer<VehicleList> eba_buffer(depth);

  PipelineResult& result = s.result;
  std::uint64_t latest_frame_id = 0;  // newest frame that reached platform 2

  // Camera frames arrive over the proprietary protocol.
  s.network->bind(kAdapterRawEp, [&](const net::Packet& packet) {
    VideoFrame frame;
    if (!decode_camera_packet(packet.payload, frame)) {
      return;
    }
    latest_frame_id = frame.frame_id;
    if (adapter_buffer.store(frame)) {
      // Overwritten before the adapter forwarded it: Preprocessing never
      // sees this frame.
      ++result.errors.dropped_frames_preprocessing;
    }
  });

  // Event handlers store into the buffers (and detect overwrites).
  adapter_proxy.get(VideoAdapter::frame).SetReceiveHandler([&](const VideoFrame& frame) {
    if (preproc_buffer.store(frame)) {
      ++result.errors.dropped_frames_preprocessing;
    }
  });
  adapter_proxy.get(VideoAdapter::frame).Subscribe();

  // The forwarded frame and its lane info travel as a pair; an overwrite
  // of the frame slot counts as one dropped frame at Computer Vision (the
  // lane slot overwrite is the same lost pair, not a second error).
  preproc_proxy.get(Preprocessing::forwarded_frame).SetReceiveHandler([&](const VideoFrame& frame) {
    if (cv_frame_buffer.store(frame)) {
      ++result.errors.dropped_frames_cv;
    }
  });
  preproc_proxy.get(Preprocessing::forwarded_frame).Subscribe();
  preproc_proxy.get(Preprocessing::lane).SetReceiveHandler([&](const LaneInfo& lane) { (void)cv_lane_buffer.store(lane); });
  preproc_proxy.get(Preprocessing::lane).Subscribe();

  cv_proxy.get(ComputerVision::vehicles).SetReceiveHandler([&](const VehicleList& vehicles) {
    if (eba_buffer.store(vehicles)) {
      ++result.errors.dropped_vehicles_eba;
    }
  });
  cv_proxy.get(ComputerVision::vehicles).Subscribe();

  eba_proxy.get(Eba::brake).SetReceiveHandler([&](const BrakeCommand&) {});
  eba_proxy.get(Eba::brake).Subscribe();

  // --- the periodic SWC logic ------------------------------------------------------
  auto phase_rng = s.platform_rng.stream("phases");

  ClassicSwc adapter_swc(s, "adapter", s.random_phase(phase_rng), [&](TimePoint) {
    if (auto frame = adapter_buffer.take(); frame.has_value()) {
      adapter_skel.get(VideoAdapter::frame).Send(*frame);
    }
  });

  ClassicSwc preproc_swc(s, "preproc", s.random_phase(phase_rng), [&](TimePoint) {
    if (auto frame = preproc_buffer.take(); frame.has_value()) {
      preproc_skel.get(Preprocessing::lane).Send(detect_lane(*frame));
      preproc_skel.get(Preprocessing::forwarded_frame).Send(*frame);
    }
  });

  ClassicSwc cv_swc(s, "cv", s.random_phase(phase_rng), [&](TimePoint) {
    auto frame = cv_frame_buffer.take();
    auto lane = cv_lane_buffer.take();
    if (!frame.has_value() && !lane.has_value()) {
      return;  // silently wait for the next trigger
    }
    if (!frame.has_value() || !lane.has_value()) {
      // One input consumed without its counterpart: that sample is lost.
      ++result.errors.dropped_frames_cv;
      return;
    }
    if (frame->frame_id != lane->frame_id) {
      ++result.errors.input_mismatches_cv;  // misaligned inputs — computed anyway
    }
    cv_skel.get(ComputerVision::vehicles).Send(detect_vehicles(*frame, *lane));
  });

  ClassicSwc eba_swc(s, "eba", s.random_phase(phase_rng), [&](TimePoint) {
    if (auto vehicles = eba_buffer.take(); vehicles.has_value()) {
      const BrakeCommand command = decide_brake(*vehicles);
      eba_skel.get(Eba::brake).Send(command);
      ++result.frames_processed_eba;
      if (command.brake) {
        ++result.brake_commands;
      }
      if (command != reference_decision(vehicles->frame_id)) {
        ++result.wrong_decisions;
      }
      result.staleness.add(static_cast<double>(latest_frame_id - vehicles->frame_id));
      mix_digest(result.output_digest, vehicles->frame_id);
      mix_digest(result.output_digest, command.brake ? 1 : 0);
      mix_digest(result.output_digest, static_cast<std::uint64_t>(command.intensity * 1e6));
    }
  });

  // --- the camera ---------------------------------------------------------------------
  auto camera_cfg_rng = s.camera_rng.stream("camera");
  Camera::Config camera_config;
  camera_config.period = config.period;
  camera_config.phase = camera_cfg_rng.uniform_duration(0, config.period - 1);
  camera_config.jitter = sim::ExecTimeModel::uniform(0, config.camera_jitter);
  camera_config.frame_limit = config.frames;
  camera_config.faults = config.sensor_faults;
  camera_config.payload_bytes = config.camera_payload_bytes;
  // Newest published slab only (see dear_pipeline): the ring never
  // exhausts, so the frame stream is unchanged by the data plane.
  common::LoanedBuffer latest_frame_pixels;
  if (config.camera_payload_bytes > 0) {
    camera_config.frame_sink = [&latest_frame_pixels](const common::LoanedBuffer& slab,
                                                      const VideoFrame&) {
      latest_frame_pixels = slab;
    };
  }
  Camera camera(s.kernel, s.clock1, *s.network, kCameraEp, kAdapterRawEp, camera_config,
                s.camera_rng);

  adapter_swc.start();
  preproc_swc.start();
  cv_swc.start();
  eba_swc.start();
  camera.start();

  // Run until all frames have flushed through the (4-stage, 50 ms) pipeline.
  const TimePoint horizon =
      static_cast<TimePoint>(config.frames + 16) * config.period + 16 * config.period;
  s.kernel.run_until(horizon);

  camera.stop();
  adapter_swc.stop();
  preproc_swc.stop();
  cv_swc.stop();
  eba_swc.stop();

  result.frames_sent = camera.frames_sent();
  result.camera_payload_frames = camera.payload_frames();
  result.camera_payload_drops = camera.payload_drops();
  result.sensor_dropped = camera.fault_injector().dropped_samples();
  result.sensor_stuck = camera.fault_injector().stuck_samples();
  result.sensor_noisy = camera.fault_injector().noisy_samples();
  return result;
}

}  // namespace dear::brake
