// Component logic of the brake assistant SWCs.
//
// Pure, deterministic functions of their inputs — the same logic runs in
// the classic (nondeterministic) wiring and in the DEAR wiring, so every
// behavioral difference between the two pipelines is attributable to
// coordination, exactly as in the paper's case study.
#pragma once

#include <cstdint>

#include "brake/types.hpp"

namespace dear::brake {

/// Synthesizes the frame a camera would capture at `capture_time`.
/// Content depends only on frame_id, so any component can verify which
/// frame a downstream value was derived from.
[[nodiscard]] VideoFrame generate_frame(std::uint64_t frame_id, std::int64_t capture_time);

/// Preprocessing: computes the travel-lane bounding box for a frame.
[[nodiscard]] LaneInfo detect_lane(const VideoFrame& frame);

/// Computer Vision: detects vehicles in the lane and estimates distances.
/// Deterministic in (frame, lane); the number of vehicles and their
/// distances vary across frames to exercise the EBA decision logic.
[[nodiscard]] VehicleList detect_vehicles(const VideoFrame& frame, const LaneInfo& lane);

/// Emergency Brake Assist: decides whether an emergency maneuver is
/// required. Time-to-collision below the threshold triggers braking.
[[nodiscard]] BrakeCommand decide_brake(const VehicleList& vehicles);

/// Reference pipeline: what the brake decision for `frame_id` *should* be
/// when no frame is dropped or misaligned. Used by tests and by the
/// experiment harnesses to validate pipeline outputs.
[[nodiscard]] BrakeCommand reference_decision(std::uint64_t frame_id);

}  // namespace dear::brake
