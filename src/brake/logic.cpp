#include "brake/logic.hpp"

#include "common/rng.hpp"

namespace dear::brake {

namespace {

/// Deterministic per-frame entropy source.
[[nodiscard]] std::uint64_t frame_hash(std::uint64_t frame_id) {
  std::uint64_t state = frame_id ^ 0xa0761d6478bd642fULL;
  return common::splitmix64(state);
}

}  // namespace

VideoFrame generate_frame(std::uint64_t frame_id, std::int64_t capture_time) {
  VideoFrame frame;
  frame.frame_id = frame_id;
  frame.capture_time = capture_time;
  frame.content_hash = frame_hash(frame_id);
  return frame;
}

LaneInfo detect_lane(const VideoFrame& frame) {
  const std::uint64_t h = frame.content_hash;
  LaneInfo lane;
  lane.frame_id = frame.frame_id;
  // A lane box that sways gently with the frame content.
  const auto sway = static_cast<std::uint16_t>(h % 120);
  lane.left = static_cast<std::uint16_t>(frame.width / 4 + sway);
  lane.right = static_cast<std::uint16_t>(3 * frame.width / 4 + sway);
  lane.top = static_cast<std::uint16_t>(frame.height / 3);
  lane.bottom = frame.height;
  lane.confidence = 0.7 + 0.3 * static_cast<double>((h >> 8) % 1000) / 1000.0;
  return lane;
}

VehicleList detect_vehicles(const VideoFrame& frame, const LaneInfo& lane) {
  VehicleList list;
  list.frame_id = frame.frame_id;
  list.lane_frame_id = lane.frame_id;
  // Vehicle population derived from the *frame* content; distances are
  // modulated by the lane estimate so that misaligned inputs produce
  // different (wrong) results.
  const std::uint64_t h = frame.content_hash;
  const std::uint64_t lane_mix = frame_hash(lane.frame_id) >> 16;
  const auto count = static_cast<std::uint32_t>(h % 4);  // 0-3 vehicles
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint64_t state = h ^ (0x9e3779b97f4a7c15ULL * (i + 1)) ^ lane_mix;
    const std::uint64_t v = common::splitmix64(state);
    Vehicle vehicle;
    vehicle.vehicle_id = static_cast<std::uint32_t>(v);
    vehicle.distance_m = 5.0 + static_cast<double>(v % 1500) / 10.0;          // 5-155 m
    vehicle.closing_speed = -5.0 + static_cast<double>((v >> 16) % 400) / 10.0;  // -5..35 m/s
    list.vehicles.push_back(vehicle);
  }
  return list;
}

BrakeCommand decide_brake(const VehicleList& vehicles) {
  // Emergency braking when the minimum time-to-collision drops below 2 s.
  constexpr double kTtcThreshold = 2.0;
  BrakeCommand command;
  command.frame_id = vehicles.frame_id;
  double min_ttc = 1e9;
  for (const Vehicle& vehicle : vehicles.vehicles) {
    if (vehicle.closing_speed <= 0.0) {
      continue;  // not approaching
    }
    const double ttc = vehicle.distance_m / vehicle.closing_speed;
    if (ttc < min_ttc) {
      min_ttc = ttc;
    }
  }
  if (min_ttc < kTtcThreshold) {
    command.brake = true;
    command.intensity = std::min(1.0, kTtcThreshold / (min_ttc + 1e-9) - 1.0);
    if (command.intensity < 0.0) {
      command.intensity = 0.0;
    }
  }
  return command;
}

BrakeCommand reference_decision(std::uint64_t frame_id) {
  const VideoFrame frame = generate_frame(frame_id, 0);
  const LaneInfo lane = detect_lane(frame);
  const VehicleList vehicles = detect_vehicles(frame, lane);
  return decide_brake(vehicles);
}

}  // namespace dear::brake
