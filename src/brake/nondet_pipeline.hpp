// The stock (nondeterministic) brake assistant, as shipped with the APD
// (paper §IV.A), running on the simulated two-platform testbed —
// variant 1 of the three brake-assistant pipelines (variant 2:
// det_client_pipeline.hpp; variant 3: dear_pipeline.hpp; see the overview
// in det_client_pipeline.hpp).
//
// Each SWC stores incoming event data in a one-slot input buffer and runs
// its logic from a periodic 50 ms callback; buffer overwrites and
// misaligned reads are exactly the errors Figure 5 counts. The error rate
// depends on the relative phases of the periodic callbacks, the scheduling
// jitter, the network latency, and the clock drift between the platforms —
// all of which this scenario randomizes per seed.
#pragma once

#include <cstdint>

#include "brake/metrics.hpp"
#include "common/time.hpp"
#include "sim/fault_injection.hpp"

namespace dear::brake {

struct ScenarioConfig {
  /// Seed for the camera's timing (capture phase + jitter).
  std::uint64_t camera_seed{1};
  /// Seed for everything platform-side: SWC callback phases, scheduling
  /// jitter, network latency draws, clock drifts.
  std::uint64_t platform_seed{1};
  std::uint64_t frames{100'000};
  Duration period{50 * kMillisecond};
  /// Per-activation scheduling jitter bound for the SWC callbacks.
  Duration callback_jitter{2 * kMillisecond};
  /// Dispatcher-thread wake-up jitter for event receive handlers (ara::com
  /// dispatches them onto runtime threads; the skew between the frame and
  /// lane handlers is what misaligns Computer Vision's inputs).
  Duration dispatch_jitter{2 * kMillisecond};
  /// Camera capture jitter bound.
  Duration camera_jitter{500 * kMicrosecond};
  /// Inter-platform link latency range.
  Duration link_latency_min{200 * kMicrosecond};
  Duration link_latency_max{800 * kMicrosecond};
  /// Maximum absolute clock drift per platform (ppm), drawn per seed.
  double max_drift_ppm{30.0};
  /// Maximum per-task effective-period offset (ppm of the period, drawn
  /// per SWC per seed). Real periodic callbacks drift slightly relative to
  /// each other (timer re-arm overhead, load), so phase alignment between
  /// SWCs is transient rather than permanent.
  double task_period_drift_ppm{40.0};
  /// Use the AP "deterministic client" cycle model inside each SWC
  /// (baseline for bench_det_client_baseline). Only intra-SWC behavior
  /// changes; communication stays buffer-based.
  bool use_deterministic_client{false};
  /// Input buffer depth per SWC: 1 reproduces the APD one-slot ("latest
  /// wins") semantics; larger values queue FIFO and evict the oldest.
  /// Ablated by bench_buffer_ablation.
  std::size_t input_queue_depth{1};

  // --- fault-campaign knobs (scenario engine) --------------------------------
  /// Latency range of the intra-platform service links (the SWC-to-SWC
  /// SOME/IP traffic; the camera crosses platforms on the link above).
  Duration svc_latency_min{5 * kMicrosecond};
  Duration svc_latency_max{50 * kMicrosecond};
  /// Per-message drop probability on the service links.
  double net_drop_probability{0.0};
  /// Per-message duplication probability on the service links.
  double net_duplicate_probability{0.0};
  /// Enforce in-order delivery on the service links (default: off — the
  /// paper's nondeterminism source 3).
  bool net_in_order{false};
  /// Camera sensor faults. Decided from the camera seed, i.e. part of the
  /// scenario's input stream, not of the platform.
  sim::SensorFaultModel sensor_faults{};
  /// Sensor data plane: per-frame loaned pixel slab size (0 = metadata
  /// only). Same knob as the DEAR pipeline so campaigns sweep both.
  std::size_t camera_payload_bytes{0};
};

/// Runs the scenario to completion and returns the instrumented outcome.
[[nodiscard]] PipelineResult run_nondet_pipeline(const ScenarioConfig& config);

}  // namespace dear::brake
