// Error instrumentation for the brake assistant experiments.
//
// The four error categories of Figure 5, plus bookkeeping the harnesses
// use to compute prevalence and validate outputs.
#pragma once

#include <cstdint>
#include <string>

#include "common/stats.hpp"

namespace dear::brake {

struct ErrorCounters {
  /// A frame was overwritten before Preprocessing consumed it (includes
  /// frames lost in the Video Adapter's input buffer, which Preprocessing
  /// therefore never saw).
  std::uint64_t dropped_frames_preprocessing{0};
  /// A frame or lane sample was overwritten before Computer Vision
  /// consumed it, or consumed without its counterpart.
  std::uint64_t dropped_frames_cv{0};
  /// Computer Vision processed a frame and lane information derived from
  /// different frames.
  std::uint64_t input_mismatches_cv{0};
  /// A vehicle list was overwritten before EBA consumed it.
  std::uint64_t dropped_vehicles_eba{0};

  [[nodiscard]] std::uint64_t total() const noexcept {
    return dropped_frames_preprocessing + dropped_frames_cv + input_mismatches_cv +
           dropped_vehicles_eba;
  }

  /// Error prevalence in percent, as plotted in Figure 5.
  [[nodiscard]] double prevalence_percent(std::uint64_t frames) const noexcept {
    if (frames == 0) {
      return 0.0;
    }
    return 100.0 * static_cast<double>(total()) / static_cast<double>(frames);
  }

  ErrorCounters& operator+=(const ErrorCounters& other) noexcept {
    dropped_frames_preprocessing += other.dropped_frames_preprocessing;
    dropped_frames_cv += other.dropped_frames_cv;
    input_mismatches_cv += other.input_mismatches_cv;
    dropped_vehicles_eba += other.dropped_vehicles_eba;
    return *this;
  }
};

/// Full outcome of one pipeline execution.
struct PipelineResult {
  ErrorCounters errors;
  std::uint64_t frames_sent{0};
  std::uint64_t frames_processed_eba{0};
  std::uint64_t brake_commands{0};
  /// Brake decisions that differ from the drop-free reference pipeline
  /// (consequence of misaligned inputs).
  std::uint64_t wrong_decisions{0};
  /// Order-sensitive digest over (frame_id, brake, intensity) of every EBA
  /// output — identical digests mean identical observable behavior.
  std::uint64_t output_digest{0};
  /// Digest over the *relative* logical tags of EBA outputs: for each
  /// frame, (EBA tag − adapter arrival tag, microstep). Physical-action
  /// tags are inputs to the reactor system (they follow the camera and
  /// network timing), but every downstream tag must sit at a fixed,
  /// deterministic offset from them. DEAR pipeline only; 0 otherwise.
  std::uint64_t tag_digest{0};
  /// End-to-end latency, capture to brake command (ns).
  common::RunningStats latency;
  /// Decision staleness at EBA: newest captured frame id minus the frame
  /// id the decision was computed from (in frames). Grows with input
  /// buffer depth — the flip side of fewer drops.
  common::RunningStats staleness;

  // DEAR-specific observable protocol errors.
  std::uint64_t deadline_violations{0};
  std::uint64_t tardy_messages{0};
  std::uint64_t untagged_messages{0};

  // Injected sensor faults (input-side; identical across platform seeds
  // for a fixed camera seed and fault model).
  std::uint64_t sensor_dropped{0};
  std::uint64_t sensor_stuck{0};
  std::uint64_t sensor_noisy{0};

  // Sensor data plane (zero unless camera_payload_bytes is configured).
  std::uint64_t camera_payload_frames{0};
  std::uint64_t camera_payload_drops{0};

  // Fault-tolerance accounting (zero when no plan is installed).
  std::uint64_t ft_crash_drops{0};
  std::uint64_t ft_call_faults{0};
  std::uint64_t ft_retries{0};
  /// EBA ticks served by the hold-last-safe-command fallback (CV dead).
  std::uint64_t ft_degraded_ticks{0};
  /// Supervisor transitions into the dead state.
  std::uint64_t ft_failovers{0};

  [[nodiscard]] double error_prevalence_percent() const noexcept {
    return errors.prevalence_percent(frames_sent);
  }
};

}  // namespace dear::brake
