// Baseline: the brake assistant with each SWC using the AUTOSAR AP
// "deterministic client" (paper §II.B).
//
// This is variant 2 of the three brake-assistant pipelines (the case-study
// triptych of the paper's evaluation):
//
//   1. run_nondet_pipeline     (nondet_pipeline.hpp) — the stock APD
//      pipeline: periodic callbacks + one-slot buffers; exhibits the
//      Figure 5 error classes.
//   2. run_det_client_pipeline (this header)         — same communication,
//      but each SWC's activation is driven by the DeterministicClient
//      cycle; intra-SWC determinism only.
//   3. run_dear_pipeline       (dear_pipeline.hpp)   — SWCs as reactors
//      bound to the unchanged service interfaces through DEAR
//      transactors; end-to-end determinism.
//
// The deterministic client makes each SWC internally deterministic
// (cycle-driven activation, deterministic random numbers, deterministic
// worker pool) but "its scope is limited to individual SWCs" — the
// buffer-based communication between SWCs is untouched, so the Figure 5
// error classes persist. bench_det_client_baseline contrasts this with
// DEAR; bench_fig5_error_prevalence sweeps all three variants.
#pragma once

#include "brake/nondet_pipeline.hpp"

namespace dear::brake {

/// Runs the classic pipeline with DeterministicClient-driven SWCs.
[[nodiscard]] PipelineResult run_det_client_pipeline(ScenarioConfig config);

}  // namespace dear::brake
