// Baseline: the brake assistant with each SWC using the AUTOSAR AP
// "deterministic client" (paper §II.B).
//
// The deterministic client makes each SWC internally deterministic
// (cycle-driven activation, deterministic random numbers, deterministic
// worker pool) but "its scope is limited to individual SWCs" — the
// buffer-based communication between SWCs is untouched, so the Figure 5
// error classes persist. bench_det_client_baseline contrasts this with
// DEAR.
#pragma once

#include "brake/nondet_pipeline.hpp"

namespace dear::brake {

/// Runs the classic pipeline with DeterministicClient-driven SWCs.
[[nodiscard]] PipelineResult run_det_client_pipeline(ScenarioConfig config);

}  // namespace dear::brake
