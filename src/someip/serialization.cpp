#include "someip/serialization.hpp"

namespace dear::someip {

void Writer::write_u16(std::uint16_t v) {
  bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
  bytes_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::write_u32(std::uint32_t v) {
  bytes_.push_back(static_cast<std::uint8_t>(v >> 24));
  bytes_.push_back(static_cast<std::uint8_t>(v >> 16));
  bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
  bytes_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::write_u64(std::uint64_t v) {
  write_u32(static_cast<std::uint32_t>(v >> 32));
  write_u32(static_cast<std::uint32_t>(v));
}

void Writer::write_bytes(const std::uint8_t* data, std::size_t size) {
  bytes_.insert(bytes_.end(), data, data + size);
}

void Writer::write_string(const std::string& s) {
  write_u32(static_cast<std::uint32_t>(s.size()));
  write_bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

std::uint8_t Reader::read_u8() noexcept {
  if (!ok_ || position_ + 1 > size_) {
    ok_ = false;
    return 0;
  }
  return data_[position_++];
}

std::uint16_t Reader::read_u16() noexcept {
  if (!ok_ || position_ + 2 > size_) {
    ok_ = false;
    return 0;
  }
  const auto hi = static_cast<std::uint16_t>(data_[position_]);
  const auto lo = static_cast<std::uint16_t>(data_[position_ + 1]);
  position_ += 2;
  return static_cast<std::uint16_t>((hi << 8) | lo);
}

std::uint32_t Reader::read_u32() noexcept {
  if (!ok_ || position_ + 4 > size_) {
    ok_ = false;
    return 0;
  }
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v = (v << 8) | data_[position_ + static_cast<std::size_t>(i)];
  }
  position_ += 4;
  return v;
}

std::uint64_t Reader::read_u64() noexcept {
  const auto hi = static_cast<std::uint64_t>(read_u32());
  const auto lo = static_cast<std::uint64_t>(read_u32());
  return (hi << 32) | lo;
}

// Bounds checks compare count against the remaining bytes (size_ -
// position_) rather than position_ + count, which could wrap for a hostile
// length field and authorize an out-of-range read.

std::string Reader::read_string() {
  const std::uint32_t size = read_u32();
  if (!ok_ || size > size_ - position_) {
    ok_ = false;
    return {};
  }
  std::string s(reinterpret_cast<const char*>(data_ + position_), size);
  position_ += size;
  return s;
}

std::string_view Reader::read_string_view() noexcept {
  const std::uint32_t size = read_u32();
  if (!ok_ || size > size_ - position_) {
    ok_ = false;
    return {};
  }
  const std::string_view view(reinterpret_cast<const char*>(data_ + position_), size);
  position_ += size;
  return view;
}

const std::uint8_t* Reader::view_bytes(std::size_t count) noexcept {
  if (!ok_ || count > size_ - position_) {
    ok_ = false;
    return nullptr;
  }
  const std::uint8_t* view = data_ + position_;
  position_ += count;
  return view;
}

bool Reader::read_bytes(std::uint8_t* out, std::size_t count) noexcept {
  if (!ok_ || count > size_ - position_) {
    ok_ = false;
    return false;
  }
  std::memcpy(out, data_ + position_, count);
  position_ += count;
  return true;
}

}  // namespace dear::someip
