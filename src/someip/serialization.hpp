// SOME/IP on-wire payload serialization.
//
// Big-endian (network byte order) basic encoding per the SOME/IP
// specification: fixed-width integers, IEEE-754 floats, strings and dynamic
// arrays with 32-bit length fields. User-defined structs opt in by
// providing ADL-visible `someip_serialize(Writer&, const T&)` and
// `someip_deserialize(Reader&, T&)` overloads.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace dear::someip {

class Writer {
 public:
  Writer() = default;
  /// Writes into `buffer` (cleared, capacity retained) — the pooled path:
  /// callers recycle one buffer per stream and a warm encode allocates
  /// nothing.
  explicit Writer(std::vector<std::uint8_t> buffer) noexcept : bytes_(std::move(buffer)) {
    bytes_.clear();
  }

  void reserve(std::size_t bytes) { bytes_.reserve(bytes); }

  void write_u8(std::uint8_t v) { bytes_.push_back(v); }
  void write_u16(std::uint16_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i8(std::int8_t v) { write_u8(static_cast<std::uint8_t>(v)); }
  void write_i16(std::int16_t v) { write_u16(static_cast<std::uint16_t>(v)); }
  void write_i32(std::int32_t v) { write_u32(static_cast<std::uint32_t>(v)); }
  void write_i64(std::int64_t v) { write_u64(static_cast<std::uint64_t>(v)); }
  void write_f32(float v) { write_u32(std::bit_cast<std::uint32_t>(v)); }
  void write_f64(double v) { write_u64(std::bit_cast<std::uint64_t>(v)); }
  void write_bool(bool v) { write_u8(v ? 1 : 0); }
  void write_bytes(const std::uint8_t* data, std::size_t size);
  void write_string(const std::string& s);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept { return std::move(bytes_); }
  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Non-throwing cursor over a byte buffer. After any failed read, ok() is
/// false and all subsequent reads return zero values.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size) noexcept : data_(data), size_(size) {}
  explicit Reader(const std::vector<std::uint8_t>& bytes) noexcept
      : Reader(bytes.data(), bytes.size()) {}

  [[nodiscard]] std::uint8_t read_u8() noexcept;
  [[nodiscard]] std::uint16_t read_u16() noexcept;
  [[nodiscard]] std::uint32_t read_u32() noexcept;
  [[nodiscard]] std::uint64_t read_u64() noexcept;
  [[nodiscard]] std::int8_t read_i8() noexcept { return static_cast<std::int8_t>(read_u8()); }
  [[nodiscard]] std::int16_t read_i16() noexcept { return static_cast<std::int16_t>(read_u16()); }
  [[nodiscard]] std::int32_t read_i32() noexcept { return static_cast<std::int32_t>(read_u32()); }
  [[nodiscard]] std::int64_t read_i64() noexcept { return static_cast<std::int64_t>(read_u64()); }
  [[nodiscard]] float read_f32() noexcept { return std::bit_cast<float>(read_u32()); }
  [[nodiscard]] double read_f64() noexcept { return std::bit_cast<double>(read_u64()); }
  [[nodiscard]] bool read_bool() noexcept { return read_u8() != 0; }
  [[nodiscard]] std::string read_string();
  /// Zero-copy string read: views the underlying buffer, valid for the
  /// buffer's lifetime. Empty view (and ok() == false) on short input.
  [[nodiscard]] std::string_view read_string_view() noexcept;

  bool read_bytes(std::uint8_t* out, std::size_t count) noexcept;
  /// Zero-copy bulk read: advances the cursor and returns a pointer to
  /// `count` bytes inside the buffer, or nullptr (failing the reader) when
  /// fewer remain.
  [[nodiscard]] const std::uint8_t* view_bytes(std::size_t count) noexcept;

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - position_; }
  [[nodiscard]] std::size_t position() const noexcept { return position_; }

  /// Marks the reader failed (used by typed decoders on semantic errors).
  void fail() noexcept { ok_ = false; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t position_{0};
  bool ok_{true};
};

// --- built-in type codecs -------------------------------------------------

inline void someip_serialize(Writer& w, std::uint8_t v) { w.write_u8(v); }
inline void someip_serialize(Writer& w, std::uint16_t v) { w.write_u16(v); }
inline void someip_serialize(Writer& w, std::uint32_t v) { w.write_u32(v); }
inline void someip_serialize(Writer& w, std::uint64_t v) { w.write_u64(v); }
inline void someip_serialize(Writer& w, std::int8_t v) { w.write_i8(v); }
inline void someip_serialize(Writer& w, std::int16_t v) { w.write_i16(v); }
inline void someip_serialize(Writer& w, std::int32_t v) { w.write_i32(v); }
inline void someip_serialize(Writer& w, std::int64_t v) { w.write_i64(v); }
inline void someip_serialize(Writer& w, float v) { w.write_f32(v); }
inline void someip_serialize(Writer& w, double v) { w.write_f64(v); }
inline void someip_serialize(Writer& w, bool v) { w.write_bool(v); }
inline void someip_serialize(Writer& w, const std::string& v) { w.write_string(v); }

inline void someip_deserialize(Reader& r, std::uint8_t& v) { v = r.read_u8(); }
inline void someip_deserialize(Reader& r, std::uint16_t& v) { v = r.read_u16(); }
inline void someip_deserialize(Reader& r, std::uint32_t& v) { v = r.read_u32(); }
inline void someip_deserialize(Reader& r, std::uint64_t& v) { v = r.read_u64(); }
inline void someip_deserialize(Reader& r, std::int8_t& v) { v = r.read_i8(); }
inline void someip_deserialize(Reader& r, std::int16_t& v) { v = r.read_i16(); }
inline void someip_deserialize(Reader& r, std::int32_t& v) { v = r.read_i32(); }
inline void someip_deserialize(Reader& r, std::int64_t& v) { v = r.read_i64(); }
inline void someip_deserialize(Reader& r, float& v) { v = r.read_f32(); }
inline void someip_deserialize(Reader& r, double& v) { v = r.read_f64(); }
inline void someip_deserialize(Reader& r, bool& v) { v = r.read_bool(); }
inline void someip_deserialize(Reader& r, std::string& v) {
  // Zero-copy view, then assign into the caller's string: decoding into a
  // reused struct reuses the string's capacity instead of constructing a
  // fresh one per message.
  const std::string_view view = r.read_string_view();
  v.assign(view.begin(), view.end());
}

template <typename T>
void someip_serialize(Writer& w, const std::vector<T>& v) {
  w.write_u32(static_cast<std::uint32_t>(v.size()));
  for (const T& item : v) {
    someip_serialize(w, item);
  }
}

template <typename T>
void someip_deserialize(Reader& r, std::vector<T>& v) {
  const std::uint32_t count = r.read_u32();
  v.clear();
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    T item{};
    someip_deserialize(r, item);
    v.push_back(std::move(item));
  }
}

/// Serializes a value pack into a fresh payload (method arguments are
/// serialized in declaration order).
template <typename... Ts>
[[nodiscard]] std::vector<std::uint8_t> encode_payload(const Ts&... values) {
  Writer writer;
  (someip_serialize(writer, values), ...);
  return writer.take();
}

/// Serializes a value pack into `out` (cleared, capacity retained) — the
/// allocation-free variant for recycled payload buffers.
template <typename... Ts>
void encode_payload_into(std::vector<std::uint8_t>& out, const Ts&... values) {
  Writer writer(std::move(out));
  (someip_serialize(writer, values), ...);
  out = writer.take();
}

/// Decodes a payload into a tuple; returns false on malformed input.
template <typename... Ts>
[[nodiscard]] bool decode_payload(const std::vector<std::uint8_t>& payload, Ts&... values) {
  Reader reader(payload);
  (someip_deserialize(reader, values), ...);
  return reader.ok();
}

}  // namespace dear::someip
