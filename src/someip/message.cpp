#include "someip/message.hpp"

namespace dear::someip {

std::vector<std::uint8_t> Message::encode() const {
  Writer writer;
  writer.write_u16(service);
  writer.write_u16(method);
  const std::size_t trailer = tag.has_value() ? kTagTrailerSize : 0;
  // Length covers request id (4) + version/type fields (4) + payload + trailer.
  writer.write_u32(static_cast<std::uint32_t>(8 + payload.size() + trailer));
  writer.write_u16(client);
  writer.write_u16(session);
  writer.write_u8(tag.has_value() ? kTaggedProtocolVersion : kProtocolVersion);
  writer.write_u8(interface_version);
  writer.write_u8(static_cast<std::uint8_t>(type));
  writer.write_u8(static_cast<std::uint8_t>(return_code));
  writer.write_bytes(payload.data(), payload.size());
  if (tag.has_value()) {
    writer.write_i64(tag->time);
    writer.write_u32(tag->microstep);
  }
  return writer.take();
}

std::optional<Message> Message::decode(const std::vector<std::uint8_t>& bytes) {
  Reader reader(bytes);
  Message message;
  message.service = reader.read_u16();
  message.method = reader.read_u16();
  const std::uint32_t length = reader.read_u32();
  message.client = reader.read_u16();
  message.session = reader.read_u16();
  const std::uint8_t protocol_version = reader.read_u8();
  message.interface_version = reader.read_u8();
  message.type = static_cast<MessageType>(reader.read_u8());
  message.return_code = static_cast<ReturnCode>(reader.read_u8());
  if (!reader.ok() || length < 8) {
    return std::nullopt;
  }
  if (protocol_version != kProtocolVersion && protocol_version != kTaggedProtocolVersion) {
    return std::nullopt;
  }
  const bool tagged = protocol_version == kTaggedProtocolVersion;
  const std::size_t body = length - 8;
  if (body != reader.remaining()) {
    return std::nullopt;  // inconsistent length field
  }
  if (tagged && body < kTagTrailerSize) {
    return std::nullopt;
  }
  const std::size_t payload_size = body - (tagged ? kTagTrailerSize : 0);
  message.payload.resize(payload_size);
  if (payload_size > 0 && !reader.read_bytes(message.payload.data(), payload_size)) {
    return std::nullopt;
  }
  if (tagged) {
    WireTag tag;
    tag.time = reader.read_i64();
    tag.microstep = reader.read_u32();
    if (!reader.ok()) {
      return std::nullopt;
    }
    message.tag = tag;
  }
  return message;
}

}  // namespace dear::someip
