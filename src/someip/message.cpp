#include "someip/message.hpp"

#include <utility>

#include "obs/obs.hpp"

namespace dear::someip {

void Message::encode_into(std::vector<std::uint8_t>& out) const {
  Writer writer(std::move(out));
  writer.reserve(encoded_size());
  writer.write_u16(service);
  writer.write_u16(method);
  const std::size_t trailer = tag.has_value() ? kTagTrailerSize : 0;
  // Length covers request id (4) + version/type fields (4) + payload + trailer.
  writer.write_u32(static_cast<std::uint32_t>(8 + payload_size() + trailer));
  writer.write_u16(client);
  writer.write_u16(session);
  writer.write_u8(tag.has_value() ? kTaggedProtocolVersion : kProtocolVersion);
  writer.write_u8(interface_version);
  writer.write_u8(static_cast<std::uint8_t>(type));
  writer.write_u8(static_cast<std::uint8_t>(return_code));
  if (loaned) {
    // The slab bytes are framed, never serialized: one bulk copy onto the
    // wire, counted so the zero-copy gate can prove the local path does
    // not take it.
    obs::count_always(obs::Counter::kDataplanePayloadCopies);
    writer.write_bytes(loaned.data(), loaned.size());
  } else {
    writer.write_bytes(payload.data(), payload.size());
  }
  if (tag.has_value()) {
    writer.write_i64(tag->time);
    writer.write_u32(tag->microstep);
  }
  out = writer.take();
}

std::vector<std::uint8_t> Message::encode() const {
  std::vector<std::uint8_t> out;
  encode_into(out);
  return out;
}

bool Message::decode_into(const std::uint8_t* bytes, std::size_t size, Message& out) {
  out.loaned.reset();  // scratch reuse: decoded payloads arrive in the vector
  Reader reader(bytes, size);
  out.service = reader.read_u16();
  out.method = reader.read_u16();
  const std::uint32_t length = reader.read_u32();
  out.client = reader.read_u16();
  out.session = reader.read_u16();
  const std::uint8_t protocol_version = reader.read_u8();
  out.interface_version = reader.read_u8();
  out.type = static_cast<MessageType>(reader.read_u8());
  out.return_code = static_cast<ReturnCode>(reader.read_u8());
  if (!reader.ok() || length < 8) {
    return false;
  }
  if (protocol_version != kProtocolVersion && protocol_version != kTaggedProtocolVersion) {
    return false;
  }
  const bool tagged = protocol_version == kTaggedProtocolVersion;
  const std::size_t body = length - 8;
  if (body != reader.remaining()) {
    return false;  // inconsistent length field
  }
  if (tagged && body < kTagTrailerSize) {
    return false;
  }
  const std::size_t payload_size = body - (tagged ? kTagTrailerSize : 0);
  out.payload.resize(payload_size);
  if (payload_size > 0 && !reader.read_bytes(out.payload.data(), payload_size)) {
    return false;
  }
  if (tagged) {
    WireTag tag;
    tag.time = reader.read_i64();
    tag.microstep = reader.read_u32();
    if (!reader.ok()) {
      return false;
    }
    out.tag = tag;
  } else {
    out.tag.reset();
  }
  return true;
}

std::optional<Message> Message::decode(const std::vector<std::uint8_t>& bytes) {
  Message message;
  if (!decode_into(bytes.data(), bytes.size(), message)) {
    return std::nullopt;
  }
  return message;
}

}  // namespace dear::someip
