#include "someip/binding.hpp"

#include <algorithm>
#include <utility>

#include "common/buffer_pool.hpp"
#include "common/logging.hpp"
#include "ft/fault_model.hpp"
#include "obs/obs.hpp"

namespace dear::someip {

namespace {
constexpr std::string_view kLogComponent = "someip.binding";
}

Binding::Binding(net::Network& network, common::Executor& executor, net::Endpoint self,
                 ClientId client_id)
    : network_(network), executor_(executor), self_(self), client_id_(client_id) {
  // Pre-size the dedup set: no rehash allocations on the receive path.
  recent_request_keys_.reserve(kRecentRequestWindow + 1);
  network_.bind(self_, [this](const net::Packet& packet) { on_packet(packet); });
}

Binding::~Binding() {
  network_.unbind(self_);
  // Lifetime totals flush into the metrics registry; the hot paths above
  // keep their plain member counters under the locks they already take.
  obs::count(obs::Counter::kSomeipMsgsSent, msgs_sent_);
  obs::count(obs::Counter::kSomeipMsgsReceived, msgs_received_);
  obs::count(obs::Counter::kSomeipBytesSent, bytes_sent_);
  obs::count(obs::Counter::kSomeipBytesReceived, bytes_received_);
  obs::count(obs::Counter::kSomeipTaggedSent, tagged_sent_);
  obs::count(obs::Counter::kSomeipTaggedReceived, tagged_received_);
  obs::count(obs::Counter::kSomeipDedupHits, duplicate_requests_);
  obs::count(obs::Counter::kSomeipMalformed, malformed_received_);
  obs::count(obs::Counter::kSomeipTimeouts, timeouts_);
}

void Binding::send_message(const net::Endpoint& destination, Message message) {
  // The paper's modification: pick up a pending tag from the bypass and
  // attach it to the outgoing message (Figure 3, steps 5 and 16).
  message.tag = send_bypass_.collect();
  // Injected crash: while the victim node is down, its tagged traffic dies
  // at the binding exactly as if the process were gone. Untagged control
  // traffic passes, so peers keep their subscription state (warm restart).
  if (fault_plan_ != nullptr && message.tag.has_value() && fault_plan_->crashes(self_) &&
      fault_plan_->down_at(message.tag->time)) {
    fault_plan_->crash_drops.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::size_t wire_bytes = message.encoded_size();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++msgs_sent_;
    bytes_sent_ += wire_bytes;
    if (message.tag.has_value()) {
      ++tagged_sent_;
    }
  }
  // Encode into a recycled wire buffer; the network layer releases it back
  // to the pool after delivery, closing the allocation-free send cycle.
  std::vector<std::uint8_t> wire = common::BufferPool::instance().acquire(wire_bytes);
  message.encode_into(wire);
  network_.send(self_, destination, std::move(wire));
}

SessionId Binding::call(const net::Endpoint& server, ServiceId service, MethodId method,
                        std::vector<std::uint8_t> payload, ResponseHandler on_response,
                        Duration timeout) {
  SessionId session = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    session = next_session_++;
    if (next_session_ == 0) {
      next_session_ = 1;  // session id 0 is reserved
    }
    pending_[session] = std::move(on_response);
    ++requests_sent_;
  }

  Message message;
  message.service = service;
  message.method = method;
  message.client = client_id_;
  message.session = session;
  message.type = MessageType::kRequest;
  message.payload = std::move(payload);
  send_message(server, std::move(message));

  if (timeout > 0) {
    executor_.post_after(timeout, [this, session, service, method] {
      ResponseHandler handler;
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = pending_.find(session);
        if (it == pending_.end()) {
          return;  // response already arrived
        }
        handler = std::move(it->second);
        pending_.erase(it);
        ++timeouts_;
      }
      Message error;
      error.service = service;
      error.method = method;
      error.client = client_id_;
      error.session = session;
      error.type = MessageType::kError;
      error.return_code = ReturnCode::kTimeout;
      handler(error);
    });
  }
  return session;
}

void Binding::call_no_return(const net::Endpoint& server, ServiceId service, MethodId method,
                             std::vector<std::uint8_t> payload) {
  Message message;
  message.service = service;
  message.method = method;
  message.client = client_id_;
  message.session = 0;
  message.type = MessageType::kRequestNoReturn;
  message.payload = std::move(payload);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++requests_sent_;
  }
  send_message(server, std::move(message));
}

void Binding::subscribe(const net::Endpoint& server, ServiceId service, EventId event,
                        NotificationHandler handler) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    event_handlers_[{service, event}] = std::move(handler);
  }
  Writer writer;
  writer.write_u16(service);
  writer.write_u16(event);
  Message message;
  message.service = kControlService;
  message.method = kSubscribeMethod;
  message.client = client_id_;
  message.type = MessageType::kRequestNoReturn;
  message.payload = writer.take();
  send_message(server, std::move(message));
}

void Binding::unsubscribe(const net::Endpoint& server, ServiceId service, EventId event) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    event_handlers_.erase({service, event});
  }
  Writer writer;
  writer.write_u16(service);
  writer.write_u16(event);
  Message message;
  message.service = kControlService;
  message.method = kUnsubscribeMethod;
  message.client = client_id_;
  message.type = MessageType::kRequestNoReturn;
  message.payload = writer.take();
  send_message(server, std::move(message));
}

void Binding::provide_method(ServiceId service, MethodId method, RequestHandler handler) {
  const std::lock_guard<std::mutex> lock(mutex_);
  methods_[{service, method}] = std::move(handler);
}

void Binding::remove_method(ServiceId service, MethodId method) {
  const std::lock_guard<std::mutex> lock(mutex_);
  methods_.erase({service, method});
}

void Binding::respond(const Message& request, const net::Endpoint& to,
                      std::vector<std::uint8_t> payload, ReturnCode return_code) {
  Message message;
  message.service = request.service;
  message.method = request.method;
  message.client = request.client;
  message.session = request.session;
  message.type = return_code == ReturnCode::kOk ? MessageType::kResponse : MessageType::kError;
  message.return_code = return_code;
  message.payload = std::move(payload);
  send_message(to, std::move(message));
}

void Binding::notify(ServiceId service, EventId event, std::vector<std::uint8_t> payload) {
  std::vector<net::Endpoint> subscribers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = subscribers_.find({service, event});
    if (it != subscribers_.end()) {
      subscribers = it->second;
    }
    ++notifications_sent_;
  }
  // The tag (if any) must reach every subscriber; collect once and re-arm
  // for each send.
  const std::optional<WireTag> tag = send_bypass_.collect();
  for (const net::Endpoint& subscriber : subscribers) {
    if (tag.has_value()) {
      send_bypass_.deposit(*tag);
    }
    Message message;
    message.service = service;
    message.method = event;
    message.client = client_id_;
    message.type = MessageType::kNotification;
    message.payload = payload;
    send_message(subscriber, std::move(message));
  }
}

void Binding::notify_loaned(ServiceId service, EventId event, common::LoanedBuffer payload) {
  if (!payload) {
    return;
  }
  std::vector<net::Endpoint> subscribers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = subscribers_.find({service, event});
    if (it != subscribers_.end()) {
      subscribers = it->second;
    }
    ++notifications_sent_;
  }
  const std::optional<WireTag> tag = send_bypass_.collect();
  for (std::size_t i = 0; i < subscribers.size(); ++i) {
    if (tag.has_value()) {
      send_bypass_.deposit(*tag);
    }
    Message message;
    message.service = service;
    message.method = event;
    message.client = client_id_;
    message.type = MessageType::kNotification;
    // Handle retain, not byte copy: encode_into frames the shared slab.
    if (i + 1 == subscribers.size()) {
      message.loaned = std::move(payload);
    } else {
      message.loaned = payload;
    }
    send_message(subscribers[i], std::move(message));
  }
}

std::size_t Binding::subscriber_count(ServiceId service, EventId event) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = subscribers_.find({service, event});
  return it == subscribers_.end() ? 0 : it->second.size();
}

void Binding::on_packet(const net::Packet& packet) {
  // Serialize the receive path: the deposit→handler pairing below must not
  // interleave with another message's. Decoding into the scratch message
  // (payload capacity recycled) rides the same serialization.
  const std::lock_guard<std::mutex> receive_lock(receive_mutex_);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++msgs_received_;
    bytes_received_ += packet.payload.size();
  }
  if (!Message::decode_into(packet.payload.data(), packet.payload.size(), rx_message_)) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++malformed_received_;
    DEAR_LOG_WARN(kLogComponent) << self_.to_string() << ": dropping malformed packet from "
                                 << packet.source.to_string();
    return;
  }
  Message& message = rx_message_;
  // Injected crash, receive side: a down victim does not process tagged
  // traffic either (messages already in flight at crash time die here).
  if (fault_plan_ != nullptr && message.tag.has_value() && fault_plan_->crashes(self_) &&
      fault_plan_->down_at(message.tag->time)) {
    fault_plan_->crash_drops.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (message.tag.has_value()) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++tagged_received_;
    }
    // Figure 3, steps 7 and 18: the modified binding deposits the received
    // tag before invoking the handler.
    receive_bypass_.deposit(*message.tag);
  }

  if (message.service == kControlService) {
    handle_control(message, packet.source);
  } else if (message.is_request()) {
    handle_request(message, packet.source);
  } else if (message.is_response()) {
    handle_response(message);
  } else if (message.is_notification()) {
    handle_notification(message, packet.source);
  }

  // A tag the handler did not collect is stale; clear it so it cannot be
  // mis-associated with the next untagged message.
  (void)receive_bypass_.collect();
}

bool Binding::record_request(ClientId client, SessionId session) {
  const std::uint32_t key =
      (static_cast<std::uint32_t>(client) << 16) | static_cast<std::uint32_t>(session);
  if (!recent_request_keys_.insert(key).second) {
    ++duplicate_requests_;
    return false;
  }
  // Bound the window FIFO-style: duplicates arrive within one link latency
  // of the original, so a small horizon is ample.
  if (recent_request_count_ == kRecentRequestWindow) {
    recent_request_keys_.erase(recent_request_ring_[recent_request_head_]);
  } else {
    ++recent_request_count_;
  }
  recent_request_ring_[recent_request_head_] = key;
  recent_request_head_ = (recent_request_head_ + 1) % kRecentRequestWindow;
  return true;
}

void Binding::handle_request(const Message& message, const net::Endpoint& from) {
  RequestHandler handler;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // At-most-once delivery for sessioned requests: a network-duplicated
    // datagram must not execute the method a second time.
    if (message.type == MessageType::kRequest && message.session != 0 &&
        !record_request(message.client, message.session)) {
      return;
    }
    const auto it = methods_.find({message.service, message.method});
    if (it != methods_.end()) {
      handler = it->second;
    }
  }
  // Per-call fault die (after dedup, so a duplicated datagram cannot
  // double-count): a pure function of (fault_seed, client, session), hence
  // identical across transports and worker counts.
  if (fault_plan_ != nullptr && message.type == MessageType::kRequest && message.session != 0) {
    switch (fault_plan_->call_fault(message.client, message.session)) {
      case ft::FaultPlan::CallFault::kOmission:
        return;  // swallowed: the client's timeout is the only signal
      case ft::FaultPlan::CallFault::kError:
        respond(message, from, {}, ReturnCode::kNotOk);
        return;
      case ft::FaultPlan::CallFault::kNone:
        break;
    }
  }
  if (!handler) {
    if (message.type == MessageType::kRequest) {
      respond(message, from, {}, ReturnCode::kUnknownMethod);
    }
    return;
  }
  handler(message, from);
}

void Binding::handle_response(const Message& message) {
  ResponseHandler handler;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = pending_.find(message.session);
    if (it == pending_.end()) {
      return;  // late response after timeout, or duplicate
    }
    handler = std::move(it->second);
    pending_.erase(it);
    ++responses_received_;
  }
  handler(message);
}

void Binding::handle_notification(const Message& message, const net::Endpoint& /*from*/) {
  NotificationHandler handler;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = event_handlers_.find({message.service, static_cast<EventId>(message.method)});
    if (it == event_handlers_.end()) {
      return;
    }
    handler = it->second;
    ++notifications_received_;
  }
  handler(message);
}

void Binding::handle_control(const Message& message, const net::Endpoint& from) {
  Reader reader(message.payload);
  const ServiceId service = reader.read_u16();
  const EventId event = reader.read_u16();
  if (!reader.ok()) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++malformed_received_;
    return;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& list = subscribers_[{service, event}];
  const auto it = std::find(list.begin(), list.end(), from);
  if (message.method == kSubscribeMethod) {
    if (it == list.end()) {
      list.push_back(from);
    }
  } else if (message.method == kUnsubscribeMethod) {
    if (it != list.end()) {
      list.erase(it);
    }
  }
}

}  // namespace dear::someip
