#include "someip/sd_wire.hpp"

namespace dear::someip {

namespace {

constexpr std::uint8_t kIpv4EndpointOptionType = 0x04;
constexpr std::size_t kEntrySize = 16;
constexpr std::size_t kOptionSize = 12;  // incl. the leading length field

void encode_option(Writer& writer, const SdEndpointOption& option) {
  writer.write_u16(0x0009);  // length of the remainder
  writer.write_u8(kIpv4EndpointOptionType);
  writer.write_u8(0x00);  // reserved
  writer.write_u32(option.address);
  writer.write_u8(0x00);  // reserved
  writer.write_u8(static_cast<std::uint8_t>(option.protocol));
  writer.write_u16(option.port);
}

[[nodiscard]] bool decode_option(Reader& reader, SdEndpointOption& option) {
  const std::uint16_t length = reader.read_u16();
  const std::uint8_t type = reader.read_u8();
  (void)reader.read_u8();
  option.address = reader.read_u32();
  (void)reader.read_u8();
  option.protocol = static_cast<SdProtocol>(reader.read_u8());
  option.port = reader.read_u16();
  return reader.ok() && length == 0x0009 && type == kIpv4EndpointOptionType;
}

}  // namespace

std::vector<std::uint8_t> SdMessage::encode() const {
  // Collect options; each entry references a contiguous run in the shared
  // options array (index1 + count1).
  Writer writer;
  writer.write_u8(flags);
  writer.write_u8(0);
  writer.write_u16(0);  // reserved u24 split as u8+u16
  writer.write_u32(static_cast<std::uint32_t>(entries.size() * kEntrySize));

  std::vector<SdEndpointOption> all_options;
  for (const SdEntry& entry : entries) {
    const auto index = static_cast<std::uint8_t>(all_options.size());
    const auto count = static_cast<std::uint8_t>(entry.options.size());
    writer.write_u8(static_cast<std::uint8_t>(entry.type));
    writer.write_u8(index);  // index of the first option run
    writer.write_u8(0);      // second option run unused
    writer.write_u8(static_cast<std::uint8_t>(count << 4));
    writer.write_u16(entry.service);
    writer.write_u16(entry.instance);
    writer.write_u8(entry.major_version);
    // TTL is 24 bits.
    writer.write_u8(static_cast<std::uint8_t>(entry.ttl >> 16));
    writer.write_u16(static_cast<std::uint16_t>(entry.ttl));
    writer.write_u32(entry.minor_version);
    for (const SdEndpointOption& option : entry.options) {
      all_options.push_back(option);
    }
  }
  writer.write_u32(static_cast<std::uint32_t>(all_options.size() * kOptionSize));
  for (const SdEndpointOption& option : all_options) {
    encode_option(writer, option);
  }
  return writer.take();
}

std::optional<SdMessage> SdMessage::decode(const std::vector<std::uint8_t>& bytes) {
  Reader reader(bytes);
  SdMessage message;
  message.flags = reader.read_u8();
  (void)reader.read_u8();
  (void)reader.read_u16();
  const std::uint32_t entries_bytes = reader.read_u32();
  if (!reader.ok() || entries_bytes % kEntrySize != 0 || entries_bytes > reader.remaining()) {
    return std::nullopt;
  }
  struct PendingRun {
    std::uint8_t index;
    std::uint8_t count;
  };
  std::vector<PendingRun> runs;
  const std::size_t entry_count = entries_bytes / kEntrySize;
  for (std::size_t i = 0; i < entry_count; ++i) {
    SdEntry entry;
    entry.type = static_cast<SdEntryType>(reader.read_u8());
    const std::uint8_t index1 = reader.read_u8();
    (void)reader.read_u8();  // index2 unused
    const std::uint8_t counts = reader.read_u8();
    entry.service = reader.read_u16();
    entry.instance = reader.read_u16();
    entry.major_version = reader.read_u8();
    const auto ttl_high = static_cast<std::uint32_t>(reader.read_u8());
    const auto ttl_low = static_cast<std::uint32_t>(reader.read_u16());
    entry.ttl = (ttl_high << 16) | ttl_low;
    entry.minor_version = reader.read_u32();
    message.entries.push_back(entry);
    runs.push_back(PendingRun{index1, static_cast<std::uint8_t>(counts >> 4)});
  }
  const std::uint32_t options_bytes = reader.read_u32();
  if (!reader.ok() || options_bytes % kOptionSize != 0 ||
      options_bytes != reader.remaining()) {
    return std::nullopt;
  }
  std::vector<SdEndpointOption> all_options;
  const std::size_t option_count = options_bytes / kOptionSize;
  for (std::size_t i = 0; i < option_count; ++i) {
    SdEndpointOption option;
    if (!decode_option(reader, option)) {
      return std::nullopt;
    }
    all_options.push_back(option);
  }
  for (std::size_t i = 0; i < message.entries.size(); ++i) {
    const PendingRun& run = runs[i];
    if (static_cast<std::size_t>(run.index) + run.count > all_options.size()) {
      return std::nullopt;
    }
    for (std::uint8_t k = 0; k < run.count; ++k) {
      message.entries[i].options.push_back(all_options[run.index + k]);
    }
  }
  return message;
}

SdEntry make_offer_entry(ServiceId service, InstanceId instance, SdEndpointOption endpoint,
                         std::uint32_t ttl) {
  SdEntry entry;
  entry.type = SdEntryType::kOfferService;
  entry.service = service;
  entry.instance = instance;
  entry.ttl = ttl;
  entry.options.push_back(endpoint);
  return entry;
}

SdEntry make_find_entry(ServiceId service, InstanceId instance) {
  SdEntry entry;
  entry.type = SdEntryType::kFindService;
  entry.service = service;
  entry.instance = instance;
  entry.ttl = 3;
  return entry;
}

SdEntry make_stop_offer_entry(ServiceId service, InstanceId instance) {
  SdEntry entry;
  entry.type = SdEntryType::kOfferService;
  entry.service = service;
  entry.instance = instance;
  entry.ttl = 0;  // stop-offer is an offer with TTL 0
  return entry;
}

}  // namespace dear::someip
