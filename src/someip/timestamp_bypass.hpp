// Timestamp bypass (paper §III.B, Figure 3).
//
// ara::com method/event signatures cannot carry logical tags — the standard
// fixes those interfaces. DEAR therefore tunnels the tag *around* the
// ara::com layer: a transactor deposits the outgoing tag into the bypass
// immediately before invoking the proxy/skeleton call, and the modified
// SOME/IP binding collects it when the call reaches the wire (steps 2/5 and
// 13/16 in Figure 3). On the receive path the binding deposits the tag
// before invoking the handler, and the transactor collects it (steps 7/10
// and 18/21).
//
// Deposit/collect pairs rely on the synchronous call nesting between
// transactor and binding, exactly like the paper's implementation; the slot
// is mutex-protected because the real-threads runtime may operate bindings
// from several threads.
#pragma once

#include <mutex>
#include <optional>

#include "someip/message.hpp"

namespace dear::someip {

class TimestampBypass {
 public:
  /// Places a tag in the slot. Overwrites any previous tag (a leftover tag
  /// indicates a protocol misuse; collect_stale() exposes it for tests).
  void deposit(WireTag tag);

  /// Removes and returns the slot content.
  [[nodiscard]] std::optional<WireTag> collect();

  /// Returns the slot content without disarming it (retry bookkeeping:
  /// a proxy wrapper records the armed tag so a retried attempt can
  /// re-arm it with a logical backoff).
  [[nodiscard]] std::optional<WireTag> peek() const;

  /// True when a tag is waiting.
  [[nodiscard]] bool armed() const;

  /// Number of deposits that overwrote an uncollected tag.
  [[nodiscard]] std::uint64_t overwrites() const;

 private:
  mutable std::mutex mutex_;
  std::optional<WireTag> slot_;
  std::uint64_t overwrites_{0};
};

}  // namespace dear::someip
