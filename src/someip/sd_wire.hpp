// SOME/IP Service Discovery wire format (AUTOSAR FO "SOME/IP Service
// Discovery Protocol Specification").
//
// The in-process ServiceDiscovery registry models the SD *domain*; this
// module provides the on-wire representation of SD messages (entries +
// IPv4 endpoint options) so deployments that exchange discovery over the
// network can be built and tested against the real format. Layout:
//
//   flags u8, reserved u24
//   length of entries array u32
//     entry: type u8, index1 u8, index2 u8, #opts u4|u4,
//            service u16, instance u16, major u8, ttl u24,
//            minor u32 (service entries) / counter+eventgroup (eventgroup
//            entries)
//   length of options array u32
//     ipv4 endpoint option: length u16, type u8 (0x04), reserved u8,
//            addr u32, reserved u8, proto u8, port u16
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "someip/serialization.hpp"
#include "someip/types.hpp"

namespace dear::someip {

enum class SdEntryType : std::uint8_t {
  kFindService = 0x00,
  kOfferService = 0x01,
  kSubscribeEventgroup = 0x06,
  kSubscribeEventgroupAck = 0x07,
};

enum class SdProtocol : std::uint8_t {
  kTcp = 0x06,
  kUdp = 0x11,
};

struct SdEndpointOption {
  std::uint32_t address{0};  // IPv4 in host order
  SdProtocol protocol{SdProtocol::kUdp};
  std::uint16_t port{0};

  bool operator==(const SdEndpointOption&) const = default;
};

struct SdEntry {
  SdEntryType type{SdEntryType::kFindService};
  ServiceId service{0};
  InstanceId instance{0};
  std::uint8_t major_version{1};
  /// TTL in seconds (24 bits on the wire); 0 withdraws the offer /
  /// subscription ("stop offer").
  std::uint32_t ttl{0};
  /// Service entries carry the minor version; eventgroup entries carry
  /// counter + eventgroup id in the same 4 bytes.
  std::uint32_t minor_version{0};
  /// Endpoint options referenced by this entry (via index/count fields).
  std::vector<SdEndpointOption> options;

  bool operator==(const SdEntry&) const = default;

  [[nodiscard]] bool is_stop() const noexcept { return ttl == 0; }
};

struct SdMessage {
  /// Bit 7: reboot flag; bit 6: unicast supported.
  std::uint8_t flags{0xC0};
  std::vector<SdEntry> entries;

  bool operator==(const SdMessage&) const = default;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static std::optional<SdMessage> decode(const std::vector<std::uint8_t>& bytes);
};

/// Convenience constructors for the common entries.
[[nodiscard]] SdEntry make_offer_entry(ServiceId service, InstanceId instance,
                                       SdEndpointOption endpoint, std::uint32_t ttl = 3);
[[nodiscard]] SdEntry make_find_entry(ServiceId service, InstanceId instance);
[[nodiscard]] SdEntry make_stop_offer_entry(ServiceId service, InstanceId instance);

}  // namespace dear::someip
