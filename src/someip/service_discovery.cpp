#include "someip/service_discovery.hpp"

namespace dear::someip {

void ServiceDiscovery::offer(ServiceKey key, net::Endpoint endpoint) {
  const std::lock_guard<std::mutex> lock(mutex_);
  offers_[key] = endpoint;
  notify_locked(key, endpoint);
}

void ServiceDiscovery::stop_offer(ServiceKey key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (offers_.erase(key) > 0) {
    notify_locked(key, std::nullopt);
  }
}

std::optional<net::Endpoint> ServiceDiscovery::find(ServiceKey key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = offers_.find(key);
  if (it == offers_.end()) {
    return std::nullopt;
  }
  return it->second;
}

WatchId ServiceDiscovery::watch(ServiceKey key, common::Executor& executor, Watcher watcher) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const WatchId id = next_watch_id_++;
  watchers_[id] = WatchEntry{key, &executor, std::move(watcher)};
  const auto it = offers_.find(key);
  if (it != offers_.end()) {
    const WatchEntry& entry = watchers_[id];
    const net::Endpoint endpoint = it->second;
    entry.executor->post([watcher = entry.watcher, endpoint] { watcher(endpoint); });
  }
  return id;
}

void ServiceDiscovery::unwatch(WatchId id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  watchers_.erase(id);
}

std::size_t ServiceDiscovery::offered_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return offers_.size();
}

void ServiceDiscovery::notify_locked(ServiceKey key, std::optional<net::Endpoint> endpoint) {
  for (const auto& [id, entry] : watchers_) {
    if (entry.key == key) {
      entry.executor->post([watcher = entry.watcher, endpoint] { watcher(endpoint); });
    }
  }
}

}  // namespace dear::someip
