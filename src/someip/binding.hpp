// SOME/IP runtime binding.
//
// One Binding per SWC process: it frames/parses messages, matches responses
// to requests via session ids, routes notifications to event handlers, and
// manages event subscriptions via a small control protocol. This is the
// layer the paper modified: on every send it collects a pending tag from
// the send-side timestamp bypass and appends it to the wire message; on
// every receive it deposits an attached tag into the receive-side bypass
// before invoking the handler (Figure 3, steps 5/7 and 16/18).
//
// The receive path is serialized per binding (vsomeip dispatches
// per-application in the same way), which also makes the deposit→handler
// pairing race-free.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "common/executor.hpp"
#include "common/flat_map.hpp"
#include "common/time.hpp"
#include "net/network.hpp"
#include "someip/message.hpp"
#include "someip/timestamp_bypass.hpp"
#include "someip/types.hpp"

namespace dear::ft {
class FaultPlan;
}  // namespace dear::ft

namespace dear::someip {

/// Control service used for subscription management (mirrors the SD
/// service id reserved by SOME/IP).
inline constexpr ServiceId kControlService = 0xFFFF;
inline constexpr MethodId kSubscribeMethod = 0x0001;
inline constexpr MethodId kUnsubscribeMethod = 0x0002;

class Binding {
 public:
  using ResponseHandler = std::function<void(const Message&)>;
  using RequestHandler = std::function<void(const Message&, const net::Endpoint& from)>;
  using NotificationHandler = std::function<void(const Message&)>;

  Binding(net::Network& network, common::Executor& executor, net::Endpoint self,
          ClientId client_id);
  ~Binding();

  Binding(const Binding&) = delete;
  Binding& operator=(const Binding&) = delete;

  // --- client role ---------------------------------------------------------

  /// Sends a method request. `on_response` fires (from the receive path)
  /// with the response or, if `timeout` > 0 elapses first, with a
  /// synthesized kTimeout error message. Returns the session id.
  SessionId call(const net::Endpoint& server, ServiceId service, MethodId method,
                 std::vector<std::uint8_t> payload, ResponseHandler on_response,
                 Duration timeout = 0);

  /// Fire-and-forget request (REQUEST_NO_RETURN).
  void call_no_return(const net::Endpoint& server, ServiceId service, MethodId method,
                      std::vector<std::uint8_t> payload);

  /// Subscribes to event notifications from `server`. The handler runs on
  /// the receive path.
  void subscribe(const net::Endpoint& server, ServiceId service, EventId event,
                 NotificationHandler handler);

  void unsubscribe(const net::Endpoint& server, ServiceId service, EventId event);

  // --- server role ---------------------------------------------------------

  /// Registers the handler for incoming requests to (service, method).
  void provide_method(ServiceId service, MethodId method, RequestHandler handler);

  void remove_method(ServiceId service, MethodId method);

  /// Sends the response for `request` back to `to`.
  void respond(const Message& request, const net::Endpoint& to,
               std::vector<std::uint8_t> payload, ReturnCode return_code = ReturnCode::kOk);

  /// Sends a notification for (service, event) to all subscribers.
  void notify(ServiceId service, EventId event, std::vector<std::uint8_t> payload);

  /// Loaned-slab notification (sensor data plane): the header + DEAR tag
  /// trailer are framed around the slab bytes without serializing them —
  /// encode performs one bulk copy onto the wire per subscriber, never a
  /// field-by-field pass over the payload.
  void notify_loaned(ServiceId service, EventId event, common::LoanedBuffer payload);

  [[nodiscard]] std::size_t subscriber_count(ServiceId service, EventId event) const;

  // --- DEAR tag extension ----------------------------------------------------

  /// Bypass collected on every outgoing message.
  [[nodiscard]] TimestampBypass& send_bypass() noexcept { return send_bypass_; }
  [[nodiscard]] const TimestampBypass& send_bypass() const noexcept { return send_bypass_; }
  /// Bypass deposited on every incoming tagged message.
  [[nodiscard]] TimestampBypass& receive_bypass() noexcept { return receive_bypass_; }
  [[nodiscard]] const TimestampBypass& receive_bypass() const noexcept { return receive_bypass_; }

  [[nodiscard]] net::Endpoint endpoint() const noexcept { return self_; }
  [[nodiscard]] ClientId client_id() const noexcept { return client_id_; }

  // --- deterministic fault injection -----------------------------------------

  /// Installs (or clears) the shared injection plan; it must outlive the
  /// binding. A binding whose endpoint matches the plan's victim drops all
  /// tagged traffic in and out while the wire tag is inside the down
  /// window; any plan-installed binding rolls the per-call fault die on
  /// incoming sessioned requests.
  void set_fault_plan(const ft::FaultPlan* plan) noexcept { fault_plan_ = plan; }
  [[nodiscard]] const ft::FaultPlan* fault_plan() const noexcept { return fault_plan_; }

  // --- statistics ------------------------------------------------------------

  /// Wire messages of any type, and their encoded bytes, per direction.
  [[nodiscard]] std::uint64_t messages_sent() const noexcept { return msgs_sent_; }
  [[nodiscard]] std::uint64_t messages_received() const noexcept { return msgs_received_; }
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }
  [[nodiscard]] std::uint64_t bytes_received() const noexcept { return bytes_received_; }
  [[nodiscard]] std::uint64_t requests_sent() const noexcept { return requests_sent_; }
  [[nodiscard]] std::uint64_t responses_received() const noexcept { return responses_received_; }
  [[nodiscard]] std::uint64_t notifications_sent() const noexcept { return notifications_sent_; }
  [[nodiscard]] std::uint64_t notifications_received() const noexcept {
    return notifications_received_;
  }
  [[nodiscard]] std::uint64_t tagged_sent() const noexcept { return tagged_sent_; }
  [[nodiscard]] std::uint64_t tagged_received() const noexcept { return tagged_received_; }
  [[nodiscard]] std::uint64_t malformed_received() const noexcept { return malformed_received_; }
  [[nodiscard]] std::uint64_t timeouts() const noexcept { return timeouts_; }
  /// Requests discarded by at-most-once delivery (same client and session
  /// seen before, e.g. a network-duplicated datagram).
  [[nodiscard]] std::uint64_t duplicate_requests() const noexcept { return duplicate_requests_; }

 private:
  void on_packet(const net::Packet& packet);
  void handle_request(const Message& message, const net::Endpoint& from);
  void handle_response(const Message& message);
  void handle_notification(const Message& message, const net::Endpoint& from);
  void handle_control(const Message& message, const net::Endpoint& from);
  void send_message(const net::Endpoint& destination, Message message);

  net::Network& network_;
  common::Executor& executor_;
  net::Endpoint self_;
  ClientId client_id_;
  const ft::FaultPlan* fault_plan_{nullptr};

  TimestampBypass send_bypass_;
  TimestampBypass receive_bypass_;

  mutable std::mutex mutex_;
  std::mutex receive_mutex_;

  /// True (and recorded) the first time (client, session) is seen within
  /// the recent-request window; false for a duplicate. Call under mutex_.
  [[nodiscard]] bool record_request(ClientId client, SessionId session);

  SessionId next_session_{1};
  /// All four dispatch tables are sorted flat maps: per-call lookup walks
  /// contiguous memory instead of chasing tree nodes, and insert/erase
  /// churn (pending responses) stops allocating once capacity is warm.
  common::FlatMap<SessionId, ResponseHandler> pending_;
  /// Recently seen (client << 16 | session) request keys, FIFO-bounded.
  /// Method execution is not idempotent (each request gets its own
  /// response and its own server-side call state), so a duplicated
  /// request datagram must be dropped here — SOME/IP sessions exist
  /// precisely to give requests at-most-once identity. O(1) per request:
  /// this runs under mutex_ on the real-time receive path.
  static constexpr std::size_t kRecentRequestWindow = 128;
  std::unordered_set<std::uint32_t> recent_request_keys_;
  std::array<std::uint32_t, kRecentRequestWindow> recent_request_ring_{};
  std::size_t recent_request_head_{0};
  std::size_t recent_request_count_{0};
  common::FlatMap<std::pair<ServiceId, MethodId>, RequestHandler> methods_;
  common::FlatMap<std::pair<ServiceId, EventId>, NotificationHandler> event_handlers_;
  common::FlatMap<std::pair<ServiceId, EventId>, std::vector<net::Endpoint>> subscribers_;

  /// Receive-path scratch message (guarded by receive_mutex_): payload
  /// capacity is recycled across packets.
  Message rx_message_;

  std::uint64_t msgs_sent_{0};
  std::uint64_t msgs_received_{0};
  std::uint64_t bytes_sent_{0};
  std::uint64_t bytes_received_{0};
  std::uint64_t requests_sent_{0};
  std::uint64_t responses_received_{0};
  std::uint64_t notifications_sent_{0};
  std::uint64_t notifications_received_{0};
  std::uint64_t tagged_sent_{0};
  std::uint64_t tagged_received_{0};
  std::uint64_t malformed_received_{0};
  std::uint64_t timeouts_{0};
  std::uint64_t duplicate_requests_{0};
};

}  // namespace dear::someip
