#include "someip/timestamp_bypass.hpp"

namespace dear::someip {

void TimestampBypass::deposit(WireTag tag) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (slot_.has_value()) {
    ++overwrites_;
  }
  slot_ = tag;
}

std::optional<WireTag> TimestampBypass::collect() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::optional<WireTag> tag = slot_;
  slot_.reset();
  return tag;
}

std::optional<WireTag> TimestampBypass::peek() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return slot_;
}

bool TimestampBypass::armed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return slot_.has_value();
}

std::uint64_t TimestampBypass::overwrites() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return overwrites_;
}

}  // namespace dear::someip
