// Simplified SOME/IP service discovery.
//
// Real SOME/IP-SD exchanges multicast Offer/Find entries; dynamic binding
// of clients to servers at runtime is the core adaptivity mechanism of
// AUTOSAR AP (paper §II.A). This implementation models the SD domain as a
// shared registry with asynchronous watcher notification — offers become
// visible immediately, watchers are notified through their own executor
// (matching the asynchronous FindServiceHandler of ara::com).
//
// Simplification vs. the wire protocol: SD message latency and TTL/refresh
// cycles are not modeled. Binding happens during startup in every
// experiment in the paper, so this does not affect any reproduced result.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "common/executor.hpp"
#include "common/flat_map.hpp"
#include "net/endpoint.hpp"
#include "someip/types.hpp"

namespace dear::someip {

struct ServiceKey {
  ServiceId service{0};
  InstanceId instance{0};

  auto operator<=>(const ServiceKey&) const = default;
};

using WatchId = std::uint64_t;

class ServiceDiscovery {
 public:
  /// Called with the offering endpoint, or nullopt when the offer is
  /// withdrawn.
  using Watcher = std::function<void(std::optional<net::Endpoint>)>;

  /// Announces a service instance at `endpoint`. Re-offering replaces the
  /// previous endpoint.
  void offer(ServiceKey key, net::Endpoint endpoint);

  void stop_offer(ServiceKey key);

  /// Synchronous one-shot lookup (ara::com FindService).
  [[nodiscard]] std::optional<net::Endpoint> find(ServiceKey key) const;

  /// Continuous lookup (ara::com StartFindService). The watcher fires once
  /// immediately if the service is already offered, then on every change.
  WatchId watch(ServiceKey key, common::Executor& executor, Watcher watcher);

  void unwatch(WatchId id);

  [[nodiscard]] std::size_t offered_count() const;

 private:
  struct WatchEntry {
    ServiceKey key;
    common::Executor* executor;
    Watcher watcher;
  };

  void notify_locked(ServiceKey key, std::optional<net::Endpoint> endpoint);

  mutable std::mutex mutex_;
  // Flat maps: SD tables are small and lookup-heavy, and watcher
  // notification iterates in key order exactly as std::map did.
  common::FlatMap<ServiceKey, net::Endpoint> offers_;
  common::FlatMap<WatchId, WatchEntry> watchers_;
  WatchId next_watch_id_{1};
};

}  // namespace dear::someip
