// SOME/IP message framing.
//
// Standard 16-byte header:
//   message id (service id u16 | method id u16)
//   length u32                  — bytes after this field
//   request id (client id u16 | session id u16)
//   protocol version u8, interface version u8, message type u8, return code u8
// followed by the payload.
//
// DEAR extension: when protocol version == kTaggedProtocolVersion, a 12-byte
// tag trailer (logical time i64, microstep u32) follows the payload. The
// trailer is covered by the length field, so standard-compliant peers that
// reject protocol version 2 simply drop the message, and peers running the
// extension interoperate with untagged version-1 senders.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/buffer_pool.hpp"
#include "someip/serialization.hpp"
#include "someip/types.hpp"

namespace dear::someip {

/// Logical tag on the wire (paper §III.B).
struct WireTag {
  std::int64_t time{0};
  std::uint32_t microstep{0};

  bool operator==(const WireTag&) const = default;
};

inline constexpr std::size_t kHeaderSize = 16;
inline constexpr std::size_t kTagTrailerSize = 12;

struct Message {
  ServiceId service{0};
  MethodId method{0};
  ClientId client{0};
  SessionId session{0};
  std::uint8_t interface_version{1};
  MessageType type{MessageType::kRequest};
  ReturnCode return_code{ReturnCode::kOk};
  std::vector<std::uint8_t> payload;
  /// Loaned-slab payload (sensor data plane). When set it replaces
  /// `payload`: encode frames header + trailer around the slab bytes
  /// without serializing them, and the local backend hands the handle
  /// itself to subscribers — payload never copied at all.
  common::LoanedBuffer loaned;
  /// Present on messages sent through the tagged (DEAR-extended) binding.
  std::optional<WireTag> tag;

  /// Bytes of application payload (loaned slab wins over the vector).
  [[nodiscard]] std::size_t payload_size() const noexcept {
    return loaned ? loaned.size() : payload.size();
  }

  /// Total bytes encode() will produce.
  [[nodiscard]] std::size_t encoded_size() const noexcept {
    return kHeaderSize + payload_size() + (tag.has_value() ? kTagTrailerSize : 0);
  }

  /// Serializes header + payload (+ tag trailer when tag is set).
  [[nodiscard]] std::vector<std::uint8_t> encode() const;

  /// Serializes into `out` (cleared, capacity retained) — the pooled path:
  /// a warm buffer makes encoding allocation-free.
  void encode_into(std::vector<std::uint8_t>& out) const;

  /// Parses a datagram. Returns nullopt on malformed input (short buffer,
  /// inconsistent length field, unknown protocol version).
  [[nodiscard]] static std::optional<Message> decode(const std::vector<std::uint8_t>& bytes);

  /// Parses into `out`, reusing its payload capacity (the receive-path
  /// variant: one scratch Message per binding, zero allocations per warm
  /// message). Returns false on malformed input; `out` is unspecified then.
  [[nodiscard]] static bool decode_into(const std::uint8_t* bytes, std::size_t size,
                                        Message& out);

  [[nodiscard]] bool is_request() const noexcept {
    return type == MessageType::kRequest || type == MessageType::kRequestNoReturn;
  }
  [[nodiscard]] bool is_response() const noexcept {
    return type == MessageType::kResponse || type == MessageType::kError;
  }
  [[nodiscard]] bool is_notification() const noexcept {
    return type == MessageType::kNotification;
  }
};

}  // namespace dear::someip
