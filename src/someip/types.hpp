// SOME/IP protocol types (AUTOSAR FO "SOME/IP Protocol Specification").
#pragma once

#include <cstdint>

namespace dear::someip {

using ServiceId = std::uint16_t;
using InstanceId = std::uint16_t;
/// Methods occupy ids 0x0000-0x7FFF; events/notifications 0x8000-0xFFFF.
using MethodId = std::uint16_t;
using EventId = std::uint16_t;
using ClientId = std::uint16_t;
using SessionId = std::uint16_t;

inline constexpr MethodId kEventFlag = 0x8000;

[[nodiscard]] constexpr bool is_event_id(MethodId id) noexcept { return (id & kEventFlag) != 0; }

enum class MessageType : std::uint8_t {
  kRequest = 0x00,
  kRequestNoReturn = 0x01,
  kNotification = 0x02,
  kResponse = 0x80,
  kError = 0x81,
};

enum class ReturnCode : std::uint8_t {
  kOk = 0x00,
  kNotOk = 0x01,
  kUnknownService = 0x02,
  kUnknownMethod = 0x03,
  kNotReady = 0x04,
  kNotReachable = 0x05,
  kTimeout = 0x06,
  kWrongProtocolVersion = 0x07,
  kWrongInterfaceVersion = 0x08,
  kMalformedMessage = 0x09,
  kWrongMessageType = 0x0a,
};

/// Standard SOME/IP protocol version.
inline constexpr std::uint8_t kProtocolVersion = 0x01;

/// The DEAR extension: messages carrying this protocol version have a
/// 12-byte tag trailer (logical time + microstep) appended to the payload.
/// This realizes the paper's "third-party middleware that extends over
/// SOME/IP by allowing the transmission of tagged messages" while staying
/// interoperable with untagged peers.
inline constexpr std::uint8_t kTaggedProtocolVersion = 0x02;

}  // namespace dear::someip
