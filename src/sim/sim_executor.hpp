// Discrete-event executor with modeled dispatch nondeterminism.
//
// In the real AP runtime, each incoming method call is handed to a worker
// thread; which call runs first is up to the OS scheduler. The simulation
// models this with a per-dispatch jitter draw: post(task) schedules the
// task at now() + jitter. Two tasks posted back-to-back can therefore
// execute in either order — reproducibly, because the jitter stream is
// seeded.
#pragma once

#include "common/executor.hpp"
#include "common/rng.hpp"
#include "sim/exec_time_model.hpp"
#include "sim/kernel.hpp"

namespace dear::sim {

class SimExecutor final : public common::Executor {
 public:
  /// Default jitter of [0, 200us] approximates thread wake-up latency
  /// spread on a loaded quad-core Atom (the paper's evaluation platform).
  SimExecutor(Kernel& kernel, common::Rng rng,
              ExecTimeModel jitter = ExecTimeModel::uniform(0, 200 * kMicrosecond))
      : kernel_(kernel), rng_(rng), jitter_(jitter) {}

  void post(Task task) override {
    kernel_.schedule_after(jitter_.sample(rng_), std::move(task));
  }

  void post_after(Duration delay, Task task) override {
    kernel_.schedule_after(delay + jitter_.sample(rng_), std::move(task));
  }

  [[nodiscard]] TimePoint now() const override { return kernel_.now(); }

  [[nodiscard]] Kernel& kernel() noexcept { return kernel_; }

 private:
  Kernel& kernel_;
  common::Rng rng_;
  ExecTimeModel jitter_;
};

/// Jitter-free variant: tasks run in post order at the current time. Used
/// by the deterministic single-threaded processing mode (kEventSingleThread
/// with FIFO semantics) and by unit tests.
class ImmediateSimExecutor final : public common::Executor {
 public:
  explicit ImmediateSimExecutor(Kernel& kernel) : kernel_(kernel) {}

  void post(Task task) override { kernel_.schedule_after(0, std::move(task)); }
  void post_after(Duration delay, Task task) override {
    kernel_.schedule_after(delay, std::move(task));
  }
  [[nodiscard]] TimePoint now() const override { return kernel_.now(); }

 private:
  Kernel& kernel_;
};

}  // namespace dear::sim
