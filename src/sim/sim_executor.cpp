#include "sim/sim_executor.hpp"

// Header-only implementation; this translation unit anchors the library.
