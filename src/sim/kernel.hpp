// Discrete-event simulation kernel.
//
// This is the substrate that stands in for the paper's physical testbed
// (two MinnowBoard Turbot boards + Ethernet switch). Platform scheduling
// jitter, network latency and clock drift are modeled on top of this
// kernel; all randomness comes from seeded streams, so runs are
// bit-reproducible.
//
// Events are ordered by (time, priority, insertion sequence). Equal-keyed
// events therefore execute in insertion order, which makes the kernel
// itself deterministic; *modeled* nondeterminism is injected explicitly by
// the layers above (e.g. dispatch jitter in SimExecutor).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/binary_heap.hpp"
#include "common/time.hpp"
#include "obs/obs.hpp"

namespace dear::sim {

using EventId = std::uint64_t;

class Kernel {
 public:
  using Handler = std::function<void()>;

  Kernel() = default;
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Lifetime totals flush into the metrics registry at teardown, so the
  /// hot loop keeps its plain member counters (no per-event registry
  /// traffic; the kernel is single-threaded by construction).
  ~Kernel() {
    obs::count(obs::Counter::kSimEventsScheduled, next_id_);
    obs::count(obs::Counter::kSimEventsProcessed, processed_);
  }

  /// Schedules `handler` at absolute time `time`. Times in the past (before
  /// now()) are clamped to now(). Returns an id usable with cancel().
  EventId schedule_at(TimePoint time, Handler handler, int priority = 0);

  /// Schedules `handler` `delay` from now (negative delays clamp to 0).
  EventId schedule_after(Duration delay, Handler handler, int priority = 0);

  /// Cancels a pending event. Returns false when the event already ran,
  /// was cancelled before, or never existed.
  bool cancel(EventId id);

  /// Current simulation time.
  [[nodiscard]] TimePoint now() const noexcept { return now_; }

  /// Runs until the queue drains or stop() is called. Returns the number of
  /// events processed by this call.
  std::uint64_t run();

  /// Processes all events with time <= horizon, then advances now() to
  /// horizon. Returns events processed.
  std::uint64_t run_until(TimePoint horizon);

  /// Processes a single event. Returns false when the queue is empty.
  bool step();

  /// Makes run()/run_until() return after the current event completes.
  void stop() noexcept { stopped_ = true; }

  [[nodiscard]] bool stopped() const noexcept { return stopped_; }

  /// Clears the stop flag so the kernel can be reused.
  void reset_stop() noexcept { stopped_ = false; }

  /// Time of the earliest pending event, or kTimeMax when empty.
  [[nodiscard]] TimePoint next_event_time() const;

  [[nodiscard]] bool empty() const;

  [[nodiscard]] std::uint64_t events_processed() const noexcept { return processed_; }
  [[nodiscard]] std::uint64_t events_scheduled() const noexcept { return next_id_; }

 private:
  struct Event {
    TimePoint time;
    int priority;
    EventId id;  // doubles as insertion sequence
    Handler handler;
  };

  struct Sooner {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time < b.time;
      if (a.priority != b.priority) return a.priority < b.priority;
      return a.id < b.id;
    }
  };

  /// Pops cancelled events off the top of the queue.
  void skim();

  /// Same pooled min-heap as the reactor event queue: capacity is retained
  /// across pop/push cycles and the top event moves out without the
  /// const_cast std::priority_queue forced on handler extraction.
  common::BinaryHeap<Event, Sooner> queue_;
  std::unordered_set<EventId> cancelled_;
  TimePoint now_{0};
  EventId next_id_{0};
  std::uint64_t processed_{0};
  bool stopped_{false};
};

}  // namespace dear::sim
