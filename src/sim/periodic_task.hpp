// Periodic OS callback model.
//
// Each SWC in the stock brake assistant "sets up a periodic callback so
// that the OS triggers the SWC logic every 50 ms" (paper §IV.A). The phase
// of that callback relative to the other SWCs — plus per-activation
// scheduler jitter — is exactly what drives the error-rate variance in
// Figure 5, so both are first-class parameters here.
//
// Nominal activation k fires at phase + k*period on the platform's *local*
// clock, plus a jitter draw. Jitter affects release time only; the nominal
// grid does not accumulate error. Grid points that are already in the
// global past when the task is (re)armed — e.g. the local clock is ahead
// of global time at startup — count as missed activations and are
// skipped, never fired as a burst.
#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/clock_model.hpp"
#include "sim/exec_time_model.hpp"
#include "sim/kernel.hpp"

namespace dear::sim {

class PeriodicTask {
 public:
  /// `callback(activation_index, release_global_time)` runs on the kernel.
  using Callback = std::function<void(std::uint64_t, TimePoint)>;

  PeriodicTask(Kernel& kernel, const PlatformClock& clock, Duration period, Duration phase,
               Callback callback);

  /// Adds per-activation release jitter (default: none).
  void set_jitter(ExecTimeModel jitter, common::Rng rng);

  void start();
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_; }
  [[nodiscard]] std::uint64_t activations() const noexcept { return activation_; }
  [[nodiscard]] Duration period() const noexcept { return period_; }

 private:
  void arm_next();
  void fire();

  Kernel& kernel_;
  const PlatformClock& clock_;
  Duration period_;
  Duration phase_;
  Callback callback_;
  bool has_jitter_{false};
  ExecTimeModel jitter_{ExecTimeModel::constant(0)};
  common::Rng rng_{0};
  EventId pending_{0};
  std::uint64_t activation_{0};
  bool running_{false};
};

}  // namespace dear::sim
