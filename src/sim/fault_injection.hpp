// Sensor fault injection for the simulated front-ends (camera, radar).
//
// The paper's determinism claim is about *coordination*: the DEAR pipeline
// computes the same outputs from the same sensor input stream regardless
// of platform timing. Sensor faults are therefore modeled as part of the
// *input* — every fault decision draws from a dedicated stream of the
// sensor-side rng, so two runs that share the sensor seed and fault model
// see the exact same faulty sample sequence no matter what the platform
// does. This is what lets scenario campaigns sweep fault grids while still
// asserting bit-identical DEAR digests across platform seeds, transports
// and worker counts.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace dear::sim {

/// Per-sample fault probabilities of a sensor front-end. All zero by
/// default, i.e. a nominal sensor. The probabilities are cumulative per
/// sample (drop is checked first, then stuck, then noise), so their sum
/// must stay <= 1.
struct SensorFaultModel {
  /// Sample is never emitted (sensor blackout / transfer failure).
  double drop_probability{0.0};
  /// The previous sample is emitted again verbatim (frozen sensor).
  double stuck_probability{0.0};
  /// The sample is emitted with corrupted content (bit flips, glare);
  /// identity metadata (frame/scan id) stays intact.
  double noise_probability{0.0};

  [[nodiscard]] bool any() const noexcept {
    return drop_probability > 0.0 || stuck_probability > 0.0 || noise_probability > 0.0;
  }

  bool operator==(const SensorFaultModel&) const = default;
};

/// Draws one fault decision per sensor sample. One uniform draw decides
/// the outcome, so the decision sequence for a given (seed, model) is a
/// pure function of the sample index.
class SensorFaultInjector {
 public:
  enum class Outcome : std::uint8_t { kNominal, kDrop, kStuck, kNoisy };

  SensorFaultInjector(SensorFaultModel model, common::Rng rng) noexcept
      : model_(model), rng_(rng) {}

  [[nodiscard]] Outcome next() noexcept {
    if (!model_.any()) {
      return Outcome::kNominal;
    }
    const double u = rng_.uniform01();
    if (u < model_.drop_probability) {
      ++drops_;
      return Outcome::kDrop;
    }
    if (u < model_.drop_probability + model_.stuck_probability) {
      ++stuck_;
      return Outcome::kStuck;
    }
    if (u < model_.drop_probability + model_.stuck_probability + model_.noise_probability) {
      ++noisy_;
      return Outcome::kNoisy;
    }
    return Outcome::kNominal;
  }

  /// Nonzero corruption mask for a kNoisy sample (content perturbation is
  /// input-side randomness, hence drawn here and not platform-side).
  [[nodiscard]] std::uint64_t noise_word() noexcept {
    const std::uint64_t word = rng_();
    return word != 0 ? word : 0x5851f42d4c957f2dULL;
  }

  [[nodiscard]] const SensorFaultModel& model() const noexcept { return model_; }
  [[nodiscard]] std::uint64_t dropped_samples() const noexcept { return drops_; }
  [[nodiscard]] std::uint64_t stuck_samples() const noexcept { return stuck_; }
  [[nodiscard]] std::uint64_t noisy_samples() const noexcept { return noisy_; }

 private:
  SensorFaultModel model_;
  common::Rng rng_;
  std::uint64_t drops_{0};
  std::uint64_t stuck_{0};
  std::uint64_t noisy_{0};
};

}  // namespace dear::sim
