#include "sim/exec_time_model.hpp"

#include <cmath>

namespace dear::sim {

Duration ExecTimeModel::sample(common::Rng& rng) const noexcept {
  switch (kind_) {
    case Kind::kConstant:
      return lo_;
    case Kind::kUniform:
      return rng.uniform_duration(lo_, hi_);
    case Kind::kNormal: {
      const double draw = rng.normal(static_cast<double>(mean_), sigma_);
      return std::clamp(static_cast<Duration>(std::llround(draw)), lo_, hi_);
    }
    case Kind::kNormalTail: {
      const double draw = rng.normal(static_cast<double>(mean_), sigma_);
      Duration value = std::clamp(static_cast<Duration>(std::llround(draw)), lo_, hi_);
      if (rng.chance(tail_p_)) {
        value += rng.uniform_duration(0, tail_extra_);
      }
      return value;
    }
  }
  return lo_;
}

ExecTimeModel ExecTimeModel::scaled(double factor) const noexcept {
  const auto scale = [factor](Duration d) {
    return static_cast<Duration>(std::llround(static_cast<double>(d) * factor));
  };
  ExecTimeModel copy = *this;
  copy.lo_ = scale(lo_);
  copy.hi_ = scale(hi_);
  copy.sigma_ *= factor;
  copy.upper_ = scale(upper_);
  copy.mean_ = scale(mean_);
  copy.tail_extra_ = scale(tail_extra_);
  return copy;
}

}  // namespace dear::sim
