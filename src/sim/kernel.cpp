#include "sim/kernel.hpp"

#include <utility>

namespace dear::sim {

EventId Kernel::schedule_at(TimePoint time, Handler handler, int priority) {
  const EventId id = next_id_++;
  queue_.push(Event{time < now_ ? now_ : time, priority, id, std::move(handler)});
  return id;
}

EventId Kernel::schedule_after(Duration delay, Handler handler, int priority) {
  return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(handler), priority);
}

bool Kernel::cancel(EventId id) {
  if (id >= next_id_) {
    return false;
  }
  // Tombstone; the queue entry is discarded when it reaches the top.
  return cancelled_.insert(id).second;
}

void Kernel::skim() {
  while (!queue_.empty()) {
    const auto it = cancelled_.find(queue_.top().id);
    if (it == cancelled_.end()) {
      return;
    }
    cancelled_.erase(it);
    queue_.pop();
  }
}

bool Kernel::step() {
  skim();
  if (queue_.empty()) {
    return false;
  }
  // Move the event out before running it so the handler may schedule new
  // events.
  Event event = queue_.pop_move();
  now_ = event.time;
  ++processed_;
  event.handler();
  return true;
}

std::uint64_t Kernel::run() {
  std::uint64_t count = 0;
  while (!stopped_ && step()) {
    ++count;
  }
  return count;
}

std::uint64_t Kernel::run_until(TimePoint horizon) {
  std::uint64_t count = 0;
  while (!stopped_) {
    skim();
    if (queue_.empty() || queue_.top().time > horizon) {
      break;
    }
    step();
    ++count;
  }
  if (!stopped_ && now_ < horizon) {
    now_ = horizon;
  }
  return count;
}

TimePoint Kernel::next_event_time() const {
  const_cast<Kernel*>(this)->skim();
  return queue_.empty() ? kTimeMax : queue_.top().time;
}

bool Kernel::empty() const {
  const_cast<Kernel*>(this)->skim();
  return queue_.empty();
}

}  // namespace dear::sim
