#include "sim/periodic_task.hpp"

#include <utility>

namespace dear::sim {

PeriodicTask::PeriodicTask(Kernel& kernel, const PlatformClock& clock, Duration period,
                           Duration phase, Callback callback)
    : kernel_(kernel),
      clock_(clock),
      period_(period),
      phase_(phase),
      callback_(std::move(callback)) {}

void PeriodicTask::set_jitter(ExecTimeModel jitter, common::Rng rng) {
  jitter_ = jitter;
  rng_ = rng;
  has_jitter_ = true;
}

void PeriodicTask::start() {
  if (running_) {
    return;
  }
  running_ = true;
  activation_ = 0;
  arm_next();
}

void PeriodicTask::stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  kernel_.cancel(pending_);
}

void PeriodicTask::arm_next() {
  // Nominal release on the local clock grid, converted to global kernel time.
  TimePoint global_release =
      clock_.global_from_local(phase_ + static_cast<TimePoint>(activation_) * period_);
  // Grid points already in the global past (the local clock is ahead at
  // start/restart time) are *missed* activations: firing them would
  // compress several periods into a burst at now(), which no periodic OS
  // callback does. Skip to the next future release instead.
  while (global_release < kernel_.now()) {
    ++activation_;
    global_release =
        clock_.global_from_local(phase_ + static_cast<TimePoint>(activation_) * period_);
  }
  if (has_jitter_) {
    global_release += jitter_.sample(rng_);
  }
  pending_ = kernel_.schedule_at(global_release, [this] { fire(); });
}

void PeriodicTask::fire() {
  if (!running_) {
    return;
  }
  const std::uint64_t index = activation_++;
  arm_next();
  callback_(index, kernel_.now());
}

}  // namespace dear::sim
