#include "sim/periodic_task.hpp"

#include <utility>

namespace dear::sim {

PeriodicTask::PeriodicTask(Kernel& kernel, const PlatformClock& clock, Duration period,
                           Duration phase, Callback callback)
    : kernel_(kernel),
      clock_(clock),
      period_(period),
      phase_(phase),
      callback_(std::move(callback)) {}

void PeriodicTask::set_jitter(ExecTimeModel jitter, common::Rng rng) {
  jitter_ = jitter;
  rng_ = rng;
  has_jitter_ = true;
}

void PeriodicTask::start() {
  if (running_) {
    return;
  }
  running_ = true;
  activation_ = 0;
  arm_next();
}

void PeriodicTask::stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  kernel_.cancel(pending_);
}

void PeriodicTask::arm_next() {
  // Nominal release on the local clock grid, converted to global kernel time.
  const TimePoint local_release =
      phase_ + static_cast<TimePoint>(activation_) * period_;
  TimePoint global_release = clock_.global_from_local(local_release);
  if (has_jitter_) {
    global_release += jitter_.sample(rng_);
  }
  pending_ = kernel_.schedule_at(global_release, [this] { fire(); });
}

void PeriodicTask::fire() {
  if (!running_) {
    return;
  }
  const std::uint64_t index = activation_++;
  arm_next();
  callback_(index, kernel_.now());
}

}  // namespace dear::sim
