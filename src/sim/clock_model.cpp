#include "sim/clock_model.hpp"

#include <cmath>

namespace dear::sim {

TimePoint PlatformClock::local_now(TimePoint global) const noexcept {
  const double skew = drift_ppm_ * 1e-6 * static_cast<double>(global - epoch_);
  return global + offset_ + static_cast<Duration>(std::llround(skew));
}

TimePoint PlatformClock::global_from_local(TimePoint local) const noexcept {
  // Solve local = g + offset + drift*(g - epoch) for g.
  const double drift = drift_ppm_ * 1e-6;
  const double numerator =
      static_cast<double>(local - offset_) + drift * static_cast<double>(epoch_);
  return static_cast<TimePoint>(std::llround(numerator / (1.0 + drift)));
}

void PlatformClock::resync(TimePoint global_now, Duration residual) noexcept {
  epoch_ = global_now;
  offset_ = residual;
}

TimeSyncService::TimeSyncService(Kernel& kernel, PlatformClock& clock, Duration period,
                                 Duration residual_bound, common::Rng rng)
    : kernel_(kernel), clock_(clock), period_(period), residual_bound_(residual_bound), rng_(rng) {}

void TimeSyncService::start() {
  if (running_) {
    return;
  }
  running_ = true;
  pending_ = kernel_.schedule_after(period_, [this] { tick(); });
}

void TimeSyncService::stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  kernel_.cancel(pending_);
}

void TimeSyncService::tick() {
  if (!running_) {
    return;
  }
  const Duration residual = rng_.uniform_duration(-residual_bound_, residual_bound_);
  clock_.resync(kernel_.now(), residual);
  ++resyncs_;
  pending_ = kernel_.schedule_after(period_, [this] { tick(); });
}

Duration TimeSyncService::worst_case_error() const noexcept {
  const double drift_term = std::abs(clock_.drift_ppm()) * 1e-6 * static_cast<double>(period_);
  return residual_bound_ + static_cast<Duration>(std::ceil(drift_term));
}

}  // namespace dear::sim
