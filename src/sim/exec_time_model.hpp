// Execution-time models for simulated computations.
//
// SWC logic in the simulated brake assistant consumes modeled execution
// time drawn from one of these distributions. Every model exposes an upper
// bound, which plays the role of the WCET that the paper's deterministic
// deadlines must cover (§IV.B).
#pragma once

#include <algorithm>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace dear::sim {

class ExecTimeModel {
 public:
  /// Always exactly `value`.
  [[nodiscard]] static ExecTimeModel constant(Duration value) noexcept {
    return ExecTimeModel(Kind::kConstant, value, value, 0.0, value);
  }

  /// Uniform in [lo, hi].
  [[nodiscard]] static ExecTimeModel uniform(Duration lo, Duration hi) noexcept {
    return ExecTimeModel(Kind::kUniform, lo, hi, 0.0, hi);
  }

  /// Truncated normal: mean/sigma, clamped to [min, max].
  [[nodiscard]] static ExecTimeModel normal(Duration mean, Duration sigma, Duration min,
                                            Duration max) noexcept {
    ExecTimeModel m(Kind::kNormal, min, max, static_cast<double>(sigma), max);
    m.mean_ = mean;
    return m;
  }

  /// Normal body with a rare heavy tail: with probability tail_p the draw
  /// gets an extra uniform [0, tail_extra] added (models cache misses,
  /// page faults, interfering load). Upper bound = max + tail_extra.
  [[nodiscard]] static ExecTimeModel normal_with_tail(Duration mean, Duration sigma, Duration min,
                                                      Duration max, double tail_p,
                                                      Duration tail_extra) noexcept {
    ExecTimeModel m(Kind::kNormalTail, min, max, static_cast<double>(sigma), max + tail_extra);
    m.mean_ = mean;
    m.tail_p_ = tail_p;
    m.tail_extra_ = tail_extra;
    return m;
  }

  [[nodiscard]] Duration sample(common::Rng& rng) const noexcept;

  /// Worst-case value this model can produce (the WCET bound).
  [[nodiscard]] Duration upper_bound() const noexcept { return upper_; }

  /// Smallest value this model can produce.
  [[nodiscard]] Duration lower_bound() const noexcept { return lo_; }

  /// Returns a copy with every parameter scaled by `factor` (used by the
  /// deadline/error trade-off sweep to stress models).
  [[nodiscard]] ExecTimeModel scaled(double factor) const noexcept;

 private:
  enum class Kind { kConstant, kUniform, kNormal, kNormalTail };

  ExecTimeModel(Kind kind, Duration lo, Duration hi, double sigma, Duration upper) noexcept
      : kind_(kind), lo_(lo), hi_(hi), sigma_(sigma), upper_(upper) {}

  Kind kind_;
  Duration lo_;
  Duration hi_;
  double sigma_;
  Duration upper_;
  Duration mean_{0};
  double tail_p_{0.0};
  Duration tail_extra_{0};
};

}  // namespace dear::sim
