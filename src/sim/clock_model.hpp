// Per-platform clock models.
//
// AUTOSAR AP platforms synchronize their clocks (Specification of Time
// Synchronization for Adaptive Platform); the paper's safe-to-process rule
// assumes a bounded synchronization error E. We model each platform clock
// as  local(g) = g + offset + drift_ppm * 1e-6 * (g - epoch)  and provide a
// periodic time-sync service that re-anchors the offset with a bounded
// residual, so |local - global| stays within a configurable bound between
// resyncs.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/kernel.hpp"

namespace dear::sim {

class PlatformClock {
 public:
  PlatformClock() = default;
  PlatformClock(Duration initial_offset, double drift_ppm) noexcept
      : offset_(initial_offset), drift_ppm_(drift_ppm) {}

  /// Local reading of this clock when the global (true) time is `global`.
  [[nodiscard]] TimePoint local_now(TimePoint global) const noexcept;

  /// Inverse of local_now: the global time at which this clock reads `local`.
  [[nodiscard]] TimePoint global_from_local(TimePoint local) const noexcept;

  /// Error of this clock at global time `global` (local - global).
  [[nodiscard]] Duration error_at(TimePoint global) const noexcept {
    return local_now(global) - global;
  }

  /// Re-anchors the clock so that local(global_now) = global_now + residual.
  /// Models a time-sync correction with residual error.
  void resync(TimePoint global_now, Duration residual) noexcept;

  [[nodiscard]] double drift_ppm() const noexcept { return drift_ppm_; }

 private:
  Duration offset_{0};
  double drift_ppm_{0.0};
  TimePoint epoch_{0};
};

/// Periodically resyncs a PlatformClock on the kernel, drawing the residual
/// uniformly from [-residual_bound, +residual_bound]. The worst-case error
/// between resyncs is residual_bound + |drift_ppm| * 1e-6 * period, which is
/// the value to use for E in the DEAR safe-to-process configuration.
class TimeSyncService {
 public:
  TimeSyncService(Kernel& kernel, PlatformClock& clock, Duration period, Duration residual_bound,
                  common::Rng rng);

  void start();
  void stop();

  /// Upper bound on |local - global| while the service runs.
  [[nodiscard]] Duration worst_case_error() const noexcept;

  [[nodiscard]] std::uint64_t resync_count() const noexcept { return resyncs_; }

 private:
  void tick();

  Kernel& kernel_;
  PlatformClock& clock_;
  Duration period_;
  Duration residual_bound_;
  common::Rng rng_;
  EventId pending_{0};
  bool running_{false};
  std::uint64_t resyncs_{0};
};

}  // namespace dear::sim
