#include "net/sim_network.hpp"

#include "common/buffer_pool.hpp"

namespace dear::net {

SimNetwork::SimNetwork(sim::Kernel& kernel, common::Rng rng) : kernel_(kernel), rng_(rng) {}

void SimNetwork::bind(Endpoint endpoint, ReceiveHandler handler) {
  receivers_[endpoint] = std::move(handler);
}

void SimNetwork::unbind(Endpoint endpoint) { receivers_.erase(endpoint); }

const LinkParams& SimNetwork::link_for(NodeId source, NodeId destination) const {
  if (source == destination) {
    const auto it = links_.find({source, destination});
    return it != links_.end() ? it->second : loopback_link_;
  }
  const auto it = links_.find({source, destination});
  return it != links_.end() ? it->second : default_link_;
}

void SimNetwork::set_link(NodeId source, NodeId destination, LinkParams params) {
  links_[{source, destination}] = std::move(params);
}

void SimNetwork::set_link_down(NodeId source, NodeId destination) {
  down_links_.insert({source, destination});
}

void SimNetwork::set_link_up(NodeId source, NodeId destination) {
  down_links_.erase({source, destination});
}

bool SimNetwork::link_down(NodeId source, NodeId destination) const {
  return down_links_.count({source, destination}) != 0;
}

void SimNetwork::schedule_delivery(const LinkParams& link, PairState& pair, Packet packet) {
  TimePoint delivery = packet.send_time + link.latency.sample(rng_);
  if (link.enforce_in_order && delivery < pair.last_scheduled_delivery) {
    delivery = pair.last_scheduled_delivery;
  }
  if (delivery < pair.last_scheduled_delivery) {
    ++reordered_;
  } else {
    pair.last_scheduled_delivery = delivery;
  }

  // The keeper returns the payload to the pool even when the delivery
  // event dies unrun (kernel torn down mid-flight at scenario end).
  common::PooledBuffer keeper(std::move(packet.payload));
  kernel_.schedule_at(delivery,
                      [this, packet = std::move(packet), keeper = std::move(keeper)]() mutable {
    // A partition severs the cable: packets in flight when the link went
    // down die at their delivery time instead of landing.
    if (link_down(packet.source.node, packet.destination.node)) {
      ++partition_dropped_;
      return;  // keeper recycles the buffer
    }
    const auto it = receivers_.find(packet.destination);
    if (it == receivers_.end()) {
      ++dropped_;
      return;  // keeper recycles the buffer
    }
    packet.payload = keeper.take();
    packet.receive_time = kernel_.now();
    ++delivered_;
    it->second(packet);
    // Recycle the wire buffer once the receive handler returns.
    common::BufferPool::instance().release(std::move(packet.payload));
  });
}

void SimNetwork::send(Endpoint source, Endpoint destination, std::vector<std::uint8_t> payload) {
  ++sent_;
  if (link_down(source.node, destination.node)) {
    ++partition_dropped_;
    common::BufferPool::instance().release(std::move(payload));
    return;
  }
  const LinkParams& link = link_for(source.node, destination.node);
  if (link.drop_probability > 0.0 && rng_.chance(link.drop_probability)) {
    ++dropped_;
    common::BufferPool::instance().release(std::move(payload));
    return;
  }
  const bool duplicate =
      link.duplicate_probability > 0.0 && rng_.chance(link.duplicate_probability);

  Packet packet;
  packet.source = source;
  packet.destination = destination;
  packet.payload = std::move(payload);
  packet.send_time = kernel_.now();

  auto& pair = pair_state_[{source.node, destination.node}];
  if (duplicate) {
    ++duplicated_;
    schedule_delivery(link, pair, packet);
  }
  schedule_delivery(link, pair, std::move(packet));
}

}  // namespace dear::net
