// Abstract datagram network.
//
// Two implementations:
//   * SimNetwork — discrete-event links with latency/jitter/drop/reorder
//     models (stands in for the paper's Ethernet switch),
//   * RtNetwork  — in-process loopback over real threads (used where the
//     experiment needs genuine OS nondeterminism).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/time.hpp"
#include "net/packet.hpp"

namespace dear::net {

class Network {
 public:
  using ReceiveHandler = std::function<void(const Packet&)>;

  virtual ~Network() = default;

  /// Registers the receiver for an endpoint. Binding an already-bound
  /// endpoint replaces the handler.
  virtual void bind(Endpoint endpoint, ReceiveHandler handler) = 0;

  virtual void unbind(Endpoint endpoint) = 0;

  /// Sends a datagram. Packets to unbound destinations are dropped
  /// (counted, not an error — mirrors UDP semantics).
  virtual void send(Endpoint source, Endpoint destination, std::vector<std::uint8_t> payload) = 0;

  /// Network-layer physical time.
  [[nodiscard]] virtual TimePoint now() const = 0;

  [[nodiscard]] virtual std::uint64_t packets_sent() const = 0;
  [[nodiscard]] virtual std::uint64_t packets_delivered() const = 0;
  [[nodiscard]] virtual std::uint64_t packets_dropped() const = 0;
};

}  // namespace dear::net
