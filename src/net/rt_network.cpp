#include "net/rt_network.hpp"

#include <utility>

#include "common/buffer_pool.hpp"

namespace dear::net {

void RtNetwork::send(Endpoint source, Endpoint destination, std::vector<std::uint8_t> payload) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++sent_;
  }
  Packet packet;
  packet.source = source;
  packet.destination = destination;
  packet.payload = std::move(payload);
  packet.send_time = executor_.now();

  // The keeper returns the payload to the pool even when the delivery
  // task dies unrun (executor torn down with posts still queued).
  common::PooledBuffer keeper(std::move(packet.payload));
  executor_.post([this, packet = std::move(packet), keeper = std::move(keeper)]() mutable {
    ReceiveHandler handler;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      const auto it = receivers_.find(packet.destination);
      if (it == receivers_.end()) {
        ++dropped_;
        return;  // keeper recycles the buffer
      }
      handler = it->second;
      ++delivered_;
    }
    packet.payload = keeper.take();
    packet.receive_time = executor_.now();
    handler(packet);
    // The wire buffer came from the pool in the sending binding; hand it
    // back now that the receive handler is done with it.
    common::BufferPool::instance().release(std::move(packet.payload));
  });
}

}  // namespace dear::net
