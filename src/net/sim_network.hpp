// Simulated switched network over the DES kernel.
//
// Per node pair, a link is characterized by a latency model, a drop
// probability, a duplication probability, and an in-order flag. With
// in-order delivery disabled, jitter can reorder packets — the paper's
// nondeterminism source 3 ("point-to-point in-order message delivery ...
// is not a formal requirement in AUTOSAR AP"). Duplication models
// datagram-level retransmit artifacts: the copy takes an independent
// latency draw, so it can arrive before or after the original. Local
// (same-node) traffic uses a separate, much faster loopback model.
#pragma once

#include <map>
#include <set>
#include <unordered_map>
#include <utility>

#include "common/rng.hpp"
#include "net/network.hpp"
#include "obs/obs.hpp"
#include "sim/exec_time_model.hpp"
#include "sim/kernel.hpp"

namespace dear::net {

struct LinkParams {
  sim::ExecTimeModel latency{sim::ExecTimeModel::uniform(200 * dear::kMicrosecond,
                                                         800 * dear::kMicrosecond)};
  double drop_probability{0.0};
  /// Probability that a successfully sent packet is delivered twice. The
  /// duplicate takes its own latency draw from the same model.
  double duplicate_probability{0.0};
  /// When true, a packet is never delivered before a packet sent earlier on
  /// the same (source node, destination node) pair.
  bool enforce_in_order{false};
};

class SimNetwork final : public Network {
 public:
  SimNetwork(sim::Kernel& kernel, common::Rng rng);

  /// Lifetime totals flush into the metrics registry at teardown; the
  /// delivery hot path keeps its plain member counters. The duplicated
  /// count doubles as the registry backing for `net.packets_duplicated`.
  ~SimNetwork() override {
    obs::count(obs::Counter::kNetPacketsSent, sent_);
    obs::count(obs::Counter::kNetPacketsDelivered, delivered_);
    obs::count(obs::Counter::kNetPacketsDropped, dropped_);
    obs::count(obs::Counter::kNetPacketsReordered, reordered_);
    obs::count(obs::Counter::kNetPacketsDuplicated, duplicated_);
    obs::count(obs::Counter::kNetPacketsPartitionDropped, partition_dropped_);
  }

  void bind(Endpoint endpoint, ReceiveHandler handler) override;
  void unbind(Endpoint endpoint) override;
  void send(Endpoint source, Endpoint destination, std::vector<std::uint8_t> payload) override;
  [[nodiscard]] TimePoint now() const override { return kernel_.now(); }

  /// Link used when no node-pair specific link is configured.
  void set_default_link(LinkParams params) { default_link_ = std::move(params); }
  /// Model for traffic that stays on one node (loopback / local sockets).
  void set_loopback_link(LinkParams params) { loopback_link_ = std::move(params); }
  /// Directed link override for (source node -> destination node).
  void set_link(NodeId source, NodeId destination, LinkParams params);

  /// Partition primitive: takes the directed (source node -> destination
  /// node) link down. Packets sent while the link is down are dropped at
  /// the sender; packets already in flight are re-checked at their
  /// delivery instant (a partition severs the cable, it does not wait for
  /// queued traffic to land).
  void set_link_down(NodeId source, NodeId destination);
  /// Heals the directed link. The partition check runs at each packet's
  /// delivery instant: a packet whose delivery falls inside the down
  /// window stays dead after the heal, while an in-flight packet whose
  /// delivery lands after the heal survives.
  void set_link_up(NodeId source, NodeId destination);
  [[nodiscard]] bool link_down(NodeId source, NodeId destination) const;

  [[nodiscard]] std::uint64_t packets_sent() const override { return sent_; }
  [[nodiscard]] std::uint64_t packets_delivered() const override { return delivered_; }
  [[nodiscard]] std::uint64_t packets_dropped() const override { return dropped_; }
  /// Packets delivered after a packet that was sent later on the same pair.
  [[nodiscard]] std::uint64_t packets_reordered() const noexcept { return reordered_; }
  /// Extra copies scheduled by the duplication model.
  [[nodiscard]] std::uint64_t packets_duplicated() const noexcept { return duplicated_; }
  /// Packets killed by a link partition (at send or in flight).
  [[nodiscard]] std::uint64_t packets_partition_dropped() const noexcept {
    return partition_dropped_;
  }

 private:
  struct PairState {
    TimePoint last_scheduled_delivery{kTimeMin};
    TimePoint last_send_delivered{kTimeMin};
  };

  [[nodiscard]] const LinkParams& link_for(NodeId source, NodeId destination) const;

  void schedule_delivery(const LinkParams& link, PairState& pair, Packet packet);

  sim::Kernel& kernel_;
  common::Rng rng_;
  LinkParams default_link_{};
  LinkParams loopback_link_{
      sim::ExecTimeModel::uniform(5 * dear::kMicrosecond, 50 * dear::kMicrosecond), 0.0, false};
  std::map<std::pair<NodeId, NodeId>, LinkParams> links_;
  std::set<std::pair<NodeId, NodeId>> down_links_;
  std::unordered_map<Endpoint, ReceiveHandler, EndpointHash> receivers_;
  std::map<std::pair<NodeId, NodeId>, PairState> pair_state_;
  std::uint64_t sent_{0};
  std::uint64_t delivered_{0};
  std::uint64_t dropped_{0};
  std::uint64_t reordered_{0};
  std::uint64_t duplicated_{0};
  std::uint64_t partition_dropped_{0};
};

}  // namespace dear::net
