// In-process loopback network over real threads.
//
// Delivery happens on the executor's worker threads, so with a multi-worker
// pool the arrival order of concurrently sent packets is genuinely decided
// by the OS scheduler. Used by the real-threads variant of the Figure 1
// experiment.
#pragma once

#include <mutex>
#include <unordered_map>

#include "common/executor.hpp"
#include "net/network.hpp"

namespace dear::net {

class RtNetwork final : public Network {
 public:
  explicit RtNetwork(common::Executor& executor) : executor_(executor) {}

  void bind(Endpoint endpoint, ReceiveHandler handler) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    receivers_[endpoint] = std::move(handler);
  }

  void unbind(Endpoint endpoint) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    receivers_.erase(endpoint);
  }

  void send(Endpoint source, Endpoint destination, std::vector<std::uint8_t> payload) override;

  [[nodiscard]] TimePoint now() const override { return executor_.now(); }

  [[nodiscard]] std::uint64_t packets_sent() const override {
    const std::lock_guard<std::mutex> lock(mutex_);
    return sent_;
  }
  [[nodiscard]] std::uint64_t packets_delivered() const override {
    const std::lock_guard<std::mutex> lock(mutex_);
    return delivered_;
  }
  [[nodiscard]] std::uint64_t packets_dropped() const override {
    const std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
  }

 private:
  common::Executor& executor_;
  mutable std::mutex mutex_;
  std::unordered_map<Endpoint, ReceiveHandler, EndpointHash> receivers_;
  std::uint64_t sent_{0};
  std::uint64_t delivered_{0};
  std::uint64_t dropped_{0};
};

}  // namespace dear::net
