// Datagram passed through the network layer. Payloads are opaque byte
// vectors; SOME/IP framing lives one layer up.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "net/endpoint.hpp"

namespace dear::net {

struct Packet {
  Endpoint source;
  Endpoint destination;
  std::vector<std::uint8_t> payload;
  /// Physical (network-layer) time at which the packet was handed to send().
  TimePoint send_time{0};
  /// Physical time at which the packet was delivered to the receiver.
  TimePoint receive_time{0};
};

}  // namespace dear::net
