// Network endpoints.
//
// A node models one platform (ECU); a port distinguishes services/bindings
// on that platform, mirroring UDP ports under SOME/IP.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace dear::net {

using NodeId = std::uint32_t;
using PortId = std::uint16_t;

struct Endpoint {
  NodeId node{0};
  PortId port{0};

  auto operator<=>(const Endpoint&) const = default;

  [[nodiscard]] std::string to_string() const {
    return "node" + std::to_string(node) + ":" + std::to_string(port);
  }
};

struct EndpointHash {
  [[nodiscard]] std::size_t operator()(const Endpoint& ep) const noexcept {
    return std::hash<std::uint64_t>{}((static_cast<std::uint64_t>(ep.node) << 16) | ep.port);
  }
};

}  // namespace dear::net
